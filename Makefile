# Restartable Atomic Sequences — reproduction of Bershad, Redell & Ellis,
# "Fast Mutual Exclusion for Uniprocessors" (ASPLOS 1992).

GO ?= go

.PHONY: all build test race cover bench tables chaos recovery smp persist journal server rmr resilience examples check fuzz fmt lint vet clean tier1

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Everything CI gates on: compile, static checks, tests, race detector.
tier1: build vet test race

cover:
	$(GO) test -cover ./internal/...

# One Go benchmark per paper table plus the extension studies.
bench:
	$(GO) test -bench=. -benchmem .

# The same tables as human-readable output (see EXPERIMENTS.md).
tables:
	$(GO) run ./cmd/rasbench -iters 50000

# Seeded fault-injection sweep; failures print a one-line seed reproducer.
chaos:
	$(GO) run ./cmd/rasbench -table chaos

# Recoverable mutual exclusion: thread-kill sweeps on both substrates,
# checkpoint replay, crash restore (>= 1000 schedules).
recovery:
	$(GO) run ./cmd/rasbench -table recovery

# SMP sweep: the §7 hybrid RAS+spinlock vs pure spinlock vs ll/sc across
# CPU counts, with per-passage cycle and RMR costs in both counting modes.
smp:
	$(GO) run ./cmd/rasbench -table smp -cpus 1,2,4

# NVRAM persistence (E23): volatile-crash sweeps on both substrates, the
# under-flush control, and the exhaustive crash-at-every-flush-boundary
# walk; the dedicated mcheck persist tests run alongside.
persist:
	$(GO) run ./cmd/rasbench -table persist
	$(GO) test -run 'Persist|Underflush' ./internal/mcheck/

# Server request-plane load study (E25): the per-CPU data plane against
# the global mutex queue, over a million replayed requests on the SMP
# guest and the uniprocessor uxserver; the dedicated mcheck percpu
# models run alongside.
server:
	$(GO) run ./cmd/rasbench -table server
	$(GO) test -run 'Percpu' ./internal/mcheck/

# Crash-consistent journaling (E24): undo vs redo WAL passage costs on
# both substrates, torn-crash sweeps, memfs journal replay, and the
# exhaustive crash-at-every-flush/fence-boundary walks; the dedicated
# mcheck journal tests run alongside.
journal:
	$(GO) run ./cmd/rasbench -table journal
	$(GO) test -run 'Journal|Pstruct|Memfs' ./internal/mcheck/

# Queue-lock RMR study (E26): every lock variant's remote references per
# passage across CPU counts and coherence modes, the recoverable-MCS kill
# section, the qlock kill-edge sweeps, and the mcheck queue-lock models.
rmr:
	$(GO) run ./cmd/rasbench -table rmr
	$(GO) test -run 'Qlock|KillSweep|KillWaiter|CrashRestore' ./internal/qlock/ ./internal/mcheck/

# Crash-restart supervision (E27): the seeded 1000-crash vmach campaign,
# the uniproc exactly-once server campaign, the forced demotion cycle,
# and the supervisor-in-the-loop mcheck walks; the resilience package's
# own sweeps run alongside.
resilience:
	$(GO) run ./cmd/rasbench -table resilience
	$(GO) test -run 'Resilience|Supervise|ServerWorld|VMWorld' ./internal/resilience/ ./internal/mcheck/ ./internal/uxserver/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mechanisms
	$(GO) run ./examples/guestasm
	$(GO) run ./examples/producer_consumer
	$(GO) run ./examples/parthenon
	$(GO) run ./examples/waitfree
	$(GO) run ./examples/rseq

# Schedule-space model checking: the canned rascheck suite exhaustively
# verifies the paper's sequences (and catches the planted defects) across
# all three substrates. Counterexamples land in mcheck-out/ as replayable
# .sched files (rasvm -replay-sched, rascheck -replay).
check:
	$(GO) run ./cmd/rascheck -suite -out mcheck-out

fuzz:
	$(GO) test -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm/
	$(GO) test -fuzz=FuzzAsm -fuzztime=30s ./internal/asm/
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/asm/
	$(GO) test -fuzz=FuzzRecognizer -fuzztime=30s ./internal/vmach/kernel/
	$(GO) test -fuzz=FuzzCheckpoint -fuzztime=30s ./internal/vmach/kernel/
	$(GO) test -fuzz=FuzzSMPCheckpoint -fuzztime=30s ./internal/vmach/smp/
	$(GO) test -fuzz=FuzzChaosPlan -fuzztime=30s ./internal/chaos/

fmt:
	gofmt -w .

# What CI's lint job runs: formatting check (fails on diff) + vet.
lint:
	@diff=$$(gofmt -l .); if [ -n "$$diff" ]; then \
		echo "files need gofmt:" >&2; echo "$$diff" >&2; exit 1; fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
