// Package repro's top-level benchmarks regenerate every table of the
// paper's evaluation via `go test -bench=.`. One benchmark per table plus
// the auxiliary studies; each reports the paper-shaped rows through b.Log
// and the headline quantity as a custom metric so -benchmem runs emit
// comparable series.
package repro

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// iters scales the microbenchmark loops with -benchtime (b.N).
func iters(b *testing.B, min int) int {
	n := b.N
	if n < min {
		n = min
	}
	return n
}

// metric sanitizes a row label into a ReportMetric unit (no whitespace).
func metric(parts ...string) string {
	s := strings.Join(parts, "_")
	s = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '(', ')', ',', '/':
			return '-'
		}
		return r
	}, s)
	return strings.Trim(s, "-")
}

// BenchmarkTable1 regenerates Table 1: software mutual exclusion
// microbenchmarks on the simulated DECstation 5000/200.
func BenchmarkTable1(b *testing.B) {
	rows, err := bench.Table1(iters(b, 2000))
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Micros, metric(r.Mechanism, "us"))
	}
	b.Logf("\n%s", bench.FormatTable1(rows))
}

// BenchmarkTable2 regenerates Table 2: thread management operations under
// kernel emulation vs restartable atomic sequences.
func BenchmarkTable2(b *testing.B) {
	rows, err := bench.Table2(iters(b, 300))
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.EmulMicros, metric(r.Benchmark, "emul_us"))
		b.ReportMetric(r.RASMicros, metric(r.Benchmark, "ras_us"))
	}
	b.Logf("\n%s", bench.FormatTable2(rows))
}

// BenchmarkTable3 regenerates Table 3: application performance under the
// two mechanisms, with trap/restart/suspension counts.
func BenchmarkTable3(b *testing.B) {
	s := bench.DefaultScale()
	rows, err := bench.Table3(s)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Emul.Secs, metric(r.Program, "emul_s"))
		b.ReportMetric(r.RAS.Secs, metric(r.Program, "ras_s"))
	}
	b.Logf("\n%s", bench.FormatTable3(rows))
}

// BenchmarkTable4 regenerates Table 4: hardware vs software Test-And-Set
// across the eight processor architectures.
func BenchmarkTable4(b *testing.B) {
	rows, err := bench.Table4(iters(b, 2000))
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Interlocked, metric(r.Processor, "hw_us"))
		b.ReportMetric(r.Designated, metric(r.Processor, "sw_us"))
	}
	b.Logf("\n%s", bench.FormatTable4(rows))
}

// BenchmarkI860 regenerates the §7 comparison of the i860's hardware lock
// bit against software restartable sequences.
func BenchmarkI860(b *testing.B) {
	rows, err := bench.TableI860(iters(b, 2000))
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Micros, metric(r.Mechanism, "us"))
	}
	b.Logf("\n%s", bench.FormatI860(rows))
}

// BenchmarkLamport compares the two software-reservation protocols.
func BenchmarkLamport(b *testing.B) {
	rows, err := bench.TableLamport(iters(b, 2000))
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Micros, metric(r.Protocol, "us"))
	}
	b.Logf("\n%s", bench.FormatLamport(rows))
}

// BenchmarkHoldups regenerates §5.3's parthenon-10 lock-holdup analysis.
func BenchmarkHoldups(b *testing.B) {
	s := bench.DefaultScale()
	s.Quantum = 3000
	rows, err := bench.TableHoldups(s)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Holdups), metric(r.Mechanism, "holdups"))
	}
	b.Logf("\n%s", bench.FormatHoldups(rows))
}

// BenchmarkAblation regenerates the §4.1 PC-check placement study.
func BenchmarkAblation(b *testing.B) {
	rows, err := bench.TableAblation(3, 150)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Micros, metric(r.Config, "us"))
	}
	b.Logf("\n%s", bench.FormatAblation(rows))
}
