// Command rasasm assembles a guest source file and prints the encoded
// program: a disassembly listing with addresses, plus the symbol table.
//
// Usage:
//
//	rasasm prog.s
//	rasasm -figure tas        # print a built-in figure from the paper
//
// Built-in figures: tas (Figure 4, the Mach registered Test-And-Set),
// mutex (Figure 5, the Taos designated acquire sequence).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/asm"
)

const figureTAS = `
# Figure 4: restartable Test-And-Set using explicit registration (Mach).
# The registered range covers exactly lw..sw; the return jump is outside.
	.text
TestAndSet:
ras_begin:
	lw   v0, 0(a0)          # v0 = contents of a0
	ori  t0, zero, 1        # temporary t0 gets 1
	sw   t0, 0(a0)          # store 1 in Test-And-Set location
ras_end:
	jr   ra                 # return to caller, result in v0
`

const figureMutex = `
# Figure 5: a restartable atomic sequence for mutex acquisition using an
# inlined designated sequence (Taos).
	.text
Acquire:
	lw   v0, 0(a0)          # get value of mutex
	ori  t0, zero, 1        # locked value
	bne  v0, zero, SlowAcquire  # branch if not common case
	landmark                # special landmark value
	sw   t0, 0(a0)          # store locked value
	jr   ra
SlowAcquire:
	li   v0, 1              # out-of-line kernel call (yield)
	syscall
	jr   ra
`

func main() {
	figure := flag.String("figure", "", "print a built-in figure: tas, mutex")
	flag.Parse()

	var src string
	switch {
	case *figure == "tas":
		src = figureTAS
	case *figure == "mutex":
		src = figureMutex
	case *figure != "":
		fmt.Fprintf(os.Stderr, "rasasm: unknown figure %q\n", *figure)
		os.Exit(1)
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rasasm:", err)
			os.Exit(1)
		}
		src = string(raw)
	default:
		fmt.Fprintln(os.Stderr, "usage: rasasm [-figure tas|mutex] [file.s]")
		os.Exit(2)
	}

	out, err := render(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rasasm:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// render assembles src and produces the listing: disassembly, data words,
// and the symbol table sorted by address.
func render(src string) (string, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(asm.Disassemble(prog))
	if len(prog.Data) > 0 {
		b.WriteString("\ndata:\n")
		for i, w := range prog.Data {
			fmt.Fprintf(&b, "  %08x:  %08x\n", prog.DataBase+uint32(i*4), w)
		}
	}
	b.WriteString("\nsymbols:\n")
	names := make([]string, 0, len(prog.Symbols))
	for n := range prog.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
	for _, n := range names {
		fmt.Fprintf(&b, "  %08x  %s\n", prog.Symbols[n], n)
	}
	return b.String(), nil
}
