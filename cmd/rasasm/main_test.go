package main

import (
	"strings"
	"testing"
)

func TestRenderFigureTAS(t *testing.T) {
	out, err := render(figureTAS)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TestAndSet:", "ras_begin", "lw v0, 0(a0)", "sw t0, 0(a0)", "jr ra", "symbols:"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRenderFigureMutex(t *testing.T) {
	out, err := render(figureMutex)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Acquire:", "landmark", "SlowAcquire", "syscall"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRenderData(t *testing.T) {
	out, err := render("main:\n\tnop\n\t.data\nx: .word 0xfeedface\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "feedface") || !strings.Contains(out, "data:") {
		t.Errorf("data section missing:\n%s", out)
	}
}

func TestRenderError(t *testing.T) {
	if _, err := render("bogus mnemonic here"); err == nil {
		t.Error("bad source accepted")
	}
}
