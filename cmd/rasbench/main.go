// Command rasbench regenerates the paper's evaluation tables on the
// simulated uniprocessor.
//
// Usage:
//
//	rasbench                     # all tables
//	rasbench -table 1            # just Table 1
//	rasbench -table 3 -scale 4   # Table 3 with 4x workloads
//	rasbench -iters 100000       # longer microbenchmark loops
//
// Tables: 1 (microbenchmarks), 2 (thread management), 3 (applications),
// 4 (eight architectures), i860 (§7 lock bit), lamport (reservation
// protocols), holdups (§5.3 parthenon-10 analysis), ablation (§4.1 check
// placement), chaos (seeded fault-injection sweep; failures print a
// one-line seed reproducer, replayable with -seed/-level), recovery
// (recoverable mutual exclusion: thread-kill sweeps on both substrates,
// checkpoint replay, crash restore).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to run: 1,2,3,4,i860,lamport,holdups,ablation,wbuf,ranges,quantum,workers,chaos,recovery,all")
	itersF := flag.Int("iters", 20000, "microbenchmark loop iterations")
	scale := flag.Int("scale", 1, "table 3 workload multiplier")
	seed := flag.Uint64("seed", 0, "chaos master seed (0 = default); use with -level to replay a failure")
	level := flag.Float64("level", 0, "chaos fault intensity in (0,1]; 0 sweeps the default levels")
	timeout := flag.Uint64("timeout", 0, "cycle budget per run (0 = substrate default); a livelocked guest exits nonzero")
	flag.Parse()

	if err := run(*table, *itersF, *scale, *seed, *level, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "rasbench:", err)
		os.Exit(1)
	}
}

func run(table string, iters, scale int, seed uint64, level float64, timeout uint64) error {
	all := table == "all"
	section := func(title string) { fmt.Printf("\n== %s ==\n\n", title) }

	if all || table == "1" {
		section("Table 1: mutual exclusion microbenchmarks, DECstation 5000/200 (simulated)")
		rows, err := bench.Table1(iters)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows))
	}
	if all || table == "2" {
		section("Table 2: thread management overhead, emulation vs R.A.S.")
		rows, err := bench.Table2(iters / 10)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
	}
	if all || table == "3" {
		section("Table 3: application performance")
		s := bench.DefaultScale()
		s.TextParas *= scale
		s.AFSDirs *= scale
		s.ParthChain *= scale
		s.ProtonKB *= scale
		rows, err := bench.Table3(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(rows))
	}
	if all || table == "4" {
		section("Table 4: hardware vs software Test-And-Set, eight processors")
		rows, err := bench.Table4(iters)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable4(rows))
	}
	if all || table == "i860" {
		section("i860 hardware lock bit vs software (§7)")
		rows, err := bench.TableI860(iters)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatI860(rows))
	}
	if all || table == "lamport" {
		section("Software reservation protocols (Figure 1 vs Figure 2)")
		rows, err := bench.TableLamport(iters)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatLamport(rows))
	}
	if all || table == "holdups" {
		section("parthenon-10 lock holdups (§5.3)")
		s := bench.DefaultScale()
		s.Quantum = 3000
		rows, err := bench.TableHoldups(s)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatHoldups(rows))
	}
	if all || table == "ablation" {
		section("PC-check placement ablation (§4.1)")
		rows, err := bench.TableAblation(3, 200)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(rows))
	}
	if all || table == "wbuf" {
		section("Write-buffer sensitivity (§5.1 design remark)")
		rows, err := bench.TableWriteBuffer(iters)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatWriteBuffer(rows))
	}
	if all || table == "ranges" {
		section("Registration-table size vs check cost (§3.1 restriction)")
		rows, err := bench.TableRegistrationRanges(3, 200)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRanges(rows, arch.R3000().PCCheckDesignatedCycles))
	}
	if all || table == "quantum" {
		section("Restart frequency vs scheduling quantum (validating §5.3's optimism)")
		rows, err := bench.TableQuantumSweep(4, 500, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatQuantumSweep(rows))
	}
	if all || table == "workers" {
		section("Server worker pool on a uniprocessor (afs-bench client)")
		rows, err := bench.TableServerWorkers(nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatServerWorkers(rows))
	}
	if all || table == "chaos" {
		section("Chaos sweep: seeded fault injection, watchdog, degradation")
		cfg := bench.DefaultChaosConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		if level > 0 {
			cfg.Levels = []float64{level}
		}
		cfg.MaxCycles = timeout
		rows, err := bench.TableChaos(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatChaos(rows))
	}
	if all || table == "recovery" {
		section("Recovery sweep: thread kills, orphan repair, checkpoint/restore")
		cfg := bench.DefaultRecoveryConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.MaxCycles = timeout
		rows, err := bench.TableRecovery(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRecovery(rows))
	}
	switch table {
	case "all", "1", "2", "3", "4", "i860", "lamport", "holdups", "ablation",
		"wbuf", "ranges", "quantum", "workers", "chaos", "recovery":
		return nil
	}
	return fmt.Errorf("unknown table %q", table)
}
