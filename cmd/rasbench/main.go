// Command rasbench regenerates the paper's evaluation tables on the
// simulated uniprocessor.
//
// Usage:
//
//	rasbench                     # all tables
//	rasbench -table 1            # just Table 1
//	rasbench -table 3 -scale 4   # Table 3 with 4x workloads
//	rasbench -iters 100000       # longer microbenchmark loops
//	rasbench -table 1 -json -    # machine-readable results on stdout
//	rasbench -table 2 -trace-out t2.json  # Perfetto trace of the runs
//
// Tables: 1 (microbenchmarks), 2 (thread management), 3 (applications),
// 4 (eight architectures), i860 (§7 lock bit), lamport (reservation
// protocols), holdups (§5.3 parthenon-10 analysis), ablation (§4.1 check
// placement), chaos (seeded fault-injection sweep; failures print a
// one-line seed reproducer, replayable with -seed/-level), recovery
// (recoverable mutual exclusion: thread-kill sweeps on both substrates,
// checkpoint replay, crash restore), persist (NVRAM persistence: volatile
// crash sweeps with bounded durability loss and exact recovery, plus the
// exhaustive crash-at-flush-boundary walk), smp (§7 hybrid RAS+spinlock
// vs pure spinlock vs ll/sc across CPU counts; -cpus picks the counts),
// server (the per-CPU request plane vs the mutex queue, over a million
// replayed requests on the SMP guest and the uniprocessor uxserver;
// -cpus picks both the CPU and shard counts), rmr (queue locks: remote
// memory references per passage across CPU counts and coherence modes,
// with the recoverable-MCS kill section; -cpus picks the counts),
// resilience (crash-restart supervision: the seeded 1000-crash vmach
// campaign, the uniproc exactly-once server campaign with retrying
// clients, the forced demotion/re-promotion cycle, and the exhaustive
// supervisor-in-the-loop model walk; campaign rows print one-line
// crashplan reproducers replayable with rasvm -demo resilience -plan).
//
// `rasbench -list` prints every table with its description and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/obs"
)

// benchOpts collects everything the CLI configures for one invocation.
type benchOpts struct {
	table        string
	iters, scale int
	seed         uint64
	level        float64
	timeout      uint64
	cpus         string // CPU counts for -table smp/server, e.g. "1,2,4"
	jsonOut      string // per-table results as JSON ("-" = stdout)
	traceOut     string // Chrome trace-event JSON of every run ("-" = stdout)
	metrics      string // event-derived metrics dump ("-" = stdout)
	list         bool   // print the table catalog and exit
}

func main() {
	var o benchOpts
	flag.StringVar(&o.table, "table", "all", "which table to run: 1,2,3,4,i860,lamport,holdups,ablation,wbuf,ranges,quantum,workers,chaos,recovery,persist,journal,smp,server,rmr,resilience,all")
	flag.IntVar(&o.iters, "iters", 20000, "microbenchmark loop iterations")
	flag.IntVar(&o.scale, "scale", 1, "table 3 workload multiplier")
	flag.Uint64Var(&o.seed, "seed", 0, "chaos master seed (0 = default); use with -level to replay a failure")
	flag.Float64Var(&o.level, "level", 0, "chaos fault intensity in (0,1]; 0 sweeps the default levels")
	flag.Uint64Var(&o.timeout, "timeout", 0, "cycle budget per run (0 = substrate default); a livelocked guest exits nonzero")
	flag.StringVar(&o.jsonOut, "json", "", "write per-table results (name, cycles, restarts, traps) as JSON (\"-\" = stdout)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON file of every substrate run (\"-\" = stdout; load in Perfetto)")
	flag.StringVar(&o.metrics, "metrics", "", "write a plain-text metrics dump derived from the event stream (\"-\" = stdout)")
	flag.StringVar(&o.cpus, "cpus", "", "comma-separated CPU counts for -table smp (default \"1,2,4\"), -table server (default \"1,2,4,8\"), and -table rmr (default \"1,2,3,4,6,8\")")
	flag.BoolVar(&o.list, "list", false, "print every table name with its description and exit")
	flag.Parse()

	if err := runOpts(o); err != nil {
		fmt.Fprintln(os.Stderr, "rasbench:", err)
		os.Exit(1)
	}
}

// run keeps the historical positional signature used throughout the tests;
// runOpts is the flag-level entry.
func run(table string, iters, scale int, seed uint64, level float64, timeout uint64) error {
	return runOpts(benchOpts{table: table, iters: iters, scale: scale,
		seed: seed, level: level, timeout: timeout})
}

// tableResult is one -json record: the aggregate substrate counters behind
// one regenerated table.
type tableResult struct {
	Name        string                `json:"name"`
	Runs        int                   `json:"runs"`
	Cycles      uint64                `json:"cycles"`
	Restarts    uint64                `json:"restarts"`
	Preemptions uint64                `json:"preemptions"`
	Traps       uint64                `json:"traps"`
	SMP         []bench.SMPRow        `json:"smp,omitempty"`        // row-level detail for -table smp
	Persist     []bench.PersistRow    `json:"persist,omitempty"`    // row-level detail for -table persist
	Journal     []bench.JournalRow    `json:"journal,omitempty"`    // row-level detail for -table journal
	Server      []bench.ServerRow     `json:"server,omitempty"`     // row-level detail for -table server
	RMR         []bench.RMRRow        `json:"rmr,omitempty"`        // row-level detail for -table rmr
	Resilience  []bench.ResilienceRow `json:"resilience,omitempty"` // row-level detail for -table resilience
}

// parseCPUList turns "-cpus 1,2,4" into []int{1, 2, 4}.
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -cpus entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func runOpts(o benchOpts) error {
	all := o.table == "all"

	// Observability: one bus receives every substrate run the harness
	// starts (rebased end-to-end by the bench package), feeding the
	// Chrome capture and the event-derived metrics.
	var capture *obs.Capture
	var pm *obs.PaperMetrics
	if o.traceOut != "" || o.metrics != "" {
		bus := obs.NewBus(0)
		if o.traceOut != "" {
			capture = &obs.Capture{}
			bus.Attach(capture)
		}
		if o.metrics != "" {
			pm = obs.NewPaperMetrics(nil)
			bus.Attach(pm)
		}
		bench.SetTraceSink(bus)
		defer bench.SetTraceSink(nil)
	}

	var results []tableResult
	var smpRows []bench.SMPRow               // row-level detail captured by the smp step
	var persistRows []bench.PersistRow       // row-level detail captured by the persist step
	var journalRows []bench.JournalRow       // row-level detail captured by the journal step
	var serverRows []bench.ServerRow         // row-level detail captured by the server step
	var rmrRows []bench.RMRRow               // row-level detail captured by the rmr step
	var resilienceRows []bench.ResilienceRow // row-level detail captured by the resilience step
	runTable := func(name, title string, fn func() (string, error)) error {
		if !all && o.table != name {
			return nil
		}
		fmt.Printf("\n== %s ==\n\n", title)
		var rs bench.RunStats
		bench.CollectStats(&rs)
		out, err := fn()
		bench.CollectStats(nil)
		if err != nil {
			return err
		}
		fmt.Print(out)
		results = append(results, tableResult{Name: name, Runs: rs.Runs,
			Cycles: rs.Cycles, Restarts: rs.Restarts,
			Preemptions: rs.Preemptions, Traps: rs.EmulTraps,
			SMP: smpRows, Persist: persistRows, Journal: journalRows,
			Server: serverRows, RMR: rmrRows, Resilience: resilienceRows})
		return nil
	}

	steps := []struct {
		name, title string
		fn          func() (string, error)
	}{
		{"1", "Table 1: mutual exclusion microbenchmarks, DECstation 5000/200 (simulated)", func() (string, error) {
			rows, err := bench.Table1(o.iters)
			if err != nil {
				return "", err
			}
			return bench.FormatTable1(rows), nil
		}},
		{"2", "Table 2: thread management overhead, emulation vs R.A.S.", func() (string, error) {
			rows, err := bench.Table2(o.iters / 10)
			if err != nil {
				return "", err
			}
			return bench.FormatTable2(rows), nil
		}},
		{"3", "Table 3: application performance", func() (string, error) {
			s := bench.DefaultScale()
			s.TextParas *= o.scale
			s.AFSDirs *= o.scale
			s.ParthChain *= o.scale
			s.ProtonKB *= o.scale
			rows, err := bench.Table3(s)
			if err != nil {
				return "", err
			}
			return bench.FormatTable3(rows), nil
		}},
		{"4", "Table 4: hardware vs software Test-And-Set, eight processors", func() (string, error) {
			rows, err := bench.Table4(o.iters)
			if err != nil {
				return "", err
			}
			return bench.FormatTable4(rows), nil
		}},
		{"i860", "i860 hardware lock bit vs software (§7)", func() (string, error) {
			rows, err := bench.TableI860(o.iters)
			if err != nil {
				return "", err
			}
			return bench.FormatI860(rows), nil
		}},
		{"lamport", "Software reservation protocols (Figure 1 vs Figure 2)", func() (string, error) {
			rows, err := bench.TableLamport(o.iters)
			if err != nil {
				return "", err
			}
			return bench.FormatLamport(rows), nil
		}},
		{"holdups", "parthenon-10 lock holdups (§5.3)", func() (string, error) {
			s := bench.DefaultScale()
			s.Quantum = 3000
			rows, err := bench.TableHoldups(s)
			if err != nil {
				return "", err
			}
			return bench.FormatHoldups(rows), nil
		}},
		{"ablation", "PC-check placement ablation (§4.1)", func() (string, error) {
			rows, err := bench.TableAblation(3, 200)
			if err != nil {
				return "", err
			}
			return bench.FormatAblation(rows), nil
		}},
		{"wbuf", "Write-buffer sensitivity (§5.1 design remark)", func() (string, error) {
			rows, err := bench.TableWriteBuffer(o.iters)
			if err != nil {
				return "", err
			}
			return bench.FormatWriteBuffer(rows), nil
		}},
		{"ranges", "Registration-table size vs check cost (§3.1 restriction)", func() (string, error) {
			rows, err := bench.TableRegistrationRanges(3, 200)
			if err != nil {
				return "", err
			}
			return bench.FormatRanges(rows, arch.R3000().PCCheckDesignatedCycles), nil
		}},
		{"quantum", "Restart frequency vs scheduling quantum (validating §5.3's optimism)", func() (string, error) {
			rows, err := bench.TableQuantumSweep(4, 500, nil)
			if err != nil {
				return "", err
			}
			return bench.FormatQuantumSweep(rows), nil
		}},
		{"workers", "Server worker pool on a uniprocessor (afs-bench client)", func() (string, error) {
			rows, err := bench.TableServerWorkers(nil)
			if err != nil {
				return "", err
			}
			return bench.FormatServerWorkers(rows), nil
		}},
		{"chaos", "Chaos sweep: seeded fault injection, watchdog, degradation", func() (string, error) {
			cfg := bench.DefaultChaosConfig()
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			if o.level > 0 {
				cfg.Levels = []float64{o.level}
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableChaos(cfg)
			if err != nil {
				return "", err
			}
			return bench.FormatChaos(rows), nil
		}},
		{"recovery", "Recovery sweep: thread kills, orphan repair, checkpoint/restore", func() (string, error) {
			cfg := bench.DefaultRecoveryConfig()
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableRecovery(cfg)
			if err != nil {
				return "", err
			}
			return bench.FormatRecovery(rows), nil
		}},
		{"persist", "Persistence sweep: volatile crashes, bounded loss, NVM recovery (E23)", func() (string, error) {
			cfg := bench.DefaultPersistConfig()
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TablePersist(cfg)
			if err != nil {
				return "", err
			}
			persistRows = rows
			return bench.FormatPersist(rows), nil
		}},
		{"journal", "Journaling sweep: undo vs redo WAL, torn crashes, replay (E24)", func() (string, error) {
			cfg := bench.DefaultJournalConfig()
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableJournal(cfg)
			if err != nil {
				return "", err
			}
			journalRows = rows
			return bench.FormatJournal(rows), nil
		}},
		{"smp", "SMP sweep: §7 hybrid RAS+spinlock vs pure spinlock vs ll/sc", func() (string, error) {
			cfg := bench.DefaultSMPConfig()
			cpuList, err := parseCPUList(o.cpus)
			if err != nil {
				return "", err
			}
			if cpuList != nil {
				cfg.CPUList = cpuList
			}
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableSMP(cfg)
			if err != nil {
				return "", err
			}
			smpRows = rows
			return bench.FormatSMP(rows), nil
		}},
		{"server", "Server sweep: per-CPU request plane vs mutex queue, one million requests", func() (string, error) {
			cfg := bench.DefaultServerConfig()
			cpuList, err := parseCPUList(o.cpus)
			if err != nil {
				return "", err
			}
			if cpuList != nil {
				cfg.CPUList = cpuList
				cfg.Shards = cpuList
			}
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableServer(cfg)
			if err != nil {
				return "", err
			}
			serverRows = rows
			return bench.FormatServer(rows), nil
		}},
		{"rmr", "RMR sweep: queue locks' remote references per passage vs the spinlock's", func() (string, error) {
			cfg := bench.DefaultRMRConfig()
			cpuList, err := parseCPUList(o.cpus)
			if err != nil {
				return "", err
			}
			if cpuList != nil {
				cfg.CPUList = cpuList
			}
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableRMR(cfg)
			if err != nil {
				return "", err
			}
			rmrRows = rows
			return bench.FormatRMR(rows), nil
		}},
		{"resilience", "Resilience sweep: crash-restart supervision, exactly-once server, degraded cycle (E27)", func() (string, error) {
			cfg := bench.DefaultResilienceConfig()
			if o.seed != 0 {
				cfg.Seed = o.seed
			}
			cfg.MaxCycles = o.timeout
			rows, err := bench.TableResilience(cfg)
			if err != nil {
				return "", err
			}
			resilienceRows = rows
			return bench.FormatResilience(rows), nil
		}},
	}

	if o.list {
		for _, s := range steps {
			fmt.Printf("%-10s %s\n", s.name, s.title)
		}
		return nil
	}

	known := all
	for _, s := range steps {
		if s.name == o.table {
			known = true
		}
		if err := runTable(s.name, s.title, s.fn); err != nil {
			return err
		}
	}
	if !known {
		return fmt.Errorf("unknown table %q", o.table)
	}

	if o.jsonOut != "" {
		data, err := json.MarshalIndent(results, "", " ")
		if err != nil {
			return err
		}
		if err := writeOut(o.jsonOut, append(data, '\n')); err != nil {
			return err
		}
	}
	if capture != nil {
		data, err := obs.ChromeTrace(capture.Events())
		if err != nil {
			return err
		}
		if err := writeOut(o.traceOut, data); err != nil {
			return err
		}
	}
	if pm != nil {
		if err := writeOut(o.metrics, []byte(pm.Dump())); err != nil {
			return err
		}
	}
	return nil
}

// writeOut writes data to path, with "-" meaning stdout.
func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
