package main

import "testing"

func TestRunEachTable(t *testing.T) {
	// Small iteration counts: this verifies wiring, not statistics.
	for _, table := range []string{"1", "2", "4", "i860", "lamport", "ablation", "wbuf", "ranges", "quantum", "workers"} {
		if err := run(table, 500, 1); err != nil {
			t.Errorf("table %s: %v", table, err)
		}
	}
}

func TestRunTable3Small(t *testing.T) {
	if err := run("3", 500, 1); err != nil {
		t.Errorf("table 3: %v", err)
	}
}

func TestRunHoldups(t *testing.T) {
	if err := run("holdups", 500, 1); err != nil {
		t.Errorf("holdups: %v", err)
	}
}

func TestRunUnknownTable(t *testing.T) {
	if err := run("nonesuch", 100, 1); err == nil {
		t.Error("unknown table accepted")
	}
}
