package main

import "testing"

func TestRunEachTable(t *testing.T) {
	// Small iteration counts: this verifies wiring, not statistics.
	for _, table := range []string{"1", "2", "4", "i860", "lamport", "ablation", "wbuf", "ranges", "quantum", "workers"} {
		if err := run(table, 500, 1, 0, 0, 0); err != nil {
			t.Errorf("table %s: %v", table, err)
		}
	}
}

func TestRunTable3Small(t *testing.T) {
	if err := run("3", 500, 1, 0, 0, 0); err != nil {
		t.Errorf("table 3: %v", err)
	}
}

func TestRunHoldups(t *testing.T) {
	if err := run("holdups", 500, 1, 0, 0, 0); err != nil {
		t.Errorf("holdups: %v", err)
	}
}

func TestRunChaos(t *testing.T) {
	if err := run("chaos", 500, 1, 0, 0, 0); err != nil {
		t.Errorf("chaos: %v", err)
	}
}

func TestRunChaosSeedReplay(t *testing.T) {
	// The -seed/-level replay path used by one-line reproducers.
	if err := run("chaos", 500, 1, 0xBEEF, 1, 0); err != nil {
		t.Errorf("chaos replay: %v", err)
	}
}

func TestRunRecovery(t *testing.T) {
	if err := run("recovery", 500, 1, 0, 0, 0); err != nil {
		t.Errorf("recovery: %v", err)
	}
}

func TestRunSMP(t *testing.T) {
	if err := runOpts(benchOpts{table: "smp", cpus: "1,2"}); err != nil {
		t.Errorf("smp: %v", err)
	}
}

func TestRunSMPBadCPUList(t *testing.T) {
	if err := runOpts(benchOpts{table: "smp", cpus: "1,zero"}); err == nil {
		t.Error("bad -cpus list accepted")
	}
}

func TestRunResilience(t *testing.T) {
	if err := run("resilience", 0, 1, 0, 0, 0); err != nil {
		t.Errorf("table resilience: %v", err)
	}
}

func TestRunUnknownTable(t *testing.T) {
	if err := run("nonesuch", 100, 1, 0, 0, 0); err == nil {
		t.Error("unknown table accepted")
	}
}
