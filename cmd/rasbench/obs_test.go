package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestJSONResultsPerTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	o := benchOpts{table: "2", iters: 500, scale: 1, jsonOut: path}
	if err := runOpts(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []tableResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("results not valid JSON: %v", err)
	}
	if len(results) != 1 || results[0].Name != "2" {
		t.Fatalf("results = %+v, want one record for table 2", results)
	}
	r := results[0]
	if r.Runs == 0 || r.Cycles == 0 {
		t.Errorf("empty aggregate: %+v", r)
	}
	// Table 2 exercises the emulation rows: trap counts must be recorded.
	if r.Traps == 0 {
		t.Errorf("traps = 0, want nonzero for table 2's emulation runs: %+v", r)
	}
}

func TestTraceOutAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	o := benchOpts{table: "2", iters: 500, scale: 1,
		traceOut: tracePath, metrics: metricsPath}
	if err := runOpts(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	// The rebased multi-run stream must still satisfy the structural
	// invariants: monotone per-track timestamps, balanced slices.
	if _, err := obs.ValidateChrome(doc); err != nil {
		t.Fatalf("multi-run trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	md, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "emul_traps_total") ||
		!strings.Contains(string(md), "dispatches_total") {
		t.Errorf("metrics dump incomplete:\n%s", md)
	}
}

func TestJSONToStdoutPath(t *testing.T) {
	// "-" routes to stdout; just verify the path does not error.
	if err := runOpts(benchOpts{table: "1", iters: 200, scale: 1, jsonOut: "-"}); err != nil {
		t.Fatal(err)
	}
}
