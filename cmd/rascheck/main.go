// Command rascheck is the schedule-space model checker: it drives the
// deterministic substrates (vmach, vmach/smp, uniproc) through bounded
// exhaustive or seeded random interleaving exploration, checks invariants
// (mutual exclusion, lost update, deadlock, restart-livelock, RME repair)
// after every step, and on a violation shrinks the schedule to a minimal
// counterexample serialized as a .sched file that this tool — and
// `rasvm -replay-sched` — re-executes deterministically.
//
// Usage:
//
//	rascheck -list                             # available models
//	rascheck -suite [-out dir]                 # the canned verification suite
//	rascheck -model counter -params mech=none  # explore one model
//	rascheck -replay cex.sched [-trace-out t.json]
//
// Exit status: 0 when the outcome matches expectations (suite entries
// carry their own expectation; a plain exploration expects a pass), 1 on
// an unexpected outcome, 2 on usage or internal errors. Every failure
// prints the one-line command that reproduces it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/mcheck"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	list     bool
	suite    bool
	model    string
	params   string
	mode     string
	maxDec   int
	horizon  uint64
	maxSched int
	seed     uint64
	scheds   int
	replay   string
	expect   string
	outDir   string
	jsonOut  string
	traceOut string
}

func run(args []string, out, errw io.Writer) int {
	var c config
	fs := flag.NewFlagSet("rascheck", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.BoolVar(&c.list, "list", false, "list available models and exit")
	fs.BoolVar(&c.suite, "suite", false, "run the canned verification suite")
	fs.StringVar(&c.model, "model", "", "model to explore (see -list)")
	fs.StringVar(&c.params, "params", "", "comma-separated k=v model parameter overrides")
	fs.StringVar(&c.mode, "mode", "exhaustive", "exploration mode: exhaustive or random")
	fs.IntVar(&c.maxDec, "max-decisions", 2, "max forced decisions per schedule (the bound K)")
	fs.Uint64Var(&c.horizon, "horizon", 0, "cap on decision ordinals (0: natural run length)")
	fs.IntVar(&c.maxSched, "max-schedules", 0, "safety cap on executed schedules (0: none)")
	fs.Uint64Var(&c.seed, "seed", 1, "random mode: PRNG seed")
	fs.IntVar(&c.scheds, "schedules", 500, "random mode: schedules to sample")
	fs.StringVar(&c.replay, "replay", "", "replay a .sched counterexample file and exit")
	fs.StringVar(&c.expect, "expect", "pass", "expected outcome: pass or violation")
	fs.StringVar(&c.outDir, "out", "mcheck-out", "directory for .sched and JSON artifacts")
	fs.StringVar(&c.jsonOut, "json", "", "write the report as JSON to this file")
	fs.StringVar(&c.traceOut, "trace-out", "", "replay only: write a Chrome trace of the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case c.list:
		return listModels(out)
	case c.replay != "":
		return replay(&c, out, errw)
	case c.suite:
		return runSuite(&c, out, errw)
	case c.model != "":
		return explore(&c, out, errw)
	}
	fmt.Fprintln(errw, "rascheck: nothing to do; use -list, -suite, -model or -replay")
	return 2
}

func listModels(out io.Writer) int {
	names := mcheck.Models()
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(out, "%-14s %s\n", n, mcheck.ModelDoc(n))
		fmt.Fprintf(out, "%-14s defaults: %s\n", "", mcheck.ModelDefaults(n))
	}
	return 0
}

func parseParams(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	over := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad -params element %q (want k=v)", kv)
		}
		over[k] = v
	}
	return over, nil
}

// writeArtifacts saves the counterexample .sched (and optional JSON
// report) and returns the .sched path.
func writeArtifacts(c *config, rep *mcheck.Report) (string, error) {
	var schedPath string
	if rep.Counterexample != nil {
		if err := os.MkdirAll(c.outDir, 0o755); err != nil {
			return "", err
		}
		schedPath = filepath.Join(c.outDir, rep.ModelName+".sched")
		s := rep.Counterexample.Schedule
		s.Note = fmt.Sprintf("%v", rep.Counterexample.Violations[0])
		if err := s.WriteFile(schedPath); err != nil {
			return "", err
		}
	}
	if c.jsonOut != "" {
		if err := os.MkdirAll(filepath.Dir(c.jsonOut), 0o755); err != nil {
			return "", err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(c.jsonOut, append(data, '\n'), 0o644); err != nil {
			return "", err
		}
	}
	return schedPath, nil
}

func explore(c *config, out, errw io.Writer) int {
	over, err := parseParams(c.params)
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	m, err := mcheck.BuildModel(c.model, over)
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	e := &mcheck.Explorer{
		Model:        m,
		MaxDecisions: c.maxDec,
		Horizon:      c.horizon,
		MaxSchedules: c.maxSched,
	}
	var rep *mcheck.Report
	switch c.mode {
	case "exhaustive":
		rep, err = e.Exhaustive()
	case "random":
		rep, err = e.Random(c.seed, c.scheds, nil)
	default:
		fmt.Fprintf(errw, "rascheck: unknown -mode %q\n", c.mode)
		return 2
	}
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	fmt.Fprintln(out, rep)
	schedPath, err := writeArtifacts(c, rep)
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	if schedPath != "" {
		fmt.Fprintf(out, "counterexample: %s\n", schedPath)
		fmt.Fprintf(out, "replay: rascheck -replay %s\n", schedPath)
	}
	ok := rep.Passed()
	if c.expect == "violation" {
		ok = rep.Counterexample != nil
	}
	if !ok {
		fmt.Fprintf(errw, "rascheck: outcome does not match -expect %s\n", c.expect)
		fmt.Fprintf(errw, "repro: %s\n", reproCommand(c, rep))
		return 1
	}
	return 0
}

// reproCommand reconstructs the exact invocation for a failing run.
func reproCommand(c *config, rep *mcheck.Report) string {
	cmd := fmt.Sprintf("rascheck -model %s", rep.ModelName)
	if c.params != "" {
		cmd += " -params " + c.params
	}
	cmd += fmt.Sprintf(" -mode %s -max-decisions %d", rep.Mode, rep.MaxDecisions)
	if rep.Horizon > 0 {
		cmd += fmt.Sprintf(" -horizon %d", rep.Horizon)
	}
	if rep.Mode == "random" {
		cmd += fmt.Sprintf(" -seed %#x -schedules %d", rep.Seed, c.scheds)
	}
	if c.expect != "pass" {
		cmd += " -expect " + c.expect
	}
	return cmd
}

// suiteTally accumulates one model's share of the suite, for the
// per-model summary table printed after the run.
type suiteTally struct {
	entries    int
	schedules  int
	states     int
	pruned     int
	violations int
	wall       time.Duration
}

func runSuite(c *config, out, errw io.Writer) int {
	failures := 0
	tallies := map[string]*suiteTally{}
	var order []string
	for _, ent := range mcheck.Suite() {
		start := time.Now()
		res := mcheck.RunEntry(ent, mcheck.Options{})
		tl := tallies[ent.Model]
		if tl == nil {
			tl = &suiteTally{}
			tallies[ent.Model] = tl
			order = append(order, ent.Model)
		}
		tl.entries++
		tl.wall += time.Since(start)
		if res.Report != nil {
			tl.schedules += res.Report.Schedules
			tl.states += res.Report.States
			tl.pruned += res.Report.Pruned
			if res.Report.Counterexample != nil {
				tl.violations++
			}
		}
		status := "ok  "
		switch {
		case res.Err != nil:
			status = "ERR "
		case !res.OK:
			status = "FAIL"
		}
		fmt.Fprintf(out, "%s %-46s %s\n", status, res.ReproCommand(), ent.Why)
		if res.Report != nil {
			fmt.Fprintf(out, "     %v\n", res.Report)
		}
		if res.Err != nil || !res.OK {
			failures++
			fmt.Fprintf(errw, "rascheck: suite entry failed; repro: %s -expect %s\n",
				res.ReproCommand(), ent.Expect)
			continue
		}
		// Save every counterexample the suite produced, expected or not.
		if res.Report != nil && res.Report.Counterexample != nil {
			cc := *c
			cc.jsonOut = ""
			if path, err := writeArtifacts(&cc, res.Report); err == nil && path != "" {
				fmt.Fprintf(out, "     counterexample: %s\n", path)
			}
		}
	}
	// Per-model summary: how much schedule space each model's entries
	// cover and what it costs, so suite growth stays visible in CI logs.
	fmt.Fprintf(out, "\n%-16s %7s %10s %8s %8s %10s %10s\n",
		"model", "entries", "schedules", "states", "pruned", "violations", "wall")
	var totEnt, totSched, totPruned int
	var totWall time.Duration
	for _, name := range order {
		tl := tallies[name]
		fmt.Fprintf(out, "%-16s %7d %10d %8d %8d %10d %10s\n",
			name, tl.entries, tl.schedules, tl.states, tl.pruned, tl.violations,
			tl.wall.Round(time.Millisecond))
		totEnt += tl.entries
		totSched += tl.schedules
		totPruned += tl.pruned
		totWall += tl.wall
	}
	fmt.Fprintf(out, "%-16s %7d %10d %8s %8d %10s %10s\n",
		"total", totEnt, totSched, "", totPruned, "", totWall.Round(time.Millisecond))

	if failures > 0 {
		fmt.Fprintf(errw, "rascheck: %d suite entries failed\n", failures)
		return 1
	}
	fmt.Fprintln(out, "suite: all checks matched expectations")
	return 0
}

func replay(c *config, out, errw io.Writer) int {
	s, err := mcheck.ReadFile(c.replay)
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	m, err := mcheck.BuildSchedule(s)
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	opt := mcheck.Options{}
	var capture *obs.Capture
	if c.traceOut != "" {
		capture = &obs.Capture{}
		opt.Tracer = capture
	}
	vio, err := mcheck.RunOnce(m, s.Decisions, opt)
	if err != nil {
		fmt.Fprintln(errw, "rascheck:", err)
		return 2
	}
	fmt.Fprintf(out, "replayed %s: model %s, %d decisions\n", c.replay, s.Model, len(s.Decisions))
	for _, v := range vio {
		fmt.Fprintf(out, "violation: %v\n", v)
	}
	if len(vio) == 0 {
		fmt.Fprintln(out, "no violations reproduced")
	}
	if capture != nil {
		data, err := obs.ChromeTrace(capture.Events())
		if err != nil {
			fmt.Fprintln(errw, "rascheck:", err)
			return 2
		}
		if err := os.WriteFile(c.traceOut, data, 0o644); err != nil {
			fmt.Fprintln(errw, "rascheck:", err)
			return 2
		}
		fmt.Fprintf(out, "trace: %s (%d events)\n", c.traceOut, capture.Len())
	}
	// A replayed counterexample is EXPECTED to violate: exit 0 when it
	// does, 1 when the defect did not reproduce.
	if c.expect == "pass" && len(vio) > 0 {
		return 0 // plain replay: reporting is the point, not judging
	}
	if c.expect == "violation" && len(vio) == 0 {
		fmt.Fprintf(errw, "rascheck: replay did not reproduce a violation\n")
		return 1
	}
	return 0
}
