package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"counter", "broken2store", "smp-counter", "uni-rme"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestExplorePass(t *testing.T) {
	code, out, errw := runCLI(t,
		"-model", "counter", "-params", "mech=registered", "-out", t.TempDir())
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out, errw)
	}
	if !strings.Contains(out, "exhaustive") {
		t.Errorf("no report line:\n%s", out)
	}
}

// A violation run writes the .sched artifact, prints the replay command,
// and — with -expect violation — exits 0; the artifact then replays.
func TestExploreViolationArtifactAndReplay(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	code, out, errw := runCLI(t,
		"-model", "broken2store", "-max-decisions", "1",
		"-expect", "violation", "-out", dir, "-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out, errw)
	}
	sched := filepath.Join(dir, "broken2store.sched")
	if _, err := os.Stat(sched); err != nil {
		t.Fatalf("no .sched artifact: %v\n%s", err, out)
	}
	if !strings.Contains(out, "replay: rascheck -replay") {
		t.Errorf("no replay command printed:\n%s", out)
	}
	if data, err := os.ReadFile(jsonPath); err != nil || !strings.Contains(string(data), "broken2store") {
		t.Errorf("JSON report missing or wrong: %v", err)
	}

	trace := filepath.Join(dir, "replay.json")
	code, out, errw = runCLI(t,
		"-replay", sched, "-expect", "violation", "-trace-out", trace)
	if code != 0 {
		t.Fatalf("replay exit %d\n%s%s", code, out, errw)
	}
	if !strings.Contains(out, "violation:") {
		t.Errorf("replay reproduced nothing:\n%s", out)
	}
	if data, err := os.ReadFile(trace); err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Errorf("Chrome trace missing or malformed: %v", err)
	}
}

// An unexpected outcome exits 1 and prints the one-line repro.
func TestExploreUnexpectedOutcome(t *testing.T) {
	code, _, errw := runCLI(t,
		"-model", "broken2store", "-max-decisions", "1", "-out", t.TempDir())
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "repro: rascheck -model broken2store") {
		t.Errorf("no repro line:\n%s", errw)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-model", "no-such-model"},
		{"-model", "counter", "-params", "nonsense"},
		{"-model", "counter", "-params", "mech=registered", "-mode", "psychic"},
		{"-replay", "/does/not/exist.sched"},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// The full canned suite matches every expectation. This is the
// acceptance run: Figure-3/5 exhaustively clean, the hybrid lock clean
// at 2 CPUs, and the planted defects all caught.
func TestSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite re-runs the slow smp walks; covered by internal/mcheck in short mode")
	}
	code, out, errw := runCLI(t, "-suite", "-out", t.TempDir())
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out, errw)
	}
	if !strings.Contains(out, "suite: all checks matched expectations") {
		t.Errorf("no final verdict:\n%s", out)
	}
	if n := strings.Count(out, "ok  "); n < 12 {
		t.Errorf("only %d suite entries ran", n)
	}
}
