// Command rastrace inspects the observability artifacts the other tools
// produce: Chrome trace-event JSON (rasvm/rasbench -trace-out) and
// folded-stack cycle profiles (rasvm -folded).
//
// Usage:
//
//	rastrace trace.json            # validate and summarize a Chrome trace
//	rastrace -top 5 prof.folded    # heaviest stacks of a folded profile
//	rastrace t1.json t2.json       # several files in one invocation
//
// File type is detected from content: JSON traces start with '{'. A trace
// that fails structural validation (non-monotone per-track timestamps,
// unbalanced slices) exits non-zero — the same checks the repository's
// round-trip tests apply.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "how many rows to show per summary section")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "rastrace: expected at least one trace.json or profile.folded file")
		os.Exit(2)
	}
	if err := run(flag.Args(), *top, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rastrace:", err)
		os.Exit(1)
	}
}

func run(paths []string, top int, w io.Writer) error {
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(paths) > 1 {
			fmt.Fprintf(w, "== %s ==\n", path)
		}
		trimmed := strings.TrimLeft(string(data), " \t\r\n")
		if strings.HasPrefix(trimmed, "{") {
			err = summarizeChrome(w, path, data, top)
		} else {
			err = summarizeFolded(w, data, top)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// summarizeChrome validates a Chrome trace and prints its shape: tracks,
// time span, slice and instant counts, and the busiest instant names.
func summarizeChrome(w io.Writer, path string, data []byte, top int) error {
	doc, err := obs.DecodeChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	chaosInstants, err := obs.ValidateChrome(doc)
	if err != nil {
		return fmt.Errorf("%s: invalid trace: %w", path, err)
	}

	tracks := map[int]bool{}
	names := map[string]int{}
	var slices, instants int
	var minTS, maxTS uint64
	first := true
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		tracks[ev.TID] = true
		switch ev.Phase {
		case "B":
			slices++
		case "i", "I":
			instants++
			names[ev.Name]++
		}
		if first || ev.TS < minTS {
			minTS = ev.TS
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		first = false
	}
	fmt.Fprintf(w, "valid Chrome trace: %d events on %d tracks\n", len(doc.TraceEvents), len(tracks))
	fmt.Fprintf(w, "span:   cycles %d..%d (%d)\n", minTS, maxTS, maxTS-minTS)
	fmt.Fprintf(w, "slices: %d, instants: %d (%d chaos injections)\n", slices, instants, chaosInstants)
	type nc struct {
		name string
		n    int
	}
	rows := make([]nc, 0, len(names))
	for n, c := range names {
		rows = append(rows, nc{n, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %8d  %s\n", r.n, r.name)
	}
	return nil
}

// summarizeFolded prints the heaviest stacks of a folded-stack profile
// ("frameA;frameB weight" per line).
func summarizeFolded(w io.Writer, data []byte, top int) error {
	type row struct {
		stack  string
		weight uint64
	}
	var rows []row
	var total uint64
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return fmt.Errorf("folded profile: line %d has no weight: %q", ln+1, line)
		}
		weight, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			return fmt.Errorf("folded profile: line %d: %w", ln+1, err)
		}
		rows = append(rows, row{line[:i], weight})
		total += weight
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].weight != rows[j].weight {
			return rows[i].weight > rows[j].weight
		}
		return rows[i].stack < rows[j].stack
	})
	fmt.Fprintf(w, "folded profile: %d stacks, %d total cycles\n", len(rows), total)
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.weight) / float64(total)
		}
		fmt.Fprintf(w, "  %12d %5.1f%%  %s\n", r.weight, pct, r.stack)
	}
	return nil
}
