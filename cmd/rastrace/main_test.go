package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	data, err := obs.ChromeTrace([]Event{
		{Cycle: 0, Type: obs.KindDispatch, Thread: 0},
		{Cycle: 50, Type: obs.KindInject, Thread: 0, Arg: 4},
		{Cycle: 200, Type: obs.KindExit, Thread: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

type Event = obs.Event

func TestSummarizeChromeTrace(t *testing.T) {
	path := writeTrace(t, t.TempDir())
	var b strings.Builder
	if err := run([]string{path}, 10, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "valid Chrome trace") {
		t.Errorf("missing validation line:\n%s", out)
	}
	if !strings.Contains(out, "1 chaos injections") {
		t.Errorf("chaos count missing:\n%s", out)
	}
}

func TestSummarizeFoldedProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.folded")
	folded := "main;acquire 700\nmain 250\n[kernel] 50\n"
	if err := os.WriteFile(path, []byte(folded), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{path}, 2, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "3 stacks, 1000 total cycles") {
		t.Errorf("totals wrong:\n%s", out)
	}
	if !strings.Contains(out, "main;acquire") || !strings.Contains(out, "70.0%") {
		t.Errorf("heaviest stack missing:\n%s", out)
	}
	// top=2 must truncate the third row.
	if strings.Contains(out, "[kernel]") {
		t.Errorf("top limit not applied:\n%s", out)
	}
}

func TestMultipleFilesGetHeaders(t *testing.T) {
	dir := t.TempDir()
	trace := writeTrace(t, dir)
	folded := filepath.Join(dir, "p.folded")
	if err := os.WriteFile(folded, []byte("main 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{trace, folded}, 5, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "== ") != 2 {
		t.Errorf("per-file headers missing:\n%s", b.String())
	}
}

func TestRejectsInvalidInputs(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{filepath.Join(dir, "missing.json")}, 5, &b); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	// Structurally broken trace: an E with no matching B.
	doc := `{"traceEvents":[{"name":"running","ph":"E","ts":5,"pid":0,"tid":0}]}`
	if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, 5, &b); err == nil {
		t.Error("unbalanced trace accepted")
	}
	garble := filepath.Join(dir, "g.folded")
	if err := os.WriteFile(garble, []byte("no-weight-here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garble}, 5, &b); err == nil {
		t.Error("weightless folded line accepted")
	}
}
