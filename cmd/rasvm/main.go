// Command rasvm assembles and runs a guest program on the simulated
// uniprocessor, with a choice of processor profile and kernel recovery
// strategy.
//
// Usage:
//
//	rasvm [-arch r3000] [-strategy registration] [-quantum 10000] prog.s
//	rasvm -demo counter -strategy designated -workers 4 -iters 1000
//
// The -demo flag runs a built-in workload instead of a source file:
// "counter" is the shared-counter mutual exclusion workload; its final
// counter value and kernel statistics are printed, so the effect of each
// recovery strategy (including "none") is directly observable.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/guest"
	"repro/internal/vmach/kernel"
)

func main() {
	archName := flag.String("arch", "r3000", "processor profile (see -list)")
	strategy := flag.String("strategy", "registration", "recovery strategy: none, registration, designated, userlevel")
	checkAt := flag.String("check", "suspend", "PC check placement: suspend, resume")
	quantum := flag.Uint64("quantum", 10000, "timeslice in cycles")
	demo := flag.String("demo", "", "built-in workload: counter")
	mech := flag.String("mech", "registered", "demo mechanism: none, registered, designated, emulation, interlocked, lockbit, userlevel, lamport-a, lamport-b, taos-mutex")
	workers := flag.Int("workers", 4, "demo worker threads")
	itersF := flag.Int("iters", 1000, "demo iterations per worker")
	list := flag.Bool("list", false, "list processor profiles and exit")
	trace := flag.Int("trace", 0, "print the last N kernel events (0 disables tracing)")
	flag.Parse()

	if *list {
		for _, n := range arch.Names() {
			fmt.Printf("%-8s %s\n", n, arch.ByName(n))
		}
		return
	}
	if err := run(*archName, *strategy, *checkAt, *quantum, *demo, *mech, *workers, *itersF, *trace, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rasvm:", err)
		os.Exit(1)
	}
}

func run(archName, strategy, checkAt string, quantum uint64,
	demo, mech string, workers, iters, trace int, args []string) error {
	prof := arch.ByName(archName)
	if prof == nil {
		return fmt.Errorf("unknown architecture %q (try -list)", archName)
	}
	var strat kernel.Strategy
	switch strategy {
	case "none":
		strat = kernel.NoRecovery{}
	case "registration":
		strat = &kernel.Registration{}
	case "designated":
		strat = &kernel.Designated{}
	case "userlevel":
		strat = &kernel.UserLevel{}
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	at := kernel.CheckAtSuspend
	if checkAt == "resume" {
		at = kernel.CheckAtResume
	} else if checkAt != "suspend" {
		return fmt.Errorf("unknown check placement %q", checkAt)
	}

	var src string
	switch {
	case demo == "counter":
		m, err := mechByName(mech)
		if err != nil {
			return err
		}
		src = guest.MutexCounterProgram(m, workers, iters)
	case demo != "":
		return fmt.Errorf("unknown demo %q", demo)
	case len(args) == 1:
		raw, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(raw)
	default:
		return fmt.Errorf("expected one source file or -demo")
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	k := kernel.New(kernel.Config{Profile: prof, Strategy: strat, CheckAt: at, Quantum: quantum})
	var tracer *kernel.RingTracer
	if trace > 0 {
		tracer = kernel.NewRingTracer(trace)
		k.Tracer = tracer
	}
	k.Load(prog)
	entry, ok := prog.SymbolAddr("main")
	if !ok {
		return fmt.Errorf("program has no main symbol")
	}
	k.Spawn(entry, guest.StackTop(0))
	runErr := k.Run()

	fmt.Printf("profile:       %s\n", prof)
	fmt.Printf("strategy:      %s (check at %s)\n", strat.Name(), checkAt)
	fmt.Printf("instructions:  %d\n", k.M.Stats.Instructions)
	fmt.Printf("cycles:        %d (%.2f us)\n", k.M.Stats.Cycles, k.Micros())
	fmt.Printf("suspensions:   %d (preemptions %d, page faults %d)\n",
		k.Stats.Suspensions, k.Stats.Preemptions, k.Stats.PageFaults)
	fmt.Printf("restarts:      %d (check rejects %d)\n", k.Stats.Restarts, k.Stats.CheckRejects)
	fmt.Printf("emul traps:    %d, syscalls %d, switches %d\n",
		k.Stats.EmulTraps, k.Stats.Syscalls, k.Stats.Switches)
	if demo == "counter" {
		got := k.M.Mem.Peek(prog.MustSymbol("counter"))
		want := uint32(workers * iters)
		status := "CORRECT"
		if got != want {
			status = "LOST UPDATES"
		}
		fmt.Printf("counter:       %d / %d  [%s]\n", got, want, status)
	}
	if len(k.Console) > 0 {
		fmt.Printf("console:       %v\n", k.Console)
	}
	if tracer != nil {
		fmt.Printf("\nlast %d of %d kernel events:\n%s", len(tracer.Events()), tracer.Total(), tracer)
	}
	return runErr
}

func mechByName(s string) (guest.Mechanism, error) {
	for _, m := range []guest.Mechanism{
		guest.MechNone, guest.MechRegistered, guest.MechDesignated,
		guest.MechEmul, guest.MechInterlocked, guest.MechLockB,
		guest.MechUserLevel, guest.MechLamportA, guest.MechLamportB,
		guest.MechTaosMutex,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}
