// Command rasvm assembles and runs a guest program on the simulated
// uniprocessor, with a choice of processor profile and kernel recovery
// strategy.
//
// Usage:
//
//	rasvm [-arch r3000] [-strategy registration] [-quantum 10000] prog.s
//	rasvm -demo counter -strategy designated -workers 4 -iters 1000
//	rasvm -demo recoverable -kill-at 5000,9000       # orphan + repair
//	rasvm -demo persistent -crash-at 4000            # NVRAM: crash, reboot,
//	                                                 # recover from NVM alone
//	rasvm -demo journal -crash-at 300                # WAL: crash mid-txn,
//	                                                 # dump NVM, reboot, replay
//	rasvm -demo journal -log nofence -crash-at 300 -torn   # the planted bug
//	rasvm -demo counter -crash-at 8000 -checkpoint ck.bin
//	rasvm -restore ck.bin                            # replay the rest
//	rasvm -replay-sched cex.sched -trace-out t.json  # re-run a rascheck
//	                                                 # counterexample
//
// The -demo flag runs a built-in workload instead of a source file:
// "counter" is the shared-counter mutual exclusion workload; "recoverable"
// is the owner+epoch recoverable mutex, which survives -kill-at thread
// deaths by repairing the orphaned lock; "persistent" runs the
// crash-consistent variant on the two-tier NVRAM memory — with -crash-at
// the injected crash DISCARDS unflushed lines, and the same binary then
// reboots over the surviving NVM image, repairs the lock, and completes
// the workload; "journal" runs the logged two-word transaction guest
// (-log picks redo, undo, or the deliberately broken nofence) — with
// -crash-at the demo dumps the NVM image the crash left behind, decides
// from the surviving log record alone whether the in-flight transaction
// committed, reboots without reloading, and verifies the recovered state
// (-torn makes the crash a torn write that persists only a prefix of
// each in-flight line); "smp" runs the shared counter on
// a multi-CPU system (-cpus) under the §7 hybrid RAS+spinlock (-lock
// picks hybrid, spinlock, llsc, or the unsound ras-only control);
// "qlock" runs the queue-lock zoo (-lock adds mcs, rmcs, and the planted
// rmcs-unspliced) with RMR accounting in -mode cc or dsm. The
// final counter value and kernel statistics are printed, so the effect of
// each recovery strategy (including "none") is directly observable.
//
//	rasvm -demo smp -cpus 4                          # §7 hybrid lock
//	rasvm -demo smp -cpus 2 -lock ras-only           # loses updates
//	rasvm -demo server -cpus 4                       # per-CPU request plane
//	rasvm -demo server -cpus 2 -variant mutex        # global-queue baseline
//	rasvm -demo qlock -lock mcs -cpus 8              # MCS: O(1) RMR/passage
//	rasvm -demo qlock -lock rmcs -cpus 2 -kill-at 300  # dead-owner repair
//	rasvm -demo resilience -plan 'crashplan:seed=0x1,point=step,span=230,crashes=1000,mix=1:2:1'
//	                                                 # supervised crash-restart
//	                                                 # campaign (TableResilience repro)
//
// Fault and recovery flags: -kill-at injects thread kills at the given
// retired-instruction steps; -crash-at injects a whole-machine crash.
// -checkpoint writes a binary snapshot — at step -checkpoint-at, or where
// the crash struck — that -restore resumes and replays deterministically.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/guest"
	"repro/internal/mcheck"
	"repro/internal/obs"
	"repro/internal/vmach"
	"repro/internal/vmach/kernel"
)

// options collects everything the CLI configures for one run.
type options struct {
	arch, strategy, checkAt string
	quantum                 uint64
	demo, mech              string
	workers, iters, trace   int
	timeout                 uint64 // cycle budget; 0 = kernel default
	watchdog                string // off, extend, abort
	maxRestarts             uint64
	killAt                  string // comma-separated retired-instruction steps
	crashAt                 uint64 // whole-machine crash step (0 = none)
	torn                    bool   // -crash-at is a torn-write crash (persist demos)
	logMode                 string // -demo journal: redo, undo, nofence
	checkpoint              string // snapshot file to write
	checkpointAt            uint64 // step to checkpoint at (0 = only at crash)
	restore                 string // snapshot file to resume from
	replaySched             string // mcheck .sched counterexample to re-execute
	traceOut                string // Chrome trace-event JSON destination ("-" = stdout)
	metrics                 string // metrics dump destination ("-" = stdout)
	profTop                 int    // top-N cycle profile report (0 = off)
	folded                  string // folded-stack profile destination ("-" = stdout)
	cpus                    int    // -demo smp/server: number of CPUs
	lock                    string // -demo smp: lock implementation
	variant                 string // -demo server: request-plane variant
	killCPU                 int    // -demo smp: CPU whose running thread -kill-at kills
	smpMode                 string // -demo qlock: RMR counting mode, cc or dsm
	plan                    string // -demo resilience: one-line crash plan
	args                    []string
	setFlags                map[string]bool // flags the user set explicitly
}

// demos lists the built-in workloads -demo accepts.
var demos = []string{"counter", "recoverable", "persistent", "journal", "smp", "server", "qlock", "resilience"}

func main() {
	var o options
	flag.StringVar(&o.arch, "arch", "r3000", "processor profile (see -list)")
	flag.StringVar(&o.strategy, "strategy", "registration", "recovery strategy: none, registration, designated, userlevel")
	flag.StringVar(&o.checkAt, "check", "suspend", "PC check placement: suspend, resume")
	flag.Uint64Var(&o.quantum, "quantum", 10000, "timeslice in cycles")
	flag.StringVar(&o.demo, "demo", "", "built-in workload: counter")
	flag.StringVar(&o.mech, "mech", "registered", "demo mechanism: none, registered, designated, emulation, interlocked, lockbit, userlevel, lamport-a, lamport-b, taos-mutex")
	flag.IntVar(&o.workers, "workers", 4, "demo worker threads")
	flag.IntVar(&o.iters, "iters", 1000, "demo iterations per worker")
	list := flag.Bool("list", false, "list processor profiles and exit")
	flag.IntVar(&o.trace, "trace", 0, "print the last N kernel events (0 disables tracing)")
	flag.Uint64Var(&o.timeout, "timeout", 0, "cycle budget (0 = default); a livelocked guest exits nonzero with a diagnostic")
	flag.StringVar(&o.watchdog, "watchdog", "off", "restart-livelock watchdog: off, extend, abort")
	flag.Uint64Var(&o.maxRestarts, "maxrestarts", 0, "watchdog consecutive-restart threshold (0 = default 32)")
	flag.StringVar(&o.killAt, "kill-at", "", "kill the running thread at these retired-instruction steps (comma-separated)")
	flag.Uint64Var(&o.crashAt, "crash-at", 0, "inject a whole-machine crash at this step (0 = none)")
	flag.BoolVar(&o.torn, "torn", false, "make -crash-at a torn-write crash: pending lines persist only a word prefix (persistent/journal demos)")
	flag.StringVar(&o.logMode, "log", "redo", "-demo journal: logging discipline: redo, undo, nofence (planted bug)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "write a binary machine snapshot to this file (at -checkpoint-at, or where a crash struck)")
	flag.Uint64Var(&o.checkpointAt, "checkpoint-at", 0, "retired-instruction step to checkpoint at (0 = only at crash)")
	flag.StringVar(&o.restore, "restore", "", "resume from a snapshot file instead of loading a program")
	flag.StringVar(&o.replaySched, "replay-sched", "", "re-execute an mcheck .sched counterexample (rascheck output) and report its violations")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON file of the run (\"-\" = stdout; load in Perfetto)")
	flag.StringVar(&o.metrics, "metrics", "", "write a plain-text metrics dump derived from the event stream (\"-\" = stdout)")
	flag.IntVar(&o.profTop, "profile", 0, "print the top-N symbols of the cycle-attributed profile (0 disables)")
	flag.StringVar(&o.folded, "folded", "", "write the cycle profile as folded stacks for flamegraph tools (\"-\" = stdout)")
	flag.IntVar(&o.cpus, "cpus", 1, "-demo smp: number of CPUs")
	flag.StringVar(&o.lock, "lock", "hybrid", "-demo smp: lock implementation: hybrid, spinlock, llsc, ras-only")
	flag.StringVar(&o.variant, "variant", "percpu", "-demo server: request plane: percpu, mutex, racy")
	flag.IntVar(&o.killCPU, "kill-cpu", 0, "-demo smp: CPU whose running thread -kill-at kills")
	flag.StringVar(&o.smpMode, "mode", "cc", "-demo qlock: RMR counting mode: cc (cache-coherent) or dsm (distributed shared memory)")
	flag.StringVar(&o.plan, "plan", "", "-demo resilience: one-line crash plan (crashplan:seed=...,point=...,span=...,crashes=...,mix=c:v:t); empty derives a default campaign")
	flag.Parse()
	o.args = flag.Args()
	o.setFlags = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { o.setFlags[f.Name] = true })

	if *list {
		for _, n := range arch.Names() {
			fmt.Printf("%-8s %s\n", n, arch.ByName(n))
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rasvm:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.replaySched != "" {
		return runReplaySched(o)
	}
	if o.demo == "smp" {
		return runSMP(o)
	}
	if o.demo == "server" {
		return runServerDemo(o)
	}
	if o.demo == "qlock" {
		return runQlockDemo(o)
	}
	if o.demo == "persistent" {
		return runPersistent(o)
	}
	if o.demo == "resilience" {
		return runResilience(o)
	}
	if o.demo == "journal" {
		return runJournal(o)
	}
	prof := arch.ByName(o.arch)
	if prof == nil {
		return fmt.Errorf("unknown architecture %q (try -list)", o.arch)
	}
	var strat kernel.Strategy
	switch o.strategy {
	case "none":
		strat = kernel.NoRecovery{}
	case "registration":
		strat = &kernel.Registration{}
	case "designated":
		strat = &kernel.Designated{}
	case "userlevel":
		strat = &kernel.UserLevel{}
	default:
		return fmt.Errorf("unknown strategy %q", o.strategy)
	}
	at := kernel.CheckAtSuspend
	if o.checkAt == "resume" {
		at = kernel.CheckAtResume
	} else if o.checkAt != "suspend" {
		return fmt.Errorf("unknown check placement %q", o.checkAt)
	}
	var wd chaos.Watchdog
	switch o.watchdog {
	case "off", "":
	case "extend":
		wd = chaos.Watchdog{Policy: chaos.WatchdogExtend, MaxRestarts: o.maxRestarts}
	case "abort":
		wd = chaos.Watchdog{Policy: chaos.WatchdogAbort, MaxRestarts: o.maxRestarts}
	default:
		return fmt.Errorf("unknown watchdog policy %q", o.watchdog)
	}

	faults, err := faultSchedule(o)
	if err != nil {
		return err
	}
	cfg := kernel.Config{Profile: prof, Strategy: strat, CheckAt: at,
		Quantum: o.quantum, MaxCycles: o.timeout, Watchdog: wd, Faults: faults}

	var k *kernel.Kernel
	var prog *asm.Program
	if o.restore != "" {
		raw, err := os.ReadFile(o.restore)
		if err != nil {
			return err
		}
		snap, err := kernel.DecodeSnapshot(raw)
		if err != nil {
			return err
		}
		if k, err = kernel.Restore(cfg, snap); err != nil {
			return err
		}
		fmt.Printf("restored:      %s (%d threads at step cursor %d)\n",
			o.restore, len(k.Threads()), snap.Steps)
	} else {
		var src string
		switch {
		case o.demo == "counter":
			m, err := mechByName(o.mech)
			if err != nil {
				return err
			}
			src = guest.MutexCounterProgram(m, o.workers, o.iters)
		case o.demo == "recoverable":
			src = guest.RecoverableCounterProgram(o.workers, o.iters)
		case o.demo != "":
			return fmt.Errorf("unknown demo %q (available: %s)", o.demo, strings.Join(demos, ", "))
		case len(o.args) == 1:
			raw, err := os.ReadFile(o.args[0])
			if err != nil {
				return err
			}
			src = string(raw)
		default:
			return fmt.Errorf("expected one source file, -demo, or -restore")
		}
		if prog, err = asm.Assemble(src); err != nil {
			return err
		}
		k = kernel.New(cfg)
		k.Load(prog)
		entry, ok := prog.SymbolAddr("main")
		if !ok {
			return fmt.Errorf("program has no main symbol")
		}
		k.Spawn(entry, guest.StackTop(0))
	}
	// Observability: one bus feeds the -trace ring tail, the -trace-out
	// Chrome capture, and the -metrics event-derived counters.
	var tracer *kernel.RingTracer
	var capture *obs.Capture
	var pm *obs.PaperMetrics
	if o.trace > 0 || o.traceOut != "" || o.metrics != "" {
		bus := obs.NewBus(o.trace)
		if o.trace > 0 {
			tracer = bus.Ring()
		}
		if o.traceOut != "" {
			capture = &obs.Capture{}
			bus.Attach(capture)
		}
		if o.metrics != "" {
			pm = obs.NewPaperMetrics(nil)
			bus.Attach(pm)
		}
		k.Tracer = bus
	}
	var cprof *obs.CycleProfiler
	if o.profTop > 0 || o.folded != "" {
		cprof = obs.NewCycleProfiler()
		k.AttachProfiler(cprof, prog)
	}

	var runErr error
	if o.checkpointAt > 0 {
		var finished bool
		if finished, runErr = k.RunSteps(o.checkpointAt); !finished {
			if err := writeCheckpoint(k, o.checkpoint, "at step"); err != nil {
				return err
			}
			runErr = k.Run()
		}
	} else {
		runErr = k.Run()
	}
	if errors.Is(runErr, kernel.ErrMachineCrash) && o.checkpoint != "" && o.checkpointAt == 0 {
		if err := writeCheckpoint(k, o.checkpoint, "at crash"); err != nil {
			return err
		}
	}

	fmt.Printf("profile:       %s\n", prof)
	fmt.Printf("strategy:      %s (check at %s)\n", strat.Name(), o.checkAt)
	fmt.Printf("instructions:  %d\n", k.M.Stats.Instructions)
	fmt.Printf("cycles:        %d (%.2f us)\n", k.M.Stats.Cycles, k.Micros())
	fmt.Printf("suspensions:   %d (preemptions %d, page faults %d)\n",
		k.Stats.Suspensions, k.Stats.Preemptions, k.Stats.PageFaults)
	fmt.Printf("restarts:      %d (check rejects %d)\n", k.Stats.Restarts, k.Stats.CheckRejects)
	fmt.Printf("emul traps:    %d, syscalls %d, switches %d\n",
		k.Stats.EmulTraps, k.Stats.Syscalls, k.Stats.Switches)
	if k.Stats.WatchdogExtends > 0 || k.Stats.WatchdogAborts > 0 {
		fmt.Printf("watchdog:      %d extensions, %d aborts\n",
			k.Stats.WatchdogExtends, k.Stats.WatchdogAborts)
	}
	if k.Stats.Kills > 0 {
		fmt.Printf("kills:         %d\n", k.Stats.Kills)
	}
	if prog != nil && o.demo == "counter" {
		got := k.M.Mem.Peek(prog.MustSymbol("counter"))
		want := uint32(o.workers * o.iters)
		status := "CORRECT"
		if got != want {
			status = "LOST UPDATES"
		}
		fmt.Printf("counter:       %d / %d  [%s]\n", got, want, status)
	}
	if prog != nil && o.demo == "recoverable" {
		lock := k.M.Mem.Peek(prog.MustSymbol("lock"))
		fmt.Printf("counter:       %d (max %d; killed threads stop counting)\n",
			k.M.Mem.Peek(prog.MustSymbol("counter")), o.workers*o.iters)
		fmt.Printf("lock word:     %#x (owner %d, epoch %d), repairs %d\n",
			lock, int32(lock&0xFFFF)-1, lock>>16, k.M.Mem.Peek(prog.MustSymbol("repairs")))
	}
	if len(k.Console) > 0 {
		fmt.Printf("console:       %v\n", k.Console)
	}
	if tracer != nil {
		fmt.Printf("\nlast %d of %d kernel events:\n%s", len(tracer.Events()), tracer.Total(), tracer)
	}
	if capture != nil {
		data, err := obs.ChromeTrace(capture.Events())
		if err != nil {
			return err
		}
		if err := writeOut(o.traceOut, data); err != nil {
			return err
		}
		if o.traceOut != "-" {
			fmt.Printf("trace:         %s (%d events; load in Perfetto)\n", o.traceOut, capture.Len())
		}
	}
	if pm != nil {
		if err := writeOut(o.metrics, []byte(pm.Dump())); err != nil {
			return err
		}
	}
	if cprof != nil && o.profTop > 0 {
		fmt.Printf("\ncycle profile (top %d):\n%s", o.profTop, cprof.Report(o.profTop))
	}
	if cprof != nil && o.folded != "" {
		if err := writeOut(o.folded, []byte(cprof.Folded())); err != nil {
			return err
		}
	}
	if errors.Is(runErr, kernel.ErrLivelock) || errors.Is(runErr, kernel.ErrBudget) {
		// A livelocked or overrunning guest: name each thread's last PC and
		// restart count so the offending sequence is identifiable.
		fmt.Printf("\nguest did not finish (%v); thread states:\n", runErr)
		for _, th := range k.Threads() {
			fmt.Printf("  thread %-2d %-8s pc=%#08x restarts=%d suspensions=%d\n",
				th.ID, th.State, th.Ctx.PC, th.Restarts, th.Suspensions)
		}
	}
	return runErr
}

// runPersistent demonstrates the NVRAM persistence model end to end: the
// crash-consistent counter guest runs on a memory with a volatile
// write-back tier in front of NVM, -crash-at injects a whole-machine
// crash that DISCARDS unflushed lines, and the same binary then reboots
// over the surviving NVM image — no reload — repairs the lock it finds
// there, and completes the workload exactly.
func runPersistent(o options) error {
	prog, err := asm.Assemble(guest.PersistentCounterProgram(o.workers, o.iters))
	if err != nil {
		return err
	}
	mem := vmach.NewMemory()
	mem.EnablePersistence()
	boot := func(faults chaos.Injector, load bool) *kernel.Kernel {
		k := kernel.New(kernel.Config{
			Strategy: &kernel.Designated{}, CheckAt: kernel.CheckAtResume,
			Quantum: o.quantum, MaxCycles: o.timeout, Memory: mem, Faults: faults,
			Watchdog: chaos.Watchdog{Policy: chaos.WatchdogExtend},
		})
		if load {
			k.Load(prog)
		}
		k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
		return k
	}
	var faults chaos.Injector
	if o.crashAt > 0 {
		faults = chaos.OneShot{Point: chaos.PointStep, N: o.crashAt,
			Action: chaos.Action{CrashVolatile: true, Torn: o.torn}}
	}
	counter := prog.MustSymbol("counter")
	lock := prog.MustSymbol("lock")
	repairs := prog.MustSymbol("repairs")

	fmt.Printf("demo:          persistent (%d workers x %d iters, %d-byte persistence lines)\n",
		o.workers, o.iters, vmach.LineBytes)
	k := boot(faults, true)
	runErr := k.Run()
	// want is the exact final counter: the reboot reruns the full workload
	// on top of whatever the NVM image preserved.
	want := uint32(o.workers * o.iters)
	status := "CORRECT"
	if o.crashAt > 0 {
		if !errors.Is(runErr, kernel.ErrMachineCrash) {
			return fmt.Errorf("the guest finished before step %d (run = %v); try a smaller -crash-at", o.crashAt, runErr)
		}
		// The injected crash already discarded the volatile tier: what the
		// memory holds now is the NVM image alone.
		c0 := mem.Peek(counter)
		fmt.Printf("crash:         volatile tier discarded at step %d\n", o.crashAt)
		fmt.Printf("NVM state:     counter=%d lock=%#x repairs=%d\n",
			c0, mem.Peek(lock), mem.Peek(repairs))
		fmt.Printf("boot 1:        %d flushes, %d fences, %d lines persisted\n",
			k.M.Stats.Flushes, k.M.Stats.Fences, k.M.Stats.LinesPersisted)
		k = boot(nil, false) // reboot: program image and lock state are in NVM
		if err := k.Run(); err != nil {
			return fmt.Errorf("reboot run: %w", err)
		}
		want += c0
		status = "RECOVERED"
	} else if runErr != nil {
		return runErr
	}

	got := mem.Peek(counter)
	if got != want {
		status = "LOST UPDATES"
	}
	lw := mem.Peek(lock)
	fmt.Printf("counter:       %d / %d  [%s]\n", got, want, status)
	fmt.Printf("lock word:     %#x (owner %d, epoch %d), repairs %d\n",
		lw, int32(lw&0xFFFF)-1, lw>>16, mem.Peek(repairs))
	fmt.Printf("persists:      %d flushes, %d fences, %d lines drained (%d cycles)\n",
		k.M.Stats.Flushes, k.M.Stats.Fences, k.M.Stats.LinesPersisted, k.M.Stats.PersistCycles)
	return nil
}

// runJournal demonstrates the crash-consistent journaling discipline end
// to end: the guest increments two NVM words inside a logged transaction,
// -crash-at kills the machine mid-transaction (optionally with -torn
// write-backs), the demo dumps the NVM image the crash left behind and
// decides — from the surviving log record alone, exactly as the guest's
// own recovery path will — whether the in-flight transaction committed,
// then reboots the same binary over the surviving image and verifies the
// recovered state. With -log nofence the record never reaches NVM, and a
// torn crash that splits the two data write-backs leaves the words
// unequal with nothing to repair them from: the demo reports the
// inconsistency instead of hiding it.
func runJournal(o options) error {
	var src string
	switch o.logMode {
	case "redo", "undo":
		src = guest.JournalProgram(o.logMode, o.iters)
	case "nofence":
		src = guest.NoFenceJournalProgram(o.iters)
	default:
		return fmt.Errorf("-demo journal: unknown -log %q (redo, undo, nofence)", o.logMode)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	mem := vmach.NewMemory()
	mem.EnablePersistence()
	boot := func(faults chaos.Injector, load bool) *kernel.Kernel {
		k := kernel.New(kernel.Config{
			Strategy: &kernel.Designated{}, CheckAt: kernel.CheckAtResume,
			Quantum: o.quantum, MaxCycles: o.timeout, Memory: mem, Faults: faults,
		})
		if load {
			k.Load(prog)
		}
		k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
		return k
	}
	var faults chaos.Injector
	if o.crashAt > 0 {
		faults = chaos.OneShot{Point: chaos.PointStep, N: o.crashAt,
			Action: chaos.Action{CrashVolatile: true, Torn: o.torn}}
	}
	jlog := prog.MustSymbol("jlog")
	applied := prog.MustSymbol("applied")
	va := prog.MustSymbol("va")
	vb := prog.MustSymbol("vb")

	fmt.Printf("demo:          journal (-log %s, target %d, %d-byte persistence lines)\n",
		o.logMode, o.iters, vmach.LineBytes)
	k := boot(faults, true)
	runErr := k.Run()
	recovered := false
	if o.crashAt > 0 {
		if !errors.Is(runErr, kernel.ErrMachineCrash) {
			return fmt.Errorf("the guest finished before step %d (run = %v); try a smaller -crash-at", o.crashAt, runErr)
		}
		// The injected crash already discarded the volatile tier: the
		// memory now holds the NVM image alone. Read the surviving record
		// and judge it the way the guest's recovery path will.
		kind := "clean"
		if o.torn {
			kind = "torn"
		}
		seq, xa, xb, ck := mem.Peek(jlog), mem.Peek(jlog+4), mem.Peek(jlog+8), mem.Peek(jlog+12)
		ap := mem.Peek(applied)
		verdict := "stale (seq != applied+1): nothing in flight"
		if guest.JournalCksum(seq, xa, xb) != ck {
			verdict = "invalid checksum: torn or never flushed, data untouched"
		} else if seq == ap+1 {
			verdict = "commits: recovery will repair va and vb from it"
		}
		fmt.Printf("crash:         %s, volatile tier discarded at step %d\n", kind, o.crashAt)
		fmt.Printf("NVM state:     va=%d vb=%d applied=%d\n", mem.Peek(va), mem.Peek(vb), ap)
		fmt.Printf("NVM record:    seq=%d xa=%d xb=%d ck=%#x — %s\n", seq, xa, xb, ck, verdict)
		fmt.Printf("boot 1:        %d flushes, %d fences, %d lines persisted\n",
			k.M.Stats.Flushes, k.M.Stats.Fences, k.M.Stats.LinesPersisted)
		k = boot(nil, false) // reboot: program image and journal are in NVM
		if err := k.Run(); err != nil {
			return fmt.Errorf("reboot run: %w", err)
		}
		recovered = true
	} else if runErr != nil {
		return runErr
	}

	a, b := mem.Peek(va), mem.Peek(vb)
	status := "CONSISTENT"
	if recovered {
		status = "RECOVERED"
	}
	if a != b || a != uint32(o.iters) {
		status = "INCONSISTENT"
	}
	fmt.Printf("va / vb:       %d / %d (target %d)  [%s]\n", a, b, o.iters, status)
	fmt.Printf("transactions:  %d applied\n", mem.Peek(applied))
	fmt.Printf("persists:      %d flushes, %d fences, %d lines drained (%d cycles)\n",
		k.M.Stats.Flushes, k.M.Stats.Fences, k.M.Stats.LinesPersisted, k.M.Stats.PersistCycles)
	if status == "INCONSISTENT" {
		return fmt.Errorf("journal %s: recovered state is inconsistent (va=%d vb=%d)", o.logMode, a, b)
	}
	return nil
}

// runReplaySched re-executes a model-checker counterexample: the .sched
// file names the model and its forced decisions, so the run is exact —
// the same violation the checker found, now with the full observability
// stack attached (-trace-out for a Chrome trace of the failing
// interleaving).
func runReplaySched(o options) error {
	s, err := mcheck.ReadFile(o.replaySched)
	if err != nil {
		return err
	}
	m, err := mcheck.BuildSchedule(s)
	if err != nil {
		return err
	}
	opt := mcheck.Options{}
	var capture *obs.Capture
	if o.traceOut != "" {
		capture = &obs.Capture{}
		opt.Tracer = capture
	}
	vio, err := mcheck.RunOnce(m, s.Decisions, opt)
	if err != nil {
		return err
	}
	fmt.Printf("schedule:      %s\n", o.replaySched)
	fmt.Printf("model:         %s [%s]\n", s.Model, s.ParamString())
	for _, d := range s.Decisions {
		fmt.Printf("decision:      %s at ordinal %d\n", d.Act, d.At)
	}
	if s.Note != "" {
		fmt.Printf("note:          %s\n", s.Note)
	}
	for _, v := range vio {
		fmt.Printf("violation:     %v\n", v)
	}
	if len(vio) == 0 {
		fmt.Printf("violations:    none reproduced\n")
	}
	if capture != nil {
		data, err := obs.ChromeTrace(capture.Events())
		if err != nil {
			return err
		}
		if err := writeOut(o.traceOut, data); err != nil {
			return err
		}
		if o.traceOut != "-" {
			fmt.Printf("trace:         %s (%d events; load in Perfetto)\n", o.traceOut, capture.Len())
		}
	}
	return nil
}

// writeOut writes data to path, with "-" meaning stdout.
func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// faultSchedule builds the injector for the -kill-at / -crash-at flags.
func faultSchedule(o options) (chaos.Injector, error) {
	var shots []chaos.Injector
	if o.killAt != "" {
		for _, f := range strings.Split(o.killAt, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("-kill-at: bad step %q", f)
			}
			shots = append(shots, chaos.OneShot{Point: chaos.PointStep, N: n, Action: chaos.Action{Kill: true}})
		}
	}
	if o.crashAt > 0 {
		shots = append(shots, chaos.OneShot{Point: chaos.PointStep, N: o.crashAt, Action: chaos.Action{Crash: true}})
	}
	if len(shots) == 0 {
		return nil, nil
	}
	return chaos.Compose(shots...), nil
}

// writeCheckpoint encodes the kernel's state into the -checkpoint file.
func writeCheckpoint(k *kernel.Kernel, path, why string) error {
	if path == "" {
		return errors.New("-checkpoint-at given without -checkpoint file")
	}
	enc := k.Capture().Encode()
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("checkpoint:    %s (%d bytes, %s %d); replay with -restore %s\n",
		path, len(enc), why, k.M.Stats.Instructions, path)
	return nil
}

func mechByName(s string) (guest.Mechanism, error) {
	for _, m := range []guest.Mechanism{
		guest.MechNone, guest.MechRegistered, guest.MechDesignated,
		guest.MechEmul, guest.MechInterlocked, guest.MechLockB,
		guest.MechUserLevel, guest.MechLamportA, guest.MechLamportB,
		guest.MechTaosMutex,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}
