// Command rasvm assembles and runs a guest program on the simulated
// uniprocessor, with a choice of processor profile and kernel recovery
// strategy.
//
// Usage:
//
//	rasvm [-arch r3000] [-strategy registration] [-quantum 10000] prog.s
//	rasvm -demo counter -strategy designated -workers 4 -iters 1000
//
// The -demo flag runs a built-in workload instead of a source file:
// "counter" is the shared-counter mutual exclusion workload; its final
// counter value and kernel statistics are printed, so the effect of each
// recovery strategy (including "none") is directly observable.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/guest"
	"repro/internal/vmach/kernel"
)

// options collects everything the CLI configures for one run.
type options struct {
	arch, strategy, checkAt string
	quantum                 uint64
	demo, mech              string
	workers, iters, trace   int
	timeout                 uint64 // cycle budget; 0 = kernel default
	watchdog                string // off, extend, abort
	maxRestarts             uint64
	args                    []string
}

func main() {
	var o options
	flag.StringVar(&o.arch, "arch", "r3000", "processor profile (see -list)")
	flag.StringVar(&o.strategy, "strategy", "registration", "recovery strategy: none, registration, designated, userlevel")
	flag.StringVar(&o.checkAt, "check", "suspend", "PC check placement: suspend, resume")
	flag.Uint64Var(&o.quantum, "quantum", 10000, "timeslice in cycles")
	flag.StringVar(&o.demo, "demo", "", "built-in workload: counter")
	flag.StringVar(&o.mech, "mech", "registered", "demo mechanism: none, registered, designated, emulation, interlocked, lockbit, userlevel, lamport-a, lamport-b, taos-mutex")
	flag.IntVar(&o.workers, "workers", 4, "demo worker threads")
	flag.IntVar(&o.iters, "iters", 1000, "demo iterations per worker")
	list := flag.Bool("list", false, "list processor profiles and exit")
	flag.IntVar(&o.trace, "trace", 0, "print the last N kernel events (0 disables tracing)")
	flag.Uint64Var(&o.timeout, "timeout", 0, "cycle budget (0 = default); a livelocked guest exits nonzero with a diagnostic")
	flag.StringVar(&o.watchdog, "watchdog", "off", "restart-livelock watchdog: off, extend, abort")
	flag.Uint64Var(&o.maxRestarts, "maxrestarts", 0, "watchdog consecutive-restart threshold (0 = default 32)")
	flag.Parse()
	o.args = flag.Args()

	if *list {
		for _, n := range arch.Names() {
			fmt.Printf("%-8s %s\n", n, arch.ByName(n))
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rasvm:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	prof := arch.ByName(o.arch)
	if prof == nil {
		return fmt.Errorf("unknown architecture %q (try -list)", o.arch)
	}
	var strat kernel.Strategy
	switch o.strategy {
	case "none":
		strat = kernel.NoRecovery{}
	case "registration":
		strat = &kernel.Registration{}
	case "designated":
		strat = &kernel.Designated{}
	case "userlevel":
		strat = &kernel.UserLevel{}
	default:
		return fmt.Errorf("unknown strategy %q", o.strategy)
	}
	at := kernel.CheckAtSuspend
	if o.checkAt == "resume" {
		at = kernel.CheckAtResume
	} else if o.checkAt != "suspend" {
		return fmt.Errorf("unknown check placement %q", o.checkAt)
	}
	var wd chaos.Watchdog
	switch o.watchdog {
	case "off", "":
	case "extend":
		wd = chaos.Watchdog{Policy: chaos.WatchdogExtend, MaxRestarts: o.maxRestarts}
	case "abort":
		wd = chaos.Watchdog{Policy: chaos.WatchdogAbort, MaxRestarts: o.maxRestarts}
	default:
		return fmt.Errorf("unknown watchdog policy %q", o.watchdog)
	}

	var src string
	switch {
	case o.demo == "counter":
		m, err := mechByName(o.mech)
		if err != nil {
			return err
		}
		src = guest.MutexCounterProgram(m, o.workers, o.iters)
	case o.demo != "":
		return fmt.Errorf("unknown demo %q", o.demo)
	case len(o.args) == 1:
		raw, err := os.ReadFile(o.args[0])
		if err != nil {
			return err
		}
		src = string(raw)
	default:
		return fmt.Errorf("expected one source file or -demo")
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	k := kernel.New(kernel.Config{Profile: prof, Strategy: strat, CheckAt: at,
		Quantum: o.quantum, MaxCycles: o.timeout, Watchdog: wd})
	var tracer *kernel.RingTracer
	if o.trace > 0 {
		tracer = kernel.NewRingTracer(o.trace)
		k.Tracer = tracer
	}
	k.Load(prog)
	entry, ok := prog.SymbolAddr("main")
	if !ok {
		return fmt.Errorf("program has no main symbol")
	}
	k.Spawn(entry, guest.StackTop(0))
	runErr := k.Run()

	fmt.Printf("profile:       %s\n", prof)
	fmt.Printf("strategy:      %s (check at %s)\n", strat.Name(), o.checkAt)
	fmt.Printf("instructions:  %d\n", k.M.Stats.Instructions)
	fmt.Printf("cycles:        %d (%.2f us)\n", k.M.Stats.Cycles, k.Micros())
	fmt.Printf("suspensions:   %d (preemptions %d, page faults %d)\n",
		k.Stats.Suspensions, k.Stats.Preemptions, k.Stats.PageFaults)
	fmt.Printf("restarts:      %d (check rejects %d)\n", k.Stats.Restarts, k.Stats.CheckRejects)
	fmt.Printf("emul traps:    %d, syscalls %d, switches %d\n",
		k.Stats.EmulTraps, k.Stats.Syscalls, k.Stats.Switches)
	if k.Stats.WatchdogExtends > 0 || k.Stats.WatchdogAborts > 0 {
		fmt.Printf("watchdog:      %d extensions, %d aborts\n",
			k.Stats.WatchdogExtends, k.Stats.WatchdogAborts)
	}
	if o.demo == "counter" {
		got := k.M.Mem.Peek(prog.MustSymbol("counter"))
		want := uint32(o.workers * o.iters)
		status := "CORRECT"
		if got != want {
			status = "LOST UPDATES"
		}
		fmt.Printf("counter:       %d / %d  [%s]\n", got, want, status)
	}
	if len(k.Console) > 0 {
		fmt.Printf("console:       %v\n", k.Console)
	}
	if tracer != nil {
		fmt.Printf("\nlast %d of %d kernel events:\n%s", len(tracer.Events()), tracer.Total(), tracer)
	}
	if errors.Is(runErr, kernel.ErrLivelock) || errors.Is(runErr, kernel.ErrBudget) {
		// A livelocked or overrunning guest: name each thread's last PC and
		// restart count so the offending sequence is identifiable.
		fmt.Printf("\nguest did not finish (%v); thread states:\n", runErr)
		for _, th := range k.Threads() {
			fmt.Printf("  thread %-2d %-8s pc=%#08x restarts=%d suspensions=%d\n",
				th.ID, th.State, th.Ctx.PC, th.Restarts, th.Suspensions)
		}
	}
	return runErr
}

func mechByName(s string) (guest.Mechanism, error) {
	for _, m := range []guest.Mechanism{
		guest.MechNone, guest.MechRegistered, guest.MechDesignated,
		guest.MechEmul, guest.MechInterlocked, guest.MechLockB,
		guest.MechUserLevel, guest.MechLamportA, guest.MechLamportB,
		guest.MechTaosMutex,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}
