package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDemoCounterAllMechanisms(t *testing.T) {
	cases := []struct {
		strategy, mech string
	}{
		{"registration", "registered"},
		{"designated", "designated"},
		{"userlevel", "userlevel"},
		{"none", "emulation"},
		{"none", "lamport-a"},
		{"none", "lamport-b"},
	}
	for _, c := range cases {
		err := run("r3000", c.strategy, "suspend", 500, "counter", c.mech, 2, 50, 0, nil)
		if err != nil {
			t.Errorf("%s/%s: %v", c.strategy, c.mech, err)
		}
	}
}

func TestDemoCounterInterlockedOn486(t *testing.T) {
	if err := run("486", "none", "suspend", 500, "counter", "interlocked", 2, 50, 0, nil); err != nil {
		t.Error(err)
	}
}

func TestDemoWithTrace(t *testing.T) {
	if err := run("r3000", "registration", "suspend", 53, "counter", "registered", 2, 50, 16, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckAtResume(t *testing.T) {
	if err := run("r3000", "designated", "resume", 211, "counter", "designated", 2, 50, 0, nil); err != nil {
		t.Error(err)
	}
}

func TestSourceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.s")
	src := "main:\n\tli a0, 0\n\tli v0, 0\n\tsyscall\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("r3000", "none", "suspend", 1000, "", "", 0, 0, 0, []string{path}); err != nil {
		t.Error(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("pdp11", "none", "suspend", 100, "counter", "registered", 1, 1, 0, nil); err == nil {
		t.Error("unknown arch accepted")
	}
	if err := run("r3000", "bogus", "suspend", 100, "counter", "registered", 1, 1, 0, nil); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run("r3000", "none", "sideways", 100, "counter", "registered", 1, 1, 0, nil); err == nil {
		t.Error("unknown check placement accepted")
	}
	if err := run("r3000", "none", "suspend", 100, "frobnicate", "", 1, 1, 0, nil); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run("r3000", "none", "suspend", 100, "counter", "warp-drive", 1, 1, 0, nil); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if err := run("r3000", "none", "suspend", 100, "", "", 0, 0, 0, nil); err == nil {
		t.Error("missing source file accepted")
	}
	if err := run("r3000", "none", "suspend", 100, "", "", 0, 0, 0, []string{"/nonexistent.s"}); err == nil {
		t.Error("unreadable source accepted")
	}
}

func TestDemoTaosMutex(t *testing.T) {
	if err := run("r3000", "designated", "resume", 97, "counter", "taos-mutex", 3, 80, 0, nil); err != nil {
		t.Error(err)
	}
}
