package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vmach/kernel"
)

// demo builds options for the built-in counter workload.
func demo(strategy, mech string, quantum uint64) options {
	return options{
		arch: "r3000", strategy: strategy, checkAt: "suspend", quantum: quantum,
		demo: "counter", mech: mech, workers: 2, iters: 50, watchdog: "off",
	}
}

func TestDemoCounterAllMechanisms(t *testing.T) {
	cases := []struct {
		strategy, mech string
	}{
		{"registration", "registered"},
		{"designated", "designated"},
		{"userlevel", "userlevel"},
		{"none", "emulation"},
		{"none", "lamport-a"},
		{"none", "lamport-b"},
	}
	for _, c := range cases {
		if err := run(demo(c.strategy, c.mech, 500)); err != nil {
			t.Errorf("%s/%s: %v", c.strategy, c.mech, err)
		}
	}
}

func TestDemoCounterInterlockedOn486(t *testing.T) {
	o := demo("none", "interlocked", 500)
	o.arch = "486"
	if err := run(o); err != nil {
		t.Error(err)
	}
}

func TestDemoWithTrace(t *testing.T) {
	o := demo("registration", "registered", 53)
	o.trace = 16
	if err := run(o); err != nil {
		t.Error(err)
	}
}

func TestCheckAtResume(t *testing.T) {
	o := demo("designated", "designated", 211)
	o.checkAt = "resume"
	if err := run(o); err != nil {
		t.Error(err)
	}
}

// -watchdog abort turns a §3.1 livelock (quantum shorter than the
// sequence) into a nonzero exit with a diagnostic instead of running to
// the cycle budget.
func TestWatchdogAbortFlagCatchesLivelock(t *testing.T) {
	o := demo("designated", "designated", 3)
	o.checkAt = "resume"
	o.workers, o.iters = 1, 1
	o.watchdog = "abort"
	o.maxRestarts = 20
	err := run(o)
	if !errors.Is(err, kernel.ErrLivelock) {
		t.Errorf("err = %v, want livelock", err)
	}
}

// -watchdog extend lets the same overlong sequence complete.
func TestWatchdogExtendFlagCompletes(t *testing.T) {
	o := demo("designated", "designated", 3)
	o.checkAt = "resume"
	o.workers, o.iters = 1, 5
	o.watchdog = "extend"
	o.maxRestarts = 12
	if err := run(o); err != nil {
		t.Error(err)
	}
}

// -timeout bounds a livelocked guest when the watchdog is off.
func TestTimeoutFlagBoundsLivelock(t *testing.T) {
	o := demo("designated", "designated", 3)
	o.checkAt = "resume"
	o.workers, o.iters = 1, 1
	o.timeout = 100_000
	err := run(o)
	if !errors.Is(err, kernel.ErrBudget) {
		t.Errorf("err = %v, want budget exceeded", err)
	}
}

func TestSourceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.s")
	src := "main:\n\tli a0, 0\n\tli v0, 0\n\tsyscall\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{arch: "r3000", strategy: "none", checkAt: "suspend",
		quantum: 1000, watchdog: "off", args: []string{path}}
	if err := run(o); err != nil {
		t.Error(err)
	}
}

func TestErrors(t *testing.T) {
	bad := func(mutate func(*options)) options {
		o := demo("registration", "registered", 100)
		o.workers, o.iters = 1, 1
		mutate(&o)
		return o
	}
	if err := run(bad(func(o *options) { o.arch = "pdp11" })); err == nil {
		t.Error("unknown arch accepted")
	}
	if err := run(bad(func(o *options) { o.strategy = "bogus" })); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run(bad(func(o *options) { o.checkAt = "sideways" })); err == nil {
		t.Error("unknown check placement accepted")
	}
	if err := run(bad(func(o *options) { o.demo = "frobnicate" })); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run(bad(func(o *options) { o.mech = "warp-drive" })); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if err := run(bad(func(o *options) { o.watchdog = "maybe" })); err == nil {
		t.Error("unknown watchdog policy accepted")
	}
	if err := run(bad(func(o *options) { o.demo = "" })); err == nil {
		t.Error("missing source file accepted")
	}
	if err := run(bad(func(o *options) { o.demo = ""; o.args = []string{"/nonexistent.s"} })); err == nil {
		t.Error("unreadable source accepted")
	}
}

func TestDemoRecoverable(t *testing.T) {
	o := demo("registration", "registered", 300)
	o.demo = "recoverable"
	o.workers, o.iters = 3, 40
	if err := run(o); err != nil {
		t.Error(err)
	}
}

// -kill-at orphans the lock mid-run; the recoverable demo must still
// terminate (survivors repair and finish, the kernel reaps the corpse).
func TestKillAtRepairsOrphan(t *testing.T) {
	o := demo("registration", "registered", 300)
	o.demo = "recoverable"
	o.workers, o.iters = 3, 40
	o.killAt = "1500"
	if err := run(o); err != nil {
		t.Error(err)
	}
}

// -crash-at + -checkpoint writes a snapshot where the crash struck, and
// -restore replays the remainder to a clean exit.
func TestCrashCheckpointRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	o := demo("registration", "registered", 500)
	o.iters = 200
	o.crashAt, o.checkpoint = 3000, path
	if err := run(o); !errors.Is(err, kernel.ErrMachineCrash) {
		t.Fatalf("err = %v, want machine crash", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	var r options
	r.arch, r.strategy, r.checkAt = "r3000", "registration", "suspend"
	r.quantum, r.watchdog, r.restore = 500, "off", path
	if err := run(r); err != nil {
		t.Errorf("restore replay: %v", err)
	}
}

// -checkpoint-at snapshots a healthy run mid-flight; the original run and
// the restored run both complete.
func TestCheckpointAtStep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	o := demo("registration", "registered", 500)
	o.iters = 200
	o.checkpointAt, o.checkpoint = 2000, path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	var r options
	r.arch, r.strategy, r.checkAt = "r3000", "registration", "suspend"
	r.quantum, r.watchdog, r.restore = 500, "off", path
	if err := run(r); err != nil {
		t.Errorf("restore replay: %v", err)
	}
}

func TestRecoveryFlagErrors(t *testing.T) {
	o := demo("registration", "registered", 300)
	o.killAt = "12,frog"
	if err := run(o); err == nil {
		t.Error("malformed -kill-at accepted")
	}
	o = demo("registration", "registered", 300)
	o.checkpointAt = 100 // no -checkpoint file
	if err := run(o); err == nil {
		t.Error("-checkpoint-at without -checkpoint accepted")
	}
	o = demo("registration", "registered", 300)
	o.restore = filepath.Join(t.TempDir(), "missing.bin")
	if err := run(o); err == nil {
		t.Error("missing -restore file accepted")
	}
	bad := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	o = demo("registration", "registered", 300)
	o.restore = bad
	if err := run(o); !errors.Is(err, kernel.ErrBadCheckpoint) {
		t.Errorf("err = %v, want bad checkpoint", err)
	}
}

func TestDemoTaosMutex(t *testing.T) {
	o := demo("designated", "taos-mutex", 97)
	o.checkAt = "resume"
	o.workers, o.iters = 3, 80
	if err := run(o); err != nil {
		t.Error(err)
	}
}

// journalDemo builds options for the -demo journal workload.
func journalDemo(mode string, target int, crashAt uint64, torn bool) options {
	return options{
		arch: "r3000", strategy: "designated", checkAt: "resume", quantum: 10000,
		demo: "journal", logMode: mode, iters: target, crashAt: crashAt, torn: torn,
		watchdog: "off",
	}
}

func TestDemoJournal(t *testing.T) {
	// Clean runs and crash-recovered runs of both sound disciplines.
	for _, mode := range []string{"redo", "undo"} {
		if err := run(journalDemo(mode, 50, 0, false)); err != nil {
			t.Errorf("%s clean: %v", mode, err)
		}
		for _, crashAt := range []uint64{300, 700, 1100} {
			for _, torn := range []bool{false, true} {
				if err := run(journalDemo(mode, 50, crashAt, torn)); err != nil {
					t.Errorf("%s crash-at %d torn=%v: %v", mode, crashAt, torn, err)
				}
			}
		}
	}
	if err := run(journalDemo("vibes", 50, 0, false)); err == nil {
		t.Error("unknown -log accepted")
	}
}

func TestDemoJournalNofenceTornIsInconsistent(t *testing.T) {
	// The planted bug survives clean crashes (the two data write-backs
	// share one fence) but a torn crash in the flush window splits them
	// with no durable record to repair from. Step 695 lands there; the
	// demo must surface the inconsistency as an error.
	if err := run(journalDemo("nofence", 50, 695, true)); err == nil {
		t.Error("nofence torn crash reported a consistent recovery")
	}
	// A clean crash at the same step stays consistent: this narrows the
	// bug's signature to torn write-backs specifically.
	if err := run(journalDemo("nofence", 50, 695, false)); err != nil {
		t.Errorf("nofence clean crash: %v", err)
	}
}
