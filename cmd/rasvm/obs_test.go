package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestUnknownDemoListsAvailable(t *testing.T) {
	o := demo("registration", "registered", 100)
	o.demo = "frobnicate"
	err := run(o)
	if err == nil {
		t.Fatal("unknown demo accepted")
	}
	// The satellite contract: the error names every available demo so the
	// CLI (which exits nonzero on error) is self-documenting.
	for _, want := range demos {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list demo %q", err, want)
		}
	}
}

func TestTraceOutRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")

	// Quantum 53 preempts inside the registered sequence: restarts and
	// preemptions are guaranteed nonzero.
	o := demo("registration", "registered", 53)
	o.iters = 60
	o.traceOut = tracePath
	o.metrics = metricsPath
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChrome(doc); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	md, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"restarts_total", "preemptions_total", "dispatches_total"} {
		val, ok := metricValue(string(md), counter)
		if !ok {
			t.Errorf("metrics dump missing %s:\n%s", counter, md)
			continue
		}
		if val == 0 {
			t.Errorf("%s = 0, want nonzero on the quantum-53 workload", counter)
		}
	}
}

// A -kill-at injection must survive the export as an instant on the chaos
// track.
func TestTraceOutRecordsChaosInjection(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	o := demo("registration", "registered", 300)
	o.demo = "recoverable"
	o.workers, o.iters = 3, 40
	o.killAt = "1500"
	o.traceOut = tracePath
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := obs.ValidateChrome(doc)
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if chaos < 1 {
		t.Errorf("chaos instants = %d, want >= 1 for -kill-at", chaos)
	}
}

func TestFoldedProfileOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.folded")
	o := demo("registration", "registered", 500)
	o.folded = path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, ";") {
		t.Errorf("folded profile has no call stacks:\n%s", s)
	}
	if !strings.Contains(s, "[kernel]") {
		t.Errorf("folded profile missing kernel attribution:\n%s", s)
	}
}

// metricValue extracts a counter's value from a Registry dump line of the
// form "name                value  # help".
func metricValue(dump, name string) (uint64, bool) {
	for _, line := range strings.Split(dump, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == name {
			var v uint64
			for _, c := range fields[1] {
				if c < '0' || c > '9' {
					return 0, false
				}
				v = v*10 + uint64(c-'0')
			}
			return v, true
		}
	}
	return 0, false
}
