package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/qlock"
	"repro/internal/vmach/smp"
)

// runQlockDemo executes -demo qlock: one of the queue-lock zoo variants
// (-lock mcs|rmcs|spinlock|llsc|hybrid|rmcs-unspliced) on an N-CPU
// system, one contender per CPU doing -iters passages, in the -mode
// coherence model. -kill-at (with -kill-cpu) injects a thread kill at
// the given fault ordinals, which the recoverable variant must repair;
// the printout accounts for every passage, repair, splice and fallback,
// plus the passage-latency quantiles the guest logged.
func runQlockDemo(o options) error {
	variant, ok := qlock.Variant(0), false
	for _, v := range append(qlock.Variants(), qlock.RMCSUnspliced) {
		if v.String() == o.lock {
			variant, ok = v, true
		}
	}
	if !ok {
		return fmt.Errorf("unknown -lock %q (spinlock, llsc, hybrid, mcs, rmcs, rmcs-unspliced)", o.lock)
	}
	if o.cpus < 1 {
		return fmt.Errorf("-cpus must be at least 1")
	}
	mode := smp.CC
	if o.smpMode == "dsm" {
		mode = smp.DSM
	} else if o.smpMode != "" && o.smpMode != "cc" {
		return fmt.Errorf("unknown -mode %q (cc, dsm)", o.smpMode)
	}

	cfg := qlock.Config{
		Variant:   variant,
		CPUs:      o.cpus,
		Iters:     o.iters,
		Mode:      mode,
		Quantum:   o.quantum,
		MaxCycles: o.timeout,
	}
	if o.killAt != "" {
		var ordinals []uint64
		for _, f := range strings.Split(o.killAt, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("bad -kill-at entry %q", f)
			}
			ordinals = append(ordinals, n)
		}
		kcpu := o.killCPU
		if kcpu < 0 || kcpu >= o.cpus {
			return fmt.Errorf("-kill-cpu %d out of range (0..%d)", kcpu, o.cpus-1)
		}
		cfg.Faults = func(cpu int) chaos.Injector {
			if cpu != kcpu {
				return nil
			}
			var inj []chaos.Injector
			for _, n := range ordinals {
				inj = append(inj, chaos.OneShot{Point: chaos.PointStep, N: n,
					Action: chaos.Action{Kill: true}})
			}
			return chaos.Compose(inj...)
		}
	}

	r, err := qlock.New(cfg)
	if err != nil {
		return err
	}
	runErr := r.Sys.Run()

	fmt.Printf("lock:          %s, %d CPUs x %d passages, %s mode\n",
		variant, o.cpus, o.iters, mode)
	for i, k := range r.Sys.CPUs {
		fmt.Printf("cpu%-2d          cycles %-10d preemptions %-4d rmrs %-6d\n",
			i, k.M.Stats.Cycles, k.Stats.Preemptions, k.M.Stats.RMRs)
	}
	res, cerr := r.Collect()
	if res == nil {
		if cerr != nil {
			return cerr
		}
		return runErr
	}
	status := "EXACT"
	if cerr != nil {
		status = cerr.Error()
		if res.Counter == res.Passages+1 {
			status = "EXACT (one contender died inside its critical section)"
		}
	}
	fmt.Printf("passages:      %d completed, counter %d  [%s]\n",
		res.Passages, res.Counter, status)
	fmt.Printf("rmr:           %d total, %.3f per passage\n",
		res.RMRs, float64(res.RMRs)/float64(maxU64(res.Passages, 1)))
	fmt.Printf("latency:       p50 %d  p95 %d  p99 %d cycles\n",
		res.Lat.P50(), res.Lat.P95(), res.Lat.P99())
	if res.Repairs+res.Splices+res.Fallback+res.Scans+res.Aborts > 0 {
		fmt.Printf("recovery:      %d repairs, %d splices, %d fallbacks, %d scans, %d aborts\n",
			res.Repairs, res.Splices, res.Fallback, res.Scans, res.Aborts)
	}
	if res.Alive < o.cpus {
		fmt.Printf("threads:       %d of %d survived\n", res.Alive, o.cpus)
	}
	if runErr != nil {
		return runErr
	}
	return cerr
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
