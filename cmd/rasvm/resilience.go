package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/resilience"
)

// runResilience replays a supervised crash-restart campaign from a
// one-line crash plan — the exact reproducer TableResilience prints for
// its campaign rows. The plan's ordinal space picks the substrate: step
// plans drive the ISA-level resilient-server guest (VMWorld), persist
// and memop plans drive the uniproc uxserver plane (ServerWorld). With
// no -plan, a default 100-crash mixed campaign is derived from a clean
// calibration run.
func runResilience(o options) error {
	var plan *chaos.CrashPlan
	if o.plan != "" {
		p, err := chaos.ParseCrashPlan(o.plan)
		if err != nil {
			return err
		}
		plan = p
	}

	// Unless overridden, the workload and supervisor config match
	// bench.TableResilience so the repro lines it prints replay the
	// table's own campaigns (the generic 4x1000 demo defaults also blow
	// the ISA guest's cycle budget — every effect is four flush+fence
	// steps).
	workers, iters := o.workers, o.iters
	loopK := 0
	var world resilience.World
	var vw *resilience.VMWorld
	var sw *resilience.ServerWorld
	if plan == nil || plan.Point == chaos.PointStep {
		if !o.setFlags["workers"] {
			workers = 2
		}
		if !o.setFlags["iters"] {
			iters = 700
		}
		loopK = 4
		vw = resilience.NewVMWorld(resilience.VMWorldConfig{
			Workers: workers, Iters: iters, MaxCycles: o.timeout})
		if plan == nil {
			span, err := vw.CalibrateSpan()
			if err != nil {
				return fmt.Errorf("calibration: %v", err)
			}
			plan = &chaos.CrashPlan{Seed: 1, Point: chaos.PointStep,
				Span: 3*span/100 + 1, Crashes: 100, WClean: 1, WVolatile: 2, WTorn: 1}
		}
		world = vw
	} else {
		if !o.setFlags["workers"] {
			workers = 3
		}
		if !o.setFlags["iters"] {
			iters = 40
		}
		sw = resilience.NewServerWorld(resilience.ServerWorldConfig{
			Clients: workers, Iters: iters, Shards: 2,
			MaxCycles: o.timeout, JitterSeed: plan.Seed})
		world = sw
	}

	fmt.Printf("plan:          %s\n", plan)
	out, err := resilience.Supervise(world, resilience.Config{
		Boots:      plan.Boot,
		MaxBoots:   plan.Crashes + 1024,
		CrashLoopK: loopK,
		JitterSeed: plan.Seed,
		OnBoot: func(boot int, degraded bool, backoff uint64) {
			if o.trace > 0 && boot < o.trace {
				fmt.Printf("  boot %-4d degraded=%-5v backoff=%d\n", boot, degraded, backoff)
			}
		},
	})
	fmt.Printf("campaign:      %v\n", out)
	if err != nil {
		return err
	}
	switch {
	case vw != nil:
		fmt.Printf("repairs:       %d (final audit: exactly-once, WAL retired, lock free)\n", vw.Repairs())
	case sw != nil:
		st := sw.Stats()
		fmt.Printf("server paths:  applies %d, dup acks %d, replayed %d, dedup skips %d, shed %d, timeouts %d\n",
			st.Applies, st.DupAcks, st.Replayed, st.ReplaySkips, st.Shed, st.Timeouts)
	}
	return nil
}
