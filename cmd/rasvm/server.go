package main

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// runServerDemo executes -demo server: the per-CPU request plane (or the
// mutex baseline, or the planted racy drain) on an N-CPU system, with
// -workers clients per CPU each submitting -iters requests. The printout
// is the whole pitch in one screen: per-CPU served counts, zero RMRs on
// the percpu path, and the exact request accounting.
func runServerDemo(o options) error {
	var v guest.ServerVariant
	switch o.variant {
	case "percpu":
		v = guest.ServerPerCPU
	case "mutex":
		v = guest.ServerMutex
	case "racy":
		v = guest.ServerRacyDrain
	default:
		return fmt.Errorf("unknown -variant %q (percpu, mutex, racy)", o.variant)
	}
	if o.cpus < 1 {
		return fmt.Errorf("-cpus must be at least 1")
	}

	cfg := smp.Config{CPUs: o.cpus, Quantum: o.quantum, MaxCycles: o.timeout,
		NewStrategy: kernel.MultiRegistrationStrategy}
	sys := smp.New(cfg)
	prog := guest.Assemble(guest.ServerProgram(v, o.cpus))
	sys.Load(prog)
	if v != guest.ServerMutex {
		for _, k := range sys.CPUs {
			for _, r := range guest.ServerSequenceRanges(prog) {
				if err := k.RegisterSequence(0, r[0], r[1]); err != nil {
					return err
				}
			}
		}
	}
	workerArg := o.workers
	if v == guest.ServerMutex {
		workerArg = o.workers * o.cpus
	}
	worker, client := prog.MustSymbol("worker"), prog.MustSymbol("client")
	for cpu := 0; cpu < o.cpus; cpu++ {
		sys.Spawn(cpu, worker, guest.StackTop(smp.GlobalID(cpu, 0)), isa.Word(workerArg))
		for c := 0; c < o.workers; c++ {
			sys.Spawn(cpu, client, guest.StackTop(smp.GlobalID(cpu, c+1)), isa.Word(o.iters))
		}
	}

	var capture *obs.Capture
	if o.traceOut != "" {
		bus := obs.NewBus(0)
		capture = &obs.Capture{}
		bus.Attach(capture)
		sys.AttachTracer(bus)
	}

	runErr := sys.Run()

	fmt.Printf("cpus:          %d (%s request plane, %d clients x %d requests per CPU)\n",
		o.cpus, v, o.workers, o.iters)
	for i, k := range sys.CPUs {
		fmt.Printf("cpu%-2d          cycles %-10d restarts %-4d preemptions %-4d rmrs %-6d\n",
			i, k.M.Stats.Cycles, k.Stats.Restarts, k.Stats.Preemptions, k.M.Stats.RMRs)
	}
	served, batches := guest.ServerCounts(sys.Mem, prog, v, o.cpus)
	want := uint64(o.cpus * o.workers * o.iters)
	status := "ALL SERVED"
	if served != want {
		status = "REQUESTS LOST"
	}
	fmt.Printf("total:         %d cycles (%d wall), %d RMRs\n",
		sys.TotalCycles(), sys.MaxCycles(), sys.TotalRMRs())
	if batches > 0 {
		fmt.Printf("batching:      %d drains, %.1f requests per batch\n",
			batches, float64(served)/float64(batches))
	}
	fmt.Printf("served:        %d / %d  [%s]\n", served, want, status)

	if capture != nil {
		data, err := obs.ChromeTrace(capture.Events())
		if err != nil {
			return err
		}
		if err := writeOut(o.traceOut, data); err != nil {
			return err
		}
		if o.traceOut != "-" {
			fmt.Printf("trace:         %s (%d events; one track per CPU in Perfetto)\n",
				o.traceOut, capture.Len())
		}
	}
	return runErr
}
