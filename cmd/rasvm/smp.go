package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vmach/smp"
)

// runSMP executes -demo smp: the shared-counter workload on an N-CPU
// system, with -lock choosing the arbitration scheme. -kill-at kills the
// thread running on -kill-cpu at the given retired-instruction steps, so
// per-(cpu, thread) fault targeting is exercisable from the CLI.
func runSMP(o options) error {
	var lock guest.SMPLock
	switch o.lock {
	case "hybrid":
		lock = guest.SMPHybrid
	case "spinlock":
		lock = guest.SMPSpin
	case "llsc":
		lock = guest.SMPLLSC
	case "ras-only":
		lock = guest.SMPRASOnly
	default:
		return fmt.Errorf("unknown -lock %q (hybrid, spinlock, llsc, ras-only)", o.lock)
	}
	if o.cpus < 1 {
		return fmt.Errorf("-cpus must be at least 1")
	}
	if o.killCPU < 0 || o.killCPU >= o.cpus {
		return fmt.Errorf("-kill-cpu %d out of range for %d CPUs", o.killCPU, o.cpus)
	}

	cfg := smp.Config{CPUs: o.cpus, Quantum: o.quantum, MaxCycles: o.timeout}
	if o.killAt != "" || o.crashAt > 0 {
		sched, err := faultSchedule(o)
		if err != nil {
			return err
		}
		cfg.Faults = func(cpu int) chaos.Injector {
			if cpu == o.killCPU {
				return sched
			}
			return nil
		}
	}
	sys := smp.New(cfg)
	prog := guest.Assemble(guest.SMPCounterProgram(lock, o.cpus))
	sys.Load(prog)
	entry := prog.MustSymbol("worker")
	for cpu := 0; cpu < o.cpus; cpu++ {
		for w := 0; w < o.workers; w++ {
			sys.Spawn(cpu, entry, guest.StackTop(smp.GlobalID(cpu, w)), isa.Word(o.iters))
		}
	}

	var capture *obs.Capture
	if o.traceOut != "" {
		bus := obs.NewBus(0)
		capture = &obs.Capture{}
		bus.Attach(capture)
		sys.AttachTracer(bus)
	}

	runErr := sys.Run()

	fmt.Printf("cpus:          %d (%s lock, %d workers x %d iters each)\n",
		o.cpus, lock, o.workers, o.iters)
	for i, k := range sys.CPUs {
		fmt.Printf("cpu%-2d          cycles %-10d restarts %-4d preemptions %-4d rmrs %-6d kills %d\n",
			i, k.M.Stats.Cycles, k.Stats.Restarts, k.Stats.Preemptions,
			k.M.Stats.RMRs, k.Stats.Kills)
	}
	fmt.Printf("total:         %d cycles (%d wall), %d RMRs\n",
		sys.TotalCycles(), sys.MaxCycles(), sys.TotalRMRs())

	got := sys.Mem.Peek(prog.MustSymbol("counter"))
	want := uint32(o.cpus * o.workers * o.iters)
	status := "CORRECT"
	if got != want {
		status = "LOST UPDATES"
		if o.killAt != "" || o.crashAt > 0 {
			status = "SHORT (killed threads stop counting)"
		}
	}
	fmt.Printf("counter:       %d / %d  [%s]\n", got, want, status)

	if capture != nil {
		data, err := obs.ChromeTrace(capture.Events())
		if err != nil {
			return err
		}
		if err := writeOut(o.traceOut, data); err != nil {
			return err
		}
		if o.traceOut != "-" {
			fmt.Printf("trace:         %s (%d events; one track per CPU in Perfetto)\n",
				o.traceOut, capture.Len())
		}
	}
	return runErr
}
