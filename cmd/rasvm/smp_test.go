package main

import (
	"os"
	"path/filepath"
	"testing"
)

// smpDemo builds options for the built-in SMP counter workload.
func smpDemo(lock string, cpus int) options {
	return options{
		demo: "smp", lock: lock, cpus: cpus, quantum: 500,
		workers: 2, iters: 30,
	}
}

func TestDemoSMPAllLocks(t *testing.T) {
	for _, lock := range []string{"hybrid", "spinlock", "llsc"} {
		for _, cpus := range []int{1, 2} {
			if err := run(smpDemo(lock, cpus)); err != nil {
				t.Errorf("%s/%dcpu: %v", lock, cpus, err)
			}
		}
	}
}

// The unsound control still terminates; the demo reports the lost updates
// rather than failing.
func TestDemoSMPRASOnly(t *testing.T) {
	if err := run(smpDemo("ras-only", 2)); err != nil {
		t.Error(err)
	}
}

func TestDemoSMPKillTargetsCPU(t *testing.T) {
	o := smpDemo("llsc", 2)
	o.killAt = "2000"
	o.killCPU = 1
	if err := run(o); err != nil {
		t.Error(err)
	}
}

func TestDemoSMPTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "smp.json")
	o := smpDemo("hybrid", 2)
	o.traceOut = path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("trace file not written: %v", err)
	}
}

func TestDemoSMPFlagErrors(t *testing.T) {
	if err := run(smpDemo("warp-drive", 1)); err == nil {
		t.Error("unknown -lock accepted")
	}
	if err := run(smpDemo("hybrid", 0)); err == nil {
		t.Error("-cpus 0 accepted")
	}
	o := smpDemo("hybrid", 2)
	o.killCPU = 5
	if err := run(o); err == nil {
		t.Error("-kill-cpu out of range accepted")
	}
	o = smpDemo("hybrid", 1)
	o.killAt = "12,frog"
	if err := run(o); err == nil {
		t.Error("malformed -kill-at accepted")
	}
}
