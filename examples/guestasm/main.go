// Guestasm: assemble the paper's Figure 4 — the Mach registered
// Test-And-Set — and run it on the instruction-level simulator while the
// kernel preempts aggressively, showing the PC rollbacks as they happen.
//
//	go run ./examples/guestasm
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/guest"
	"repro/internal/vmach/kernel"
)

// Two threads hammer one Test-And-Set lock around a shared counter. The
// TestAndSet function is the paper's Figure 4, registered with the kernel
// at startup via the SysRasRegister syscall.
const src = `
	.text
main:
	li   v0, 3              # SysRasRegister
	la   a0, ras_begin
	li   a1, 12             # lw + ori + sw
	syscall

	la   a0, worker         # spawn a second thread
	li   a1, 400            # its iteration count
	li   a2, 0x91FF0        # its stack
	li   v0, 5              # SysThreadCreate
	syscall

	li   a0, 400            # main runs the worker body too
	j    worker

worker:
	move s0, a0
	la   s1, lock
	la   s2, counter
wloop:
acq:
	move a0, s1
	jal  TestAndSet
	beq  v0, zero, got
	li   v0, 1              # SysYield while the lock is held
	syscall
	b    acq
got:
	lw   t1, 0(s2)          # critical section: counter++
	addi t1, t1, 1
	sw   t1, 0(s2)
	sw   zero, 0(s1)        # release
	addi s0, s0, -1
	bne  s0, zero, wloop
	li   v0, 0
	move a0, zero
	syscall

TestAndSet:
ras_begin:
	lw   v0, 0(a0)          # Figure 4: the restartable atomic sequence
	ori  t0, zero, 1
	sw   t0, 0(a0)
ras_end:
	jr   ra

	.data
lock:    .word 0
counter: .word 0
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 4 as machine code:")
	fmt.Print(asm.Disassemble(prog))

	k := kernel.New(kernel.Config{
		Profile:  arch.R3000(),
		Strategy: &kernel.Registration{},
		Quantum:  53, // adversarial: preemptions land inside the sequence
	})
	k.Load(prog)
	k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	counter := k.M.Mem.Peek(prog.MustSymbol("counter"))
	fmt.Printf("\ncounter      = %d (want 800)\n", counter)
	fmt.Printf("instructions = %d, %.1f us simulated\n", k.M.Stats.Instructions, k.Micros())
	fmt.Printf("suspensions  = %d, PC rollbacks = %d\n", k.Stats.Suspensions, k.Stats.Restarts)
	if counter != 800 {
		log.Fatal("atomicity violated")
	}
	fmt.Println("every interrupted sequence was resumed at its start — Test-And-Set stayed atomic")
}
