// Mechanisms: run the same contended-counter workload under every atomic
// operation mechanism the paper discusses — restartable atomic sequences
// (inline and registered), kernel emulation, hardware interlocked
// instructions, Lamport software reservation, and the deliberately unsound
// baseline — and compare cost and correctness.
//
//	go run ./examples/mechanisms
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/lamport"
	"repro/internal/uniproc"
)

const (
	workers = 4
	iters   = 1_500
	quantum = 61
)

// run executes the workload, returning the final counter and elapsed
// microseconds.
func run(prof *arch.Profile, lock core.Locker) (core.Word, float64, error) {
	proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: quantum, JitterSeed: 7})
	var counter core.Word
	for i := 0; i < workers; i++ {
		proc.Go("worker", func(e *uniproc.Env) {
			for n := 0; n < iters; n++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
	}
	err := proc.Run()
	return counter, proc.Micros(), err
}

func main() {
	r3000 := arch.R3000()
	i486 := arch.I486()
	interlocked, err := core.NewInterlocked(i486)
	if err != nil {
		log.Fatal(err)
	}

	rows := []struct {
		name string
		prof *arch.Profile
		lock core.Locker
	}{
		{"RAS inline (Taos-style)", r3000, core.NewTASLock(core.NewRAS())},
		{"RAS registered (Mach-style)", r3000, core.NewTASLock(core.NewRASRegistered())},
		{"Kernel emulation", r3000, core.NewTASLock(core.NewKernelEmul(r3000))},
		{"Lamport direct (a)", r3000, lamport.NewDirectLock(workers)},
		{"Lamport bundled meta (b)", r3000, core.NewTASLock(lamport.NewMeta(workers))},
		{"Interlocked tas (486)", i486, core.NewTASLock(interlocked)},
		{"UNSOUND no-recovery", r3000, core.NewTASLock(core.Unsound{})},
	}

	want := core.Word(workers * iters)
	fmt.Printf("%-30s %12s %12s  %s\n", "mechanism", "counter", "time (us)", "verdict")
	for _, r := range rows {
		got, us, err := run(r.prof, r.lock)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		verdict := "correct"
		if got != want {
			verdict = fmt.Sprintf("LOST %d UPDATES", want-got)
		}
		fmt.Printf("%-30s %12d %12.1f  %s\n", r.name, got, us, verdict)
	}
	fmt.Println("\nThe unsound baseline shows why kernel recovery support matters;")
	fmt.Println("everything else preserves mutual exclusion, at very different costs.")
}
