// Parthenon: the or-parallel resolution theorem prover from the paper's
// Table 3, refuting the pigeonhole principle with a team of worker threads
// that synchronize through a shared agenda.
//
//	go run ./examples/parthenon
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/parthenon"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/uniproc"
)

func prove(workers int, mech core.Mechanism, input []parthenon.Clause) (parthenon.Result, *uniproc.Processor) {
	proc := uniproc.New(uniproc.Config{Quantum: 20000, JitterSeed: 1992})
	pkg := cthreads.New(mech)
	var res parthenon.Result
	proc.Go("main", func(e *uniproc.Env) {
		res = parthenon.Run(e, parthenon.Config{Pkg: pkg, Workers: workers}, input)
	})
	if err := proc.Run(); err != nil {
		log.Fatal(err)
	}
	return res, proc
}

func main() {
	// "Three pigeons cannot each have their own hole among two holes."
	input := parthenon.Pigeonhole(3, 2)
	fmt.Printf("input: PHP(3,2) — %d clauses, unsatisfiable\n\n", len(input))

	for _, workers := range []int{1, 10} {
		res, proc := prove(workers, core.NewRAS(), input)
		if !res.Proved {
			log.Fatalf("parthenon-%d failed to find a refutation", workers)
		}
		fmt.Printf("parthenon-%-2d proved ⊥: %5d resolvents, %4d clauses kept, "+
			"%7.2f ms virtual, %d suspensions\n",
			workers, res.Resolvents, res.Kept,
			proc.Micros()/1000, proc.Stats.Suspensions+proc.Stats.Blocks)
	}

	// A satisfiable formula must saturate instead.
	res, _ := prove(4, core.NewRAS(), parthenon.Satisfiable())
	if res.Proved {
		log.Fatal("satisfiable formula was 'refuted'")
	}
	fmt.Println("\nsatisfiable input correctly saturated without deriving ⊥")
}
