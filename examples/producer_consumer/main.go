// Producer/consumer: the paper's proton-64 workload — a producer thread
// reads a large file through the multithreaded user-level server into a
// 64-byte buffer consumed by a consumer thread — run under both kernel
// emulation and restartable atomic sequences.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/proton"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

const fileKB = 64

func run(name string, mech core.Mechanism) (proton.Result, *uniproc.Processor) {
	proc := uniproc.New(uniproc.Config{Quantum: 20000, JitterSeed: 42})
	pkg := cthreads.New(mech)
	srv := uxserver.Start(proc, pkg, memfs.New(pkg), 2)
	var res proton.Result
	var appErr error
	proc.Go("consumer", func(e *uniproc.Env) {
		res, appErr = proton.Run(e, proton.Config{
			Pkg: pkg, Server: srv, FileSize: fileKB * 1024,
		})
		srv.Shutdown(e)
	})
	if err := proc.Run(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if appErr != nil {
		log.Fatalf("%s: %v", name, appErr)
	}
	return res, proc
}

func main() {
	prof := arch.R3000()
	emulRes, emulProc := run("emulation", core.NewKernelEmul(prof))
	rasRes, rasProc := run("ras", core.NewRAS())

	if emulRes.Checksum != rasRes.Checksum {
		log.Fatal("checksum mismatch between runs")
	}
	fmt.Printf("transferred %d bytes in %d 64-byte buffers (checksum %#x)\n\n",
		rasRes.Bytes, rasRes.Items, rasRes.Checksum)
	fmt.Printf("%-28s %14s %14s\n", "", "emulation", "r.a.s.")
	fmt.Printf("%-28s %13.2fms %13.2fms\n", "elapsed (virtual)",
		emulProc.Micros()/1000, rasProc.Micros()/1000)
	fmt.Printf("%-28s %14d %14d\n", "emulation traps",
		emulProc.Stats.EmulTraps, rasProc.Stats.EmulTraps)
	fmt.Printf("%-28s %14d %14d\n", "sequence restarts",
		emulProc.Stats.Restarts, rasProc.Stats.Restarts)
	fmt.Printf("%-28s %14d %14d\n", "thread blocks",
		emulProc.Stats.Blocks, rasProc.Stats.Blocks)

	gain := (emulProc.Micros() - rasProc.Micros()) / emulProc.Micros() * 100
	fmt.Printf("\nrestartable atomic sequences improve proton-%d by %.0f%%"+
		" (the paper measured ~50%% for proton-64)\n", proton.BufSize, gain)
}
