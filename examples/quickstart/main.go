// Quickstart: build a Test-And-Set spinlock from restartable atomic
// sequences and use it to protect a shared counter on the virtual
// uniprocessor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/uniproc"
)

func main() {
	// A virtual uniprocessor with an adversarially small timeslice: the
	// scheduler will frequently preempt threads in the middle of their
	// atomic sequences, and the RAS machinery must recover every time.
	proc := uniproc.New(uniproc.Config{Quantum: 47})

	mech := core.NewRAS() // restartable atomic sequences, inlined
	lock := core.NewTASLock(mech)
	var counter core.Word

	const workers, iters = 4, 2_000
	for i := 0; i < workers; i++ {
		proc.Go(fmt.Sprintf("worker-%d", i), func(e *uniproc.Env) {
			for n := 0; n < iters; n++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
	}

	if err := proc.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter          = %d (want %d)\n", counter, workers*iters)
	fmt.Printf("virtual time     = %.2f ms\n", proc.Micros()/1000)
	fmt.Printf("suspensions      = %d\n", proc.Stats.Suspensions)
	fmt.Printf("sequence restarts = %d  (rare relative to %d atomic ops)\n",
		proc.Stats.Restarts, workers*iters)
	if counter != workers*iters {
		log.Fatal("mutual exclusion violated!")
	}
	fmt.Println("mutual exclusion held under preemption — the optimistic sequence recovered every interruption")
}
