// Rseq: the paper's restartable atomic sequences are the direct ancestor
// of Linux rseq(2). This example uses the librseq-shaped API from
// internal/rseq — compare-and-store, restartable add, and an intrusive
// per-CPU list — under heavy preemption, with zero atomic instructions and
// zero locks.
//
//	go run ./examples/rseq
package main

import (
	"fmt"
	"log"

	"repro/internal/rseq"
	"repro/internal/uniproc"
)

func main() {
	proc := uniproc.New(uniproc.Config{Quantum: 43, JitterSeed: 11})

	var counter rseq.PerCPUCounter
	var casTarget rseq.Word
	casWins := 0

	const nodes = 1200
	var head rseq.Word
	next := make([]rseq.Word, nodes)
	drained := 0
	pushersDone := 0

	for i := 0; i < 3; i++ {
		base := i * (nodes / 3)
		proc.Go("worker", func(e *uniproc.Env) {
			for j := 0; j < nodes/3; j++ {
				counter.Inc(e)                              // rseq_addv
				rseq.ListPush(e, &head, next, base+j)       // per-CPU list push
				if rseq.CmpEqvStorev(e, &casTarget, 0, 1) { // rseq_cmpeqv_storev
					casWins++
					rseq.Addv(e, &casTarget, ^rseq.Word(0)) // back to 0
				}
			}
			pushersDone++
		})
	}
	proc.Go("drainer", func(e *uniproc.Env) {
		for {
			drained += len(rseq.ListPopAll(e, &head, next))
			if pushersDone == 3 && drained == nodes {
				return
			}
			e.Yield()
		}
	})

	if err := proc.Run(); err != nil {
		log.Fatal(err)
	}

	check := uniproc.New(uniproc.Config{})
	var sum rseq.Word
	check.Go("read", func(e *uniproc.Env) { sum = counter.Sum(e) })
	if err := check.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("per-CPU counter sum  %d (want %d)\n", sum, nodes)
	fmt.Printf("list nodes drained   %d (want %d)\n", drained, nodes)
	fmt.Printf("cmpeqv_storev wins   %d\n", casWins)
	fmt.Printf("suspensions %d, sequence restarts %d\n",
		proc.Stats.Suspensions, proc.Stats.Restarts)
	if sum != nodes || drained != nodes {
		log.Fatal("lost updates")
	}
	fmt.Println("every operation committed exactly once — 1992's mechanism, 2020s' API")
}
