// Waitfree: restartable sequences are richer than Test-And-Set — §4.1
// points at wait-free data structures. This example runs a lock-free stack
// and a FIFO queue whose atomicity comes entirely from restartable
// sequences, under heavy preemption, and demonstrates the ABA immunity the
// restart semantics provide for free.
//
//	go run ./examples/waitfree
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/uniproc"
)

func main() {
	proc := uniproc.New(uniproc.Config{Quantum: 53, JitterSeed: 9})
	stack := core.NewStack()
	queue := core.NewQueue(core.NewRAS())
	counter := core.NewCounter(core.NewRAS())

	const producers, perProducer = 4, 500
	popped := make(map[core.Word]bool)
	dequeued := 0
	doneProducers := 0

	for i := 0; i < producers; i++ {
		base := core.Word((i + 1) * 10_000)
		proc.Go("producer", func(e *uniproc.Env) {
			for j := 0; j < perProducer; j++ {
				stack.Push(e, base+core.Word(j))
				queue.Enqueue(e, base+core.Word(j))
				counter.Add(e, 1)
			}
			doneProducers++
		})
	}
	proc.Go("stack-consumer", func(e *uniproc.Env) {
		for {
			if v, ok := stack.Pop(e); ok {
				if popped[v] {
					log.Fatalf("value %d popped twice (ABA?)", v)
				}
				popped[v] = true
				continue
			}
			if doneProducers == producers {
				return
			}
			e.Yield()
		}
	})
	proc.Go("queue-consumer", func(e *uniproc.Env) {
		for {
			if _, ok := queue.Dequeue(e); ok {
				dequeued++
				continue
			}
			if doneProducers == producers {
				return
			}
			e.Yield()
		}
	})

	if err := proc.Run(); err != nil {
		log.Fatal(err)
	}

	// Read the counter on a fresh processor (the workload one is spent).
	var total core.Word
	check := uniproc.New(uniproc.Config{})
	check.Go("read", func(e *uniproc.Env) { total = counter.Value(e) })
	if err := check.Run(); err != nil {
		log.Fatal(err)
	}

	want := producers * perProducer
	fmt.Printf("pushed/popped     %d / %d distinct values\n", want, len(popped))
	fmt.Printf("enqueued/dequeued %d / %d\n", want, dequeued)
	fmt.Printf("counter           %d\n", total)
	fmt.Printf("suspensions       %d, sequence restarts %d\n",
		proc.Stats.Suspensions, proc.Stats.Restarts)
	if len(popped) != want || dequeued != want || total != core.Word(want) {
		log.Fatal("lost or duplicated elements")
	}
	fmt.Println("no element lost or duplicated: every interrupted operation re-ran from scratch,")
	fmt.Println("so the classic ABA hazard of lock-free stacks cannot occur on the uniprocessor")
}
