// Package afsbench is "a script of file system intensive programs such as
// copy, compile and search" — the paper's afs-bench workload (§5.3),
// executed against the in-memory filesystem through the multithreaded
// user-level server. Like text-format it is single threaded, benefiting
// only indirectly from fast atomic operations via the server.
package afsbench

import (
	"bytes"
	"fmt"

	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

// Config parametrizes the script.
type Config struct {
	Server      *uxserver.Server
	Dirs        int // source directories
	FilesPerDir int
	FileBytes   int    // size of each source file
	Needle      string // search phase target
}

// Result summarizes the script.
type Result struct {
	FilesCreated int
	FilesCopied  int
	Objects      int // "compiled" outputs
	Matches      int // search hits
	BytesRead    int
	BytesWritten int
}

// source generates the deterministic contents of file f in directory d.
func source(d, f, size int, needle string) []byte {
	data := make([]byte, 0, size+len(needle))
	x := uint32(d*131071 + f*8191 + 7)
	for len(data) < size {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		data = append(data, byte('a'+x%26))
	}
	// Plant the needle in every third file so the search phase finds a
	// predictable number of matches.
	if (d+f)%3 == 0 && len(needle) > 0 {
		copy(data[size/2:], needle)
	}
	return data[:size]
}

// compile models a compilation: read the source, do per-byte work, and
// produce a transformed object.
func compile(e *uniproc.Env, src []byte) []byte {
	obj := make([]byte, len(src))
	var h uint32 = 2166136261
	for i, b := range src {
		h = (h ^ uint32(b)) * 16777619
		obj[i] = byte(h)
	}
	e.ChargeALU(2 * len(src)) // lexing + codegen
	return obj
}

// Run executes the five-phase script: populate, copy, compile, search,
// clean.
func Run(e *uniproc.Env, cfg Config) (Result, error) {
	if cfg.Dirs == 0 {
		cfg.Dirs = 3
	}
	if cfg.FilesPerDir == 0 {
		cfg.FilesPerDir = 4
	}
	if cfg.FileBytes == 0 {
		cfg.FileBytes = 2048
	}
	if cfg.Needle == "" {
		cfg.Needle = "restartable"
	}
	s := cfg.Server
	res := Result{}

	dir := func(d int) string { return fmt.Sprintf("/src%d", d) }
	file := func(d, f int) string { return fmt.Sprintf("/src%d/f%d.c", d, f) }

	// Phase 1: populate the tree.
	for d := 0; d < cfg.Dirs; d++ {
		if err := s.Mkdir(e, dir(d)); err != nil {
			return res, err
		}
		for f := 0; f < cfg.FilesPerDir; f++ {
			data := source(d, f, cfg.FileBytes, cfg.Needle)
			if err := s.Create(e, file(d, f)); err != nil {
				return res, err
			}
			if err := s.WriteFile(e, file(d, f), data); err != nil {
				return res, err
			}
			res.FilesCreated++
			res.BytesWritten += len(data)
		}
	}

	// Phase 2: copy the tree.
	if err := s.Mkdir(e, "/copy"); err != nil {
		return res, err
	}
	for d := 0; d < cfg.Dirs; d++ {
		names, err := s.ReadDir(e, dir(d))
		if err != nil {
			return res, err
		}
		for _, name := range names {
			data, err := s.ReadFile(e, dir(d)+"/"+name)
			if err != nil {
				return res, err
			}
			res.BytesRead += len(data)
			dst := fmt.Sprintf("/copy/%d-%s", d, name)
			if err := s.Create(e, dst); err != nil {
				return res, err
			}
			if err := s.WriteFile(e, dst, data); err != nil {
				return res, err
			}
			res.FilesCopied++
			res.BytesWritten += len(data)
		}
	}

	// Phase 3: compile every source file into /obj.
	if err := s.Mkdir(e, "/obj"); err != nil {
		return res, err
	}
	for d := 0; d < cfg.Dirs; d++ {
		for f := 0; f < cfg.FilesPerDir; f++ {
			src, err := s.ReadFile(e, file(d, f))
			if err != nil {
				return res, err
			}
			res.BytesRead += len(src)
			obj := compile(e, src)
			dst := fmt.Sprintf("/obj/%d-%d.o", d, f)
			if err := s.Create(e, dst); err != nil {
				return res, err
			}
			if err := s.WriteFile(e, dst, obj); err != nil {
				return res, err
			}
			res.Objects++
			res.BytesWritten += len(obj)
		}
	}

	// Phase 4: search every source file for the needle.
	needle := []byte(cfg.Needle)
	for d := 0; d < cfg.Dirs; d++ {
		for f := 0; f < cfg.FilesPerDir; f++ {
			data, err := s.ReadFile(e, file(d, f))
			if err != nil {
				return res, err
			}
			res.BytesRead += len(data)
			e.ChargeALU(len(data) / 2) // scan
			if bytes.Contains(data, needle) {
				res.Matches++
			}
		}
	}

	// Phase 5: clean the copies.
	names, err := s.ReadDir(e, "/copy")
	if err != nil {
		return res, err
	}
	for _, name := range names {
		if err := s.Remove(e, "/copy/"+name); err != nil {
			return res, err
		}
	}
	if err := s.Remove(e, "/copy"); err != nil {
		return res, err
	}
	return res, nil
}

// ExpectedMatches returns the number of planted needles for a config.
func ExpectedMatches(cfg Config) int {
	if cfg.Dirs == 0 {
		cfg.Dirs = 3
	}
	if cfg.FilesPerDir == 0 {
		cfg.FilesPerDir = 4
	}
	n := 0
	for d := 0; d < cfg.Dirs; d++ {
		for f := 0; f < cfg.FilesPerDir; f++ {
			if (d+f)%3 == 0 {
				n++
			}
		}
	}
	return n
}
