package afsbench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

func runScript(t *testing.T, cfg Config) (Result, *uxserver.Server, *uniproc.Processor) {
	t.Helper()
	p := uniproc.New(uniproc.Config{Quantum: 8192, JitterSeed: 19})
	pkg := cthreads.New(core.NewRAS())
	s := uxserver.Start(p, pkg, memfs.New(pkg), 2)
	cfg.Server = s
	var res Result
	var runErr error
	p.Go("script", func(e *uniproc.Env) {
		res, runErr = Run(e, cfg)
		if runErr == nil {
			// /copy must be gone; /obj must hold every object.
			if _, _, err := s.Stat(e, "/copy"); err == nil {
				t.Error("/copy not cleaned up")
			}
			names, err := s.ReadDir(e, "/obj")
			if err != nil || len(names) != res.Objects {
				t.Errorf("/obj entries = %v err=%v", names, err)
			}
		}
		s.Shutdown(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res, s, p
}

func TestScriptCounts(t *testing.T) {
	cfg := Config{Dirs: 3, FilesPerDir: 4, FileBytes: 1024}
	res, _, _ := runScript(t, cfg)
	want := cfg.Dirs * cfg.FilesPerDir
	if res.FilesCreated != want || res.FilesCopied != want || res.Objects != want {
		t.Errorf("res = %+v, want %d each", res, want)
	}
	if res.Matches != ExpectedMatches(cfg) {
		t.Errorf("matches = %d, want %d", res.Matches, ExpectedMatches(cfg))
	}
	// copy reads + compile reads + search reads.
	if res.BytesRead != 3*want*cfg.FileBytes {
		t.Errorf("bytes read = %d", res.BytesRead)
	}
	// create writes + copy writes + object writes.
	if res.BytesWritten != 3*want*cfg.FileBytes {
		t.Errorf("bytes written = %d", res.BytesWritten)
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, _, _ := runScript(t, Config{})
	if res.FilesCreated != 12 { // 3 dirs x 4 files
		t.Errorf("FilesCreated = %d", res.FilesCreated)
	}
}

func TestServerTrafficGenerated(t *testing.T) {
	_, s, p := runScript(t, Config{Dirs: 2, FilesPerDir: 3, FileBytes: 512})
	if s.Requests < 40 {
		t.Errorf("requests = %d, workload too light", s.Requests)
	}
	if p.Stats.Blocks == 0 {
		t.Error("no blocking synchronization recorded")
	}
}

func TestSourceDeterministicAndNeedlePlanted(t *testing.T) {
	a := source(1, 2, 256, "needle")
	b := source(1, 2, 256, "needle")
	if string(a) != string(b) {
		t.Error("source not deterministic")
	}
	c := source(0, 0, 256, "needle") // (0+0)%3 == 0: planted
	if string(c[128:128+6]) != "needle" {
		t.Errorf("needle not planted: %q", c[120:140])
	}
}

func TestExpectedMatches(t *testing.T) {
	if got := ExpectedMatches(Config{Dirs: 3, FilesPerDir: 3}); got != 3 {
		t.Errorf("ExpectedMatches = %d, want 3", got)
	}
	if got := ExpectedMatches(Config{}); got != 4 {
		t.Errorf("default ExpectedMatches = %d, want 4", got)
	}
}
