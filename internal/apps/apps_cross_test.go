// Package apps_test holds cross-cutting integration tests: every Table 3
// application must produce identical *results* (not timings) no matter
// which atomic-operation mechanism the thread package uses, and identical
// everything given identical configuration — the determinism the benchmark
// harness relies on.
package apps_test

import (
	"bytes"
	"testing"

	"repro/internal/apps/afsbench"
	"repro/internal/apps/parthenon"
	"repro/internal/apps/proton"
	"repro/internal/apps/textfmt"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/lamport"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

// mechs returns the mechanisms applications must be invariant over.
func mechs() map[string]core.Mechanism {
	return map[string]core.Mechanism{
		"ras":       core.NewRAS(),
		"ras-reg":   core.NewRASRegistered(),
		"emulation": core.NewKernelEmul(arch.R3000()),
		"lamport-b": lamport.NewMeta(32),
	}
}

// withWorld runs client on a fresh processor with a server.
func withWorld(t *testing.T, mech core.Mechanism, client func(e *uniproc.Env, pkg *cthreads.Pkg, s *uxserver.Server)) *uniproc.Processor {
	t.Helper()
	proc := uniproc.New(uniproc.Config{Quantum: 9000, JitterSeed: 99})
	pkg := cthreads.New(mech)
	s := uxserver.Start(proc, pkg, memfs.New(pkg), 2)
	proc.Go("client", func(e *uniproc.Env) {
		client(e, pkg, s)
		s.Shutdown(e)
	})
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	return proc
}

func TestParthenonResultMechanismInvariant(t *testing.T) {
	input := append(parthenon.Chain(25), parthenon.Pigeonhole(3, 2)...)
	var first *parthenon.Result
	for name, m := range mechs() {
		var res parthenon.Result
		withWorld(t, m, func(e *uniproc.Env, pkg *cthreads.Pkg, s *uxserver.Server) {
			res = parthenon.Run(e, parthenon.Config{Pkg: pkg, Workers: 4}, input)
		})
		if !res.Proved {
			t.Fatalf("%s: not proved", name)
		}
		if first == nil {
			r := res
			first = &r
		}
		// Kept-clause counts can differ across schedules; the verdict must
		// not.
		if res.Proved != first.Proved {
			t.Errorf("%s: verdict differs", name)
		}
	}
}

func TestProtonChecksumMechanismInvariant(t *testing.T) {
	const size = 8192
	want := proton.Checksum(proton.Generate(size))
	for name, m := range mechs() {
		var res proton.Result
		var err error
		withWorld(t, m, func(e *uniproc.Env, pkg *cthreads.Pkg, s *uxserver.Server) {
			res, err = proton.Run(e, proton.Config{Pkg: pkg, Server: s, FileSize: size})
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Checksum != want || res.Bytes != size {
			t.Errorf("%s: checksum %#x bytes %d", name, res.Checksum, res.Bytes)
		}
	}
}

func TestTextfmtOutputMechanismInvariant(t *testing.T) {
	var first []byte
	for name, m := range mechs() {
		var out []byte
		withWorld(t, m, func(e *uniproc.Env, pkg *cthreads.Pkg, s *uxserver.Server) {
			if _, err := textfmt.Run(e, textfmt.Config{
				Server: s, Paragraphs: 5, WordsPerPara: 40, Width: 60,
			}); err != nil {
				t.Fatal(err)
			}
			var err error
			out, err = s.ReadFile(e, "/doc.out")
			if err != nil {
				t.Fatal(err)
			}
		})
		if first == nil {
			first = out
		}
		if !bytes.Equal(out, first) {
			t.Errorf("%s: formatted output differs", name)
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestAfsbenchResultMechanismInvariant(t *testing.T) {
	cfg := afsbench.Config{Dirs: 2, FilesPerDir: 3, FileBytes: 1024}
	var first *afsbench.Result
	for name, m := range mechs() {
		var res afsbench.Result
		var err error
		withWorld(t, m, func(e *uniproc.Env, pkg *cthreads.Pkg, s *uxserver.Server) {
			c := cfg
			c.Server = s
			res, err = afsbench.Run(e, c)
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if first == nil {
			r := res
			first = &r
		}
		if res != *first {
			t.Errorf("%s: result %+v differs from %+v", name, res, *first)
		}
	}
}

// Determinism: identical configuration must give bit-identical statistics.
func TestWorldDeterministic(t *testing.T) {
	run := func() (uniproc.Stats, uint64) {
		var proc *uniproc.Processor
		proc = withWorld(t, core.NewRAS(), func(e *uniproc.Env, pkg *cthreads.Pkg, s *uxserver.Server) {
			if _, err := proton.Run(e, proton.Config{Pkg: pkg, Server: s, FileSize: 4096}); err != nil {
				t.Fatal(err)
			}
		})
		return proc.Stats, proc.Clock()
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Errorf("nondeterministic: %+v @%d vs %+v @%d", s1, c1, s2, c2)
	}
}
