// Package parthenon is a resolution-based theorem prover for propositional
// logic that exploits or-parallelism with n worker threads, standing in for
// the Parthenon prover (Bose et al.) used in the paper's Table 3
// (parthenon-1 and parthenon-10).
//
// The synchronization structure matches the paper's description of the
// workload: the program "synchronizes often, but most synchronization
// operations guard short critical sections that simply increment a counter,
// or dequeue an item from a linked list" (§5.3). The shared agenda of
// clauses is a mutex-protected queue; statistics are spinlock-protected
// counters; workers coordinate idleness with a condition variable.
package parthenon

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cthreads"
	"repro/internal/uniproc"
)

// Literal is a propositional literal: variable v is v, its negation -v.
// Variables are positive integers.
type Literal int

// Clause is a disjunction of literals, kept sorted and deduplicated.
type Clause []Literal

// normalize sorts, deduplicates, and reports whether the clause is a
// tautology (contains both v and -v).
func normalize(c Clause) (Clause, bool) {
	sort.Slice(c, func(i, j int) bool {
		ai, aj := abs(c[i]), abs(c[j])
		if ai != aj {
			return ai < aj
		}
		return c[i] < c[j]
	})
	out := c[:0]
	var prev Literal
	for i, l := range c {
		if i > 0 && l == prev {
			continue
		}
		if i > 0 && l == -prev {
			return nil, true // tautology
		}
		out = append(out, l)
		prev = l
	}
	return out, false
}

func abs(l Literal) Literal {
	if l < 0 {
		return -l
	}
	return l
}

// key returns a canonical string form for duplicate detection.
func (c Clause) key() string {
	var b strings.Builder
	for i, l := range c {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}

// String renders the clause for diagnostics.
func (c Clause) String() string {
	if len(c) == 0 {
		return "⊥"
	}
	return "(" + c.key() + ")"
}

// resolve returns the resolvent of a and b on variable v (a contains v, b
// contains -v), and whether it is a tautology.
func resolve(a, b Clause, v Literal) (Clause, bool) {
	out := make(Clause, 0, len(a)+len(b)-2)
	for _, l := range a {
		if l != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l != -v {
			out = append(out, l)
		}
	}
	return normalize(out)
}

// Result summarizes a proof attempt.
type Result struct {
	Proved     bool   // the empty clause was derived (input unsatisfiable)
	Resolvents uint64 // resolvents generated
	Kept       uint64 // new clauses retained
	Workers    int
}

// Config parametrizes a run.
type Config struct {
	Pkg     *cthreads.Pkg
	Workers int // or-parallel worker threads (the paper's parthenon-n)
}

// prover is the shared state among workers.
type prover struct {
	pkg *cthreads.Pkg

	mu     *cthreads.Mutex
	work   *cthreads.Cond
	agenda []Clause // clauses awaiting processing
	usable []Clause // clauses available as resolution partners
	seen   map[string]bool
	busy   int
	done   bool
	proved bool

	// Short-critical-section counters, each behind its own spinlock —
	// the §5.3 workload shape.
	statLock   *cthreads.SpinLock
	resolvents uint64
	kept       uint64
}

// Run proves (or saturates on) the given CNF with cfg.Workers threads. It
// must be called on a uniproc thread; it forks the workers and joins them.
func Run(e *uniproc.Env, cfg Config, input []Clause) Result {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	p := &prover{
		pkg:      cfg.Pkg,
		mu:       cfg.Pkg.NewMutex(),
		work:     cfg.Pkg.NewCond(),
		seen:     make(map[string]bool),
		statLock: cfg.Pkg.NewSpinLock(),
	}
	for _, c := range input {
		n, taut := normalize(append(Clause(nil), c...))
		if taut {
			continue
		}
		if len(n) == 0 {
			p.proved = true
		}
		if !p.seen[n.key()] {
			p.seen[n.key()] = true
			p.agenda = append(p.agenda, n)
		}
	}
	handles := make([]*cthreads.Handle, cfg.Workers)
	for i := range handles {
		handles[i] = cfg.Pkg.Fork(e, fmt.Sprintf("prover-%d", i), p.worker)
	}
	for _, h := range handles {
		h.Join(e)
	}
	return Result{Proved: p.proved, Resolvents: p.resolvents, Kept: p.kept, Workers: cfg.Workers}
}

// worker implements the given-clause loop.
func (p *prover) worker(e *uniproc.Env) {
	for {
		p.mu.Lock(e)
		for len(p.agenda) == 0 && !p.done {
			if p.busy == 0 {
				// Saturated: nobody is working and nothing is queued.
				p.done = true
				p.work.Broadcast(e)
				break
			}
			p.work.Wait(e, p.mu)
		}
		if p.done {
			p.mu.Unlock(e)
			return
		}
		given := p.agenda[0]
		p.agenda = p.agenda[1:]
		p.busy++
		// Snapshot the usable set; clauses appended later will meet this
		// one when they are the given clause themselves.
		partners := p.usable
		p.usable = append(p.usable, given)
		e.ChargeALU(8) // dequeue + bookkeeping
		p.mu.Unlock(e)

		p.process(e, given, partners)

		p.mu.Lock(e)
		p.busy--
		if p.busy == 0 && len(p.agenda) == 0 {
			p.done = true
			p.work.Broadcast(e)
		}
		p.mu.Unlock(e)
	}
}

// process resolves given against every partner clause.
func (p *prover) process(e *uniproc.Env, given Clause, partners []Clause) {
	for _, other := range partners {
		if p.isDone(e) {
			return
		}
		for _, l := range given {
			if !contains(other, -l) {
				continue
			}
			e.ChargeALU(4 * (len(given) + len(other))) // resolvent construction
			res, taut := resolve(given, other, l)
			p.bumpResolvents(e)
			if taut {
				continue
			}
			p.offer(e, res)
			if p.isDone(e) {
				return
			}
		}
	}
}

func contains(c Clause, l Literal) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// bumpResolvents is one of the paper's short counter critical sections.
func (p *prover) bumpResolvents(e *uniproc.Env) {
	p.statLock.Lock(e)
	p.resolvents++
	e.ChargeALU(2)
	p.statLock.Unlock(e)
}

// offer adds a new clause to the agenda if it has not been seen.
func (p *prover) offer(e *uniproc.Env, c Clause) {
	p.mu.Lock(e)
	defer p.mu.Unlock(e)
	if p.done {
		return
	}
	k := c.key()
	e.ChargeALU(2 * (1 + len(c))) // hash
	if p.seen[k] {
		return
	}
	p.seen[k] = true
	if len(c) == 0 {
		p.proved = true
		p.done = true
		p.work.Broadcast(e)
		return
	}
	p.agenda = append(p.agenda, c)
	p.statLock.Lock(e)
	p.kept++
	p.statLock.Unlock(e)
	p.work.Signal(e)
}

func (p *prover) isDone(e *uniproc.Env) bool {
	p.mu.Lock(e)
	d := p.done
	p.mu.Unlock(e)
	return d
}

// Pigeonhole returns the CNF asserting that pigeons pigeons fit into holes
// holes, one per hole — unsatisfiable whenever pigeons > holes. Variable
// p(i,j) = i*holes + j + 1 means "pigeon i sits in hole j".
func Pigeonhole(pigeons, holes int) []Clause {
	v := func(i, j int) Literal { return Literal(i*holes + j + 1) }
	var cnf []Clause
	for i := 0; i < pigeons; i++ {
		var c Clause
		for j := 0; j < holes; j++ {
			c = append(c, v(i, j))
		}
		cnf = append(cnf, c)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				cnf = append(cnf, Clause{-v(i, j), -v(k, j)})
			}
		}
	}
	return cnf
}

// Chain returns the unsatisfiable implication chain
// {x1, ¬x1∨x2, ..., ¬x(n-1)∨xn, ¬xn}: a cheap refutation of tunable size
// for generating synchronization load.
func Chain(n int) []Clause {
	cnf := []Clause{{1}}
	for i := 1; i < n; i++ {
		cnf = append(cnf, Clause{Literal(-i), Literal(i + 1)})
	}
	return append(cnf, Clause{Literal(-n)})
}

// Satisfiable returns a small satisfiable CNF (provers must saturate
// without finding the empty clause).
func Satisfiable() []Clause {
	return []Clause{{1, 2}, {-1, 3}, {-2, 3}}
}
