package parthenon

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/uniproc"
)

func TestNormalize(t *testing.T) {
	c, taut := normalize(Clause{3, -1, 3, 2})
	if taut {
		t.Fatal("not a tautology")
	}
	want := Clause{-1, 2, 3}
	if len(c) != 3 || c[0] != want[0] || c[1] != want[1] || c[2] != want[2] {
		t.Errorf("normalize = %v, want %v", c, want)
	}
	if _, taut := normalize(Clause{1, -1, 2}); !taut {
		t.Error("tautology not detected")
	}
}

func TestResolve(t *testing.T) {
	// (1 ∨ 2) and (-1 ∨ 3) resolve on 1 to (2 ∨ 3).
	res, taut := resolve(Clause{1, 2}, Clause{-1, 3}, 1)
	if taut || len(res) != 2 || res[0] != 2 || res[1] != 3 {
		t.Errorf("resolve = %v taut=%v", res, taut)
	}
	// (1 ∨ 2) and (-1 ∨ -2) resolve on 1 to the tautology (2 ∨ -2).
	if _, taut := resolve(Clause{1, 2}, Clause{-1, -2}, 1); !taut {
		t.Error("tautological resolvent not flagged")
	}
	// Unit vs unit gives the empty clause.
	res, taut = resolve(Clause{1}, Clause{-1}, 1)
	if taut || len(res) != 0 {
		t.Errorf("empty resolvent = %v", res)
	}
}

func TestClauseStrings(t *testing.T) {
	if got := (Clause{}).String(); got != "⊥" {
		t.Errorf("empty clause string = %q", got)
	}
	if got := (Clause{-1, 2}).String(); got != "(-1 2)" {
		t.Errorf("clause string = %q", got)
	}
}

// prove runs the prover inside a fresh processor.
func prove(t *testing.T, workers int, quantum uint64, input []Clause) (Result, *uniproc.Processor) {
	t.Helper()
	p := uniproc.New(uniproc.Config{Quantum: quantum, JitterSeed: 13})
	pkg := cthreads.New(core.NewRAS())
	var res Result
	p.Go("main", func(e *uniproc.Env) {
		res = Run(e, Config{Pkg: pkg, Workers: workers}, input)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return res, p
}

func TestPigeonholeUnsat(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, _ := prove(t, workers, 5000, Pigeonhole(3, 2))
		if !res.Proved {
			t.Errorf("workers=%d: PHP(3,2) not proved unsatisfiable", workers)
		}
		if res.Resolvents == 0 || res.Kept == 0 {
			t.Errorf("workers=%d: no work recorded: %+v", workers, res)
		}
	}
}

func TestChainUnsat(t *testing.T) {
	res, proc := prove(t, 3, 3000, Chain(30))
	if !res.Proved {
		t.Error("chain not refuted")
	}
	if proc.Stats.Blocks == 0 {
		t.Error("no blocking synchronization during proof")
	}
}

func TestSatisfiableSaturates(t *testing.T) {
	res, _ := prove(t, 2, 5000, Satisfiable())
	if res.Proved {
		t.Error("satisfiable input 'proved' unsatisfiable")
	}
}

func TestPigeonholeSatisfiableCase(t *testing.T) {
	// 2 pigeons, 2 holes: satisfiable; the prover must saturate.
	res, _ := prove(t, 2, 5000, Pigeonhole(2, 2))
	if res.Proved {
		t.Error("PHP(2,2) is satisfiable but was 'refuted'")
	}
}

func TestProverDeterministicAcrossQuanta(t *testing.T) {
	for _, q := range []uint64{500, 2000, 50000} {
		res, _ := prove(t, 4, q, Pigeonhole(3, 2))
		if !res.Proved {
			t.Errorf("quantum %d: proof lost", q)
		}
	}
}

func TestEmptyInputClauseProves(t *testing.T) {
	res, _ := prove(t, 1, 5000, []Clause{{}})
	if !res.Proved {
		t.Error("explicit empty clause not detected")
	}
}

func TestWorkersDefaulted(t *testing.T) {
	res, _ := prove(t, 0, 5000, Chain(5))
	if res.Workers != 1 {
		t.Errorf("workers = %d, want 1", res.Workers)
	}
}

func TestPigeonholeGenerator(t *testing.T) {
	cnf := Pigeonhole(3, 2)
	// 3 pigeon clauses + 2 holes x C(3,2)=3 pairs = 3 + 6 = 9.
	if len(cnf) != 9 {
		t.Errorf("PHP(3,2) clauses = %d, want 9", len(cnf))
	}
	cnf = Pigeonhole(4, 3)
	// 4 + 3 * C(4,2)=6 -> 4 + 18 = 22.
	if len(cnf) != 22 {
		t.Errorf("PHP(4,3) clauses = %d, want 22", len(cnf))
	}
}

func TestChainGenerator(t *testing.T) {
	cnf := Chain(5)
	if len(cnf) != 6 {
		t.Errorf("chain clauses = %d, want 6", len(cnf))
	}
}

// Parallel workers generate the synchronization profile the paper
// describes: many short counter/queue critical sections.
func TestSynchronizationVolume(t *testing.T) {
	_, proc := prove(t, 10, 2000, Pigeonhole(3, 2))
	if proc.Stats.Switches == 0 || proc.Stats.Forks < 10 {
		t.Errorf("stats = %+v", proc.Stats)
	}
}
