// Package proton is the producer-consumer application of the paper's
// Table 3 (proton-64): one producer thread reads data from a large file
// into a 64-byte buffer, coordinating with one consumer thread through a
// mutex and two condition variables. Every buffer handoff blocks a thread,
// which is why this application shows by far the highest thread-suspension
// count in Table 3 — and the largest benefit (~50%) from cheap atomic
// operations.
package proton

import (
	"fmt"

	"repro/internal/cthreads"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

// BufSize is the handoff buffer size (the "64" in proton-64).
const BufSize = 64

// Config parametrizes a run.
type Config struct {
	Pkg      *cthreads.Pkg
	Server   *uxserver.Server
	Path     string // input file path; created if FileSize > 0
	FileSize int    // bytes of input to generate; 0 means Path must exist
}

// Result summarizes a run.
type Result struct {
	Items    int    // buffers handed from producer to consumer
	Bytes    int    // total bytes consumed
	Checksum uint32 // order-sensitive checksum of consumed data
}

// Generate returns FileSize bytes of deterministic pseudo-data.
func Generate(n int) []byte {
	data := make([]byte, n)
	x := uint32(0x2545F491)
	for i := range data {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		data[i] = byte(x)
	}
	return data
}

// Checksum computes the order-sensitive checksum Run reports, for
// verifying that the consumer saw exactly the file contents.
func Checksum(data []byte) uint32 {
	var h uint32 = 2166136261
	for _, b := range data {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// Run executes the producer-consumer workload from the calling thread
// (which becomes the consumer) and a forked producer thread.
func Run(e *uniproc.Env, cfg Config) (Result, error) {
	if cfg.Path == "" {
		cfg.Path = "/proton.dat"
	}
	if cfg.FileSize > 0 {
		if err := cfg.Server.Create(e, cfg.Path); err != nil {
			return Result{}, err
		}
		if err := cfg.Server.WriteFile(e, cfg.Path, Generate(cfg.FileSize)); err != nil {
			return Result{}, err
		}
	}
	_, size, err := cfg.Server.Stat(e, cfg.Path)
	if err != nil {
		return Result{}, err
	}

	mu := cfg.Pkg.NewMutex()
	bufFull := cfg.Pkg.NewCond()
	bufEmpty := cfg.Pkg.NewCond()
	buf := make([]byte, BufSize)
	bufLen := 0 // 0: empty; >0: full with bufLen bytes; -1: end of stream
	var prodErr error

	producer := cfg.Pkg.Fork(e, "producer", func(pe *uniproc.Env) {
		local := make([]byte, BufSize)
		off := 0
		for off < size {
			n, err := cfg.Server.ReadAt(pe, cfg.Path, off, local)
			if err != nil {
				prodErr = err
				break
			}
			if n == 0 {
				break
			}
			off += n
			mu.Lock(pe)
			for bufLen != 0 {
				bufEmpty.Wait(pe, mu)
			}
			copy(buf, local[:n])
			bufLen = n
			pe.ChargeALU(n / 4) // buffer copy
			bufFull.Signal(pe)
			mu.Unlock(pe)
		}
		mu.Lock(pe)
		for bufLen != 0 {
			bufEmpty.Wait(pe, mu)
		}
		bufLen = -1 // end of stream
		bufFull.Signal(pe)
		mu.Unlock(pe)
	})

	// Consumer: the calling thread.
	res := Result{}
	var h uint32 = 2166136261
	for {
		mu.Lock(e)
		for bufLen == 0 {
			bufFull.Wait(e, mu)
		}
		if bufLen < 0 {
			mu.Unlock(e)
			break
		}
		n := bufLen
		for _, b := range buf[:n] {
			h = (h ^ uint32(b)) * 16777619
		}
		e.ChargeALU(n) // per-byte processing
		bufLen = 0
		bufEmpty.Signal(e)
		mu.Unlock(e)
		res.Items++
		res.Bytes += n
	}
	producer.Join(e)
	if prodErr != nil {
		return res, fmt.Errorf("proton: producer: %w", prodErr)
	}
	res.Checksum = h
	return res, nil
}
