package proton

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

func runProton(t *testing.T, fileSize int) (Result, *uniproc.Processor, error) {
	t.Helper()
	p := uniproc.New(uniproc.Config{Quantum: 8192, JitterSeed: 21})
	pkg := cthreads.New(core.NewRAS())
	s := uxserver.Start(p, pkg, memfs.New(pkg), 2)
	var res Result
	var runErr error
	p.Go("consumer", func(e *uniproc.Env) {
		res, runErr = Run(e, Config{Pkg: pkg, Server: s, FileSize: fileSize})
		s.Shutdown(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return res, p, runErr
}

func TestTransfersWholeFile(t *testing.T) {
	const size = 4096
	res, _, err := runProton(t, size)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Errorf("bytes = %d, want %d", res.Bytes, size)
	}
	if res.Items != size/BufSize {
		t.Errorf("items = %d, want %d", res.Items, size/BufSize)
	}
	if want := Checksum(Generate(size)); res.Checksum != want {
		t.Errorf("checksum = %#x, want %#x", res.Checksum, want)
	}
}

func TestPartialLastBuffer(t *testing.T) {
	const size = 1000 // not a multiple of 64
	res, _, err := runProton(t, size)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Errorf("bytes = %d, want %d", res.Bytes, size)
	}
	if res.Items != (size+BufSize-1)/BufSize {
		t.Errorf("items = %d", res.Items)
	}
	if want := Checksum(Generate(size)); res.Checksum != want {
		t.Errorf("checksum mismatch")
	}
}

func TestHighSuspensionProfile(t *testing.T) {
	// The defining property of proton-64 in Table 3: blocking handoffs
	// dominate — the blocks count must be at least the number of buffers.
	const size = 8192
	res, proc, err := runProton(t, size)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Stats.Blocks < uint64(res.Items) {
		t.Errorf("blocks = %d < items = %d", proc.Stats.Blocks, res.Items)
	}
}

func TestEmptyFile(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	pkg := cthreads.New(core.NewRAS())
	s := uxserver.Start(p, pkg, memfs.New(pkg), 1)
	var res Result
	var runErr error
	p.Go("consumer", func(e *uniproc.Env) {
		if err := s.Create(e, "/empty"); err != nil {
			t.Error(err)
		}
		res, runErr = Run(e, Config{Pkg: pkg, Server: s, Path: "/empty"})
		s.Shutdown(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Items != 0 || res.Bytes != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestMissingFileFails(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	pkg := cthreads.New(core.NewRAS())
	s := uxserver.Start(p, pkg, memfs.New(pkg), 1)
	var runErr error
	p.Go("consumer", func(e *uniproc.Env) {
		_, runErr = Run(e, Config{Pkg: pkg, Server: s, Path: "/nope"})
		s.Shutdown(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "not found") {
		t.Errorf("err = %v", runErr)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(256), Generate(256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Generate not deterministic")
		}
	}
	if Checksum(a) != Checksum(b) {
		t.Fatal("Checksum not deterministic")
	}
	if Checksum([]byte{1}) == Checksum([]byte{2}) {
		t.Error("checksum collision on trivial inputs")
	}
}
