// Package textfmt is a single-threaded text formatter — the stand-in for
// the paper's text-format workload (formatting a paper with LaTeX). It
// reads a document through the multithreaded user-level server, fills and
// justifies paragraphs, and writes the result back page by page.
//
// The application itself has one thread; all of its synchronization load is
// indirect, inside the server — which is exactly the effect Table 3
// demonstrates with text-format's ~3% improvement under restartable atomic
// sequences.
package textfmt

import (
	"strings"

	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

// Config parametrizes a run.
type Config struct {
	Server *uxserver.Server
	In     string // input path; generated if Paragraphs > 0
	Out    string // output path
	Width  int    // fill width; default 72

	// Document generation knobs (used when Paragraphs > 0).
	Paragraphs   int
	WordsPerPara int
}

// Result summarizes a run.
type Result struct {
	Paragraphs int
	Lines      int
	BytesOut   int
}

var lexicon = []string{
	"atomic", "sequence", "kernel", "thread", "mutual", "exclusion",
	"uniprocessor", "optimistic", "restart", "suspension", "register",
	"interrupt", "quantum", "critical", "section", "overhead", "latency",
	"scheduler", "preemption", "recovery", "mechanism", "benchmark",
}

// GenerateDocument produces a deterministic document of paras paragraphs
// with wordsPer words each.
func GenerateDocument(paras, wordsPer int) string {
	var b strings.Builder
	x := uint32(0x9E3779B9)
	for p := 0; p < paras; p++ {
		for w := 0; w < wordsPer; w++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(lexicon[x%uint32(len(lexicon))])
		}
		b.WriteString("\n\n")
	}
	return b.String()
}

// FillJustify greedily fills words into lines of at most width characters
// and pads interior lines with distributed spaces so every line except a
// paragraph's last is exactly width wide. It is a pure function; Run wraps
// it with cycle charging and server I/O.
func FillJustify(paragraph string, width int) []string {
	words := strings.Fields(paragraph)
	if len(words) == 0 {
		return nil
	}
	var lines []string
	start := 0
	lineLen := len(words[0])
	for i := 1; i <= len(words); i++ {
		if i == len(words) {
			lines = append(lines, strings.Join(words[start:], " "))
			break
		}
		if lineLen+1+len(words[i]) > width {
			lines = append(lines, justify(words[start:i], width))
			start = i
			lineLen = len(words[i])
			continue
		}
		lineLen += 1 + len(words[i])
	}
	return lines
}

// justify pads words to exactly width by distributing spaces left-first.
func justify(words []string, width int) string {
	if len(words) == 1 {
		return words[0]
	}
	total := 0
	for _, w := range words {
		total += len(w)
	}
	spaces := width - total
	gaps := len(words) - 1
	if spaces < gaps { // overlong words: fall back to single spacing
		return strings.Join(words, " ")
	}
	base := spaces / gaps
	extra := spaces % gaps
	var b strings.Builder
	for i, w := range words {
		b.WriteString(w)
		if i == gaps {
			break
		}
		n := base
		if i < extra {
			n++
		}
		for j := 0; j < n; j++ {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Run formats the document through the server.
func Run(e *uniproc.Env, cfg Config) (Result, error) {
	if cfg.Width == 0 {
		cfg.Width = 72
	}
	if cfg.In == "" {
		cfg.In = "/doc.txt"
	}
	if cfg.Out == "" {
		cfg.Out = "/doc.out"
	}
	if cfg.Paragraphs > 0 {
		doc := GenerateDocument(cfg.Paragraphs, cfg.WordsPerPara)
		if err := cfg.Server.Create(e, cfg.In); err != nil {
			return Result{}, err
		}
		if err := cfg.Server.WriteFile(e, cfg.In, []byte(doc)); err != nil {
			return Result{}, err
		}
	}
	raw, err := cfg.Server.ReadFile(e, cfg.In)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Server.Create(e, cfg.Out); err != nil {
		return Result{}, err
	}

	res := Result{}
	var page []byte
	flush := func() error {
		if len(page) == 0 {
			return nil
		}
		if err := cfg.Server.Append(e, cfg.Out, page); err != nil {
			return err
		}
		res.BytesOut += len(page)
		page = page[:0]
		return nil
	}

	for _, para := range strings.Split(string(raw), "\n\n") {
		if strings.TrimSpace(para) == "" {
			continue
		}
		res.Paragraphs++
		e.ChargeALU(len(para)) // scanning/hyphenation work
		lines := FillJustify(para, cfg.Width)
		for _, line := range lines {
			e.ChargeALU(len(line) / 2) // layout work
			page = append(page, line...)
			page = append(page, '\n')
			res.Lines++
			if len(page) >= 4096 { // page-sized writes, like a formatter
				if err := flush(); err != nil {
					return res, err
				}
			}
		}
		page = append(page, '\n')
	}
	if err := flush(); err != nil {
		return res, err
	}
	return res, nil
}
