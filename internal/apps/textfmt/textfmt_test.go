package textfmt

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

func TestFillJustifyBasics(t *testing.T) {
	lines := FillJustify("aa bb cc dd ee ff", 8)
	if len(lines) == 0 {
		t.Fatal("no lines")
	}
	for i, l := range lines {
		if len(l) > 8 {
			t.Errorf("line %d overlong: %q", i, l)
		}
		if i < len(lines)-1 && len(l) != 8 {
			t.Errorf("interior line %d not justified: %q (len %d)", i, l, len(l))
		}
	}
}

func TestFillJustifyPreservesWords(t *testing.T) {
	text := "the quick brown fox jumps over the lazy dog again and again"
	lines := FillJustify(text, 20)
	got := strings.Fields(strings.Join(lines, " "))
	want := strings.Fields(text)
	if len(got) != len(want) {
		t.Fatalf("word count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestFillJustifyEmpty(t *testing.T) {
	if lines := FillJustify("   ", 10); lines != nil {
		t.Errorf("blank paragraph produced %v", lines)
	}
}

func TestFillJustifySingleWord(t *testing.T) {
	lines := FillJustify("word", 10)
	if len(lines) != 1 || lines[0] != "word" {
		t.Errorf("lines = %v", lines)
	}
}

func TestFillJustifyOverlongWord(t *testing.T) {
	lines := FillJustify("supercalifragilistic a b", 10)
	if len(lines) == 0 {
		t.Fatal("no lines")
	}
	if lines[0] != "supercalifragilistic" {
		t.Errorf("overlong word mishandled: %q", lines[0])
	}
}

// Property: for generated documents, filling never reorders or loses words
// and never exceeds the width (except unbreakable words).
func TestQuickFillJustify(t *testing.T) {
	f := func(seed uint8, w8 uint8) bool {
		width := int(w8)%40 + 12
		doc := GenerateDocument(1, int(seed)%50+1)
		para := strings.TrimSpace(doc)
		lines := FillJustify(para, width)
		got := strings.Fields(strings.Join(lines, " "))
		want := strings.Fields(para)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		for _, l := range lines {
			if len(l) > width {
				for _, word := range strings.Fields(l) {
					if len(word) <= width {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDocumentShape(t *testing.T) {
	doc := GenerateDocument(3, 10)
	paras := 0
	for _, p := range strings.Split(doc, "\n\n") {
		if strings.TrimSpace(p) != "" {
			paras++
		}
	}
	if paras != 3 {
		t.Errorf("paragraphs = %d", paras)
	}
	if doc != GenerateDocument(3, 10) {
		t.Error("not deterministic")
	}
}

func TestRunEndToEnd(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 8192, JitterSeed: 5})
	pkg := cthreads.New(core.NewRAS())
	s := uxserver.Start(p, pkg, memfs.New(pkg), 2)
	var res Result
	var runErr error
	p.Go("formatter", func(e *uniproc.Env) {
		res, runErr = Run(e, Config{
			Server: s, Paragraphs: 6, WordsPerPara: 60, Width: 64,
		})
		if runErr == nil {
			// The output file must exist and match BytesOut.
			_, size, err := s.Stat(e, "/doc.out")
			if err != nil || size != res.BytesOut {
				t.Errorf("output: size=%d want=%d err=%v", size, res.BytesOut, err)
			}
		}
		s.Shutdown(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Paragraphs != 6 {
		t.Errorf("paragraphs = %d", res.Paragraphs)
	}
	if res.Lines == 0 || res.BytesOut == 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestRunMissingInput(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	pkg := cthreads.New(core.NewRAS())
	s := uxserver.Start(p, pkg, memfs.New(pkg), 1)
	var runErr error
	p.Go("formatter", func(e *uniproc.Env) {
		_, runErr = Run(e, Config{Server: s, In: "/missing"})
		s.Shutdown(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Error("expected error for missing input")
	}
}
