// Package arch defines per-processor cost profiles for the simulated
// uniprocessor.
//
// A Profile assigns cycle costs to instruction classes, to the
// memory-interlocked synchronization instructions, and to kernel paths
// (trap entry/exit, thread suspension, the RAS PC checks). The eight
// profiles mirror the processors of the paper's Table 4; their parameters
// are calibrated from the published measurements so that the *relative*
// costs — which is what Table 4 is about — are preserved:
//
//   - CVAX, 486, 88000 and PA-RISC have interlocked instructions that are
//     expensive relative to their plain loads/stores (bus locking, cache
//     bypass), so restartable sequences win there;
//   - 68030 and 386 have cheap-ish interlocked accesses but slow calls, so
//     only the inlined designated sequence competes;
//   - the i860 has its hardware lock bit (modelled by the lockb
//     instruction).
//
// The R3000 profile models the DECstation 5000/200 used in Tables 1-3; it
// has no interlocked instructions at all, and stores cost two cycles
// (write-through cache with a shallow write buffer, §5.1).
package arch

import (
	"fmt"

	"repro/internal/isa"
)

// Profile is a processor cost model. All costs are in CPU cycles.
type Profile struct {
	Name     string
	ClockMHz float64 // processor clock; converts cycles to microseconds

	// Per-class instruction costs.
	ALUCycles    int
	LoadCycles   int
	StoreCycles  int
	BranchCycles int
	JumpCycles   int

	// InterlockedCycles is the cost of one memory-interlocked
	// read-modify-write instruction (tas/xchg/faa), excluding the ordinary
	// store that releases the lock afterwards. Zero when HasInterlocked is
	// false.
	InterlockedCycles int
	HasInterlocked    bool

	// HasLLSC enables the ll/sc load-linked/store-conditional pair
	// (R4000-style). The instructions themselves are priced as ordinary
	// loads and stores; the cost of cross-CPU arbitration emerges from the
	// SMP coherence model, not from the opcode.
	HasLLSC bool

	// HasLockBit enables the i860-style lockb instruction: a hardware
	// restartable sequence begun by lockb and ended by the next store, 32
	// cycles, or an exception (§7).
	HasLockBit     bool
	LockBCycles    int // cost of the lockb instruction itself
	LockBMaxCycles int // hardware window before the lock bit auto-clears

	// Kernel path costs.
	TrapEnterCycles int // user->kernel transition (syscall/fault)
	TrapExitCycles  int // kernel->user transition
	EmulTASCycles   int // kernel work for an emulated Test-And-Set
	SuspendCycles   int // base thread-suspension path (scheduler, state save)
	ResumeCycles    int // thread-resume path

	// RAS check costs, added to suspension handling per §3.1/§3.2.
	PCCheckRegistrationCycles int // compare PC against one registered range
	PCCheckDesignatedCycles   int // two-stage opcode hash + landmark probe

	// Write-buffer model for write-through caches (§5.1: "a scheme
	// requiring several writes will not work well on a memory system with
	// a write-through cache and a shallow write-buffer"). When
	// WriteBufferDepth > 0, each store enqueues an entry that retires
	// after WriteBufferDrainCycles; a store issued against a full buffer
	// stalls the processor until a slot frees. Zero depth disables the
	// model (stores cost StoreCycles flat).
	WriteBufferDepth       int
	WriteBufferDrainCycles int

	// Persistence (NVRAM) costs, for machines whose memory carries a
	// volatile line buffer in front of non-volatile storage. flush issues
	// a line write-back (clwb-style, FlushCycles); fence is the persist
	// barrier (FenceCycles) and additionally pays PersistDrainCycles per
	// line it actually makes durable — NVM writes are slow, and a fence
	// cannot retire until every outstanding write-back has. On memories
	// without a persistence domain both instructions are hints and cost
	// only their base cycles.
	FlushCycles        int
	FenceCycles        int
	PersistDrainCycles int
}

// WithWriteBuffer returns a copy of p using the given write-buffer model.
func (p *Profile) WithWriteBuffer(depth, drainCycles int) *Profile {
	q := *p
	q.WriteBufferDepth = depth
	q.WriteBufferDrainCycles = drainCycles
	return &q
}

// CyclesFor returns the cost of one instruction of the given class.
// Interlocked instructions on a profile without hardware support are
// reported as illegal by the machine, not priced here.
func (p *Profile) CyclesFor(c isa.Class) int {
	switch c {
	case isa.ClassALU:
		return p.ALUCycles
	case isa.ClassLoad:
		return p.LoadCycles
	case isa.ClassStore:
		return p.StoreCycles
	case isa.ClassBranch:
		return p.BranchCycles
	case isa.ClassJump:
		return p.JumpCycles
	case isa.ClassTrap:
		// The trap *instruction* costs one ALU slot; the kernel charges
		// the trap entry/exit paths separately.
		return p.ALUCycles
	case isa.ClassInterlocked:
		return p.InterlockedCycles
	case isa.ClassLockB:
		return p.LockBCycles
	case isa.ClassFlush:
		return p.FlushCycles
	case isa.ClassFence:
		return p.FenceCycles
	}
	return p.ALUCycles
}

// Micros converts a cycle count to microseconds on this profile.
func (p *Profile) Micros(cycles uint64) float64 {
	return float64(cycles) / p.ClockMHz
}

// String implements fmt.Stringer.
func (p *Profile) String() string {
	return fmt.Sprintf("%s (%.1f MHz)", p.Name, p.ClockMHz)
}

// kernelDefaults fills in kernel path costs that are common across profiles
// unless a profile overrides them.
func kernelDefaults(p Profile) Profile {
	if p.TrapEnterCycles == 0 {
		p.TrapEnterCycles = 30
	}
	if p.TrapExitCycles == 0 {
		p.TrapExitCycles = 25
	}
	if p.EmulTASCycles == 0 {
		// "about 100 instructions" on the R3000 (§2.3); scale-free default.
		p.EmulTASCycles = 45
	}
	if p.SuspendCycles == 0 {
		// "already several hundred cycles long" (§3.1).
		p.SuspendCycles = 400
	}
	if p.ResumeCycles == 0 {
		p.ResumeCycles = 200
	}
	if p.PCCheckRegistrationCycles == 0 {
		// "a few tens of cycles" (§3.1).
		p.PCCheckRegistrationCycles = 20
	}
	if p.PCCheckDesignatedCycles == 0 {
		// "about 2 usecs on a MIPS R3000" == ~50 cycles at 25 MHz (§3.2).
		p.PCCheckDesignatedCycles = 50
	}
	if p.LockBMaxCycles == 0 {
		p.LockBMaxCycles = 32
	}
	if p.FlushCycles == 0 {
		// A clwb-style hint: roughly a store's issue cost.
		p.FlushCycles = 4
	}
	if p.FenceCycles == 0 {
		p.FenceCycles = 10
	}
	if p.PersistDrainCycles == 0 {
		// NVM write-back latency per line, paid at the fence.
		p.PersistDrainCycles = 60
	}
	return p
}

// R3000 models the 25 MHz MIPS R3000 in the DECstation 5000/200: no
// hardware atomic operations; single-cycle ALU/load/branch; two-cycle
// stores (write-through cache).
func R3000() *Profile {
	p := kernelDefaults(Profile{
		Name: "MIPS R3000", ClockMHz: 25,
		ALUCycles: 1, LoadCycles: 1, StoreCycles: 2, BranchCycles: 1, JumpCycles: 1,
		HasInterlocked: false,
	})
	return &p
}

// SMP models the multiprocessor variant of the R3000 board used by the
// smp package: the same clock and per-class costs as the DECstation
// profile, plus the two ways a multiprocessor can arbitrate — bus-locked
// interlocked instructions (expensive: the bus stalls every CPU, as on
// the CVAX/PA parts of Table 4) and ll/sc (cheap per instruction; the
// expense of contention comes from the coherence cost model instead).
// Keeping the base costs identical to R3000() is what makes the 1-CPU
// hybrid-lock numbers directly comparable to Table 1.
func SMP() *Profile {
	p := kernelDefaults(Profile{
		Name: "MIPS R3000 (SMP)", ClockMHz: 25,
		ALUCycles: 1, LoadCycles: 1, StoreCycles: 2, BranchCycles: 1, JumpCycles: 1,
		HasInterlocked: true, InterlockedCycles: 30,
		HasLLSC: true,
	})
	return &p
}

// CVAX models the DEC CVAX microprocessor.
func CVAX() *Profile {
	p := kernelDefaults(Profile{
		Name: "DEC CVAX", ClockMHz: 11.1,
		ALUCycles: 2, LoadCycles: 4, StoreCycles: 4, BranchCycles: 3, JumpCycles: 3,
		HasInterlocked: true, InterlockedCycles: 27,
	})
	return &p
}

// M68030 models the Motorola 68030.
func M68030() *Profile {
	p := kernelDefaults(Profile{
		Name: "Motorola 68030", ClockMHz: 25,
		ALUCycles: 3, LoadCycles: 6, StoreCycles: 6, BranchCycles: 5, JumpCycles: 10,
		HasInterlocked: true, InterlockedCycles: 22,
	})
	return &p
}

// I386 models the Intel 386.
func I386() *Profile {
	p := kernelDefaults(Profile{
		Name: "Intel 386", ClockMHz: 25,
		ALUCycles: 2, LoadCycles: 4, StoreCycles: 4, BranchCycles: 4, JumpCycles: 9,
		HasInterlocked: true, InterlockedCycles: 21,
	})
	return &p
}

// I486 models the Intel 486.
func I486() *Profile {
	p := kernelDefaults(Profile{
		Name: "Intel 486", ClockMHz: 33,
		ALUCycles: 1, LoadCycles: 2, StoreCycles: 2, BranchCycles: 2, JumpCycles: 5,
		HasInterlocked: true, InterlockedCycles: 21,
	})
	return &p
}

// I860 models the Intel i860, including its hardware lock bit.
func I860() *Profile {
	p := kernelDefaults(Profile{
		Name: "Intel 860", ClockMHz: 40,
		ALUCycles: 1, LoadCycles: 2, StoreCycles: 1, BranchCycles: 2, JumpCycles: 4,
		HasInterlocked: true, InterlockedCycles: 11,
		// The lock instruction disables interrupts and locks the bus, so
		// it is far from free; the paper's Table 4 prices the i860's
		// hardware path at 0.3us — barely ahead of plain software.
		HasLockBit: true, LockBCycles: 7,
	})
	return &p
}

// M88000 models the Motorola 88000, whose xmem bypasses the on-chip cache.
func M88000() *Profile {
	p := kernelDefaults(Profile{
		Name: "Motorola 88000", ClockMHz: 25,
		ALUCycles: 1, LoadCycles: 1, StoreCycles: 1, BranchCycles: 1, JumpCycles: 1,
		HasInterlocked: true, InterlockedCycles: 21,
	})
	return &p
}

// SPARC models the Sun SPARC.
func SPARC() *Profile {
	p := kernelDefaults(Profile{
		Name: "Sun SPARC", ClockMHz: 25,
		ALUCycles: 1, LoadCycles: 2, StoreCycles: 5, BranchCycles: 2, JumpCycles: 4,
		HasInterlocked: true, InterlockedCycles: 15,
	})
	return &p
}

// PA models the HP 9000 Series 700 (PA-RISC), whose ldcws bypasses the
// cache, making the interlocked path dramatically slower than plain code.
func PA() *Profile {
	p := kernelDefaults(Profile{
		Name: "HP 9000/700", ClockMHz: 66,
		ALUCycles: 1, LoadCycles: 1, StoreCycles: 1, BranchCycles: 1, JumpCycles: 2,
		HasInterlocked: true, InterlockedCycles: 61,
	})
	return &p
}

// Table4 returns the eight processors of the paper's Table 4, in paper
// order.
func Table4() []*Profile {
	return []*Profile{CVAX(), M68030(), I386(), I486(), I860(), M88000(), SPARC(), PA()}
}

// ByName returns the profile with the given name (case-sensitive match on
// either the full name or a short alias), or nil.
func ByName(name string) *Profile {
	switch name {
	case "r3000", "MIPS R3000", "decstation":
		return R3000()
	case "cvax", "DEC CVAX":
		return CVAX()
	case "68030", "m68030", "Motorola 68030":
		return M68030()
	case "386", "i386", "Intel 386":
		return I386()
	case "486", "i486", "Intel 486":
		return I486()
	case "860", "i860", "Intel 860":
		return I860()
	case "88000", "m88000", "Motorola 88000":
		return M88000()
	case "sparc", "Sun SPARC":
		return SPARC()
	case "pa", "hp700", "HP 9000/700":
		return PA()
	case "smp", "r3000smp", "MIPS R3000 (SMP)":
		return SMP()
	}
	return nil
}

// Names lists the short aliases accepted by ByName, in a stable order.
func Names() []string {
	return []string{"r3000", "cvax", "68030", "386", "486", "860", "88000", "sparc", "pa", "smp"}
}
