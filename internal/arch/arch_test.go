package arch

import (
	"testing"

	"repro/internal/isa"
)

func TestAllProfilesComplete(t *testing.T) {
	profiles := append(Table4(), R3000())
	for _, p := range profiles {
		if p.Name == "" || p.ClockMHz <= 0 {
			t.Errorf("%+v: missing name or clock", p)
		}
		for _, c := range []isa.Class{isa.ClassALU, isa.ClassLoad, isa.ClassStore,
			isa.ClassBranch, isa.ClassJump, isa.ClassTrap} {
			if p.CyclesFor(c) <= 0 {
				t.Errorf("%s: class %v has non-positive cost", p.Name, c)
			}
		}
		if p.SuspendCycles < 100 {
			t.Errorf("%s: suspension path suspiciously cheap (%d)", p.Name, p.SuspendCycles)
		}
		if p.PCCheckRegistrationCycles <= 0 || p.PCCheckDesignatedCycles <= 0 {
			t.Errorf("%s: PC check costs not set", p.Name)
		}
		if p.HasInterlocked && p.InterlockedCycles <= 0 {
			t.Errorf("%s: interlocked without cost", p.Name)
		}
	}
}

func TestR3000HasNoInterlocked(t *testing.T) {
	if R3000().HasInterlocked {
		t.Error("the DECstation's R3000 must not support interlocked instructions")
	}
}

func TestOnlyI860HasLockBit(t *testing.T) {
	for _, p := range Table4() {
		want := p.Name == "Intel 860"
		if p.HasLockBit != want {
			t.Errorf("%s: HasLockBit = %v, want %v", p.Name, p.HasLockBit, want)
		}
	}
}

func TestMicros(t *testing.T) {
	p := R3000() // 25 MHz: 25 cycles = 1us
	if got := p.Micros(25); got != 1.0 {
		t.Errorf("Micros(25) = %v, want 1.0", got)
	}
	if got := p.Micros(0); got != 0 {
		t.Errorf("Micros(0) = %v", got)
	}
}

// The whole point of Table 4: on CVAX, 486, 88000 and PA-RISC the
// interlocked instruction should cost more microseconds than the designated
// software sequence (load + 2 ALU + branch + 2 stores).
func TestTable4Crossover(t *testing.T) {
	designated := func(p *Profile) float64 {
		cycles := p.LoadCycles + 2*p.ALUCycles + p.BranchCycles + 2*p.StoreCycles
		return p.Micros(uint64(cycles))
	}
	interlocked := func(p *Profile) float64 {
		return p.Micros(uint64(p.InterlockedCycles + p.StoreCycles))
	}
	softwareWins := map[string]bool{
		"DEC CVAX":       true,
		"Motorola 68030": false, // interlocked beats *registered*, loses to inline
		"Intel 386":      false,
		"Intel 486":      true,
		"Intel 860":      true,
		"Motorola 88000": true,
		"Sun SPARC":      true,
		"HP 9000/700":    true,
	}
	for _, p := range Table4() {
		d, i := designated(p), interlocked(p)
		if d <= 0 || i <= 0 {
			t.Fatalf("%s: non-positive cost d=%v i=%v", p.Name, d, i)
		}
		// "Using designated sequences, the software approach outperforms
		// the hardware in all cases" (§6).
		if d >= i && softwareWins[p.Name] {
			t.Errorf("%s: designated %.2fus !< interlocked %.2fus", p.Name, d, i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("pdp11") != nil {
		t.Error("ByName accepted unknown processor")
	}
	if ByName("r3000").Name != "MIPS R3000" {
		t.Error("alias r3000 mismatch")
	}
}

func TestString(t *testing.T) {
	if got := R3000().String(); got != "MIPS R3000 (25.0 MHz)" {
		t.Errorf("String = %q", got)
	}
}

func TestCyclesForAllClasses(t *testing.T) {
	p := I860()
	if p.CyclesFor(isa.ClassLockB) != p.LockBCycles {
		t.Error("lockb cost mismatch")
	}
	if p.CyclesFor(isa.ClassInterlocked) != p.InterlockedCycles {
		t.Error("interlocked cost mismatch")
	}
}
