// Package asm implements a two-pass assembler and a disassembler for the
// guest instruction set defined in internal/isa.
//
// The dialect is deliberately close to MIPS assembly so the figures from the
// paper can be transcribed almost verbatim:
//
//	        .text
//	TestAndSet:
//	        lw   v0, 0(a0)        # v0 = contents of a0
//	        li   t0, 1            # temporary t0 gets 1
//	        sw   t0, 0(a0)        # store 1 in Test-And-Set location
//	        jr   ra               # return, result in v0
//
//	        .data
//	lockword: .word 0
//
// Supported directives: .text, .data, .word, .space, .align, .globl (no-op).
// Supported pseudo-instructions: nop, landmark, move, li, la, b, beqz, bnez,
// blt, bgt, ble, bge, not, neg, sub-immediate via addi.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Default load addresses. Text starts above a guard page so that a null
// pointer dereference faults.
const (
	DefaultTextBase = 0x0000_1000
	DefaultDataBase = 0x0001_0000
)

// Program is the output of the assembler: encoded text, initialized data,
// and the symbol table.
type Program struct {
	TextBase uint32
	DataBase uint32
	Text     []isa.Word // encoded instructions
	Data     []isa.Word // initialized data words
	Symbols  map[string]uint32
	// Lines maps a text-word index to its 1-based source line, for
	// diagnostics and tracing.
	Lines []int
}

// SymbolAddr returns the address of a label, with ok reporting existence.
func (p *Program) SymbolAddr(name string) (uint32, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// MustSymbol returns the address of a label or panics; used by tests and
// benchmarks where a missing symbol is a programming error.
func (p *Program) MustSymbol(name string) uint32 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return a
}

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// item is an intermediate representation entry produced by pass one.
type item struct {
	line   int
	mnem   string
	args   []string
	addr   uint32 // assigned address
	isData bool
	data   []isa.Word // for .word
}

type assembler struct {
	textBase uint32
	dataBase uint32
	symbols  map[string]uint32
	items    []item
	dataLen  uint32 // bytes
	textLen  uint32 // bytes
}

// Assemble assembles source into a Program with default base addresses.
func Assemble(src string) (*Program, error) {
	return AssembleAt(src, DefaultTextBase, DefaultDataBase)
}

// AssembleAt assembles source with explicit text and data base addresses.
func AssembleAt(src string, textBase, dataBase uint32) (*Program, error) {
	a := &assembler{
		textBase: textBase,
		dataBase: dataBase,
		symbols:  make(map[string]uint32),
	}
	if err := a.passOne(src); err != nil {
		return nil, err
	}
	return a.passTwo()
}

// expand rewrites one pseudo-instruction into zero or more machine
// instructions (still in textual arg form); returns nil if mnem is not a
// pseudo-instruction.
func expand(mnem string, args []string) [][2]any {
	mk := func(m string, a ...string) [2]any { return [2]any{m, a} }
	switch mnem {
	case "move":
		if len(args) == 2 {
			return [][2]any{mk("or", args[0], args[1], "zero")}
		}
	case "not":
		if len(args) == 2 {
			return [][2]any{mk("nor", args[0], args[1], "zero")}
		}
	case "neg":
		if len(args) == 2 {
			return [][2]any{mk("sub", args[0], "zero", args[1])}
		}
	case "b":
		if len(args) == 1 {
			return [][2]any{mk("beq", "zero", "zero", args[0])}
		}
	case "beqz":
		if len(args) == 2 {
			return [][2]any{mk("beq", args[0], "zero", args[1])}
		}
	case "bnez":
		if len(args) == 2 {
			return [][2]any{mk("bne", args[0], "zero", args[1])}
		}
	case "blt":
		if len(args) == 3 {
			return [][2]any{
				mk("slt", "at", args[0], args[1]),
				mk("bne", "at", "zero", args[2]),
			}
		}
	case "bgt":
		if len(args) == 3 {
			return [][2]any{
				mk("slt", "at", args[1], args[0]),
				mk("bne", "at", "zero", args[2]),
			}
		}
	case "ble":
		if len(args) == 3 {
			return [][2]any{
				mk("slt", "at", args[1], args[0]),
				mk("beq", "at", "zero", args[2]),
			}
		}
	case "bge":
		if len(args) == 3 {
			return [][2]any{
				mk("slt", "at", args[0], args[1]),
				mk("beq", "at", "zero", args[2]),
			}
		}
	}
	return nil
}

// instWords returns how many machine words the (possibly pseudo)
// instruction occupies.
func instWords(mnem string, args []string) int {
	if exp := expand(mnem, args); exp != nil {
		return len(exp)
	}
	switch mnem {
	case "li", "la":
		// Worst case lui+ori; pass one reserves 2 words and pass two pads
		// with a nop when one suffices, keeping addresses stable.
		return 2
	}
	return 1
}

func (a *assembler) passOne(src string) error {
	sec := secText
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Peel off any leading labels ("name:").
		for {
			idx := strings.Index(line, ":")
			if idx < 0 || !isLabel(line[:idx]) {
				break
			}
			name := line[:idx]
			if _, dup := a.symbols[name]; dup {
				return &Error{lineNo + 1, fmt.Sprintf("duplicate label %q", name)}
			}
			if sec == secText {
				a.symbols[name] = a.textBase + a.textLen
			} else {
				a.symbols[name] = a.dataBase + a.dataLen
			}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		mnem, args := splitInst(line)
		switch mnem {
		case ".text":
			sec = secText
			continue
		case ".data":
			sec = secData
			continue
		case ".globl", ".global", ".ent", ".end":
			continue
		case ".equ", ".set":
			if len(args) != 2 {
				return &Error{lineNo + 1, ".equ expects name, value"}
			}
			name := args[0]
			if !isLabel(name) {
				return &Error{lineNo + 1, fmt.Sprintf("bad .equ name %q", name)}
			}
			if _, dup := a.symbols[name]; dup {
				return &Error{lineNo + 1, fmt.Sprintf("duplicate symbol %q", name)}
			}
			v, err := parseImm(args[1])
			if err != nil {
				// Allow aliasing a previously defined constant.
				if prev, ok := a.symbols[args[1]]; ok {
					a.symbols[name] = prev
					continue
				}
				return &Error{lineNo + 1, fmt.Sprintf("bad .equ value %q", args[1])}
			}
			a.symbols[name] = uint32(v)
			continue
		case ".align":
			n, err := parseImm(argOr(args, 0, "2"))
			if err != nil {
				return &Error{lineNo + 1, "bad .align operand"}
			}
			mask := uint32(1)<<uint(n) - 1
			if sec == secText {
				a.textLen = (a.textLen + mask) &^ mask
			} else {
				a.dataLen = (a.dataLen + mask) &^ mask
			}
			continue
		case ".word":
			if sec != secData {
				return &Error{lineNo + 1, ".word outside .data"}
			}
			it := item{line: lineNo + 1, mnem: mnem, args: args, isData: true,
				addr: a.dataBase + a.dataLen}
			a.dataLen += 4 * uint32(len(args))
			a.items = append(a.items, it)
			continue
		case ".space":
			if sec != secData {
				return &Error{lineNo + 1, ".space outside .data"}
			}
			n, err := parseImm(argOr(args, 0, ""))
			if err != nil || n < 0 {
				return &Error{lineNo + 1, "bad .space operand"}
			}
			a.dataLen += (uint32(n) + 3) &^ 3
			continue
		}
		if strings.HasPrefix(mnem, ".") {
			return &Error{lineNo + 1, fmt.Sprintf("unknown directive %q", mnem)}
		}
		if sec != secText {
			return &Error{lineNo + 1, "instruction outside .text"}
		}
		it := item{line: lineNo + 1, mnem: mnem, args: args,
			addr: a.textBase + a.textLen}
		a.textLen += 4 * uint32(instWords(mnem, args))
		a.items = append(a.items, it)
	}
	return nil
}

func (a *assembler) passTwo() (*Program, error) {
	p := &Program{
		TextBase: a.textBase,
		DataBase: a.dataBase,
		Text:     make([]isa.Word, a.textLen/4),
		Data:     make([]isa.Word, a.dataLen/4),
		Symbols:  a.symbols,
		Lines:    make([]int, a.textLen/4),
	}
	for i := range p.Text {
		p.Text[i] = isa.Encode(isa.Nop())
	}
	for _, it := range a.items {
		if it.isData {
			off := (it.addr - a.dataBase) / 4
			for i, arg := range it.args {
				v, err := a.value(arg)
				if err != nil {
					return nil, &Error{it.line, err.Error()}
				}
				p.Data[off+uint32(i)] = v
			}
			continue
		}
		insts, err := a.encodeInst(it)
		if err != nil {
			return nil, err
		}
		off := (it.addr - a.textBase) / 4
		for i, w := range insts {
			p.Text[off+uint32(i)] = w
			p.Lines[off+uint32(i)] = it.line
		}
	}
	return p, nil
}

// imm resolves an immediate operand: a numeric literal or a symbol
// (typically a .equ constant).
func (a *assembler) imm(s string) (int64, error) {
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), nil
	}
	return 0, fmt.Errorf("bad immediate or undefined symbol %q", s)
}

// value resolves a numeric literal or symbol to a 32-bit value.
func (a *assembler) value(s string) (uint32, error) {
	if v, err := parseImm(s); err == nil {
		return uint32(v), nil
	}
	if addr, ok := a.symbols[s]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("undefined symbol or bad literal %q", s)
}

func (a *assembler) encodeInst(it item) ([]isa.Word, error) {
	fail := func(format string, args ...any) ([]isa.Word, error) {
		return nil, &Error{it.line, fmt.Sprintf(format, args...)}
	}
	if exp := expand(it.mnem, it.args); exp != nil {
		var out []isa.Word
		for i, e := range exp {
			sub := item{line: it.line, mnem: e[0].(string), args: e[1].([]string),
				addr: it.addr + 4*uint32(i)}
			ws, err := a.encodeInst(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, ws...)
		}
		return out, nil
	}

	reg := func(s string) (int, error) {
		r, ok := isa.RegByName(s)
		if !ok {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return r, nil
	}
	need := func(n int) error {
		if len(it.args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", it.mnem, n, len(it.args))
		}
		return nil
	}
	enc := func(i isa.Inst) ([]isa.Word, error) { return []isa.Word{isa.Encode(i)}, nil }

	switch it.mnem {
	case "nop":
		return enc(isa.Nop())
	case "landmark":
		return enc(isa.Landmark())
	case "syscall":
		return enc(isa.Syscall())
	case "break":
		return enc(isa.Break())

	case "add", "sub", "and", "or", "xor", "nor", "slt", "sltu":
		if err := need(3); err != nil {
			return fail("%v", err)
		}
		rd, err1 := reg(it.args[0])
		rs, err2 := reg(it.args[1])
		rt, err3 := reg(it.args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return fail("%v", err)
		}
		return enc(isa.R(rFunct(it.mnem), rd, rs, rt))

	case "sll", "srl", "sra":
		if err := need(3); err != nil {
			return fail("%v", err)
		}
		rd, err1 := reg(it.args[0])
		rt, err2 := reg(it.args[1])
		sh, err3 := parseImm(it.args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return fail("%v", err)
		}
		if sh < 0 || sh > 31 {
			return fail("shift amount %d out of range", sh)
		}
		return enc(isa.Shift(rFunct(it.mnem), rd, rt, int(sh)))

	case "jr":
		if err := need(1); err != nil {
			return fail("%v", err)
		}
		rs, err := reg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		return enc(isa.Jr(rs))

	case "jalr":
		switch len(it.args) {
		case 1:
			rs, err := reg(it.args[0])
			if err != nil {
				return fail("%v", err)
			}
			return enc(isa.Inst{Op: isa.OpSpecial, Funct: isa.FnJALR, Rd: isa.RegRA, Rs: rs})
		case 2:
			rd, err1 := reg(it.args[0])
			rs, err2 := reg(it.args[1])
			if err := firstErr(err1, err2); err != nil {
				return fail("%v", err)
			}
			return enc(isa.Inst{Op: isa.OpSpecial, Funct: isa.FnJALR, Rd: rd, Rs: rs})
		}
		return fail("jalr expects 1 or 2 operands")

	case "addi", "slti", "sltiu":
		if err := need(3); err != nil {
			return fail("%v", err)
		}
		rt, err1 := reg(it.args[0])
		rs, err2 := reg(it.args[1])
		imm, err3 := a.imm(it.args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return fail("%v", err)
		}
		if imm < -32768 || imm > 32767 {
			return fail("immediate %d out of 16-bit signed range", imm)
		}
		return enc(isa.I(iOp(it.mnem), rt, rs, int32(imm)))

	case "andi", "ori", "xori":
		if err := need(3); err != nil {
			return fail("%v", err)
		}
		rt, err1 := reg(it.args[0])
		rs, err2 := reg(it.args[1])
		imm, err3 := a.imm(it.args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return fail("%v", err)
		}
		if imm < 0 || imm > 0xFFFF {
			return fail("immediate %d out of 16-bit unsigned range", imm)
		}
		return enc(isa.U(iOp(it.mnem), rt, rs, uint32(imm)))

	case "lui":
		if err := need(2); err != nil {
			return fail("%v", err)
		}
		rt, err1 := reg(it.args[0])
		imm, err2 := a.imm(it.args[1])
		if err := firstErr(err1, err2); err != nil {
			return fail("%v", err)
		}
		if imm < 0 || imm > 0xFFFF {
			return fail("lui immediate %d out of range", imm)
		}
		return enc(isa.Lui(rt, uint32(imm)))

	case "lw", "sw", "tas", "xchg", "faa", "ll", "sc":
		if err := need(2); err != nil {
			return fail("%v", err)
		}
		rt, err1 := reg(it.args[0])
		off, rs, err2 := parseMem(it.args[1])
		if err := firstErr(err1, err2); err != nil {
			return fail("%v", err)
		}
		return enc(isa.I(iOp(it.mnem), rt, rs, off))

	case "lockb":
		return enc(isa.Inst{Op: isa.OpLOCKB})

	case "flush":
		if err := need(1); err != nil {
			return fail("%v", err)
		}
		off, rs, err := parseMem(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		return enc(isa.Flush(rs, off))

	case "fence":
		return enc(isa.Fence())

	case "beq", "bne":
		if err := need(3); err != nil {
			return fail("%v", err)
		}
		rs, err1 := reg(it.args[0])
		rt, err2 := reg(it.args[1])
		if err := firstErr(err1, err2); err != nil {
			return fail("%v", err)
		}
		off, err := a.branchOffset(it.args[2], it.addr)
		if err != nil {
			return fail("%v", err)
		}
		return enc(isa.I(iOp(it.mnem), rt, rs, off))

	case "blez", "bgtz":
		if err := need(2); err != nil {
			return fail("%v", err)
		}
		rs, err1 := reg(it.args[0])
		if err1 != nil {
			return fail("%v", err1)
		}
		off, err := a.branchOffset(it.args[1], it.addr)
		if err != nil {
			return fail("%v", err)
		}
		return enc(isa.I(iOp(it.mnem), 0, rs, off))

	case "j", "jal":
		if err := need(1); err != nil {
			return fail("%v", err)
		}
		target, err := a.value(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		op := uint32(isa.OpJ)
		if it.mnem == "jal" {
			op = isa.OpJAL
		}
		return enc(isa.Jump(op, target))

	case "li", "la":
		if err := need(2); err != nil {
			return fail("%v", err)
		}
		rt, err1 := reg(it.args[0])
		v, err2 := a.value(it.args[1])
		if err := firstErr(err1, err2); err != nil {
			return fail("%v", err)
		}
		hi, lo := v>>16, v&0xFFFF
		// Always two words so that pass-one layout holds; a single-word
		// form is padded with a trailing nop.
		if hi == 0 {
			return []isa.Word{
				isa.Encode(isa.Ori(rt, isa.RegZero, lo)),
				isa.Encode(isa.Nop()),
			}, nil
		}
		return []isa.Word{
			isa.Encode(isa.Lui(rt, hi)),
			isa.Encode(isa.Ori(rt, rt, lo)),
		}, nil
	}
	return fail("unknown mnemonic %q", it.mnem)
}

// branchOffset computes the instruction-relative branch offset (in words,
// from the instruction following the branch) to a label or literal.
func (a *assembler) branchOffset(arg string, pc uint32) (int32, error) {
	if target, ok := a.symbols[arg]; ok {
		diff := int64(target) - int64(pc) - 4
		if diff%4 != 0 {
			return 0, fmt.Errorf("misaligned branch target %q", arg)
		}
		off := diff / 4
		if off < -32768 || off > 32767 {
			return 0, fmt.Errorf("branch to %q out of range", arg)
		}
		return int32(off), nil
	}
	v, err := parseImm(arg)
	if err != nil {
		return 0, fmt.Errorf("undefined branch target %q", arg)
	}
	return int32(v), nil
}

func rFunct(m string) uint32 {
	switch m {
	case "add":
		return isa.FnADD
	case "sub":
		return isa.FnSUB
	case "and":
		return isa.FnAND
	case "or":
		return isa.FnOR
	case "xor":
		return isa.FnXOR
	case "nor":
		return isa.FnNOR
	case "slt":
		return isa.FnSLT
	case "sltu":
		return isa.FnSLTU
	case "sll":
		return isa.FnSLL
	case "srl":
		return isa.FnSRL
	case "sra":
		return isa.FnSRA
	}
	panic("asm: no funct for " + m)
}

func iOp(m string) uint32 {
	switch m {
	case "addi":
		return isa.OpADDI
	case "slti":
		return isa.OpSLTI
	case "sltiu":
		return isa.OpSLTIU
	case "andi":
		return isa.OpANDI
	case "ori":
		return isa.OpORI
	case "xori":
		return isa.OpXORI
	case "lw":
		return isa.OpLW
	case "sw":
		return isa.OpSW
	case "tas":
		return isa.OpTAS
	case "xchg":
		return isa.OpXCHG
	case "faa":
		return isa.OpFAA
	case "ll":
		return isa.OpLL
	case "sc":
		return isa.OpSC
	case "beq":
		return isa.OpBEQ
	case "bne":
		return isa.OpBNE
	case "blez":
		return isa.OpBLEZ
	case "bgtz":
		return isa.OpBGTZ
	}
	panic("asm: no opcode for " + m)
}

// parseMem parses "off(reg)" or "(reg)" or "symbol-less off(reg)".
func parseMem(s string) (int32, int, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	regStr := strings.TrimSpace(s[open+1 : len(s)-1])
	var off int64
	if offStr != "" {
		v, err := parseImm(offStr)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = v
	}
	if off < -32768 || off > 32767 {
		return 0, 0, fmt.Errorf("offset %d out of range", off)
	}
	r, ok := isa.RegByName(regStr)
	if !ok {
		return 0, 0, fmt.Errorf("bad base register in %q", s)
	}
	return int32(off), r, nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty immediate")
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func stripComment(s string) string {
	for i, c := range s {
		if c == '#' || c == ';' {
			return s[:i]
		}
	}
	return s
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitInst splits "mnem a, b, c" into mnemonic and comma-separated args.
func splitInst(line string) (string, []string) {
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(strings.TrimSpace(fields[0]))
	if len(fields) == 1 {
		return mnem, nil
	}
	rest := strings.TrimSpace(fields[1])
	if rest == "" {
		return mnem, nil
	}
	parts := strings.Split(rest, ",")
	args := make([]string, 0, len(parts))
	for _, p := range parts {
		args = append(args, strings.TrimSpace(p))
	}
	return mnem, args
}

func argOr(args []string, i int, def string) string {
	if i < len(args) {
		return args[i]
	}
	return def
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Disassemble renders the program text as readable assembly, one line per
// word, prefixed with addresses.
func Disassemble(p *Program) string {
	var b strings.Builder
	for i, w := range p.Text {
		addr := p.TextBase + uint32(i*4)
		for name, a := range p.Symbols {
			if a == addr {
				fmt.Fprintf(&b, "%s:\n", name)
			}
		}
		fmt.Fprintf(&b, "  %08x:  %08x  %s\n", addr, w, isa.Decode(w))
	}
	return b.String()
}
