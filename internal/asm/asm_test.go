package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestEmptyProgram(t *testing.T) {
	p := mustAssemble(t, "")
	if len(p.Text) != 0 || len(p.Data) != 0 {
		t.Errorf("empty program has text=%d data=%d", len(p.Text), len(p.Data))
	}
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
	start:
		lw   v0, 0(a0)
		ori  t0, zero, 1
		sw   t0, 0(a0)
		jr   ra
	`)
	if len(p.Text) != 4 {
		t.Fatalf("text len = %d, want 4", len(p.Text))
	}
	want := []isa.Inst{
		isa.Lw(isa.RegV0, isa.RegA0, 0),
		isa.Ori(isa.RegT0, isa.RegZero, 1),
		isa.Sw(isa.RegT0, isa.RegA0, 0),
		isa.Jr(isa.RegRA),
	}
	for i, w := range want {
		if got := isa.Decode(p.Text[i]); got != w {
			t.Errorf("inst %d: got %v want %v", i, got, w)
		}
	}
	if p.MustSymbol("start") != p.TextBase {
		t.Errorf("start = %#x, want %#x", p.MustSymbol("start"), p.TextBase)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	loop:
		addi t0, t0, 1
		bne  t0, t1, loop
		jr   ra
	`)
	inst := isa.Decode(p.Text[1])
	if inst.Op != isa.OpBNE {
		t.Fatalf("expected bne, got %v", inst)
	}
	// Branch offset is relative to the instruction after the branch:
	// target(loop)=0, branch at 1, so offset = 0 - 2 = -2.
	if inst.Imm != -2 {
		t.Errorf("branch offset = %d, want -2", inst.Imm)
	}
}

func TestForwardBranch(t *testing.T) {
	p := mustAssemble(t, `
		beq  v0, zero, done
		addi t0, t0, 1
	done:
		jr ra
	`)
	inst := isa.Decode(p.Text[0])
	if inst.Imm != 1 {
		t.Errorf("forward branch offset = %d, want 1", inst.Imm)
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	p := mustAssemble(t, `
		li t0, 7
		li t1, 0x80000000
	`)
	if len(p.Text) != 4 {
		t.Fatalf("text len = %d, want 4 (2 words per li)", len(p.Text))
	}
	i0 := isa.Decode(p.Text[0])
	if i0.Op != isa.OpORI || i0.Uimm != 7 {
		t.Errorf("li small word0 = %v", i0)
	}
	if !isa.Decode(p.Text[1]).IsNop() {
		t.Errorf("li small word1 should be nop pad, got %v", isa.Decode(p.Text[1]))
	}
	i2 := isa.Decode(p.Text[2])
	i3 := isa.Decode(p.Text[3])
	if i2.Op != isa.OpLUI || i2.Uimm != 0x8000 {
		t.Errorf("li large word0 = %v", i2)
	}
	if i3.Op != isa.OpORI || i3.Uimm != 0 {
		t.Errorf("li large word1 = %v", i3)
	}
}

func TestLaLoadsSymbolAddress(t *testing.T) {
	p := mustAssemble(t, `
		la a0, lock
		.data
	lock: .word 0
	`)
	// lock is the first data word.
	i0 := isa.Decode(p.Text[0])
	i1 := isa.Decode(p.Text[1])
	addr := p.MustSymbol("lock")
	if addr != p.DataBase {
		t.Fatalf("lock addr = %#x, want %#x", addr, p.DataBase)
	}
	got := uint32(0)
	if i0.Op == isa.OpLUI {
		got = i0.Uimm<<16 | i1.Uimm
	} else {
		got = i0.Uimm
	}
	if got != addr {
		t.Errorf("la materialized %#x, want %#x", got, addr)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.data
	a:	.word 1, 2, 3
	b:	.space 8
	c:	.word 0xdeadbeef
	`)
	if len(p.Data) != 6 {
		t.Fatalf("data len = %d, want 6", len(p.Data))
	}
	if p.Data[0] != 1 || p.Data[1] != 2 || p.Data[2] != 3 {
		t.Errorf("data a = %v", p.Data[:3])
	}
	if p.Data[5] != 0xdeadbeef {
		t.Errorf("data c = %#x", p.Data[5])
	}
	if p.MustSymbol("b") != p.DataBase+12 {
		t.Errorf("b addr = %#x", p.MustSymbol("b"))
	}
	if p.MustSymbol("c") != p.DataBase+20 {
		t.Errorf("c addr = %#x", p.MustSymbol("c"))
	}
}

func TestWordWithSymbolValue(t *testing.T) {
	p := mustAssemble(t, `
		jr ra
	fn:	jr ra
		.data
	ptr: .word fn
	`)
	if p.Data[0] != p.MustSymbol("fn") {
		t.Errorf("ptr = %#x, want %#x", p.Data[0], p.MustSymbol("fn"))
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		move t0, t1
		b    next
	next:
		beqz v0, next
		bnez v0, next
		blt  t0, t1, next
		nop
		landmark
	`)
	if got := isa.Decode(p.Text[0]); got != isa.Move(isa.RegT0, isa.RegT1) {
		t.Errorf("move = %v", got)
	}
	if got := isa.Decode(p.Text[1]); got.Op != isa.OpBEQ || got.Rs != 0 || got.Rt != 0 {
		t.Errorf("b = %v", got)
	}
	// blt expands to slt+bne.
	slt := isa.Decode(p.Text[4])
	if slt.Op != isa.OpSpecial || slt.Funct != isa.FnSLT || slt.Rd != isa.RegAT {
		t.Errorf("blt word0 = %v", slt)
	}
	if !isa.Decode(p.Text[len(p.Text)-1]).IsLandmark() {
		t.Error("landmark not assembled")
	}
}

func TestJumpAndCalls(t *testing.T) {
	p := mustAssemble(t, `
	main:
		jal fn
		break
	fn:
		jr ra
	`)
	jal := isa.Decode(p.Text[0])
	if jal.Op != isa.OpJAL || jal.Targ<<2 != p.MustSymbol("fn") {
		t.Errorf("jal = %v (target %#x, want %#x)", jal, jal.Targ<<2, p.MustSymbol("fn"))
	}
}

func TestSyscallAndTas(t *testing.T) {
	p := mustAssemble(t, `
		syscall
		tas v0, 0(a0)
		xchg t0, 4(a0)
		faa t1, 0(a1)
		lockb
	`)
	if isa.Decode(p.Text[0]).Funct != isa.FnSYSCALL {
		t.Error("syscall not assembled")
	}
	if isa.Decode(p.Text[1]).Op != isa.OpTAS {
		t.Error("tas not assembled")
	}
	if isa.Decode(p.Text[2]).Op != isa.OpXCHG {
		t.Error("xchg not assembled")
	}
	if isa.Decode(p.Text[3]).Op != isa.OpFAA {
		t.Error("faa not assembled")
	}
	if isa.Decode(p.Text[4]).Op != isa.OpLOCKB {
		t.Error("lockb not assembled")
	}
}

func TestNegativeOffsets(t *testing.T) {
	p := mustAssemble(t, `lw v0, -8(sp)`)
	inst := isa.Decode(p.Text[0])
	if inst.Imm != -8 || inst.Rs != isa.RegSP {
		t.Errorf("lw = %v", inst)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "frobnicate t0, t1", "unknown mnemonic"},
		{"bad register", "add t0, t9x, t1", "bad register"},
		{"duplicate label", "a:\nnop\na:\nnop", "duplicate label"},
		{"undefined branch", "beq t0, t1, nowhere", "undefined branch target"},
		{"word in text", ".text\n.word 3", ".word outside .data"},
		{"imm range", "addi t0, t0, 99999", "out of 16-bit signed range"},
		{"bad mem operand", "lw t0, t1", "bad memory operand"},
		{"unknown directive", ".bogus", "unknown directive"},
		{"undefined symbol in word", ".data\nx: .word nosuch", "undefined symbol"},
		{"instruction in data", ".data\nadd t0, t1, t2", "instruction outside .text"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus t0")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p := mustAssemble(t, "a: b: nop")
	if p.MustSymbol("a") != p.MustSymbol("b") {
		t.Error("stacked labels differ")
	}
}

func TestCommentsBothStyles(t *testing.T) {
	p := mustAssemble(t, `
		nop  # hash comment
		nop  ; semicolon comment
	`)
	if len(p.Text) != 2 {
		t.Errorf("text len = %d, want 2", len(p.Text))
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	TestAndSet:
		lw   v0, 0(a0)
		ori  t0, zero, 1
		jr   ra
		sw   t0, 0(a0)
	`
	p := mustAssemble(t, src)
	dis := Disassemble(p)
	for _, want := range []string{"TestAndSet:", "lw v0, 0(a0)", "jr ra", "sw t0, 0(a0)"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAssembleAtCustomBases(t *testing.T) {
	p, err := AssembleAt("nop\n.data\nx: .word 1", 0x4000, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBase != 0x4000 || p.MustSymbol("x") != 0x8000 {
		t.Errorf("bases: text=%#x x=%#x", p.TextBase, p.MustSymbol("x"))
	}
}

func TestAlignDirective(t *testing.T) {
	p := mustAssemble(t, `
		.data
	a:	.word 1
		.align 3
	b:	.word 2
	`)
	if p.MustSymbol("b")%8 != 0 {
		t.Errorf("b not 8-aligned: %#x", p.MustSymbol("b"))
	}
}

func TestSymbolAddrMissing(t *testing.T) {
	p := mustAssemble(t, "nop")
	if _, ok := p.SymbolAddr("nope"); ok {
		t.Error("SymbolAddr returned ok for missing symbol")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol did not panic")
		}
	}()
	p.MustSymbol("nope")
}

// The paper's Figure 4 sequence must assemble into exactly the expected
// machine words: it is the Mach registered Test-And-Set.
func TestPaperFigure4(t *testing.T) {
	// Without branch delay slots the store precedes the return.
	p := mustAssemble(t, `
	TestAndSet:
		lw   v0, 0(a0)
		ori  t0, zero, 1
		sw   t0, 0(a0)
		jr   ra
	`)
	if n := len(p.Text); n != 4 {
		t.Fatalf("figure 4 sequence is %d words, want 4", n)
	}
}

func TestEquConstants(t *testing.T) {
	p := mustAssemble(t, `
	.equ SYS_EXIT, 0
	.equ SYS_YIELD, 1
	.equ MAGIC, 0x1234
	.equ ALIAS, MAGIC
main:
	li   v0, SYS_YIELD
	addi t0, zero, MAGIC
	ori  t1, zero, ALIAS
	li   v0, SYS_EXIT
	syscall
	`)
	i0 := isa.Decode(p.Text[0])
	if i0.Uimm != 1 {
		t.Errorf("li SYS_YIELD = %v", i0)
	}
	i2 := isa.Decode(p.Text[2])
	if i2.Imm != 0x1234 {
		t.Errorf("addi MAGIC = %v", i2)
	}
	i3 := isa.Decode(p.Text[3])
	if i3.Uimm != 0x1234 {
		t.Errorf("ori ALIAS = %v", i3)
	}
	if p.MustSymbol("MAGIC") != 0x1234 {
		t.Errorf("MAGIC symbol = %#x", p.MustSymbol("MAGIC"))
	}
}

func TestEquErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"arity", ".equ X", ".equ expects"},
		{"bad name", ".equ 9x, 1", "bad .equ name"},
		{"dup", ".equ X, 1\n.equ X, 2", "duplicate symbol"},
		{"bad value", ".equ X, nosuch", "bad .equ value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestEquInWordDirective(t *testing.T) {
	p := mustAssemble(t, ".equ N, 42\n.data\nx: .word N")
	if p.Data[0] != 42 {
		t.Errorf("data = %d", p.Data[0])
	}
}

// Property: disassembling an assembled program and reassembling the
// disassembly reproduces the exact machine words. Exercised over a family
// of generated programs covering every instruction form.
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	srcs := []string{
		`
	.equ K, 7
main:
	li   t0, 0x12345
	la   a0, dat
	lw   v0, 0(a0)
	sw   v0, 4(a0)
	addi t1, t0, -5
	andi t2, t0, 0xff
	ori  t3, t0, K
	xori t4, t0, 1
	slti t5, t0, 100
	sltiu t6, t0, 100
	lui  t7, 0x8000
	add  s0, t0, t1
	sub  s1, t0, t1
	and  s2, t0, t1
	or   s3, t0, t1
	xor  s4, t0, t1
	nor  s5, t0, t1
	slt  s6, t0, t1
	sltu s7, t0, t1
	sll  t8, t0, 3
	srl  t9, t0, 3
	sra  t8, t0, 3
loop:
	beq  t0, t1, loop
	bne  t0, t1, loop
	blez t0, loop
	bgtz t0, loop
	jal  fn
	j    done
fn:
	landmark
	nop
	jalr t0
	jr   ra
done:
	syscall
	break
	.data
dat:	.word 1, 2
`,
	}
	for _, src := range srcs {
		p1 := mustAssemble(t, src)
		dis := Disassemble(p1)
		// The disassembly uses absolute syntax the assembler does not
		// reparse directly (addresses as operands), so instead verify the
		// decode of every word is stable: decode -> encode == identity.
		for i, w := range p1.Text {
			if got := isa.Encode(isa.Decode(w)); got != w {
				t.Errorf("word %d (%s): %#x -> %#x", i, isa.Decode(w), w, got)
			}
		}
		if len(dis) == 0 {
			t.Error("empty disassembly")
		}
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"shift range", "sll t0, t1, 32", "shift amount"},
		{"jr arity", "jr t0, t1", "expects 1 operands"},
		{"jalr arity", "jalr t0, t1, t2", "jalr expects"},
		{"andi range", "andi t0, t1, -1", "out of 16-bit unsigned"},
		{"lui range", "lui t0, 0x10000", "lui immediate"},
		{"bad space", ".data\n.space -4", "bad .space"},
		{"bad align", ".align x", "bad .align"},
		{"li arity", "li t0", "expects 2 operands"},
		{"mem offset range", "lw t0, 70000(a0)", "offset"},
		{"bad offset", "lw t0, q(a0)", "bad offset"},
		{"bad base", "lw t0, 0(zz)", "bad base register"},
		{"add arity", "add t0, t1", "expects 3 operands"},
		{"j undefined", "j nowhere", "undefined symbol"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestJalrTwoOperand(t *testing.T) {
	p := mustAssemble(t, "jalr s0, t3")
	in := isa.Decode(p.Text[0])
	if in.Funct != isa.FnJALR || in.Rd != isa.RegS0 || in.Rs != isa.RegT3 {
		t.Errorf("jalr = %+v", in)
	}
}

func TestBranchToNumericOffset(t *testing.T) {
	p := mustAssemble(t, "beq t0, t1, -4")
	if isa.Decode(p.Text[0]).Imm != -4 {
		t.Error("numeric branch offset not honored")
	}
}

func TestBlezBgtzWithLabels(t *testing.T) {
	p := mustAssemble(t, "top:\n\tblez t0, top\n\tbgtz t0, top")
	if isa.Decode(p.Text[0]).Op != isa.OpBLEZ || isa.Decode(p.Text[1]).Op != isa.OpBGTZ {
		t.Error("blez/bgtz not assembled")
	}
}

func TestAlignInText(t *testing.T) {
	p := mustAssemble(t, "nop\n.align 3\nx: nop")
	if p.MustSymbol("x")%8 != 0 {
		t.Errorf("x not aligned: %#x", p.MustSymbol("x"))
	}
}

func TestLaWithNumericLiteral(t *testing.T) {
	p := mustAssemble(t, "la t0, 0x12340")
	i0 := isa.Decode(p.Text[0])
	i1 := isa.Decode(p.Text[1])
	if i0.Op != isa.OpLUI || i0.Uimm != 1 || i1.Uimm != 0x2340 {
		t.Errorf("la literal = %v / %v", i0, i1)
	}
}

func TestPseudoNotNeg(t *testing.T) {
	p := mustAssemble(t, "not t0, t1\nneg t2, t3")
	if isa.Decode(p.Text[0]).Funct != isa.FnNOR {
		t.Error("not != nor")
	}
	sub := isa.Decode(p.Text[1])
	if sub.Funct != isa.FnSUB || sub.Rs != isa.RegZero {
		t.Error("neg != sub from zero")
	}
}

func TestBgtBleBge(t *testing.T) {
	p := mustAssemble(t, "x:\n\tbgt t0, t1, x\n\tble t0, t1, x\n\tbge t0, t1, x")
	if len(p.Text) != 6 {
		t.Fatalf("len = %d, want 6 (2 words each)", len(p.Text))
	}
	for i := 0; i < 6; i += 2 {
		if isa.Decode(p.Text[i]).Funct != isa.FnSLT {
			t.Errorf("word %d not slt", i)
		}
	}
}
