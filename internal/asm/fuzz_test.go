package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// FuzzAssemble: the assembler must never panic — any input yields either a
// program or a positioned error. The seed corpus covers every syntactic
// construct; `go test` runs the seeds, `go test -fuzz=FuzzAssemble`
// explores further.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"nop",
		"main:\n\tlw v0, 0(a0)\n\tsw v0, 4(a0)\n\tjr ra",
		".data\nx: .word 1, 2, 3\n.space 8",
		".equ K, 5\nli t0, K",
		"label with spaces: nop",
		"\tadd t0, t1",
		"beq t0, t1, nowhere",
		"lw t0, 99999(a0)",
		".align 31",
		"li t0, 0xFFFFFFFF",
		"x::\nnop",
		"# only a comment",
		"\x00\x01\x02",
		"jal 0x1000\nsyscall\nbreak\nlandmark\nlockb",
		"tas v0, 0(a0)\nxchg t0, 0(a0)\nfaa t1, 0(a1)",
		"flush 0(a0)\nfence",
		"flush -64(s1)\nsw t0, 0(s1)\nflush 0(s1)\nfence\nfence",
		strings.Repeat("nop\n", 100),
		".word 5",
		"addi t0, t0, -32768\naddi t0, t0, 32767",
		// The MCS queue-lock idioms (internal/qlock guest code): the
		// tail swap, the handoff publication, and the local spin.
		"macq:\n\tmove t5, s1\n\txchg t5, 0(s4)\n\tsw t5, 4(s1)\n\tbeq t5, zero, mgot\n\tsw s1, 0(t5)\nmspin:\n\tlw t0, 8(s1)\n\tbne t0, zero, mspin\nmgot:\n\tnop",
		// The recoverable variant's owner-word claim: epoch<<16|gtid+1
		// built from shifts, decided by ll/sc.
		"rclaim:\n\tll t2, 0(s5)\n\tsrl t3, t2, 16\n\taddi t3, t3, 1\n\tsll t3, t3, 16\n\tor t3, t3, s6\n\tsc t3, 0(s5)\n\tbeq t3, zero, rclaim",
		// Release-side handoff handshake: state CAS 1 -> 3 with faa as
		// the fetch, then the successor store.
		"\tfaa t6, 12(t5)\n\tlw t7, 0(t5)\n\tsw zero, 4(s1)\n\tsw zero, 12(s1)",
		// Line-strided qnode data, the shape every queue variant lays out.
		".data\nqtail: .word 0\n.space 60\nqnodes: .space 256\n.align 6\nlats: .space 128",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
		if err != nil && p != nil {
			t.Fatal("program and error both returned")
		}
		if p != nil {
			// Anything that assembles must disassemble without panicking.
			_ = Disassemble(p)
		}
	})
}

// FuzzAsm: assembler/disassembler round trip at the word level. Any word
// whose decoded form prints as real syntax (no "?" placeholders) must
// reassemble, and the assembled word must print back to the same text —
// a fixpoint that pins String() and the assembler's operand grammar to
// each other. Bit-for-bit equality is deliberately not required: String()
// rightly omits don't-care fields (e.g. junk shamt bits on a non-shift
// ALU op), so such words converge to the canonical encoding instead.
func FuzzAsm(f *testing.F) {
	f.Add(uint32(0)) // nop
	f.Add(isa.Encode(isa.Lw(isa.RegV0, isa.RegS1, -4)))
	f.Add(isa.Encode(isa.Sw(isa.RegT0, isa.RegS1, 0)))
	f.Add(isa.Encode(isa.Bne(isa.RegV0, isa.RegZero, 3)))
	f.Add(isa.Encode(isa.Ori(isa.RegT0, isa.RegZero, 1)))
	f.Add(isa.Encode(isa.Landmark()))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpJ, Targ: 0x400}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpBEQ, Rs: 8, Rt: 9, Imm: -2}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpLUI, Rt: 8, Uimm: 0x1234}))
	f.Add(isa.Encode(isa.Inst{Op: isa.OpSpecial, Funct: isa.FnJALR, Rd: 31, Rs: 8}))
	f.Add(isa.Encode(isa.Flush(isa.RegS1, -64)))
	f.Add(isa.Encode(isa.Fence()))
	f.Fuzz(func(t *testing.T, w uint32) {
		inst := isa.Decode(w)
		text := inst.String()
		if strings.Contains(text, "?") {
			return // not an encodable instruction; String says so
		}
		p, err := Assemble("\t" + text + "\n")
		if err != nil {
			t.Fatalf("%#x prints as %q which does not assemble: %v", w, text, err)
		}
		if len(p.Text) != 1 {
			t.Fatalf("%q assembled to %d words", text, len(p.Text))
		}
		if back := isa.Decode(p.Text[0]).String(); back != text {
			t.Fatalf("%#x prints as %q but its assembly %#x prints as %q",
				w, text, p.Text[0], back)
		}
	})
}

// FuzzDecode: decoding any 32-bit word must not panic, and defined opcodes
// must round trip through Encode.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(isa.Encode(isa.Landmark()))
	f.Add(isa.Encode(isa.Lw(2, 4, -4)))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		inst := isa.Decode(w)
		_ = inst.String()
		_ = isa.Mnemonic(inst)
		_ = isa.ClassOf(inst)
		switch inst.Op {
		case isa.OpSpecial, isa.OpJ, isa.OpJAL, isa.OpBEQ, isa.OpBNE,
			isa.OpBLEZ, isa.OpBGTZ, isa.OpADDI, isa.OpSLTI, isa.OpSLTIU,
			isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpLUI, isa.OpLW,
			isa.OpSW, isa.OpTAS, isa.OpXCHG, isa.OpFAA, isa.OpLOCKB,
			isa.OpFLUSH, isa.OpFENCE:
			if isa.Encode(inst) != w {
				t.Fatalf("round trip failed for %#x (%v)", w, inst)
			}
		}
	})
}
