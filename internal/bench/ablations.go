package bench

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/guest"
	"repro/internal/vmach/kernel"
)

// WBufRow is one line of the §5.1 write-buffer ablation: the cost of one
// critical section (enter/increment/leave) for a one-store mechanism (RAS)
// and a many-store mechanism (Lamport reservation) under different
// write-buffer configurations.
type WBufRow struct {
	Memory      string
	RASMicros   float64
	LamportAMic float64
	Ratio       float64 // LamportA / RAS
}

// TableWriteBuffer reproduces §5.1's design remark: "a scheme requiring
// several writes will not work well on a memory system with a
// write-through cache and a shallow write-buffer". The reservation
// protocol issues five stores per critical section against RAS's two, so
// shallowing the write buffer hurts it disproportionately.
func TableWriteBuffer(iters int) ([]WBufRow, error) {
	mems := []struct {
		name  string
		depth int
		drain int
	}{
		{"no write buffer", 0, 0},
		{"deep buffer (8 x 6cy)", 8, 6},
		{"shallow buffer (2 x 12cy)", 2, 12},
	}
	// 40 ALU instructions of application work between critical sections:
	// enough for any buffer to drain between iterations, so the cost
	// difference isolates the stores burst inside the mechanism itself.
	const pad = 40
	var rows []WBufRow
	for _, mem := range mems {
		prof := arch.R3000()
		prof.StoreCycles = 1 // cost moves into the buffer model
		if mem.depth > 0 {
			prof = prof.WithWriteBuffer(mem.depth, mem.drain)
		}
		per := func(m guest.Mechanism) (float64, error) {
			strat, at := strategyFor(m)
			k, err := runGuest(prof, strat, at, noPreempt,
				guest.WriteBufferProbeProgram(m, iters, pad))
			if err != nil {
				return 0, err
			}
			return prof.Micros(k.M.Stats.Cycles) / float64(iters), nil
		}
		ras, err := per(guest.MechDesignated)
		if err != nil {
			return nil, err
		}
		lam, err := per(guest.MechLamportA)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WBufRow{mem.name, ras, lam, lam / ras})
	}
	return rows, nil
}

// FormatWriteBuffer renders the write-buffer ablation.
func FormatWriteBuffer(rows []WBufRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %14s %8s\n", "Memory system", "RAS (us)", "Lamport-a (us)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10.2f %14.2f %8.2f\n", r.Memory, r.RASMicros, r.LamportAMic, r.Ratio)
	}
	return b.String()
}

// RangesRow is one line of the multi-range registration ablation: the same
// contended-counter workload, under a registration table of growing size.
type RangesRow struct {
	Ranges      int
	Micros      float64
	CheckCycles int // kernel cycles per suspension check at this table size
	Restarts    uint64
}

// TableRegistrationRanges quantifies why Mach restricted each address
// space to a single registered sequence (§3.1: "This restriction
// simplifies the kernel's task"): with a table of N ranges the linear
// suspension-time check costs grow with N and the whole workload slows
// down, while the designated-sequence check stays O(1) regardless of how
// many sequences a program inlines.
func TableRegistrationRanges(workers, iters int) ([]RangesRow, error) {
	prof := arch.R3000()
	var rows []RangesRow
	for _, n := range []int{1, 8, 64, 256} {
		strat := kernel.NewMultiRegistration()
		// Decoy sequences registered by "other libraries" in the address
		// space; the workload's own sequence arrives via SysRasRegister.
		for i := 0; i < n-1; i++ {
			strat.AddRange(uint32(0x0010_0000+64*i), 12)
		}
		prog := guest.Assemble(guest.MutexCounterProgram(guest.MechRegistered, workers, iters))
		k := kernel.New(kernel.Config{Profile: prof, Strategy: strat,
			CheckAt: kernel.CheckAtSuspend, Quantum: 61})
		k.Load(prog)
		k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
		if err := k.Run(); err != nil {
			return nil, err
		}
		if got := k.M.Mem.Peek(prog.MustSymbol("counter")); got != uint32(workers*iters) {
			return nil, fmt.Errorf("ranges=%d: counter %d, want %d", n, got, workers*iters)
		}
		rows = append(rows, RangesRow{
			Ranges:      n,
			Micros:      k.Micros(),
			CheckCycles: strat.CheckCost(prof),
			Restarts:    k.Stats.Restarts,
		})
	}
	return rows, nil
}

// FormatRanges renders the registration-table ablation.
func FormatRanges(rows []RangesRow, designatedCost int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %16s %10s\n", "Registered ranges", "Time (us)", "Check (cycles)", "Restarts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20d %12.1f %16d %10d\n", r.Ranges, r.Micros, r.CheckCycles, r.Restarts)
	}
	fmt.Fprintf(&b, "%-20s %12s %16d\n", "designated (any N)", "-", designatedCost)
	return b.String()
}
