package bench

import (
	"testing"

	"repro/internal/arch"
)

// §5.1's write-buffer claim: the many-store reservation protocol degrades
// more than the one-store RAS when the write buffer shallows.
func TestTableWriteBufferShape(t *testing.T) {
	rows, err := TableWriteBuffer(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, deep, shallow := rows[0], rows[1], rows[2]
	if shallow.Ratio <= none.Ratio {
		t.Errorf("shallow-buffer ratio %.2f not > unbuffered ratio %.2f",
			shallow.Ratio, none.Ratio)
	}
	if shallow.LamportAMic <= deep.LamportAMic {
		t.Errorf("lamport under shallow buffer %.2f not > deep %.2f",
			shallow.LamportAMic, deep.LamportAMic)
	}
	// RAS should be nearly insensitive to the buffer depth (two stores
	// per critical section, far apart).
	if shallow.RASMicros > none.RASMicros*1.5 {
		t.Errorf("RAS too sensitive to write buffer: %.2f vs %.2f",
			shallow.RASMicros, none.RASMicros)
	}
	t.Logf("\n%s", FormatWriteBuffer(rows))
}

// §3.1's single-sequence restriction: the linear multi-range check slows
// the whole workload as the table grows; correctness is preserved.
func TestTableRegistrationRangesShape(t *testing.T) {
	rows, err := TableRegistrationRanges(3, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CheckCycles <= rows[i-1].CheckCycles {
			t.Errorf("check cost not growing: %d -> %d",
				rows[i-1].CheckCycles, rows[i].CheckCycles)
		}
		if rows[i].Micros <= rows[i-1].Micros {
			t.Errorf("elapsed not growing with table size: %.1f -> %.1f",
				rows[i-1].Micros, rows[i].Micros)
		}
	}
	for _, r := range rows {
		if r.Restarts == 0 {
			t.Errorf("ranges=%d: no restarts under 61-cycle quantum", r.Ranges)
		}
	}
	t.Logf("\n%s", FormatRanges(rows, arch.R3000().PCCheckDesignatedCycles))
}

func TestAblationFormatters(t *testing.T) {
	if FormatWriteBuffer([]WBufRow{{Memory: "x"}}) == "" {
		t.Error("empty write-buffer table")
	}
	if FormatRanges([]RangesRow{{Ranges: 1}}, 50) == "" {
		t.Error("empty ranges table")
	}
}
