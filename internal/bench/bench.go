// Package bench is the experiment harness: it regenerates every table of
// the paper's evaluation (Tables 1-4 of §5-§6) plus the auxiliary
// observations (§5.3's lock-holdup analysis, §7's i860 lock bit, §4.1's
// PC-check placement), printing rows in the paper's shape.
//
// Absolute microseconds come from the simulator's cycle-cost model, so they
// will not match the 1992 hardware exactly; EXPERIMENTS.md records
// paper-vs-measured values and verifies that orderings and ratios hold.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/guest"
	"repro/internal/lamport"
	"repro/internal/uniproc"
	"repro/internal/vmach/kernel"
)

// noPreempt is a quantum long enough that timer preemption never fires
// during a microbenchmark (matching the paper's unloaded-system runs).
const noPreempt = 1 << 40

// runGuest assembles and runs a guest program to completion on a fresh
// kernel, returning the kernel for inspection.
func runGuest(prof *arch.Profile, strat kernel.Strategy, checkAt kernel.CheckTime,
	quantum uint64, src string) (*kernel.Kernel, error) {
	prog := guest.Assemble(src)
	k := kernel.New(kernel.Config{
		Profile:  prof,
		Strategy: strat,
		CheckAt:  checkAt,
		Quantum:  quantum,
	})
	k.Load(prog)
	k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
	attachKernel(k)
	err := k.Run()
	noteKernelRun(k)
	if err != nil {
		return k, fmt.Errorf("bench: %s: %w", prof.Name, err)
	}
	return k, nil
}

// strategyFor picks the kernel recovery strategy a mechanism needs.
func strategyFor(m guest.Mechanism) (kernel.Strategy, kernel.CheckTime) {
	switch m {
	case guest.MechRegistered:
		return &kernel.Registration{}, kernel.CheckAtSuspend // Mach checks early (§4.1)
	case guest.MechDesignated:
		return &kernel.Designated{}, kernel.CheckAtResume // Taos checks late (§4.1)
	case guest.MechUserLevel:
		return &kernel.UserLevel{}, kernel.CheckAtResume
	default:
		return kernel.NoRecovery{}, kernel.CheckAtSuspend
	}
}

// T1Row is one line of Table 1: the software mutual exclusion
// microbenchmark on the DECstation 5000/200.
type T1Row struct {
	Mechanism string
	Micros    float64
}

// Table1 reproduces Table 1: elapsed time per critical section (enter with
// Test-And-Set, increment a counter, leave by clearing), loop overhead
// subtracted, on the R3000 profile.
func Table1(iters int) ([]T1Row, error) {
	prof := arch.R3000()
	loop, err := runGuest(prof, kernel.NoRecovery{}, 0, noPreempt, guest.EmptyLoopProgram(iters))
	if err != nil {
		return nil, err
	}
	loopCycles := loop.M.Stats.Cycles

	mechs := []struct {
		name string
		m    guest.Mechanism
	}{
		{"Restartable Atomic Sequences (branch)", guest.MechRegistered},
		{"Restartable Atomic Sequences (inline)", guest.MechDesignated},
		{"Kernel Emulation", guest.MechEmul},
		{"Software-reservation (a)", guest.MechLamportA},
		{"Software-reservation (b)", guest.MechLamportB},
	}
	rows := make([]T1Row, 0, len(mechs))
	for _, mc := range mechs {
		strat, at := strategyFor(mc.m)
		k, err := runGuest(prof, strat, at, noPreempt, guest.MicrobenchProgram(mc.m, iters))
		if err != nil {
			return nil, err
		}
		per := prof.Micros(k.M.Stats.Cycles-loopCycles) / float64(iters)
		rows = append(rows, T1Row{mc.name, per})
	}
	return rows, nil
}

// T2Row is one line of Table 2: thread management operations under kernel
// emulation vs restartable atomic sequences.
type T2Row struct {
	Benchmark  string
	EmulMicros float64
	RASMicros  float64
}

// table2Bench measures one thread-management benchmark: it returns elapsed
// cycles per operation for the given mechanism.
func table2Bench(name string, mech core.Mechanism, iters int) (float64, error) {
	prof := arch.R3000()
	proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: noPreempt})
	pkg := cthreads.New(mech)
	var start, end uint64
	switch name {
	case "Spinlock":
		lock := pkg.NewSpinLock()
		proc.Go("main", func(e *uniproc.Env) {
			start = e.Now()
			for i := 0; i < iters; i++ {
				lock.Lock(e)
				lock.Unlock(e)
			}
			end = e.Now()
		})
	case "MutexLock":
		mu := pkg.NewMutex()
		proc.Go("main", func(e *uniproc.Env) {
			start = e.Now()
			for i := 0; i < iters; i++ {
				mu.Lock(e)
				mu.Unlock(e)
			}
			end = e.Now()
		})
	case "ForkTest":
		// Threads recursively forked in succession; each terminates right
		// after forking the next (§5.2).
		var spawn func(e *uniproc.Env, remaining int)
		spawn = func(e *uniproc.Env, remaining int) {
			if remaining == 0 {
				end = e.Now()
				return
			}
			pkg.Fork(e, "link", func(e *uniproc.Env) { spawn(e, remaining-1) })
		}
		proc.Go("root", func(e *uniproc.Env) {
			start = e.Now()
			spawn(e, iters)
		})
	case "PingPong":
		// Two threads alternating via a mutex and condition variable.
		mu := pkg.NewMutex()
		cond := pkg.NewCond()
		turn := core.Word(0)
		player := func(me core.Word) func(*uniproc.Env) {
			return func(e *uniproc.Env) {
				for i := 0; i < iters; i++ {
					mu.Lock(e)
					for e.Load(&turn) != me {
						cond.Wait(e, mu)
					}
					e.Store(&turn, 1-me)
					cond.Signal(e)
					mu.Unlock(e)
				}
			}
		}
		proc.Go("setup", func(e *uniproc.Env) {
			start = e.Now()
			a := pkg.Fork(e, "ping", player(0))
			b := pkg.Fork(e, "pong", player(1))
			a.Join(e)
			b.Join(e)
			end = e.Now()
		})
	default:
		return 0, fmt.Errorf("bench: unknown table 2 benchmark %q", name)
	}
	attachProc(proc)
	err := proc.Run()
	noteProcRun(proc)
	if err != nil {
		return 0, err
	}
	return prof.Micros(end-start) / float64(iters), nil
}

// Table2 reproduces Table 2.
func Table2(iters int) ([]T2Row, error) {
	prof := arch.R3000()
	var rows []T2Row
	for _, name := range []string{"Spinlock", "MutexLock", "ForkTest", "PingPong"} {
		emul, err := table2Bench(name, core.NewKernelEmul(prof), iters)
		if err != nil {
			return nil, err
		}
		ras, err := table2Bench(name, core.NewRAS(), iters)
		if err != nil {
			return nil, err
		}
		rows = append(rows, T2Row{name, emul, ras})
	}
	return rows, nil
}

// T4Row is one line of Table 4: hardware vs software Test-And-Set
// acquire/release across eight processor architectures.
type T4Row struct {
	Processor   string
	Interlocked float64
	Registered  float64
	Linkage     float64
	Designated  float64
}

// Table4 reproduces Table 4.
func Table4(iters int) ([]T4Row, error) {
	var rows []T4Row
	for _, prof := range arch.Table4() {
		loop, err := runGuest(prof, kernel.NoRecovery{}, 0, noPreempt, guest.EmptyLoopProgram(iters))
		if err != nil {
			return nil, err
		}
		loopCycles := loop.M.Stats.Cycles
		per := func(m guest.Mechanism) (float64, error) {
			strat, at := strategyFor(m)
			k, err := runGuest(prof, strat, at, noPreempt, guest.AcquireReleaseProgram(m, iters))
			if err != nil {
				return 0, err
			}
			return prof.Micros(k.M.Stats.Cycles-loopCycles) / float64(iters), nil
		}
		interlocked, err := per(guest.MechInterlocked)
		if err != nil {
			return nil, err
		}
		registered, err := per(guest.MechRegistered)
		if err != nil {
			return nil, err
		}
		designated, err := per(guest.MechDesignated)
		if err != nil {
			return nil, err
		}
		link, err := runGuest(prof, kernel.NoRecovery{}, 0, noPreempt, guest.LinkageProgram(iters))
		if err != nil {
			return nil, err
		}
		linkage := prof.Micros(link.M.Stats.Cycles-loopCycles) / float64(iters)
		rows = append(rows, T4Row{prof.Name, interlocked, registered, linkage, designated})
	}
	return rows, nil
}

// I860Row compares the i860's hardware restartable sequence (the lock bit,
// §7) with software approaches on the i860 profile.
type I860Row struct {
	Mechanism string
	Micros    float64
}

// TableI860 reproduces the §7 observation that the i860's hardware support
// "offers little performance advantage over software techniques".
func TableI860(iters int) ([]I860Row, error) {
	prof := arch.I860()
	loop, err := runGuest(prof, kernel.NoRecovery{}, 0, noPreempt, guest.EmptyLoopProgram(iters))
	if err != nil {
		return nil, err
	}
	loopCycles := loop.M.Stats.Cycles
	var rows []I860Row
	for _, mc := range []struct {
		name string
		m    guest.Mechanism
	}{
		{"Interlocked instruction", guest.MechInterlocked},
		{"Hardware lock bit (lockb)", guest.MechLockB},
		{"Designated sequence", guest.MechDesignated},
	} {
		strat, at := strategyFor(mc.m)
		k, err := runGuest(prof, strat, at, noPreempt, guest.AcquireReleaseProgram(mc.m, iters))
		if err != nil {
			return nil, err
		}
		rows = append(rows, I860Row{mc.name, prof.Micros(k.M.Stats.Cycles-loopCycles) / float64(iters)})
	}
	return rows, nil
}

// LamportRow compares the two software-reservation protocols at the
// uniproc level (complementing Table 1's guest-level measurement).
type LamportRow struct {
	Protocol string
	Micros   float64
}

// TableLamport measures protocol (a) vs protocol (b) per critical section.
func TableLamport(iters int) ([]LamportRow, error) {
	prof := arch.R3000()
	run := func(lock core.Locker) (float64, error) {
		proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: noPreempt})
		var counter core.Word
		var start, end uint64
		proc.Go("main", func(e *uniproc.Env) {
			start = e.Now()
			for i := 0; i < iters; i++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
			end = e.Now()
		})
		attachProc(proc)
		err := proc.Run()
		noteProcRun(proc)
		if err != nil {
			return 0, err
		}
		return prof.Micros(end-start) / float64(iters), nil
	}
	a, err := run(lamport.NewDirectLock(2))
	if err != nil {
		return nil, err
	}
	b, err := run(core.NewTASLock(lamport.NewMeta(2)))
	if err != nil {
		return nil, err
	}
	return []LamportRow{{"Lamport direct (a)", a}, {"Lamport bundled meta (b)", b}}, nil
}

// Format helpers ------------------------------------------------------------

// FormatTable1 renders Table 1 in the paper's shape.
func FormatTable1(rows []T1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %10s\n", "Software Mechanism", "Time (us)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %10.2f\n", r.Mechanism, r.Micros)
	}
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []T2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "Benchmark", "Emulation (us)", "R.A.S. (us)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %16.2f %16.2f\n", r.Benchmark, r.EmulMicros, r.RASMicros)
	}
	return b.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []T4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %9s %12s\n",
		"Processor", "Interlocked", "Registered", "Linkage", "Designated")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.2f %12.2f %9.2f %12.2f\n",
			r.Processor, r.Interlocked, r.Registered, r.Linkage, r.Designated)
	}
	return b.String()
}

// FormatI860 renders the i860 comparison.
func FormatI860(rows []I860Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s\n", "i860 Mechanism", "Time (us)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10.2f\n", r.Mechanism, r.Micros)
	}
	return b.String()
}

// FormatLamport renders the Lamport protocol comparison.
func FormatLamport(rows []LamportRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s\n", "Reservation Protocol", "Time (us)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10.2f\n", r.Protocol, r.Micros)
	}
	return b.String()
}
