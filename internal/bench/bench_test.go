package bench

import (
	"strings"
	"testing"
)

// Table 1 shape: inline < branch < reservation(b) < reservation(a) <
// emulation.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(sub string) float64 {
		for _, r := range rows {
			if strings.Contains(r.Mechanism, sub) {
				return r.Micros
			}
		}
		t.Fatalf("missing row %q", sub)
		return 0
	}
	branch := get("(branch)")
	inline := get("(inline)")
	emul := get("Kernel Emulation")
	resA := get("(a)")
	resB := get("(b)")
	if !(inline < branch) {
		t.Errorf("inline %.2f !< branch %.2f", inline, branch)
	}
	if !(branch < resB) {
		t.Errorf("branch %.2f !< reservation-b %.2f", branch, resB)
	}
	if !(resB < resA) {
		t.Errorf("reservation-b %.2f !< reservation-a %.2f", resB, resA)
	}
	if !(resA < emul) {
		t.Errorf("reservation-a %.2f !< emulation %.2f", resA, emul)
	}
	// Emulation is several times slower than RAS (paper: 4.15 vs 0.51).
	if emul < 4*inline {
		t.Errorf("emulation %.2f not >> inline %.2f", emul, inline)
	}
	for _, r := range rows {
		if r.Micros <= 0 || r.Micros > 100 {
			t.Errorf("%s: implausible %.2f us", r.Mechanism, r.Micros)
		}
	}
	t.Logf("\n%s", FormatTable1(rows))
}

// Table 2 shape: RAS beats emulation on every thread-management benchmark,
// by the largest factor on Spinlock and the smallest on ForkTest/PingPong.
func TestTable2Shape(t *testing.T) {
	rows, err := Table2(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RASMicros <= 0 || r.EmulMicros <= 0 {
			t.Errorf("%s: non-positive times %+v", r.Benchmark, r)
		}
		if r.RASMicros >= r.EmulMicros {
			t.Errorf("%s: RAS %.2f !< emulation %.2f", r.Benchmark, r.RASMicros, r.EmulMicros)
		}
	}
	// Spinlock improves by a larger factor than ForkTest (paper: 7.4x vs
	// 1.8x) because the heavier operation amortizes the trap cost.
	spin := rows[0]
	fork := rows[2]
	if spin.EmulMicros/spin.RASMicros <= fork.EmulMicros/fork.RASMicros {
		t.Errorf("spinlock speedup %.1f not > forktest speedup %.1f",
			spin.EmulMicros/spin.RASMicros, fork.EmulMicros/fork.RASMicros)
	}
	t.Logf("\n%s", FormatTable2(rows))
}

// Table 3 shape: every application is at least as fast under RAS; restarts
// are rare; emulation traps are plentiful; proton has the most suspensions.
func TestTable3Shape(t *testing.T) {
	s := DefaultScale()
	// Shrink the single-threaded workloads for test time; keep proton
	// large enough that its blocking handoffs dominate the suspension
	// counts, as in the paper.
	s.TextParas, s.AFSBytes, s.ParthChain, s.ProtonKB = 10, 1024, 30, 160
	rows, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]T3Row{}
	for _, r := range rows {
		byName[r.Program] = r
		if r.RAS.Secs > r.Emul.Secs {
			t.Errorf("%s: RAS slower (%.4f > %.4f)", r.Program, r.RAS.Secs, r.Emul.Secs)
		}
		if r.Emul.EmulTraps == 0 {
			t.Errorf("%s: no emulation traps recorded", r.Program)
		}
		if r.RAS.EmulTraps != 0 {
			t.Errorf("%s: emulation traps under RAS", r.Program)
		}
		// "The likelihood of a thread being suspended during a restartable
		// atomic sequence is extremely small" — restarts << traps.
		if r.RAS.Restarts*10 > r.Emul.EmulTraps {
			t.Errorf("%s: restarts %d not rare vs traps %d",
				r.Program, r.RAS.Restarts, r.Emul.EmulTraps)
		}
	}
	// proton-64 has the highest suspension count (blocking handoffs).
	proton := byName["proton-64"]
	for name, r := range byName {
		if name != "proton-64" && r.RAS.Suspensions > proton.RAS.Suspensions {
			t.Errorf("%s suspensions %d exceed proton's %d",
				name, r.RAS.Suspensions, proton.RAS.Suspensions)
		}
	}
	// Threaded apps improve more than single-threaded ones (paper: 30-50%
	// vs ~3%).
	tf := byName["text-format"]
	pr := byName["proton-64"]
	tfGain := (tf.Emul.Secs - tf.RAS.Secs) / tf.Emul.Secs
	prGain := (pr.Emul.Secs - pr.RAS.Secs) / pr.Emul.Secs
	if prGain <= tfGain {
		t.Errorf("proton gain %.1f%% not > text-format gain %.1f%%",
			prGain*100, tfGain*100)
	}
	t.Logf("\n%s", FormatTable3(rows))
}

// Table 4 shape: designated = registered - linkage (approximately), and
// software beats the interlocked instruction on the architectures the
// paper calls out.
func TestTable4Shape(t *testing.T) {
	rows, err := Table4(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	softwareWins := map[string]bool{ // interlocked > explicit registration, per paper
		"DEC CVAX": true, "Intel 486": true, "Intel 860": false,
		"Motorola 88000": true, "HP 9000/700": true,
	}
	for _, r := range rows {
		if r.Designated >= r.Registered {
			t.Errorf("%s: designated %.2f !< registered %.2f",
				r.Processor, r.Designated, r.Registered)
		}
		// The designated sequence beats the interlocked instruction on
		// every processor in the paper's Table 4 except the 68030, whose
		// interlocked access (1.1us) edges out the sequence (1.2us).
		if r.Processor == "Motorola 68030" {
			if r.Interlocked >= r.Designated {
				t.Errorf("68030: interlocked %.2f should beat designated %.2f",
					r.Interlocked, r.Designated)
			}
		} else if r.Designated >= r.Interlocked {
			t.Errorf("%s: designated %.2f !< interlocked %.2f",
				r.Processor, r.Designated, r.Interlocked)
		}
		if want, ok := softwareWins[r.Processor]; ok && want {
			if r.Registered >= r.Interlocked {
				t.Errorf("%s: registered %.2f !< interlocked %.2f",
					r.Processor, r.Registered, r.Interlocked)
			}
		}
	}
	t.Logf("\n%s", FormatTable4(rows))
}

func TestTableI860(t *testing.T) {
	rows, err := TableI860(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §7: the hardware lock bit "offers little performance advantage over
	// software techniques" — the designated sequence should be within ~25%
	// of (or better than) lockb.
	var lockb, desig float64
	for _, r := range rows {
		if strings.Contains(r.Mechanism, "lockb") {
			lockb = r.Micros
		}
		if strings.Contains(r.Mechanism, "Designated") {
			desig = r.Micros
		}
	}
	if desig > lockb*1.25 {
		t.Errorf("designated %.2f not competitive with lockb %.2f", desig, lockb)
	}
	t.Logf("\n%s", FormatI860(rows))
}

func TestTableLamport(t *testing.T) {
	rows, err := TableLamport(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Micros <= rows[1].Micros {
		t.Errorf("protocol (a) %.2f not slower than (b) %.2f",
			rows[0].Micros, rows[1].Micros)
	}
	t.Logf("\n%s", FormatLamport(rows))
}

func TestTableHoldups(t *testing.T) {
	s := DefaultScale()
	s.ParthChain = 40
	s.Quantum = 3000
	rows, err := TableHoldups(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	emul, ras := rows[0], rows[1]
	// §5.3: "a thread found a Test-And-Set lock held about twice as often"
	// under kernel emulation. Require at least a clear excess.
	if emul.Holdups <= ras.Holdups {
		t.Errorf("emulation holdups %d not > RAS holdups %d", emul.Holdups, ras.Holdups)
	}
	t.Logf("\n%s", FormatHoldups(rows))
}

func TestTableAblation(t *testing.T) {
	rows, err := TableAblation(3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Suspensions == 0 {
			t.Errorf("%s: no suspensions under 61-cycle quantum", r.Config)
		}
		if r.Micros <= 0 {
			t.Errorf("%s: non-positive time", r.Config)
		}
	}
	// Both designated placements must restart sequences.
	if rows[0].Restarts == 0 || rows[1].Restarts == 0 {
		t.Errorf("designated placements: restarts %d/%d", rows[0].Restarts, rows[1].Restarts)
	}
	t.Logf("\n%s", FormatAblation(rows))
}

func TestFormatters(t *testing.T) {
	if FormatTable1([]T1Row{{"x", 1}}) == "" ||
		FormatTable2([]T2Row{{"x", 1, 2}}) == "" ||
		FormatTable3([]T3Row{{Program: "x"}}) == "" ||
		FormatTable4([]T4Row{{Processor: "x"}}) == "" ||
		FormatI860([]I860Row{{"x", 1}}) == "" ||
		FormatLamport([]LamportRow{{"x", 1}}) == "" ||
		FormatHoldups([]HoldupRow{{"x", 1, 1}}) == "" ||
		FormatAblation([]AblationRow{{Config: "x"}}) == "" {
		t.Error("a formatter returned empty output")
	}
}
