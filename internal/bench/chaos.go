package bench

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/uniproc"
	"repro/internal/vmach/kernel"
)

// ChaosConfig parametrizes the chaos sweep.
type ChaosConfig struct {
	Seed    uint64    // master seed; per-scenario seeds are derived from it
	Levels  []float64 // fault-intensity levels for the sweep scenarios
	Seeds   int       // derived seeds per (scenario, level)
	Workers int
	Iters   int
	// MaxCycles bounds every individual run (the -timeout flag); 0 uses
	// each substrate's default.
	MaxCycles uint64
}

// DefaultChaosConfig returns the configuration `rasbench -table chaos` and
// `make chaos` run.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:    1,
		Levels:  []float64{0.25, 0.5, 1},
		Seeds:   3,
		Workers: 3,
		Iters:   120,
	}
}

// tableRepro is the copy-paste command that re-runs a bench table with
// the configuration that just failed. Deterministic scenarios need
// nothing beyond the table and seed; plan-driven sweeps use the richer
// chaos.Plan.Repro instead.
func tableRepro(table string, seed uint64) string {
	return fmt.Sprintf("go run ./cmd/rasbench -table %s -seed %#x", table, seed)
}

// ChaosRow is one scenario outcome of the chaos table.
type ChaosRow struct {
	Scenario string
	Seed     uint64
	Level    float64
	Injected uint64
	Restarts uint64
	Extends  uint64 // watchdog quantum extensions
	Aborts   uint64 // watchdog aborts (expected ones only)
	Outcome  string
}

// TableChaos runs the seeded fault-injection sweep on both substrates:
//
//   - vmach sweeps: the ISA-level kernel under injected preemptions,
//     spurious suspensions, page evictions and timeslice jitter, for both
//     recovery strategies — mutual exclusion must hold on every schedule;
//   - vmach livelock scenarios: a quantum too short for the designated
//     sequence (§3.1) — the watchdog must either abort with a diagnostic or
//     extend the slice so the run completes;
//   - uniproc sweep and degradation: the runtime layer under memory-op
//     injection, plus the adaptive RAS-to-emulation demotion under a
//     livelocking quantum;
//   - recognizer mutants: corrupted and landmark-stripped designated
//     sequences fed to the two-stage check, which must never roll a PC back
//     outside a true sequence.
//
// Any failure is returned as an error carrying the one-line seed reproducer.
func TableChaos(cfg ChaosConfig) ([]ChaosRow, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = []float64{1}
	}
	var rows []ChaosRow

	// vmach sweeps: both strategies, every (seed, level).
	vmachSweeps := []struct {
		name    string
		strat   func() kernel.Strategy
		at      kernel.CheckTime
		mech    guest.Mechanism
		quantum uint64
	}{
		{"vmach/designated", func() kernel.Strategy { return &kernel.Designated{} },
			kernel.CheckAtResume, guest.MechDesignated, 900},
		{"vmach/registered", func() kernel.Strategy { return &kernel.Registration{} },
			kernel.CheckAtSuspend, guest.MechRegistered, 700},
	}
	for _, sc := range vmachSweeps {
		for _, level := range cfg.Levels {
			for s := 0; s < cfg.Seeds; s++ {
				seed := chaos.Derive(cfg.Seed, uint64(s)+1)
				plan := chaos.NewPlan(seed, level)
				k, counterAddr, want, err := vmachChaosRun(sc.strat(), sc.at, sc.mech,
					sc.quantum, cfg, plan, chaos.Watchdog{Policy: chaos.WatchdogExtend})
				if err != nil {
					return nil, fmt.Errorf("%s: %v (repro: %s)", sc.name, err, plan.Repro())
				}
				if got := k.M.Mem.Peek(counterAddr); got != want {
					return nil, fmt.Errorf("%s: counter %d, want %d — mutual exclusion violated (repro: %s)",
						sc.name, got, want, plan.Repro())
				}
				rows = append(rows, ChaosRow{
					Scenario: sc.name, Seed: seed, Level: level,
					Injected: k.Stats.Injected, Restarts: k.Stats.Restarts,
					Extends: k.Stats.WatchdogExtends, Outcome: "exact",
				})
			}
		}
	}

	// vmach livelock: quantum 3 cannot fit the 6-cycle designated sequence.
	{
		k, _, _, err := vmachChaosRun(&kernel.Designated{}, kernel.CheckAtResume,
			guest.MechDesignated, 3, ChaosConfig{Workers: 1, Iters: 1, MaxCycles: cfg.MaxCycles},
			nil, chaos.Watchdog{Policy: chaos.WatchdogAbort, MaxRestarts: 40})
		if !errors.Is(err, kernel.ErrLivelock) {
			return nil, fmt.Errorf("vmach/livelock-abort: watchdog missed the §3.1 livelock: %v (repro: %s)", err, tableRepro("chaos", cfg.Seed))
		}
		rows = append(rows, ChaosRow{
			Scenario: "vmach/livelock-abort", Restarts: k.Stats.Restarts,
			Aborts: k.Stats.WatchdogAborts, Outcome: "livelock caught",
		})
	}
	{
		k, counterAddr, want, err := vmachChaosRun(&kernel.Designated{}, kernel.CheckAtResume,
			guest.MechDesignated, 3, ChaosConfig{Workers: 1, Iters: 5, MaxCycles: cfg.MaxCycles},
			nil, chaos.Watchdog{Policy: chaos.WatchdogExtend, MaxRestarts: 12})
		if err != nil {
			return nil, fmt.Errorf("vmach/livelock-extend: %v (repro: %s)", err, tableRepro("chaos", cfg.Seed))
		}
		if got := k.M.Mem.Peek(counterAddr); got != want {
			return nil, fmt.Errorf("vmach/livelock-extend: counter %d, want %d (repro: %s)", got, want, tableRepro("chaos", cfg.Seed))
		}
		if k.Stats.WatchdogExtends == 0 {
			return nil, fmt.Errorf("vmach/livelock-extend: no extension granted (repro: %s)", tableRepro("chaos", cfg.Seed))
		}
		rows = append(rows, ChaosRow{
			Scenario: "vmach/livelock-extend", Restarts: k.Stats.Restarts,
			Extends: k.Stats.WatchdogExtends, Outcome: "extended, exact",
		})
	}

	// uniproc sweep: memory-op injection on the runtime layer.
	for _, level := range cfg.Levels {
		for s := 0; s < cfg.Seeds; s++ {
			seed := chaos.Derive(cfg.Seed, 0xF00D, uint64(s)+1)
			plan := chaos.NewPlan(seed, level)
			proc, counter, err := uniprocChaosRun(cfg, core.NewRAS(), 200, plan,
				chaos.Watchdog{Policy: chaos.WatchdogExtend})
			if err != nil {
				return nil, fmt.Errorf("uniproc/ras: %v (repro: %s)", err, plan.Repro())
			}
			if counter != core.Word(cfg.Workers*cfg.Iters) {
				return nil, fmt.Errorf("uniproc/ras: counter %d, want %d — mutual exclusion violated (repro: %s)",
					counter, cfg.Workers*cfg.Iters, plan.Repro())
			}
			rows = append(rows, ChaosRow{
				Scenario: "uniproc/ras", Seed: seed, Level: level,
				Injected: proc.Stats.Injected, Restarts: proc.Stats.Restarts,
				Extends: proc.Stats.WatchdogExtends, Outcome: "exact",
			})
		}
	}

	// uniproc degradation: a 2-cycle quantum livelocks the 4-cycle RAS
	// test-and-set; core.Degrading must demote to emulation and finish.
	{
		d := core.NewDegrading(core.NewRAS(), core.NewKernelEmul(arch.R3000()))
		d.OpRestartLimit = 8
		proc, counter, err := uniprocChaosRun(cfg, d, 2, nil, chaos.Watchdog{})
		if err != nil {
			return nil, fmt.Errorf("uniproc/degrading: %v (repro: %s)", err, tableRepro("chaos", cfg.Seed))
		}
		if counter != core.Word(cfg.Workers*cfg.Iters) {
			return nil, fmt.Errorf("uniproc/degrading: counter %d, want %d (repro: %s)", counter, cfg.Workers*cfg.Iters, tableRepro("chaos", cfg.Seed))
		}
		if !d.Demoted() {
			return nil, fmt.Errorf("uniproc/degrading: pathological sequence was not demoted (repro: %s)", tableRepro("chaos", cfg.Seed))
		}
		rows = append(rows, ChaosRow{
			Scenario: "uniproc/degrading", Restarts: proc.Stats.Restarts,
			Aborts: proc.Stats.Demotions, Outcome: "demoted, exact",
		})
	}

	// Recognizer mutants: the two-stage check against corrupted sequences.
	{
		n, err := chaosMutantSweep(cfg.Seed, 200)
		if err != nil {
			return nil, fmt.Errorf("%v (repro: %s)", err, tableRepro("chaos", cfg.Seed))
		}
		rows = append(rows, ChaosRow{
			Scenario: "recognizer/mutants", Seed: cfg.Seed,
			Injected: uint64(n), Outcome: "no unsafe rollback",
		})
	}
	return rows, nil
}

func vmachChaosRun(strat kernel.Strategy, at kernel.CheckTime, mech guest.Mechanism,
	quantum uint64, cfg ChaosConfig, faults chaos.Injector, wd chaos.Watchdog) (*kernel.Kernel, uint32, uint32, error) {
	prog := guest.Assemble(guest.MutexCounterProgram(mech, cfg.Workers, cfg.Iters))
	k := kernel.New(kernel.Config{
		Strategy: strat, CheckAt: at, Quantum: quantum,
		MaxCycles: cfg.MaxCycles, Faults: faults, Watchdog: wd,
	})
	k.Load(prog)
	k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
	err := k.Run()
	return k, prog.MustSymbol("counter"), uint32(cfg.Workers * cfg.Iters), err
}

func uniprocChaosRun(cfg ChaosConfig, m core.Mechanism, quantum uint64,
	faults chaos.Injector, wd chaos.Watchdog) (*uniproc.Processor, core.Word, error) {
	proc := uniproc.New(uniproc.Config{
		Quantum: quantum, MaxCycles: cfg.MaxCycles, Faults: faults, Watchdog: wd,
	})
	lock := core.NewTASLock(m)
	var counter core.Word
	for i := 0; i < cfg.Workers; i++ {
		proc.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < cfg.Iters; it++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
	}
	err := proc.Run()
	return proc, counter, err
}

// chaosMutantSweep feeds n deterministically corrupted designated sequences
// to the recognizer and verifies the §3.2 safety contract with the exported
// API alone: a restart is only legal if the claimed sequence start is
// certified by a landmark at start+12 and the rollback distance is within
// the canonical window. Returns the number of mutants checked.
func chaosMutantSweep(seed uint64, n int) (int, error) {
	canon := []uint32{
		uint32(isa.Encode(isa.Lw(isa.RegV0, isa.RegS1, 0))),
		uint32(isa.Encode(isa.Ori(isa.RegT0, isa.RegZero, 1))),
		uint32(isa.Encode(isa.Bne(isa.RegV0, isa.RegZero, 3))),
		uint32(isa.Encode(isa.Landmark())),
		uint32(isa.Encode(isa.Sw(isa.RegT0, isa.RegS1, 0))),
	}
	const base = uint32(0x4000)
	for i := 0; i < n; i++ {
		mut, idx, kind := chaos.MutateWords(seed, uint64(i), canon)
		k := kernel.New(kernel.Config{Strategy: &kernel.Designated{}})
		for j, w := range mut {
			k.M.Mem.Poke(base+uint32(j*4), w)
		}
		for off := 0; off < len(mut); off++ {
			pc := base + uint32(off*4)
			th := &kernel.Thread{}
			th.Ctx.PC = pc
			res := k.Strategy.Check(k, th)
			if !res.Restarted {
				if th.Ctx.PC != pc {
					return i, fmt.Errorf("recognizer/mutants: mutant %d (%s word %d): reject moved pc %#x -> %#x",
						i, kind, idx, pc, th.Ctx.PC)
				}
				continue
			}
			start := th.Ctx.PC
			back := pc - start
			lm := k.M.Mem.Peek(start + 12)
			if back == 0 || back > 16 || back%4 != 0 || !isa.Decode(isa.Word(lm)).IsLandmark() {
				return i, fmt.Errorf("recognizer/mutants: mutant %d (%s word %d): unsafe rollback pc %#x -> %#x",
					i, kind, idx, pc, start)
			}
		}
	}
	return n, nil
}

// FormatChaos renders the chaos table.
func FormatChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-18s %6s %9s %9s %8s %7s  %s\n",
		"Scenario", "Seed", "Level", "Injected", "Restarts", "Extends", "Aborts", "Outcome")
	for _, r := range rows {
		seed := "-"
		if r.Seed != 0 {
			seed = fmt.Sprintf("%#x", r.Seed)
		}
		fmt.Fprintf(&b, "%-22s %-18s %6.2f %9d %9d %8d %7d  %s\n",
			r.Scenario, seed, r.Level, r.Injected, r.Restarts, r.Extends, r.Aborts, r.Outcome)
	}
	return b.String()
}
