package bench

import (
	"strings"
	"testing"
)

func TestTableChaos(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 2
	cfg.Levels = []float64{0.5, 1}
	cfg.Iters = 80
	rows, err := TableChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"vmach/designated": false, "vmach/registered": false,
		"vmach/livelock-abort": false, "vmach/livelock-extend": false,
		"uniproc/ras": false, "uniproc/degrading": false,
		"recognizer/mutants": false,
	}
	for _, r := range rows {
		want[r.Scenario] = true
	}
	for sc, seen := range want {
		if !seen {
			t.Errorf("scenario %s missing from the table", sc)
		}
	}
	out := FormatChaos(rows)
	for _, s := range []string{"livelock caught", "demoted, exact", "no unsafe rollback"} {
		if !strings.Contains(out, s) {
			t.Errorf("formatted table missing %q:\n%s", s, out)
		}
	}
}

// The sweep is replayable: the same master seed yields identical rows.
func TestTableChaosDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 1
	cfg.Levels = []float64{1}
	cfg.Iters = 60
	r1, err := TableChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TableChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("row %d diverged:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}
