package bench

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/guest"
	"repro/internal/journal"
	"repro/internal/mcheck"
	"repro/internal/obs"
	"repro/internal/uniproc"
	"repro/internal/vmach"
	"repro/internal/vmach/kernel"
)

// JournalConfig parametrizes the journaling table (experiment E24): the
// undo-vs-redo passage-cost comparison on both substrates, the torn-crash
// sweeps, the memfs journal replay, and the exhaustive boundary walk.
type JournalConfig struct {
	Seed uint64
	// Crashes is the number of seeded torn-crash points per sweep.
	Crashes int
	// Target is the guest journal's transaction count.
	Target int
	// Ops is the persistent-structure operation count per flavor.
	Ops       int
	MaxCycles uint64
}

// DefaultJournalConfig returns the configuration `rasbench -table journal`
// and `make journal` run.
func DefaultJournalConfig() JournalConfig {
	return JournalConfig{Seed: 1, Crashes: 24, Target: 8, Ops: 12}
}

// JournalRow is one scenario outcome of the journaling table. For the
// fault-free passage rows Cycles and PersistOps are totals over Ops
// operations — the undo-vs-redo cost comparison is their ratio. For the
// sweep rows Repairs counts the crashes whose recovery had a committed
// in-flight record to roll.
type JournalRow struct {
	Scenario   string
	Mode       string
	Seed       uint64
	Crashes    int
	Ops        int
	Cycles     uint64
	PersistOps uint64
	Repairs    uint64
	Outcome    string
}

// vmachJournalPassage runs the guest journal fault-free and reports the
// passage cost: cycles and persist operations for Target transactions.
func vmachJournalPassage(cfg JournalConfig, mode string) (JournalRow, error) {
	prog := guest.Assemble(guest.JournalProgram(mode, cfg.Target))
	mem := vmach.NewMemory()
	mem.EnablePersistence()
	k := kernel.New(persistKernelConfig(mem, nil, cfg.MaxCycles))
	k.Load(prog)
	k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
	if err := k.Run(); err != nil {
		return JournalRow{}, fmt.Errorf("vmach/%s passage: %v (repro: %s)", mode, err, tableRepro("journal", cfg.Seed))
	}
	a, b := mem.Peek(prog.MustSymbol("va")), mem.Peek(prog.MustSymbol("vb"))
	if int(a) != cfg.Target || int(b) != cfg.Target {
		return JournalRow{}, fmt.Errorf("vmach/%s passage: va=%d vb=%d, want %d (repro: %s)",
			mode, a, b, cfg.Target, tableRepro("journal", cfg.Seed))
	}
	return JournalRow{
		Scenario: "vmach/passage", Mode: mode, Ops: cfg.Target,
		Cycles:     k.M.Stats.Cycles,
		PersistOps: k.M.Stats.Flushes + k.M.Stats.Fences,
		Outcome:    "target reached",
	}, nil
}

// vmachJournalTornSweep crashes the guest journal at seeded step ordinals
// with torn write-backs, reboots the same binary over the surviving NVM,
// and requires exact recovery every time. Repairs counts the crashes
// that left a committed in-flight record (host-checked with the same
// checksum rule the guest's recovery path applies).
func vmachJournalTornSweep(cfg JournalConfig, mode string) (JournalRow, error) {
	prog := guest.Assemble(guest.JournalProgram(mode, cfg.Target))
	fail := func(format string, args ...any) (JournalRow, error) {
		return JournalRow{}, fmt.Errorf("vmach/"+mode+"-torn: "+format+" (repro: %s)",
			append(args, tableRepro("journal", cfg.Seed))...)
	}
	boot := func(mem *vmach.Memory, faults chaos.Injector, load bool) *kernel.Kernel {
		k := kernel.New(persistKernelConfig(mem, faults, cfg.MaxCycles))
		if load {
			k.Load(prog)
		}
		k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
		return k
	}

	calMem := vmach.NewMemory()
	calMem.EnablePersistence()
	cal := boot(calMem, chaos.OneShot{Point: chaos.PointStep, N: 1 << 62}, true)
	if err := cal.Run(); err != nil {
		return fail("calibration: %v", err)
	}
	span := cal.Steps()

	jlog, applied := prog.MustSymbol("jlog"), prog.MustSymbol("applied")
	va, vb := prog.MustSymbol("va"), prog.MustSymbol("vb")
	var repairs uint64
	salt := uint64(0x6A)
	if mode == "undo" {
		salt = 0x6B
	}
	for c := 0; c < cfg.Crashes; c++ {
		at := chaos.Derive(cfg.Seed, salt, uint64(c))%span + 1
		mem := vmach.NewMemory()
		mem.EnablePersistence()
		k := boot(mem, chaos.OneShot{Point: chaos.PointStep, N: at,
			Action: chaos.Action{CrashVolatile: true, Torn: true}}, true)
		if err := k.Run(); !errors.Is(err, kernel.ErrMachineCrash) {
			return fail("crash %d at step %d: run = %v", c, at, err)
		}
		// The crash already tore the volatile tier down; audit the NVM
		// image with the guest's own recovery rule before rebooting.
		seq := uint32(mem.NVPeek(jlog))
		xa, xb := uint32(mem.NVPeek(jlog+4)), uint32(mem.NVPeek(jlog+8))
		ck := uint32(mem.NVPeek(jlog + 12))
		if guest.JournalCksum(seq, xa, xb) == ck && seq == uint32(mem.NVPeek(applied))+1 {
			repairs++
		}
		k2 := boot(mem, nil, false)
		if err := k2.Run(); err != nil {
			return fail("crash %d at step %d: reboot run: %v", c, at, err)
		}
		a, b := mem.Peek(va), mem.Peek(vb)
		if int(a) != cfg.Target || int(b) != cfg.Target {
			return fail("crash %d at step %d: va=%d vb=%d after reboot, want %d", c, at, a, b, cfg.Target)
		}
	}
	return JournalRow{
		Scenario: "vmach/torn-sweep", Mode: mode, Seed: cfg.Seed,
		Crashes: cfg.Crashes, Ops: cfg.Target, Repairs: repairs,
		Outcome: "exact recovery",
	}, nil
}

// pstructPassage runs a persistent stack fault-free and reports the
// passage cost of one logged transaction per operation.
func pstructPassage(cfg JournalConfig, kind string, mode core.LogMode) (JournalRow, error) {
	arena := pstructBenchArena(kind, cfg.Ops)
	p := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles})
	p.EnablePersistence()
	var opErr error
	p.Go("main", func(e *uniproc.Env) {
		opErr = pstructBenchOps(e, arena, kind, mode, cfg.Ops, nil)
	})
	if err := p.Run(); err != nil {
		return JournalRow{}, fmt.Errorf("uniproc/%s-%s passage: %v (repro: %s)", kind, mode, err, tableRepro("journal", cfg.Seed))
	}
	if opErr != nil {
		return JournalRow{}, fmt.Errorf("uniproc/%s-%s passage: %v (repro: %s)", kind, mode, opErr, tableRepro("journal", cfg.Seed))
	}
	return JournalRow{
		Scenario: "uniproc/" + kind + "-passage", Mode: mode.String(), Ops: cfg.Ops,
		Cycles: p.Clock(), PersistOps: p.PersistOps(),
		Outcome: "all ops committed",
	}, nil
}

func pstructBenchArena(kind string, ops int) []uniproc.Word {
	if kind == "stack" {
		return make([]uniproc.Word, core.StackArenaWords(ops))
	}
	return make([]uniproc.Word, core.QueueArenaWords(ops))
}

// pstructBenchOps pushes/enqueues 1..ops, bumping committed (when non-nil)
// after each returned operation.
func pstructBenchOps(e *uniproc.Env, arena []uniproc.Word, kind string, mode core.LogMode, ops int, committed *int) error {
	if kind == "stack" {
		s := core.NewPersistentStack(arena, mode)
		s.Recover(e)
		for i := 1; i <= ops; i++ {
			if err := s.Push(e, uniproc.Word(i)); err != nil {
				return err
			}
			if committed != nil {
				*committed++
			}
		}
		return nil
	}
	q := core.NewPersistentQueue(arena, mode)
	q.Recover(e)
	for i := 1; i <= ops; i++ {
		if err := q.Enqueue(e, uniproc.Word(i)); err != nil {
			return err
		}
		if committed != nil {
			*committed++
		}
	}
	return nil
}

// pstructTornSweep crashes the stack workload at seeded persist-operation
// ordinals with torn write-backs and recovers on a fresh processor: the
// recovered stack must hold exactly 1..k for k = committed or committed+1
// — each transaction is all-or-nothing, committed ones never lost.
func pstructTornSweep(cfg JournalConfig, mode core.LogMode) (JournalRow, error) {
	fail := func(format string, args ...any) (JournalRow, error) {
		return JournalRow{}, fmt.Errorf("uniproc/stack-"+mode.String()+"-torn: "+format+" (repro: %s)",
			append(args, tableRepro("journal", cfg.Seed))...)
	}
	cal := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles})
	cal.EnablePersistence()
	cal.Go("main", func(e *uniproc.Env) {
		_ = pstructBenchOps(e, pstructBenchArena("stack", cfg.Ops), "stack", mode, cfg.Ops, nil)
	})
	if err := cal.Run(); err != nil {
		return fail("calibration: %v", err)
	}
	span := cal.PersistOps()

	salt := uint64(0x7A) + uint64(mode)
	var repairs uint64
	for c := 0; c < cfg.Crashes; c++ {
		at := chaos.Derive(cfg.Seed, salt, uint64(c))%span + 1
		arena := pstructBenchArena("stack", cfg.Ops)
		committed := 0
		p1 := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles,
			Faults: chaos.OneShot{Point: chaos.PointPersist, N: at,
				Action: chaos.Action{CrashVolatile: true, Torn: true}}})
		p1.EnablePersistence()
		p1.Go("main", func(e *uniproc.Env) {
			_ = pstructBenchOps(e, arena, "stack", mode, cfg.Ops, &committed)
		})
		if err := p1.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			return fail("crash %d at persist op %d: run = %v", c, at, err)
		}
		// Recover on a fresh processor from the arena words alone, then
		// drain the stack: it must pop k..1 for an admissible k.
		var vals []uniproc.Word
		var repaired bool
		p2 := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles})
		p2.EnablePersistence()
		p2.Go("main", func(e *uniproc.Env) {
			s := core.NewPersistentStack(arena, mode)
			repaired = s.Recover(e)
			for {
				v, ok := s.Pop(e)
				if !ok {
					break
				}
				vals = append(vals, v)
			}
		})
		if err := p2.Run(); err != nil {
			return fail("crash %d at persist op %d: recovery run: %v", c, at, err)
		}
		k := len(vals)
		if k != committed && k != committed+1 {
			return fail("crash %d at persist op %d: recovered %d elements with %d committed", c, at, k, committed)
		}
		for i, v := range vals {
			if int(v) != k-i {
				return fail("crash %d at persist op %d: recovered stack %v is not 1..%d", c, at, vals, k)
			}
		}
		if repaired {
			repairs++
		}
	}
	return JournalRow{
		Scenario: "uniproc/stack-torn-sweep", Mode: mode.String(), Seed: cfg.Seed,
		Crashes: cfg.Crashes, Ops: cfg.Ops, Repairs: repairs,
		Outcome: "all-or-nothing recovery",
	}, nil
}

// memfsJournalReplay appends through the journaled memfs, tears it down
// with one seeded torn crash, and remounts: every committed append must
// survive, at most the in-flight one may additionally appear, and the
// journal's metrics report the replay.
func memfsJournalReplay(cfg JournalConfig) (JournalRow, error) {
	fail := func(format string, args ...any) (JournalRow, error) {
		return JournalRow{}, fmt.Errorf("memfs/journal-replay: "+format+" (repro: %s)",
			append(args, tableRepro("journal", cfg.Seed))...)
	}
	newProc := func(faults chaos.Injector) *uniproc.Processor {
		p := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles, Faults: faults})
		p.EnablePersistence()
		return p
	}
	workload := func(j *journal.JFS, e *uniproc.Env, committed *int) error {
		if err := j.Create(e, "/log"); err != nil {
			return err
		}
		*committed = 0 // Create counts as op 0's setup, appends are the ops
		for i := 0; i < cfg.Ops; i++ {
			if err := j.Append(e, "/log", []byte{'x'}); err != nil {
				return err
			}
			*committed++
		}
		return nil
	}

	cal := newProc(nil)
	calArena := make([]uniproc.Word, 4096)
	var calErr error
	cal.Go("main", func(e *uniproc.Env) {
		j, err := journal.MountFS(e, cthreads.New(core.NewRAS()), calArena, journal.Options{})
		if err != nil {
			calErr = err
			return
		}
		n := 0
		calErr = workload(j, e, &n)
	})
	if err := cal.Run(); err != nil {
		return fail("calibration: %v", err)
	}
	if calErr != nil {
		return fail("calibration: %v", calErr)
	}
	span := cal.PersistOps()

	var written, replayed uint64
	var crashes int
	for c := 0; c < cfg.Crashes; c++ {
		at := chaos.Derive(cfg.Seed, 0x8A, uint64(c))%span + 1
		arena := make([]uniproc.Word, 4096)
		committed := 0
		reg1 := obs.NewRegistry()
		p1 := newProc(chaos.OneShot{Point: chaos.PointPersist, N: at,
			Action: chaos.Action{CrashVolatile: true, Torn: true}})
		p1.Go("main", func(e *uniproc.Env) {
			j, err := journal.MountFS(e, cthreads.New(core.NewRAS()), arena, journal.Options{Metrics: reg1})
			if err != nil {
				return
			}
			_ = workload(j, e, &committed)
		})
		if err := p1.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			return fail("crash %d at persist op %d: run = %v", c, at, err)
		}
		crashes++
		written += reg1.CounterValue("journal_records_written")

		reg2 := obs.NewRegistry()
		var got []byte
		var mountErr error
		p2 := newProc(nil)
		p2.Go("main", func(e *uniproc.Env) {
			j, err := journal.MountFS(e, cthreads.New(core.NewRAS()), arena, journal.Options{Metrics: reg2})
			if err != nil {
				mountErr = err
				return
			}
			got, _ = j.ReadFile(e, "/log")
		})
		if err := p2.Run(); err != nil {
			return fail("crash %d at persist op %d: remount run: %v", c, at, err)
		}
		if mountErr != nil {
			return fail("crash %d at persist op %d: remount: %v", c, at, mountErr)
		}
		replayed += reg2.CounterValue("journal_records_replayed")
		if committed > 0 && (len(got) < committed || len(got) > committed+1) {
			return fail("crash %d at persist op %d: /log has %d bytes with %d committed", c, at, len(got), committed)
		}
	}
	return JournalRow{
		Scenario: "memfs/journal-replay", Seed: cfg.Seed, Crashes: crashes,
		Ops: cfg.Ops, PersistOps: written, Repairs: replayed,
		Outcome: "committed appends survive",
	}, nil
}

// TableJournal runs the crash-consistent journaling validation (E24):
//
//   - vmach passage: the guest WAL transaction loop fault-free in redo
//     and undo modes — the fence-count difference is the passage cost
//     the logging discipline buys;
//   - vmach torn sweeps: both modes crashed with torn write-backs at
//     seeded ordinals, rebooted, exact recovery required;
//   - uniproc passage: core.PersistentStack and core.PersistentQueue in
//     both logging modes, persist ops and cycles per transaction;
//   - uniproc torn sweep: the stack crashed at seeded persist ordinals,
//     recovered cold, all-or-nothing transactionality required;
//   - memfs journal replay: seeded torn crashes over the journaled
//     filesystem, committed appends never lost, metrics reporting the
//     records written and replayed;
//   - mcheck walk: the exhaustive K=1 torn-crash enumeration of the redo
//     journal at every persist boundary, zero violations.
func TableJournal(cfg JournalConfig) ([]JournalRow, error) {
	if cfg.Crashes <= 0 {
		cfg.Crashes = 1
	}
	var rows []JournalRow

	for _, mode := range []string{"redo", "undo"} {
		row, err := vmachJournalPassage(cfg, mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, mode := range []string{"redo", "undo"} {
		row, err := vmachJournalTornSweep(cfg, mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, kind := range []string{"stack", "queue"} {
		for _, mode := range []core.LogMode{core.Redo, core.Undo} {
			row, err := pstructPassage(cfg, kind, mode)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	for _, mode := range []core.LogMode{core.Redo, core.Undo} {
		row, err := pstructTornSweep(cfg, mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	row, err := memfsJournalReplay(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	m, err := mcheck.BuildModel("journal", map[string]string{"mode": "redo", "torn": "1"})
	if err != nil {
		return nil, err
	}
	e := &mcheck.Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		return nil, err
	}
	if !rep.Passed() {
		return nil, fmt.Errorf("mcheck/journal-boundaries: %v (repro: %s)", rep, tableRepro("journal", cfg.Seed))
	}
	rows = append(rows, JournalRow{Scenario: "mcheck/journal-boundaries", Mode: "redo",
		Crashes: rep.Schedules - 1, Outcome: "exhaustive K=1 torn, zero violations"})
	return rows, nil
}

// FormatJournal renders the journaling table with per-operation costs.
func FormatJournal(rows []JournalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-6s %-10s %8s %6s %10s %10s %8s  %s\n",
		"Scenario", "Mode", "Seed", "Crashes", "Ops", "Cyc/op", "Persist/op", "Repairs", "Outcome")
	for _, r := range rows {
		seed := "-"
		if r.Seed != 0 {
			seed = fmt.Sprintf("%#x", r.Seed)
		}
		perOp := func(total uint64) string {
			if r.Ops == 0 || total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", float64(total)/float64(r.Ops))
		}
		fmt.Fprintf(&b, "%-26s %-6s %-10s %8d %6d %10s %10s %8d  %s\n",
			r.Scenario, r.Mode, seed, r.Crashes, r.Ops,
			perOp(r.Cycles), perOp(r.PersistOps), r.Repairs, r.Outcome)
	}
	return b.String()
}
