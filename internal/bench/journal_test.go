package bench

import (
	"strings"
	"testing"
)

func testJournalConfig(t *testing.T) JournalConfig {
	cfg := DefaultJournalConfig()
	cfg.Crashes = 6
	cfg.Target = 4
	cfg.Ops = 6
	if testing.Short() {
		cfg.Crashes = 2
	}
	return cfg
}

func TestTableJournal(t *testing.T) {
	rows, err := TableJournal(testJournalConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Both substrates must report both logging modes' passage costs, and
	// the cost asymmetry must point the right way: undo pays one more
	// fence per transaction than redo, so its persist-op count is higher.
	persistOps := map[string]uint64{}
	want := map[string]bool{
		"vmach/passage/redo":             false,
		"vmach/passage/undo":             false,
		"vmach/torn-sweep/redo":          false,
		"vmach/torn-sweep/undo":          false,
		"uniproc/stack-passage/redo":     false,
		"uniproc/stack-passage/undo":     false,
		"uniproc/queue-passage/redo":     false,
		"uniproc/queue-passage/undo":     false,
		"uniproc/stack-torn-sweep/redo":  false,
		"uniproc/stack-torn-sweep/undo":  false,
		"memfs/journal-replay/":          false,
		"mcheck/journal-boundaries/redo": false,
	}
	for _, r := range rows {
		key := r.Scenario + "/" + r.Mode
		want[key] = true
		if strings.Contains(r.Scenario, "passage") {
			if r.Cycles == 0 || r.PersistOps == 0 {
				t.Errorf("%s: passage row has no cost data: %+v", key, r)
			}
			persistOps[key] = r.PersistOps
		}
		if r.Scenario == "memfs/journal-replay" && r.Repairs == 0 {
			t.Errorf("memfs replay never replayed a record: %+v", r)
		}
		if r.Scenario == "mcheck/journal-boundaries" && r.Crashes == 0 {
			t.Error("journal boundary walk explored zero crash points")
		}
	}
	for sc, seen := range want {
		if !seen {
			t.Errorf("scenario %s missing from the table", sc)
		}
	}
	for _, pair := range [][2]string{
		{"vmach/passage/undo", "vmach/passage/redo"},
		{"uniproc/stack-passage/undo", "uniproc/stack-passage/redo"},
		{"uniproc/queue-passage/undo", "uniproc/queue-passage/redo"},
	} {
		if persistOps[pair[0]] <= persistOps[pair[1]] {
			t.Errorf("%s persist ops (%d) should exceed %s (%d): undo pays the extra commit fence",
				pair[0], persistOps[pair[0]], pair[1], persistOps[pair[1]])
		}
	}
	out := FormatJournal(rows)
	for _, s := range []string{"exact recovery", "all-or-nothing recovery", "zero violations"} {
		if !strings.Contains(out, s) {
			t.Errorf("formatted table missing %q:\n%s", s, out)
		}
	}
}

// The journaling table is replayable: the same master seed yields
// identical rows.
func TestTableJournalDeterministic(t *testing.T) {
	cfg := testJournalConfig(t)
	cfg.Crashes = 3
	r1, err := TableJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TableJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("row %d diverged:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}
