package bench

import (
	"repro/internal/obs"
	"repro/internal/uniproc"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// Observability plumbing for the harness. A table regenerates the paper's
// numbers by running many fresh substrate instances, each starting its
// virtual clock at zero with thread IDs from zero; exporting those runs
// into one trace requires rebasing every run onto a single monotone
// timeline. SetTraceSink installs the destination once, and each run the
// harness starts is advanced onto fresh time and thread ranges.

var (
	traceSink *obs.Rebase
	collect   *RunStats
)

// SetTraceSink routes the trace events of every subsequent harness run
// into s (nil disables tracing). Runs are rebased end-to-end so the merged
// stream keeps per-thread timestamps monotone.
func SetTraceSink(s obs.Sink) {
	if s == nil {
		traceSink = nil
		return
	}
	traceSink = obs.NewRebase(s)
}

// CollectStats accumulates every subsequent run's substrate counters into
// rs (nil disables collection). Callers bracket a table with it to get the
// cycle/restart/trap totals behind the table's microseconds.
func CollectStats(rs *RunStats) { collect = rs }

// RunStats aggregates substrate counters across the runs behind one table.
type RunStats struct {
	Runs        int    `json:"runs"`
	Cycles      uint64 `json:"cycles"`
	Restarts    uint64 `json:"restarts"`
	Preemptions uint64 `json:"preemptions"`
	EmulTraps   uint64 `json:"emul_traps"`
}

// attachKernel installs the harness trace sink (if any) on a fresh kernel,
// starting a new rebased segment.
func attachKernel(k *kernel.Kernel) {
	if traceSink != nil {
		traceSink.Advance()
		k.Tracer = traceSink
	}
}

// noteKernelRun folds a finished kernel run into the collector.
func noteKernelRun(k *kernel.Kernel) {
	if collect == nil {
		return
	}
	collect.Runs++
	collect.Cycles += k.M.Stats.Cycles
	collect.Restarts += k.Stats.Restarts
	collect.Preemptions += k.Stats.Preemptions
	collect.EmulTraps += k.Stats.EmulTraps
}

// attachSMP installs the harness trace sink (if any) on every CPU of a
// fresh SMP system, starting a new rebased segment. One segment covers
// the whole system: per-CPU streams stay distinguishable by their CPU
// stamp, which the Chrome exporter turns into per-CPU process groups.
func attachSMP(s *smp.System) {
	if traceSink != nil {
		traceSink.Advance()
		s.AttachTracer(traceSink)
	}
}

// noteSMPRun folds a finished SMP run — every CPU — into the collector.
func noteSMPRun(s *smp.System) {
	if collect == nil {
		return
	}
	collect.Runs++
	collect.Cycles += s.TotalCycles()
	for _, k := range s.CPUs {
		collect.Restarts += k.Stats.Restarts
		collect.Preemptions += k.Stats.Preemptions
		collect.EmulTraps += k.Stats.EmulTraps
	}
}

// attachProc installs the harness trace sink (if any) on a fresh
// uniprocessor, starting a new rebased segment.
func attachProc(p *uniproc.Processor) {
	if traceSink != nil {
		traceSink.Advance()
		p.Tracer = traceSink
	}
}

// noteProcRun folds a finished uniprocessor run into the collector. The
// runtime layer has no timer/suspension split, so every involuntary
// suspension counts as a preemption.
func noteProcRun(p *uniproc.Processor) {
	if collect == nil {
		return
	}
	collect.Runs++
	collect.Cycles += p.Clock()
	collect.Restarts += p.Stats.Restarts
	collect.Preemptions += p.Stats.Suspensions
	collect.EmulTraps += p.Stats.EmulTraps
}
