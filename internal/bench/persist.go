package bench

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/mcheck"
	"repro/internal/uniproc"
	"repro/internal/vmach"
	"repro/internal/vmach/kernel"
)

// PersistConfig parametrizes the persistence table (experiment E23): the
// crash-at-persist-boundary sweeps on both substrates, the under-flushed
// control, and the exhaustive flush-boundary walk.
type PersistConfig struct {
	Seed uint64
	// Crashes is the per-substrate number of seeded volatile-crash points.
	Crashes   int
	Workers   int
	Iters     int
	MaxCycles uint64
}

// DefaultPersistConfig returns the configuration `rasbench -table persist`
// and `make persist` run.
func DefaultPersistConfig() PersistConfig {
	return PersistConfig{Seed: 1, Crashes: 24, Workers: 2, Iters: 6}
}

// PersistRow is one scenario outcome of the persistence table.
type PersistRow struct {
	Scenario string
	Seed     uint64
	Crashes  int
	Repairs  uint64
	// MaxLoss is the largest number of committed increments a single
	// crash discarded; the well-flushed protocol bounds it at 1.
	MaxLoss int64
	Outcome string
}

// persistKernelConfig is the recovery-capable kernel configuration the
// vmach sweeps run under; mirror of the persistence test harness.
func persistKernelConfig(mem *vmach.Memory, faults chaos.Injector, maxCycles uint64) kernel.Config {
	return kernel.Config{
		Strategy:  &kernel.Designated{},
		CheckAt:   kernel.CheckAtResume,
		Quantum:   300,
		Memory:    mem,
		Faults:    faults,
		MaxCycles: maxCycles,
		Watchdog:  chaos.Watchdog{Policy: chaos.WatchdogExtend},
	}
}

// vmachPersistSweep crashes src at Crashes seeded step ordinals with the
// volatile tier discarded, then reboots the same binary over the surviving
// memory. For the well-flushed program every crash must lose at most one
// increment and every reboot must complete the exact workload; for the
// under-flushed control the sweep instead reports the worst loss it saw.
func vmachPersistSweep(cfg PersistConfig, scenario, src string, wellFlushed bool, salt uint64) (PersistRow, error) {
	prog := guest.Assemble(src)
	fail := func(format string, args ...any) (PersistRow, error) {
		return PersistRow{}, fmt.Errorf(scenario+": "+format+" (repro: %s)",
			append(args, tableRepro("persist", cfg.Seed))...)
	}
	boot := func(mem *vmach.Memory, faults chaos.Injector, load bool) *kernel.Kernel {
		return kernel.Boot(persistKernelConfig(mem, faults, cfg.MaxCycles),
			prog, "main", guest.StackTop(0), load)
	}

	// Calibrate the step span with an installed-but-inert injector (the
	// step-ordinal counter only advances while an injector is present).
	calMem := vmach.NewMemory()
	calMem.EnablePersistence()
	cal := boot(calMem, chaos.OneShot{Point: chaos.PointStep, N: 1 << 62}, true)
	if err := cal.Run(); err != nil {
		return fail("calibration: %v", err)
	}
	span := cal.Steps()

	counterAddr := prog.MustSymbol("counter")
	want := isa.Word(cfg.Workers * cfg.Iters)
	var repairs uint64
	var maxLoss int64
	for c := 0; c < cfg.Crashes; c++ {
		at := chaos.Derive(cfg.Seed, salt, uint64(c))%span + 1
		mem := vmach.NewMemory()
		mem.EnablePersistence()
		committed := 0
		k := boot(mem, chaos.OneShot{Point: chaos.PointStep, N: at,
			Action: chaos.Action{CrashVolatile: true}}, true)
		mem.Watch(counterAddr, func(old, new isa.Word) { committed++ })
		if err := k.Run(); !errors.Is(err, kernel.ErrMachineCrash) {
			return fail("crash %d at step %d: run = %v", c, at, err)
		}
		// The injected crash already discarded the volatile tier.
		c0 := mem.Peek(counterAddr)
		if loss := int64(committed) - int64(c0); loss > maxLoss {
			maxLoss = loss
		}
		if wellFlushed && int(c0) < committed-1 {
			return fail("crash %d at step %d: NVM counter %d but %d committed — lost more than one", c, at, c0, committed)
		}
		// Reboot the same binary over the surviving memory: no reload, the
		// image and the recovery state are both in NVM.
		k2 := boot(mem, nil, false)
		if err := k2.Run(); err != nil {
			return fail("crash %d at step %d: reboot run: %v", c, at, err)
		}
		if got := mem.Peek(counterAddr); got != c0+want {
			return fail("crash %d at step %d: counter after reboot = %d, want %d", c, at, got, c0+want)
		}
		if owner := mem.Peek(prog.MustSymbol("lock")) & 0xFFFF; owner != 0 {
			return fail("crash %d at step %d: lock still owned by %d after reboot", c, at, owner)
		}
		repairs += uint64(mem.Peek(prog.MustSymbol("repairs")))
	}
	outcome := "loss <= 1, exact recovery"
	if !wellFlushed {
		if maxLoss <= 1 {
			return fail("control kept its counter (max loss %d); the planted bug is gone", maxLoss)
		}
		outcome = "loss detected (control)"
	}
	return PersistRow{Scenario: scenario, Seed: cfg.Seed, Crashes: cfg.Crashes,
		Repairs: repairs, MaxLoss: maxLoss, Outcome: outcome}, nil
}

// uniprocPersistSweep is the runtime-layer sweep: core.PersistentMutex
// plus a caller-persisted counter, crashed at seeded memory-operation
// ordinals and recovered on a fresh processor from word contents alone.
func uniprocPersistSweep(cfg PersistConfig) (PersistRow, error) {
	fail := func(format string, args ...any) (PersistRow, error) {
		return PersistRow{}, fmt.Errorf("uniproc/crash-sweep: "+format+" (repro: %s)",
			append(args, tableRepro("persist", cfg.Seed))...)
	}
	workload := func(mu *core.PersistentMutex, counter *core.Word, committed *int) func(*uniproc.Env) {
		return func(e *uniproc.Env) {
			for i := 0; i < cfg.Iters; i++ {
				mu.Acquire(e)
				v := e.Load(counter)
				e.Store(counter, v+1)
				*committed++
				e.Flush(counter)
				e.Fence()
				mu.Release(e)
			}
		}
	}
	newProc := func(faults chaos.Injector) *uniproc.Processor {
		p := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles, Faults: faults})
		p.EnablePersistence()
		return p
	}

	cal := newProc(nil)
	calMu, calCounter, calN := core.NewPersistentMutex(), core.Word(0), 0
	cal.Go("main", func(e *uniproc.Env) {
		for w := 0; w < cfg.Workers; w++ {
			e.Fork("worker", workload(calMu, &calCounter, &calN))
		}
	})
	if err := cal.Run(); err != nil {
		return fail("calibration: %v", err)
	}
	span := cal.MemOps()

	var repairs uint64
	var maxLoss int64
	for c := 0; c < cfg.Crashes; c++ {
		at := chaos.Derive(cfg.Seed, 0x5A, uint64(c))%span + 1
		mu := core.NewPersistentMutex()
		var counter core.Word
		committed := 0
		p1 := newProc(chaos.OneShot{Point: chaos.PointMemOp, N: at,
			Action: chaos.Action{CrashVolatile: true}})
		p1.Go("main", func(e *uniproc.Env) {
			for w := 0; w < cfg.Workers; w++ {
				e.Fork("worker", workload(mu, &counter, &committed))
			}
		})
		if err := p1.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			return fail("crash %d at memop %d: run = %v", c, at, err)
		}
		c0 := counter
		if loss := int64(committed) - int64(c0); loss > maxLoss {
			maxLoss = loss
		}
		if int(c0) < committed-1 {
			return fail("crash %d at memop %d: NVM counter %d but %d committed", c, at, c0, committed)
		}
		p2 := newProc(nil)
		p2.Go("main", func(e *uniproc.Env) {
			mu.Recover(e)
			for w := 0; w < cfg.Workers; w++ {
				e.Fork("worker", workload(mu, &counter, &committed))
			}
		})
		if err := p2.Run(); err != nil {
			return fail("crash %d at memop %d: reboot run: %v", c, at, err)
		}
		if want := c0 + core.Word(cfg.Workers*cfg.Iters); counter != want {
			return fail("crash %d at memop %d: counter after reboot = %d, want %d", c, at, counter, want)
		}
		repairs += p2.Stats.Repairs
	}
	return PersistRow{Scenario: "uniproc/crash-sweep", Seed: cfg.Seed, Crashes: cfg.Crashes,
		Repairs: repairs, MaxLoss: maxLoss, Outcome: "loss <= 1, exact recovery"}, nil
}

// TablePersist runs the NVRAM persistence validation (E23):
//
//   - vmach crash sweep: the persistent counter guest crashed (volatile
//     tier discarded) at seeded instruction ordinals, rebooted over the
//     surviving NVM, bounded-loss and exact-recovery checked per crash;
//   - vmach under-flush control: the same sweep over the deliberately
//     under-flushed variant must observe a loss greater than one;
//   - uniproc crash sweep: core.PersistentMutex with a caller-persisted
//     counter, same protocol at memory-operation granularity;
//   - flush-boundary walk: the model checker's exhaustive K=1 enumeration
//     of a volatile crash at EVERY persist-operation boundary, which must
//     pass with zero violations.
//
// Any failure is returned as an error naming the seed that reproduces it.
func TablePersist(cfg PersistConfig) ([]PersistRow, error) {
	if cfg.Crashes <= 0 {
		cfg.Crashes = 1
	}
	var rows []PersistRow

	row, err := vmachPersistSweep(cfg, "vmach/crash-sweep",
		guest.PersistentCounterProgram(cfg.Workers, cfg.Iters), true, 0x58)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = vmachPersistSweep(cfg, "vmach/underflush-control",
		guest.UnderflushedCounterProgram(cfg.Workers, cfg.Iters), false, 0x59)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = uniprocPersistSweep(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Exhaustive flush-boundary walk via the model checker.
	m, err := mcheck.BuildModel("persist", map[string]string{"workers": "1", "iters": "2"})
	if err != nil {
		return nil, err
	}
	e := &mcheck.Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		return nil, err
	}
	if !rep.Passed() {
		return nil, fmt.Errorf("mcheck/flush-boundaries: %v (repro: %s)", rep, tableRepro("persist", cfg.Seed))
	}
	rows = append(rows, PersistRow{Scenario: "mcheck/flush-boundaries",
		Crashes: rep.Schedules - 1, MaxLoss: 0,
		Outcome: "exhaustive K=1, zero violations"})
	return rows, nil
}

// FormatPersist renders the persistence table.
func FormatPersist(rows []PersistRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-10s %8s %8s %8s  %s\n",
		"Scenario", "Seed", "Crashes", "Repairs", "MaxLoss", "Outcome")
	for _, r := range rows {
		seed := "-"
		if r.Seed != 0 {
			seed = fmt.Sprintf("%#x", r.Seed)
		}
		fmt.Fprintf(&b, "%-26s %-10s %8d %8d %8d  %s\n",
			r.Scenario, seed, r.Crashes, r.Repairs, r.MaxLoss, r.Outcome)
	}
	return b.String()
}
