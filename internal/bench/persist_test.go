package bench

import (
	"strings"
	"testing"
)

func testPersistConfig(t *testing.T) PersistConfig {
	cfg := DefaultPersistConfig()
	cfg.Crashes = 6
	cfg.Workers = 2
	cfg.Iters = 3
	if testing.Short() {
		cfg.Crashes = 2
	}
	return cfg
}

func TestTablePersist(t *testing.T) {
	rows, err := TablePersist(testPersistConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"vmach/crash-sweep":        false,
		"vmach/underflush-control": false,
		"uniproc/crash-sweep":      false,
		"mcheck/flush-boundaries":  false,
	}
	for _, r := range rows {
		want[r.Scenario] = true
		switch r.Scenario {
		case "vmach/crash-sweep", "uniproc/crash-sweep":
			if r.MaxLoss > 1 {
				t.Errorf("%s: max loss %d exceeds the protocol bound of 1", r.Scenario, r.MaxLoss)
			}
		case "vmach/underflush-control":
			if r.MaxLoss <= 1 {
				t.Errorf("underflush control lost only %d increments; the planted bug is gone", r.MaxLoss)
			}
		case "mcheck/flush-boundaries":
			if r.Crashes == 0 {
				t.Error("flush-boundary walk explored zero crash points")
			}
		}
	}
	for sc, seen := range want {
		if !seen {
			t.Errorf("scenario %s missing from the table", sc)
		}
	}
	out := FormatPersist(rows)
	for _, s := range []string{"loss <= 1", "loss detected (control)", "zero violations"} {
		if !strings.Contains(out, s) {
			t.Errorf("formatted table missing %q:\n%s", s, out)
		}
	}
}

// The persistence table is replayable: the same master seed yields
// identical rows.
func TestTablePersistDeterministic(t *testing.T) {
	cfg := testPersistConfig(t)
	cfg.Crashes = 3
	r1, err := TablePersist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TablePersist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("row %d diverged:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}
