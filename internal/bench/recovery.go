package bench

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/uniproc"
	"repro/internal/vmach/kernel"
)

// RecoveryConfig parametrizes the recovery table: the thread-kill sweeps,
// the checkpoint replay, and the crash-restore scenarios.
type RecoveryConfig struct {
	Seed uint64
	// Schedules is the per-leg sweep size. The uniproc sweep runs
	// 2*Schedules and each vmach strategy runs Schedules, so the default
	// of 256 gives 1024 kill schedules in all.
	Schedules int
	Workers   int
	Iters     int
	// Crashes is how many independent crash-restore scenarios run.
	Crashes   int
	MaxCycles uint64
}

// DefaultRecoveryConfig returns the configuration `rasbench -table
// recovery` and `make recovery` run.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{Seed: 1, Schedules: 256, Workers: 3, Iters: 30, Crashes: 8}
}

// RecoveryRow is one scenario outcome of the recovery table.
type RecoveryRow struct {
	Scenario  string
	Seed      uint64
	Schedules int
	Kills     uint64
	Repairs   uint64
	Outcome   string
}

// rmeWatch validates the recoverable-counter guest program's lock
// discipline through memory watchpoints — the vmach analogue of
// core.RMEChecker. It sees every committed store to the lock and counter
// words and checks the RME invariants: increments happen only under the
// lock, a held lock changes hands only when the previous owner is dead,
// and every steal bumps the epoch by exactly one.
type rmeWatch struct {
	k          *kernel.Kernel
	lockAddr   uint32
	violations []string
	increments uint64
	steals     uint64
}

func (w *rmeWatch) violate(format string, args ...any) {
	if len(w.violations) < 8 {
		w.violations = append(w.violations, fmt.Sprintf(format, args...))
	}
}

func newRMEWatch(cfg kernel.Config, workers, iters int) *rmeWatch {
	prog := guest.Assemble(guest.RecoverableCounterProgram(workers, iters))
	k := kernel.New(cfg)
	k.Load(prog)
	k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))

	w := &rmeWatch{k: k, lockAddr: prog.MustSymbol("lock")}
	storer := func() int {
		if cur := k.Current(); cur != nil {
			return cur.ID
		}
		return -1
	}
	dead := func(tid int) bool {
		if tid < 0 || tid >= len(k.Threads()) {
			return true
		}
		switch k.Threads()[tid].State {
		case kernel.StateDone, kernel.StateFaulted, kernel.StateKilled:
			return true
		}
		return false
	}
	k.M.Mem.Watch(w.lockAddr, func(old, new isa.Word) {
		me := storer()
		oldOwner, newOwner := int(old&0xFFFF), int(new&0xFFFF)
		oldEpoch, newEpoch := old>>16, new>>16
		switch {
		case oldOwner == 0 && newOwner != 0:
			if newOwner != me+1 || newEpoch != oldEpoch {
				w.violate("bad acquire %#x->%#x by t%d", old, new, me)
			}
		case oldOwner != 0 && newOwner == 0:
			if oldOwner != me+1 || newEpoch != oldEpoch {
				w.violate("bad release %#x->%#x by t%d", old, new, me)
			}
		case oldOwner != 0 && newOwner != 0:
			w.steals++
			if newOwner != me+1 || newEpoch != oldEpoch+1 {
				w.violate("bad steal %#x->%#x by t%d", old, new, me)
			}
			if !dead(oldOwner - 1) {
				w.violate("t%d stole from live t%d — ME breach", me, oldOwner-1)
			}
		}
	})
	k.M.Mem.Watch(prog.MustSymbol("counter"), func(old, new isa.Word) {
		w.increments++
		lock := k.M.Mem.Peek(w.lockAddr)
		if me := storer(); int(lock&0xFFFF) != me+1 || new != old+1 {
			w.violate("t%d incremented %d->%d with lock %#x", me, old, new, lock)
		}
	})
	return w
}

// verify reports the first problem with a finished run, or nil.
func (w *rmeWatch) verify(runErr error) error {
	if runErr != nil {
		return runErr
	}
	if len(w.violations) > 0 {
		return errors.New(w.violations[0])
	}
	for _, th := range w.k.Threads() {
		switch th.State {
		case kernel.StateDone, kernel.StateKilled:
		default:
			return fmt.Errorf("thread %d stuck in state %v", th.ID, th.State)
		}
	}
	if got := uint64(w.k.M.Mem.Peek(w.lockAddr + 4)); got != w.increments {
		return fmt.Errorf("counter %d but %d watched increments", got, w.increments)
	}
	return nil
}

// TableRecovery runs the recoverable-mutual-exclusion validation:
//
//   - uniproc kill sweep: core.RecoverableMutex under seeded thread-kill
//     schedules — the RMEChecker must record zero violations, the counter
//     must equal its Go-side shadow exactly, and every surviving thread
//     must finish;
//   - vmach kill sweeps: the guest owner+epoch lock on the ISA-level
//     kernel, one sweep per recovery strategy, with watchpoint-validated
//     lock-word transitions;
//   - checkpoint replay: a run cut at deterministic points, carried
//     through the binary wire format, and replayed to bit-identical final
//     state;
//   - crash restore: injected whole-machine crashes checkpointed where
//     they struck and replayed to the uncrashed run's exact final state.
//
// Any failure is returned as an error naming the seed that reproduces it.
func TableRecovery(cfg RecoveryConfig) ([]RecoveryRow, error) {
	if cfg.Schedules <= 0 {
		cfg.Schedules = 1
	}
	if cfg.Crashes <= 0 {
		cfg.Crashes = 1
	}
	var rows []RecoveryRow

	// Uniproc kill sweep.
	{
		run := func(faults chaos.Injector) (*uniproc.Processor, *core.RecoverableMutex, core.Word, uint64, error) {
			p := uniproc.New(uniproc.Config{Quantum: 2000, MaxCycles: cfg.MaxCycles, Faults: faults})
			m := core.NewRecoverableMutex()
			m.Checker = core.NewRMEChecker()
			var counter core.Word
			var gocount uint64
			for i := 0; i < cfg.Workers; i++ {
				p.Go("worker", func(e *uniproc.Env) {
					for it := 0; it < cfg.Iters; it++ {
						m.Acquire(e)
						v := e.Load(&counter)
						e.ChargeALU(1)
						gocount++
						e.Store(&counter, v+1)
						m.Release(e)
					}
				})
			}
			err := p.Run()
			return p, m, counter, gocount, err
		}
		ref, _, _, _, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("uniproc/kill-sweep: reference: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
		}
		span := ref.MemOps()
		schedules := 2 * cfg.Schedules
		var kills, repairs uint64
		for s := 0; s < schedules; s++ {
			n := 1 + int(chaos.Derive(cfg.Seed, 0x55, uint64(s))%3)
			shots := make([]chaos.Injector, 0, n)
			for i := 0; i < n; i++ {
				at := chaos.Derive(cfg.Seed, 0x55, uint64(s), uint64(i))%span + 1
				shots = append(shots, chaos.OneShot{Point: chaos.PointMemOp, N: at, Action: chaos.Action{Kill: true}})
			}
			p, m, counter, gocount, err := run(chaos.Compose(shots...))
			if err != nil {
				return nil, fmt.Errorf("uniproc/kill-sweep: schedule %d (seed %#x): %v (repro: %s)", s, cfg.Seed, err, tableRepro("recovery", cfg.Seed))
			}
			if v := m.Checker.Violations(); len(v) != 0 {
				return nil, fmt.Errorf("uniproc/kill-sweep: schedule %d (seed %#x): %s (repro: %s)", s, cfg.Seed, v[0], tableRepro("recovery", cfg.Seed))
			}
			if uint64(counter) != gocount {
				return nil, fmt.Errorf("uniproc/kill-sweep: schedule %d (seed %#x): counter=%d shadow=%d (repro: %s)",
					s, cfg.Seed, counter, gocount, tableRepro("recovery", cfg.Seed))
			}
			for _, th := range p.Threads() {
				if !th.Done() {
					return nil, fmt.Errorf("uniproc/kill-sweep: schedule %d (seed %#x): stuck acquirer %v (repro: %s)", s, cfg.Seed, th, tableRepro("recovery", cfg.Seed))
				}
			}
			kills += p.Stats.Kills
			repairs += m.Checker.Steals()
		}
		rows = append(rows, RecoveryRow{
			Scenario: "uniproc/kill-sweep", Seed: cfg.Seed, Schedules: schedules,
			Kills: kills, Repairs: repairs, Outcome: "ME held, exact shadow",
		})
	}

	// Vmach kill sweeps, one per strategy.
	for _, strat := range []func() kernel.Strategy{
		func() kernel.Strategy { return &kernel.Registration{} },
		func() kernel.Strategy { return &kernel.Designated{} },
	} {
		name := "vmach/kill-sweep/" + strat().Name()
		mk := func(faults chaos.Injector) *rmeWatch {
			return newRMEWatch(kernel.Config{
				Strategy: strat(), Quantum: 250, MaxCycles: cfg.MaxCycles, Faults: faults,
			}, cfg.Workers, cfg.Iters)
		}
		ref := mk(chaos.NewKillPlan(cfg.Seed, 0)) // injects nothing, counts steps
		if err := ref.verify(ref.k.Run()); err != nil {
			return nil, fmt.Errorf("%s: reference: %v (repro: %s)", name, err, tableRepro("recovery", cfg.Seed))
		}
		span := ref.k.Steps()
		var kills, repairs uint64
		for s := 0; s < cfg.Schedules; s++ {
			n := 1 + int(chaos.Derive(cfg.Seed, 0x56, uint64(s))%3)
			shots := make([]chaos.Injector, 0, n)
			for i := 0; i < n; i++ {
				at := chaos.Derive(cfg.Seed, 0x56, uint64(s), uint64(i))%span + 1
				shots = append(shots, chaos.OneShot{Point: chaos.PointStep, N: at, Action: chaos.Action{Kill: true}})
			}
			w := mk(chaos.Compose(shots...))
			if err := w.verify(w.k.Run()); err != nil {
				return nil, fmt.Errorf("%s: schedule %d (seed %#x): %v (repro: %s)", name, s, cfg.Seed, err, tableRepro("recovery", cfg.Seed))
			}
			kills += w.k.Stats.Kills
			repairs += w.steals
		}
		rows = append(rows, RecoveryRow{
			Scenario: name, Seed: cfg.Seed, Schedules: cfg.Schedules,
			Kills: kills, Repairs: repairs, Outcome: "ME held, watchpoints clean",
		})
	}

	// Checkpoint replay at deterministic cuts.
	{
		ref := newRMEWatch(kernel.Config{Strategy: &kernel.Registration{}, Quantum: 250, MaxCycles: cfg.MaxCycles},
			cfg.Workers, cfg.Iters)
		if err := ref.verify(ref.k.Run()); err != nil {
			return nil, fmt.Errorf("vmach/checkpoint-replay: reference: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
		}
		total := ref.k.M.Stats.Instructions
		cuts := 0
		for _, frac := range []uint64{1, 2, 3} {
			cut := total * frac / 4
			w := newRMEWatch(kernel.Config{Strategy: &kernel.Registration{}, Quantum: 250, MaxCycles: cfg.MaxCycles},
				cfg.Workers, cfg.Iters)
			if fin, err := w.k.RunSteps(cut); fin {
				return nil, fmt.Errorf("vmach/checkpoint-replay: cut %d finished early (%v) (repro: %s)", cut, err, tableRepro("recovery", cfg.Seed))
			}
			enc := w.k.Capture().Encode()
			snap, err := kernel.DecodeSnapshot(enc)
			if err != nil {
				return nil, fmt.Errorf("vmach/checkpoint-replay: decode: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
			}
			if !bytes.Equal(enc, snap.Encode()) {
				return nil, fmt.Errorf("vmach/checkpoint-replay: re-encoding not bit-identical (repro: %s)", tableRepro("recovery", cfg.Seed))
			}
			k2, err := kernel.Restore(kernel.Config{Strategy: &kernel.Registration{}, Quantum: 250, MaxCycles: cfg.MaxCycles}, snap)
			if err != nil {
				return nil, fmt.Errorf("vmach/checkpoint-replay: restore: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
			}
			if err := k2.Run(); err != nil {
				return nil, fmt.Errorf("vmach/checkpoint-replay: replay: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
			}
			if k2.Stats != ref.k.Stats || k2.M.Stats != ref.k.M.Stats {
				return nil, fmt.Errorf("vmach/checkpoint-replay: cut %d diverged from the straight run (repro: %s)", cut, tableRepro("recovery", cfg.Seed))
			}
			cuts++
		}
		rows = append(rows, RecoveryRow{
			Scenario: "vmach/checkpoint-replay", Schedules: cuts, Outcome: "bit-identical replay",
		})
	}

	// Crash restore: checkpoint where the crash struck, replay the rest.
	{
		mkCfg := func(faults chaos.Injector) kernel.Config {
			return kernel.Config{Strategy: &kernel.Registration{}, Quantum: 250, MaxCycles: cfg.MaxCycles, Faults: faults}
		}
		ref := newRMEWatch(mkCfg(chaos.NewKillPlan(cfg.Seed, 0)), cfg.Workers, cfg.Iters)
		if err := ref.verify(ref.k.Run()); err != nil {
			return nil, fmt.Errorf("vmach/crash-restore: reference: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
		}
		span := ref.k.Steps()
		for c := 0; c < cfg.Crashes; c++ {
			at := chaos.Derive(cfg.Seed, 0x57, uint64(c))%span + 1
			w := newRMEWatch(mkCfg(chaos.OneShot{Point: chaos.PointStep, N: at, Action: chaos.Action{Crash: true}}),
				cfg.Workers, cfg.Iters)
			if err := w.k.Run(); !errors.Is(err, kernel.ErrMachineCrash) {
				return nil, fmt.Errorf("vmach/crash-restore: crash %d at step %d: run = %v (repro: %s)", c, at, err, tableRepro("recovery", cfg.Seed))
			}
			snap, err := kernel.DecodeSnapshot(w.k.Capture().Encode())
			if err != nil {
				return nil, fmt.Errorf("vmach/crash-restore: decode: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
			}
			k2, err := kernel.Restore(mkCfg(nil), snap)
			if err != nil {
				return nil, fmt.Errorf("vmach/crash-restore: restore: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
			}
			if err := k2.Run(); err != nil {
				return nil, fmt.Errorf("vmach/crash-restore: replay: %v (repro: %s)", err, tableRepro("recovery", cfg.Seed))
			}
			// The crash injection itself is the only accounting difference
			// from the uncrashed reference.
			s2, sr := k2.Stats, ref.k.Stats
			s2.Injected, sr.Injected = 0, 0
			if s2 != sr || k2.M.Stats != ref.k.M.Stats {
				return nil, fmt.Errorf("vmach/crash-restore: crash %d at step %d: replay diverged (repro: %s)", c, at, tableRepro("recovery", cfg.Seed))
			}
		}
		rows = append(rows, RecoveryRow{
			Scenario: "vmach/crash-restore", Seed: cfg.Seed, Schedules: cfg.Crashes,
			Outcome: "replayed to uncrashed state",
		})
	}
	return rows, nil
}

// FormatRecovery renders the recovery table.
func FormatRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-10s %9s %7s %8s  %s\n",
		"Scenario", "Seed", "Schedules", "Kills", "Repairs", "Outcome")
	for _, r := range rows {
		seed := "-"
		if r.Seed != 0 {
			seed = fmt.Sprintf("%#x", r.Seed)
		}
		fmt.Fprintf(&b, "%-28s %-10s %9d %7d %8d  %s\n",
			r.Scenario, seed, r.Schedules, r.Kills, r.Repairs, r.Outcome)
	}
	return b.String()
}
