package bench

import (
	"strings"
	"testing"
)

func testRecoveryConfig(t *testing.T) RecoveryConfig {
	cfg := DefaultRecoveryConfig()
	cfg.Schedules = 30
	cfg.Crashes = 3
	cfg.Iters = 20
	if testing.Short() {
		cfg.Schedules = 8
		cfg.Crashes = 1
	}
	return cfg
}

func TestTableRecovery(t *testing.T) {
	rows, err := TableRecovery(testRecoveryConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"uniproc/kill-sweep":            false,
		"vmach/kill-sweep/registration": false,
		"vmach/kill-sweep/designated":   false,
		"vmach/checkpoint-replay":       false,
		"vmach/crash-restore":           false,
	}
	var kills, repairs uint64
	for _, r := range rows {
		want[r.Scenario] = true
		kills += r.Kills
		repairs += r.Repairs
	}
	for sc, seen := range want {
		if !seen {
			t.Errorf("scenario %s missing from the table", sc)
		}
	}
	if kills == 0 || repairs == 0 {
		t.Errorf("sweep was toothless: %d kills, %d repairs", kills, repairs)
	}
	out := FormatRecovery(rows)
	for _, s := range []string{"bit-identical replay", "uncrashed state", "ME held"} {
		if !strings.Contains(out, s) {
			t.Errorf("formatted table missing %q:\n%s", s, out)
		}
	}
}

// The recovery table is replayable: the same master seed yields identical
// rows.
func TestTableRecoveryDeterministic(t *testing.T) {
	cfg := testRecoveryConfig(t)
	cfg.Schedules = 10
	r1, err := TableRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TableRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("row %d diverged:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}
