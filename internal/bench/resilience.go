package bench

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/mcheck"
	"repro/internal/resilience"
)

// ResilienceConfig parametrizes the crash-restart supervision table
// (experiment E27): the seeded vmach 1000-crash campaign, the uniproc
// exactly-once server campaign, the forced crash-loop demotion cycle,
// and the exhaustive supervisor-in-the-loop model walk.
type ResilienceConfig struct {
	Seed uint64
	// Crashes is the planned crash-boot count of the vmach campaign.
	Crashes int
	// Workers and Iters shape the vmach resilient-server guest.
	Workers, Iters int
	// Clients and Requests shape the uniproc server campaign; its plan
	// schedules ServerCrashes crash boots.
	Clients, Requests, ServerCrashes int
	MaxCycles                        uint64
}

// DefaultResilienceConfig returns the configuration
// `rasbench -table resilience` and `make resilience` run.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{Seed: 1, Crashes: 1000, Workers: 2, Iters: 700,
		Clients: 3, Requests: 40, ServerCrashes: 120}
}

// ResilienceRow is one campaign outcome.
type ResilienceRow struct {
	Scenario string
	Seed     uint64
	// Plan is the campaign's crash schedule, replayable verbatim with
	// `rasvm -demo resilience -plan '...'`.
	Plan string
	// Boots/Crashes/RecCrashes are machine lives consumed, lives ending
	// in an injected crash, and crashes that landed inside recovery.
	Boots, Crashes, RecCrashes int
	// Demotions and Degraded count crash-loop demotions and the clean
	// degraded (read-only) lives served while demoted.
	Demotions, Degraded int
	// Shed and Timeouts are the server-side refusals and client deadline
	// expiries (uniproc rows; 0 on the ISA substrate).
	Shed, Timeouts uint64
	// Avail is UpCycles/(UpCycles+BackoffTotal); RecP95 the 95th
	// percentile of completed recoveries in cycles.
	Avail   float64
	RecP95  uint64
	Outcome string
}

// vmachResilienceCampaign is the headline row: the resilient-server
// guest on the ISA machine, supervised through cfg.Crashes planned
// crash boots — mixed clean, volatile, and torn, landing everywhere
// from inside recovery to mid-workload — every reboot warm over the
// surviving NVM, with the exactly-once audit at the end.
func vmachResilienceCampaign(cfg ResilienceConfig) (ResilienceRow, error) {
	fail := func(format string, args ...any) (ResilienceRow, error) {
		return ResilienceRow{}, fmt.Errorf("vmach/crash-campaign: "+format+" (repro: %s)",
			append(args, tableRepro("resilience", cfg.Seed))...)
	}
	w := resilience.NewVMWorld(resilience.VMWorldConfig{
		Workers: cfg.Workers, Iters: cfg.Iters, MaxCycles: cfg.MaxCycles})
	span, err := w.CalibrateSpan()
	if err != nil {
		return fail("calibration: %v", err)
	}
	// Scatter the crashes over a window of 3x the per-crash fair share
	// of the clean run: recovery is ~a third of that, so boots make real
	// progress between crashes yet the workload is still unfinished when
	// the last planned crash lands and completes in the clean tail.
	window := 3*span/uint64(cfg.Crashes) + 1
	plan := &chaos.CrashPlan{Seed: cfg.Seed, Point: chaos.PointStep,
		Span: window, Crashes: cfg.Crashes, WClean: 1, WVolatile: 2, WTorn: 1}
	out, err := resilience.Supervise(w, resilience.Config{
		Boots:      plan.Boot,
		MaxBoots:   cfg.Crashes + 1024,
		CrashLoopK: 4,
		JitterSeed: cfg.Seed,
	})
	if err != nil {
		return fail("%v", err)
	}
	if !out.Completed {
		return fail("campaign did not complete: %v", out)
	}
	if out.Crashes < cfg.Crashes*9/10 {
		return fail("only %d of %d planned crashes landed — the span no longer bites", out.Crashes, cfg.Crashes)
	}
	if out.RecoveryCrashes == 0 {
		return fail("no crash landed inside recovery — the campaign no longer covers the reboot loop")
	}
	return ResilienceRow{Scenario: "vmach/crash-campaign", Seed: cfg.Seed,
		Plan: plan.String(), Boots: out.Boots, Crashes: out.Crashes,
		RecCrashes: out.RecoveryCrashes, Demotions: out.Demotions,
		Degraded: out.DegradedBoots, Avail: out.Availability(),
		RecP95:  out.RecoveryP95,
		Outcome: fmt.Sprintf("exactly-once, %d repairs", w.Repairs())}, nil
}

// uniprocServerCampaign runs the uxserver.ResilientServer under the
// supervisor: retrying clients with deadlines and capped backoff,
// admission control, crashes at seeded persist ordinals, dedup across
// reboots — the acked-implies-durable audit after every boot and exact
// exactly-once accounting at the end.
func uniprocServerCampaign(cfg ResilienceConfig) (ResilienceRow, error) {
	fail := func(format string, args ...any) (ResilienceRow, error) {
		return ResilienceRow{}, fmt.Errorf("uniproc/server-campaign: "+format+" (repro: %s)",
			append(args, tableRepro("resilience", cfg.Seed))...)
	}
	swc := resilience.ServerWorldConfig{Clients: cfg.Clients, Iters: cfg.Requests,
		Shards: 2, MaxCycles: cfg.MaxCycles, JitterSeed: cfg.Seed}
	// Calibrate the persist-ordinal span on a scratch world.
	cal := resilience.NewServerWorld(swc)
	rep := cal.Boot(0, nil, false)
	if rep.Err != nil {
		return fail("calibration: %v", rep.Err)
	}
	window := 2*rep.PersistOps/uint64(cfg.ServerCrashes) + 1
	plan := &chaos.CrashPlan{Seed: cfg.Seed, Point: chaos.PointPersist,
		Span: window, Crashes: cfg.ServerCrashes, WClean: 1, WVolatile: 2, WTorn: 1}
	w := resilience.NewServerWorld(swc)
	out, err := resilience.Supervise(w, resilience.Config{
		Boots:      plan.Boot,
		MaxBoots:   cfg.ServerCrashes + 256,
		JitterSeed: cfg.Seed,
	})
	if err != nil {
		return fail("%v", err)
	}
	if !out.Completed {
		return fail("campaign did not complete: %v", out)
	}
	st := w.Stats()
	return ResilienceRow{Scenario: "uniproc/server-campaign", Seed: cfg.Seed,
		Plan: plan.String(), Boots: out.Boots, Crashes: out.Crashes,
		RecCrashes: out.RecoveryCrashes, Demotions: out.Demotions,
		Degraded: out.DegradedBoots, Shed: st.Shed, Timeouts: st.Timeouts,
		Avail: out.Availability(), RecP95: out.RecoveryP95,
		Outcome: fmt.Sprintf("exactly-once, %d dedup hits", st.DupAcks+st.ReplaySkips)}, nil
}

// uniprocDegradedCycle forces the full availability-policy cycle: K
// consecutive crashes inside recovery (persist ordinal 1 is recovery's
// own counter flush) demote the server to read-only mode, the degraded
// boots serve reads and shed the probe mutation, hysteresis re-promotes,
// and the workload then completes exactly-once.
func uniprocDegradedCycle(cfg ResilienceConfig) (ResilienceRow, error) {
	fail := func(format string, args ...any) (ResilienceRow, error) {
		return ResilienceRow{}, fmt.Errorf("uniproc/degraded-cycle: "+format+" (repro: %s)",
			append(args, tableRepro("resilience", cfg.Seed))...)
	}
	const loopK = 3
	w := resilience.NewServerWorld(resilience.ServerWorldConfig{
		Clients: 2, Iters: 6, MaxCycles: cfg.MaxCycles, JitterSeed: cfg.Seed})
	out, err := resilience.Supervise(w, resilience.Config{
		Boots: func(boot int) chaos.Injector {
			if boot >= loopK {
				return nil
			}
			return chaos.OneShot{Point: chaos.PointPersist, N: 1,
				Action: chaos.Action{CrashVolatile: true}}
		},
		CrashLoopK: loopK, RepromoteAfter: 2, JitterSeed: cfg.Seed,
	})
	if err != nil {
		return fail("%v", err)
	}
	if out.Demotions != 1 {
		return fail("demotions = %d, want 1 (the forced crash loop must demote)", out.Demotions)
	}
	if out.DegradedBoots < 2 {
		return fail("degraded boots = %d, want >= 2 (hysteresis must hold before re-promotion)", out.DegradedBoots)
	}
	if !out.Completed {
		return fail("did not complete after re-promotion: %v", out)
	}
	st := w.Stats()
	if st.Shed == 0 {
		return fail("degraded boots shed nothing — the read-only probe is gone")
	}
	return ResilienceRow{Scenario: "uniproc/degraded-cycle", Seed: cfg.Seed,
		Plan:  fmt.Sprintf("%d crashes at persist op 1", loopK),
		Boots: out.Boots, Crashes: out.Crashes, RecCrashes: out.RecoveryCrashes,
		Demotions: out.Demotions, Degraded: out.DegradedBoots,
		Shed: st.Shed, Timeouts: st.Timeouts, Avail: out.Availability(),
		RecP95:  out.RecoveryP95,
		Outcome: "demoted, held, re-promoted, completed"}, nil
}

// TableResilience runs the crash-restart supervision study (E27):
//
//   - vmach crash campaign: the resilient-server guest supervised
//     through ~1000 seeded crashes (clean, volatile, torn; many inside
//     recovery), warm reboots over surviving NVM, exactly-once audit;
//   - uniproc server campaign: the retrying-client uxserver plane under
//     a seeded persist-ordinal crash plan, with deadlines, shedding, and
//     cross-reboot dedup;
//   - degraded cycle: a forced crash loop through demotion, read-only
//     service, and hysteresis-gated re-promotion;
//   - exactly-once walk: the model checker's exhaustive K=1 enumeration
//     of a supervised crash at EVERY global persist ordinal of the
//     campaign, volatile and torn, which must pass with zero violations.
//
// Any failure is returned as an error naming the seed that reproduces it.
func TableResilience(cfg ResilienceConfig) ([]ResilienceRow, error) {
	if cfg.Crashes <= 0 {
		cfg.Crashes = 1
	}
	if cfg.ServerCrashes <= 0 {
		cfg.ServerCrashes = 1
	}
	var rows []ResilienceRow

	row, err := vmachResilienceCampaign(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = uniprocServerCampaign(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = uniprocDegradedCycle(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Exhaustive supervisor-in-the-loop walk via the model checker.
	schedules := 0
	for _, kind := range []string{"volatile", "torn"} {
		m, err := mcheck.BuildModel("resilience", map[string]string{"kind": kind})
		if err != nil {
			return nil, err
		}
		e := &mcheck.Explorer{Model: m, MaxDecisions: 1}
		rep, err := e.Exhaustive()
		if err != nil {
			return nil, err
		}
		if !rep.Passed() {
			return nil, fmt.Errorf("mcheck/exactly-once (%s): %v (repro: %s)",
				kind, rep, tableRepro("resilience", cfg.Seed))
		}
		schedules += rep.Schedules
	}
	rows = append(rows, ResilienceRow{Scenario: "mcheck/exactly-once",
		Plan: "every global persist ordinal", Crashes: schedules - 2,
		Avail:   1,
		Outcome: "exhaustive K=1 x {volatile,torn}, zero violations"})
	return rows, nil
}

// FormatResilience renders the supervision table; each campaign row
// carries its one-line crash-plan reproducer.
func FormatResilience(rows []ResilienceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %8s %6s %6s %5s %6s %6s %7s %8s  %s\n",
		"Scenario", "Boots", "Crashes", "InRec", "Demote", "Degr", "Shed", "T/outs", "Avail", "RecP95", "Outcome")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %6d %8d %6d %6d %5d %6d %6d %7.4f %8d  %s\n",
			r.Scenario, r.Boots, r.Crashes, r.RecCrashes, r.Demotions, r.Degraded,
			r.Shed, r.Timeouts, r.Avail, r.RecP95, r.Outcome)
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Plan, "crashplan:") {
			fmt.Fprintf(&b, "  %s: rasvm -demo resilience -plan '%s'\n", r.Scenario, r.Plan)
		}
	}
	return b.String()
}
