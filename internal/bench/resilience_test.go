package bench

import (
	"strings"
	"testing"

	"repro/internal/chaos"
)

func testResilienceConfig(t *testing.T) ResilienceConfig {
	cfg := DefaultResilienceConfig()
	cfg.Crashes = 120
	cfg.Iters = 90
	cfg.ServerCrashes = 30
	cfg.Requests = 12
	if testing.Short() {
		cfg.Crashes = 40
		cfg.Iters = 30
		cfg.ServerCrashes = 10
		cfg.Requests = 6
	}
	return cfg
}

func TestTableResilience(t *testing.T) {
	rows, err := TableResilience(testResilienceConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"vmach/crash-campaign":    false,
		"uniproc/server-campaign": false,
		"uniproc/degraded-cycle":  false,
		"mcheck/exactly-once":     false,
	}
	for _, r := range rows {
		want[r.Scenario] = true
		switch r.Scenario {
		case "vmach/crash-campaign", "uniproc/server-campaign":
			if r.RecCrashes == 0 {
				t.Errorf("%s: no crash landed inside recovery", r.Scenario)
			}
			if r.Avail <= 0 || r.Avail >= 1 {
				t.Errorf("%s: availability %v not in (0,1) — backoff or up-cycles accounting is gone", r.Scenario, r.Avail)
			}
		case "uniproc/degraded-cycle":
			if r.Demotions != 1 || r.Degraded < 2 {
				t.Errorf("degraded cycle: demotions=%d degraded=%d, want 1 and >=2", r.Demotions, r.Degraded)
			}
		}
	}
	for sc, seen := range want {
		if !seen {
			t.Errorf("table is missing scenario %s", sc)
		}
	}

	// Every campaign row's plan line must be a valid one-line repro: the
	// canonical string must parse back to a plan that schedules the same
	// crashes (FuzzChaosPlan fuzzes the same round trip).
	text := FormatResilience(rows)
	plans := 0
	for _, r := range rows {
		if !strings.HasPrefix(r.Plan, "crashplan:") {
			continue
		}
		plans++
		if !strings.Contains(text, r.Plan) {
			t.Errorf("%s: plan %q not printed as a repro line", r.Scenario, r.Plan)
		}
		back, err := chaos.ParseCrashPlan(r.Plan)
		if err != nil {
			t.Errorf("%s: plan line does not round-trip: %v", r.Scenario, err)
			continue
		}
		if back.String() != r.Plan {
			t.Errorf("%s: plan %q reparsed as %q", r.Scenario, r.Plan, back.String())
		}
	}
	if plans < 2 {
		t.Errorf("only %d crashplan repro lines; both campaign rows must carry one", plans)
	}
}

// The campaign is deterministic: same seed, same table, cell for cell.
func TestTableResilienceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full tables")
	}
	cfg := testResilienceConfig(t)
	a, err := TableResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if FormatResilience(a) != FormatResilience(b) {
		t.Errorf("same seed produced different tables:\n%s\nvs\n%s", FormatResilience(a), FormatResilience(b))
	}
}
