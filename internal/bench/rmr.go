package bench

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/qlock"
	"repro/internal/vmach/smp"
)

// The RMR table is the queue-lock counterpart of TableSMP: the
// recoverable-mutual-exclusion literature grades locks by remote
// memory references per passage, and the queue locks' claim is that
// this metric is O(1) in the contender count — each waiter spins on
// its own cache line and is woken by one targeted store — while a
// global spinlock's grows with every CPU polling the shared word.

// RMRConfig parametrizes the RMR sweep.
type RMRConfig struct {
	CPUList []int      // CPU counts to sweep (one contender per CPU)
	Iters   int        // passages per contender
	Modes   []smp.Mode // RMR counting modes
	Seed    uint64     // seeds the recovery section's kill schedules
	Kills   int        // kill schedules per mode in the recovery section
	// MaxCycles bounds every individual run; 0 uses the kernel default.
	MaxCycles uint64
}

// DefaultRMRConfig returns the configuration `rasbench -table rmr` and
// `make rmr` run.
func DefaultRMRConfig() RMRConfig {
	return RMRConfig{
		CPUList: []int{1, 2, 3, 4, 6, 8},
		Iters:   40,
		Modes:   []smp.Mode{smp.CC, smp.DSM},
		Seed:    1,
		Kills:   32,
	}
}

// RMRRow is one (lock, CPU count, mode) cell. The latency quantiles
// are passage latencies in cycles, reconstructed from the guest-side
// log2 histograms (so they are bucket upper edges, not exact values).
// The repair counters are zero everywhere except the recovery
// section's rows, whose Kills field says how many seeded kill
// schedules the row aggregates.
type RMRRow struct {
	Lock             string  `json:"lock"`
	CPUs             int     `json:"cpus"`
	Mode             string  `json:"mode"`
	Passages         uint64  `json:"passages"`
	CyclesPerPassage float64 `json:"cycles_per_passage"`
	MicrosPerPassage float64 `json:"micros_per_passage"`
	RMRs             uint64  `json:"rmrs"`
	RMRPerPassage    float64 `json:"rmr_per_passage"`
	LatP50           uint64  `json:"lat_p50"`
	LatP95           uint64  `json:"lat_p95"`
	LatP99           uint64  `json:"lat_p99"`
	Kills            int     `json:"kills,omitempty"`
	Repairs          uint64  `json:"repairs,omitempty"`
	Splices          uint64  `json:"splices,omitempty"`
	Scans            uint64  `json:"scans,omitempty"`
}

func rmrRow(res *qlock.Result) RMRRow {
	row := RMRRow{
		Lock:     res.Variant.String(),
		CPUs:     res.CPUs,
		Mode:     res.Mode.String(),
		Passages: res.Passages,
		RMRs:     res.RMRs,
		LatP50:   res.Lat.P50(),
		LatP95:   res.Lat.P95(),
		LatP99:   res.Lat.P99(),
		Repairs:  res.Repairs,
		Splices:  res.Splices,
		Scans:    res.Scans,
	}
	if res.Passages > 0 {
		row.CyclesPerPassage = float64(res.Cycles) / float64(res.Passages)
		row.MicrosPerPassage = arch.SMP().Micros(res.Cycles) / float64(res.Passages)
		row.RMRPerPassage = float64(res.RMRs) / float64(res.Passages)
	}
	return row
}

// TableRMR sweeps every lock variant over CPU count × coherence mode,
// one contender per CPU, and appends a recovery section: recoverable
// MCS under seeded single-kill schedules, which must stay exact while
// the repair counters account for the damage.
func TableRMR(cfg RMRConfig) ([]RMRRow, error) {
	if len(cfg.CPUList) == 0 {
		cfg.CPUList = DefaultRMRConfig().CPUList
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 40
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []smp.Mode{smp.CC, smp.DSM}
	}
	var rows []RMRRow
	for _, mode := range cfg.Modes {
		for _, v := range qlock.Variants() {
			for _, cpus := range cfg.CPUList {
				res, err := qlock.Start(qlock.Config{
					Variant:   v,
					CPUs:      cpus,
					Iters:     cfg.Iters,
					Mode:      mode,
					MaxCycles: cfg.MaxCycles,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: rmr: %w", err)
				}
				rows = append(rows, rmrRow(res))
			}
		}
	}
	for _, mode := range cfg.Modes {
		row, err := rmrKillRow(cfg, mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// rmrKillRow aggregates cfg.Kills seeded kill schedules against the
// recoverable MCS lock on a rendezvoused two-CPU queue. Each schedule
// kills whichever worker is running at one derived instruction
// ordinal; exactness must hold on every one (modulo the worker that
// dies inside its critical section between the counter increment and
// its own completion count).
func rmrKillRow(cfg RMRConfig, mode smp.Mode) (RMRRow, error) {
	kills := cfg.Kills
	if kills <= 0 {
		kills = 32
	}
	agg := RMRRow{Lock: "rmcs under kill", CPUs: 2, Mode: mode.String(), Kills: kills}
	var cycles uint64
	lat := obs.NewHistogram(obs.ExpBuckets(1, qlock.LatBuckets))
	for i := 0; i < kills; i++ {
		h := chaos.Derive(cfg.Seed, uint64(mode), uint64(i))
		cpu := int(h >> 32 & 1)
		at := h%1500 + 1
		r, err := qlock.New(qlock.Config{
			Variant:   qlock.RMCS,
			CPUs:      2,
			Iters:     4,
			Mode:      mode,
			MaxCycles: cfg.MaxCycles,
			Workers:   []qlock.WorkerOpt{qlock.HoldFor(1), qlock.WaitHeld(0)},
			Faults: func(c int) chaos.Injector {
				if c != cpu {
					return nil
				}
				return chaos.OneShot{Point: chaos.PointStep, N: at, Action: chaos.Action{Kill: true}}
			},
		})
		if err != nil {
			return RMRRow{}, fmt.Errorf("bench: rmr kill %d: %w", i, err)
		}
		if err := r.Sys.Run(); err != nil {
			return RMRRow{}, fmt.Errorf("bench: rmr kill %d (cpu%d@%d): %w", i, cpu, at, err)
		}
		res, err := r.Collect()
		if err != nil && (res == nil || res.Counter != res.Passages+1) {
			return RMRRow{}, fmt.Errorf("bench: rmr kill %d (cpu%d@%d): %w", i, cpu, at, err)
		}
		agg.Passages += res.Passages
		agg.RMRs += res.RMRs
		agg.Repairs += res.Repairs
		agg.Splices += res.Splices
		agg.Scans += res.Scans
		cycles += res.Cycles
		bounds, cum := res.Lat.Buckets()
		var prev uint64
		for b := range cum {
			if b+1 < len(bounds) { // bounds() appends an overflow edge last
				lat.ObserveN(bounds[b], cum[b]-prev)
			}
			prev = cum[b]
		}
	}
	agg.LatP50, agg.LatP95, agg.LatP99 = lat.P50(), lat.P95(), lat.P99()
	if agg.Passages > 0 {
		agg.CyclesPerPassage = float64(cycles) / float64(agg.Passages)
		agg.MicrosPerPassage = arch.SMP().Micros(cycles) / float64(agg.Passages)
		agg.RMRPerPassage = float64(agg.RMRs) / float64(agg.Passages)
	}
	return agg, nil
}

// FormatRMR renders the RMR table.
func FormatRMR(rows []RMRRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %5s %5s %9s %12s %13s %8s %8s %8s %8s\n",
		"Lock", "CPUs", "Mode", "Passages", "Cycles/pass", "RMR/passage", "p50", "p95", "p99", "Repairs")
	for _, r := range rows {
		rep := ""
		if r.Kills > 0 {
			rep = fmt.Sprintf("%d", r.Repairs+r.Splices)
		}
		fmt.Fprintf(&b, "%-15s %5d %5s %9d %12.1f %13.3f %8d %8d %8d %8s\n",
			r.Lock, r.CPUs, r.Mode, r.Passages,
			r.CyclesPerPassage, r.RMRPerPassage, r.LatP50, r.LatP95, r.LatP99, rep)
	}
	return b.String()
}
