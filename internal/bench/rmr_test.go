package bench

import (
	"testing"

	"repro/internal/vmach/smp"
)

// TestTableRMR runs a reduced sweep and checks the headline property:
// the queue locks' remote references per passage stay flat in CC mode
// while the spinlock's grow with the contender count.
func TestTableRMR(t *testing.T) {
	cfg := RMRConfig{
		CPUList: []int{1, 2, 8},
		Iters:   20,
		Modes:   []smp.Mode{smp.CC},
		Seed:    7,
		Kills:   8,
	}
	rows, err := TableRMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(lock string, cpus int) RMRRow {
		for _, r := range rows {
			if r.Lock == lock && r.CPUs == cpus && r.Kills == 0 {
				return r
			}
		}
		t.Fatalf("no row for %s/%d", lock, cpus)
		return RMRRow{}
	}
	mcs2, mcs8 := cell("mcs", 2), cell("mcs", 8)
	spin2, spin8 := cell("spinlock", 2), cell("spinlock", 8)
	if mcs8.RMRPerPassage > 3*mcs2.RMRPerPassage+8 {
		t.Errorf("MCS RMR/passage grew with contention: %.1f at 8 cpus vs %.1f at 2",
			mcs8.RMRPerPassage, mcs2.RMRPerPassage)
	}
	if spin8.RMRPerPassage < 2*spin2.RMRPerPassage {
		t.Errorf("spinlock RMR/passage did not grow: %.1f at 8 cpus vs %.1f at 2",
			spin8.RMRPerPassage, spin2.RMRPerPassage)
	}
	if spin8.RMRPerPassage < 1.5*mcs8.RMRPerPassage {
		t.Errorf("spinlock (%.1f) should dominate MCS (%.1f) at 8 cpus",
			spin8.RMRPerPassage, mcs8.RMRPerPassage)
	}
	for _, r := range rows {
		if r.Passages == 0 {
			t.Errorf("%s/%d/%s: no passages", r.Lock, r.CPUs, r.Mode)
		}
		if r.Kills == 0 && r.LatP50 == 0 {
			t.Errorf("%s/%d/%s: empty latency histogram", r.Lock, r.CPUs, r.Mode)
		}
	}
	// The recovery row must have seen repairs across its schedules.
	var kill *RMRRow
	for i := range rows {
		if rows[i].Kills > 0 {
			kill = &rows[i]
		}
	}
	if kill == nil {
		t.Fatal("no recovery section row")
	}
	if kill.Repairs+kill.Splices+kill.Scans == 0 {
		t.Errorf("recovery row exercised no repair machinery: %+v", *kill)
	}
	out := FormatRMR(rows)
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Errorf("FormatRMR output malformed")
	}
}
