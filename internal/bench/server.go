package bench

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/memfs"
	"repro/internal/obs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// ServerConfig parametrizes the request-plane load study: the guest-asm
// server replayed on the SMP substrate (per-CPU rings vs one mutex
// queue) and the uxserver request plane replayed on the uniprocessor
// (per-CPU shards vs one locked queue). The default sizing replays over
// one million requests across the sweep.
type ServerConfig struct {
	CPUList    []int      // CPU counts for the guest sweep
	Clients    int        // client threads per CPU (guest sweep)
	Iters      int        // requests per client, per-CPU variant
	MutexIters int        // requests per client, mutex baseline (slower: smaller)
	Modes      []smp.Mode // RMR counting modes
	Seed       uint64     // recorded for replayability; the sweep is deterministic
	MaxCycles  uint64     // bound per run; 0 uses the kernel default

	Shards     []int // shard counts for the uniproc uxserver rows
	UXClients  int   // client threads (uniproc rows)
	UXRequests int   // requests per client (uniproc rows)
}

// DefaultServerConfig returns the configuration `rasbench -table server`
// and `make server` run: ≥1e6 requests total across the sweep.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		CPUList:    []int{1, 2, 4, 8},
		Clients:    4,
		Iters:      8000,
		MutexIters: 500,
		Modes:      []smp.Mode{smp.CC, smp.DSM},
		Seed:       1,
		Shards:     []int{1, 2, 4, 8},
		UXClients:  4,
		UXRequests: 1500,
	}
}

// ServerRow is one cell of the server table. Guest rows (World "smp")
// report RMRs and wall-clock throughput: WallCycles is the busiest
// CPU's cycle count, so Throughput (requests per thousand wall cycles)
// scaling with CPUs is the per-CPU design's whole claim, while the
// mutex baseline's flatlines. Every row carries client-observed latency
// quantiles: guest rows from the per-CPU submission histogram the guest
// logs (log2 bucket edges), uniproc rows from the uxserver passage
// histogram.
type ServerRow struct {
	Impl         string // percpu | mutex | ux-single | ux-percpu
	World        string // smp | uniproc
	CPUs         int    // CPUs (smp) or shards (uniproc)
	Mode         string // CC | DSM | - (uniproc)
	Requests     uint64
	WallCycles   uint64
	CyclesPerReq float64 // aggregate cycles (all CPUs) per request
	Throughput   float64 // requests per 1000 wall cycles
	MicrosTotal  float64
	RMRs         uint64
	RMRPerReq    float64
	Restarts     uint64
	MeanBatch    float64 // requests per non-empty drain
	P50          uint64  // client-observed latency bucket edges
	P95          uint64
	P99          uint64
}

// serverRun replays one guest cell: one worker plus cfg.Clients clients
// per CPU. Every request is accounted: a served-count mismatch fails the
// run (this is what the racy drain variant trips under forced schedules;
// under the round-robin bench schedule both variants are clean).
func serverRun(cfg ServerConfig, mode smp.Mode, v guest.ServerVariant, cpus, iters int) (ServerRow, error) {
	sys := smp.New(smp.Config{CPUs: cpus, Mode: mode, MaxCycles: cfg.MaxCycles,
		NewStrategy: kernel.MultiRegistrationStrategy})
	prog := guest.Assemble(guest.ServerProgram(v, cpus))
	sys.Load(prog)
	for _, k := range sys.CPUs {
		ranges := guest.ServerLatSequenceRanges(prog)
		if v != guest.ServerMutex {
			ranges = append(ranges, guest.ServerSequenceRanges(prog)...)
		}
		for _, r := range ranges {
			if err := k.RegisterSequence(0, r[0], r[1]); err != nil {
				return ServerRow{}, err
			}
		}
	}
	workerArg := cfg.Clients
	if v == guest.ServerMutex {
		workerArg = cfg.Clients * cpus
	}
	worker, client := prog.MustSymbol("worker"), prog.MustSymbol("client")
	for cpu := 0; cpu < cpus; cpu++ {
		sys.Spawn(cpu, worker, guest.StackTop(smp.GlobalID(cpu, 0)), isa.Word(workerArg))
		for c := 0; c < cfg.Clients; c++ {
			sys.Spawn(cpu, client, guest.StackTop(smp.GlobalID(cpu, c+1)), isa.Word(iters))
		}
	}
	attachSMP(sys)
	err := sys.Run()
	noteSMPRun(sys)
	if err != nil {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dcpu/%s: %w", v, cpus, mode, err)
	}
	requests := uint64(cpus * cfg.Clients * iters)
	served, batches := guest.ServerCounts(sys.Mem, prog, v, cpus)
	if served != requests {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dcpu/%s: served %d, want %d — request lost",
			v, cpus, mode, served, requests)
	}
	lat := obs.NewHistogram(obs.ExpBuckets(1, guest.ServerLatBuckets))
	var latTotal uint64
	for b, n := range guest.ServerLatCounts(sys.Mem, prog, cpus) {
		lat.ObserveN(uint64(1)<<b, n)
		latTotal += n
	}
	if latTotal != requests {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dcpu/%s: %d latency observations, want %d",
			v, cpus, mode, latTotal, requests)
	}
	wall := sys.MaxCycles()
	cycles, rmrs := sys.TotalCycles(), sys.TotalRMRs()
	row := ServerRow{
		Impl:         v.String(),
		World:        "smp",
		CPUs:         cpus,
		Mode:         mode.String(),
		Requests:     requests,
		WallCycles:   wall,
		CyclesPerReq: float64(cycles) / float64(requests),
		Throughput:   float64(requests) * 1000 / float64(wall),
		MicrosTotal:  arch.SMP().Micros(wall),
		RMRs:         rmrs,
		RMRPerReq:    float64(rmrs) / float64(requests),
		Restarts:     sys.TotalRestarts(),
		P50:          lat.P50(),
		P95:          lat.P95(),
		P99:          lat.P99(),
	}
	if batches > 0 {
		row.MeanBatch = float64(served) / float64(batches)
	}
	return row, nil
}

// uxRun replays one uniproc cell: cfg.UXClients clients each driving
// cfg.UXRequests file operations at the uxserver, with the passage-cost
// histogram attached so the row carries client-observed latency
// quantiles.
func uxRun(cfg ServerConfig, perCPU bool, shards int) (ServerRow, error) {
	proc := uniproc.New(uniproc.Config{Profile: arch.R3000(), Quantum: 20000, JitterSeed: 23})
	pkg := cthreads.New(core.NewRAS())
	var srv *uxserver.Server
	impl := "ux-single"
	if perCPU {
		impl = "ux-percpu"
		srv = uxserver.StartPerCPU(proc, pkg, memfs.New(pkg), shards, 16)
	} else {
		srv = uxserver.Start(proc, pkg, memfs.New(pkg), shards)
	}
	srv.Passage = obs.NewHistogram(obs.ExpBuckets(64, 20))
	coord := pkg.NewSemaphore(0)
	var clientErr error
	proc.Go("spawner", func(e *uniproc.Env) {
		for c := 0; c < cfg.UXClients; c++ {
			cid := byte('a' + c%26)
			e.Fork("client", func(e *uniproc.Env) {
				path := "/" + string(cid)
				if err := srv.Create(e, path); err != nil && clientErr == nil {
					clientErr = err
				}
				for i := 1; i < cfg.UXRequests; i++ {
					var err error
					switch i % 4 {
					case 0:
						_, err = srv.ReadFile(e, path)
					case 3:
						_, _, err = srv.Stat(e, path)
					default:
						err = srv.Append(e, path, []byte("x"))
					}
					if err != nil && clientErr == nil {
						clientErr = err
					}
				}
				coord.V(e)
			})
		}
		for c := 0; c < cfg.UXClients; c++ {
			coord.P(e)
		}
		srv.Shutdown(e)
	})
	attachProc(proc)
	err := proc.Run()
	noteProcRun(proc)
	if err != nil {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dshard: %w", impl, shards, err)
	}
	if clientErr != nil {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dshard: %w", impl, shards, clientErr)
	}
	requests := uint64(cfg.UXClients * cfg.UXRequests)
	if srv.Requests != requests {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dshard: accepted %d, want %d",
			impl, shards, srv.Requests, requests)
	}
	if srv.Passage.Count() != requests {
		return ServerRow{}, fmt.Errorf("bench: server %s/%dshard: %d passage observations, want %d",
			impl, shards, srv.Passage.Count(), requests)
	}
	row := ServerRow{
		Impl:         impl,
		World:        "uniproc",
		CPUs:         shards,
		Mode:         "-",
		Requests:     requests,
		WallCycles:   proc.Clock(),
		CyclesPerReq: float64(proc.Clock()) / float64(requests),
		Throughput:   float64(requests) * 1000 / float64(proc.Clock()),
		MicrosTotal:  proc.Micros(),
		Restarts:     proc.Stats.Restarts,
		P50:          srv.Passage.P50(),
		P95:          srv.Passage.P95(),
		P99:          srv.Passage.P99(),
	}
	if qs := srv.QueueStats(); qs.Batches > 0 {
		row.MeanBatch = float64(qs.Drained) / float64(qs.Batches)
	}
	return row, nil
}

// TableServer replays the full request-plane load study: the per-CPU
// guest server against the mutex baseline across CPU count × counting
// mode, then the rebuilt uxserver against the single-queue original
// across shard counts. Over a million requests end to end with the
// default configuration.
func TableServer(cfg ServerConfig) ([]ServerRow, error) {
	if len(cfg.CPUList) == 0 {
		cfg.CPUList = []int{1, 2, 4, 8}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 8000
	}
	if cfg.MutexIters <= 0 {
		cfg.MutexIters = 500
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []smp.Mode{smp.CC, smp.DSM}
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 8}
	}
	if cfg.UXClients <= 0 {
		cfg.UXClients = 4
	}
	if cfg.UXRequests <= 0 {
		cfg.UXRequests = 1500
	}
	var rows []ServerRow
	for _, mode := range cfg.Modes {
		for _, v := range []guest.ServerVariant{guest.ServerPerCPU, guest.ServerMutex} {
			iters := cfg.Iters
			if v == guest.ServerMutex {
				iters = cfg.MutexIters
			}
			for _, cpus := range cfg.CPUList {
				row, err := serverRun(cfg, mode, v, cpus, iters)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	for _, perCPU := range []bool{false, true} {
		for _, shards := range cfg.Shards {
			row, err := uxRun(cfg, perCPU, shards)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// TotalServerRequests sums the requests a row set replayed — the ≥1e6
// budget check.
func TotalServerRequests(rows []ServerRow) uint64 {
	var n uint64
	for _, r := range rows {
		n += r.Requests
	}
	return n
}

// FormatServer renders the server table.
func FormatServer(rows []ServerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %5s %5s %10s %12s %11s %12s %10s %8s %8s %8s\n",
		"Impl", "World", "CPUs", "Mode", "Requests", "Cycles/req", "Req/kcycle", "RMR/req", "MeanBatch", "p50", "p95", "p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %5d %5s %10d %12.1f %11.3f %12.4f %10.1f %8d %8d %8d\n",
			r.Impl, r.World, r.CPUs, r.Mode, r.Requests,
			r.CyclesPerReq, r.Throughput, r.RMRPerReq, r.MeanBatch, r.P50, r.P95, r.P99)
	}
	fmt.Fprintf(&b, "\ntotal requests replayed: %d\n", TotalServerRequests(rows))
	return b.String()
}
