package bench

import (
	"testing"

	"repro/internal/vmach/smp"
)

func smallServerConfig() ServerConfig {
	return ServerConfig{
		CPUList:    []int{1, 2, 4},
		Clients:    2,
		Iters:      400,
		MutexIters: 100,
		Modes:      []smp.Mode{smp.CC},
		Shards:     []int{1, 2},
		UXClients:  2,
		UXRequests: 80,
	}
}

func rowsBy(rows []ServerRow, impl string) map[int]ServerRow {
	out := make(map[int]ServerRow)
	for _, r := range rows {
		if r.Impl == impl {
			out[r.CPUs] = r
		}
	}
	return out
}

// The table's whole argument in one assertion: the per-CPU server's
// wall-clock throughput scales with CPU count while the mutex
// baseline's does not, and the per-CPU request path executes zero
// remote references where the mutex path executes many.
func TestServerScalingVsMutexFlatline(t *testing.T) {
	rows, err := TableServer(smallServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	percpu, mutex := rowsBy(rows, "percpu"), rowsBy(rows, "mutex")
	if percpu[4].Throughput < 2*percpu[1].Throughput {
		t.Errorf("percpu throughput not scaling: 1cpu=%.3f 4cpu=%.3f",
			percpu[1].Throughput, percpu[4].Throughput)
	}
	if mutex[4].Throughput > 1.5*mutex[1].Throughput {
		t.Errorf("mutex throughput unexpectedly scaling: 1cpu=%.3f 4cpu=%.3f",
			mutex[1].Throughput, mutex[4].Throughput)
	}
	for cpus, r := range percpu {
		if r.RMRs != 0 {
			t.Errorf("percpu %dcpu: %d RMRs on the request path, want 0", cpus, r.RMRs)
		}
	}
	if mutex[4].RMRPerReq <= 0 {
		t.Errorf("mutex 4cpu: RMR/req = %v, want > 0", mutex[4].RMRPerReq)
	}
	if percpu[4].MeanBatch < 1 {
		t.Errorf("percpu mean batch = %v", percpu[4].MeanBatch)
	}
}

func TestServerUniprocRowsCarryQuantiles(t *testing.T) {
	cfg := smallServerConfig()
	cfg.CPUList = []int{1} // keep the guest half minimal
	rows, err := TableServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []string{"ux-single", "ux-percpu"} {
		by := rowsBy(rows, impl)
		if len(by) != 2 {
			t.Fatalf("%s: %d rows, want 2", impl, len(by))
		}
		for shards, r := range by {
			if r.P50 == 0 || r.P95 < r.P50 || r.P99 < r.P95 {
				t.Errorf("%s/%d: quantiles %d/%d/%d not monotone and positive",
					impl, shards, r.P50, r.P95, r.P99)
			}
			if r.Requests != uint64(cfg.UXClients*cfg.UXRequests) {
				t.Errorf("%s/%d: requests = %d", impl, shards, r.Requests)
			}
		}
	}
	if s := FormatServer(rows); len(s) == 0 {
		t.Error("empty render")
	}
}

// The shipped default must actually replay a million requests.
func TestDefaultServerConfigBudget(t *testing.T) {
	cfg := DefaultServerConfig()
	guestReqs := 0
	for _, cpus := range cfg.CPUList {
		guestReqs += cpus * cfg.Clients * cfg.Iters // percpu
		guestReqs += cpus * cfg.Clients * cfg.MutexIters
	}
	guestReqs *= len(cfg.Modes)
	uxReqs := 2 * len(cfg.Shards) * cfg.UXClients * cfg.UXRequests
	if total := guestReqs + uxReqs; total < 1_000_000 {
		t.Errorf("default sweep replays %d requests, want >= 1e6", total)
	}
}
