package bench

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/vmach/smp"
)

// SMPConfig parametrizes the SMP lock sweep.
type SMPConfig struct {
	CPUList []int      // CPU counts to sweep
	Workers int        // threads per CPU
	Iters   int        // passages per thread
	Modes   []smp.Mode // RMR counting modes
	Seed    uint64     // recorded for replayability; the sweep is deterministic
	// MaxCycles bounds every individual run; 0 uses the kernel default.
	MaxCycles uint64
}

// DefaultSMPConfig returns the configuration `rasbench -table smp` and
// `make smp` run.
func DefaultSMPConfig() SMPConfig {
	return SMPConfig{
		CPUList: []int{1, 2, 4},
		Workers: 2,
		Iters:   100,
		Modes:   []smp.Mode{smp.CC, smp.DSM},
		Seed:    1,
	}
}

// SMPRow is one (lock, CPU count, mode) cell of the SMP table. Passage
// cost is aggregate work — the sum of every CPU's cycles — divided by
// total passages; RMRPerPassage is the recoverable-mutual-exclusion
// literature's quality metric, remote memory references per passage.
type SMPRow struct {
	Lock             string
	CPUs             int
	Threads          int // total across CPUs
	Mode             string
	Passages         uint64
	CyclesPerPassage float64
	MicrosPerPassage float64
	RMRs             uint64
	RMRPerPassage    float64
	Restarts         uint64
}

// smpRun executes one cell: `workers` threads per CPU, each making
// `iters` passages through lock l, on an SMP() machine with the given
// coherence mode. The counter is verified — a lost update fails the run.
func smpRun(cfg SMPConfig, mode smp.Mode, lock guest.SMPLock, cpus int) (SMPRow, error) {
	sys := smp.New(smp.Config{CPUs: cpus, Mode: mode, MaxCycles: cfg.MaxCycles})
	prog := guest.Assemble(guest.SMPCounterProgram(lock, cpus))
	sys.Load(prog)
	entry := prog.MustSymbol("worker")
	for cpu := 0; cpu < cpus; cpu++ {
		for w := 0; w < cfg.Workers; w++ {
			sys.Spawn(cpu, entry, guest.StackTop(smp.GlobalID(cpu, w)), isa.Word(cfg.Iters))
		}
	}
	attachSMP(sys)
	err := sys.Run()
	noteSMPRun(sys)
	if err != nil {
		return SMPRow{}, fmt.Errorf("bench: smp %s/%dcpu/%s: %w", lock, cpus, mode, err)
	}
	passages := uint64(cpus * cfg.Workers * cfg.Iters)
	if got := sys.Mem.Peek(prog.MustSymbol("counter")); uint64(got) != passages {
		return SMPRow{}, fmt.Errorf("bench: smp %s/%dcpu/%s: counter %d, want %d — mutual exclusion violated",
			lock, cpus, mode, got, passages)
	}
	cycles := sys.TotalCycles()
	rmrs := sys.TotalRMRs()
	return SMPRow{
		Lock:             lock.String(),
		CPUs:             cpus,
		Threads:          cpus * cfg.Workers,
		Mode:             mode.String(),
		Passages:         passages,
		CyclesPerPassage: float64(cycles) / float64(passages),
		MicrosPerPassage: arch.SMP().Micros(cycles) / float64(passages),
		RMRs:             rmrs,
		RMRPerPassage:    float64(rmrs) / float64(passages),
		Restarts:         sys.TotalRestarts(),
	}, nil
}

// TableSMP sweeps the §7 hybrid lock against a pure interlocked spinlock
// and an ll/sc mutex over CPU count × counting mode. The hybrid's claim —
// intra-CPU arbitration by restartable atomic sequence, so local waiters
// never touch the bus — shows up as lower passage cost than the pure
// spinlock whenever a CPU hosts more than one contender, and as zero
// RMRs per passage whenever there is only one CPU.
func TableSMP(cfg SMPConfig) ([]SMPRow, error) {
	if len(cfg.CPUList) == 0 {
		cfg.CPUList = []int{1, 2, 4}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []smp.Mode{smp.CC, smp.DSM}
	}
	locks := []guest.SMPLock{guest.SMPHybrid, guest.SMPSpin, guest.SMPLLSC}
	var rows []SMPRow
	for _, mode := range cfg.Modes {
		for _, lock := range locks {
			for _, cpus := range cfg.CPUList {
				row, err := smpRun(cfg, mode, lock, cpus)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatSMP renders the SMP table.
func FormatSMP(rows []SMPRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s %8s %5s %10s %12s %12s %14s %9s\n",
		"Lock", "CPUs", "Threads", "Mode", "Passages", "Cycles/pass", "Time (us)", "RMR/passage", "Restarts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d %8d %5s %10d %12.1f %12.3f %14.3f %9d\n",
			r.Lock, r.CPUs, r.Threads, r.Mode, r.Passages,
			r.CyclesPerPassage, r.MicrosPerPassage, r.RMRPerPassage, r.Restarts)
	}
	return b.String()
}
