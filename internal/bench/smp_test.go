package bench

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/vmach/smp"
)

func testSMPConfig() SMPConfig {
	cfg := DefaultSMPConfig()
	cfg.Iters = 40
	return cfg
}

func findSMP(t *testing.T, rows []SMPRow, lock string, cpus int, mode string) SMPRow {
	t.Helper()
	for _, r := range rows {
		if r.Lock == lock && r.CPUs == cpus && r.Mode == mode {
			return r
		}
	}
	t.Fatalf("no row for %s/%dcpu/%s", lock, cpus, mode)
	return SMPRow{}
}

func TestTableSMP(t *testing.T) {
	rows, err := TableSMP(testSMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3*3 { // modes × locks × CPU counts
		t.Fatalf("got %d rows, want 18", len(rows))
	}

	for _, mode := range []string{"cc", "dsm"} {
		// The single-CPU invariant: nothing is remote on a uniprocessor.
		for _, lock := range []string{"hybrid", "spinlock", "llsc"} {
			if r := findSMP(t, rows, lock, 1, mode); r.RMRs != 0 {
				t.Errorf("%s/1cpu/%s: %d RMRs, want 0", lock, mode, r.RMRs)
			}
		}
		// Cross-CPU handoffs are remote.
		for _, lock := range []string{"hybrid", "spinlock", "llsc"} {
			if r := findSMP(t, rows, lock, 2, mode); r.RMRs == 0 {
				t.Errorf("%s/2cpu/%s: 0 RMRs — cross-CPU handoffs must be remote", lock, mode)
			}
		}
		// The §7 claim: with two contenders per CPU, the hybrid's local
		// waiters spin with plain loads while the pure spinlock's pay the
		// bus-locked tas on every attempt.
		for _, cpus := range []int{1, 2, 4} {
			hy := findSMP(t, rows, "hybrid", cpus, mode)
			sp := findSMP(t, rows, "spinlock", cpus, mode)
			if hy.CyclesPerPassage >= sp.CyclesPerPassage {
				t.Errorf("%dcpu/%s: hybrid %.1f cycles/passage, spinlock %.1f — hybrid should win intra-CPU arbitration",
					cpus, mode, hy.CyclesPerPassage, sp.CyclesPerPassage)
			}
		}
	}
}

func TestTableSMPDeterministic(t *testing.T) {
	a, err := TableSMP(testSMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableSMP(testSMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical sweeps disagree — the SMP table must be deterministic")
	}
}

// TestHybridDegeneratesToRAS is the uniprocessor cross-check: on one CPU
// with one uncontended thread, a hybrid passage is the plain designated
// RAS passage plus one interlocked acquire of the (always free) global
// word. Its cost must therefore sit within a small factor of Table 1's
// inline RAS row — and stay below Table 1's kernel-emulation row, which
// pays a trap per passage.
func TestHybridDegeneratesToRAS(t *testing.T) {
	const iters = 400
	t1, err := Table1(iters)
	if err != nil {
		t.Fatal(err)
	}
	var rasRow, emulRow float64
	for _, r := range t1 {
		switch {
		case strings.Contains(r.Mechanism, "inline"):
			rasRow = r.Micros
		case strings.Contains(r.Mechanism, "Emulation"):
			emulRow = r.Micros
		}
	}
	if rasRow == 0 || emulRow == 0 {
		t.Fatalf("Table 1 rows missing: ras=%v emul=%v", rasRow, emulRow)
	}

	cfg := SMPConfig{CPUList: []int{1}, Workers: 1, Iters: iters, Modes: []smp.Mode{smp.CC}}
	rows, err := TableSMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hy := findSMP(t, rows, "hybrid", 1, "cc")

	if ratio := hy.MicrosPerPassage / rasRow; ratio < 1 || ratio > 3 {
		t.Errorf("1-CPU hybrid passage %.3fus vs Table 1 inline RAS %.3fus: ratio %.2f outside [1,3]",
			hy.MicrosPerPassage, rasRow, ratio)
	}
	if hy.MicrosPerPassage >= emulRow {
		t.Errorf("1-CPU hybrid passage %.3fus not below Table 1 emulation %.3fus",
			hy.MicrosPerPassage, emulRow)
	}
	if hy.RMRPerPassage != 0 {
		t.Errorf("1-CPU hybrid RMR/passage = %v, want 0", hy.RMRPerPassage)
	}
}

func TestFormatSMP(t *testing.T) {
	rows := []SMPRow{{Lock: "hybrid", CPUs: 2, Threads: 4, Mode: "cc",
		Passages: 400, CyclesPerPassage: 123.4, MicrosPerPassage: 4.936, RMRPerPassage: 0.5}}
	out := FormatSMP(rows)
	for _, want := range []string{"hybrid", "RMR/passage", "123.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSMP output missing %q:\n%s", want, out)
		}
	}
}
