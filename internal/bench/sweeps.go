package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/afsbench"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
)

// QuantumRow is one point of the quantum-sensitivity sweep: how often
// restartable sequences are actually interrupted as the timeslice varies.
type QuantumRow struct {
	Quantum        uint64
	AtomicOps      uint64
	Suspensions    uint64
	Restarts       uint64
	RestartsPerOp  float64 // restarts / atomic operations
	RestartsPerSus float64 // restarts / suspensions
}

// TableQuantumSweep quantifies the paper's central bet — "short atomic
// sequences are rarely interrupted" — as a function of the scheduling
// quantum. Even at absurdly small quanta the restart rate per atomic
// operation stays small; at realistic quanta it is negligible.
func TableQuantumSweep(workers, iters int, quanta []uint64) ([]QuantumRow, error) {
	if len(quanta) == 0 {
		quanta = []uint64{50, 200, 1000, 10000, 100000}
	}
	ops := uint64(workers * iters)
	var rows []QuantumRow
	for _, q := range quanta {
		proc := uniproc.New(uniproc.Config{Quantum: q, JitterSeed: 5})
		lock := core.NewTASLock(core.NewRAS())
		var counter core.Word
		for i := 0; i < workers; i++ {
			proc.Go("worker", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					lock.Acquire(e)
					v := e.Load(&counter)
					e.ChargeALU(3)
					e.Store(&counter, v+1)
					lock.Release(e)
				}
			})
		}
		if err := proc.Run(); err != nil {
			return nil, err
		}
		if counter != core.Word(ops) {
			return nil, fmt.Errorf("quantum %d: counter %d, want %d", q, counter, ops)
		}
		row := QuantumRow{
			Quantum:     q,
			AtomicOps:   ops,
			Suspensions: proc.Stats.Suspensions,
			Restarts:    proc.Stats.Restarts,
		}
		row.RestartsPerOp = float64(row.Restarts) / float64(ops)
		if row.Suspensions > 0 {
			row.RestartsPerSus = float64(row.Restarts) / float64(row.Suspensions)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatQuantumSweep renders the sweep.
func FormatQuantumSweep(rows []QuantumRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %10s %14s %14s\n",
		"Quantum(cy)", "AtomicOps", "Suspensions", "Restarts", "Restart/Op", "Restart/Susp")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %10d %12d %10d %14.5f %14.3f\n",
			r.Quantum, r.AtomicOps, r.Suspensions, r.Restarts, r.RestartsPerOp, r.RestartsPerSus)
	}
	return b.String()
}

// WorkerRow is one point of the server worker-count study.
type WorkerRow struct {
	Workers  int
	Secs     float64
	Switches uint64
	Blocks   uint64
}

// TableServerWorkers runs the afs-bench script against the multithreaded
// user-level server with a varying worker pool. On a uniprocessor extra
// workers cannot add throughput for a single client — they only add context
// switching — which is the §1.1 observation that microkernel service
// threading exposes synchronization cost rather than hiding it.
func TableServerWorkers(counts []int) ([]WorkerRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	var rows []WorkerRow
	for _, w := range counts {
		proc := uniproc.New(uniproc.Config{Profile: arch.R3000(), Quantum: 20000, JitterSeed: 23})
		pkg := cthreads.New(core.NewRAS())
		srv := uxserver.Start(proc, pkg, memfs.New(pkg), w)
		var appErr error
		proc.Go("client", func(e *uniproc.Env) {
			_, appErr = afsbench.Run(e, afsbench.Config{
				Server: srv, Dirs: 3, FilesPerDir: 4, FileBytes: 2048,
			})
			srv.Shutdown(e)
		})
		if err := proc.Run(); err != nil {
			return nil, err
		}
		if appErr != nil {
			return nil, appErr
		}
		rows = append(rows, WorkerRow{
			Workers:  w,
			Secs:     proc.Micros() / 1e6,
			Switches: proc.Stats.Switches,
			Blocks:   proc.Stats.Blocks,
		})
	}
	return rows, nil
}

// FormatServerWorkers renders the worker study.
func FormatServerWorkers(rows []WorkerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "Workers", "Secs", "Switches", "Blocks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %10.4f %10d %10d\n", r.Workers, r.Secs, r.Switches, r.Blocks)
	}
	return b.String()
}
