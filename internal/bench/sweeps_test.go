package bench

import "testing"

func TestQuantumSweepShape(t *testing.T) {
	rows, err := TableQuantumSweep(4, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Restart frequency must fall (weakly) as the quantum grows, and be
	// negligible at the realistic end.
	for i := 1; i < len(rows); i++ {
		if rows[i].Restarts > rows[i-1].Restarts {
			t.Errorf("restarts rose with quantum: %d@%d -> %d@%d",
				rows[i-1].Restarts, rows[i-1].Quantum, rows[i].Restarts, rows[i].Quantum)
		}
	}
	last := rows[len(rows)-1]
	if last.RestartsPerOp > 0.01 {
		t.Errorf("restart rate at 100k-cycle quantum = %.4f, want ~0", last.RestartsPerOp)
	}
	// Even the most adversarial quantum keeps restarts bounded by
	// suspensions.
	for _, r := range rows {
		if r.Restarts > r.Suspensions {
			t.Errorf("q=%d: restarts %d exceed suspensions %d", r.Quantum, r.Restarts, r.Suspensions)
		}
	}
	t.Logf("\n%s", FormatQuantumSweep(rows))
}

func TestServerWorkersShape(t *testing.T) {
	rows, err := TableServerWorkers(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A single uniprocessor client gains nothing from extra workers: the
	// 8-worker run must not be faster than the 1-worker run by more than
	// noise, and context switching must not shrink.
	if rows[3].Secs < rows[0].Secs*0.95 {
		t.Errorf("8 workers (%.4fs) substantially faster than 1 (%.4fs) on a uniprocessor",
			rows[3].Secs, rows[0].Secs)
	}
	for _, r := range rows {
		if r.Secs <= 0 || r.Switches == 0 {
			t.Errorf("row %+v implausible", r)
		}
	}
	t.Logf("\n%s", FormatServerWorkers(rows))
}

func TestSweepFormatters(t *testing.T) {
	if FormatQuantumSweep([]QuantumRow{{Quantum: 1}}) == "" ||
		FormatServerWorkers([]WorkerRow{{Workers: 1}}) == "" {
		t.Error("empty formatter output")
	}
}
