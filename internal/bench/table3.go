package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/afsbench"
	"repro/internal/apps/parthenon"
	"repro/internal/apps/proton"
	"repro/internal/apps/textfmt"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/guest"
	"repro/internal/memfs"
	"repro/internal/uniproc"
	"repro/internal/uxserver"
	"repro/internal/vmach/kernel"
)

// Scale sets the workload sizes for the application benchmarks (Table 3).
// The defaults are sized to finish quickly; cmd/rasbench can scale them up
// toward the paper's multi-second runs.
type Scale struct {
	TextParas  int
	TextWords  int
	AFSDirs    int
	AFSFiles   int
	AFSBytes   int
	ParthChain int // chain-refutation length for the prover workload
	ProtonKB   int
	Quantum    uint64
	Seed       uint64
}

// DefaultScale returns a small but representative workload.
func DefaultScale() Scale {
	return Scale{
		TextParas: 30, TextWords: 80,
		AFSDirs: 3, AFSFiles: 5, AFSBytes: 4096,
		ParthChain: 60,
		ProtonKB:   48,
		Quantum:    20000,
		Seed:       1992,
	}
}

// AppStats is one measured run of one application.
type AppStats struct {
	Secs        float64
	EmulTraps   uint64
	Restarts    uint64
	Suspensions uint64 // involuntary suspensions + blocking waits
	Holdups     uint64 // lock-found-held events (§5.3)
}

// T3Row is one line of Table 3: an application under kernel emulation and
// under restartable atomic sequences.
type T3Row struct {
	Program string
	Emul    AppStats
	RAS     AppStats
}

// appRunner sets up a processor/thread package and runs one application's
// client thread.
func runApp(s Scale, mech core.Mechanism, needServer bool,
	client func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error) (AppStats, error) {
	proc := uniproc.New(uniproc.Config{
		Profile: arch.R3000(), Quantum: s.Quantum, JitterSeed: s.Seed,
	})
	pkg := cthreads.New(mech)
	var srv *uxserver.Server
	if needServer {
		srv = uxserver.Start(proc, pkg, memfs.New(pkg), 2)
	}
	var appErr error
	proc.Go("app", func(e *uniproc.Env) {
		appErr = client(e, pkg, srv)
		if srv != nil {
			srv.Shutdown(e)
		}
	})
	attachProc(proc)
	err := proc.Run()
	noteProcRun(proc)
	if err != nil {
		return AppStats{}, err
	}
	if appErr != nil {
		return AppStats{}, appErr
	}
	return AppStats{
		Secs:        proc.Micros() / 1e6,
		EmulTraps:   proc.Stats.EmulTraps,
		Restarts:    proc.Stats.Restarts,
		Suspensions: proc.Stats.Suspensions + proc.Stats.Blocks,
		Holdups:     proc.HoldupCount(),
	}, nil
}

// table3Programs enumerates the five applications of Table 3.
func table3Programs(s Scale) []struct {
	name       string
	needServer bool
	client     func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error
} {
	prove := func(workers int) func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error {
		return func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error {
			input := append(parthenon.Chain(s.ParthChain), parthenon.Pigeonhole(3, 2)...)
			res := parthenon.Run(e, parthenon.Config{Pkg: pkg, Workers: workers}, input)
			if !res.Proved {
				return fmt.Errorf("parthenon-%d: refutation lost", workers)
			}
			return nil
		}
	}
	return []struct {
		name       string
		needServer bool
		client     func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error
	}{
		{"text-format", true, func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error {
			_, err := textfmt.Run(e, textfmt.Config{
				Server: srv, Paragraphs: s.TextParas, WordsPerPara: s.TextWords,
			})
			return err
		}},
		{"afs-bench", true, func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error {
			_, err := afsbench.Run(e, afsbench.Config{
				Server: srv, Dirs: s.AFSDirs, FilesPerDir: s.AFSFiles, FileBytes: s.AFSBytes,
			})
			return err
		}},
		{"parthenon-1", false, prove(1)},
		{"parthenon-10", false, prove(10)},
		{"proton-64", true, func(e *uniproc.Env, pkg *cthreads.Pkg, srv *uxserver.Server) error {
			res, err := proton.Run(e, proton.Config{
				Pkg: pkg, Server: srv, FileSize: s.ProtonKB * 1024,
			})
			if err == nil && res.Bytes != s.ProtonKB*1024 {
				return fmt.Errorf("proton: transferred %d bytes", res.Bytes)
			}
			return err
		}},
	}
}

// Table3 reproduces Table 3: each application under kernel emulation and
// under restartable atomic sequences.
func Table3(s Scale) ([]T3Row, error) {
	prof := arch.R3000()
	var rows []T3Row
	for _, p := range table3Programs(s) {
		emul, err := runApp(s, core.NewKernelEmul(prof), p.needServer, p.client)
		if err != nil {
			return nil, fmt.Errorf("%s (emulation): %w", p.name, err)
		}
		ras, err := runApp(s, core.NewRAS(), p.needServer, p.client)
		if err != nil {
			return nil, fmt.Errorf("%s (ras): %w", p.name, err)
		}
		rows = append(rows, T3Row{Program: p.name, Emul: emul, RAS: ras})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 in the paper's shape.
func FormatTable3(rows []T3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %9s %9s | %10s %8s | %11s %11s\n",
		"Program", "Emul(s)", "RAS(s)", "EmulTraps", "Restarts", "Susp(Emul)", "Susp(RAS)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.4f %9.4f | %10d %8d | %11d %11d\n",
			r.Program, r.Emul.Secs, r.RAS.Secs,
			r.Emul.EmulTraps, r.RAS.Restarts,
			r.Emul.Suspensions, r.RAS.Suspensions)
	}
	return b.String()
}

// HoldupRow captures §5.3's deeper look at parthenon-10: how often a thread
// found a Test-And-Set lock held by a (suspended) holder. The paper
// observed roughly twice as many holdups under kernel emulation.
type HoldupRow struct {
	Mechanism string
	Holdups   uint64
	Secs      float64
}

// TableHoldups reproduces the §5.3 lock-holdup comparison on parthenon-10.
func TableHoldups(s Scale) ([]HoldupRow, error) {
	prof := arch.R3000()
	client := table3Programs(s)[3] // parthenon-10
	var rows []HoldupRow
	for _, mc := range []struct {
		name string
		m    core.Mechanism
	}{
		{"Kernel Emulation", core.NewKernelEmul(prof)},
		{"Restartable Atomic Sequences", core.NewRAS()},
	} {
		st, err := runApp(s, mc.m, client.needServer, client.client)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HoldupRow{mc.name, st.Holdups, st.Secs})
	}
	return rows, nil
}

// FormatHoldups renders the holdup comparison.
func FormatHoldups(rows []HoldupRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %10s %10s\n", "parthenon-10 under", "Holdups", "Secs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %10d %10.4f\n", r.Mechanism, r.Holdups, r.Secs)
	}
	return b.String()
}

// AblationRow is one configuration of the §4.1 PC-check placement study,
// run on the instruction-level simulator with the designated-sequence
// workload under heavy preemption.
type AblationRow struct {
	Config      string
	Micros      float64
	Restarts    uint64
	Rejects     uint64
	Suspensions uint64
}

// TableAblation compares early (suspend-time, Mach) vs late (resume-time,
// Taos) PC checks for the designated strategy, and the user-level
// detection alternative, on an adversarial 61-cycle quantum.
func TableAblation(workers, iters int) ([]AblationRow, error) {
	prof := arch.R3000()
	type cfg struct {
		name  string
		m     guest.Mechanism
		strat kernel.Strategy
		at    kernel.CheckTime
	}
	cfgs := []cfg{
		{"designated, check at suspend", guest.MechDesignated, &kernel.Designated{}, kernel.CheckAtSuspend},
		{"designated, check at resume", guest.MechDesignated, &kernel.Designated{}, kernel.CheckAtResume},
		{"registration, check at suspend", guest.MechRegistered, &kernel.Registration{}, kernel.CheckAtSuspend},
		{"user-level detection", guest.MechUserLevel, &kernel.UserLevel{}, kernel.CheckAtResume},
	}
	var rows []AblationRow
	for _, c := range cfgs {
		prog := guest.Assemble(guest.MutexCounterProgram(c.m, workers, iters))
		k := kernel.New(kernel.Config{Profile: prof, Strategy: c.strat, CheckAt: c.at, Quantum: 61})
		k.Load(prog)
		k.Spawn(prog.MustSymbol("main"), guest.StackTop(0))
		if err := k.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if got := k.M.Mem.Peek(prog.MustSymbol("counter")); got != uint32(workers*iters) {
			return nil, fmt.Errorf("%s: counter %d, want %d", c.name, got, workers*iters)
		}
		rows = append(rows, AblationRow{
			Config:      c.name,
			Micros:      k.Micros(),
			Restarts:    k.Stats.Restarts,
			Rejects:     k.Stats.CheckRejects,
			Suspensions: k.Stats.Suspensions,
		})
	}
	return rows, nil
}

// FormatAblation renders the placement study.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %10s %9s %9s %12s\n",
		"Kernel configuration", "Time (us)", "Restarts", "Rejects", "Suspensions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %10.1f %9d %9d %12d\n",
			r.Config, r.Micros, r.Restarts, r.Rejects, r.Suspensions)
	}
	return b.String()
}
