// Package chaos provides deterministic, seeded fault injection for both of
// the repository's substrates: the ISA-level simulated kernel
// (internal/vmach/kernel) and the primitive-op-level virtual uniprocessor
// (internal/uniproc).
//
// The paper's central hazard is that a restartable atomic sequence is only
// correct if it eventually completes, and only safe if the kernel's recovery
// machinery survives the faults it can itself provoke: a sequence longer
// than a quantum restarts forever (§3.1), and the PC check reads user memory
// that may be paged out (§4.1-§4.2). The seed modelled these hazards ad hoc
// (a fixed eviction period, a hand-rolled fault loop); this package makes
// them systematic: an injection Plan is a pure function of (seed, point,
// event ordinal), so any failure it provokes is replayable from a one-line
// seed and any sweep is exactly repeatable.
//
// Both substrates drive a Plan through the same Injector interface at their
// natural instrumentation points: the kernel at every dispatch, involuntary
// suspension, and retired instruction; the uniprocessor runtime at every
// dispatch and every Load/Store preemption point.
//
// The package also defines the Watchdog policy shared by both kernels: the
// restart-livelock detector that notices a sequence restarting without
// forward progress and either extends the quantum once or aborts the run
// with a diagnostic naming the sequence.
package chaos

import "fmt"

// Point identifies an instrumentation point at which a substrate consults
// the injector.
type Point int

const (
	// PointDispatch: a thread is being given the processor. Jitter is
	// applied to the new timeslice here.
	PointDispatch Point = iota
	// PointSuspend: a thread was involuntarily suspended (timer, page
	// fault, or an injected preemption). Page evictions are applied here,
	// so the recovery machinery's own PC check can fault (§4.1).
	PointSuspend
	// PointStep: one guest instruction retired on the ISA-level machine.
	// Forced preemptions and spurious suspensions land here.
	PointStep
	// PointMemOp: one guest Load/Store on the virtual uniprocessor — the
	// runtime layer's preemption points.
	PointMemOp
	// PointPersist: one persist operation (a flush or a fence) retired on
	// the virtual uniprocessor. Crash faults land here so a schedule can
	// name "the k-th persist boundary" directly — the ordinal space the
	// model checker's journal and persistent-structure walks enumerate.
	// Only the crash kinds (Crash, CrashVolatile, Torn) are honoured at
	// this point; persist operations are not preemption points.
	PointPersist
)

func (p Point) String() string {
	switch p {
	case PointDispatch:
		return "dispatch"
	case PointSuspend:
		return "suspend"
	case PointStep:
		return "step"
	case PointMemOp:
		return "memop"
	case PointPersist:
		return "persist"
	}
	return "?"
}

// Action is the set of faults an injector asks the substrate to apply at a
// point. Fields a substrate cannot honour (page evictions have no meaning
// on the uniproc layer, which has no pages) are ignored.
type Action struct {
	// Preempt forces a timer-style involuntary preemption at this
	// instruction/memory-op boundary, regardless of the remaining slice.
	Preempt bool
	// SpuriousSuspend suspends and immediately requeues the thread without
	// a timer expiry — the "suspended for no visible reason" case (signal
	// delivery, page daemon) that the recovery path must also survive.
	SpuriousSuspend bool
	// EvictCode marks the thread's code page not-present, so the next
	// instruction fetch — or the kernel's own PC check — page-faults.
	EvictCode bool
	// EvictData marks the thread's stack page not-present.
	EvictData bool
	// Jitter is added to the length of the timeslice being started
	// (possibly negative; substrates clamp so a slice is never empty).
	Jitter int64
	// Kill terminates the running thread on the spot: its stack is
	// unwound, its registrations reaped, and it never runs again — the
	// fault class the recoverable-mutual-exclusion (RME) line of work
	// models, which restartable sequences alone cannot survive (a thread
	// killed inside a critical section orphans the lock forever).
	Kill bool
	// Crash halts the whole machine mid-run: the substrate stops
	// scheduling and reports a machine-crash error. Crash models a machine
	// with FULLY PERSISTENT memory — every committed store survives, so
	// the halted state is left intact exactly as written, ready for
	// checkpointing. Recovery is by checkpoint/restore. (Seeds before the
	// persistence model relied on this implicitly; it is now the
	// documented contract, asserted by TestCrashIsFullyPersistent.)
	Crash bool
	// CrashVolatile is the NVRAM-model crash: the machine halts as with
	// Crash, but first every memory line whose write-back has not been
	// fenced reverts to its NVM image (vmach.Memory.DiscardUnflushed).
	// What a recovery path sees afterwards is NVM contents only — the
	// failure mode the recoverable-mutex literature assumes. On memories
	// without the persistence model enabled it degrades to Crash.
	CrashVolatile bool
	// Torn modifies CrashVolatile: instead of losing every unfenced line
	// cleanly, lines whose write-back was initiated (flushed) but not yet
	// fenced persist only a PREFIX of their words — the torn-write failure
	// mode of real NVM controllers, where power is lost halfway through
	// draining a line. The prefix length is derived deterministically from
	// the crash ordinal, so a torn crash replays exactly. Meaningless
	// without CrashVolatile; ignored on non-persistent memories.
	Torn bool
}

// Any reports whether the action requests any fault at all.
func (a Action) Any() bool {
	return a.Preempt || a.SpuriousSuspend || a.EvictCode || a.EvictData ||
		a.Jitter != 0 || a.Kill || a.Crash || a.CrashVolatile || a.Torn
}

// Bits packs the action's flags for compact trace output.
func (a Action) Bits() uint64 {
	var b uint64
	if a.Preempt {
		b |= 1
	}
	if a.SpuriousSuspend {
		b |= 2
	}
	if a.EvictCode {
		b |= 4
	}
	if a.EvictData {
		b |= 8
	}
	if a.Kill {
		b |= 16
	}
	if a.Crash {
		b |= 32
	}
	if a.CrashVolatile {
		b |= 64
	}
	if a.Torn {
		b |= 128
	}
	return b
}

// Injector is consulted by a substrate at each instrumentation point; n is
// the ordinal of that point kind (1st dispatch, 2nd dispatch, ...), so a
// deterministic injector yields an exactly reproducible fault schedule.
type Injector interface {
	At(p Point, n uint64) Action
}

// Plan is the deterministic seeded injector: every decision is a pure
// function of (Seed, point, ordinal). Rates are probabilities in units of
// 1/65536 per opportunity.
type Plan struct {
	Seed  uint64
	Level float64 // intensity this plan was built with (informational)

	PreemptRate   uint32 // forced preemption, per retired step / mem op
	SpuriousRate  uint32 // spurious suspension, per retired step / mem op
	EvictCodeRate uint32 // code-page eviction, per involuntary suspension
	EvictDataRate uint32 // stack-page eviction, per involuntary suspension
	MaxJitter     int64  // timeslice jitter amplitude (cycles), per dispatch
	// KillRate is the thread-death probability per retired step / mem op.
	// NewPlan leaves it zero: kills change a workload's outcome, so they
	// are opted into with NewKillPlan (or set explicitly) rather than
	// riding along with the recoverable-fault sweep.
	KillRate uint32
}

// NewPlan derives a Plan from a seed and an intensity level in [0,1]:
// level 0 injects nothing; level 1 forces a preemption about every 64
// instructions, a spurious suspension about every 128, evicts the code page
// on one suspension in eight and the stack page on one in sixteen, and
// jitters every timeslice by up to ±2000 cycles.
func NewPlan(seed uint64, level float64) *Plan {
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	return &Plan{
		Seed:          seed,
		Level:         level,
		PreemptRate:   uint32(level * 1024),
		SpuriousRate:  uint32(level * 512),
		EvictCodeRate: uint32(level * 8192),
		EvictDataRate: uint32(level * 4096),
		MaxJitter:     int64(level * 2000),
	}
}

// NewKillPlan derives a Plan like NewPlan and additionally arms thread
// kills: at level 1 the running thread dies about once every 4096 retired
// steps / memory ops. Kill decisions consume hash bits untouched by the
// other fault kinds, so a kill plan injects exactly the faults its NewPlan
// sibling would, plus the deaths.
func NewKillPlan(seed uint64, level float64) *Plan {
	p := NewPlan(seed, level)
	p.KillRate = uint32(p.Level * 16)
	return p
}

// At implements Injector.
func (p *Plan) At(pt Point, n uint64) Action {
	var a Action
	h := Derive(p.Seed, uint64(pt)+1, n)
	switch pt {
	case PointStep, PointMemOp:
		if uint32(h&0xFFFF) < p.PreemptRate {
			a.Preempt = true
		}
		if uint32(h>>16&0xFFFF) < p.SpuriousRate {
			a.SpuriousSuspend = true
		}
		if uint32(h>>32&0xFFFF) < p.KillRate {
			a.Kill = true
		}
	case PointSuspend:
		if uint32(h&0xFFFF) < p.EvictCodeRate {
			a.EvictCode = true
		}
		if uint32(h>>16&0xFFFF) < p.EvictDataRate {
			a.EvictData = true
		}
	case PointDispatch:
		if p.MaxJitter > 0 {
			span := uint64(2*p.MaxJitter + 1)
			a.Jitter = int64(h%span) - p.MaxJitter
		}
	}
	return a
}

// Repro renders the one-line reproducer for this plan against the chaos
// table of cmd/rasbench.
func (p *Plan) Repro() string {
	return fmt.Sprintf("go run ./cmd/rasbench -table chaos -seed %#x -level %g", p.Seed, p.Level)
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Derive folds vals into seed with SplitMix64, producing an independent
// deterministic stream per distinct argument tuple. Exported so tests and
// harnesses can derive per-scenario seeds from one master seed.
func Derive(seed uint64, vals ...uint64) uint64 {
	h := splitmix64(seed)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// OneShot is an Injector requesting a single action at exactly the N-th
// occurrence of one point (ordinals are 1-based) and nothing anywhere else.
// It is how the recovery sweeps express a deterministic schedule — "kill
// whichever thread is running at memory op 1234" — and how rasvm's
// -kill-at / -crash-at flags are implemented.
type OneShot struct {
	Point  Point
	N      uint64
	Action Action
}

// At implements Injector.
func (o OneShot) At(p Point, n uint64) Action {
	if p == o.Point && n == o.N {
		return o.Action
	}
	return Action{}
}

// composed merges several injectors: flags are OR-ed, jitters summed.
type composed []Injector

// Compose returns an Injector that consults every given injector at each
// point and merges their requests (boolean faults OR, jitter sums). Nil
// entries are skipped. Used to overlay deterministic kill/crash schedules
// on a background Plan.
func Compose(injs ...Injector) Injector {
	var c composed
	for _, in := range injs {
		if in != nil {
			c = append(c, in)
		}
	}
	return c
}

// At implements Injector.
func (c composed) At(p Point, n uint64) Action {
	var a Action
	for _, in := range c {
		x := in.At(p, n)
		a.Preempt = a.Preempt || x.Preempt
		a.SpuriousSuspend = a.SpuriousSuspend || x.SpuriousSuspend
		a.EvictCode = a.EvictCode || x.EvictCode
		a.EvictData = a.EvictData || x.EvictData
		a.Kill = a.Kill || x.Kill
		a.Crash = a.Crash || x.Crash
		a.CrashVolatile = a.CrashVolatile || x.CrashVolatile
		a.Torn = a.Torn || x.Torn
		a.Jitter += x.Jitter
	}
	return a
}

// Watchdog policies ----------------------------------------------------------

// WatchdogPolicy selects how a kernel responds when one restartable
// sequence keeps restarting without forward progress.
type WatchdogPolicy int

const (
	// WatchdogOff disables livelock detection (the seed's behaviour).
	WatchdogOff WatchdogPolicy = iota
	// WatchdogExtend grants the livelocked thread one extended timeslice
	// (Factor × quantum) so a sequence slightly longer than the quantum can
	// complete; if the livelock persists after the extension, it escalates
	// to an abort.
	WatchdogExtend
	// WatchdogAbort aborts the run immediately with a diagnostic naming
	// the sequence and its restart count.
	WatchdogAbort
)

func (p WatchdogPolicy) String() string {
	switch p {
	case WatchdogOff:
		return "off"
	case WatchdogExtend:
		return "extend"
	case WatchdogAbort:
		return "abort"
	}
	return "?"
}

// Watchdog configures restart-livelock detection, shared by both kernels.
// A thread whose restart count for one sequence reaches Limit() without an
// intervening suspension outside the sequence is considered livelocked.
type Watchdog struct {
	Policy WatchdogPolicy
	// MaxRestarts is the consecutive-restart threshold; 0 means 32.
	MaxRestarts uint64
	// ExtendFactor is the one-time quantum multiplier granted under
	// WatchdogExtend; 0 means 4.
	ExtendFactor uint64
}

// Limit returns the effective consecutive-restart threshold.
func (w Watchdog) Limit() uint64 {
	if w.MaxRestarts == 0 {
		return 32
	}
	return w.MaxRestarts
}

// Factor returns the effective quantum-extension multiplier.
func (w Watchdog) Factor() uint64 {
	if w.ExtendFactor == 0 {
		return 4
	}
	return w.ExtendFactor
}

// Sequence mutation ----------------------------------------------------------

// MutationKind names what MutateWords did, for diagnostics.
type MutationKind int

const (
	// MutateNop replaces one word with 0 (a no-op) — applied to the
	// landmark slot this is the "landmark-stripped sequence" case.
	MutateNop MutationKind = iota
	// MutateFlip flips one bit of one word.
	MutateFlip
	// MutateReplace replaces one word with a pseudo-random word.
	MutateReplace
	numMutations
)

func (m MutationKind) String() string {
	switch m {
	case MutateNop:
		return "nop-strip"
	case MutateFlip:
		return "bit-flip"
	case MutateReplace:
		return "replace"
	}
	return "?"
}

// MutateWords returns a deterministically corrupted copy of words — the
// corrupted/landmark-stripped designated sequences of the plan. The n-th
// mutation for a seed is always the same: one word is chosen and either
// nop-stripped, bit-flipped, or replaced wholesale. The recognizer-safety
// sweeps feed these to the kernel's two-stage check, which must never roll
// a PC back unless the window still certifies as a true sequence.
func MutateWords(seed, n uint64, words []uint32) ([]uint32, int, MutationKind) {
	out := make([]uint32, len(words))
	copy(out, words)
	if len(out) == 0 {
		return out, 0, MutateNop
	}
	h := Derive(seed, 0xC0FFEE, n)
	idx := int(h % uint64(len(out)))
	kind := MutationKind(h >> 8 % uint64(numMutations))
	switch kind {
	case MutateNop:
		out[idx] = 0
	case MutateFlip:
		out[idx] ^= 1 << (h >> 16 % 32)
	case MutateReplace:
		out[idx] = uint32(h >> 24)
	}
	return out, idx, kind
}
