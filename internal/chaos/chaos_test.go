package chaos

import (
	"strings"
	"testing"
	"testing/quick"
)

// A Plan is a pure function of (seed, point, ordinal): two plans built from
// the same seed and level must agree everywhere.
func TestPlanDeterministic(t *testing.T) {
	f := func(seed uint64, lvl8 uint8, pt8 uint8, n uint64) bool {
		level := float64(lvl8) / 255
		a := NewPlan(seed, level)
		b := NewPlan(seed, level)
		pt := Point(pt8 % 4)
		return a.At(pt, n) == b.At(pt, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanLevelZeroInjectsNothing(t *testing.T) {
	p := NewPlan(12345, 0)
	for pt := PointDispatch; pt <= PointMemOp; pt++ {
		for n := uint64(0); n < 5000; n++ {
			if a := p.At(pt, n); a.Any() {
				t.Fatalf("level-0 plan injected %+v at %v/%d", a, pt, n)
			}
		}
	}
}

func TestPlanLevelOneInjectsEverything(t *testing.T) {
	p := NewPlan(99, 1)
	var preempts, spurious, evCode, evData, jitters int
	for n := uint64(0); n < 100000; n++ {
		if a := p.At(PointStep, n); a.Preempt {
			preempts++
		} else if a.SpuriousSuspend {
			spurious++
		}
		if a := p.At(PointSuspend, n); a.EvictCode {
			evCode++
		} else if a.EvictData {
			evData++
		}
		if a := p.At(PointDispatch, n); a.Jitter != 0 {
			jitters++
		}
	}
	for name, c := range map[string]int{
		"preempt": preempts, "spurious": spurious,
		"evict-code": evCode, "evict-data": evData, "jitter": jitters,
	} {
		if c == 0 {
			t.Errorf("level-1 plan never injected %s in 100k opportunities", name)
		}
	}
	// Rate sanity: the forced-preemption rate is 1024/65536 = 1/64.
	if preempts < 100000/128 || preempts > 100000/32 {
		t.Errorf("preempt count %d far from expected ~%d", preempts, 100000/64)
	}
}

func TestPlanLevelClamped(t *testing.T) {
	lo, hi := NewPlan(1, -3), NewPlan(1, 7)
	if lo.PreemptRate != 0 || lo.MaxJitter != 0 {
		t.Errorf("negative level not clamped: %+v", lo)
	}
	if hi.PreemptRate != 1024 {
		t.Errorf("level > 1 not clamped: %+v", hi)
	}
}

func TestJitterBounded(t *testing.T) {
	p := NewPlan(7, 1)
	for n := uint64(0); n < 20000; n++ {
		j := p.At(PointDispatch, n).Jitter
		if j < -p.MaxJitter || j > p.MaxJitter {
			t.Fatalf("jitter %d outside ±%d", j, p.MaxJitter)
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	// Distinct argument tuples must (overwhelmingly) produce distinct
	// values; identical tuples identical ones.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[Derive(42, i)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("Derive collided: %d distinct of 1000", len(seen))
	}
	if Derive(42, 1, 2) != Derive(42, 1, 2) {
		t.Error("Derive not deterministic")
	}
	if Derive(42, 1, 2) == Derive(42, 2, 1) {
		t.Error("Derive ignores argument order")
	}
}

func TestActionBitsAndAny(t *testing.T) {
	if (Action{}).Any() {
		t.Error("zero action reported Any")
	}
	a := Action{Preempt: true, EvictData: true}
	if !a.Any() || a.Bits() != 1|8 {
		t.Errorf("bits = %#x", a.Bits())
	}
	if !(Action{Jitter: -5}).Any() {
		t.Error("jitter-only action not Any")
	}
	k := Action{Kill: true, Crash: true}
	if !k.Any() || k.Bits() != 16|32 {
		t.Errorf("kill/crash bits = %#x", k.Bits())
	}
}

// A kill plan must inject exactly the faults its NewPlan sibling does,
// plus kills: arming kills must not reshuffle the recoverable schedule.
func TestKillPlanExtendsPlanWithoutPerturbingIt(t *testing.T) {
	base := NewPlan(0xABCD, 0.75)
	kill := NewKillPlan(0xABCD, 0.75)
	if kill.KillRate == 0 {
		t.Fatal("NewKillPlan left KillRate zero")
	}
	kills := 0
	for pt := PointDispatch; pt <= PointMemOp; pt++ {
		for n := uint64(0); n < 50000; n++ {
			a, b := base.At(pt, n), kill.At(pt, n)
			if b.Kill {
				kills++
				b.Kill = false
			}
			if a != b {
				t.Fatalf("kill plan diverged from base at %v/%d: %+v vs %+v", pt, n, a, b)
			}
		}
	}
	if kills == 0 {
		t.Error("kill plan never killed in 200k opportunities")
	}
	if NewPlan(0xABCD, 0.75).KillRate != 0 {
		t.Error("NewPlan armed kills")
	}
}

func TestOneShotFiresExactlyOnce(t *testing.T) {
	o := OneShot{Point: PointStep, N: 42, Action: Action{Kill: true}}
	fired := 0
	for pt := PointDispatch; pt <= PointMemOp; pt++ {
		for n := uint64(0); n < 100; n++ {
			a := o.At(pt, n)
			if a.Any() {
				fired++
				if pt != PointStep || n != 42 || !a.Kill {
					t.Fatalf("one-shot fired %+v at %v/%d", a, pt, n)
				}
			}
		}
	}
	if fired != 1 {
		t.Fatalf("one-shot fired %d times", fired)
	}
}

func TestComposeMergesActions(t *testing.T) {
	c := Compose(
		nil,
		OneShot{Point: PointMemOp, N: 7, Action: Action{Kill: true}},
		OneShot{Point: PointMemOp, N: 7, Action: Action{Preempt: true, Jitter: 3}},
		OneShot{Point: PointMemOp, N: 9, Action: Action{Crash: true, Jitter: -1}},
	)
	a := c.At(PointMemOp, 7)
	if !a.Kill || !a.Preempt || a.Jitter != 3 || a.Crash {
		t.Errorf("merge at 7: %+v", a)
	}
	if a = c.At(PointMemOp, 9); !a.Crash || a.Jitter != -1 {
		t.Errorf("merge at 9: %+v", a)
	}
	if a = c.At(PointMemOp, 8); a.Any() {
		t.Errorf("phantom action %+v", a)
	}
}

func TestMutateWordsDeterministicAndSingleWord(t *testing.T) {
	words := []uint32{0x8C820000, 0x34080001, 0x14400003, 0x0000003F, 0xAC880000}
	for n := uint64(0); n < 200; n++ {
		m1, idx1, k1 := MutateWords(5, n, words)
		m2, idx2, k2 := MutateWords(5, n, words)
		if idx1 != idx2 || k1 != k2 {
			t.Fatalf("mutation %d not deterministic", n)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("mutation %d words differ at %d", n, i)
			}
		}
		diff := 0
		for i := range words {
			if m1[i] != words[i] {
				diff++
				if i != idx1 {
					t.Fatalf("mutation %d changed word %d, reported %d", n, i, idx1)
				}
			}
		}
		if diff > 1 {
			t.Fatalf("mutation %d changed %d words", n, diff)
		}
	}
	// The original must never be aliased.
	m, _, _ := MutateWords(5, 0, words)
	m[0] = 0xDEAD
	if words[0] == 0xDEAD {
		t.Error("MutateWords aliased its input")
	}
}

func TestMutateWordsEmpty(t *testing.T) {
	m, _, _ := MutateWords(1, 1, nil)
	if len(m) != 0 {
		t.Errorf("mutating empty slice produced %v", m)
	}
}

func TestStringers(t *testing.T) {
	for pt, want := range map[Point]string{
		PointDispatch: "dispatch", PointSuspend: "suspend",
		PointStep: "step", PointMemOp: "memop", Point(99): "?",
	} {
		if pt.String() != want {
			t.Errorf("%d.String() = %q", int(pt), pt.String())
		}
	}
	for p, want := range map[WatchdogPolicy]string{
		WatchdogOff: "off", WatchdogExtend: "extend", WatchdogAbort: "abort",
	} {
		if p.String() != want {
			t.Errorf("policy %d = %q want %q", int(p), p.String(), want)
		}
	}
	for k, want := range map[MutationKind]string{
		MutateNop: "nop-strip", MutateFlip: "bit-flip", MutateReplace: "replace",
	} {
		if k.String() != want {
			t.Errorf("mutation %d = %q want %q", int(k), k.String(), want)
		}
	}
}

func TestWatchdogDefaults(t *testing.T) {
	var w Watchdog
	if w.Limit() != 32 || w.Factor() != 4 {
		t.Errorf("defaults: limit %d factor %d", w.Limit(), w.Factor())
	}
	w = Watchdog{MaxRestarts: 7, ExtendFactor: 2}
	if w.Limit() != 7 || w.Factor() != 2 {
		t.Errorf("overrides: limit %d factor %d", w.Limit(), w.Factor())
	}
}

func TestRepro(t *testing.T) {
	p := NewPlan(0xBEEF, 0.5)
	r := p.Repro()
	if !strings.Contains(r, "-seed 0xbeef") || !strings.Contains(r, "-level 0.5") ||
		!strings.Contains(r, "-table chaos") {
		t.Errorf("repro line %q missing fields", r)
	}
}
