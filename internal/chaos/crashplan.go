package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// CrashPlan is a deterministic multi-crash campaign: the schedule a
// supervised reboot-in-place run (internal/resilience) is driven by. For
// each boot b in [0, Crashes) the plan injects exactly one whole-machine
// crash — its ordinal drawn uniformly from [1, Span] and its kind (clean
// Crash, CrashVolatile, or Torn) drawn from the mix weights, both pure
// functions of (Seed, b) — and after Crashes boots the machine runs
// clean, so every campaign terminates. A crash whose ordinal exceeds the
// boot's natural length simply never fires; the boot completes early.
//
// Span is deliberately independent of the workload length: a span around
// the cost of recovery plus a transaction or two keeps per-boot forward
// progress small, so a long campaign exercises hundreds of reboots —
// including ordinals that land INSIDE the recovery path of the previous
// crash, the crash-during-recovery regime recoverable mutual exclusion
// assumes.
//
// The String/ParseCrashPlan pair is a loss-free one-line serialization:
// every campaign row in TableResilience embeds it as its reproducer, and
// FuzzChaosPlan holds the round trip.
type CrashPlan struct {
	Seed    uint64
	Point   Point  // ordinal space the crashes land in (step, memop, persist)
	Span    uint64 // crash ordinals are drawn from [1, Span]
	Crashes int    // boots that get a crash; later boots run clean
	// Kind mix weights (clean Crash : CrashVolatile : Torn). All zero
	// means volatile-only.
	WClean, WVolatile, WTorn int
}

func (p *CrashPlan) mix() (c, v, t int) {
	c, v, t = p.WClean, p.WVolatile, p.WTorn
	if c < 0 {
		c = 0
	}
	if v < 0 {
		v = 0
	}
	if t < 0 {
		t = 0
	}
	if c+v+t == 0 {
		v = 1
	}
	return
}

// CrashAt returns boot b's crash: the 1-based ordinal at p.Point and the
// action to inject there. ok is false when boot b runs clean (b < 0 or
// b >= Crashes).
func (p *CrashPlan) CrashAt(b int) (n uint64, a Action, ok bool) {
	if b < 0 || b >= p.Crashes || p.Span == 0 {
		return 0, Action{}, false
	}
	n = Derive(p.Seed, 0xCA11, uint64(b))%p.Span + 1
	c, v, t := p.mix()
	k := Derive(p.Seed, 0xCA12, uint64(b)) % uint64(c+v+t)
	switch {
	case k < uint64(c):
		a = Action{Crash: true}
	case k < uint64(c+v):
		a = Action{CrashVolatile: true}
	default:
		a = Action{CrashVolatile: true, Torn: true}
	}
	return n, a, true
}

// Boot returns the injector for boot b: a OneShot for the boot's planned
// crash, or nil when the boot runs clean.
func (p *CrashPlan) Boot(b int) Injector {
	n, a, ok := p.CrashAt(b)
	if !ok {
		return nil
	}
	return OneShot{Point: p.Point, N: n, Action: a}
}

// String renders the plan in its canonical one-line form:
//
//	crashplan:seed=0x1,point=step,span=600,crashes=1000,mix=1:2:1
func (p *CrashPlan) String() string {
	c, v, t := p.mix()
	return fmt.Sprintf("crashplan:seed=%#x,point=%s,span=%d,crashes=%d,mix=%d:%d:%d",
		p.Seed, p.Point, p.Span, p.Crashes, c, v, t)
}

// ParsePoint inverts Point.String for the points a crash plan can name.
func ParsePoint(s string) (Point, error) {
	for _, p := range []Point{PointDispatch, PointSuspend, PointStep, PointMemOp, PointPersist} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown point %q", s)
}

// ParseCrashPlan inverts CrashPlan.String. Unknown keys, missing keys,
// and malformed values are errors: a campaign reproducer that has
// drifted must fail loudly, not silently run a different campaign.
func ParseCrashPlan(s string) (*CrashPlan, error) {
	body, ok := strings.CutPrefix(s, "crashplan:")
	if !ok {
		return nil, fmt.Errorf("chaos: crash plan %q lacks the crashplan: prefix", s)
	}
	p := &CrashPlan{}
	seen := map[string]bool{}
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: crash plan field %q is not key=value", kv)
		}
		if seen[k] {
			return nil, fmt.Errorf("chaos: crash plan repeats field %q", k)
		}
		seen[k] = true
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 0, 64)
		case "point":
			p.Point, err = ParsePoint(v)
		case "span":
			p.Span, err = strconv.ParseUint(v, 0, 64)
		case "crashes":
			p.Crashes, err = strconv.Atoi(v)
		case "mix":
			var c, vv, t int
			if _, serr := fmt.Sscanf(v, "%d:%d:%d", &c, &vv, &t); serr != nil {
				err = fmt.Errorf("mix %q is not clean:volatile:torn", v)
			} else if c < 0 || vv < 0 || t < 0 || c+vv+t == 0 {
				err = fmt.Errorf("mix %q needs nonnegative weights summing above zero", v)
			} else {
				p.WClean, p.WVolatile, p.WTorn = c, vv, t
			}
		default:
			err = fmt.Errorf("unknown field %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: crash plan %q: %v", s, err)
		}
	}
	for _, k := range []string{"seed", "point", "span", "crashes", "mix"} {
		if !seen[k] {
			return nil, fmt.Errorf("chaos: crash plan %q missing field %q", s, k)
		}
	}
	if p.Crashes < 0 {
		return nil, fmt.Errorf("chaos: crash plan %q: negative crash count", s)
	}
	return p, nil
}

// offset translates per-boot ordinals into a global, cross-boot ordinal
// space.
type offset struct {
	inner Injector
	base  uint64
}

// Offset wraps inner so the n-th instrumentation point of the current
// boot is presented as global ordinal base+n. Substrates restart their
// ordinal counters at zero on every (re)boot; a supervised campaign or a
// model-checker schedule that addresses "the k-th persist operation
// since the first boot" installs Offset(inner, opsSoFar) on each reboot.
func Offset(inner Injector, base uint64) Injector {
	if inner == nil {
		return nil
	}
	return offset{inner: inner, base: base}
}

// At implements Injector.
func (o offset) At(p Point, n uint64) Action {
	return o.inner.At(p, o.base+n)
}
