package chaos

import "testing"

func TestCrashPlanDeterminism(t *testing.T) {
	p := &CrashPlan{Seed: 7, Point: PointStep, Span: 500, Crashes: 100, WClean: 1, WVolatile: 2, WTorn: 1}
	var clean, vol, torn int
	for b := 0; b < p.Crashes; b++ {
		n, a, ok := p.CrashAt(b)
		if !ok {
			t.Fatalf("boot %d: no crash planned", b)
		}
		if n < 1 || n > p.Span {
			t.Fatalf("boot %d: ordinal %d outside [1,%d]", b, n, p.Span)
		}
		n2, a2, _ := p.CrashAt(b)
		if n2 != n || a2 != a {
			t.Fatalf("boot %d: plan not deterministic", b)
		}
		switch {
		case a.Crash:
			clean++
		case a.Torn:
			torn++
		case a.CrashVolatile:
			vol++
		}
	}
	if clean == 0 || vol == 0 || torn == 0 {
		t.Fatalf("mix 1:2:1 over 100 boots produced clean=%d volatile=%d torn=%d", clean, vol, torn)
	}
	if _, _, ok := p.CrashAt(p.Crashes); ok {
		t.Fatalf("boot %d should run clean", p.Crashes)
	}
	if inj := p.Boot(p.Crashes); inj != nil {
		t.Fatalf("clean boot got injector %v", inj)
	}
	n, a, _ := p.CrashAt(3)
	got := p.Boot(3).At(p.Point, n)
	if got != a {
		t.Fatalf("Boot(3) injector = %+v at ordinal %d, want %+v", got, n, a)
	}
	if x := p.Boot(3).At(p.Point, n+1); x.Any() {
		t.Fatalf("Boot(3) fired off-ordinal: %+v", x)
	}
}

func TestCrashPlanRoundTrip(t *testing.T) {
	plans := []*CrashPlan{
		{Seed: 1, Point: PointStep, Span: 600, Crashes: 1000, WClean: 1, WVolatile: 2, WTorn: 1},
		{Seed: 0xDEADBEEF, Point: PointMemOp, Span: 90, Crashes: 160, WVolatile: 1},
		{Seed: 42, Point: PointPersist, Span: 12, Crashes: 6, WTorn: 3},
	}
	for _, p := range plans {
		s := p.String()
		q, err := ParseCrashPlan(s)
		if err != nil {
			t.Fatalf("ParseCrashPlan(%q): %v", s, err)
		}
		if q.String() != s {
			t.Fatalf("round trip drifted: %q -> %q", s, q.String())
		}
		for b := 0; b < p.Crashes+2; b++ {
			n1, a1, ok1 := p.CrashAt(b)
			n2, a2, ok2 := q.CrashAt(b)
			if n1 != n2 || a1 != a2 || ok1 != ok2 {
				t.Fatalf("%q: boot %d schedules differ after round trip", s, b)
			}
		}
	}
}

func TestCrashPlanParseErrors(t *testing.T) {
	bad := []string{
		"seed=1,point=step,span=5,crashes=1,mix=1:0:0", // missing prefix
		"crashplan:seed=1,point=step,span=5,crashes=1", // missing mix
		"crashplan:seed=1,point=nope,span=5,crashes=1,mix=1:0:0",
		"crashplan:seed=1,point=step,span=5,crashes=1,mix=0:0:0",
		"crashplan:seed=1,point=step,span=5,crashes=1,mix=1:0:0,bogus=2",
		"crashplan:seed=1,seed=2,point=step,span=5,crashes=1,mix=1:0:0",
		"crashplan:seed=1,point=step,span=5,crashes=-3,mix=1:0:0",
	}
	for _, s := range bad {
		if _, err := ParseCrashPlan(s); err == nil {
			t.Errorf("ParseCrashPlan(%q) succeeded, want error", s)
		}
	}
}

func TestOffsetInjector(t *testing.T) {
	inner := OneShot{Point: PointPersist, N: 10, Action: Action{CrashVolatile: true}}
	inj := Offset(inner, 7)
	if a := inj.At(PointPersist, 3); !a.CrashVolatile {
		t.Fatalf("offset injector missed global ordinal 10 (local 3): %+v", a)
	}
	if a := inj.At(PointPersist, 10); a.Any() {
		t.Fatalf("offset injector fired at local 10 (global 17): %+v", a)
	}
	if Offset(nil, 5) != nil {
		t.Fatalf("Offset(nil) should stay nil")
	}
}

// FuzzChaosPlan holds the serialization round trip that makes every
// TableResilience campaign line a valid one-line reproducer: any plan
// String()s to a form ParseCrashPlan accepts, the parse reproduces the
// exact crash schedule, and any accepted string re-serializes stably.
func FuzzChaosPlan(f *testing.F) {
	f.Add(uint64(1), 2, uint64(600), 1000, 1, 2, 1)
	f.Add(uint64(0xDEADBEEF), 3, uint64(90), 160, 0, 1, 0)
	f.Add(uint64(42), 4, uint64(12), 6, 0, 0, 3)
	f.Add(uint64(0), 0, uint64(0), 0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, seed uint64, point int, span uint64, crashes, wc, wv, wt int) {
		p := &CrashPlan{
			Seed:    seed,
			Point:   Point(((point % 5) + 5) % 5),
			Span:    span % (1 << 40),
			Crashes: ((crashes % (1 << 20)) + (1 << 20)) % (1 << 20),
			WClean:  wc, WVolatile: wv, WTorn: wt,
		}
		s := p.String()
		q, err := ParseCrashPlan(s)
		if err != nil {
			t.Fatalf("own String() did not parse: %q: %v", s, err)
		}
		if q.String() != s {
			t.Fatalf("re-serialization drifted: %q -> %q", s, q.String())
		}
		for _, b := range []int{0, 1, p.Crashes / 2, p.Crashes - 1, p.Crashes} {
			n1, a1, ok1 := p.CrashAt(b)
			n2, a2, ok2 := q.CrashAt(b)
			if n1 != n2 || a1 != a2 || ok1 != ok2 {
				t.Fatalf("%q: boot %d schedule differs after round trip", s, b)
			}
		}
	})
}
