// Package core is the heart of the reproduction: the atomic-operation
// mechanisms of Bershad, Redell & Ellis, "Fast Mutual Exclusion for
// Uniprocessors" (ASPLOS 1992), expressed against the virtual uniprocessor
// of internal/uniproc.
//
// A Mechanism provides the primitive atomic read-modify-write operations
// (Test-And-Set, Clear, and the Fetch-And-Add extension) that higher-level
// synchronization — internal/cthreads' spinlocks, mutexes and condition
// variables — is built from. Four mechanisms are provided:
//
//   - RAS: restartable atomic sequences, the paper's contribution (§2.4).
//     Optimistic: the sequence runs unguarded; if the thread is suspended
//     inside it, the runtime re-runs it from the top. Inline and
//     out-of-line (registered, with call linkage) variants correspond to
//     the Taos and Mach implementations.
//   - KernelEmul: a kernel trap per operation, with interrupts disabled in
//     the kernel (§2.3). Pessimistic and expensive.
//   - Interlocked: hardware memory-interlocked instructions (§2.1); only
//     available on processor profiles that have them.
//   - Software reservation (Lamport's algorithm) lives in internal/lamport
//     and plugs into the same Locker interface.
//
// The package also defines Locker, the lock-level abstraction used by the
// thread package, and TASLock, the Test-And-Set spinlock that turns any
// Mechanism into a Locker.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/uniproc"
)

// Word re-exports the simulated memory word for convenience.
type Word = uniproc.Word

// Mechanism implements primitive atomic operations on a uniprocessor.
type Mechanism interface {
	// Name identifies the mechanism in benchmark output.
	Name() string
	// TestAndSet atomically reads *w and sets it to 1, returning the old
	// value.
	TestAndSet(e *uniproc.Env, w *Word) Word
	// Clear atomically resets *w to 0. On a uniprocessor a single aligned
	// word store is atomic, so most mechanisms implement this as a plain
	// store (§2.4).
	Clear(e *uniproc.Env, w *Word)
	// FetchAndAdd atomically adds delta to *w and returns the old value
	// (the §2 remark that "other primitives ... could be similarly
	// constructed").
	FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word
}

// RAS implements atomic operations with restartable atomic sequences.
type RAS struct {
	// Inline selects the Taos-style inlined sequence; when false the
	// sequence is out-of-line as in Mach's explicit registration and each
	// operation pays call linkage (§3.1, Table 1).
	Inline bool
}

// NewRAS returns the inlined (designated-sequence) variant.
func NewRAS() *RAS { return &RAS{Inline: true} }

// NewRASRegistered returns the out-of-line (registered) variant.
func NewRASRegistered() *RAS { return &RAS{Inline: false} }

// Name implements Mechanism.
func (r *RAS) Name() string {
	if r.Inline {
		return "ras-inline"
	}
	return "ras-branch"
}

// TestAndSet implements Mechanism: the paper's Figure 3/4 sequence — one
// load, one ALU op, one committing store.
func (r *RAS) TestAndSet(e *uniproc.Env, w *Word) Word {
	if !r.Inline {
		e.ChargeCall()
	}
	var old Word
	e.Restartable(func() {
		old = e.Load(w) // lw   v0, (a0)
		e.ChargeALU(1)  // li   t0, 1
		e.Commit(w, 1)  // sw   t0, (a0)
	})
	return old
}

// Clear implements Mechanism: a single word store is atomic.
func (r *RAS) Clear(e *uniproc.Env, w *Word) {
	e.Store(w, 0)
}

// FetchAndAdd implements Mechanism with a restartable sequence.
func (r *RAS) FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word {
	if !r.Inline {
		e.ChargeCall()
	}
	var old Word
	e.Restartable(func() {
		old = e.Load(w)
		e.ChargeALU(1)
		e.Commit(w, old+delta)
	})
	return old
}

// KernelEmul implements atomic operations by trapping into the kernel,
// which performs the read-modify-write with interrupts disabled (§2.3).
type KernelEmul struct {
	profile *arch.Profile
}

// NewKernelEmul returns a kernel-emulation mechanism costed for profile.
func NewKernelEmul(p *arch.Profile) *KernelEmul {
	if p == nil {
		p = arch.R3000()
	}
	return &KernelEmul{profile: p}
}

// Name implements Mechanism.
func (k *KernelEmul) Name() string { return "emulation" }

// TestAndSet implements Mechanism via a kernel trap.
func (k *KernelEmul) TestAndSet(e *uniproc.Env, w *Word) Word {
	var old Word
	e.Trap(k.profile.EmulTASCycles, func() {
		old = *w
		*w = 1
		e.CountEmulTrap()
	})
	return old
}

// Clear implements Mechanism: the release store needs no trap (§5.1's
// measured test clears with a plain store).
func (k *KernelEmul) Clear(e *uniproc.Env, w *Word) {
	e.Store(w, 0)
}

// FetchAndAdd implements Mechanism via a kernel trap.
func (k *KernelEmul) FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word {
	var old Word
	e.Trap(k.profile.EmulTASCycles, func() {
		old = *w
		*w = old + delta
		e.CountEmulTrap()
	})
	return old
}

// Interlocked implements atomic operations with hardware memory-interlocked
// instructions (§2.1). Constructing it for a profile without hardware
// support fails.
type Interlocked struct {
	profile *arch.Profile
}

// NewInterlocked returns the hardware mechanism, or an error if the
// processor has no interlocked instructions (e.g. the R3000).
func NewInterlocked(p *arch.Profile) (*Interlocked, error) {
	if p == nil || !p.HasInterlocked {
		name := "nil profile"
		if p != nil {
			name = p.Name
		}
		return nil, fmt.Errorf("core: %s has no memory-interlocked instructions", name)
	}
	return &Interlocked{profile: p}, nil
}

// Name implements Mechanism.
func (i *Interlocked) Name() string { return "interlocked" }

// TestAndSet implements Mechanism with one interlocked instruction.
func (i *Interlocked) TestAndSet(e *uniproc.Env, w *Word) Word {
	var old Word
	e.Interlocked(func() {
		old = *w
		*w = 1
	})
	return old
}

// Clear implements Mechanism.
func (i *Interlocked) Clear(e *uniproc.Env, w *Word) {
	e.Store(w, 0)
}

// FetchAndAdd implements Mechanism.
func (i *Interlocked) FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word {
	var old Word
	e.Interlocked(func() {
		old = *w
		*w = old + delta
	})
	return old
}

// Unsound is the no-recovery baseline: the same load/store sequence as RAS
// with no rollback. It exists to demonstrate (in tests and examples) that
// the optimistic sequence really does need kernel support — under an
// adversarial preemption pattern it loses updates.
type Unsound struct{}

// Name implements Mechanism.
func (Unsound) Name() string { return "unsound" }

// TestAndSet implements Mechanism — incorrectly, by design.
func (Unsound) TestAndSet(e *uniproc.Env, w *Word) Word {
	old := e.Load(w)
	e.ChargeALU(1)
	e.Store(w, 1)
	return old
}

// Clear implements Mechanism.
func (Unsound) Clear(e *uniproc.Env, w *Word) { e.Store(w, 0) }

// FetchAndAdd implements Mechanism — incorrectly, by design.
func (Unsound) FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word {
	old := e.Load(w)
	e.ChargeALU(1)
	e.Store(w, old+delta)
	return old
}

// Locker is the lock-level abstraction the thread package builds on: any
// mutual exclusion protocol providing acquire/release.
type Locker interface {
	Name() string
	Acquire(e *uniproc.Env)
	Release(e *uniproc.Env)
}

// TASLock is a Test-And-Set spinlock over any Mechanism. On a uniprocessor
// spinning is useless while the holder is suspended, so contention yields
// the processor. Lock-found-held events are recorded with
// Processor.CountHoldup to reproduce the paper's §5.3 analysis.
type TASLock struct {
	mech Mechanism
	word Word
}

// NewTASLock creates an unlocked TASLock.
func NewTASLock(m Mechanism) *TASLock { return &TASLock{mech: m} }

// Name implements Locker.
func (l *TASLock) Name() string { return "tas(" + l.mech.Name() + ")" }

// Acquire implements Locker.
func (l *TASLock) Acquire(e *uniproc.Env) {
	for l.mech.TestAndSet(e, &l.word) != 0 {
		e.Processor().CountHoldup()
		e.Yield()
	}
}

// TryAcquire attempts the lock once without yielding; it reports success.
func (l *TASLock) TryAcquire(e *uniproc.Env) bool {
	return l.mech.TestAndSet(e, &l.word) == 0
}

// Release implements Locker.
func (l *TASLock) Release(e *uniproc.Env) {
	l.mech.Clear(e, &l.word)
}

// Held reports whether the lock word is currently set. Intended for
// assertions and statistics, not for synchronization decisions.
func (l *TASLock) Held() bool { return l.word != 0 }
