package core

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/uniproc"
)

// mechanisms returns every sound mechanism for the given profile.
func mechanisms(p *arch.Profile) []Mechanism {
	ms := []Mechanism{NewRAS(), NewRASRegistered(), NewKernelEmul(p)}
	if il, err := NewInterlocked(p); err == nil {
		ms = append(ms, il)
	}
	return ms
}

func TestMechanismNames(t *testing.T) {
	seen := map[string]bool{}
	all := append(mechanisms(arch.I486()), Unsound{})
	for _, m := range all {
		if m.Name() == "" || seen[m.Name()] {
			t.Errorf("bad or duplicate name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestTASSemanticsSingleThread(t *testing.T) {
	for _, m := range mechanisms(arch.I486()) {
		p := uniproc.New(uniproc.Config{Profile: arch.I486()})
		var w Word
		var r1, r2, r3 Word
		p.Go("main", func(e *uniproc.Env) {
			r1 = m.TestAndSet(e, &w) // free -> 0, sets
			r2 = m.TestAndSet(e, &w) // held -> 1
			m.Clear(e, &w)
			r3 = m.TestAndSet(e, &w) // free again -> 0
		})
		if err := p.Run(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if r1 != 0 || r2 != 1 || r3 != 0 {
			t.Errorf("%s: TAS results %d,%d,%d want 0,1,0", m.Name(), r1, r2, r3)
		}
		if w != 1 {
			t.Errorf("%s: final word %d", m.Name(), w)
		}
	}
}

func TestFetchAndAdd(t *testing.T) {
	for _, m := range mechanisms(arch.I486()) {
		p := uniproc.New(uniproc.Config{Profile: arch.I486()})
		var w Word = 10
		var old Word
		p.Go("main", func(e *uniproc.Env) {
			old = m.FetchAndAdd(e, &w, 5)
		})
		if err := p.Run(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if old != 10 || w != 15 {
			t.Errorf("%s: FAA old=%d new=%d", m.Name(), old, w)
		}
	}
}

// counterRun exercises n threads doing iters locked increments with mech.
func counterRun(t *testing.T, p *arch.Profile, m Mechanism, q uint64, n, iters int) (Word, *uniproc.Processor) {
	t.Helper()
	proc := uniproc.New(uniproc.Config{Profile: p, Quantum: q})
	lock := NewTASLock(m)
	var counter Word
	for i := 0; i < n; i++ {
		proc.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
	}
	if err := proc.Run(); err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return counter, proc
}

func TestMutualExclusionAllMechanisms(t *testing.T) {
	const n, iters = 4, 200
	prof := arch.I486()
	for _, m := range mechanisms(prof) {
		for _, q := range []uint64{29, 83, 211, 50000} {
			got, _ := counterRun(t, prof, m, q, n, iters)
			if got != n*iters {
				t.Errorf("%s q=%d: counter = %d, want %d", m.Name(), q, got, n*iters)
			}
		}
	}
}

func TestUnsoundLosesUpdates(t *testing.T) {
	const n, iters = 4, 300
	lost := false
	for q := uint64(13); q <= 97 && !lost; q += 6 {
		got, _ := counterRun(t, arch.R3000(), Unsound{}, q, n, iters)
		if got < n*iters {
			lost = true
		}
	}
	if !lost {
		t.Error("unsound mechanism never lost an update")
	}
}

func TestRASRestartsOccurAndAreCounted(t *testing.T) {
	const n, iters = 4, 400
	_, proc := counterRun(t, arch.R3000(), NewRAS(), 31, n, iters)
	if proc.Stats.Restarts == 0 {
		t.Error("no restarts under a 31-cycle quantum")
	}
	if proc.Stats.Restarts > proc.Stats.Suspensions {
		t.Error("more restarts than suspensions")
	}
}

func TestRegisteredVariantChargesLinkage(t *testing.T) {
	// The branch variant must cost strictly more cycles than the inline
	// variant on the same workload (Table 1's 0.64 vs 0.51 us).
	run := func(m Mechanism) uint64 {
		proc := uniproc.New(uniproc.Config{Quantum: 1 << 40})
		lock := NewTASLock(m)
		var counter Word
		proc.Go("main", func(e *uniproc.Env) {
			for i := 0; i < 1000; i++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
		if err := proc.Run(); err != nil {
			t.Fatal(err)
		}
		return proc.Clock()
	}
	inline, branch := run(NewRAS()), run(NewRASRegistered())
	if branch <= inline {
		t.Errorf("branch (%d cycles) not slower than inline (%d)", branch, inline)
	}
}

func TestEmulationIsSlowestSoftwareMechanism(t *testing.T) {
	run := func(m Mechanism) uint64 {
		got, proc := counterRun(t, arch.R3000(), m, 1<<40, 1, 500)
		if got != 500 {
			t.Fatalf("%s: counter %d", m.Name(), got)
		}
		return proc.Clock()
	}
	ras := run(NewRAS())
	emul := run(NewKernelEmul(arch.R3000()))
	if emul < ras*3 {
		t.Errorf("emulation (%d) not >> RAS (%d)", emul, ras)
	}
}

func TestInterlockedRequiresHardware(t *testing.T) {
	if _, err := NewInterlocked(arch.R3000()); err == nil {
		t.Error("interlocked constructed on R3000")
	}
	if _, err := NewInterlocked(nil); err == nil {
		t.Error("interlocked constructed on nil profile")
	}
	if _, err := NewInterlocked(arch.SPARC()); err != nil {
		t.Errorf("interlocked failed on SPARC: %v", err)
	}
}

func TestTASLockTryAcquire(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	lock := NewTASLock(NewRAS())
	var ok1, ok2 bool
	p.Go("main", func(e *uniproc.Env) {
		ok1 = lock.TryAcquire(e)
		ok2 = lock.TryAcquire(e)
		lock.Release(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok1 || ok2 {
		t.Errorf("TryAcquire = %v,%v want true,false", ok1, ok2)
	}
	if lock.Held() {
		t.Error("lock still held after release")
	}
	if lock.Name() == "" {
		t.Error("empty lock name")
	}
}

func TestHoldupsCountedOnContention(t *testing.T) {
	// A fixed quantum can phase-lock with the loop period and never land
	// inside the critical section; jitter breaks the phase lock.
	const n, iters = 4, 200
	proc := uniproc.New(uniproc.Config{Quantum: 131, JitterSeed: 7})
	lock := NewTASLock(NewRAS())
	var counter Word
	for i := 0; i < n; i++ {
		proc.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
	}
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != n*iters {
		t.Fatalf("counter = %d", counter)
	}
	if proc.HoldupCount() == 0 {
		t.Error("no holdups recorded under contention")
	}
}

// Property: FetchAndAdd under concurrency sums exactly, for any quantum.
func TestQuickFetchAndAddExact(t *testing.T) {
	f := func(q16 uint16) bool {
		q := uint64(q16)%500 + 17
		proc := uniproc.New(uniproc.Config{Quantum: q})
		m := NewRAS()
		var w Word
		const n, iters = 3, 50
		for i := 0; i < n; i++ {
			proc.Go("adder", func(e *uniproc.Env) {
				for j := 0; j < iters; j++ {
					m.FetchAndAdd(e, &w, 1)
				}
			})
		}
		if err := proc.Run(); err != nil {
			return false
		}
		return w == n*iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
