package core

import (
	"repro/internal/uniproc"
)

// Bounded is implemented by mechanisms whose atomic operations can be
// attempted with a bounded number of sequence restarts, reporting failure
// instead of retrying forever. RAS implements it via Env.TryRestartable;
// abandoning is safe because an uncommitted attempt has no visible write.
type Bounded interface {
	Mechanism
	// TryTestAndSet is TestAndSet bounded to maxRestarts rollbacks; ok is
	// false if the bound was hit (and the word is untouched).
	TryTestAndSet(e *uniproc.Env, w *Word, maxRestarts uint64) (old Word, ok bool)
	// TryFetchAndAdd is FetchAndAdd bounded the same way.
	TryFetchAndAdd(e *uniproc.Env, w *Word, delta Word, maxRestarts uint64) (old Word, ok bool)
}

// TryTestAndSet implements Bounded.
func (r *RAS) TryTestAndSet(e *uniproc.Env, w *Word, maxRestarts uint64) (Word, bool) {
	if !r.Inline {
		e.ChargeCall()
	}
	var old Word
	ok := e.TryRestartable(maxRestarts, func() {
		old = e.Load(w)
		e.ChargeALU(1)
		e.Commit(w, 1)
	})
	return old, ok
}

// TryFetchAndAdd implements Bounded.
func (r *RAS) TryFetchAndAdd(e *uniproc.Env, w *Word, delta Word, maxRestarts uint64) (Word, bool) {
	if !r.Inline {
		e.ChargeCall()
	}
	var old Word
	ok := e.TryRestartable(maxRestarts, func() {
		old = e.Load(w)
		e.ChargeALU(1)
		e.Commit(w, old+delta)
	})
	return old, ok
}

// Degrading is an adaptive Mechanism: it runs a fast optimistic mechanism
// (typically RAS) while it behaves, monitors its restart rate, and
// permanently demotes to a pessimistic fallback (typically kernel
// emulation) when the sequence proves pathological — either a single
// operation exceeding OpRestartLimit rollbacks (the §3.1 livelock, on a
// Bounded fast path), or a sustained restart rate above RateNum/RateDen
// over a Window of operations. Demotion is one-way by default: a sequence
// that cannot fit the quantum today will not fit it tomorrow, and
// emulation is always correct, just slower. Systems that *recover* — the
// hostile quantum was transient — can arm RepromoteAfter to return to the
// fast path after a quiet spell. Demotions are recorded in the
// processor's stats and trace via Env.CountDemotion, re-promotions via
// Env.CountPromotion.
//
// Degrading is built for the virtual uniprocessor's single-baton
// discipline: its counters need no synchronization because at most one
// thread executes at a time.
type Degrading struct {
	fast Mechanism
	slow Mechanism

	// OpRestartLimit bounds a single operation's restarts before demotion
	// when fast is Bounded; 0 means 16.
	OpRestartLimit uint64
	// Window is the number of operations per rate-monitoring window; 0
	// means 64.
	Window uint64
	// RateNum/RateDen is the demotion threshold for restarts per attempt
	// over a window; both 0 means 1/2.
	RateNum, RateDen uint64
	// RepromoteAfter, when nonzero, arms re-promotion hysteresis: after
	// that many slow-path operations the mechanism optimistically returns
	// to the fast path. Each further demotion doubles the effective wait
	// (exponential backoff), so a genuinely pathological sequence still
	// settles on emulation while a transient storm is forgiven. 0 (the
	// default) keeps demotion permanent.
	RepromoteAfter uint64

	attempts  uint64 // fast-path operations this window
	restarts  uint64 // rollbacks observed this window
	slowOps   uint64 // slow-path operations since the last demotion
	waitScale uint64 // hysteresis multiplier; doubles on each demotion
	demoted   bool
}

// NewDegrading wraps fast with adaptive demotion to slow.
func NewDegrading(fast, slow Mechanism) *Degrading {
	return &Degrading{fast: fast, slow: slow}
}

// Name implements Mechanism.
func (d *Degrading) Name() string {
	return "degrading(" + d.fast.Name() + "->" + d.slow.Name() + ")"
}

// Demoted reports whether the mechanism has fallen back permanently.
func (d *Degrading) Demoted() bool { return d.demoted }

func (d *Degrading) opLimit() uint64 {
	if d.OpRestartLimit == 0 {
		return 16
	}
	return d.OpRestartLimit
}

func (d *Degrading) window() uint64 {
	if d.Window == 0 {
		return 64
	}
	return d.Window
}

func (d *Degrading) rate() (uint64, uint64) {
	if d.RateNum == 0 && d.RateDen == 0 {
		return 1, 2
	}
	return d.RateNum, d.RateDen
}

func (d *Degrading) demote(e *uniproc.Env) {
	// A second thread may have been mid-attempt when the first demoted;
	// count the transition once.
	if d.demoted {
		return
	}
	d.demoted = true
	d.slowOps = 0
	if d.waitScale == 0 {
		d.waitScale = 1
	} else if d.waitScale < 1<<32 {
		d.waitScale *= 2
	}
	e.CountDemotion()
}

// maybeRepromote accounts one slow-path operation and, when RepromoteAfter
// is armed and the hysteresis wait has elapsed, returns the mechanism to
// the fast path with fresh rate-monitoring windows.
func (d *Degrading) maybeRepromote(e *uniproc.Env) {
	if d.RepromoteAfter == 0 {
		return
	}
	d.slowOps++
	if d.slowOps < d.RepromoteAfter*d.waitScale {
		return
	}
	d.demoted = false
	d.slowOps = 0
	d.attempts, d.restarts = 0, 0
	e.CountPromotion()
}

// observe accounts one fast-path operation and its rollbacks, demoting if
// the windowed restart rate crosses the threshold.
func (d *Degrading) observe(e *uniproc.Env, restarts uint64) {
	d.attempts++
	d.restarts += restarts
	if d.attempts < d.window() {
		return
	}
	num, den := d.rate()
	if d.restarts*den >= d.attempts*num {
		d.demote(e)
		return
	}
	d.attempts, d.restarts = 0, 0
}

// TestAndSet implements Mechanism.
func (d *Degrading) TestAndSet(e *uniproc.Env, w *Word) Word {
	if d.demoted {
		old := d.slow.TestAndSet(e, w)
		d.maybeRepromote(e)
		return old
	}
	before := e.Self().Restarts
	if b, ok := d.fast.(Bounded); ok {
		old, done := b.TryTestAndSet(e, w, d.opLimit())
		if !done {
			d.demote(e)
			return d.slow.TestAndSet(e, w)
		}
		d.observe(e, e.Self().Restarts-before)
		return old
	}
	old := d.fast.TestAndSet(e, w)
	d.observe(e, e.Self().Restarts-before)
	return old
}

// Clear implements Mechanism: a release store is atomic either way.
func (d *Degrading) Clear(e *uniproc.Env, w *Word) {
	if d.demoted {
		d.slow.Clear(e, w)
		return
	}
	d.fast.Clear(e, w)
}

// FetchAndAdd implements Mechanism.
func (d *Degrading) FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word {
	if d.demoted {
		old := d.slow.FetchAndAdd(e, w, delta)
		d.maybeRepromote(e)
		return old
	}
	before := e.Self().Restarts
	if b, ok := d.fast.(Bounded); ok {
		old, done := b.TryFetchAndAdd(e, w, delta, d.opLimit())
		if !done {
			d.demote(e)
			return d.slow.FetchAndAdd(e, w, delta)
		}
		d.observe(e, e.Self().Restarts-before)
		return old
	}
	old := d.fast.FetchAndAdd(e, w, delta)
	d.observe(e, e.Self().Restarts-before)
	return old
}
