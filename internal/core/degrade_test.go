package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/uniproc"
)

// A RAS test-and-set needs 4 cycles (load, ALU, committing store) on the
// R3000 profile: a 2-cycle quantum livelocks every attempt, so the
// degrading wrapper must notice and demote to kernel emulation — after
// which the same workload completes with an exact counter.
func TestDegradingDemotesUnderLivelock(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	d.OpRestartLimit = 8
	got, proc := counterRun(t, prof, d, 2, 2, 50)
	if got != 2*50 {
		t.Errorf("counter %d want %d", got, 2*50)
	}
	if !d.Demoted() {
		t.Error("wrapper did not demote under a livelocking quantum")
	}
	if proc.Stats.Demotions != 1 {
		t.Errorf("Demotions = %d, want 1 (demotion is permanent, counted once)", proc.Stats.Demotions)
	}
	if proc.Stats.EmulTraps == 0 {
		t.Error("no emulation traps after demotion")
	}
}

// With a realistic quantum the fast path stays healthy: no demotion, no
// emulation traps, and the counter is exact.
func TestDegradingStaysFastWhenHealthy(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	got, proc := counterRun(t, prof, d, 50000, 4, 200)
	if got != 4*200 {
		t.Errorf("counter %d want %d", got, 4*200)
	}
	if d.Demoted() {
		t.Error("healthy fast path was demoted")
	}
	if proc.Stats.EmulTraps != 0 {
		t.Errorf("EmulTraps = %d on the fast path", proc.Stats.EmulTraps)
	}
	if proc.Stats.Demotions != 0 {
		t.Errorf("Demotions = %d", proc.Stats.Demotions)
	}
}

// The windowed restart-rate monitor: with a threshold so strict that any
// rollback demotes, a short quantum (which provokes occasional restarts
// without livelocking) must trip it.
func TestDegradingRateMonitorDemotes(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	d.Window = 8
	d.RateNum, d.RateDen = 1, 1000
	got, proc := counterRun(t, prof, d, 37, 4, 300)
	if got != 4*300 {
		t.Errorf("counter %d want %d", got, 4*300)
	}
	if !d.Demoted() {
		t.Error("rate monitor never demoted despite restarts under a 37-cycle quantum")
	}
	if proc.Stats.Demotions != 1 {
		t.Errorf("Demotions = %d", proc.Stats.Demotions)
	}
}

// FetchAndAdd degrades too, and stays numerically exact across the switch.
func TestDegradingFetchAndAdd(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	d.OpRestartLimit = 4
	proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: 2})
	var w Word
	const n, iters = 3, 40
	for i := 0; i < n; i++ {
		proc.Go("adder", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				d.FetchAndAdd(e, &w, 1)
			}
		})
	}
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if w != n*iters {
		t.Errorf("sum %d want %d", w, n*iters)
	}
	if !d.Demoted() {
		t.Error("FetchAndAdd did not demote under a livelocking quantum")
	}
}

// Try variants abandon without visible writes and report the truth.
func TestRASTryVariants(t *testing.T) {
	prof := arch.R3000()
	proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: 2})
	r := NewRAS()
	var w Word
	var tasOK, faaOK bool
	proc.Go("main", func(e *uniproc.Env) {
		_, tasOK = r.TryTestAndSet(e, &w, 3)
		_, faaOK = r.TryFetchAndAdd(e, &w, 5, 3)
	})
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if tasOK || faaOK {
		t.Errorf("try variants succeeded under a livelocking quantum: tas=%v faa=%v", tasOK, faaOK)
	}
	if w != 0 {
		t.Errorf("abandoned attempts left a visible write: %d", w)
	}
}

func TestDegradingName(t *testing.T) {
	d := NewDegrading(NewRAS(), NewKernelEmul(arch.R3000()))
	want := "degrading(ras-inline->emulation)"
	if d.Name() != want {
		t.Errorf("Name() = %q want %q", d.Name(), want)
	}
	if !strings.Contains(d.Name(), "->") {
		t.Error("name does not show the degradation direction")
	}
}
