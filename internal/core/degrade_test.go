package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/uniproc"
)

// A RAS test-and-set needs 4 cycles (load, ALU, committing store) on the
// R3000 profile: a 2-cycle quantum livelocks every attempt, so the
// degrading wrapper must notice and demote to kernel emulation — after
// which the same workload completes with an exact counter.
func TestDegradingDemotesUnderLivelock(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	d.OpRestartLimit = 8
	got, proc := counterRun(t, prof, d, 2, 2, 50)
	if got != 2*50 {
		t.Errorf("counter %d want %d", got, 2*50)
	}
	if !d.Demoted() {
		t.Error("wrapper did not demote under a livelocking quantum")
	}
	if proc.Stats.Demotions != 1 {
		t.Errorf("Demotions = %d, want 1 (demotion is permanent, counted once)", proc.Stats.Demotions)
	}
	if proc.Stats.EmulTraps == 0 {
		t.Error("no emulation traps after demotion")
	}
}

// With a realistic quantum the fast path stays healthy: no demotion, no
// emulation traps, and the counter is exact.
func TestDegradingStaysFastWhenHealthy(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	got, proc := counterRun(t, prof, d, 50000, 4, 200)
	if got != 4*200 {
		t.Errorf("counter %d want %d", got, 4*200)
	}
	if d.Demoted() {
		t.Error("healthy fast path was demoted")
	}
	if proc.Stats.EmulTraps != 0 {
		t.Errorf("EmulTraps = %d on the fast path", proc.Stats.EmulTraps)
	}
	if proc.Stats.Demotions != 0 {
		t.Errorf("Demotions = %d", proc.Stats.Demotions)
	}
}

// The windowed restart-rate monitor: with a threshold so strict that any
// rollback demotes, a short quantum (which provokes occasional restarts
// without livelocking) must trip it.
func TestDegradingRateMonitorDemotes(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	d.Window = 8
	d.RateNum, d.RateDen = 1, 1000
	got, proc := counterRun(t, prof, d, 37, 4, 300)
	if got != 4*300 {
		t.Errorf("counter %d want %d", got, 4*300)
	}
	if !d.Demoted() {
		t.Error("rate monitor never demoted despite restarts under a 37-cycle quantum")
	}
	if proc.Stats.Demotions != 1 {
		t.Errorf("Demotions = %d", proc.Stats.Demotions)
	}
}

// FetchAndAdd degrades too, and stays numerically exact across the switch.
func TestDegradingFetchAndAdd(t *testing.T) {
	prof := arch.R3000()
	d := NewDegrading(NewRAS(), NewKernelEmul(prof))
	d.OpRestartLimit = 4
	proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: 2})
	var w Word
	const n, iters = 3, 40
	for i := 0; i < n; i++ {
		proc.Go("adder", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				d.FetchAndAdd(e, &w, 1)
			}
		})
	}
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if w != n*iters {
		t.Errorf("sum %d want %d", w, n*iters)
	}
	if !d.Demoted() {
		t.Error("FetchAndAdd did not demote under a livelocking quantum")
	}
}

// Try variants abandon without visible writes and report the truth.
func TestRASTryVariants(t *testing.T) {
	prof := arch.R3000()
	proc := uniproc.New(uniproc.Config{Profile: prof, Quantum: 2})
	r := NewRAS()
	var w Word
	var tasOK, faaOK bool
	proc.Go("main", func(e *uniproc.Env) {
		_, tasOK = r.TryTestAndSet(e, &w, 3)
		_, faaOK = r.TryFetchAndAdd(e, &w, 5, 3)
	})
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if tasOK || faaOK {
		t.Errorf("try variants succeeded under a livelocking quantum: tas=%v faa=%v", tasOK, faaOK)
	}
	if w != 0 {
		t.Errorf("abandoned attempts left a visible write: %d", w)
	}
}

func TestDegradingName(t *testing.T) {
	d := NewDegrading(NewRAS(), NewKernelEmul(arch.R3000()))
	want := "degrading(ras-inline->emulation)"
	if d.Name() != want {
		t.Errorf("Name() = %q want %q", d.Name(), want)
	}
	if !strings.Contains(d.Name(), "->") {
		t.Error("name does not show the degradation direction")
	}
}

// gateInjector preempts at every memop while hostile — enough to livelock
// any restartable sequence — and is harmless otherwise. The test flips the
// gate between phases; single-baton scheduling makes that safe.
type gateInjector struct{ hostile bool }

func (g *gateInjector) At(pt chaos.Point, _ uint64) chaos.Action {
	if g.hostile && pt == chaos.PointMemOp {
		return chaos.Action{Preempt: true}
	}
	return chaos.Action{}
}

// With RepromoteAfter armed, a demoted mechanism returns to the fast path
// after a quiet spell, and each re-demotion doubles the wait.
func TestDegradingRepromotesWithHysteresis(t *testing.T) {
	gate := &gateInjector{hostile: true}
	proc := uniproc.New(uniproc.Config{Faults: gate})
	d := NewDegrading(NewRAS(), NewKernelEmul(arch.R3000()))
	d.OpRestartLimit = 4
	d.RepromoteAfter = 4
	var w Word
	slowTAS := func(e *uniproc.Env, n int) {
		for i := 0; i < n; i++ {
			d.TestAndSet(e, &w)
			w = 0 // reset directly: Clear would add memops to reason about
		}
	}
	proc.Go("main", func(e *uniproc.Env) {
		// Phase 1: hostile quantum forces the first op past its restart
		// bound and demotes.
		d.TestAndSet(e, &w)
		if !d.Demoted() {
			t.Error("phase 1: not demoted under hostile injection")
		}
		gate.hostile = false
		w = 0
		// Phase 2: RepromoteAfter quiet slow ops re-promote.
		slowTAS(e, 3)
		if !d.Demoted() {
			t.Error("phase 2: promoted early")
		}
		slowTAS(e, 1)
		if d.Demoted() {
			t.Error("phase 2: did not re-promote after the quiet spell")
		}
		// Phase 3: the fast path works again.
		if d.TestAndSet(e, &w) != 0 || w != 1 {
			t.Error("phase 3: fast path wrong after re-promotion")
		}
		w = 0
		// Phase 4: a second storm demotes again; the wait is now doubled.
		gate.hostile = true
		d.TestAndSet(e, &w)
		if !d.Demoted() {
			t.Error("phase 4: not re-demoted")
		}
		gate.hostile = false
		w = 0
		slowTAS(e, 4)
		if d.Demoted() == false {
			t.Error("phase 4: promoted after a single wait despite backoff doubling")
		}
		slowTAS(e, 4)
		if d.Demoted() {
			t.Error("phase 4: did not promote after the doubled wait")
		}
	})
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if proc.Stats.Demotions != 2 || proc.Stats.Promotions != 2 {
		t.Errorf("demotions=%d promotions=%d, want 2/2", proc.Stats.Demotions, proc.Stats.Promotions)
	}
}

// The knob is off by default: demotion stays permanent.
func TestDegradingPermanentByDefault(t *testing.T) {
	gate := &gateInjector{hostile: true}
	proc := uniproc.New(uniproc.Config{Faults: gate})
	d := NewDegrading(NewRAS(), NewKernelEmul(arch.R3000()))
	d.OpRestartLimit = 4
	var w Word
	proc.Go("main", func(e *uniproc.Env) {
		d.TestAndSet(e, &w)
		gate.hostile = false
		for i := 0; i < 100; i++ {
			w = 0
			d.TestAndSet(e, &w)
		}
	})
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if !d.Demoted() || proc.Stats.Promotions != 0 {
		t.Errorf("default Degrading re-promoted: demoted=%v promotions=%d", d.Demoted(), proc.Stats.Promotions)
	}
}
