package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/uniproc"
)

// ExampleRAS shows the primitive the paper is about: an atomic Test-And-Set
// built from an unguarded load/store sequence that the runtime restarts if
// the thread is suspended inside it.
func ExampleRAS() {
	proc := uniproc.New(uniproc.Config{})
	mech := core.NewRAS()
	var word core.Word
	proc.Go("main", func(e *uniproc.Env) {
		fmt.Println("first TAS :", mech.TestAndSet(e, &word)) // was free
		fmt.Println("second TAS:", mech.TestAndSet(e, &word)) // now held
		mech.Clear(e, &word)
		fmt.Println("after clear:", mech.TestAndSet(e, &word))
	})
	if err := proc.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// first TAS : 0
	// second TAS: 1
	// after clear: 0
}

// ExampleTASLock protects a counter with a spinlock under an adversarial
// 47-cycle timeslice; the count is exact because every interrupted
// sequence restarts.
func ExampleTASLock() {
	proc := uniproc.New(uniproc.Config{Quantum: 47})
	lock := core.NewTASLock(core.NewRAS())
	var counter core.Word
	for i := 0; i < 4; i++ {
		proc.Go("worker", func(e *uniproc.Env) {
			for n := 0; n < 500; n++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
	}
	if err := proc.Run(); err != nil {
		fmt.Println(err)
	}
	fmt.Println("counter:", counter)
	// Output:
	// counter: 2000
}

// ExampleStack demonstrates the §4.1 extension: a lock-free stack whose
// atomicity comes from restartable sequences.
func ExampleStack() {
	proc := uniproc.New(uniproc.Config{})
	s := core.NewStack()
	proc.Go("main", func(e *uniproc.Env) {
		s.Push(e, 10)
		s.Push(e, 20)
		v, _ := s.Pop(e)
		fmt.Println("popped:", v)
		fmt.Println("depth :", s.Len())
	})
	if err := proc.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// popped: 20
	// depth : 1
}
