package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/uniproc"
)

func TestRecoverableMutexPassageHistogram(t *testing.T) {
	const workers, iters = 4, 50
	p := uniproc.New(uniproc.Config{Quantum: 2000})
	m := NewRecoverableMutex()
	m.Passage = obs.NewRegistry().Histogram("rme_passage_cycles", "passage cost", obs.ExpBuckets(16, 16))
	var counter Word
	for i := 0; i < workers; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				m.Acquire(e)
				e.Store(&counter, e.Load(&counter)+1)
				m.Release(e)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// One observation per completed acquire→release passage, exactly.
	if got := m.Passage.Count(); got != workers*iters {
		t.Errorf("passage count = %d, want %d", got, workers*iters)
	}
	// Every passage costs at least the lock word's load+CAS+store traffic.
	if m.Passage.Sum() == 0 || m.Passage.Mean() < 1 {
		t.Errorf("passage cycles implausible: sum=%d mean=%v", m.Passage.Sum(), m.Passage.Mean())
	}
}

func TestRecoverableMutexPassageExcludesAbortedTry(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 100000})
	m := NewRecoverableMutex()
	m.Passage = obs.NewRegistry().Histogram("rme_passage_cycles", "passage cost", obs.ExpBuckets(16, 16))
	var tried, got bool
	p.Go("holder", func(e *uniproc.Env) {
		m.Acquire(e)
		// Hold across the trier's whole attempt, then release: one passage.
		for !tried {
			e.Yield()
		}
		m.Release(e)
	})
	p.Go("trier", func(e *uniproc.Env) {
		got = m.TryAcquire(e, 3, 0)
		tried = true
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("TryAcquire succeeded against a held lock; test setup broken")
	}
	// Only the holder's completed passage is observed; the aborted
	// TryAcquire leaves no sample.
	if m.Passage.Count() != 1 {
		t.Errorf("passage count = %d, want 1 (aborted try must not count)", m.Passage.Count())
	}
}

func TestRecoverableMutexPassageNilHistogramSafe(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 2000})
	m := NewRecoverableMutex() // Passage left nil: all hooks must no-op
	p.Go("w", func(e *uniproc.Env) {
		m.Acquire(e)
		m.Release(e)
		if m.TryAcquire(e, 1, 0) {
			m.Release(e)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}
