package core

import (
	"repro/internal/uniproc"
)

// PersistentMutex is RecoverableMutex ported to a crash-prone NVRAM
// machine (uniproc.Processor with EnablePersistence): the same owner+epoch
// lock word, with explicit persist points so the word's NVM image always
// supports recovery from NVM contents alone.
//
//	P1  after a successful acquire or repair: flush lock; fence. NVM
//	    never attributes the critical section's effects to an owner it
//	    has forgotten.
//	P3  after release: flush lock; fence. A crash after P3 recovers a
//	    free lock and repairs nothing.
//
// The critical section's own durability (the P2 point) belongs to the
// caller: only the guest knows which words its critical section must
// persist before the release may become durable.
//
// Recover is the reboot-time repair: called on a fresh processor, before
// any worker thread exists, it clears whatever owner the surviving lock
// word names — that owner belonged to the crashed run and is provably
// gone — and bumps the epoch so no resurrected store can reinstate it.
type PersistentMutex struct {
	RecoverableMutex
}

// NewPersistentMutex returns an unlocked persistent recoverable mutex.
func NewPersistentMutex() *PersistentMutex { return &PersistentMutex{} }

// Name implements Locker.
func (m *PersistentMutex) Name() string { return "persistent" }

// Acquire implements Locker: the recoverable acquire (wait on a live
// owner, repair a dead one), then the P1 persist point.
func (m *PersistentMutex) Acquire(e *uniproc.Env) {
	m.RecoverableMutex.Acquire(e)
	e.Flush(&m.word) // P1
	e.Fence()
}

// TryAcquire is the abortable acquire with the P1 persist point on
// success; an abandoned attempt persists nothing.
func (m *PersistentMutex) TryAcquire(e *uniproc.Env, attempts, casBound uint64) bool {
	if !m.RecoverableMutex.TryAcquire(e, attempts, casBound) {
		return false
	}
	e.Flush(&m.word) // P1
	e.Fence()
	return true
}

// Release implements Locker: the owner-checked release, then the P3
// persist point.
func (m *PersistentMutex) Release(e *uniproc.Env) {
	m.RecoverableMutex.Release(e)
	e.Flush(&m.word) // P3
	e.Fence()
}

// Recover repairs the lock word from NVM contents alone, on reboot. It
// must run before any thread that could acquire the lock is forked: with
// no worker yet alive, a nonzero owner field can only name a thread of
// the crashed run. It reports whether a repair was needed, and persists
// the repaired word before returning so a crash during recovery re-runs
// the same repair.
func (m *PersistentMutex) Recover(e *uniproc.Env) bool {
	v := e.Load(&m.word)
	if rmOwner(v) < 0 {
		return false
	}
	e.CountRepair(rmOwner(v))
	e.Store(&m.word, (rmEpoch(v)+1)<<rmEpochShift)
	e.Flush(&m.word)
	e.Fence()
	return true
}
