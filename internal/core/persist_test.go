package core

import (
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/uniproc"
)

// persistentWorkload is the crash-consistent counter: acquire (P1 inside
// the mutex), increment, persist the counter (P2 — the caller's half of
// the protocol), release (P3 inside the mutex). committed counts every
// increment that executed, in harness memory the crash cannot revert.
func persistentWorkload(mu *PersistentMutex, counter *Word, iters int, committed *int) func(*uniproc.Env) {
	return func(e *uniproc.Env) {
		for i := 0; i < iters; i++ {
			mu.Acquire(e)
			v := e.Load(counter)
			e.Store(counter, v+1)
			*committed++
			e.Flush(counter) // P2
			e.Fence()
			mu.Release(e)
		}
	}
}

// The persistent recoverable mutex, end to end: run until an injected
// volatile crash, verify the bounded-durability-loss invariant on what
// survived, then recover on a FRESH processor from word contents alone
// and complete a full workload on top.
func TestPersistentMutexCrashRecovery(t *testing.T) {
	const workers, iters = 2, 4

	// Calibrate: a fault-free run bounds the meaningful crash ordinals.
	calMu, calCounter, calN := NewPersistentMutex(), Word(0), 0
	cal := uniproc.New(uniproc.Config{})
	cal.EnablePersistence()
	cal.Go("main", func(e *uniproc.Env) {
		for w := 0; w < workers; w++ {
			e.Fork("worker", persistentWorkload(calMu, &calCounter, iters, &calN))
		}
	})
	if err := cal.Run(); err != nil {
		t.Fatal(err)
	}
	total := cal.MemOps()
	if calCounter != workers*iters {
		t.Fatalf("calibration counter = %d, want %d", calCounter, workers*iters)
	}

	for _, crashAt := range []uint64{total / 7, total / 3, total / 2, total - 2} {
		if crashAt == 0 {
			crashAt = 1
		}
		mu := NewPersistentMutex()
		var counter Word
		committed := 0

		// Boot 1: crash with the volatile tier discarded at the fault.
		p1 := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
			Point: chaos.PointMemOp, N: crashAt,
			Action: chaos.Action{CrashVolatile: true},
		}})
		p1.EnablePersistence()
		p1.Go("main", func(e *uniproc.Env) {
			for w := 0; w < workers; w++ {
				e.Fork("worker", persistentWorkload(mu, &counter, iters, &committed))
			}
		})
		if err := p1.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			t.Fatalf("crash@%d: Run = %v, want ErrMachineCrash", crashAt, err)
		}
		// What the words hold now is NVM contents only.
		c0 := counter
		if int(c0) < committed-1 {
			t.Errorf("crash@%d: NVM counter %d but %d increments committed; protocol lost more than one",
				crashAt, c0, committed)
		}

		// Boot 2: fresh processor, same words. Recover before any worker.
		p2 := uniproc.New(uniproc.Config{})
		p2.EnablePersistence()
		p2.Go("main", func(e *uniproc.Env) {
			mu.Recover(e)
			for w := 0; w < workers; w++ {
				e.Fork("worker", persistentWorkload(mu, &counter, iters, &committed))
			}
		})
		if err := p2.Run(); err != nil {
			t.Fatalf("crash@%d: reboot run: %v", crashAt, err)
		}
		if want := c0 + workers*iters; counter != want {
			t.Errorf("crash@%d: counter after reboot = %d, want %d (%d survived + %d new)",
				crashAt, counter, want, c0, workers*iters)
		}
		if own := rmOwner(mu.Word()); own >= 0 {
			t.Errorf("crash@%d: lock still owned by %d after clean reboot", crashAt, own)
		}
	}
}

// The recovery path itself under crashes: every persist ordinal of the
// prelude workload is crashed into, and for each surviving NVM image
// that still names an owner, the repair is crashed at EVERY memop and
// persist ordinal it executes — then crashed AGAIN at every ordinal of
// the re-run repair (recovery of the recovery). However many times the
// machine restarts mid-repair, the bounded-durability-loss invariant
// nvm_counter >= committed-1 holds at each crash, and the final clean
// recovery plus a full workload lands on the exact counter.
func TestPersistentMutexRecoverySweep(t *testing.T) {
	const workers, iters = 2, 3

	type state struct {
		mu        *PersistentMutex
		counter   Word
		committed int
	}
	checkBound := func(t *testing.T, st *state, where string) {
		t.Helper()
		if int(st.counter) < st.committed-1 {
			t.Errorf("%s: NVM counter %d but %d increments committed; protocol lost more than one",
				where, st.counter, st.committed)
		}
	}

	// prelude boots a machine and crashes it (volatile tier discarded) at
	// the n-th persist op of the workload; nil error means n was past the
	// last persist op and the run completed.
	prelude := func(n uint64) (*state, error) {
		st := &state{mu: NewPersistentMutex()}
		p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
			Point: chaos.PointPersist, N: n,
			Action: chaos.Action{CrashVolatile: true},
		}})
		p.EnablePersistence()
		p.Go("main", func(e *uniproc.Env) {
			for w := 0; w < workers; w++ {
				e.Fork("worker", persistentWorkload(st.mu, &st.counter, iters, &st.committed))
			}
		})
		return st, p.Run()
	}

	// recBoot runs Recover alone on a fresh processor over st's words.
	recBoot := func(st *state, inj chaos.Injector) (err error, mem, per uint64) {
		p := uniproc.New(uniproc.Config{Faults: inj})
		p.EnablePersistence()
		p.Go("recover", func(e *uniproc.Env) { st.mu.Recover(e) })
		err = p.Run()
		return err, p.MemOps(), p.PersistOps()
	}

	// Sweep the prelude's persist ordinals; keep the crash points whose
	// NVM image leaves the lock owned — those are the images whose repair
	// path the inner sweeps exercise.
	var owned []uint64
	for n := uint64(1); ; n++ {
		st, err := prelude(n)
		if err == nil {
			break // past the last persist op
		}
		if !errors.Is(err, uniproc.ErrMachineCrash) {
			t.Fatal(err)
		}
		checkBound(t, st, "prelude")
		if rmOwner(st.mu.Word()) >= 0 {
			owned = append(owned, n)
		}
	}
	if len(owned) == 0 {
		t.Fatal("no prelude crash point leaves the lock owned — the sweep proves nothing")
	}
	// Thin to at most four spread points to bound the cubic sweep.
	if len(owned) > 4 {
		owned = []uint64{owned[0], owned[len(owned)/3], owned[2*len(owned)/3], owned[len(owned)-1]}
	}

	for _, n := range owned {
		for _, pt := range []chaos.Point{chaos.PointMemOp, chaos.PointPersist} {
			// Calibrate the repair's ordinal space on a throwaway image.
			cal, _ := prelude(n)
			cerr, mem, per := recBoot(cal, nil)
			if cerr != nil {
				t.Fatal(cerr)
			}
			bound := mem
			if pt == chaos.PointPersist {
				bound = per
			}
			if bound == 0 {
				t.Fatalf("prelude@%d: repair performed no ops at point %v", n, pt)
			}
			for i := uint64(1); i <= bound; i++ {
				// j==0 is "no second crash"; j>0 crashes the re-run repair
				// too (it may be shorter than the first — a OneShot past
				// its end simply never fires, which is the clean case).
				for j := uint64(0); j <= bound; j++ {
					st, err := prelude(n)
					if !errors.Is(err, uniproc.ErrMachineCrash) {
						t.Fatal(err)
					}
					err, _, _ = recBoot(st, chaos.OneShot{
						Point: pt, N: i, Action: chaos.Action{CrashVolatile: true},
					})
					if !errors.Is(err, uniproc.ErrMachineCrash) {
						t.Fatalf("prelude@%d %v@%d: recovery did not crash: %v", n, pt, i, err)
					}
					checkBound(t, st, "mid-repair")
					if j > 0 {
						err, _, _ = recBoot(st, chaos.OneShot{
							Point: pt, N: j, Action: chaos.Action{CrashVolatile: true},
						})
						if err != nil && !errors.Is(err, uniproc.ErrMachineCrash) {
							t.Fatal(err)
						}
						checkBound(t, st, "mid-re-repair")
					}
					// Final clean recovery, then a full workload on top:
					// the repairs must not have eaten an increment or left
					// a phantom owner.
					c0 := st.counter
					p := uniproc.New(uniproc.Config{})
					p.EnablePersistence()
					p.Go("main", func(e *uniproc.Env) {
						st.mu.Recover(e)
						for w := 0; w < workers; w++ {
							e.Fork("worker", persistentWorkload(st.mu, &st.counter, iters, &st.committed))
						}
					})
					if err := p.Run(); err != nil {
						t.Fatalf("prelude@%d %v i=%d j=%d: final boot: %v", n, pt, i, j, err)
					}
					if want := c0 + workers*iters; st.counter != want {
						t.Errorf("prelude@%d %v i=%d j=%d: counter = %d, want %d",
							n, pt, i, j, st.counter, want)
					}
					if own := rmOwner(st.mu.Word()); own >= 0 {
						t.Errorf("prelude@%d %v i=%d j=%d: lock still owned by %d", n, pt, i, j, own)
					}
				}
			}
		}
	}
}

// Recover is a no-op on a free lock, and repairs an owned one with the
// epoch bumped and the repaired word made durable before it returns.
func TestRecoverRepairsFromNVMAlone(t *testing.T) {
	mu := NewPersistentMutex()
	mu.word = 3<<rmEpochShift | 2 // epoch 3, owner thread 1: a crashed run's corpse
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		if !mu.Recover(e) {
			t.Error("Recover found nothing to repair")
		}
		if mu.Recover(e) {
			t.Error("second Recover repaired a free lock")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if own, ep := rmOwner(mu.Word()), rmEpoch(mu.Word()); own >= 0 || ep != 4 {
		t.Fatalf("repaired word: owner=%d epoch=%d, want free/4", own, ep)
	}
	if got := p.NVPeek(&mu.word); got != mu.word {
		t.Fatal("repair is not durable: NVM tier disagrees with the repaired word")
	}
	if p.Stats.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", p.Stats.Repairs)
	}
}
