package core

import (
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/uniproc"
)

// persistentWorkload is the crash-consistent counter: acquire (P1 inside
// the mutex), increment, persist the counter (P2 — the caller's half of
// the protocol), release (P3 inside the mutex). committed counts every
// increment that executed, in harness memory the crash cannot revert.
func persistentWorkload(mu *PersistentMutex, counter *Word, iters int, committed *int) func(*uniproc.Env) {
	return func(e *uniproc.Env) {
		for i := 0; i < iters; i++ {
			mu.Acquire(e)
			v := e.Load(counter)
			e.Store(counter, v+1)
			*committed++
			e.Flush(counter) // P2
			e.Fence()
			mu.Release(e)
		}
	}
}

// The persistent recoverable mutex, end to end: run until an injected
// volatile crash, verify the bounded-durability-loss invariant on what
// survived, then recover on a FRESH processor from word contents alone
// and complete a full workload on top.
func TestPersistentMutexCrashRecovery(t *testing.T) {
	const workers, iters = 2, 4

	// Calibrate: a fault-free run bounds the meaningful crash ordinals.
	calMu, calCounter, calN := NewPersistentMutex(), Word(0), 0
	cal := uniproc.New(uniproc.Config{})
	cal.EnablePersistence()
	cal.Go("main", func(e *uniproc.Env) {
		for w := 0; w < workers; w++ {
			e.Fork("worker", persistentWorkload(calMu, &calCounter, iters, &calN))
		}
	})
	if err := cal.Run(); err != nil {
		t.Fatal(err)
	}
	total := cal.MemOps()
	if calCounter != workers*iters {
		t.Fatalf("calibration counter = %d, want %d", calCounter, workers*iters)
	}

	for _, crashAt := range []uint64{total / 7, total / 3, total / 2, total - 2} {
		if crashAt == 0 {
			crashAt = 1
		}
		mu := NewPersistentMutex()
		var counter Word
		committed := 0

		// Boot 1: crash with the volatile tier discarded at the fault.
		p1 := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
			Point: chaos.PointMemOp, N: crashAt,
			Action: chaos.Action{CrashVolatile: true},
		}})
		p1.EnablePersistence()
		p1.Go("main", func(e *uniproc.Env) {
			for w := 0; w < workers; w++ {
				e.Fork("worker", persistentWorkload(mu, &counter, iters, &committed))
			}
		})
		if err := p1.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			t.Fatalf("crash@%d: Run = %v, want ErrMachineCrash", crashAt, err)
		}
		// What the words hold now is NVM contents only.
		c0 := counter
		if int(c0) < committed-1 {
			t.Errorf("crash@%d: NVM counter %d but %d increments committed; protocol lost more than one",
				crashAt, c0, committed)
		}

		// Boot 2: fresh processor, same words. Recover before any worker.
		p2 := uniproc.New(uniproc.Config{})
		p2.EnablePersistence()
		p2.Go("main", func(e *uniproc.Env) {
			mu.Recover(e)
			for w := 0; w < workers; w++ {
				e.Fork("worker", persistentWorkload(mu, &counter, iters, &committed))
			}
		})
		if err := p2.Run(); err != nil {
			t.Fatalf("crash@%d: reboot run: %v", crashAt, err)
		}
		if want := c0 + workers*iters; counter != want {
			t.Errorf("crash@%d: counter after reboot = %d, want %d (%d survived + %d new)",
				crashAt, counter, want, c0, workers*iters)
		}
		if own := rmOwner(mu.Word()); own >= 0 {
			t.Errorf("crash@%d: lock still owned by %d after clean reboot", crashAt, own)
		}
	}
}

// Recover is a no-op on a free lock, and repairs an owned one with the
// epoch bumped and the repaired word made durable before it returns.
func TestRecoverRepairsFromNVMAlone(t *testing.T) {
	mu := NewPersistentMutex()
	mu.word = 3<<rmEpochShift | 2 // epoch 3, owner thread 1: a crashed run's corpse
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		if !mu.Recover(e) {
			t.Error("Recover found nothing to repair")
		}
		if mu.Recover(e) {
			t.Error("second Recover repaired a free lock")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if own, ep := rmOwner(mu.Word()), rmEpoch(mu.Word()); own >= 0 || ep != 4 {
		t.Fatalf("repaired word: owner=%d epoch=%d, want free/4", own, ep)
	}
	if got := p.NVPeek(&mu.word); got != mu.word {
		t.Fatal("repair is not durable: NVM tier disagrees with the repaired word")
	}
	if p.Stats.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", p.Stats.Repairs)
	}
}
