package core

// Persistent versions of the E13 RAS structures on the NVRAM persistence
// model: a stack and a queue whose every operation is a tiny logged
// transaction over a caller-provided NVM word arena, recoverable from
// NVM contents alone. Both undo- and redo-logging disciplines are
// implemented behind the same transaction engine so the two protocols
// can be benchmarked against each other (EXPERIMENTS.md E24):
//
//   - Undo (force): log the OLD values of every word the operation will
//     touch and fence; apply in place, flush, fence; bump the committed
//     sequence, flush, fence. Three persist barriers per operation — the
//     commit point is the LAST fence. Recovery rolls an in-flight
//     transaction BACK by restoring the logged old values.
//
//   - Redo (write-ahead): log the NEW values and fence — that fence IS
//     the commit point; apply in place and flush, bump the applied
//     sequence and flush, but leave both write-backs pending for the
//     next operation's log fence to drain. One persist barrier per
//     operation in steady state. Recovery rolls an in-flight transaction
//     FORWARD by re-applying the logged new values.
//
// Either way a recovery re-execution is a sequence of constant stores,
// so crash-during-recovery is idempotent, and the log record's checksum
// is stored and flushed LAST: a torn crash (chaos.Action.Torn) persists
// a flush-order prefix of the pending words, so a record with a valid
// checksum is always a whole record.
//
// Operations assume mutual exclusion (one operation in flight per
// structure); drive concurrent access through a lock such as
// PersistentMutex. Recover must be called once after each reboot, on the
// surviving arena, before any operation.

import (
	"errors"
	"fmt"

	"repro/internal/uniproc"
)

// LogMode selects the logging discipline.
type LogMode int

const (
	Undo LogMode = iota
	Redo
)

func (m LogMode) String() string {
	if m == Undo {
		return "undo"
	}
	return "redo"
}

// ParseLogMode parses "undo" or "redo".
func ParseLogMode(s string) (LogMode, error) {
	switch s {
	case "undo":
		return Undo, nil
	case "redo":
		return Redo, nil
	}
	return 0, fmt.Errorf("core: unknown log mode %q", s)
}

// ErrStructFull is returned by Push/Enqueue on a full structure.
var ErrStructFull = errors.New("core: persistent structure full")

// Arena layout shared by both structures (word indices):
//
//	[0]                  sequence word: committed (undo) / applied (redo)
//	[1 .. 1+slotWords)   log slot: seq, n, (idx, val)×n, checksum
//	[dataBase ..]        the structure's own words
const (
	seqIdx    = 0
	slotBase  = 1
	maxWrites = 2 // every stack/queue op touches at most two words
	slotWords = 2 + 2*maxWrites + 1
	dataBase  = slotBase + slotWords
)

// pstruct is the shared transaction engine over an arena.
type pstruct struct {
	a    []uniproc.Word
	mode LogMode
}

// pcksum mixes the log record words; stored and flushed last.
func pcksum(ws []uniproc.Word) uniproc.Word {
	h := uint32(0x2545F491)
	for _, w := range ws {
		h = (h ^ uint32(w)) * 0xCC9E2D51
		h ^= h >> 15
	}
	return uniproc.Word(h)
}

// commit runs one transaction writing news[i] to arena index idxs[i].
// On return the operation is durable (redo: the log fence already
// committed it; undo: the sequence bump's fence did).
func (p *pstruct) commit(e *uniproc.Env, idxs []int, news []uniproc.Word) {
	seq := e.Load(&p.a[seqIdx]) + 1
	n := len(idxs)

	// Stage the log record. Undo records carry the old values (read
	// before anything is overwritten); redo records carry the new ones.
	rec := make([]uniproc.Word, 0, 2+2*n)
	rec = append(rec, seq, uniproc.Word(n))
	for i := 0; i < n; i++ {
		v := news[i]
		if p.mode == Undo {
			v = e.Load(&p.a[idxs[i]])
		}
		rec = append(rec, uniproc.Word(idxs[i]), v)
	}
	for i, w := range rec {
		e.Store(&p.a[slotBase+i], w)
	}
	e.Store(&p.a[slotBase+2+2*n], pcksum(rec))
	e.ChargeALU(len(rec) + 1)
	for i := 0; i <= 2+2*n; i++ {
		e.Flush(&p.a[slotBase+i])
	}
	e.Fence() // undo: old values safe before any overwrite
	//           redo: THE commit point — the operation is now durable

	// Apply in place.
	for i := 0; i < n; i++ {
		e.Store(&p.a[idxs[i]], news[i])
		e.Flush(&p.a[idxs[i]])
	}
	if p.mode == Undo {
		e.Fence() // force: data durable before the commit mark
	}

	// Advance the sequence word. For undo this fence is the commit
	// point; for redo the bump rides the next operation's log fence, and
	// recovery re-applies idempotently if a crash beats it there.
	e.Store(&p.a[seqIdx], seq)
	e.Flush(&p.a[seqIdx])
	if p.mode == Undo {
		e.Fence()
	}
}

// Recover inspects the NVM-surviving arena for an in-flight transaction
// and completes the protocol: undo rolls it back, redo rolls it forward.
// It reports whether a repair was applied. Idempotent — a crash during
// Recover re-runs it from the same decidable state.
func (p *pstruct) Recover(e *uniproc.Env) bool {
	seq := e.Load(&p.a[seqIdx])
	lseq := e.Load(&p.a[slotBase])
	n := int(e.Load(&p.a[slotBase+1]))
	e.ChargeALU(4)
	if n < 1 || n > maxWrites || lseq != seq+1 {
		return false // no in-flight transaction
	}
	rec := make([]uniproc.Word, 2+2*n)
	for i := range rec {
		rec[i] = e.Load(&p.a[slotBase+i])
	}
	e.ChargeALU(len(rec) + 1)
	if e.Load(&p.a[slotBase+2+2*n]) != pcksum(rec) {
		return false // torn log record: the data was never touched
	}
	// Undo: restore the old values and leave the sequence word alone —
	// the transaction aborts. Redo: re-apply the new values and claim
	// the sequence — the transaction completes.
	for i := 0; i < n; i++ {
		idx, v := int(rec[2+2*i]), rec[3+2*i]
		e.Store(&p.a[idx], v)
		e.Flush(&p.a[idx])
	}
	e.Fence()
	if p.mode == Redo {
		e.Store(&p.a[seqIdx], lseq)
		e.Flush(&p.a[seqIdx])
		e.Fence()
	}
	return true
}

// Seq returns the committed/applied sequence number (volatile read).
func (p *pstruct) Seq(e *uniproc.Env) uint32 {
	return uint32(e.Load(&p.a[seqIdx]))
}

// Mode returns the structure's logging discipline.
func (p *pstruct) Mode() LogMode { return p.mode }

// PersistentStack is a bounded LIFO over an NVM arena: dataBase holds
// top, the values follow. StackArena sizes the arena for a capacity.
type PersistentStack struct {
	pstruct
	cap int
}

// StackArenaWords returns the arena length a capacity-c stack needs.
func StackArenaWords(c int) int { return dataBase + 1 + c }

// NewPersistentStack wraps arena (its length fixes the capacity). The
// arena may be freshly zeroed (an empty stack) or NVM contents surviving
// a crash — call Recover before the first operation in either case.
func NewPersistentStack(arena []uniproc.Word, mode LogMode) *PersistentStack {
	if len(arena) < dataBase+2 {
		panic("core: persistent stack arena too small")
	}
	return &PersistentStack{pstruct: pstruct{a: arena, mode: mode}, cap: len(arena) - dataBase - 1}
}

const topIdx = dataBase

// Len returns the number of elements (volatile read).
func (s *PersistentStack) Len(e *uniproc.Env) int { return int(e.Load(&s.a[topIdx])) }

// Cap returns the capacity.
func (s *PersistentStack) Cap() int { return s.cap }

// Push pushes v as one logged transaction.
func (s *PersistentStack) Push(e *uniproc.Env, v uniproc.Word) error {
	top := int(e.Load(&s.a[topIdx]))
	if top >= s.cap {
		return ErrStructFull
	}
	s.commit(e, []int{topIdx + 1 + top, topIdx}, []uniproc.Word{v, uniproc.Word(top + 1)})
	return nil
}

// Pop pops as one logged transaction; false on empty. The value slot is
// not cleared — words above top are dead, not state.
func (s *PersistentStack) Pop(e *uniproc.Env) (uniproc.Word, bool) {
	top := int(e.Load(&s.a[topIdx]))
	if top == 0 {
		return 0, false
	}
	v := e.Load(&s.a[topIdx+top])
	s.commit(e, []int{topIdx}, []uniproc.Word{uniproc.Word(top - 1)})
	return v, true
}

// PersistentQueue is a bounded FIFO over an NVM arena: dataBase holds
// head, dataBase+1 holds tail (both monotone; ring index is mod cap).
type PersistentQueue struct {
	pstruct
	cap int
}

// QueueArenaWords returns the arena length a capacity-c queue needs.
func QueueArenaWords(c int) int { return dataBase + 2 + c }

// NewPersistentQueue wraps arena (its length fixes the capacity); call
// Recover before the first operation.
func NewPersistentQueue(arena []uniproc.Word, mode LogMode) *PersistentQueue {
	if len(arena) < dataBase+3 {
		panic("core: persistent queue arena too small")
	}
	return &PersistentQueue{pstruct: pstruct{a: arena, mode: mode}, cap: len(arena) - dataBase - 2}
}

const (
	headOff = 0
	tailOff = 1
	ringOff = 2
)

// Len returns the number of elements (volatile read).
func (q *PersistentQueue) Len(e *uniproc.Env) int {
	return int(e.Load(&q.a[dataBase+tailOff]) - e.Load(&q.a[dataBase+headOff]))
}

// Cap returns the capacity.
func (q *PersistentQueue) Cap() int { return q.cap }

// Enqueue appends v as one logged transaction.
func (q *PersistentQueue) Enqueue(e *uniproc.Env, v uniproc.Word) error {
	head := e.Load(&q.a[dataBase+headOff])
	tail := e.Load(&q.a[dataBase+tailOff])
	if int(tail-head) >= q.cap {
		return ErrStructFull
	}
	slot := dataBase + ringOff + int(uint32(tail)%uint32(q.cap))
	q.commit(e, []int{slot, dataBase + tailOff}, []uniproc.Word{v, tail + 1})
	return nil
}

// Dequeue removes the oldest element as one logged transaction; false on
// empty.
func (q *PersistentQueue) Dequeue(e *uniproc.Env) (uniproc.Word, bool) {
	head := e.Load(&q.a[dataBase+headOff])
	tail := e.Load(&q.a[dataBase+tailOff])
	if head == tail {
		return 0, false
	}
	v := e.Load(&q.a[dataBase+ringOff+int(uint32(head)%uint32(q.cap))])
	q.commit(e, []int{dataBase + headOff}, []uniproc.Word{head + 1})
	return v, true
}
