package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/uniproc"
)

// Basic LIFO/FIFO semantics survive a clean run in both log modes.
func TestPersistentStackQueueSemantics(t *testing.T) {
	for _, mode := range []LogMode{Undo, Redo} {
		t.Run("stack-"+mode.String(), func(t *testing.T) {
			arena := make([]uniproc.Word, StackArenaWords(4))
			p := uniproc.New(uniproc.Config{})
			p.EnablePersistence()
			p.Go("main", func(e *uniproc.Env) {
				s := NewPersistentStack(arena, mode)
				s.Recover(e)
				for i := 1; i <= 4; i++ {
					if err := s.Push(e, uniproc.Word(i)); err != nil {
						t.Errorf("push %d: %v", i, err)
					}
				}
				if err := s.Push(e, 99); !errors.Is(err, ErrStructFull) {
					t.Errorf("push on full = %v, want ErrStructFull", err)
				}
				for i := 4; i >= 1; i-- {
					v, ok := s.Pop(e)
					if !ok || v != uniproc.Word(i) {
						t.Errorf("pop = %d,%v, want %d", v, ok, i)
					}
				}
				if _, ok := s.Pop(e); ok {
					t.Error("pop on empty succeeded")
				}
			})
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
		})
		t.Run("queue-"+mode.String(), func(t *testing.T) {
			arena := make([]uniproc.Word, QueueArenaWords(3))
			p := uniproc.New(uniproc.Config{})
			p.EnablePersistence()
			p.Go("main", func(e *uniproc.Env) {
				q := NewPersistentQueue(arena, mode)
				q.Recover(e)
				// Wrap the ring twice to exercise the modulo indexing.
				next, want := 1, 1
				for round := 0; round < 3; round++ {
					for q.Len(e) < q.Cap() {
						if err := q.Enqueue(e, uniproc.Word(next)); err != nil {
							t.Fatalf("enqueue %d: %v", next, err)
						}
						next++
					}
					if err := q.Enqueue(e, 99); !errors.Is(err, ErrStructFull) {
						t.Errorf("enqueue on full = %v", err)
					}
					for q.Len(e) > 0 {
						v, ok := q.Dequeue(e)
						if !ok || v != uniproc.Word(want) {
							t.Errorf("dequeue = %d,%v, want %d", v, ok, want)
						}
						want++
					}
				}
				if _, ok := q.Dequeue(e); ok {
					t.Error("dequeue on empty succeeded")
				}
			})
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// pushPopScript drives a stack through pushes and pops; state(i) is the
// expected contents after the first i ops.
var pushPopScript = []int{+10, +20, -1, +30, +40, -1, -1, +50, -1, -1}

func stackStateAfter(prefix int) []uniproc.Word {
	var st []uniproc.Word
	for _, op := range pushPopScript[:prefix] {
		if op > 0 {
			st = append(st, uniproc.Word(op))
		} else {
			st = st[:len(st)-1]
		}
	}
	return st
}

// readStack recovers the arena on a fresh processor and returns contents
// bottom-up.
func readStack(t *testing.T, arena []uniproc.Word, mode LogMode) []uniproc.Word {
	t.Helper()
	var out []uniproc.Word
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		s := NewPersistentStack(arena, mode)
		s.Recover(e)
		n := s.Len(e)
		for i := 0; i < n; i++ {
			out = append(out, e.Load(&arena[topIdx+1+i]))
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func eqWords(a, b []uniproc.Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Crash at EVERY persist boundary, clean and torn, in both log modes:
// after recovery the stack equals some prefix of the script — at least
// every operation that returned, never a half-applied operation.
func TestPersistentStackCrashSweep(t *testing.T) {
	for _, mode := range []LogMode{Undo, Redo} {
		for _, torn := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s-torn=%v", mode, torn), func(t *testing.T) {
				// Reference run sizes the ordinal space.
				ref := uniproc.New(uniproc.Config{})
				ref.EnablePersistence()
				refArena := make([]uniproc.Word, StackArenaWords(8))
				ref.Go("main", func(e *uniproc.Env) {
					s := NewPersistentStack(refArena, mode)
					s.Recover(e)
					runStackScript(t, e, s, nil)
				})
				if err := ref.Run(); err != nil {
					t.Fatal(err)
				}
				total := ref.PersistOps()

				for c := uint64(1); c <= total; c++ {
					arena := make([]uniproc.Word, StackArenaWords(8))
					returned := 0
					p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
						Point:  chaos.PointPersist,
						N:      c,
						Action: chaos.Action{CrashVolatile: true, Torn: torn},
					}})
					p.EnablePersistence()
					p.Go("main", func(e *uniproc.Env) {
						s := NewPersistentStack(arena, mode)
						s.Recover(e)
						runStackScript(t, e, s, &returned)
					})
					if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
						t.Fatalf("crash %d: Run = %v, want ErrMachineCrash", c, err)
					}
					got := readStack(t, arena, mode)
					// Exactly two states are legal: every returned op
					// applied, or those plus the one op in flight at the
					// crash. (Prefix states can coincide — [10] is both
					// "after push 10" and "after push,push,pop" — so match
					// on the op count, not by searching all prefixes.)
					ok := eqWords(got, stackStateAfter(returned))
					if !ok && returned < len(pushPopScript) {
						ok = eqWords(got, stackStateAfter(returned+1))
					}
					if !ok {
						t.Fatalf("crash %d: recovered stack %v, want state after %d or %d ops",
							c, got, returned, returned+1)
					}
				}
			})
		}
	}
}

func runStackScript(t *testing.T, e *uniproc.Env, s *PersistentStack, returned *int) {
	for i, op := range pushPopScript {
		if op > 0 {
			if err := s.Push(e, uniproc.Word(op)); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
		} else {
			want := stackStateAfter(i)
			if v, ok := s.Pop(e); !ok || v != want[len(want)-1] {
				t.Errorf("op %d: pop = %d,%v, want %d", i, v, ok, want[len(want)-1])
				return
			}
		}
		if returned != nil {
			*returned++
		}
	}
}

// The queue under the same exhaustive treatment: every boundary, both
// modes, clean and torn; recovered contents are a prefix of the enqueue
// stream with the right number of dequeues applied.
func TestPersistentQueueCrashSweep(t *testing.T) {
	const enqs = 6
	script := func(t *testing.T, e *uniproc.Env, q *PersistentQueue, returned *int) {
		deq := 0
		for i := 1; i <= enqs; i++ {
			if err := q.Enqueue(e, uniproc.Word(100+i)); err != nil {
				t.Errorf("enqueue %d: %v", i, err)
				return
			}
			if returned != nil {
				*returned++
			}
			if i%2 == 0 { // interleave dequeues
				if v, ok := q.Dequeue(e); !ok || v != uniproc.Word(100+deq+1) {
					t.Errorf("dequeue = %d,%v, want %d", v, ok, 100+deq+1)
					return
				}
				deq++
				if returned != nil {
					*returned++
				}
			}
		}
	}
	for _, mode := range []LogMode{Undo, Redo} {
		for _, torn := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s-torn=%v", mode, torn), func(t *testing.T) {
				ref := uniproc.New(uniproc.Config{})
				ref.EnablePersistence()
				refArena := make([]uniproc.Word, QueueArenaWords(4))
				ref.Go("main", func(e *uniproc.Env) {
					q := NewPersistentQueue(refArena, mode)
					q.Recover(e)
					script(t, e, q, nil)
				})
				if err := ref.Run(); err != nil {
					t.Fatal(err)
				}
				total := ref.PersistOps()

				for c := uint64(1); c <= total; c++ {
					arena := make([]uniproc.Word, QueueArenaWords(4))
					returned := 0
					p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
						Point:  chaos.PointPersist,
						N:      c,
						Action: chaos.Action{CrashVolatile: true, Torn: torn},
					}})
					p.EnablePersistence()
					p.Go("main", func(e *uniproc.Env) {
						q := NewPersistentQueue(arena, mode)
						q.Recover(e)
						script(t, e, q, &returned)
					})
					if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
						t.Fatalf("crash %d: Run = %v, want ErrMachineCrash", c, err)
					}
					// Recover and validate: contents must be a contiguous
					// run 100+h+1 .. 100+t of the enqueue stream, with
					// progress at least what returned implies.
					var head, tail uint32
					var ring []uniproc.Word
					p2 := uniproc.New(uniproc.Config{})
					p2.EnablePersistence()
					p2.Go("main", func(e *uniproc.Env) {
						q := NewPersistentQueue(arena, mode)
						q.Recover(e)
						head = uint32(e.Load(&arena[dataBase+headOff]))
						tail = uint32(e.Load(&arena[dataBase+tailOff]))
						for i := head; i < tail; i++ {
							ring = append(ring, e.Load(&arena[dataBase+ringOff+int(i%4)]))
						}
					})
					if err := p2.Run(); err != nil {
						t.Fatal(err)
					}
					if tail < head || tail > enqs || head > 3 {
						t.Fatalf("crash %d: recovered head=%d tail=%d out of range", c, head, tail)
					}
					for i, v := range ring {
						if v != uniproc.Word(100+int(head)+i+1) {
							t.Fatalf("crash %d: ring[%d] = %d, want %d (contents not a contiguous stream run)",
								c, i, v, 100+int(head)+i+1)
						}
					}
					// Progress: ops are monotone; total ops recovered
					// (tail enqueues + head dequeues) must cover every
					// returned op plus at most the one in flight.
					if n := int(tail + head); n < returned || n > returned+1 {
						t.Fatalf("crash %d: %d ops returned but %d recovered", c, returned, n)
					}
				}
			})
		}
	}
}

// A crash DURING recovery re-runs recovery idempotently: sweep every
// persist boundary of the first recovery, then recover again cleanly.
func TestPersistentStackCrashDuringRecovery(t *testing.T) {
	for _, mode := range []LogMode{Undo, Redo} {
		t.Run(mode.String(), func(t *testing.T) {
			// Build an arena with an in-flight transaction: crash the
			// first run mid-push at a boundary where the log is durable.
			makeCrashed := func() []uniproc.Word {
				arena := make([]uniproc.Word, StackArenaWords(4))
				p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
					Point:  chaos.PointPersist,
					N:      3, // after the log fence, mid-apply
					Action: chaos.Action{CrashVolatile: true},
				}})
				p.EnablePersistence()
				p.Go("main", func(e *uniproc.Env) {
					s := NewPersistentStack(arena, mode)
					s.Recover(e)
					s.Push(e, 7)
					s.Push(e, 8)
				})
				if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
					t.Fatalf("setup crash: %v", err)
				}
				return arena
			}

			// Size the recovery's own persist-op space.
			probe := makeCrashed()
			ref := uniproc.New(uniproc.Config{})
			ref.EnablePersistence()
			ref.Go("main", func(e *uniproc.Env) {
				NewPersistentStack(probe, mode).Recover(e)
			})
			if err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			total := ref.PersistOps()

			for c := uint64(1); c <= total; c++ {
				arena := makeCrashed()
				p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
					Point:  chaos.PointPersist,
					N:      c,
					Action: chaos.Action{CrashVolatile: true},
				}})
				p.EnablePersistence()
				p.Go("main", func(e *uniproc.Env) {
					NewPersistentStack(arena, mode).Recover(e)
				})
				if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
					t.Fatalf("crash %d during recovery: Run = %v", c, err)
				}
				got := readStack(t, arena, mode) // second recovery, clean
				want := [][]uniproc.Word{{7}, {7, 8}}
				if !eqWords(got, want[0]) && !eqWords(got, want[1]) {
					t.Fatalf("crash %d during recovery: stack = %v, want [7] or [7 8]", c, got)
				}
			}
		})
	}
}
