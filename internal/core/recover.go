package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/uniproc"
)

// Recoverable-mutual-exclusion lock word layout. The low halfword names the
// owner (thread ID + 1; 0 = free) and the high halfword carries an epoch
// that a repair bumps, so a stale owner resurrected by a rolled-back
// sequence can never be confused with the current one:
//
//	+----------------+----------------+
//	|  epoch (16)    |  owner+1 (16)  |
//	+----------------+----------------+
const (
	rmOwnerMask  Word = 0x0000FFFF
	rmEpochShift      = 16
	rmMaxOwner        = int(rmOwnerMask) - 1
)

func rmOwner(v Word) int  { return int(v&rmOwnerMask) - 1 } // -1 = free
func rmEpoch(v Word) Word { return v >> rmEpochShift }

// RecoverableMutex is a mutual-exclusion lock that survives the death of
// its owner — the recoverable mutual exclusion (RME) contract of Golab and
// Ramaraju, grafted onto the paper's restartable atomic sequences.
//
// Bershad et al.'s protocols assume every suspended thread eventually
// resumes; a thread killed inside its critical section orphans a TASLock
// forever. RecoverableMutex instead stores owner-id + epoch in the lock
// word. An acquirer finding the word owned consults the runtime's
// liveness oracle (Env.ThreadDead): a live owner is waited on as usual,
// but a dead owner's lock is *repaired* — stolen with a compare-and-swap
// that bumps the epoch, so at most one repairer wins and no resurrected
// store can reinstate the corpse.
//
// The repair protocol is bounded: detecting the dead owner takes one load
// and one oracle query, and the steal is a single bounded CAS attempt per
// loop iteration — no handshake with other waiters is needed, because on
// a uniprocessor the CAS (itself a restartable sequence) is atomic.
//
// TryAcquire is the abortable entry of RME-with-abortability: it gives up
// after a bounded number of passes instead of waiting on a live owner,
// leaving the lock word untouched by the abandoned attempt.
//
// Attach an RMEChecker to audit a run; it panics nowhere and records
// violations for the harness to assert on.
type RecoverableMutex struct {
	word    Word
	Checker *RMEChecker // optional invariant audit

	// Passage, when non-nil, observes the RMR-style passage cost of every
	// completed acquire→release span: virtual cycles from entering Acquire
	// (or a TryAcquire that eventually succeeds) to finishing Release.
	// Aborted TryAcquire attempts are not passages and are not recorded.
	Passage *obs.Histogram

	passageStart map[int]uint64 // thread ID -> cycle Acquire was entered
}

// NewRecoverableMutex returns an unlocked recoverable mutex.
func NewRecoverableMutex() *RecoverableMutex { return &RecoverableMutex{} }

// Name implements Locker.
func (m *RecoverableMutex) Name() string { return "recoverable" }

// Word returns the raw lock word (owner+1 in the low half, epoch in the
// high half) for assertions and post-mortem inspection.
func (m *RecoverableMutex) Word() Word { return m.word }

// cas atomically replaces the lock word with v if it still equals expect,
// as a restartable sequence: load, compare, committing store. A failed
// compare returns without committing — an uncommitted sequence has no
// visible write, so abandoning it is safe (§2.4).
func (m *RecoverableMutex) cas(e *uniproc.Env, expect, v Word) bool {
	swapped := false
	e.Restartable(func() {
		swapped = false
		seen := e.Load(&m.word)
		e.ChargeALU(2)
		if seen != expect {
			return
		}
		e.Commit(&m.word, v)
		swapped = true
	})
	return swapped
}

// tryCAS is cas bounded to maxRestarts rollbacks, for the abortable path.
func (m *RecoverableMutex) tryCAS(e *uniproc.Env, expect, v Word, maxRestarts uint64) (swapped, done bool) {
	done = e.TryRestartable(maxRestarts, func() {
		swapped = false
		seen := e.Load(&m.word)
		e.ChargeALU(2)
		if seen != expect {
			return
		}
		e.Commit(&m.word, v)
		swapped = true
	})
	return swapped && done, done
}

func (m *RecoverableMutex) self(e *uniproc.Env) Word {
	id := e.Self().ID
	if id > rmMaxOwner {
		panic(fmt.Sprintf("core: thread ID %d does not fit the lock word's owner field", id))
	}
	return Word(id + 1)
}

// step makes one pass at the lock: acquire it if free, repair it if the
// owner is dead, otherwise report it busy. It never waits.
func (m *RecoverableMutex) step(e *uniproc.Env, me Word, bound uint64) (acquired, busy bool) {
	v := e.Load(&m.word)
	e.ChargeALU(2)
	own := rmOwner(v)
	switch {
	case own < 0: // free: claim it, preserving the epoch
		want := v&^rmOwnerMask | me
		if bound == 0 {
			if m.cas(e, v, want) {
				m.noteAcquire(e, -1)
				return true, false
			}
		} else if swapped, _ := m.tryCAS(e, v, want, bound); swapped {
			m.noteAcquire(e, -1)
			return true, false
		}
		return false, false // raced; retry
	case own == e.Self().ID:
		panic(fmt.Sprintf("core: recursive RecoverableMutex acquire by thread %d", own))
	case e.ThreadDead(own): // orphaned: steal with a bumped epoch
		want := (rmEpoch(v)+1)<<rmEpochShift | me
		stolen := false
		if bound == 0 {
			stolen = m.cas(e, v, want)
		} else {
			stolen, _ = m.tryCAS(e, v, want, bound)
		}
		if stolen {
			e.CountRepair(own)
			m.noteAcquire(e, own)
			return true, false
		}
		return false, false // another repairer won; retry
	}
	return false, true
}

// Acquire implements Locker: spin (yielding, as on any uniprocessor) until
// the lock is free or its owner has died and the repair CAS succeeds.
func (m *RecoverableMutex) Acquire(e *uniproc.Env) {
	m.passageBegin(e)
	me := m.self(e)
	for {
		acquired, busy := m.step(e, me, 0)
		if acquired {
			return
		}
		if busy {
			e.Processor().CountHoldup()
			e.Yield()
		}
	}
}

// TryAcquire is the abortable acquire: up to attempts passes at the lock,
// yielding between passes, each pass's CAS bounded to casBound restarts
// (0 means 8). It reports whether the lock was acquired; an abandoned
// attempt leaves no trace in the lock word.
func (m *RecoverableMutex) TryAcquire(e *uniproc.Env, attempts uint64, casBound uint64) bool {
	if attempts == 0 {
		attempts = 1
	}
	if casBound == 0 {
		casBound = 8
	}
	m.passageBegin(e)
	me := m.self(e)
	for i := uint64(0); i < attempts; i++ {
		acquired, busy := m.step(e, me, casBound)
		if acquired {
			return true
		}
		if busy && i+1 < attempts {
			e.Processor().CountHoldup()
			e.Yield()
		}
	}
	m.passageAbort(e) // an abandoned attempt is not a passage
	return false
}

// Release implements Locker: clear the owner field with a single word
// store (atomic on a uniprocessor), preserving the epoch. Only the owner
// may release; anything else is a caller bug and panics.
func (m *RecoverableMutex) Release(e *uniproc.Env) {
	v := e.Load(&m.word)
	if own := rmOwner(v); own != e.Self().ID {
		panic(fmt.Sprintf("core: RecoverableMutex released by thread %d, owned by %d", e.Self().ID, own))
	}
	m.noteRelease(e)
	e.Store(&m.word, v&^rmOwnerMask)
	m.passageEnd(e)
}

// passageBegin stamps the start of a passage for the calling thread.
func (m *RecoverableMutex) passageBegin(e *uniproc.Env) {
	if m.Passage == nil {
		return
	}
	if m.passageStart == nil {
		m.passageStart = make(map[int]uint64)
	}
	if _, open := m.passageStart[e.Self().ID]; !open {
		m.passageStart[e.Self().ID] = e.Now()
	}
	// A start already open means a TryAcquire failed and was retried by the
	// caller: the passage spans from the first attempt.
}

// passageAbort forgets a failed attempt's start stamp.
func (m *RecoverableMutex) passageAbort(e *uniproc.Env) {
	if m.Passage != nil {
		delete(m.passageStart, e.Self().ID)
	}
}

// passageEnd observes a completed acquire→release span.
func (m *RecoverableMutex) passageEnd(e *uniproc.Env) {
	if m.Passage == nil {
		return
	}
	if start, ok := m.passageStart[e.Self().ID]; ok {
		delete(m.passageStart, e.Self().ID)
		m.Passage.Observe(e.Now() - start)
	}
}

func (m *RecoverableMutex) noteAcquire(e *uniproc.Env, stolenFrom int) {
	if m.Checker != nil {
		m.Checker.acquired(e, stolenFrom)
	}
}

func (m *RecoverableMutex) noteRelease(e *uniproc.Env) {
	if m.Checker != nil {
		m.Checker.released(e)
	}
}

// RMEChecker audits a RecoverableMutex run against the recoverable-
// mutual-exclusion contract:
//
//   - Mutual exclusion: a successful acquire must find the previous owner
//     either gone (clean release) or dead (repair); two live threads may
//     never hold the lock at once.
//   - Epoch monotonicity: every repair must bump the epoch.
//   - Owner integrity: only the recorded owner may release.
//
// The checker runs inside the virtual machine's single-baton discipline,
// so its state needs no synchronization. Violations are recorded, never
// panicked, so a harness can sweep thousands of schedules and report all
// of them.
type RMEChecker struct {
	owner    int // current owner's thread ID; -1 = free
	epoch    Word
	entries  uint64
	steals   uint64
	failures []string
}

// NewRMEChecker returns a checker for an unlocked mutex.
func NewRMEChecker() *RMEChecker { return &RMEChecker{owner: -1} }

// Entries returns the number of successful acquires observed.
func (c *RMEChecker) Entries() uint64 { return c.entries }

// Steals returns how many acquires repaired a dead owner's lock.
func (c *RMEChecker) Steals() uint64 { return c.steals }

// Violations returns the recorded invariant violations.
func (c *RMEChecker) Violations() []string { return c.failures }

func (c *RMEChecker) violate(format string, args ...any) {
	if len(c.failures) < 32 {
		c.failures = append(c.failures, fmt.Sprintf(format, args...))
	}
}

func (c *RMEChecker) acquired(e *uniproc.Env, stolenFrom int) {
	me := e.Self().ID
	c.entries++
	if stolenFrom >= 0 {
		c.steals++
		if !e.ThreadDead(stolenFrom) {
			c.violate("thread %d stole the lock from live owner %d", me, stolenFrom)
		}
	}
	if c.owner >= 0 && !e.ThreadDead(c.owner) {
		c.violate("mutual exclusion violated: thread %d acquired while live thread %d holds the lock", me, c.owner)
	}
	if c.owner >= 0 && stolenFrom < 0 {
		c.violate("thread %d acquired an orphaned lock (owner %d) without a repair", me, c.owner)
	}
	c.owner = me
}

func (c *RMEChecker) released(e *uniproc.Env) {
	me := e.Self().ID
	if c.owner != me {
		c.violate("thread %d released a lock owned by %d", me, c.owner)
	}
	c.owner = -1
}
