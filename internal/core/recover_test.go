package core

import (
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/uniproc"
)

// rmeRun drives workers×iters critical sections over a RecoverableMutex
// with an attached checker, under the given fault injector. gocount is the
// Go-side shadow of the shared counter: it is incremented in the same
// no-preemption-point window as the counter's store, so on a correct run
// counter == gocount exactly — even when threads die mid-protocol.
func rmeRun(faults chaos.Injector, workers, iters int) (p *uniproc.Processor, m *RecoverableMutex, counter Word, gocount uint64, err error) {
	p = uniproc.New(uniproc.Config{Quantum: 2000, Faults: faults})
	m = NewRecoverableMutex()
	m.Checker = NewRMEChecker()
	for i := 0; i < workers; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				m.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				gocount++
				e.Store(&counter, v+1)
				m.Release(e)
			}
		})
	}
	err = p.Run()
	return p, m, counter, gocount, err
}

func TestRecoverableMutexNoFaults(t *testing.T) {
	_, m, counter, gocount, err := rmeRun(nil, 4, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counter != 200 || gocount != 200 {
		t.Errorf("counter=%d gocount=%d, want 200", counter, gocount)
	}
	c := m.Checker
	if v := c.Violations(); len(v) != 0 {
		t.Errorf("violations on a fault-free run: %v", v)
	}
	if c.Entries() != 200 || c.Steals() != 0 {
		t.Errorf("entries=%d steals=%d, want 200/0", c.Entries(), c.Steals())
	}
	if rmOwner(m.Word()) != -1 {
		t.Errorf("lock left held: %#x", m.Word())
	}
}

// A deterministic orphan: the first worker is killed inside its critical
// section; the second must detect the corpse, repair the lock with an
// epoch bump, and finish.
func TestRecoverableMutexRepairsOrphan(t *testing.T) {
	p := uniproc.New(uniproc.Config{
		// Ordinal 20 lands well inside the victim's post-acquire store loop
		// (the uncontended acquire costs 3 memops).
		Faults: chaos.OneShot{Point: chaos.PointMemOp, N: 20, Action: chaos.Action{Kill: true}},
	})
	m := NewRecoverableMutex()
	m.Checker = NewRMEChecker()
	var scratch, counter Word
	victim := p.Go("victim", func(e *uniproc.Env) {
		m.Acquire(e)
		for i := 0; i < 100; i++ {
			e.Store(&scratch, Word(i))
		}
		m.Release(e) // never reached
	})
	p.Go("heir", func(e *uniproc.Env) {
		m.Acquire(e)
		v := e.Load(&counter)
		e.Store(&counter, v+1)
		m.Release(e)
	})
	if err := p.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !victim.Killed() {
		t.Fatal("victim survived")
	}
	c := m.Checker
	if c.Steals() != 1 || p.Stats.Repairs != 1 {
		t.Errorf("steals=%d repairs=%d, want 1/1", c.Steals(), p.Stats.Repairs)
	}
	if len(c.Violations()) != 0 {
		t.Errorf("violations: %v", c.Violations())
	}
	if counter != 1 {
		t.Errorf("heir's critical section lost: counter=%d", counter)
	}
	if rmEpoch(m.Word()) != 1 {
		t.Errorf("repair did not bump the epoch: %#x", m.Word())
	}
	if rmOwner(m.Word()) != -1 {
		t.Errorf("lock left held: %#x", m.Word())
	}
}

// The abortable acquire: a live owner makes TryAcquire give up (leaving
// the word untouched); a free lock makes it succeed.
func TestRecoverableMutexTryAcquire(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	m := NewRecoverableMutex()
	m.Checker = NewRMEChecker()
	var aborted, acquiredLater, freeTry bool
	p.Go("holder", func(e *uniproc.Env) {
		m.Acquire(e)
		for i := 0; i < 20; i++ {
			e.ChargeALU(5)
			e.Yield() // let the contender observe a live owner
		}
		m.Release(e)
	})
	p.Go("contender", func(e *uniproc.Env) {
		if !m.TryAcquire(e, 3, 8) {
			aborted = true
		} else {
			m.Release(e)
		}
		m.Acquire(e) // blocking acquire must still work afterwards
		acquiredLater = true
		m.Release(e)
		freeTry = m.TryAcquire(e, 1, 8)
		if freeTry {
			m.Release(e)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !aborted {
		t.Error("TryAcquire succeeded against a live owner")
	}
	if !acquiredLater || !freeTry {
		t.Errorf("acquiredLater=%v freeTry=%v", acquiredLater, freeTry)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestRecoverableMutexRecursiveAcquirePanics(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	m := NewRecoverableMutex()
	p.Go("buggy", func(e *uniproc.Env) {
		m.Acquire(e)
		m.Acquire(e)
	})
	if err := p.Run(); !errors.Is(err, uniproc.ErrGuestPanic) {
		t.Fatalf("Run = %v, want ErrGuestPanic", err)
	}
}

// The checker itself: a live-owner double acquire and a wrong-thread
// release must both be recorded (never panicked).
func TestRMECheckerFlagsViolations(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	c := NewRMEChecker()
	p.Go("a", func(e *uniproc.Env) {
		c.acquired(e, -1)
		e.Yield()
		c.released(e) // by now b "acquired": wrong-owner release
	})
	p.Go("b", func(e *uniproc.Env) {
		c.acquired(e, -1) // a is alive and "holds" the lock
	})
	if err := p.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(c.Violations()) < 2 {
		t.Fatalf("violations = %v, want both the ME breach and the bad release", c.Violations())
	}
}

// The tentpole sweep, runtime-substrate half: hundreds of seeded kill
// schedules (1–3 kills each), every one of which must preserve mutual
// exclusion, the exact counter invariant, and progress for the survivors.
// The full ≥1000-schedule sweep runs in internal/bench's recovery table;
// this is the fast in-package version.
func TestRecoverableMutexKillSweep(t *testing.T) {
	schedules := 300
	if testing.Short() {
		schedules = 40
	}
	// Reference run to learn the memop span a kill ordinal may land in.
	ref, _, _, _, err := rmeRun(nil, 4, 25)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	span := ref.MemOps()
	if span == 0 {
		t.Fatal("reference run had no memops")
	}
	var totalKills, totalSteals uint64
	for s := 0; s < schedules; s++ {
		nKills := 1 + s%3
		injs := make([]chaos.Injector, 0, nKills)
		for k := 0; k < nKills; k++ {
			n := chaos.Derive(0x524D45, uint64(s), uint64(k))%span + 1
			injs = append(injs, chaos.OneShot{Point: chaos.PointMemOp, N: n, Action: chaos.Action{Kill: true}})
		}
		p, m, counter, gocount, err := rmeRun(chaos.Compose(injs...), 4, 25)
		if err != nil {
			t.Fatalf("schedule %d: Run: %v", s, err)
		}
		if v := m.Checker.Violations(); len(v) != 0 {
			t.Fatalf("schedule %d: violations: %v", s, v)
		}
		if uint64(counter) != gocount {
			t.Fatalf("schedule %d: counter=%d gocount=%d", s, counter, gocount)
		}
		for _, th := range p.Threads() {
			if !th.Done() {
				t.Fatalf("schedule %d: %v stuck", s, th)
			}
		}
		totalKills += p.Stats.Kills
		totalSteals += m.Checker.Steals()
	}
	if totalKills == 0 {
		t.Error("sweep never killed a thread")
	}
	if totalSteals == 0 {
		t.Error("sweep never exercised the repair path")
	}
	t.Logf("sweep: %d schedules, %d kills, %d repairs", schedules, totalKills, totalSteals)
}
