package core

import "repro/internal/uniproc"

// This file implements lock-free data structures whose atomicity comes
// directly from restartable sequences, following the paper's §4.1 remark
// that restart machinery "can be made as rich as necessary to satisfy the
// atomicity constraints of any instruction sequence, such as those that
// manipulate wait-free data structures [Herlihy 91]".
//
// The design rule is the same one the Test-And-Set obeys: a sequence may
// read anything and write only thread-private state until its single
// committing store (Env.Commit) publishes the change. On a uniprocessor
// that makes every operation atomic without a lock — an interrupted
// attempt is simply re-run.

// Stack is a LIFO of Words with lock-free push/pop built on restartable
// sequences. Nodes live in an arena indexed by Word handles so that the
// committing store is a single word (the head handle); handle 0 is the
// empty stack.
type Stack struct {
	head  Word
	nodes []stackNode // index 0 unused (0 = nil handle)
	free  []Word      // recycled node handles (thread-unsafe bookkeeping is
	// fine: only the running thread touches it, and it is not part of the
	// atomic state)
}

type stackNode struct {
	value Word
	next  Word
}

// NewStack creates an empty stack.
func NewStack() *Stack {
	return &Stack{nodes: make([]stackNode, 1)}
}

// alloc returns a free node handle, growing the arena if needed.
func (s *Stack) alloc(e *uniproc.Env) Word {
	e.ChargeALU(3)
	if n := len(s.free); n > 0 {
		h := s.free[n-1]
		s.free = s.free[:n-1]
		return h
	}
	s.nodes = append(s.nodes, stackNode{})
	return Word(len(s.nodes) - 1)
}

// Push atomically pushes v.
func (s *Stack) Push(e *uniproc.Env, v Word) {
	h := s.alloc(e)
	s.nodes[h].value = v
	e.ChargeALU(2)
	e.Restartable(func() {
		old := e.Load(&s.head)
		// The node is private until the commit publishes it, so this
		// write is safely repeatable on restart.
		s.nodes[h].next = old
		e.ChargeALU(1)
		e.Commit(&s.head, h)
	})
}

// Pop atomically removes and returns the top value; ok is false when the
// stack is empty.
//
// Note the absence of the ABA problem that plagues compare-and-swap
// versions of this structure: for another thread to pop and recycle the
// node this thread just read, this thread must have been suspended inside
// its sequence — in which case the sequence restarts and re-reads the
// head. The restart subsumes the version counters a multiprocessor needs.
func (s *Stack) Pop(e *uniproc.Env) (v Word, ok bool) {
	var h Word
	e.Restartable(func() {
		h = e.Load(&s.head)
		if h == 0 {
			return // leave the sequence without committing: empty
		}
		next := e.Load(&s.nodes[h].next)
		e.Commit(&s.head, next)
	})
	if h == 0 {
		return 0, false
	}
	v = s.nodes[h].value
	s.free = append(s.free, h)
	e.ChargeALU(3)
	return v, true
}

// PopAll atomically takes the entire stack contents (top first). A single
// committing store detaches the whole chain, after which traversal is
// private.
func (s *Stack) PopAll(e *uniproc.Env) []Word {
	var h Word
	e.Restartable(func() {
		h = e.Load(&s.head)
		if h == 0 {
			return
		}
		e.Commit(&s.head, 0)
	})
	var out []Word
	for h != 0 {
		out = append(out, s.nodes[h].value)
		next := s.nodes[h].next
		s.free = append(s.free, h)
		h = next
		e.ChargeALU(3)
	}
	return out
}

// Len returns the current depth (diagnostics only: not atomic with respect
// to concurrent operations, though on the uniprocessor it is consistent at
// any instruction boundary).
func (s *Stack) Len() int {
	n := 0
	for h := s.head; h != 0; h = s.nodes[h].next {
		n++
	}
	return n
}

// Counter is a shared counter whose Add is a single restartable
// fetch-and-add — the "other primitives" of §2.
type Counter struct {
	mech Mechanism
	word Word
}

// NewCounter creates a counter using mech for atomicity.
func NewCounter(m Mechanism) *Counter { return &Counter{mech: m} }

// Add atomically adds delta and returns the previous value.
func (c *Counter) Add(e *uniproc.Env, delta Word) Word {
	return c.mech.FetchAndAdd(e, &c.word, delta)
}

// Value reads the counter.
func (c *Counter) Value(e *uniproc.Env) Word {
	return e.Load(&c.word)
}

// Queue is a FIFO built from two RAS stacks (the classic two-stack queue):
// enqueues push to the inbox; a dequeue that finds its outbox empty
// atomically detaches the whole inbox with PopAll and reverses it in
// private memory. Dequeue is single-consumer-correct on the uniprocessor
// for arbitrary producers; with multiple consumers each drain is still
// atomic, so no element is lost or duplicated.
type Queue struct {
	inbox  *Stack
	outbox []Word // oldest-first; guarded by olock
	olock  *TASLock
}

// NewQueue creates an empty queue using mech for the consumer-side lock.
func NewQueue(m Mechanism) *Queue {
	return &Queue{inbox: NewStack(), olock: NewTASLock(m)}
}

// Enqueue atomically appends v. Lock-free: a single restartable push.
func (q *Queue) Enqueue(e *uniproc.Env, v Word) {
	q.inbox.Push(e, v)
}

// Dequeue removes the oldest element; ok is false when the queue is empty.
func (q *Queue) Dequeue(e *uniproc.Env) (v Word, ok bool) {
	q.olock.Acquire(e)
	defer q.olock.Release(e)
	if len(q.outbox) == 0 {
		// PopAll yields newest-first; reversing it leaves oldest-first.
		batch := q.inbox.PopAll(e)
		for i := len(batch) - 1; i >= 0; i-- {
			q.outbox = append(q.outbox, batch[i])
		}
		e.ChargeALU(2 * len(batch))
	}
	if len(q.outbox) == 0 {
		return 0, false
	}
	v = q.outbox[0]
	q.outbox = q.outbox[1:]
	e.ChargeALU(2)
	return v, true
}
