package core

import (
	"testing"
	"testing/quick"

	"repro/internal/uniproc"
)

func TestStackSingleThread(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	s := NewStack()
	p.Go("main", func(e *uniproc.Env) {
		if _, ok := s.Pop(e); ok {
			t.Error("pop from empty stack succeeded")
		}
		s.Push(e, 1)
		s.Push(e, 2)
		s.Push(e, 3)
		if s.Len() != 3 {
			t.Errorf("len = %d", s.Len())
		}
		for want := Word(3); want >= 1; want-- {
			v, ok := s.Pop(e)
			if !ok || v != want {
				t.Errorf("pop = %d,%v want %d", v, ok, want)
			}
		}
		if _, ok := s.Pop(e); ok {
			t.Error("stack not empty after draining")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStackNodeRecycling(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	s := NewStack()
	p.Go("main", func(e *uniproc.Env) {
		for i := 0; i < 100; i++ {
			s.Push(e, Word(i))
			if v, ok := s.Pop(e); !ok || v != Word(i) {
				t.Fatalf("round %d: %d,%v", i, v, ok)
			}
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Arena should have stayed tiny thanks to the free list.
	if len(s.nodes) > 4 {
		t.Errorf("arena grew to %d nodes for depth-1 traffic", len(s.nodes))
	}
}

// Concurrent pushers and poppers under adversarial preemption: the multiset
// of popped values must exactly equal the multiset pushed.
func TestStackConcurrentNoLossNoDup(t *testing.T) {
	for _, q := range []uint64{23, 61, 211} {
		p := uniproc.New(uniproc.Config{Quantum: q, JitterSeed: 77})
		s := NewStack()
		const producers, perProducer = 3, 100
		seen := make(map[Word]int)
		done := 0
		for i := 0; i < producers; i++ {
			base := Word(i * 1000)
			p.Go("pusher", func(e *uniproc.Env) {
				for j := 0; j < perProducer; j++ {
					s.Push(e, base+Word(j))
				}
				done++
			})
		}
		p.Go("popper", func(e *uniproc.Env) {
			for {
				v, ok := s.Pop(e)
				if ok {
					seen[v]++
					continue
				}
				if done == producers {
					return
				}
				e.Yield()
			}
		})
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		if len(seen) != producers*perProducer {
			t.Fatalf("q=%d: popped %d distinct values, want %d",
				q, len(seen), producers*perProducer)
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("q=%d: value %d popped %d times", q, v, n)
			}
		}
	}
}

func TestStackPopAll(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	s := NewStack()
	p.Go("main", func(e *uniproc.Env) {
		for i := 1; i <= 5; i++ {
			s.Push(e, Word(i))
		}
		got := s.PopAll(e)
		want := []Word{5, 4, 3, 2, 1}
		if len(got) != 5 {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
		if s.Len() != 0 {
			t.Error("stack not empty after PopAll")
		}
		if out := s.PopAll(e); out != nil {
			t.Errorf("PopAll on empty = %v", out)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 37})
	c := NewCounter(NewRAS())
	const n, iters = 4, 200
	for i := 0; i < n; i++ {
		p.Go("adder", func(e *uniproc.Env) {
			for j := 0; j < iters; j++ {
				c.Add(e, 1)
			}
		})
	}
	p.Go("reader", func(e *uniproc.Env) {
		_ = c.Value(e) // concurrent reads are fine
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	pp := uniproc.New(uniproc.Config{})
	pp.Go("check", func(e *uniproc.Env) {
		if got := c.Value(e); got != n*iters {
			t.Errorf("counter = %d, want %d", got, n*iters)
		}
	})
	if err := pp.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	q := NewQueue(NewRAS())
	p.Go("main", func(e *uniproc.Env) {
		if _, ok := q.Dequeue(e); ok {
			t.Error("dequeue from empty queue")
		}
		for i := 1; i <= 10; i++ {
			q.Enqueue(e, Word(i))
		}
		for i := 1; i <= 10; i++ {
			v, ok := q.Dequeue(e)
			if !ok || v != Word(i) {
				t.Fatalf("dequeue %d = %d,%v", i, v, ok)
			}
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueInterleavedProducerConsumer(t *testing.T) {
	// Per-producer FIFO order must survive concurrency: for each producer,
	// its values arrive in increasing order.
	p := uniproc.New(uniproc.Config{Quantum: 97, JitterSeed: 31})
	q := NewQueue(NewRAS())
	const producers, per = 3, 80
	lastSeen := map[Word]Word{} // producer base -> last sequence number
	total := 0
	doneProd := 0
	for i := 0; i < producers; i++ {
		base := Word((i + 1) * 1000)
		p.Go("producer", func(e *uniproc.Env) {
			for j := 1; j <= per; j++ {
				q.Enqueue(e, base+Word(j))
			}
			doneProd++
		})
	}
	p.Go("consumer", func(e *uniproc.Env) {
		for {
			v, ok := q.Dequeue(e)
			if !ok {
				if doneProd == producers {
					return
				}
				e.Yield()
				continue
			}
			base := v / 1000 * 1000
			seq := v - base
			if seq <= lastSeen[base] {
				t.Errorf("producer %d out of order: %d after %d", base, seq, lastSeen[base])
			}
			lastSeen[base] = seq
			total++
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if total != producers*per {
		t.Errorf("consumed %d, want %d", total, producers*per)
	}
}

// Property: stack push/pop sequences behave like a model []Word stack, for
// arbitrary operation strings and quanta (single-threaded semantics).
func TestQuickStackMatchesModel(t *testing.T) {
	f := func(ops []byte, q16 uint16) bool {
		p := uniproc.New(uniproc.Config{Quantum: uint64(q16)%300 + 11})
		s := NewStack()
		var model []Word
		okAll := true
		p.Go("main", func(e *uniproc.Env) {
			for i, op := range ops {
				if op%3 != 0 { // push twice as often as pop
					v := Word(i)
					s.Push(e, v)
					model = append(model, v)
					continue
				}
				v, ok := s.Pop(e)
				if len(model) == 0 {
					if ok {
						okAll = false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					okAll = false
				}
			}
		})
		return p.Run() == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
