package core

import "repro/internal/uniproc"

// TicketLock is a FIFO mutual exclusion lock built on the Fetch-And-Add
// primitive (§2 lists Fetch-And-Add among the operations restartable
// sequences can implement). Arriving threads take a ticket; the lock serves
// tickets in order, so no thread can be starved by barging — unlike the
// Test-And-Set spinlock, whose acquisition order is whatever the scheduler
// happens to produce.
type TicketLock struct {
	mech    Mechanism
	next    Word // next ticket to hand out
	serving Word // ticket currently allowed into the critical section
}

// NewTicketLock creates an unlocked ticket lock over mech.
func NewTicketLock(m Mechanism) *TicketLock { return &TicketLock{mech: m} }

// Name implements Locker.
func (l *TicketLock) Name() string { return "ticket(" + l.mech.Name() + ")" }

// Acquire implements Locker: take a ticket, then wait (yielding) until it
// is served.
func (l *TicketLock) Acquire(e *uniproc.Env) {
	ticket := l.mech.FetchAndAdd(e, &l.next, 1)
	for e.Load(&l.serving) != ticket {
		e.Processor().CountHoldup()
		e.Yield()
	}
}

// Release implements Locker: serve the next ticket. The holder is the only
// writer of serving, so a plain store suffices on the uniprocessor.
func (l *TicketLock) Release(e *uniproc.Env) {
	s := e.Load(&l.serving)
	e.ChargeALU(1)
	e.Store(&l.serving, s+1)
}

// Holder diagnostics: Waiters reports how many tickets are outstanding.
func (l *TicketLock) Waiters() int { return int(l.next - l.serving) }
