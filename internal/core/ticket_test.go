package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/uniproc"
)

func TestTicketLockMutualExclusion(t *testing.T) {
	const n, iters = 4, 200
	for _, mech := range []Mechanism{NewRAS(), NewKernelEmul(arch.R3000())} {
		for _, q := range []uint64{31, 127, 50000} {
			p := uniproc.New(uniproc.Config{Quantum: q, JitterSeed: 3})
			lock := NewTicketLock(mech)
			var counter Word
			inCS := false
			violated := false
			for i := 0; i < n; i++ {
				p.Go("worker", func(e *uniproc.Env) {
					for it := 0; it < iters; it++ {
						lock.Acquire(e)
						if inCS {
							violated = true
						}
						inCS = true
						v := e.Load(&counter)
						e.ChargeALU(2)
						e.Store(&counter, v+1)
						inCS = false
						lock.Release(e)
					}
				})
			}
			if err := p.Run(); err != nil {
				t.Fatalf("%s q=%d: %v", mech.Name(), q, err)
			}
			if violated {
				t.Errorf("%s q=%d: two holders", mech.Name(), q)
			}
			if counter != n*iters {
				t.Errorf("%s q=%d: counter = %d, want %d", mech.Name(), q, counter, n*iters)
			}
		}
	}
}

func TestTicketLockFIFO(t *testing.T) {
	// Threads that queue while the lock is held must acquire it in ticket
	// (arrival) order.
	p := uniproc.New(uniproc.Config{Quantum: 1 << 40})
	lock := NewTicketLock(NewRAS())
	var order []int
	p.Go("holder", func(e *uniproc.Env) {
		lock.Acquire(e)
		for i := 1; i <= 3; i++ {
			id := i
			e.Fork("waiter", func(e *uniproc.Env) {
				lock.Acquire(e)
				order = append(order, id)
				lock.Release(e)
			})
			e.Yield() // let waiter i take its ticket before i+1 forks
		}
		lock.Release(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("acquisition order = %v, want [1 2 3]", order)
	}
}

func TestTicketLockWaiters(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 40})
	lock := NewTicketLock(NewRAS())
	p.Go("main", func(e *uniproc.Env) {
		lock.Acquire(e)
		if lock.Waiters() != 1 {
			t.Errorf("waiters = %d, want 1 (the holder)", lock.Waiters())
		}
		lock.Release(e)
		if lock.Waiters() != 0 {
			t.Errorf("waiters = %d after release", lock.Waiters())
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if lock.Name() == "" {
		t.Error("empty name")
	}
}
