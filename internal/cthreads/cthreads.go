// Package cthreads is the analogue of Mach's C-Threads package (Cooper &
// Draves): user-level thread management facilities — forkable threads with
// join, spinlocks, relinquishing mutexes, condition variables and
// semaphores — built entirely on the primitive atomic operations of a
// core.Mechanism.
//
// This is the dependency structure the paper measures in §5.2: "thread
// management packages rely heavily on simple atomic operations to implement
// higher level facilities", so the performance of every facility here
// reflects the mechanism underneath (Table 2).
package cthreads

import (
	"repro/internal/core"
	"repro/internal/uniproc"
)

// Word aliases the simulated memory word.
type Word = uniproc.Word

// Pkg is a thread-package instance bound to one atomic-operation mechanism,
// as a real C-Threads build was bound to either kernel emulation or
// restartable atomic sequences.
type Pkg struct {
	mech core.Mechanism
}

// New creates a thread package over mech.
func New(mech core.Mechanism) *Pkg { return &Pkg{mech: mech} }

// Mechanism returns the underlying atomic-operation mechanism.
func (p *Pkg) Mechanism() core.Mechanism { return p.mech }

// SpinLock is a Test-And-Set spinlock (which yields the processor on
// contention: spinning is useless on a uniprocessor while the holder is
// suspended).
type SpinLock struct {
	l *core.TASLock
}

// NewSpinLock creates an unlocked spinlock.
func (p *Pkg) NewSpinLock() *SpinLock {
	return &SpinLock{l: core.NewTASLock(p.mech)}
}

// Lock acquires the spinlock.
func (s *SpinLock) Lock(e *uniproc.Env) { s.l.Acquire(e) }

// TryLock attempts the lock once, reporting success.
func (s *SpinLock) TryLock(e *uniproc.Env) bool { return s.l.TryAcquire(e) }

// Unlock releases the spinlock.
func (s *SpinLock) Unlock(e *uniproc.Env) { s.l.Release(e) }

// Held reports whether the lock word is set (diagnostics only).
func (s *SpinLock) Held() bool { return s.l.Held() }

// Mutex is a relinquishing mutex: "unlike a spinlock, if a thread tries to
// acquire a held mutex, it relinquishes the processor. The mutex is
// implemented using a spinlock and a queue of waiting threads" (§5.2).
// Unlock hands the mutex directly to the first waiter.
type Mutex struct {
	spin    *SpinLock
	held    Word
	waiters []*uniproc.Thread
}

// NewMutex creates an unlocked mutex.
func (p *Pkg) NewMutex() *Mutex {
	return &Mutex{spin: p.NewSpinLock()}
}

// Lock acquires the mutex, blocking the thread if it is held.
func (m *Mutex) Lock(e *uniproc.Env) {
	m.spin.Lock(e)
	if e.Load(&m.held) == 0 {
		e.Store(&m.held, 1)
		m.spin.Unlock(e)
		return
	}
	m.waiters = append(m.waiters, e.Self())
	e.ChargeALU(4) // enqueue
	m.spin.Unlock(e)
	e.Block()
	// Handoff: the unlocker left held == 1 on our behalf.
}

// TryLock attempts the mutex without blocking, reporting success.
func (m *Mutex) TryLock(e *uniproc.Env) bool {
	m.spin.Lock(e)
	ok := e.Load(&m.held) == 0
	if ok {
		e.Store(&m.held, 1)
	}
	m.spin.Unlock(e)
	return ok
}

// Unlock releases the mutex, waking the first waiter if any.
func (m *Mutex) Unlock(e *uniproc.Env) {
	m.spin.Lock(e)
	if len(m.waiters) > 0 {
		t := m.waiters[0]
		m.waiters = m.waiters[1:]
		e.ChargeALU(4) // dequeue
		m.spin.Unlock(e)
		e.Unblock(t)
		return
	}
	e.Store(&m.held, 0)
	m.spin.Unlock(e)
}

// Held reports whether the mutex is held (diagnostics only).
func (m *Mutex) Held() bool { return m.held != 0 }

// Cond is a condition variable used with a Mutex.
type Cond struct {
	spin    *SpinLock
	waiters []*uniproc.Thread
}

// NewCond creates a condition variable.
func (p *Pkg) NewCond() *Cond {
	return &Cond{spin: p.NewSpinLock()}
}

// Wait atomically releases m and blocks until signalled, then reacquires m.
// As always with condition variables, callers must re-check their predicate.
func (c *Cond) Wait(e *uniproc.Env, m *Mutex) {
	c.spin.Lock(e)
	c.waiters = append(c.waiters, e.Self())
	e.ChargeALU(4)
	c.spin.Unlock(e)
	m.Unlock(e)
	e.Block() // a Signal racing ahead is caught by the pending-wakeup guard
	m.Lock(e)
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal(e *uniproc.Env) {
	c.spin.Lock(e)
	var t *uniproc.Thread
	if len(c.waiters) > 0 {
		t = c.waiters[0]
		c.waiters = c.waiters[1:]
		e.ChargeALU(4)
	}
	c.spin.Unlock(e)
	if t != nil {
		e.Unblock(t)
	}
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast(e *uniproc.Env) {
	c.spin.Lock(e)
	ts := c.waiters
	c.waiters = nil
	e.ChargeALU(2 + 2*len(ts))
	c.spin.Unlock(e)
	for _, t := range ts {
		e.Unblock(t)
	}
}

// Semaphore is Dijkstra's counting semaphore (P/V), the other mutual
// exclusion facility named in §1.1.
type Semaphore struct {
	spin    *SpinLock
	count   Word
	waiters []*uniproc.Thread
}

// NewSemaphore creates a semaphore with the given initial count.
func (p *Pkg) NewSemaphore(initial int) *Semaphore {
	return &Semaphore{spin: p.NewSpinLock(), count: Word(initial)}
}

// P decrements the semaphore, blocking while it is zero.
func (s *Semaphore) P(e *uniproc.Env) {
	s.spin.Lock(e)
	if c := e.Load(&s.count); c > 0 {
		e.Store(&s.count, c-1)
		s.spin.Unlock(e)
		return
	}
	s.waiters = append(s.waiters, e.Self())
	e.ChargeALU(4)
	s.spin.Unlock(e)
	e.Block()
	// Handoff: the V that woke us consumed the increment on our behalf.
}

// V increments the semaphore, waking one waiter if any.
func (s *Semaphore) V(e *uniproc.Env) {
	s.spin.Lock(e)
	if len(s.waiters) > 0 {
		t := s.waiters[0]
		s.waiters = s.waiters[1:]
		e.ChargeALU(4)
		s.spin.Unlock(e)
		e.Unblock(t)
		return
	}
	c := e.Load(&s.count)
	e.Store(&s.count, c+1)
	s.spin.Unlock(e)
}

// Count returns the current count (diagnostics only).
func (s *Semaphore) Count() Word { return s.count }

// Handle identifies a forked thread and supports Join.
type Handle struct {
	t       *uniproc.Thread
	spin    *SpinLock
	done    Word
	joiners []*uniproc.Thread
}

// Fork creates a new thread running fn and returns a joinable handle.
// The fork and the child's exit both synchronize through the package's
// mechanism, as in the paper's ForkTest benchmark.
func (p *Pkg) Fork(e *uniproc.Env, name string, fn func(*uniproc.Env)) *Handle {
	h := &Handle{spin: p.NewSpinLock()}
	h.t = e.Fork(name, func(ce *uniproc.Env) {
		fn(ce)
		h.finish(ce)
	})
	return h
}

func (h *Handle) finish(e *uniproc.Env) {
	h.spin.Lock(e)
	e.Store(&h.done, 1)
	ts := h.joiners
	h.joiners = nil
	h.spin.Unlock(e)
	for _, t := range ts {
		e.Unblock(t)
	}
}

// Join blocks until the thread has finished. Multiple threads may join the
// same handle.
func (h *Handle) Join(e *uniproc.Env) {
	h.spin.Lock(e)
	if e.Load(&h.done) != 0 {
		h.spin.Unlock(e)
		return
	}
	h.joiners = append(h.joiners, e.Self())
	e.ChargeALU(4)
	h.spin.Unlock(e)
	e.Block()
}

// Thread returns the underlying scheduler thread.
func (h *Handle) Thread() *uniproc.Thread { return h.t }
