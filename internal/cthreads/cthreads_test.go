package cthreads

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/uniproc"
)

func newProc(q uint64) *uniproc.Processor {
	return uniproc.New(uniproc.Config{Quantum: q, JitterSeed: 3})
}

func allPkgs() map[string]*Pkg {
	return map[string]*Pkg{
		"ras":       New(core.NewRAS()),
		"ras-reg":   New(core.NewRASRegistered()),
		"emulation": New(core.NewKernelEmul(arch.R3000())),
	}
}

func TestSpinLockCounterAllMechanisms(t *testing.T) {
	const n, iters = 4, 200
	for name, pkg := range allPkgs() {
		for _, q := range []uint64{29, 173, 50000} {
			p := newProc(q)
			lock := pkg.NewSpinLock()
			var counter Word
			for i := 0; i < n; i++ {
				p.Go("worker", func(e *uniproc.Env) {
					for it := 0; it < iters; it++ {
						lock.Lock(e)
						v := e.Load(&counter)
						e.ChargeALU(1)
						e.Store(&counter, v+1)
						lock.Unlock(e)
					}
				})
			}
			if err := p.Run(); err != nil {
				t.Fatalf("%s q=%d: %v", name, q, err)
			}
			if counter != n*iters {
				t.Errorf("%s q=%d: counter = %d, want %d", name, q, counter, n*iters)
			}
		}
	}
}

func TestSpinLockTryLock(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	lock := pkg.NewSpinLock()
	p.Go("main", func(e *uniproc.Env) {
		if !lock.TryLock(e) {
			t.Error("TryLock failed on free lock")
		}
		if lock.TryLock(e) {
			t.Error("TryLock succeeded on held lock")
		}
		lock.Unlock(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if lock.Held() {
		t.Error("lock leaked")
	}
	if pkg.Mechanism().Name() == "" {
		t.Error("mechanism accessor broken")
	}
}

func TestMutexBlocksAndHandsOff(t *testing.T) {
	const n, iters = 5, 100
	p := newProc(997)
	pkg := New(core.NewRAS())
	mu := pkg.NewMutex()
	var counter Word
	for i := 0; i < n; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				mu.Lock(e)
				v := e.Load(&counter)
				// A long critical section guarantees other threads arrive
				// while it is held, forcing the blocking path.
				e.ChargeALU(300)
				e.Store(&counter, v+1)
				mu.Unlock(e)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != n*iters {
		t.Errorf("counter = %d, want %d", counter, n*iters)
	}
	if p.Stats.Blocks == 0 {
		t.Error("no thread ever blocked on the mutex")
	}
	if mu.Held() {
		t.Error("mutex leaked")
	}
}

func TestMutexTryLock(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	mu := pkg.NewMutex()
	p.Go("main", func(e *uniproc.Env) {
		if !mu.TryLock(e) {
			t.Error("TryLock failed on free mutex")
		}
		if mu.TryLock(e) {
			t.Error("TryLock succeeded on held mutex")
		}
		mu.Unlock(e)
		if !mu.TryLock(e) {
			t.Error("TryLock failed after unlock")
		}
		mu.Unlock(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondProducerConsumer(t *testing.T) {
	// Bounded buffer of size 4; producer sends 1..N, consumer sums.
	const items = 300
	p := newProc(211)
	pkg := New(core.NewRAS())
	mu := pkg.NewMutex()
	notEmpty := pkg.NewCond()
	notFull := pkg.NewCond()
	var buf []Word
	var sum, wantSum uint64
	p.Go("producer", func(e *uniproc.Env) {
		for i := 1; i <= items; i++ {
			mu.Lock(e)
			for len(buf) == 4 {
				notFull.Wait(e, mu)
			}
			buf = append(buf, Word(i))
			e.ChargeALU(4)
			notEmpty.Signal(e)
			mu.Unlock(e)
			wantSum += uint64(i)
		}
	})
	p.Go("consumer", func(e *uniproc.Env) {
		for i := 0; i < items; i++ {
			mu.Lock(e)
			for len(buf) == 0 {
				notEmpty.Wait(e, mu)
			}
			v := buf[0]
			buf = buf[1:]
			e.ChargeALU(4)
			notFull.Signal(e)
			mu.Unlock(e)
			sum += uint64(v)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != wantSum {
		t.Errorf("sum = %d, want %d", sum, wantSum)
	}
}

func TestPingPongAlternation(t *testing.T) {
	// Two threads alternate strictly via a mutex and condition variable —
	// the paper's PingPong benchmark structure.
	const rounds = 100
	p := newProc(50000)
	pkg := New(core.NewRAS())
	mu := pkg.NewMutex()
	cond := pkg.NewCond()
	turn := Word(0)
	var seq []Word
	player := func(me Word) func(*uniproc.Env) {
		return func(e *uniproc.Env) {
			for i := 0; i < rounds; i++ {
				mu.Lock(e)
				for e.Load(&turn) != me {
					cond.Wait(e, mu)
				}
				seq = append(seq, me)
				e.Store(&turn, 1-me)
				cond.Signal(e)
				mu.Unlock(e)
			}
		}
	}
	p.Go("ping", player(0))
	p.Go("pong", player(1))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2*rounds {
		t.Fatalf("seq len = %d", len(seq))
	}
	for i, v := range seq {
		if v != Word(i%2) {
			t.Fatalf("alternation broken at %d: %v", i, seq[:i+1])
		}
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	const n = 6
	p := newProc(50000)
	pkg := New(core.NewRAS())
	mu := pkg.NewMutex()
	cond := pkg.NewCond()
	var ready Word
	var woke int
	for i := 0; i < n; i++ {
		p.Go("waiter", func(e *uniproc.Env) {
			mu.Lock(e)
			for e.Load(&ready) == 0 {
				cond.Wait(e, mu)
			}
			woke++
			mu.Unlock(e)
		})
	}
	p.Go("broadcaster", func(e *uniproc.Env) {
		// Let all waiters park first.
		for i := 0; i < 3; i++ {
			e.Yield()
		}
		mu.Lock(e)
		e.Store(&ready, 1)
		cond.Broadcast(e)
		mu.Unlock(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != n {
		t.Errorf("woke = %d, want %d", woke, n)
	}
}

func TestSignalWithNoWaitersIsNoop(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	cond := pkg.NewCond()
	p.Go("main", func(e *uniproc.Env) {
		cond.Signal(e)
		cond.Broadcast(e)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphore(t *testing.T) {
	const n, iters = 4, 100
	p := newProc(311)
	pkg := New(core.NewRAS())
	sem := pkg.NewSemaphore(1) // binary semaphore as a mutex
	var counter Word
	for i := 0; i < n; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				sem.P(e)
				v := e.Load(&counter)
				e.ChargeALU(50)
				e.Store(&counter, v+1)
				sem.V(e)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != n*iters {
		t.Errorf("counter = %d, want %d", counter, n*iters)
	}
	if sem.Count() != 1 {
		t.Errorf("final count = %d, want 1", sem.Count())
	}
}

func TestSemaphoreAsResourcePool(t *testing.T) {
	// Count-3 semaphore: at most 3 threads in the "pool" at once.
	const n = 8
	p := newProc(50000)
	pkg := New(core.NewRAS())
	sem := pkg.NewSemaphore(3)
	var inPool, maxInPool int
	for i := 0; i < n; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			sem.P(e)
			inPool++
			if inPool > maxInPool {
				maxInPool = inPool
			}
			e.Yield() // give others a chance to exceed the bound (they must not)
			inPool--
			sem.V(e)
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInPool > 3 {
		t.Errorf("pool bound violated: %d", maxInPool)
	}
	if maxInPool < 2 {
		t.Errorf("pool underused: %d (test not exercising concurrency)", maxInPool)
	}
}

func TestForkJoin(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	var childDone bool
	p.Go("parent", func(e *uniproc.Env) {
		h := pkg.Fork(e, "child", func(e *uniproc.Env) {
			e.ChargeALU(100)
			childDone = true
		})
		h.Join(e)
		if !childDone {
			t.Error("join returned before child finished")
		}
		if h.Thread() == nil {
			t.Error("handle has no thread")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAfterExit(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	p.Go("parent", func(e *uniproc.Env) {
		h := pkg.Fork(e, "child", func(e *uniproc.Env) {})
		for i := 0; i < 4; i++ {
			e.Yield() // let the child run to completion first
		}
		h.Join(e) // must return immediately
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleJoiners(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	joined := 0
	p.Go("parent", func(e *uniproc.Env) {
		h := pkg.Fork(e, "slow", func(e *uniproc.Env) {
			for i := 0; i < 5; i++ {
				e.Yield()
			}
		})
		for i := 0; i < 3; i++ {
			pkg.Fork(e, "joiner", func(e *uniproc.Env) {
				h.Join(e)
				joined++
			})
		}
		h.Join(e)
		joined++
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 4 {
		t.Errorf("joined = %d, want 4", joined)
	}
}

func TestRecursiveForkChain(t *testing.T) {
	// The paper's ForkTest: threads recursively forked in succession, each
	// terminating immediately after forking the next.
	const depth = 50
	p := newProc(50000)
	pkg := New(core.NewRAS())
	count := 0
	var spawn func(e *uniproc.Env, remaining int)
	spawn = func(e *uniproc.Env, remaining int) {
		count++
		if remaining == 0 {
			return
		}
		pkg.Fork(e, "link", func(e *uniproc.Env) { spawn(e, remaining-1) })
	}
	p.Go("root", func(e *uniproc.Env) { spawn(e, depth) })
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if count != depth+1 {
		t.Errorf("count = %d, want %d", count, depth+1)
	}
}

// Property: producer/consumer transfers every item exactly once under
// arbitrary quanta and mechanisms.
func TestQuickProducerConsumer(t *testing.T) {
	f := func(q16 uint16, useEmul bool) bool {
		q := uint64(q16)%900 + 31
		var pkg *Pkg
		if useEmul {
			pkg = New(core.NewKernelEmul(arch.R3000()))
		} else {
			pkg = New(core.NewRAS())
		}
		p := uniproc.New(uniproc.Config{Quantum: q})
		mu := pkg.NewMutex()
		notEmpty := pkg.NewCond()
		notFull := pkg.NewCond()
		var buf []Word
		const items = 60
		received := make([]bool, items+1)
		ok := true
		p.Go("producer", func(e *uniproc.Env) {
			for i := 1; i <= items; i++ {
				mu.Lock(e)
				for len(buf) == 2 {
					notFull.Wait(e, mu)
				}
				buf = append(buf, Word(i))
				notEmpty.Signal(e)
				mu.Unlock(e)
			}
		})
		p.Go("consumer", func(e *uniproc.Env) {
			for i := 0; i < items; i++ {
				mu.Lock(e)
				for len(buf) == 0 {
					notEmpty.Wait(e, mu)
				}
				v := buf[0]
				buf = buf[1:]
				notFull.Signal(e)
				mu.Unlock(e)
				if v < 1 || int(v) > items || received[v] {
					ok = false
				} else {
					received[v] = true
				}
			}
		})
		if err := p.Run(); err != nil {
			return false
		}
		for i := 1; i <= items; i++ {
			if !received[i] {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The §5.2 claim: thread management operations are faster with RAS than
// with kernel emulation.
func TestRASFasterThanEmulationForMutex(t *testing.T) {
	run := func(pkg *Pkg) uint64 {
		p := uniproc.New(uniproc.Config{Quantum: 50000})
		mu := pkg.NewMutex()
		var c Word
		p.Go("main", func(e *uniproc.Env) {
			for i := 0; i < 2000; i++ {
				mu.Lock(e)
				v := e.Load(&c)
				e.Store(&c, v+1)
				mu.Unlock(e)
			}
		})
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Clock()
	}
	ras := run(New(core.NewRAS()))
	emu := run(New(core.NewKernelEmul(arch.R3000())))
	if emu <= ras*2 {
		t.Errorf("emulation (%d cycles) not >> RAS (%d cycles)", emu, ras)
	}
}
