package cthreads_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/uniproc"
)

// ExampleMutex shows the C-Threads relinquishing mutex: a thread that
// finds it held blocks instead of spinning.
func ExampleMutex() {
	proc := uniproc.New(uniproc.Config{})
	pkg := cthreads.New(core.NewRAS())
	mu := pkg.NewMutex()
	shared := 0
	proc.Go("a", func(e *uniproc.Env) {
		mu.Lock(e)
		e.ChargeALU(500) // long critical section
		shared++
		mu.Unlock(e)
	})
	proc.Go("b", func(e *uniproc.Env) {
		mu.Lock(e) // blocks until a releases
		shared++
		mu.Unlock(e)
	})
	if err := proc.Run(); err != nil {
		fmt.Println(err)
	}
	fmt.Println("shared:", shared)
	// Output:
	// shared: 2
}

// ExamplePkg_Fork shows fork/join, the paper's ForkTest primitive.
func ExamplePkg_Fork() {
	proc := uniproc.New(uniproc.Config{})
	pkg := cthreads.New(core.NewRAS())
	proc.Go("parent", func(e *uniproc.Env) {
		h := pkg.Fork(e, "child", func(e *uniproc.Env) {
			fmt.Println("child ran")
		})
		h.Join(e)
		fmt.Println("joined")
	})
	if err := proc.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// child ran
	// joined
}

// ExampleSemaphore shows Dijkstra's P/V.
func ExampleSemaphore() {
	proc := uniproc.New(uniproc.Config{})
	pkg := cthreads.New(core.NewRAS())
	sem := pkg.NewSemaphore(0)
	proc.Go("waiter", func(e *uniproc.Env) {
		sem.P(e)
		fmt.Println("resumed after V")
	})
	proc.Go("poster", func(e *uniproc.Env) {
		fmt.Println("posting")
		sem.V(e)
	})
	if err := proc.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// posting
	// resumed after V
}
