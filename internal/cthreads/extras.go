package cthreads

import "repro/internal/uniproc"

// Once runs an initialization function exactly once, no matter how many
// threads race to trigger it; later callers block until the first caller
// has finished.
type Once struct {
	mu   *Mutex
	done Word
}

// NewOnce creates a Once.
func (p *Pkg) NewOnce() *Once {
	return &Once{mu: p.NewMutex()}
}

// Do runs fn if and only if no previous Do on this Once has run it.
func (o *Once) Do(e *uniproc.Env, fn func(*uniproc.Env)) {
	if e.Load(&o.done) != 0 { // fast path: a word read is atomic
		return
	}
	o.mu.Lock(e)
	if e.Load(&o.done) == 0 {
		fn(e)
		e.Store(&o.done, 1)
	}
	o.mu.Unlock(e)
}

// Barrier blocks threads until a fixed number have arrived, then releases
// them all together. Reusable across generations.
type Barrier struct {
	mu      *Mutex
	cond    *Cond
	needed  int
	arrived int
	gen     Word
}

// NewBarrier creates a barrier for n threads.
func (p *Pkg) NewBarrier(n int) *Barrier {
	return &Barrier{mu: p.NewMutex(), cond: p.NewCond(), needed: n}
}

// Wait blocks until n threads have called Wait for the current generation.
// It reports whether the caller was the last arrival (the "serial" thread).
func (b *Barrier) Wait(e *uniproc.Env) bool {
	b.mu.Lock(e)
	gen := e.Load(&b.gen)
	b.arrived++
	e.ChargeALU(2)
	if b.arrived == b.needed {
		b.arrived = 0
		e.Store(&b.gen, gen+1)
		b.cond.Broadcast(e)
		b.mu.Unlock(e)
		return true
	}
	for e.Load(&b.gen) == gen {
		b.cond.Wait(e, b.mu)
	}
	b.mu.Unlock(e)
	return false
}

// RWLock is a readers-writer lock: any number of concurrent readers, or
// one writer. Writers take priority over newly arriving readers to avoid
// writer starvation.
type RWLock struct {
	mu            *Mutex
	readersDone   *Cond
	writerDone    *Cond
	readers       Word
	writerActive  Word
	writersQueued Word
}

// NewRWLock creates an unlocked readers-writer lock.
func (p *Pkg) NewRWLock() *RWLock {
	return &RWLock{mu: p.NewMutex(), readersDone: p.NewCond(), writerDone: p.NewCond()}
}

// RLock acquires the lock for reading.
func (l *RWLock) RLock(e *uniproc.Env) {
	l.mu.Lock(e)
	for e.Load(&l.writerActive) != 0 || e.Load(&l.writersQueued) != 0 {
		l.writerDone.Wait(e, l.mu)
	}
	e.Store(&l.readers, e.Load(&l.readers)+1)
	l.mu.Unlock(e)
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock(e *uniproc.Env) {
	l.mu.Lock(e)
	r := e.Load(&l.readers)
	e.Store(&l.readers, r-1)
	if r == 1 {
		l.readersDone.Broadcast(e)
	}
	l.mu.Unlock(e)
}

// Lock acquires the lock for writing.
func (l *RWLock) Lock(e *uniproc.Env) {
	l.mu.Lock(e)
	e.Store(&l.writersQueued, e.Load(&l.writersQueued)+1)
	for e.Load(&l.readers) != 0 || e.Load(&l.writerActive) != 0 {
		l.readersDone.Wait(e, l.mu)
	}
	e.Store(&l.writersQueued, e.Load(&l.writersQueued)-1)
	e.Store(&l.writerActive, 1)
	l.mu.Unlock(e)
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock(e *uniproc.Env) {
	l.mu.Lock(e)
	e.Store(&l.writerActive, 0)
	l.readersDone.Broadcast(e)
	l.writerDone.Broadcast(e)
	l.mu.Unlock(e)
}
