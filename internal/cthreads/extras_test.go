package cthreads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/uniproc"
)

func TestOnceRunsExactlyOnce(t *testing.T) {
	p := newProc(311)
	pkg := New(core.NewRAS())
	once := pkg.NewOnce()
	runs := 0
	const n = 6
	for i := 0; i < n; i++ {
		p.Go("caller", func(e *uniproc.Env) {
			once.Do(e, func(e *uniproc.Env) {
				e.ChargeALU(500) // long init: others must wait, not re-run
				runs++
			})
			if runs != 1 {
				t.Error("Do returned before initialization completed")
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("init ran %d times", runs)
	}
}

func TestOnceFastPathAfterDone(t *testing.T) {
	p := newProc(50000)
	pkg := New(core.NewRAS())
	once := pkg.NewOnce()
	p.Go("main", func(e *uniproc.Env) {
		once.Do(e, func(e *uniproc.Env) {})
		before := p.Stats.Blocks
		for i := 0; i < 100; i++ {
			once.Do(e, func(e *uniproc.Env) { t.Error("re-ran") })
		}
		if p.Stats.Blocks != before {
			t.Error("fast path blocked")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	const n = 5
	p := newProc(50000)
	pkg := New(core.NewRAS())
	bar := pkg.NewBarrier(n)
	arrived, released, serials := 0, 0, 0
	for i := 0; i < n; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			arrived++
			if bar.Wait(e) {
				serials++
			}
			if arrived != n {
				t.Error("released before all arrived")
			}
			released++
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if released != n || serials != 1 {
		t.Errorf("released=%d serials=%d", released, serials)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	const n, rounds = 3, 4
	p := newProc(977)
	pkg := New(core.NewRAS())
	bar := pkg.NewBarrier(n)
	phase := make([]int, n)
	for i := 0; i < n; i++ {
		id := i
		p.Go("worker", func(e *uniproc.Env) {
			for r := 0; r < rounds; r++ {
				phase[id] = r
				bar.Wait(e)
				// After the barrier, everyone must be in the same round.
				for j := 0; j < n; j++ {
					if phase[j] != r {
						t.Errorf("round %d: thread %d at %d", r, j, phase[j])
					}
				}
				bar.Wait(e) // second barrier so nobody races ahead
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRWLockManyReaders(t *testing.T) {
	const n = 5
	p := newProc(50000)
	pkg := New(core.NewRAS())
	rw := pkg.NewRWLock()
	inside, maxInside := 0, 0
	for i := 0; i < n; i++ {
		p.Go("reader", func(e *uniproc.Env) {
			rw.RLock(e)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			e.Yield() // let other readers in
			inside--
			rw.RUnlock(e)
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside < 2 {
		t.Errorf("readers never overlapped (max %d)", maxInside)
	}
}

func TestRWLockWriterExcludes(t *testing.T) {
	p := newProc(211)
	pkg := New(core.NewRAS())
	rw := pkg.NewRWLock()
	var data, mismatches int
	const writers, readers, iters = 2, 3, 60
	for i := 0; i < writers; i++ {
		p.Go("writer", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				rw.Lock(e)
				data++
				e.ChargeALU(40)
				data++ // readers must never see odd data
				rw.Unlock(e)
			}
		})
	}
	for i := 0; i < readers; i++ {
		p.Go("reader", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				rw.RLock(e)
				if data%2 != 0 {
					mismatches++
				}
				e.ChargeALU(10)
				rw.RUnlock(e)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if mismatches != 0 {
		t.Errorf("readers saw %d torn writes", mismatches)
	}
	if data != 2*writers*iters {
		t.Errorf("data = %d, want %d", data, 2*writers*iters)
	}
}

func TestRWLockWriterNotStarved(t *testing.T) {
	// A stream of readers must not starve a queued writer: writer priority
	// means the writer gets in after the current readers drain.
	p := newProc(50000)
	pkg := New(core.NewRAS())
	rw := pkg.NewRWLock()
	writerDone := false
	readsAfterWriterQueued := 0
	p.Go("setup", func(e *uniproc.Env) {
		rw.RLock(e)
		pkg.Fork(e, "writer", func(e *uniproc.Env) {
			rw.Lock(e)
			writerDone = true
			rw.Unlock(e)
		})
		for i := 0; i < 3; i++ {
			pkg.Fork(e, "late-reader", func(e *uniproc.Env) {
				e.Yield() // arrive after the writer queues
				rw.RLock(e)
				if !writerDone {
					readsAfterWriterQueued++
				}
				rw.RUnlock(e)
			})
		}
		e.Yield()
		e.Yield()
		rw.RUnlock(e) // release the initial read hold
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !writerDone {
		t.Fatal("writer never ran")
	}
	if readsAfterWriterQueued != 0 {
		t.Errorf("%d late readers jumped the queued writer", readsAfterWriterQueued)
	}
}
