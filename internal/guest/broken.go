package guest

// BrokenTwoStoreProgram is a deliberately malformed restartable atomic
// sequence: the counter increment commits at the FIRST of two stores, so
// a suspension between them rolls the PC back past an already-visible
// update and the increment is applied twice. It is the canonical
// violation of the paper's §3 rule that a sequence ends with its single
// committing store — exactly what kernel.VerifySequence rejects at
// registration time, which is why the model-checker harness installs the
// range through the MultiRegistration backdoor instead: the static check
// is bypassed on purpose so the dynamic checker has something to catch.
//
// Workers enter at symbol "worker" with a0 = iterations; the restartable
// range is [bad_seq, bad_end); the shared counter is at symbol "counter"
// and must end at (workers × iterations) — a run that restarts inside the
// range overshoots it.
func BrokenTwoStoreProgram() string {
	return `	.text
worker:                         # a0 = iterations
	move s0, a0
	la   s1, counter
	la   s2, scratch
wloop:
bad_seq:
	lw   t1, 0(s1)          # read
	addi t1, t1, 1          # modify
	sw   t1, 0(s1)          # store #1: the increment is visible HERE
	sw   t1, 0(s2)          # store #2: rollback past store #1 re-applies it
bad_end:
	addi s0, s0, -1
	bne  s0, zero, wloop
	li   v0, 0              # SysExit
	move a0, zero
	syscall

	.data
counter: .word 0
scratch: .word 0
`
}
