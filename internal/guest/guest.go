// Package guest contains the guest assembly programs run on the simulated
// uniprocessor: the paper's code figures (Lamport's fast mutual exclusion,
// the Mach registered Test-And-Set, the Taos designated sequence) and the
// parameterized workloads behind Tables 1 and 4.
//
// Programs are generated as assembly source and assembled with
// internal/asm. Guest code follows these conventions:
//
//   - syscall number in v0, arguments in a0-a2, result in v0;
//   - k0/k1 are reserved for the user-level resume trampoline and never
//     used by ordinary code;
//   - worker thread stacks are one page each, starting at StackBase, so a
//     thread can recover its own ID from its stack pointer (this is how
//     cthread_self worked, and what makes Lamport protocol (a) pay for ID
//     computation on both entry and exit, §5.1).
package guest

import (
	"fmt"
	"strings"

	"repro/internal/asm"
)

// Stack layout.
const (
	StackBase = 0x0009_0000
	StackSize = 0x1000
)

// StackTop returns the initial stack pointer for thread tid.
func StackTop(tid int) uint32 {
	return StackBase + uint32(tid)*StackSize + 0xFF0
}

// Mechanism selects how guest code implements atomic Test-And-Set.
type Mechanism int

const (
	// MechNone is the registered-TAS code without any kernel recovery:
	// the unsound baseline that demonstrates why atomicity matters.
	MechNone Mechanism = iota
	// MechRegistered is Mach-style explicit registration (§3.1): an
	// out-of-line Test-And-Set function registered with the kernel.
	MechRegistered
	// MechDesignated is Taos-style (§3.2): the sequence is inlined at the
	// acquire site and recognized by instruction-stream inspection.
	MechDesignated
	// MechEmul is kernel emulation (§2.3): a syscall per Test-And-Set.
	MechEmul
	// MechInterlocked uses the hardware tas instruction (§2.1).
	MechInterlocked
	// MechLockB uses the i860-style hardware lock bit (§7).
	MechLockB
	// MechUserLevel is §4.1's user-level detection: same code as
	// MechRegistered plus a resume trampoline registered with the kernel.
	MechUserLevel
	// MechLamportA is software reservation with Lamport's algorithm,
	// protocol (a): the lock itself is a Lamport lock (Figure 1).
	MechLamportA
	// MechLamportB is protocol (b): Lamport's algorithm guards a bundled
	// meta Test-And-Set (Figure 2).
	MechLamportB
	// MechTaosMutex is the complete Taos mutex of §3.2/Figure 5: a
	// designated acquire sequence whose uncommon case traps to the kernel
	// (SlowAcquire, blocking the thread), and a designated Test-And-Clear
	// release whose uncommon case (waiters present) traps to hand the
	// mutex over.
	MechTaosMutex
)

func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none"
	case MechRegistered:
		return "registered"
	case MechDesignated:
		return "designated"
	case MechEmul:
		return "emulation"
	case MechInterlocked:
		return "interlocked"
	case MechLockB:
		return "lockbit"
	case MechUserLevel:
		return "userlevel"
	case MechLamportA:
		return "lamport-a"
	case MechLamportB:
		return "lamport-b"
	case MechTaosMutex:
		return "taos-mutex"
	}
	return "unknown"
}

// prologue emits per-mechanism setup executed once by the main thread:
// RAS registration or trampoline registration.
func prologue(m Mechanism) string {
	switch m {
	case MechRegistered:
		return `
	# Register the restartable atomic sequence with the kernel (§3.1).
	li   v0, 3              # SysRasRegister
	la   a0, ras_begin
	li   a1, 12             # lw + ori + sw
	syscall
`
	case MechUserLevel:
		return `
	# Register the user-level resume trampoline (§4.1).
	li   v0, 7              # SysSetHandler
	la   a0, trampoline
	syscall
`
	}
	return ""
}

// tasFunction emits the out-of-line Test-And-Set used by function-call
// mechanisms: a0 = lock address, returns old value in v0. The paper's
// Figure 4, without branch delay slots: the sequence *ends* with its store,
// and the return jump sits outside the restartable range.
func tasFunction(m Mechanism) string {
	switch m {
	case MechNone, MechRegistered, MechUserLevel:
		return `
TestAndSet:
ras_begin:
	lw   v0, 0(a0)          # v0 = contents of the lock word
	ori  t0, zero, 1        # temporary t0 gets 1
	sw   t0, 0(a0)          # store 1 in the Test-And-Set location
ras_end:
	jr   ra                 # return to caller, result in v0
`
	case MechEmul:
		return `
TestAndSet:
	li   v0, 4              # SysTas: kernel-emulated Test-And-Set
	syscall
	jr   ra
`
	case MechInterlocked:
		return `
TestAndSet:
	tas  v0, 0(a0)          # memory-interlocked read-modify-write
	jr   ra
`
	case MechLockB:
		return `
TestAndSet:
	lockb                   # begin hardware restartable sequence (i860)
	lw   v0, 0(a0)
	ori  t0, zero, 1
	sw   t0, 0(a0)          # the store clears the lock bit
	jr   ra
`
	}
	return ""
}

// trampoline emits the §4.1 user-level recovery code. The kernel pushes the
// interrupted PC and vectors here on every resume; the trampoline decides
// whether the PC lies inside [ras_begin, ras_end) and branches accordingly.
// Only k0/k1 are used, so no user state is disturbed.
const trampoline = `
trampoline:
	lw   k0, 0(sp)          # interrupted PC
	addi sp, sp, 4
	la   k1, ras_begin
	sltu k1, k1, k0         # k1 = (ras_begin < pc)
	beq  k1, zero, tramp_out
	la   k1, ras_end
	sltu k1, k0, k1         # k1 = (pc < ras_end)
	beq  k1, zero, tramp_out
	j    ras_begin          # inside: restart the sequence
tramp_out:
	jr   k0                 # outside: resume where interrupted
`

// acquireViaCall emits a spin-acquire loop that calls TestAndSet and yields
// while the lock is held. Expects the lock address in s1.
const acquireViaCall = `
acq:
	move a0, s1
	jal  TestAndSet
	beq  v0, zero, got      # old value 0: lock acquired
	li   v0, 1              # SysYield: relinquish while held
	syscall
	b    acq
got:
`

// acquireTaosMutex emits Figure 5 verbatim: the designated sequence
// test-and-sets the whole word from 0 (unlocked) to 0x80000000
// (locked-but-no-waiters); the infrequent case calls the kernel's
// SlowAcquire, which blocks until the mutex is handed over. Expects the
// mutex address in s1.
const acquireTaosMutex = `
acq:
	lw   v0, 0(s1)          # get value of mutex
	lui  t0, 0x8000         # temporary t0 = 0x80000000
	bne  v0, zero, slowacq  # branch if not common case
	landmark                # special landmark value
	sw   t0, 0(s1)          # store locked value
	b    cs
slowacq:
	move a0, s1
	li   v0, 8              # SysMutexSlow: out-of-line kernel call
	syscall                 # returns owning the mutex
cs:
`

// releaseTaosMutex emits the matching designated Test-And-Clear: the
// common case sees locked-but-no-waiters and clears the word; if waiters
// arrived — even between this sequence's load and its store, thanks to the
// rollback — the kernel hands the mutex to the first of them.
const releaseTaosMutex = `
rel:
	lw   v0, 0(s1)          # current mutex word
	lui  t0, 0x8000         # expected: locked, no waiters
	bne  v0, t0, slowrel    # waiters present: kernel handoff
	landmark
	sw   zero, 0(s1)        # store unlocked value
	b    reldone
slowrel:
	move a0, s1
	li   v0, 9              # SysMutexWake
	syscall
reldone:
`

// acquireDesignated emits the inlined Taos sequence (the paper's Figure 5
// shape): lw / ori / bne-to-slow / landmark / sw. Expects the lock address
// in s1.
const acquireDesignated = `
acq:
	lw   v0, 0(s1)          # get value of the lock
	ori  t0, zero, 1        # locked value
	bne  v0, zero, slow     # branch if not the common case
	landmark                # recognized by the kernel's two-stage check
	sw   t0, 0(s1)          # store locked value: sequence commits here
	b    got
slow:
	li   v0, 1              # SysYield, then retry
	syscall
	b    acq
got:
`

// release emits the Test-And-Clear: a single word store is atomic on the
// uniprocessor (§2.4). Expects the lock address in s1.
const release = `
	sw   zero, 0(s1)        # release: clear the Test-And-Set location
`

// computeSelf recovers the caller's 1-based thread ID from its stack
// pointer, modelling cthread_self. Returns the ID in s7; clobbers t8.
const computeSelf = `
compute_self:
	li   t8, 0x90000        # StackBase
	sub  t8, sp, t8
	srl  t8, t8, 12         # page index == thread id - 1
	addi s7, t8, 1
	jr   ra
`

// lamportData emits the shared reservation structures for up to n threads.
func lamportData(n int) string {
	return fmt.Sprintf(`
lam_x:   .word 0
lam_y:   .word 0
lam_b:   .space %d
`, 4*(n+2))
}

// lamportEnter emits Lamport's fast mutual exclusion entry (the paper's
// Figure 1, lines 1-18). Expects: s7 = thread id (1-based), s3 = &lam_y,
// s4 = &lam_b, s5 = &lam_x; nthreads is the loop bound N. Clobbers t0-t4.
// Awaits yield the processor, as §2.2 prescribes for a uniprocessor.
func lamportEnter(nthreads int) string {
	return fmt.Sprintf(`
lam_start:
	sll  t0, s7, 2
	add  t0, t0, s4         # t0 = &b[i]
	ori  t1, zero, 1
	sw   t1, 0(t0)          # b[i] := true
	sw   s7, 0(s5)          # x := i
	lw   t2, 0(s3)          # if y <> 0 then ...
	beq  t2, zero, lam_ok1
	sw   zero, 0(t0)        # b[i] := false        { contention }
lam_await1:
	lw   t2, 0(s3)
	beq  t2, zero, lam_start
	li   v0, 1
	syscall                 # await (y = 0)
	b    lam_await1
lam_ok1:
	sw   s7, 0(s3)          # y := i
	lw   t2, 0(s5)          # if x <> i then ...
	beq  t2, s7, lam_cs
	sw   zero, 0(t0)        # b[i] := false        { collision }
	li   t3, 1
lam_forj:
	li   t4, %d
	slt  t4, t4, t3
	bne  t4, zero, lam_checky
	sll  t2, t3, 2
	add  t2, t2, s4         # &b[j]
lam_waitbj:
	lw   t4, 0(t2)
	beq  t4, zero, lam_nextj
	li   v0, 1
	syscall                 # await (b[j] = false)
	b    lam_waitbj
lam_nextj:
	addi t3, t3, 1
	b    lam_forj
lam_checky:
	lw   t2, 0(s3)
	beq  t2, s7, lam_cs     # y = i: enter the critical section
lam_awaity:
	lw   t2, 0(s3)
	beq  t2, zero, lam_start
	li   v0, 1
	syscall                 # await (y = 0)
	b    lam_awaity
lam_cs:
`, nthreads)
}

// lamportExit emits Figure 1 lines 21-22: y := 0; b[i] := false.
// Expects s7, s3, s4 as for lamportEnter; clobbers t0.
const lamportExit = `
	sw   zero, 0(s3)        # y := 0
	sll  t0, s7, 2
	add  t0, t0, s4
	sw   zero, 0(t0)        # b[i] := false
`

// loadLamportBases emits address materialization for the Lamport shared
// structures into s3/s4/s5.
const loadLamportBases = `
	la   s3, lam_y
	la   s4, lam_b
	la   s5, lam_x
`

// MutexCounterProgram builds a program in which `workers` threads each
// perform `iters` iterations of { acquire; counter++; release } on a single
// shared lock implemented with mechanism m. The main thread performs any
// registration, spawns the workers and exits. The final counter value is at
// symbol "counter"; correctness demands it equal workers*iters.
func MutexCounterProgram(m Mechanism, workers, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.text\nmain:\n%s", prologue(m))
	// Spawn workers. Thread IDs are 1-based (main is 0); worker stacks are
	// chosen so compute_self recovers the ID.
	fmt.Fprintf(&b, `
	li   s0, %d             # number of workers
	li   s1, 1              # next thread id
spawnloop:
	slt  t0, s0, s1
	bne  t0, zero, spawned
	la   a0, worker
	li   a1, %d             # iterations
	sll  a2, s1, 12
	li   t0, %#x
	add  a2, a2, t0         # stack top for this worker
	li   v0, 5              # SysThreadCreate
	syscall
	addi s1, s1, 1
	b    spawnloop
spawned:
	li   v0, 0              # SysExit
	move a0, zero
	syscall
`, workers, iters, StackBase+0xFF0)

	// Worker body.
	b.WriteString("\nworker:\n\tmove s0, a0\n\tla   s1, lock\n\tla   s2, counter\n")
	switch m {
	case MechLamportA, MechLamportB:
		b.WriteString(loadLamportBases)
		b.WriteString("\tjal  compute_self\n")
	}
	b.WriteString("wloop:\n")

	switch m {
	case MechDesignated:
		b.WriteString(acquireDesignated)
	case MechTaosMutex:
		b.WriteString(acquireTaosMutex)
	case MechLamportA:
		// Protocol (a): the Lamport lock *is* the mutex; the paper's direct
		// implementation recomputes the thread's identity and busy-bit
		// address on entry and exit.
		b.WriteString("\tjal  compute_self\n")
		b.WriteString(lamportEnter(workers + 1))
	case MechLamportB:
		// Protocol (b): Lamport guards a bundled meta Test-And-Set
		// (Figure 2); spin with yields until the inner TAS succeeds.
		b.WriteString("lbacq:\n")
		b.WriteString(lamportEnter(workers + 1))
		b.WriteString(`	lw   t5, 0(s1)          # inner test-and-set body
	ori  t6, zero, 1
	sw   t6, 0(s1)
`)
		b.WriteString(lamportExit)
		b.WriteString(`	beq  t5, zero, wgot     # old value 0: mutex acquired
	li   v0, 1
	syscall
	b    lbacq
wgot:
`)
	default:
		b.WriteString(acquireViaCall)
	}

	// Critical section: increment the shared counter.
	b.WriteString(`
	lw   t1, 0(s2)
	addi t1, t1, 1
	sw   t1, 0(s2)
`)

	// Release.
	switch m {
	case MechLamportA:
		b.WriteString("\tjal  compute_self\n")
		b.WriteString(lamportExit)
	case MechTaosMutex:
		b.WriteString(releaseTaosMutex)
	default:
		b.WriteString(release)
	}

	b.WriteString(`
	addi s0, s0, -1
	bne  s0, zero, wloop
	li   v0, 0              # SysExit
	move a0, zero
	syscall
`)

	// Support code.
	b.WriteString(tasFunction(m))
	switch m {
	case MechUserLevel:
		b.WriteString(trampoline)
	case MechLamportA, MechLamportB:
		b.WriteString(computeSelf)
	}

	// Data.
	b.WriteString("\n\t.data\nlock:    .word 0\ncounter: .word 0\n")
	if m == MechLamportA || m == MechLamportB {
		b.WriteString(lamportData(workers + 1))
	}
	return b.String()
}

// RecoverableCounterProgram builds the recoverable-mutual-exclusion
// workload: `workers` threads each perform `iters` iterations of
// { acquire; counter++; release } on a lock word that names its owner —
// layout epoch<<16 | (tid+1), 0 meaning free. Acquire CASes the owner
// field in via a restartable sequence; a held lock is polled with
// SysThreadAlive, and a lock naming a dead thread is orphaned and stolen
// with the epoch bumped (counted at symbol "repairs"). Release clears the
// owner field, preserving the epoch. Under thread-kill injection the final
// counter is not workers*iters — dead threads stop incrementing — but
// every increment must still happen under mutual exclusion, which the
// harness checks with watchpoints.
//
// The CAS sequence is written in the canonical designated shape
// (lw/ori/bne/landmark/sw) *and* registered via SysRasRegister, so the
// same program is recoverable under both the Registration and Designated
// strategies (the registration syscall fails harmlessly on the latter).
func RecoverableCounterProgram(workers, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `	.text
main:
	li   v0, 3              # SysRasRegister (fails harmlessly if unsupported)
	la   a0, cas_seq
	li   a1, 20             # lw + ori + bne + landmark + sw
	syscall
	li   s0, %d             # number of workers
	li   s1, 1              # next thread id
spawnloop:
	slt  t0, s0, s1
	bne  t0, zero, spawned
	la   a0, worker
	move a1, s1             # the worker's kernel thread id, as its argument
	sll  a2, s1, 12
	li   t0, %#x
	add  a2, a2, t0         # stack top for this worker
	li   v0, 5              # SysThreadCreate
	syscall
	addi s1, s1, 1
	b    spawnloop
spawned:
	li   v0, 0              # SysExit
	move a0, zero
	syscall

worker:                         # a0 = own kernel thread id
	addi s6, a0, 1          # owner field: tid+1, so free (0) is unambiguous
	la   s1, lock
	la   s2, counter
	li   s0, %d             # iterations
wloop:
acq:
	lw   s3, 0(s1)          # current lock word
	andi t1, s3, 0xFFFF     # owner field
	beq  t1, zero, acq_free
	addi a0, t1, -1         # held: ask the kernel if the owner can still run
	li   v0, 10             # SysThreadAlive
	syscall
	bne  v0, zero, acq_wait
	srl  t2, s3, 16         # orphaned: steal with the epoch bumped
	addi t2, t2, 1
	sll  t2, t2, 16
	or   t2, t2, s6
	move a0, s3             # CAS(lock: expect s3 -> t2)
	move a1, t2
	jal  cas
	beq  v0, zero, acq      # lost the race to another repairer: re-read
	la   t3, repairs
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	b    cs
acq_free:
	srl  t2, s3, 16
	sll  t2, t2, 16
	or   t2, t2, s6         # free: take it, epoch unchanged
	move a0, s3
	move a1, t2
	jal  cas
	beq  v0, zero, acq
	b    cs
acq_wait:
	li   v0, 1              # SysYield while the live owner works
	syscall
	b    acq
cs:
	lw   t1, 0(s2)          # critical section: counter++
	addi t1, t1, 1
	sw   t1, 0(s2)
	lw   t1, 0(s1)          # release: clear owner, preserve epoch. Only the
	srl  t1, t1, 16         # owner writes a held word, so the non-atomic
	sll  t1, t1, 16         # read-modify-write is safe; dying inside it
	sw   t1, 0(s1)          # leaves an orphan for the next steal.
	addi s0, s0, -1
	bne  s0, zero, wloop
	li   v0, 0              # SysExit
	move a0, zero
	syscall

cas:                            # CAS word at s1: a0 = expect, a1 = new;
cas_seq:                        # v0 = 1 if swapped. Restartable: canonical
	lw   v0, 0(s1)          # designated shape, and registered by main.
	ori  t9, zero, 1
	bne  v0, a0, cas_fail
	landmark
	sw   a1, 0(s1)          # commit
	move v0, t9
	jr   ra
cas_fail:
	li   v0, 0
	jr   ra

	.data
lock:    .word 0
counter: .word 0
repairs: .word 0
`, workers, StackBase+0xFF0, iters)
	return b.String()
}

// MicrobenchProgram builds the paper's Table 1 microbenchmark: one thread
// enters a critical section with a Test-And-Set lock, increments a counter,
// and leaves by clearing the lock, `iters` times. The Test-And-Set always
// succeeds. inline selects the inlined (designated) or branch (registered)
// variant for RAS.
func MicrobenchProgram(m Mechanism, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.text\nmain:\n%s", prologue(m))
	b.WriteString("\tla   s1, lock\n\tla   s2, counter\n")
	if m == MechLamportA || m == MechLamportB {
		b.WriteString(loadLamportBases)
		b.WriteString("\tjal  compute_self\n")
	}
	fmt.Fprintf(&b, "\tli   s0, %d\nloop:\n", iters)

	switch m {
	case MechDesignated:
		b.WriteString(acquireDesignated)
	case MechTaosMutex:
		b.WriteString(acquireTaosMutex)
	case MechLamportA:
		b.WriteString("\tjal  compute_self\n")
		b.WriteString(lamportEnter(2))
	case MechLamportB:
		b.WriteString(lamportEnter(2))
		b.WriteString(`	lw   t5, 0(s1)
	ori  t6, zero, 1
	sw   t6, 0(s1)
`)
		b.WriteString(lamportExit)
	default:
		b.WriteString(acquireViaCall)
	}

	// The critical section: update a counter, "so as to model a real
	// critical section" (§5.1).
	b.WriteString(`
	lw   t1, 0(s2)
	addi t1, t1, 1
	sw   t1, 0(s2)
`)
	switch m {
	case MechLamportA:
		b.WriteString("\tjal  compute_self\n")
		b.WriteString(lamportExit)
	case MechTaosMutex:
		b.WriteString(releaseTaosMutex)
	default:
		b.WriteString(release)
	}

	b.WriteString(`
	addi s0, s0, -1
	bne  s0, zero, loop
	li   v0, 0
	move a0, zero
	syscall
`)
	b.WriteString(tasFunction(m))
	if m == MechUserLevel {
		b.WriteString(trampoline)
	}
	if m == MechLamportA || m == MechLamportB {
		b.WriteString(computeSelf)
	}
	b.WriteString("\n\t.data\nlock:    .word 0\ncounter: .word 0\n")
	b.WriteString(lamportData(2))
	return b.String()
}

// EmptyLoopProgram measures the loop overhead subtracted from
// microbenchmark results (§5.1).
func EmptyLoopProgram(iters int) string {
	return fmt.Sprintf(`
	.text
main:
	li   s0, %d
loop:
	addi s0, s0, -1
	bne  s0, zero, loop
	li   v0, 0
	move a0, zero
	syscall
`, iters)
}

// AcquireReleaseProgram builds the Table 4 measurement: a single thread
// acquires and releases a Test-And-Set lock `iters` times with no critical
// section body. The lock is always free.
func AcquireReleaseProgram(m Mechanism, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.text\nmain:\n%s\tla   s1, lock\n", prologue(m))
	if m == MechLamportA || m == MechLamportB {
		b.WriteString(loadLamportBases)
		b.WriteString("\tjal  compute_self\n")
	}
	fmt.Fprintf(&b, "\tli   s0, %d\nloop:\n", iters)
	switch m {
	case MechTaosMutex:
		b.WriteString(acquireTaosMutex)
	case MechDesignated:
		// The compiler lays the contended path out of line, so the hot
		// path is exactly the five-word sequence followed by the release.
		b.WriteString(`	lw   v0, 0(s1)          # get value of the lock
	ori  t0, zero, 1        # locked value
	bne  v0, zero, slow     # branch if not common case (out of line)
	landmark
	sw   t0, 0(s1)          # store locked value
`)
	case MechInterlocked:
		// Inline interlocked instruction: no linkage overhead (§6).
		b.WriteString("\ttas  v0, 0(s1)\n")
	case MechLockB:
		b.WriteString(`	lockb
	lw   v0, 0(s1)
	ori  t0, zero, 1
	sw   t0, 0(s1)
`)
	case MechLamportA:
		b.WriteString("\tjal  compute_self\n")
		b.WriteString(lamportEnter(2))
	case MechLamportB:
		b.WriteString(lamportEnter(2))
		b.WriteString(`	lw   t5, 0(s1)
	ori  t6, zero, 1
	sw   t6, 0(s1)
`)
		b.WriteString(lamportExit)
	default:
		b.WriteString(acquireViaCall)
	}
	switch m {
	case MechLamportA:
		b.WriteString("\tjal  compute_self\n")
		b.WriteString(lamportExit)
	case MechTaosMutex:
		b.WriteString(releaseTaosMutex)
	default:
		b.WriteString(release)
	}
	b.WriteString(`
	addi s0, s0, -1
	bne  s0, zero, loop
	li   v0, 0
	move a0, zero
	syscall
`)
	if m == MechDesignated {
		b.WriteString(`slow:
	li   v0, 1              # SysYield, then retry (never taken here)
	syscall
	b    loop
`)
	}
	switch m {
	case MechDesignated, MechInterlocked, MechLockB, MechLamportA, MechLamportB, MechTaosMutex:
	default:
		b.WriteString(tasFunction(m))
	}
	if m == MechUserLevel {
		b.WriteString(trampoline)
	}
	if m == MechLamportA || m == MechLamportB {
		b.WriteString(computeSelf)
	}
	b.WriteString("\n\t.data\nlock: .word 0\n")
	if m == MechLamportA || m == MechLamportB {
		b.WriteString(lamportData(2))
	}
	return b.String()
}

// WriteBufferProbeProgram builds the §5.1 write-buffer experiment: a
// single thread acquires and releases a lock with mechanism m (supported:
// MechDesignated, MechLamportA), then executes pad ALU instructions of
// non-memory "application work" before the next iteration. The pad lets a
// write buffer drain between iterations, so what distinguishes mechanisms
// is the *burst length* of their stores — one commit store for the
// restartable sequence versus five for the reservation protocol.
func WriteBufferProbeProgram(m Mechanism, iters, pad int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.text\nmain:\n\tla   s1, lock\n")
	if m == MechLamportA {
		b.WriteString(loadLamportBases)
		b.WriteString("\tjal  compute_self\n")
	}
	fmt.Fprintf(&b, "\tli   s0, %d\nloop:\n", iters)
	switch m {
	case MechDesignated:
		b.WriteString(`	lw   v0, 0(s1)
	ori  t0, zero, 1
	bne  v0, zero, slow
	landmark
	sw   t0, 0(s1)
`)
		b.WriteString(release)
	case MechLamportA:
		b.WriteString(lamportEnter(2))
		b.WriteString(lamportExit)
	default:
		panic("guest: WriteBufferProbeProgram supports designated and lamport-a only")
	}
	for i := 0; i < pad; i++ {
		b.WriteString("\taddi t2, t2, 1\n")
	}
	b.WriteString(`
	addi s0, s0, -1
	bne  s0, zero, loop
	li   v0, 0
	move a0, zero
	syscall
`)
	if m == MechDesignated {
		b.WriteString("slow:\n\tli   v0, 1\n\tsyscall\n\tb    loop\n")
	}
	if m == MechLamportA {
		b.WriteString(computeSelf)
	}
	b.WriteString("\n\t.data\nlock: .word 0\n")
	b.WriteString(lamportData(2))
	return b.String()
}

// LinkageProgram measures bare call linkage overhead (Table 4's third
// column): a loop around a call to an empty function, minus the empty loop.
func LinkageProgram(iters int) string {
	return fmt.Sprintf(`
	.text
main:
	li   s0, %d
loop:
	jal  empty
	addi s0, s0, -1
	bne  s0, zero, loop
	li   v0, 0
	move a0, zero
	syscall
empty:
	jr   ra
`, iters)
}

// Assemble assembles a guest source string, panicking on error: guest
// sources are generated, so failure is a bug in this package.
func Assemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("guest: internal assembly error: %v\nsource:\n%s", err, src))
	}
	return p
}
