package guest

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

var allMechanisms = []Mechanism{
	MechNone, MechRegistered, MechDesignated, MechEmul, MechInterlocked,
	MechLockB, MechUserLevel, MechLamportA, MechLamportB, MechTaosMutex,
}

func TestMechanismStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMechanisms {
		s := m.String()
		if s == "" || s == "unknown" {
			t.Errorf("mechanism %d: bad string %q", m, s)
		}
		if seen[s] {
			t.Errorf("duplicate mechanism name %q", s)
		}
		seen[s] = true
	}
	if Mechanism(99).String() != "unknown" {
		t.Error("out-of-range mechanism should be unknown")
	}
}

func TestStackTop(t *testing.T) {
	if StackTop(0) != StackBase+0xFF0 {
		t.Errorf("StackTop(0) = %#x", StackTop(0))
	}
	if StackTop(3)-StackTop(2) != StackSize {
		t.Error("stacks not one page apart")
	}
	if StackTop(1)%4 != 0 {
		t.Error("stack top not word-aligned")
	}
}

func TestAllMutexCounterProgramsAssemble(t *testing.T) {
	for _, m := range allMechanisms {
		src := MutexCounterProgram(m, 4, 100)
		if _, err := asm.Assemble(src); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestAllMicrobenchProgramsAssemble(t *testing.T) {
	for _, m := range allMechanisms {
		src := MicrobenchProgram(m, 1000)
		if _, err := asm.Assemble(src); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestAllAcquireReleaseProgramsAssemble(t *testing.T) {
	for _, m := range allMechanisms {
		src := AcquireReleaseProgram(m, 1000)
		if _, err := asm.Assemble(src); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestAuxProgramsAssemble(t *testing.T) {
	for _, src := range []string{EmptyLoopProgram(100), LinkageProgram(100)} {
		if _, err := asm.Assemble(src); err != nil {
			t.Error(err)
		}
	}
}

func TestAssembleHelperPanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Assemble did not panic on bad source")
		}
	}()
	Assemble("bogus instruction")
}

func TestAssembleHelperOK(t *testing.T) {
	p := Assemble(EmptyLoopProgram(10))
	if _, ok := p.SymbolAddr("main"); !ok {
		t.Error("main symbol missing")
	}
}

// The registered sequence must be exactly three words (lw/ori/sw) ending
// with the store, with the return jump outside the registered range — the
// property that makes rollback sound (see Figure 4 discussion).
func TestRegisteredSequenceShape(t *testing.T) {
	p := Assemble(MutexCounterProgram(MechRegistered, 1, 1))
	begin := p.MustSymbol("ras_begin")
	end := p.MustSymbol("ras_end")
	if end-begin != 12 {
		t.Fatalf("registered sequence is %d bytes, want 12", end-begin)
	}
	idx := (begin - p.TextBase) / 4
	ops := []uint32{isa.OpLW, isa.OpORI, isa.OpSW}
	for i, want := range ops {
		got := isa.Decode(p.Text[idx+uint32(i)])
		if got.Op != want {
			t.Errorf("word %d: op %#x, want %#x", i, got.Op, want)
		}
	}
	// The word after the sequence is the return jump.
	after := isa.Decode(p.Text[idx+3])
	if after.Op != isa.OpSpecial || after.Funct != isa.FnJR {
		t.Errorf("instruction after sequence = %v, want jr", after)
	}
}

// The designated sequence must match the canonical 5-word shape the kernel
// recognizes: lw / ori / bne / landmark / sw.
func TestDesignatedSequenceShape(t *testing.T) {
	p := Assemble(MutexCounterProgram(MechDesignated, 1, 1))
	// Find the lw that is followed by landmark at +3.
	found := false
	for i := 0; i+4 < len(p.Text); i++ {
		if isa.Opcode(p.Text[i]) != isa.OpLW {
			continue
		}
		if !isa.Decode(p.Text[i+3]).IsLandmark() {
			continue
		}
		found = true
		if isa.Opcode(p.Text[i+1]) != isa.OpORI {
			t.Error("word 1 not ori")
		}
		if isa.Opcode(p.Text[i+2]) != isa.OpBNE {
			t.Error("word 2 not bne")
		}
		if isa.Opcode(p.Text[i+4]) != isa.OpSW {
			t.Error("word 4 not sw")
		}
	}
	if !found {
		t.Fatal("no designated sequence found in program text")
	}
}

// The landmark must never appear outside designated sequences in any
// generated program (the compiler guarantee the Taos check relies on).
func TestLandmarkOnlyInDesignatedPrograms(t *testing.T) {
	for _, m := range allMechanisms {
		if m == MechDesignated || m == MechTaosMutex {
			continue // these legitimately contain landmarks
		}
		p := Assemble(MutexCounterProgram(m, 2, 10))
		for i, w := range p.Text {
			if isa.Decode(w).IsLandmark() {
				t.Errorf("%v: stray landmark at word %d", m, i)
			}
		}
	}
}

func TestProgramsContainExpectedSymbols(t *testing.T) {
	p := Assemble(MutexCounterProgram(MechRegistered, 2, 10))
	for _, sym := range []string{"main", "worker", "lock", "counter", "TestAndSet"} {
		if _, ok := p.SymbolAddr(sym); !ok {
			t.Errorf("missing symbol %q", sym)
		}
	}
}

func TestLamportProgramHasReservationData(t *testing.T) {
	src := MutexCounterProgram(MechLamportA, 3, 10)
	for _, sym := range []string{"lam_x", "lam_y", "lam_b", "compute_self"} {
		if !strings.Contains(src, sym) {
			t.Errorf("lamport program missing %q", sym)
		}
	}
}
