package guest

import (
	"fmt"
	"strings"
)

// JournalMagic seeds the guest journal record checksum. It is exported so
// host-side checkers (mcheck, rasvm -demo journal) can recompute the
// checksum over an NVM dump and decide, exactly as the guest's recovery
// path does, whether the surviving log record commits.
const JournalMagic = 0x5EED1E55

// JournalCksum is the host-side mirror of the guest's jck routine:
//
//	ck = seq ^ rot1(xa) ^ rot2(xb) ^ JournalMagic
//
// The positional rotates matter. A torn crash during the log-line flush
// persists a memory-order prefix of the line's words, splicing the new
// record's head onto the old record's tail. Successive records differ in
// each word by v^(v+1) — an odd value for the small counters this program
// keeps — and rot1/rot2 shift those odd deltas onto distinct bit
// positions, so no spliced record's stored checksum can equal the
// checksum recomputed over the spliced words: bit 0 of the difference
// survives every splice point. A plain xor of the words would not have
// that property (the deltas could cancel).
func JournalCksum(seq, xa, xb uint32) uint32 {
	rot := func(v uint32, k uint) uint32 { return v<<k | v>>(32-k) }
	return seq ^ rot(xa, 1) ^ rot(xb, 2) ^ JournalMagic
}

// JournalProgram builds a single-threaded crash-consistent transaction
// loop for a machine with the NVRAM persistence model enabled: two NVM
// words, va and vb, are incremented together inside a logged transaction
// until both reach target, with the invariant that after recovery NVM
// always shows va == vb. mode selects the logging discipline:
//
//	"redo"  write-ahead: stage the record holding the NEW values in the
//	        log line, flush, fence — that fence IS the commit point —
//	        then apply both words, flush, fence. The applied-sequence
//	        bump is flushed but unfenced; its write-back rides the next
//	        transaction's commit fence. Recovery rolls an in-flight
//	        record FORWARD and claims its sequence.
//
//	"undo"  force: stage the record holding the OLD values, flush,
//	        fence; apply, flush, fence; bump the sequence, flush, fence.
//	        The commit point is the LAST fence. Recovery rolls an
//	        in-flight record BACK and leaves the sequence alone.
//
// The record is four words on one 64-byte line — seq, xa, xb, checksum —
// with the checksum in the highest word: a torn crash persists a prefix
// of the line, so a record with a valid checksum is a whole record (see
// JournalCksum for why splices can't collide). va and vb live on lines of
// their own, which is what makes the missing-fence variant detectable: a
// torn crash between their write-backs can persist one without the
// other, and only a durable log record can repair that.
//
// Recovery runs in main before the transaction loop, so the same binary
// serves as first boot and every reboot. Exhaustive crash placement over
// the flush/fence boundaries — including crashes during recovery itself,
// which is a sequence of constant stores and therefore idempotent — is
// the mcheck "journal" model family.
func JournalProgram(mode string, target int) string {
	switch mode {
	case "redo":
		return journalProgram(target, false, true)
	case "undo":
		return journalProgram(target, true, true)
	}
	panic(fmt.Sprintf("guest: unknown journal mode %q", mode))
}

// NoFenceJournalProgram is the planted bug: the redo program with the
// log line's flush+fence omitted, so a transaction's in-place updates
// are initiated while its record still sits in the volatile tier. The
// record's line is never even flushed, so NVM never holds it: a torn
// crash that persists va's write-back but not vb's leaves the two words
// unequal with nothing to repair them from — the violation the mcheck
// "journal-nofence" entry must catch and shrink to a single decision.
// (Clean crashes stay consistent: both write-backs share one fence, so
// they die or survive together. Only torn-write crashes expose this
// bug, which is exactly why the torn fault exists.)
func NoFenceJournalProgram(target int) string {
	return journalProgram(target, false, false)
}

func journalProgram(target int, undo, wellFenced bool) string {
	logPersist := "\tflush 0(s1)\n\tfence                   # COMMIT (redo): record durable before any overwrite\n"
	if undo {
		logPersist = "\tflush 0(s1)\n\tfence                   # undo: old values safe before any overwrite\n"
	} else if !wellFenced {
		logPersist = "" // planted bug: the record never reaches NVM
	}
	// The record carries the values recovery will re-store: news for
	// redo (roll forward), olds for undo (roll back).
	logA, logB := "t8", "t9"
	if undo {
		logA, logB = "t0", "t7"
	}
	claim := ""
	if !undo {
		// Redo recovery completes the transaction, so it claims the
		// sequence; undo recovery aborts it, so the sequence stays.
		claim = `	sw   t1, 0(s2)          # claim the sequence: the transaction completed
	flush 0(s2)
	fence
`
	}
	commitFence := ""
	if undo {
		commitFence = "\tfence                   # COMMIT (undo): data durable, now the mark\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `	.text
main:
	la   s1, jlog
	la   s2, applied
	la   s3, va
	la   s4, vb
	li   s5, %d             # target
	li   s6, %#x            # checksum magic
	lw   t1, 0(s1)          # --- recovery, from NVM contents alone ---
	lw   t2, 4(s1)
	lw   t3, 8(s1)
	jal  jck
	lw   t5, 12(s1)
	bne  t4, t5, boot       # bad checksum: torn or blank record, data untouched
	lw   t6, 0(s2)
	addi t6, t6, 1
	bne  t1, t6, boot       # seq != applied+1: nothing in flight
	sw   t2, 0(s3)          # repair both words from the record (redo: news
	sw   t3, 0(s4)          # roll forward; undo: olds roll back)
	flush 0(s3)
	flush 0(s4)
	fence
%sboot:
loop:
	lw   t0, 0(s3)          # a
	beq  t0, s5, done
	lw   t7, 0(s4)          # b
	lw   t1, 0(s2)
	addi t1, t1, 1          # seq = applied + 1
	addi t8, t0, 1          # a'
	addi t9, t7, 1          # b'
	move t2, %s             # record values (redo: new, undo: old)
	move t3, %s
	sw   t1, 0(s1)          # stage the record; checksum word last
	sw   t2, 4(s1)
	sw   t3, 8(s1)
	jal  jck
	sw   t4, 12(s1)
%s	sw   t8, 0(s3)          # apply in place
	sw   t9, 0(s4)
	flush 0(s3)
	flush 0(s4)
	fence                   # both words durable together, never split
	sw   t1, 0(s2)          # applied = seq; redo leaves the write-back
	flush 0(s2)             # pending for the next commit fence to drain
%s	b    loop
done:
	li   v0, 0              # SysExit
	move a0, zero
	syscall

jck:                            # t4 = t1 ^ rot1(t2) ^ rot2(t3) ^ magic
	sll  t4, t2, 1
	srl  t5, t2, 31
	or   t4, t4, t5
	sll  t5, t3, 2
	srl  t6, t3, 30
	or   t5, t5, t6
	xor  t4, t4, t5
	xor  t4, t4, t1
	xor  t4, t4, s6
	jr   ra

	.data
applied: .word 0                # one variable per 64-byte persistence line;
	.space 60               # the log record is the only multi-word line
jlog:	.word 0                 # seq
	.word 0                 # xa
	.word 0                 # xb
	.word 0                 # checksum (highest word: torn prefixes drop it)
	.space 48
va:	.word 0
	.space 60
vb:	.word 0
`, target, JournalMagic, claim, logA, logB, logPersist, commitFence)
	return b.String()
}
