package guest

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// ServerVariant selects the request-path implementation in ServerProgram.
type ServerVariant int

const (
	// ServerPerCPU is the data-plane design: every CPU owns a request
	// ring, a tail word producers reserve with a registered restartable
	// sequence, and one worker that drains batches. No word on the
	// request path is ever touched from another CPU, so a request costs
	// zero remote memory references — the claim the bench table measures.
	ServerPerCPU ServerVariant = iota
	// ServerMutex is the baseline uxserver shape: one global queue, one
	// global test-and-set lock, every client and every worker from every
	// CPU serializing on the same two cache lines.
	ServerMutex
	// ServerRacyDrain is ServerPerCPU with the planted drain bug: the
	// worker trusts the reserved tail instead of the per-slot publication
	// word, so a producer preempted between reserving a slot and
	// publishing its payload has the request consumed as empty — a lost
	// update the mcheck percpu-queue model catches and shrinks.
	ServerRacyDrain
)

func (v ServerVariant) String() string {
	switch v {
	case ServerPerCPU:
		return "percpu"
	case ServerMutex:
		return "mutex"
	case ServerRacyDrain:
		return "racy"
	}
	return "unknown"
}

// ServerRing is the per-CPU request ring capacity (power of two: the
// slot index is tail & (ServerRing-1)).
const ServerRing = 8

// ServerLatBuckets is the per-CPU client-latency histogram size: bucket
// b counts requests whose submission took floor(log2(cycles)) == b,
// measured from the first reservation attempt (so full-ring stalls and
// lock waits count) to payload publication. Each CPU's array is two
// private coherence lines; the increment is a registered restartable
// sequence so client siblings on one CPU never lose a count.
const ServerLatBuckets = 32

// Per-CPU block layout (one 64-byte coherence line per CPU, so the
// percpu variant's request path never crosses a line boundary into
// another CPU's traffic):
//
//	+0  tail     — producers reserve slots here (registered RAS)
//	+4  head     — consumer's drain cursor
//	+8  served   — worker's final served-request count (written at exit)
//	+12 done     — finished-client count (registered RAS increment)
//	+16 batches  — non-empty drain rounds (mean batch = served/batches)
//	+20 ring     — ServerRing payload slots (0 = empty/unpublished)
//
// The mutex variant uses one such block globally, plus a spinlock word on
// its own line.
const (
	serverOffTail    = 0
	serverOffHead    = 4
	serverOffServed  = 8
	serverOffDone    = 12
	serverOffBatches = 16
	serverOffRing    = 20
)

// ServerProgram builds the SMP server workload: the harness spawns one
// "worker" per CPU (a0 = the number of clients whose requests it must
// outlive: clients on its CPU for percpu/racy, clients on the machine
// for mutex) and "client" threads (a0 = requests to submit). Clients
// submit unit requests; workers drain and count them. The harness reads
// each CPU's served count from its block and verifies the total.
//
// For the percpu and racy variants the two restartable sequences —
// rsv_seq (slot reservation) and inc_seq (client-exit counter) — must be
// registered on every CPU's kernel; RegisterServerSequences does it.
func ServerProgram(v ServerVariant, cpus int) string {
	if v == ServerMutex {
		return serverMutexProgram(cpus)
	}
	var b strings.Builder
	b.WriteString("\t.text\n")

	// Client: reserve a slot on the home CPU's ring with one registered
	// restartable sequence, publish the payload with a plain store, and
	// bump the done counter on exit with another.
	fmt.Fprintf(&b, `client:                         # a0 = requests to submit
	move s0, a0
	li   v0, 11             # SysCPU
	syscall
	sll  t0, v0, 6          # my CPU's block, one line per CPU
	la   s1, pcb
	add  s1, s1, t0
	sll  t0, v0, 7          # my CPU's latency lines (two per CPU)
	la   s2, lats
	add  s2, s2, t0
	ori  s4, zero, %d       # ring capacity
	li   v0, 6              # SysTime: first submission starts now
	syscall
	move s3, v0
ploop:
rsv_seq:
	lw   v0, %d(s1)         # tail — restartable reservation begins
	lw   t1, %d(s1)         # head
	sub  t2, v0, t1
	addi t3, v0, 1
	beq  t2, s4, pfull      # ring full: abort without committing
	sw   t3, %d(s1)         # commit: slot v0 is mine
rsv_end:
	andi t5, v0, %d         # publish: plain stores, my CPU only
	sll  t5, t5, 2
	add  t5, t5, s1
	ori  t6, zero, 1
	sw   t6, %d(t5)         # payload 1 = one unit request
	li   v0, 6              # SysTime: submission complete
	syscall
	sub  t0, v0, s3
	move t1, zero
plb1:
	srl  t0, t0, 1          # floor(log2(cycles)) into my CPU's bucket
	beq  t0, zero, plb2
	addi t1, t1, 1
	b    plb1
plb2:
	sll  t2, t1, 2
	add  t2, t2, s2
lat_seq:
	lw   t3, 0(t2)          # registered: a preempted count restarts
	addi t3, t3, 1
	sw   t3, 0(t2)
lat_end:
	addi s0, s0, -1
	beq  s0, zero, pexit
	li   v0, 6              # SysTime: next submission starts
	syscall
	move s3, v0
	b    ploop
pexit:
inc_seq:
	lw   v0, %d(s1)         # done++ — restartable: siblings race here
	addi t0, v0, 1
	sw   t0, %d(s1)
inc_end:
	li   v0, 0              # SysExit
	move a0, zero
	syscall
pfull:
	li   v0, 1              # SysYield until the worker drains; the clock
	syscall                 # keeps running — the stall is client-visible
	b    ploop
`, ServerRing,
		serverOffTail, serverOffHead, serverOffTail,
		ServerRing-1, serverOffRing,
		serverOffDone, serverOffDone)

	// Worker: batched drain. The safe variant treats an unpublished slot
	// (payload 0) as end-of-batch and re-polls; the racy variant trusts
	// the reserved tail and consumes it — the planted lost update.
	unpublished := "\tbeq  t4, zero, wround   # reserved but unpublished: wait\n"
	if v == ServerRacyDrain {
		unpublished = "" // racy: consume whatever the slot holds
	}
	fmt.Fprintf(&b, `worker:                         # a0 = clients on this CPU
	move s6, a0
	li   v0, 11             # SysCPU
	syscall
	sll  t0, v0, 6
	la   s0, pcb
	add  s0, s0, t0
	move s2, zero           # served requests
wloop:
	move s3, zero           # this batch's size
wdrain:
	lw   t1, %d(s0)         # head
	lw   t2, %d(s0)         # tail
	beq  t1, t2, wround     # ring empty: batch over
	andi t3, t1, %d
	sll  t3, t3, 2
	add  t3, t3, s0
	lw   t4, %d(t3)         # slot payload
%s	sw   zero, %d(t3)       # consume: clear the slot
	addi t1, t1, 1
	sw   t1, %d(s0)         # advance head
	add  s2, s2, t4
	addi s3, s3, 1
	b    wdrain
wround:
	beq  s3, zero, wempty
	lw   t5, %d(s0)         # batches++
	addi t5, t5, 1
	sw   t5, %d(s0)
	b    wloop
wempty:
	lw   t5, %d(s0)         # every client retired?
	bne  t5, s6, wyield
	lw   t1, %d(s0)         # and the ring fully drained?
	lw   t2, %d(s0)
	bne  t1, t2, wyield
	sw   s2, %d(s0)         # publish the served count
	li   v0, 0              # SysExit
	move a0, zero
	syscall
wyield:
	li   v0, 1              # SysYield
	syscall
	b    wloop
`, serverOffHead, serverOffTail, ServerRing-1, serverOffRing,
		unpublished, serverOffRing, serverOffHead,
		serverOffBatches, serverOffBatches,
		serverOffDone, serverOffHead, serverOffTail, serverOffServed)

	fmt.Fprintf(&b, "\n\t.data\npcb:\t.space %d\nlats:\t.space %d\n",
		64*maxInt(cpus, 1), 4*ServerLatBuckets*maxInt(cpus, 1))
	return b.String()
}

// serverMutexProgram is the single-queue baseline: the same ring and the
// same counters, but one global copy of each, every access under one
// global test-and-set lock.
func serverMutexProgram(cpus int) string {
	var b strings.Builder
	b.WriteString("\t.text\n")
	fmt.Fprintf(&b, `client:                         # a0 = requests to submit
	move s0, a0
	la   s1, glock
	la   s2, gblock
	ori  s4, zero, %d
	li   v0, 11             # SysCPU: latency lines are per CPU
	syscall
	sll  t0, v0, 7
	la   s5, lats
	add  s5, s5, t0
	li   v0, 6              # SysTime: first submission starts now
	syscall
	move s3, v0
ploop:
	lw   t1, %d(s2)         # unlocked fullness peek: a client that
	lw   t2, %d(s2)         # cannot enqueue must not grab the lock,
	sub  t3, t1, t2         # or full-ring probing starves the workers
	beq  t3, s4, pstall     # out of the tas forever
pacq:
	lw   v0, 0(s1)          # test-and-test-and-set on the global lock
	bne  v0, zero, pwait
	tas  v0, 0(s1)
	bne  v0, zero, pwait
	lw   t1, %d(s2)         # gtail
	lw   t2, %d(s2)         # ghead
	sub  t3, t1, t2
	beq  t3, s4, pfull
	andi t5, t1, %d
	sll  t5, t5, 2
	add  t5, t5, s2
	ori  t6, zero, 1
	sw   t6, %d(t5)         # payload, under the lock
	addi t1, t1, 1
	sw   t1, %d(s2)         # gtail++
	sw   zero, 0(s1)        # release
	li   v0, 6              # SysTime: submission complete
	syscall
	sub  t0, v0, s3
	move t1, zero
plb1:
	srl  t0, t0, 1          # floor(log2(cycles)) into my CPU's bucket
	beq  t0, zero, plb2
	addi t1, t1, 1
	b    plb1
plb2:
	sll  t2, t1, 2
	add  t2, t2, s5
lat_seq:
	lw   t3, 0(t2)          # registered even for the mutex baseline: the
	addi t3, t3, 1          # instrumentation must stay exact while the
	sw   t3, 0(t2)          # lock path stays unregistered
lat_end:
	addi s0, s0, -1
	beq  s0, zero, dacq
	li   v0, 6              # SysTime: next submission starts
	syscall
	move s3, v0
	b    ploop
dacq:
	lw   v0, 0(s1)          # done++ needs the lock too
	bne  v0, zero, dwait
	tas  v0, 0(s1)
	bne  v0, zero, dwait
	lw   t1, %d(s2)
	addi t1, t1, 1
	sw   t1, %d(s2)
	sw   zero, 0(s1)
	li   v0, 0              # SysExit
	move a0, zero
	syscall
dwait:
	li   v0, 1
	syscall
	b    dacq
pfull:
	sw   zero, 0(s1)        # release before yielding
pstall:
	li   v0, 1
	syscall
	b    ploop
pwait:
	li   v0, 1
	syscall
	b    pacq
`, ServerRing,
		serverOffTail, serverOffHead,
		serverOffTail, serverOffHead, ServerRing-1, serverOffRing, serverOffTail,
		serverOffDone, serverOffDone)

	fmt.Fprintf(&b, `worker:                         # a0 = clients on the machine
	move s6, a0
	la   s1, glock
	la   s2, gblock
wloop:
	lw   t1, %d(s2)         # ghead — unlocked peek, so an idle worker
	lw   t2, %d(s2)         # gtail   does not hammer the lock line
	beq  t1, t2, wmaybe
	tas  v0, 0(s1)          # work sighted: grab the lock
	bne  v0, zero, wyield
	lw   t1, %d(s2)         # re-read under the lock
	lw   t2, %d(s2)
	beq  t1, t2, wrel       # raced: another worker served it
	andi t3, t1, %d
	sll  t3, t3, 2
	add  t3, t3, s2
	lw   t4, %d(t3)         # payload (published under the lock)
	sw   zero, %d(t3)
	addi t1, t1, 1
	sw   t1, %d(s2)         # ghead++
	lw   t5, %d(s2)         # gserved += payload
	add  t5, t5, t4
	sw   t5, %d(s2)
	lw   t6, %d(s2)         # gbatches++ (every grab serves one: unbatched)
	addi t6, t6, 1
	sw   t6, %d(s2)
wrel:
	sw   zero, 0(s1)        # release
	b    wloop
wmaybe:
	lw   t5, %d(s2)         # every client retired?
	bne  t5, s6, wyield
	lw   t1, %d(s2)         # still drained after the done read?
	lw   t2, %d(s2)
	bne  t1, t2, wloop
	li   v0, 0              # SysExit: done and drained
	move a0, zero
	syscall
wyield:
	li   v0, 1
	syscall
	b    wloop
`, serverOffHead, serverOffTail, serverOffHead, serverOffTail,
		ServerRing-1, serverOffRing, serverOffRing,
		serverOffHead, serverOffServed, serverOffServed,
		serverOffBatches, serverOffBatches,
		serverOffDone, serverOffHead, serverOffTail)

	fmt.Fprintf(&b, "\n\t.data\nglock:\t.word 0\n\t.space 60\ngblock:\t.space 64\nlats:\t.space %d\n",
		4*ServerLatBuckets*maxInt(cpus, 1))
	return b.String()
}

// PerCPUCounterProgram is the sharded-counter twin of
// rseq.PerCPUCounter on real CPUs: each worker increments its own CPU's
// slot (one line per CPU, symbol "slots") with the registered
// restartable sequence cnt_seq..cnt_end — no interlocked instruction,
// and exact under preemption and eviction chaos because every
// interrupted sequence restarts. a0 = increments.
func PerCPUCounterProgram(cpus int) string {
	return fmt.Sprintf(`	.text
worker:                         # a0 = increments
	move s0, a0
	li   v0, 11             # SysCPU
	syscall
	sll  t0, v0, 6          # slot lines are 64 bytes apart
	la   s1, slots
	add  s1, s1, t0
cloop:
cnt_seq:
	lw   v0, 0(s1)          # restartable increment on my CPU's slot
	addi t0, v0, 1
	sw   t0, 0(s1)
cnt_end:
	addi s0, s0, -1
	bne  s0, zero, cloop
	li   v0, 0              # SysExit
	move a0, zero
	syscall

	.data
slots:	.space %d
`, 64*maxInt(cpus, 1))
}

// PerCPUCASProgram is the guest twin of rseq.CmpEqvStorev, run per CPU:
// workers on one CPU contend on that CPU's slot with a registered
// compare-and-store sequence (cas_seq..cas_end), retrying on comparison
// failure. The final slot values must sum to the total increments. a0 =
// increments.
func PerCPUCASProgram(cpus int) string {
	return fmt.Sprintf(`	.text
worker:                         # a0 = increments
	move s0, a0
	li   v0, 11             # SysCPU
	syscall
	sll  t0, v0, 6
	la   s1, slots
	add  s1, s1, t0
cloop:
	lw   s2, 0(s1)          # snapshot (plain load)
	addi s3, s2, 1          # desired
cas_seq:
	lw   v0, 0(s1)          # cmpeqv_storev: if *slot == s2 { *slot = s3 }
	bne  v0, s2, cloop      # comparison failed: retry from the snapshot
	sw   s3, 0(s1)
cas_end:
	addi s0, s0, -1
	bne  s0, zero, cloop
	li   v0, 0              # SysExit
	move a0, zero
	syscall

	.data
slots:	.space %d
`, 64*maxInt(cpus, 1))
}

// FreeListVariant selects pop protection in FreeListProgram.
type FreeListVariant int

const (
	// FreeListRAS registers pop and push-commit as restartable
	// sequences: a preempted pop re-runs from its head load, so the next
	// link it commits is never stale.
	FreeListRAS FreeListVariant = iota
	// FreeListBare runs the same instructions unregistered: a thread
	// preempted between loading the head and committing resumes with a
	// stale node, and two threads then own the same block — the
	// double-allocation the mcheck percpu-freelist model catches.
	FreeListBare
)

func (v FreeListVariant) String() string {
	if v == FreeListBare {
		return "bare"
	}
	return "ras"
}

// FreeListProgram is a one-CPU intrusive free list: "fhead" holds the
// address of the first free node (0 = empty); each node is two words,
// next link then owner tag. Workers (a0 = iterations, a1 = tag) pop a
// node (pop_seq..pop_end), stamp their tag into the owner word — a
// memory watchpoint checks the old value was 0, i.e. no double
// allocation — yield while holding, clear the tag and push the node back
// (CAS shape cas_seq..cas_end with the speculative link store before
// it). The data section seeds "nodes" free nodes onto the list.
func FreeListProgram(nodes int) string {
	if nodes < 1 {
		nodes = 1
	}
	var b strings.Builder
	b.WriteString(`	.text
worker:                         # a0 = iterations, a1 = owner tag
	move s0, a0
	move s1, a1
	la   s2, fhead
floop:
pop_seq:
	lw   v0, 0(s2)          # head node address
	beq  v0, zero, fempty   # list empty: abort without committing
	lw   t1, 0(v0)          # its next link
	sw   t1, 0(s2)          # commit: node is mine
pop_end:
	sw   s1, 4(v0)          # stamp owner (watchpoint: old must be 0)
	move s3, v0             # hold the node across a reschedule
	li   v0, 1              # SysYield
	syscall
	sw   zero, 4(s3)        # release ownership
fpush:
	lw   s4, 0(s2)          # expected head
	sw   s4, 0(s3)          # speculative: node.next = expected
cas_seq:
	lw   v0, 0(s2)          # commit only if the head is still expected
	bne  v0, s4, fpush
	sw   s3, 0(s2)
cas_end:
	addi s0, s0, -1
	bne  s0, zero, floop
	li   v0, 0              # SysExit
	move a0, zero
	syscall
fempty:
	li   v0, 1              # SysYield until a sibling frees
	syscall
	b    floop

	.data
`)
	// Seed the list: node i links to node i+1, the last to 0. Node i
	// lives at nodes+8*i; fhead points at node 0. Addresses are resolved
	// by the assembler via .word with a symbol.
	b.WriteString("fhead:\t.word fnodes\n")
	for i := 0; i < nodes; i++ {
		if i == nodes-1 {
			b.WriteString(FreeListNodeLabel(i) + ":\t.word 0, 0\n")
		} else {
			fmt.Fprintf(&b, "%s:\t.word %s, 0\n", FreeListNodeLabel(i), FreeListNodeLabel(i+1))
		}
	}
	return b.String()
}

// FreeListNodeLabel is node i's data symbol in FreeListProgram — the
// handle harnesses use to watch a node's owner word (label address + 4).
func FreeListNodeLabel(i int) string {
	if i == 0 {
		return "fnodes"
	}
	return fmt.Sprintf("fnode%d", i)
}

// SequenceRanges resolves start/end label pairs in an assembled program
// to (start, length-in-bytes) ranges, ready for
// kernel.RegisterSequence. Labels come in pairs: start0, end0, start1,
// end1, ...
func SequenceRanges(p *asm.Program, labels ...string) [][2]uint32 {
	var out [][2]uint32
	for i := 0; i+1 < len(labels); i += 2 {
		start := p.MustSymbol(labels[i])
		end := p.MustSymbol(labels[i+1])
		out = append(out, [2]uint32{start, end - start})
	}
	return out
}

// ServerSequenceRanges lists the restartable ranges the percpu and racy
// server variants need registered on every CPU's kernel: the slot
// reservation and the client-exit counter increment.
func ServerSequenceRanges(p *asm.Program) [][2]uint32 {
	return SequenceRanges(p, "rsv_seq", "rsv_end", "inc_seq", "inc_end")
}

// ServerLatSequenceRanges lists the latency-count increment, registered
// for EVERY variant — including the mutex baseline, whose request path
// stays unregistered — so the histogram totals are exact under any
// schedule.
func ServerLatSequenceRanges(p *asm.Program) [][2]uint32 {
	return SequenceRanges(p, "lat_seq", "lat_end")
}

// PerCPUCounterSequenceRanges lists PerCPUCounterProgram's registered
// range.
func PerCPUCounterSequenceRanges(p *asm.Program) [][2]uint32 {
	return SequenceRanges(p, "cnt_seq", "cnt_end")
}

// PerCPUCASSequenceRanges lists PerCPUCASProgram's registered range.
func PerCPUCASSequenceRanges(p *asm.Program) [][2]uint32 {
	return SequenceRanges(p, "cas_seq", "cas_end")
}

// FreeListSequenceRanges lists FreeListProgram's registered ranges (the
// FreeListRAS variant registers them; FreeListBare deliberately does
// not).
func FreeListSequenceRanges(p *asm.Program) [][2]uint32 {
	return SequenceRanges(p, "pop_seq", "pop_end", "cas_seq", "cas_end")
}

// Peeker is the read-only memory view ServerCounts needs — satisfied by
// both substrates' memories (guest must not import the machines that
// run its programs, or their tests could not import guest).
type Peeker interface {
	Peek(addr uint32) isa.Word
}

// ServerCounts reads the served-request and drain-batch counters out of
// a finished ServerProgram run: summed over the per-CPU blocks for the
// percpu variants, from the single global block for the mutex baseline.
func ServerCounts(mem Peeker, p *asm.Program, v ServerVariant, cpus int) (served, batches uint64) {
	if v == ServerMutex {
		base := p.MustSymbol("gblock")
		return uint64(mem.Peek(base + serverOffServed)),
			uint64(mem.Peek(base + serverOffBatches))
	}
	base := p.MustSymbol("pcb")
	for cpu := 0; cpu < cpus; cpu++ {
		served += uint64(mem.Peek(base + uint32(cpu*64) + serverOffServed))
		batches += uint64(mem.Peek(base + uint32(cpu*64) + serverOffBatches))
	}
	return served, batches
}

// ServerLatCounts reads the client-latency histogram out of a finished
// ServerProgram run, merged across CPUs: counts[b] requests took
// floor(log2(cycles)) == b to submit.
func ServerLatCounts(mem Peeker, p *asm.Program, cpus int) []uint64 {
	base := p.MustSymbol("lats")
	counts := make([]uint64, ServerLatBuckets)
	for cpu := 0; cpu < maxInt(cpus, 1); cpu++ {
		for b := 0; b < ServerLatBuckets; b++ {
			counts[b] += uint64(mem.Peek(base + uint32(4*ServerLatBuckets*cpu+4*b)))
		}
	}
	return counts
}
