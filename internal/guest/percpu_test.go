package guest

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// Every percpu program must assemble, and the ranges the harnesses
// register must pass the kernel's restartability verifier.
func TestPerCPUProgramsAssembleAndVerify(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		ranges func() [][2]uint32
	}{
		{"server-percpu", ServerProgram(ServerPerCPU, 4), nil},
		{"server-racy", ServerProgram(ServerRacyDrain, 2), nil},
		{"server-mutex", ServerProgram(ServerMutex, 4), nil},
		{"counter", PerCPUCounterProgram(4), nil},
		{"cas", PerCPUCASProgram(2), nil},
		{"freelist", FreeListProgram(3), nil},
	}
	for _, c := range cases {
		prog := Assemble(c.src)
		sys := smp.New(smp.Config{CPUs: 1, NewStrategy: func() kernel.Strategy {
			return kernel.NewMultiRegistration()
		}})
		sys.Load(prog)
		k := sys.CPUs[0]
		var ranges [][2]uint32
		switch c.name {
		case "server-percpu", "server-racy":
			ranges = ServerSequenceRanges(prog)
		case "counter":
			ranges = PerCPUCounterSequenceRanges(prog)
		case "cas":
			ranges = PerCPUCASSequenceRanges(prog)
		case "freelist":
			ranges = FreeListSequenceRanges(prog)
		}
		for _, r := range ranges {
			if err := k.VerifySequence(r[0], r[1]); err != nil {
				t.Errorf("%s: range [%#x,+%d): %v", c.name, r[0], r[1], err)
			}
		}
	}
}

// runServer spawns one worker plus `clients` clients per CPU (percpu
// and racy variants) or per machine with per-CPU distribution (mutex)
// and returns the per-CPU served counts plus the system.
func runServer(t *testing.T, v ServerVariant, cpus, clientsPerCPU, iters int) []uint64 {
	t.Helper()
	sys := smp.New(smp.Config{CPUs: cpus, NewStrategy: func() kernel.Strategy {
		return kernel.NewMultiRegistration()
	}})
	prog := Assemble(ServerProgram(v, cpus))
	sys.Load(prog)
	if v != ServerMutex {
		for _, k := range sys.CPUs {
			for _, r := range ServerSequenceRanges(prog) {
				if err := k.RegisterSequence(0, r[0], r[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	workerArg := clientsPerCPU
	if v == ServerMutex {
		workerArg = clientsPerCPU * cpus
	}
	worker, client := prog.MustSymbol("worker"), prog.MustSymbol("client")
	for cpu := 0; cpu < cpus; cpu++ {
		sys.Spawn(cpu, worker, StackTop(smp.GlobalID(cpu, 0)), isa.Word(workerArg))
		for c := 0; c < clientsPerCPU; c++ {
			sys.Spawn(cpu, client, StackTop(smp.GlobalID(cpu, c+1)), isa.Word(iters))
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("%s/%dcpu: %v", v, cpus, err)
	}
	served := make([]uint64, cpus)
	if v == ServerMutex {
		served[0] = uint64(sys.Mem.Peek(prog.MustSymbol("gblock") + serverOffServed))
		return served
	}
	base := prog.MustSymbol("pcb")
	for cpu := 0; cpu < cpus; cpu++ {
		served[cpu] = uint64(sys.Mem.Peek(base + uint32(cpu*64) + serverOffServed))
	}
	return served
}

func TestServerPerCPUServesEveryRequest(t *testing.T) {
	for _, cpus := range []int{1, 2, 4} {
		const clients, iters = 3, 20
		served := runServer(t, ServerPerCPU, cpus, clients, iters)
		for cpu, s := range served {
			if s != clients*iters {
				t.Errorf("%d CPUs: cpu %d served %d, want %d", cpus, cpu, s, clients*iters)
			}
		}
	}
}

func TestServerMutexServesEveryRequest(t *testing.T) {
	for _, cpus := range []int{1, 2} {
		const clients, iters = 2, 15
		served := runServer(t, ServerMutex, cpus, clients, iters)
		if want := uint64(cpus * clients * iters); served[0] != want {
			t.Errorf("%d CPUs: served %d, want %d", cpus, served[0], want)
		}
	}
}

// Undisturbed (round-robin, no forced preemption) the racy drain happens
// to be safe: a producer is never preempted between reserving a slot and
// publishing it. The bug only opens under forced preemption — which is
// exactly what the mcheck percpu-queue model proves; here we pin that
// the undisturbed run is clean so the model's violation is attributable
// to the schedule, not the workload.
func TestServerRacyDrainCleanWhenUndisturbed(t *testing.T) {
	const clients, iters = 2, 10
	served := runServer(t, ServerRacyDrain, 1, clients, iters)
	if served[0] != clients*iters {
		t.Errorf("undisturbed racy run served %d, want %d", served[0], clients*iters)
	}
}

// The percpu request path must execute zero remote references — the
// whole claim. The mutex baseline on the same workload must execute many.
func TestServerPerCPURequestPathHasNoRMRs(t *testing.T) {
	for _, mode := range []smp.Mode{smp.CC, smp.DSM} {
		sys := smp.New(smp.Config{CPUs: 2, Mode: mode, NewStrategy: func() kernel.Strategy {
			return kernel.NewMultiRegistration()
		}})
		prog := Assemble(ServerProgram(ServerPerCPU, 2))
		sys.Load(prog)
		for _, k := range sys.CPUs {
			for _, r := range ServerSequenceRanges(prog) {
				if err := k.RegisterSequence(0, r[0], r[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		worker, client := prog.MustSymbol("worker"), prog.MustSymbol("client")
		for cpu := 0; cpu < 2; cpu++ {
			sys.Spawn(cpu, worker, StackTop(smp.GlobalID(cpu, 0)), 2)
			for c := 0; c < 2; c++ {
				sys.Spawn(cpu, client, StackTop(smp.GlobalID(cpu, c+1)), 10)
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if rmrs := sys.TotalRMRs(); rmrs != 0 {
			t.Errorf("%s: percpu server executed %d RMRs, want 0", mode, rmrs)
		}
	}
}
