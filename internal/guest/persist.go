package guest

import (
	"fmt"
	"strings"
)

// PersistentCounterProgram builds the crash-consistent variant of
// RecoverableCounterProgram for a machine with the NVRAM persistence model
// enabled: the same owner-naming lock word (epoch<<16 | tid+1) and CAS
// acquire, plus explicit flush/fence persist points so that the lock,
// counter and repair tally survive a whole-machine crash that discards
// unflushed lines (chaos.Action.CrashVolatile).
//
// The protocol's three persist points:
//
//	P1  after a successful acquire (or orphan steal): flush lock; fence.
//	    NVM never shows an increment whose acquisition it has forgotten.
//	P2  after counter++: flush counter; fence. At most the latest
//	    increment can be lost — nvm_counter >= volatile_counter - 1, the
//	    bounded-durability-loss invariant the model checker verifies.
//	P3  after release: flush lock; fence. A crash between P3 and the next
//	    acquire recovers a free lock and repairs nothing.
//
// Recovery runs in main, BEFORE any worker is spawned: whatever owner the
// (post-crash, NVM-only) lock word names is provably dead, so a nonzero
// owner field is repaired unconditionally — epoch bumped, owner cleared,
// the repair counted at symbol "repairs" and persisted before the first
// SysThreadCreate. The same binary therefore serves as both first boot
// and every reboot. Workers additionally steal orphaned locks via
// SysThreadAlive, so the program also survives individual thread kills.
//
// Each shared variable sits alone on a 64-byte persistence line: a flush
// of the lock must not incidentally persist the counter, or the
// deliberately under-flushed variant below would be indistinguishable
// from the correct one.
func PersistentCounterProgram(workers, iters int) string {
	return persistentCounter(workers, iters, true)
}

// UnderflushedCounterProgram is the planted bug: the same program with
// persist points P2 and P3 removed (P1 is kept, so persist boundaries
// still occur and the crash schedule has somewhere to land). Increments
// accumulate in the volatile tier and a crash can lose arbitrarily many
// of them, violating the bounded-durability-loss invariant — the defect
// the mcheck "persist-underflush" entry must catch and shrink.
func UnderflushedCounterProgram(workers, iters int) string {
	return persistentCounter(workers, iters, false)
}

func persistentCounter(workers, iters int, wellFlushed bool) string {
	persist := func(mem string) string {
		if !wellFlushed {
			return ""
		}
		return fmt.Sprintf("\tflush 0(%s)\n\tfence\n", mem)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `	.text
main:
	li   v0, 3              # SysRasRegister (fails harmlessly if unsupported)
	la   a0, cas_seq
	li   a1, 20             # lw + ori + bne + landmark + sw
	syscall
	la   s1, lock           # --- recovery: no worker exists yet, so any
	lw   t1, 0(s1)          # owner the NVM lock word names is dead
	andi t2, t1, 0xFFFF
	beq  t2, zero, boot
	srl  t2, t1, 16         # repair: bump epoch, clear owner
	addi t2, t2, 1
	sll  t2, t2, 16
	sw   t2, 0(s1)
	la   t3, repairs
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	flush 0(s1)             # the repair itself must be durable before
	flush 0(t3)             # workers can crash the machine again
	fence
boot:
	li   s0, %d             # number of workers
	li   s1, 1              # next thread id
spawnloop:
	slt  t0, s0, s1
	bne  t0, zero, spawned
	la   a0, worker
	move a1, s1             # the worker's kernel thread id, as its argument
	sll  a2, s1, 12
	li   t0, %#x
	add  a2, a2, t0         # stack top for this worker
	li   v0, 5              # SysThreadCreate
	syscall
	addi s1, s1, 1
	b    spawnloop
spawned:
	li   v0, 0              # SysExit
	move a0, zero
	syscall

worker:                         # a0 = own kernel thread id
	addi s6, a0, 1          # owner field: tid+1, so free (0) is unambiguous
	la   s1, lock
	la   s2, counter
	li   s0, %d             # iterations
wloop:
acq:
	lw   s3, 0(s1)          # current lock word
	andi t1, s3, 0xFFFF     # owner field
	beq  t1, zero, acq_free
	addi a0, t1, -1         # held: ask the kernel if the owner can still run
	li   v0, 10             # SysThreadAlive
	syscall
	bne  v0, zero, acq_wait
	srl  t2, s3, 16         # orphaned: steal with the epoch bumped
	addi t2, t2, 1
	sll  t2, t2, 16
	or   t2, t2, s6
	move a0, s3             # CAS(lock: expect s3 -> t2)
	move a1, t2
	jal  cas
	beq  v0, zero, acq      # lost the race to another repairer: re-read
	la   t3, repairs
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	flush 0(t3)
	b    acquired
acq_free:
	srl  t2, s3, 16
	sll  t2, t2, 16
	or   t2, t2, s6         # free: take it, epoch unchanged
	move a0, s3
	move a1, t2
	jal  cas
	beq  v0, zero, acq
	b    acquired
acq_wait:
	li   v0, 1              # SysYield while the live owner works
	syscall
	b    acq
acquired:
	flush 0(s1)             # P1: ownership is durable before the critical
	fence                   # section runs
	lw   t1, 0(s2)          # critical section: counter++
	addi t1, t1, 1
	sw   t1, 0(s2)
%s	lw   t1, 0(s1)          # release: clear owner, preserve epoch. Only the
	srl  t1, t1, 16         # owner writes a held word, so the non-atomic
	sll  t1, t1, 16         # read-modify-write is safe; dying inside it
	sw   t1, 0(s1)          # leaves an orphan for the next steal.
%s	addi s0, s0, -1
	bne  s0, zero, wloop
	li   v0, 0              # SysExit
	move a0, zero
	syscall

cas:                            # CAS word at s1: a0 = expect, a1 = new;
cas_seq:                        # v0 = 1 if swapped. Restartable: canonical
	lw   v0, 0(s1)          # designated shape, and registered by main.
	ori  t9, zero, 1
	bne  v0, a0, cas_fail
	landmark
	sw   a1, 0(s1)          # commit
	move v0, t9
	jr   ra
cas_fail:
	li   v0, 0
	jr   ra

	.data
lock:    .word 0                # one variable per 64-byte persistence line:
	.space 60               # flushing one must not persist another
counter: .word 0
	.space 60
repairs: .word 0
`, workers, StackBase+0xFF0, iters,
		persist("s2"), // P2: the increment
		persist("s1")) // P3: the release
	return b.String()
}
