package guest

import (
	"fmt"
	"strings"
)

// ResilientServerProgram is the crash-surviving server the supervisor
// (internal/resilience) reboots through whole-machine crash campaigns:
// `workers` client threads each apply `iters` exactly-once effects
// (sequence numbers 1..iters) to a shared counter under the persistent
// owner+epoch lock, with a one-word write-ahead intent record making
// every effect idempotent across clean, volatile, and torn crashes.
//
// The per-effect protocol, under the lock:
//
//	W1  wal = worker<<16 | seq; flush; fence     — durable intent
//	W2  applied[worker] = seq;  flush; fence     — the dedup table entry
//	W3  counter++;              flush; fence     — the in-place effect
//	W4  wal = 0;                flush; fence     — intent retired
//
// Recovery runs in main before any worker is spawned (so every owner the
// NVM lock word names is provably dead), and is itself restartable any
// number of times — each step is idempotent:
//
//	R1  recovered = 0 (flushed): the supervisor reads this word after a
//	    crash to classify it as inside/outside recovery.
//	R2  repair the lock word: clear the dead owner, bump the epoch,
//	    count the repair.
//	R3  replay the intent: if wal names (w, s) and applied[w] < s, the
//	    crash hit between W1 and W2 — finish the apply. If applied[w]
//	    >= s the effect already landed (a W2..W4 crash): DEDUPLICATE,
//	    or the worker's post-reboot retry of seq s would double-apply.
//	R4  counter = sum(applied): the counter is derived state, so a torn
//	    split between W2 and W3 self-heals instead of drifting.
//	R5  recovered = 1 (flushed): recovery complete.
//
// Workers resume from the dedup table itself — worker w restarts at
// seq = applied[w] + 1 — which is exactly a client retrying its oldest
// unacknowledged request across the reboot.
//
// When the harness pokes the `readonly` word nonzero before a boot (the
// supervisor's degraded mode after a crash loop), main runs recovery and
// exits without spawning workers: the machine comes up, proves its
// persistent state sound, and applies nothing.
//
// Every shared variable sits alone on a 64-byte persistence line so a
// torn crash tears between variables, never inside the protocol's
// ordering assumptions.
func ResilientServerProgram(workers, iters int) string {
	if workers < 1 {
		workers = 1
	}
	if iters < 1 {
		iters = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `	.text
main:
	li   v0, 3              # SysRasRegister (fails harmlessly if unsupported)
	la   a0, cas_seq
	li   a1, 20
	syscall
	la   s1, lock
	la   s2, counter
	la   s3, wal
	la   s4, applied
	la   s5, recovered      # --- R1: entering recovery, durably
	sw   zero, 0(s5)
	flush 0(s5)
	fence
	lw   t1, 0(s1)          # --- R2: any owner the NVM word names is dead
	andi t2, t1, 0xFFFF
	beq  t2, zero, replay
	srl  t2, t1, 16
	addi t2, t2, 1
	sll  t2, t2, 16
	sw   t2, 0(s1)
	la   t3, repairs
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	flush 0(s1)
	flush 0(t3)
	fence
replay:                         # --- R3: one-slot WAL replay with dedup
	lw   t1, 0(s3)
	beq  t1, zero, recount
	srl  t5, t1, 16         # t5 = worker id of the intent
	andi t6, t1, 0xFFFF     # t6 = its sequence number
	addi t5, t5, -1         # applied slot: (w-1) * 64 bytes
	sll  t5, t5, 6
	add  t5, t5, s4
	lw   t7, 0(t5)
	slt  t8, t7, t6         # applied[w] < seq: the apply never landed
	beq  t8, zero, retire   # else DEDUP: seq is already in the table
	sw   t6, 0(t5)
	flush 0(t5)
	fence
retire:
	sw   zero, 0(s3)
	flush 0(s3)
	fence
recount:                        # --- R4: counter := sum(applied)
	move t1, zero
	move t2, zero
	li   t3, %d             # workers
sumloop:
	slt  t4, t2, t3
	beq  t4, zero, sumdone
	sll  t5, t2, 6
	add  t5, t5, s4
	lw   t6, 0(t5)
	add  t1, t1, t6
	addi t2, t2, 1
	b    sumloop
sumdone:
	sw   t1, 0(s2)
	flush 0(s2)
	fence
	li   t1, 1              # --- R5: recovery complete, durably
	sw   t1, 0(s5)
	flush 0(s5)
	fence
	la   t2, readonly       # degraded boot: recover, apply nothing, exit
	lw   t2, 0(t2)
	bne  t2, zero, spawned
	li   s0, %d             # number of workers
	li   s6, 1              # next thread id
spawnloop:
	slt  t0, s0, s6
	bne  t0, zero, spawned
	la   a0, worker
	move a1, s6
	sll  a2, s6, 12
	li   t0, %#x
	add  a2, a2, t0
	li   v0, 5              # SysThreadCreate
	syscall
	addi s6, s6, 1
	b    spawnloop
spawned:
	li   v0, 0              # SysExit
	move a0, zero
	syscall

worker:                         # a0 = own kernel thread id = worker id
	move s7, a0             # s7 = worker id (1-based)
	addi s6, a0, 1          # owner field: tid+1
	la   s1, lock
	la   s2, counter
	la   s3, wal
	addi t5, s7, -1         # own applied slot
	sll  t5, t5, 6
	la   s4, applied
	add  s4, s4, t5
	li   s5, %d             # iters
	lw   s0, 0(s4)          # resume at seq = applied[w] + 1: the oldest
	addi s0, s0, 1          # unacknowledged request, retried after reboot
wloop:
	slt  t0, s5, s0
	bne  t0, zero, wdone
acq:
	lw   t8, 0(s1)
	andi t1, t8, 0xFFFF
	beq  t1, zero, acq_free
	addi a0, t1, -1         # held: is the owner still alive?
	li   v0, 10             # SysThreadAlive
	syscall
	bne  v0, zero, acq_wait
	srl  t2, t8, 16         # orphaned: steal with the epoch bumped
	addi t2, t2, 1
	sll  t2, t2, 16
	or   t2, t2, s6
	move a0, t8
	move a1, t2
	jal  cas
	beq  v0, zero, acq
	la   t3, repairs
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	flush 0(t3)
	b    acquired
acq_free:
	srl  t2, t8, 16
	sll  t2, t2, 16
	or   t2, t2, s6
	move a0, t8
	move a1, t2
	jal  cas
	beq  v0, zero, acq
	b    acquired
acq_wait:
	li   v0, 1              # SysYield
	syscall
	b    acq
acquired:
	flush 0(s1)             # P1: ownership durable before the effect
	fence
	sll  t1, s7, 16         # W1: durable intent (w, seq)
	or   t1, t1, s0
	sw   t1, 0(s3)
	flush 0(s3)
	fence
	sw   s0, 0(s4)          # W2: dedup table entry
	flush 0(s4)
	fence
	lw   t1, 0(s2)          # W3: the effect itself
	addi t1, t1, 1
	sw   t1, 0(s2)
	flush 0(s2)
	fence
	sw   zero, 0(s3)        # W4: intent retired
	flush 0(s3)
	fence
	lw   t1, 0(s1)          # release: clear owner, keep epoch
	srl  t1, t1, 16
	sll  t1, t1, 16
	sw   t1, 0(s1)
	flush 0(s1)             # P3
	fence
	addi s0, s0, 1
	b    wloop
wdone:
	li   v0, 0              # SysExit
	move a0, zero
	syscall

cas:                            # CAS word at s1: a0 = expect, a1 = new;
cas_seq:                        # v0 = 1 if swapped. Registered by main.
	lw   v0, 0(s1)
	ori  t9, zero, 1
	bne  v0, a0, cas_fail
	landmark
	sw   a1, 0(s1)          # commit
	move v0, t9
	jr   ra
cas_fail:
	li   v0, 0
	jr   ra

	.data
lock:    .word 0                # one variable per 64-byte persistence line
	.space 60
counter: .word 0
	.space 60
wal:     .word 0
	.space 60
recovered: .word 0
	.space 60
readonly: .word 0
	.space 60
repairs: .word 0
	.space 60
applied:
`, workers, workers, StackBase+0xFF0, iters)
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&b, "\t.word 0\n\t.space 60\n")
	}
	return b.String()
}
