package guest

import (
	"fmt"
	"strings"
)

// SMPLock selects the lock implementation in SMPCounterProgram.
type SMPLock int

const (
	// SMPHybrid is the paper's §7 scheme: a restartable atomic sequence
	// arbitrates among the threads of one CPU on a per-CPU claim word,
	// and the interlocked tas is reserved for cross-CPU arbitration of
	// the shared spinlock word. The global word is held on behalf of a
	// CPU, not a thread: release hands the lock over CPU-locally and
	// leaves the global word alone, so an intra-CPU passage executes no
	// interlocked operation and touches no remote line at all — the
	// whole point of §7. For cross-CPU fairness the bias is bounded:
	// after HybridBatch consecutive local passages (or when the last
	// local contender exits) the global word is released and the next
	// passage re-arbitrates it with tas.
	SMPHybrid SMPLock = iota
	// SMPSpin is the pure spinlock baseline: every thread of every CPU
	// test-and-sets the shared word directly, paying the bus-locked
	// interlocked cost on each attempt.
	SMPSpin
	// SMPLLSC is a load-linked/store-conditional mutex on the shared
	// word (the R4000 route §7 contrasts with).
	SMPLLSC
	// SMPRASOnly is the unsound control: the uniprocessor designated
	// sequence alone, with no cross-CPU arbitration. On one CPU it is
	// correct and fast; on two it loses updates — the §7 observation
	// the hybrid exists to fix.
	SMPRASOnly
)

// HybridBatch bounds how many consecutive passages a CPU may hand off
// locally before the hybrid lock releases the shared word for cross-CPU
// re-arbitration. Larger values amortize the interlocked acquire over
// more local passages; smaller values hand the lock across CPUs sooner.
const HybridBatch = 8

func (l SMPLock) String() string {
	switch l {
	case SMPHybrid:
		return "hybrid"
	case SMPSpin:
		return "spinlock"
	case SMPLLSC:
		return "llsc"
	case SMPRASOnly:
		return "ras-only"
	}
	return "unknown"
}

// SMPCounterProgram builds the SMP contended-counter workload: the
// harness spawns workers at symbol "worker" (a0 = iterations) on each
// CPU of an smp.System; every worker performs { acquire; counter++;
// release } that many times with lock l. The final counter value is at
// symbol "counter" and must equal the total spawned iterations.
//
// Shared data is laid out one coherence line apart — the spinlock word,
// the counter, and each CPU's hybrid claim word get a line of their own —
// so the RMRs a run counts come from the protocol, not false sharing.
// cpus sizes the per-CPU claim array.
func SMPCounterProgram(l SMPLock, cpus int) string {
	var b strings.Builder
	b.WriteString("\t.text\nworker:                         # a0 = iterations\n")
	b.WriteString("\tmove s0, a0\n\tla   s1, slock\n\tla   s2, counter\n")
	if l == SMPHybrid {
		fmt.Fprintf(&b, `	la   s3, gowner
	li   v0, 11             # SysCPU: which processor am I on?
	syscall
	sll  t0, v0, 6          # claim words are one line (64 bytes) apart
	la   s4, local
	add  s4, s4, t0         # s4 = &claim[my cpu]
	addi s5, v0, 1          # s5 = cpu+1, the gowner tag
	addi s6, s4, 4          # s6 = &batch[my cpu], same line as the claim
	li   s7, %d             # bias bound: local handoffs per batch
`, HybridBatch)
	}
	b.WriteString("wloop:\n")

	switch l {
	case SMPHybrid:
		b.WriteString(`hacq:
	lw   v0, 0(s4)          # intra-CPU arbitration: the designated RAS
	ori  t0, zero, 1        # test-and-set, on this CPU's claim word
	bne  v0, zero, hbusy
	landmark
	sw   t0, 0(s4)          # claim committed
	b    hwon
hbusy:
	li   v0, 1              # SysYield while a sibling holds the claim
	syscall
	b    hacq
hwon:
	lw   t1, 0(s3)          # global word already biased to this CPU?
	beq  t1, s5, cs         # yes: intra-CPU handoff, no interlocked op
gacq:
	lw   v0, 0(s1)          # cross-CPU arbitration: test-and-test-and-
	bne  v0, zero, gacq     # set; busy-spin on the cached copy (the
	tas  v0, 0(s1)          # holder is another CPU making progress, so
	bne  v0, zero, gacq     # yielding would not help) and go bus-locked
	sw   s5, 0(s3)          # only when the word looks free
	b    cs
`)
	case SMPSpin:
		b.WriteString(`sacq:
	tas  v0, 0(s1)          # every attempt is a bus-locked interlocked op
	beq  v0, zero, cs
	li   v0, 1              # SysYield while held
	syscall
	b    sacq
`)
	case SMPLLSC:
		b.WriteString(`lacq:
	ll   v0, 0(s1)          # load-linked the mutex word
	bne  v0, zero, lwait
	ori  t0, zero, 1
	sc   t0, 0(s1)          # store-conditional: any intervening write
	beq  t0, zero, lacq     # (or a context switch) fails it; retry
	b    cs
lwait:
	li   v0, 1              # SysYield while held
	syscall
	b    lacq
`)
	case SMPRASOnly:
		b.WriteString(`racq:
	lw   v0, 0(s1)          # the uniprocessor designated sequence on the
	ori  t0, zero, 1        # shared word: arbitrates one CPU's threads
	bne  v0, zero, rwait    # only (§7) — unsound across CPUs
	landmark
	sw   t0, 0(s1)
	b    cs
rwait:
	li   v0, 1
	syscall
	b    racq
`)
	}

	// Critical section, then release. A single word store releases: it is
	// atomic across CPUs in this memory model. The hybrid's release keeps
	// the global word biased to this CPU and only releases the claim —
	// the batch counter (touched only while holding the claim, so plain
	// loads and stores suffice) bounds how long, and the exit epilogue
	// surrenders the bias so a finished CPU can never strand the word.
	b.WriteString(`cs:
	lw   t1, 0(s2)          # critical section: counter++
	addi t1, t1, 1
	sw   t1, 0(s2)
`)
	switch l {
	case SMPHybrid:
		b.WriteString(`	lw   t1, 0(s6)          # bump the batch counter
	addi t1, t1, 1
	beq  t1, s7, unbias     # batch exhausted: time to be fair
	sw   t1, 0(s6)
	b    hrel
unbias:
	sw   zero, 0(s6)        # reset the batch...
	sw   zero, 0(s3)        # ...clear the owning CPU...
	sw   zero, 0(s1)        # ...and release the shared word
hrel:
	sw   zero, 0(s4)        # hand off: release the claim only
	addi s0, s0, -1
	bne  s0, zero, wloop
facq:
	lw   v0, 0(s4)          # exit epilogue: retake the claim (same
	ori  t0, zero, 1        # designated RAS shape) to surrender any
	bne  v0, zero, fbusy    # bias this CPU still holds
	landmark
	sw   t0, 0(s4)
	b    fwon
fbusy:
	li   v0, 1
	syscall
	b    facq
fwon:
	lw   t1, 0(s3)          # biased to this CPU?
	bne  t1, s5, frel       # no: nothing to give back
	sw   zero, 0(s6)
	sw   zero, 0(s3)
	sw   zero, 0(s1)
frel:
	sw   zero, 0(s4)
`)
	default:
		b.WriteString(`	sw   zero, 0(s1)        # release the shared word
	addi s0, s0, -1
	bne  s0, zero, wloop
`)
	}
	b.WriteString(`	li   v0, 0              # SysExit
	move a0, zero
	syscall
`)

	// Data: everything contended gets its own coherence line. The global
	// word and its owner tag share a line (they are written together at
	// cross-CPU transfers); each CPU's claim word and batch counter share
	// that CPU's private line.
	fmt.Fprintf(&b, `
	.data
slock:   .word 0
gowner:  .word 0
	.space 56
counter: .word 0
	.space 60
local:   .space %d
`, 64*maxInt(cpus, 1))
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
