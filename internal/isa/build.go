package isa

// Constructors for decoded instructions. These are used by the assembler and
// by tests that build code sequences programmatically (e.g. the kernel's
// designated-sequence recognizer tests).

// R builds an R-format instruction.
func R(funct uint32, rd, rs, rt int) Inst {
	return Inst{Op: OpSpecial, Funct: funct, Rd: rd, Rs: rs, Rt: rt}
}

// Shift builds a shift-immediate instruction.
func Shift(funct uint32, rd, rt, shamt int) Inst {
	return Inst{Op: OpSpecial, Funct: funct, Rd: rd, Rt: rt, Shamt: shamt}
}

// I builds an I-format instruction with a sign-extended immediate.
func I(op uint32, rt, rs int, imm int32) Inst {
	return Inst{Op: op, Rt: rt, Rs: rs, Imm: imm, Uimm: uint32(imm) & 0xFFFF}
}

// U builds an I-format instruction with a zero-extended immediate.
func U(op uint32, rt, rs int, uimm uint32) Inst {
	return Inst{Op: op, Rt: rt, Rs: rs, Uimm: uimm & 0xFFFF, Imm: int32(int16(uimm))}
}

// J builds a J-format instruction targeting the given byte address.
func Jump(op uint32, addr Word) Inst {
	return Inst{Op: op, Targ: addr >> 2}
}

// Nop is the canonical no-op (sll zero, zero, 0).
func Nop() Inst { return Inst{} }

// Landmark is the designated-sequence landmark no-op.
func Landmark() Inst { return Inst{Op: OpSpecial, Funct: FnLANDMARK} }

// Syscall builds a syscall instruction.
func Syscall() Inst { return Inst{Op: OpSpecial, Funct: FnSYSCALL} }

// Break builds a break instruction.
func Break() Inst { return Inst{Op: OpSpecial, Funct: FnBREAK} }

// Lw builds "lw rt, imm(rs)".
func Lw(rt, rs int, imm int32) Inst { return I(OpLW, rt, rs, imm) }

// Sw builds "sw rt, imm(rs)".
func Sw(rt, rs int, imm int32) Inst { return I(OpSW, rt, rs, imm) }

// Tas builds the interlocked "tas rt, imm(rs)".
func Tas(rt, rs int, imm int32) Inst { return I(OpTAS, rt, rs, imm) }

// Ll builds "ll rt, imm(rs)" (load-linked).
func Ll(rt, rs int, imm int32) Inst { return I(OpLL, rt, rs, imm) }

// Sc builds "sc rt, imm(rs)" (store-conditional).
func Sc(rt, rs int, imm int32) Inst { return I(OpSC, rt, rs, imm) }

// Lui builds "lui rt, uimm".
func Lui(rt int, uimm uint32) Inst { return U(OpLUI, rt, 0, uimm) }

// Ori builds "ori rt, rs, uimm".
func Ori(rt, rs int, uimm uint32) Inst { return U(OpORI, rt, rs, uimm) }

// Addi builds "addi rt, rs, imm".
func Addi(rt, rs int, imm int32) Inst { return I(OpADDI, rt, rs, imm) }

// Beq builds "beq rs, rt, off" where off is in instructions from the
// following instruction (standard MIPS relative-branch convention).
func Beq(rs, rt int, off int32) Inst { return I(OpBEQ, rt, rs, off) }

// Bne builds "bne rs, rt, off".
func Bne(rs, rt int, off int32) Inst { return I(OpBNE, rt, rs, off) }

// Flush builds "flush imm(rs)" (line write-back toward NVM).
func Flush(rs int, imm int32) Inst { return I(OpFLUSH, 0, rs, imm) }

// Fence builds "fence" (persist barrier).
func Fence() Inst { return Inst{Op: OpFENCE} }

// Jr builds "jr rs".
func Jr(rs int) Inst { return Inst{Op: OpSpecial, Funct: FnJR, Rs: rs} }

// Move builds "move rd, rs" (or rd, rs, zero).
func Move(rd, rs int) Inst { return R(FnOR, rd, rs, RegZero) }
