// Package isa defines the instruction set of the simulated uniprocessor:
// a 32-bit, MIPS-R3000-flavoured load/store RISC with a handful of
// synchronization extensions (interlocked test-and-set, exchange,
// fetch-and-add, and an i860-style lock-bit prefix).
//
// The encoding matters: the Taos-style designated-sequence recognizer in the
// kernel inspects the raw instruction stream of a suspended thread, so
// instructions are real 32-bit words with R/I/J formats, not an AST.
package isa

import "fmt"

// Word is the machine word: 32 bits, as on the MIPS R3000.
type Word = uint32

// Register numbers. Names follow the MIPS o32 convention so that the guest
// assembly in the paper's figures can be transcribed almost verbatim.
const (
	RegZero = 0 // hardwired zero
	RegAT   = 1 // assembler temporary
	RegV0   = 2 // return value / syscall number
	RegV1   = 3
	RegA0   = 4 // arguments
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegT0   = 8 // caller-saved temporaries
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegT4   = 12
	RegT5   = 13
	RegT6   = 14
	RegT7   = 15
	RegS0   = 16 // callee-saved
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegT8   = 24
	RegT9   = 25
	RegK0   = 26 // reserved for kernel
	RegK1   = 27
	RegGP   = 28
	RegSP   = 29
	RegFP   = 30
	RegRA   = 31

	NumRegs = 32
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the conventional assembly name ("t0", "sp", ...) of r.
func RegName(r int) string {
	if r < 0 || r >= NumRegs {
		return fmt.Sprintf("r?%d", r)
	}
	return regNames[r]
}

// RegByName maps an assembly register name (with or without the leading '$')
// to its number. It accepts both symbolic names ("t0") and numeric names
// ("8", "r8").
func RegByName(name string) (int, bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return i, true
		}
	}
	// Numeric forms.
	s := name
	if len(s) > 1 && (s[0] == 'r' || s[0] == 'R') {
		s = s[1:]
	}
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if len(s) == 0 || v >= NumRegs {
		return 0, false
	}
	return v, true
}

// Primary opcodes (bits 31..26).
const (
	OpSpecial = 0x00 // R-type; funct field selects the operation
	OpJ       = 0x02
	OpJAL     = 0x03
	OpBEQ     = 0x04
	OpBNE     = 0x05
	OpBLEZ    = 0x06
	OpBGTZ    = 0x07
	OpADDI    = 0x08
	OpSLTI    = 0x0A
	OpSLTIU   = 0x0B
	OpANDI    = 0x0C
	OpORI     = 0x0D
	OpXORI    = 0x0E
	OpLUI     = 0x0F
	OpLW      = 0x23
	OpSW      = 0x2B

	// Synchronization extensions. These are the "memory-interlocked
	// instructions" of the paper's section 2.1; whether a given processor
	// profile implements them is an arch.Profile property.
	OpTAS   = 0x30 // rt <- mem[rs+imm]; mem[rs+imm] <- 1   (atomic)
	OpXCHG  = 0x31 // tmp <- mem[rs+imm]; mem[rs+imm] <- rt; rt <- tmp
	OpFAA   = 0x32 // rt <- mem[rs+imm]; mem[rs+imm] <- rt + 1
	OpLOCKB = 0x33 // i860-style: begin hardware restartable sequence

	// Load-linked / store-conditional (R4000-style, §7's cross-processor
	// arbitration). ll arms a per-CPU reservation on the loaded line; sc
	// stores only if the reservation survived (no intervening context
	// switch on this CPU, no remote write to the line) and leaves 1 in rt
	// on success, 0 on failure. Profiles gate them via HasLLSC.
	OpLL = 0x34 // rt <- mem[rs+imm]; reserve the line
	OpSC = 0x35 // if reserved: mem[rs+imm] <- rt, rt <- 1; else rt <- 0

	// Persistence extensions (clwb/sfence-style, for the NVRAM model).
	// flush initiates write-back of the 64-byte line holding rs+imm from
	// the volatile tier toward NVM; fence makes every initiated write-back
	// durable. Data is only crash-safe after flush AND a following fence.
	// Both are hints on machines without a persistence domain.
	OpFLUSH = 0x36 // write back line of mem[rs+imm] (rt unused)
	OpFENCE = 0x37 // drain: all flushed lines become durable
)

// SPECIAL function codes (bits 5..0 when Op == OpSpecial).
const (
	FnSLL     = 0x00
	FnSRL     = 0x02
	FnSRA     = 0x03
	FnJR      = 0x08
	FnJALR    = 0x09
	FnSYSCALL = 0x0C
	FnBREAK   = 0x0D
	FnADD     = 0x20 // wrapping add (no overflow traps)
	FnSUB     = 0x22
	FnAND     = 0x24
	FnOR      = 0x25
	FnXOR     = 0x26
	FnNOR     = 0x27
	FnSLT     = 0x2A
	FnSLTU    = 0x2B

	// FnLANDMARK is the designated-sequence landmark: a non-destructive
	// register move that the assembler never emits except via the explicit
	// "landmark" mnemonic, exactly as the Taos compiler reserved a no-op
	// encoding for this purpose (paper §3.2).
	FnLANDMARK = 0x3F
)

// Format describes how an instruction's fields are laid out.
type Format int

const (
	FormatR Format = iota
	FormatI
	FormatJ
)

// Inst is a decoded instruction. The zero value is "sll zero, zero, 0",
// i.e. the canonical nop.
type Inst struct {
	Op    uint32 // primary opcode
	Rs    int
	Rt    int
	Rd    int
	Shamt int
	Funct uint32 // valid when Op == OpSpecial
	Imm   int32  // sign-extended 16-bit immediate (I-format)
	Uimm  uint32 // zero-extended 16-bit immediate (logical ops, LUI)
	Targ  uint32 // 26-bit jump target (J-format), word index
}

// IsNop reports whether the instruction is the canonical no-op.
func (i Inst) IsNop() bool {
	return i.Op == OpSpecial && i.Funct == FnSLL && i.Rd == 0 && i.Rt == 0 && i.Shamt == 0
}

// IsLandmark reports whether the instruction is the designated-sequence
// landmark no-op.
func (i Inst) IsLandmark() bool {
	return i.Op == OpSpecial && i.Funct == FnLANDMARK
}

// FormatOf returns the encoding format of opcode op.
func FormatOf(op uint32) Format {
	switch op {
	case OpSpecial:
		return FormatR
	case OpJ, OpJAL:
		return FormatJ
	default:
		return FormatI
	}
}

// Encode packs the instruction into a 32-bit word.
func Encode(i Inst) Word {
	switch FormatOf(i.Op) {
	case FormatR:
		return i.Op<<26 |
			uint32(i.Rs&31)<<21 |
			uint32(i.Rt&31)<<16 |
			uint32(i.Rd&31)<<11 |
			uint32(i.Shamt&31)<<6 |
			(i.Funct & 0x3F)
	case FormatJ:
		return i.Op<<26 | (i.Targ & 0x03FFFFFF)
	default:
		imm := i.Uimm
		if !usesUnsignedImm(i.Op) {
			imm = uint32(i.Imm) & 0xFFFF
		}
		return i.Op<<26 |
			uint32(i.Rs&31)<<21 |
			uint32(i.Rt&31)<<16 |
			(imm & 0xFFFF)
	}
}

// usesUnsignedImm reports whether the opcode's immediate field is
// zero-extended rather than sign-extended.
func usesUnsignedImm(op uint32) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpLUI:
		return true
	}
	return false
}

// Decode unpacks a 32-bit instruction word.
func Decode(w Word) Inst {
	op := w >> 26
	switch FormatOf(op) {
	case FormatR:
		return Inst{
			Op:    op,
			Rs:    int(w >> 21 & 31),
			Rt:    int(w >> 16 & 31),
			Rd:    int(w >> 11 & 31),
			Shamt: int(w >> 6 & 31),
			Funct: w & 0x3F,
		}
	case FormatJ:
		return Inst{Op: op, Targ: w & 0x03FFFFFF}
	default:
		raw := w & 0xFFFF
		return Inst{
			Op:   op,
			Rs:   int(w >> 21 & 31),
			Rt:   int(w >> 16 & 31),
			Imm:  int32(int16(raw)),
			Uimm: raw,
		}
	}
}

// Opcode returns the primary opcode of an encoded instruction word. The
// designated-sequence recognizer uses this as its first-stage hash key.
func Opcode(w Word) uint32 { return w >> 26 }

// Class partitions instructions for the cycle-cost model.
type Class int

const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassTrap        // syscall, break
	ClassInterlocked // TAS, XCHG, FAA
	ClassLockB
	ClassFlush // line write-back toward NVM
	ClassFence // persist barrier
)

// ClassOf returns the cost class of a decoded instruction.
func ClassOf(i Inst) Class {
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnJR, FnJALR:
			return ClassJump
		case FnSYSCALL, FnBREAK:
			return ClassTrap
		default:
			return ClassALU
		}
	case OpLW, OpLL:
		return ClassLoad
	case OpSW, OpSC:
		return ClassStore
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ:
		return ClassBranch
	case OpJ, OpJAL:
		return ClassJump
	case OpTAS, OpXCHG, OpFAA:
		return ClassInterlocked
	case OpLOCKB:
		return ClassLockB
	case OpFLUSH:
		return ClassFlush
	case OpFENCE:
		return ClassFence
	default:
		return ClassALU
	}
}

// Mnemonic returns the assembly mnemonic for a decoded instruction.
func Mnemonic(i Inst) string {
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnSLL:
			if i.IsNop() {
				return "nop"
			}
			return "sll"
		case FnSRL:
			return "srl"
		case FnSRA:
			return "sra"
		case FnJR:
			return "jr"
		case FnJALR:
			return "jalr"
		case FnSYSCALL:
			return "syscall"
		case FnBREAK:
			return "break"
		case FnADD:
			return "add"
		case FnSUB:
			return "sub"
		case FnAND:
			return "and"
		case FnOR:
			return "or"
		case FnXOR:
			return "xor"
		case FnNOR:
			return "nor"
		case FnSLT:
			return "slt"
		case FnSLTU:
			return "sltu"
		case FnLANDMARK:
			return "landmark"
		}
		return fmt.Sprintf("special?%#x", i.Funct)
	case OpJ:
		return "j"
	case OpJAL:
		return "jal"
	case OpBEQ:
		return "beq"
	case OpBNE:
		return "bne"
	case OpBLEZ:
		return "blez"
	case OpBGTZ:
		return "bgtz"
	case OpADDI:
		return "addi"
	case OpSLTI:
		return "slti"
	case OpSLTIU:
		return "sltiu"
	case OpANDI:
		return "andi"
	case OpORI:
		return "ori"
	case OpXORI:
		return "xori"
	case OpLUI:
		return "lui"
	case OpLW:
		return "lw"
	case OpSW:
		return "sw"
	case OpTAS:
		return "tas"
	case OpXCHG:
		return "xchg"
	case OpFAA:
		return "faa"
	case OpLOCKB:
		return "lockb"
	case OpLL:
		return "ll"
	case OpSC:
		return "sc"
	case OpFLUSH:
		return "flush"
	case OpFENCE:
		return "fence"
	}
	return fmt.Sprintf("op?%#x", i.Op)
}

// String disassembles the instruction into canonical assembly syntax.
func (i Inst) String() string {
	m := Mnemonic(i)
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnSLL, FnSRL, FnSRA:
			if i.IsNop() {
				return "nop"
			}
			return fmt.Sprintf("%s %s, %s, %d", m, RegName(i.Rd), RegName(i.Rt), i.Shamt)
		case FnJR:
			return fmt.Sprintf("jr %s", RegName(i.Rs))
		case FnJALR:
			return fmt.Sprintf("jalr %s, %s", RegName(i.Rd), RegName(i.Rs))
		case FnSYSCALL:
			return "syscall"
		case FnBREAK:
			return "break"
		case FnLANDMARK:
			return "landmark"
		default:
			return fmt.Sprintf("%s %s, %s, %s", m, RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		}
	case OpJ, OpJAL:
		return fmt.Sprintf("%s %#x", m, i.Targ<<2)
	case OpBEQ, OpBNE:
		return fmt.Sprintf("%s %s, %s, %d", m, RegName(i.Rs), RegName(i.Rt), i.Imm)
	case OpBLEZ, OpBGTZ:
		return fmt.Sprintf("%s %s, %d", m, RegName(i.Rs), i.Imm)
	case OpLUI:
		return fmt.Sprintf("lui %s, %#x", RegName(i.Rt), i.Uimm)
	case OpLW, OpSW, OpTAS, OpXCHG, OpFAA, OpLL, OpSC:
		return fmt.Sprintf("%s %s, %d(%s)", m, RegName(i.Rt), i.Imm, RegName(i.Rs))
	case OpLOCKB:
		return "lockb"
	case OpFLUSH: // rt is a don't-care; the canonical form omits it
		return fmt.Sprintf("flush %d(%s)", i.Imm, RegName(i.Rs))
	case OpFENCE:
		return "fence"
	case OpANDI, OpORI, OpXORI:
		return fmt.Sprintf("%s %s, %s, %#x", m, RegName(i.Rt), RegName(i.Rs), i.Uimm)
	default: // addi, slti, sltiu
		return fmt.Sprintf("%s %s, %s, %d", m, RegName(i.Rt), RegName(i.Rs), i.Imm)
	}
}
