package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		num  int
		name string
	}{
		{RegZero, "zero"}, {RegAT, "at"}, {RegV0, "v0"}, {RegA0, "a0"},
		{RegT0, "t0"}, {RegS0, "s0"}, {RegSP, "sp"}, {RegRA, "ra"},
	}
	for _, c := range cases {
		if got := RegName(c.num); got != c.name {
			t.Errorf("RegName(%d) = %q, want %q", c.num, got, c.name)
		}
		n, ok := RegByName(c.name)
		if !ok || n != c.num {
			t.Errorf("RegByName(%q) = %d,%v, want %d", c.name, n, ok, c.num)
		}
		n, ok = RegByName("$" + c.name)
		if !ok || n != c.num {
			t.Errorf("RegByName($%q) = %d,%v, want %d", c.name, n, ok, c.num)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName accepted bogus register")
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("RegByName accepted out-of-range register")
	}
	if n, ok := RegByName("r8"); !ok || n != RegT0 {
		t.Errorf("RegByName(r8) = %d,%v", n, ok)
	}
	if n, ok := RegByName("31"); !ok || n != RegRA {
		t.Errorf("RegByName(31) = %d,%v", n, ok)
	}
	if got := RegName(-1); got == "" {
		t.Error("RegName(-1) empty")
	}
}

func TestEncodeDecodeRoundTripR(t *testing.T) {
	in := R(FnADD, RegT0, RegT1, RegT2)
	out := Decode(Encode(in))
	if out != in {
		t.Errorf("round trip R: got %+v want %+v", out, in)
	}
}

func TestEncodeDecodeRoundTripI(t *testing.T) {
	in := Lw(RegV0, RegA0, -4)
	out := Decode(Encode(in))
	if out != in {
		t.Errorf("round trip I: got %+v want %+v", out, in)
	}
	if out.Imm != -4 {
		t.Errorf("sign extension lost: Imm=%d", out.Imm)
	}
}

func TestEncodeDecodeRoundTripUnsigned(t *testing.T) {
	in := Lui(RegT0, 0x8000)
	out := Decode(Encode(in))
	if out.Uimm != 0x8000 {
		t.Errorf("lui uimm = %#x, want 0x8000", out.Uimm)
	}
}

func TestEncodeDecodeRoundTripJ(t *testing.T) {
	in := Jump(OpJAL, 0x1000)
	out := Decode(Encode(in))
	if out.Op != OpJAL || out.Targ != 0x400 {
		t.Errorf("round trip J: got %+v", out)
	}
}

// TestQuickRoundTrip property: any decoded word re-encodes to itself for the
// defined opcodes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(w uint32) bool {
		inst := Decode(w)
		// Skip undefined opcodes whose spare bits we do not preserve.
		switch inst.Op {
		case OpSpecial, OpJ, OpJAL, OpBEQ, OpBNE, OpBLEZ, OpBGTZ,
			OpADDI, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI,
			OpLW, OpSW, OpTAS, OpXCHG, OpFAA, OpLOCKB:
			return Encode(inst) == w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestNopAndLandmark(t *testing.T) {
	if !Nop().IsNop() {
		t.Error("Nop() not recognized as nop")
	}
	if Nop().IsLandmark() {
		t.Error("nop misidentified as landmark")
	}
	lm := Landmark()
	if !lm.IsLandmark() {
		t.Error("Landmark() not recognized")
	}
	if lm.IsNop() {
		t.Error("landmark misidentified as nop")
	}
	// The landmark must survive an encode/decode round trip: the kernel
	// recognizes it from raw memory.
	if !Decode(Encode(lm)).IsLandmark() {
		t.Error("landmark lost in encoding")
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		in   Inst
		want Class
	}{
		{R(FnADD, 1, 2, 3), ClassALU},
		{Lw(1, 2, 0), ClassLoad},
		{Sw(1, 2, 0), ClassStore},
		{Beq(1, 2, 4), ClassBranch},
		{Jump(OpJ, 0), ClassJump},
		{Jr(RegRA), ClassJump},
		{Syscall(), ClassTrap},
		{Break(), ClassTrap},
		{Tas(1, 2, 0), ClassInterlocked},
		{I(OpXCHG, 1, 2, 0), ClassInterlocked},
		{I(OpFAA, 1, 2, 0), ClassInterlocked},
		{Inst{Op: OpLOCKB}, ClassLockB},
		{Landmark(), ClassALU},
	}
	for _, c := range cases {
		if got := ClassOf(c.in); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMnemonics(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Nop(), "nop"},
		{Landmark(), "landmark"},
		{Lw(RegV0, RegA0, 0), "lw"},
		{Sw(RegT0, RegA0, 0), "sw"},
		{Tas(RegV0, RegA0, 0), "tas"},
		{Syscall(), "syscall"},
		{Jr(RegRA), "jr"},
		{Lui(RegT0, 1), "lui"},
	}
	for _, c := range cases {
		if got := Mnemonic(c.in); got != c.want {
			t.Errorf("Mnemonic(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Lw(RegV0, RegA0, 0), "lw v0, 0(a0)"},
		{Sw(RegT0, RegA0, 4), "sw t0, 4(a0)"},
		{Ori(RegT0, RegZero, 1), "ori t0, zero, 0x1"},
		{Jr(RegRA), "jr ra"},
		{Nop(), "nop"},
		{Landmark(), "landmark"},
		{Move(RegT0, RegT1), "or t0, t1, zero"},
		{Bne(RegV0, RegZero, 2), "bne v0, zero, 2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOpcodeExtraction(t *testing.T) {
	w := Encode(Lw(RegV0, RegA0, 0))
	if Opcode(w) != OpLW {
		t.Errorf("Opcode = %#x, want OpLW", Opcode(w))
	}
}

func TestBranchOffsetsAreSigned(t *testing.T) {
	in := Bne(RegV0, RegZero, -3)
	out := Decode(Encode(in))
	if out.Imm != -3 {
		t.Errorf("branch offset = %d, want -3", out.Imm)
	}
}

// Exhaustive disassembly: every defined instruction form renders with its
// mnemonic and survives an encode/decode round trip.
func TestAllFormsDisassemble(t *testing.T) {
	forms := []Inst{
		Shift(FnSLL, RegT0, RegT1, 4),
		Shift(FnSRL, RegT0, RegT1, 4),
		Shift(FnSRA, RegT0, RegT1, 4),
		R(FnADD, RegT0, RegT1, RegT2),
		R(FnSUB, RegT0, RegT1, RegT2),
		R(FnAND, RegT0, RegT1, RegT2),
		R(FnOR, RegT0, RegT1, RegT2),
		R(FnXOR, RegT0, RegT1, RegT2),
		R(FnNOR, RegT0, RegT1, RegT2),
		R(FnSLT, RegT0, RegT1, RegT2),
		R(FnSLTU, RegT0, RegT1, RegT2),
		Jr(RegRA),
		{Op: OpSpecial, Funct: FnJALR, Rd: RegRA, Rs: RegT0},
		Syscall(),
		Break(),
		Landmark(),
		Jump(OpJ, 0x2000),
		Jump(OpJAL, 0x2000),
		Beq(RegT0, RegT1, -2),
		Bne(RegT0, RegT1, 2),
		I(OpBLEZ, 0, RegT0, 3),
		I(OpBGTZ, 0, RegT0, 3),
		Addi(RegT0, RegT1, -7),
		I(OpSLTI, RegT0, RegT1, 5),
		I(OpSLTIU, RegT0, RegT1, 5),
		U(OpANDI, RegT0, RegT1, 0xFF),
		Ori(RegT0, RegT1, 0xFF),
		U(OpXORI, RegT0, RegT1, 0xFF),
		Lui(RegT0, 0x8000),
		Lw(RegT0, RegSP, -4),
		Sw(RegT0, RegSP, -4),
		Tas(RegT0, RegA0, 0),
		I(OpXCHG, RegT0, RegA0, 0),
		I(OpFAA, RegT0, RegA0, 0),
		{Op: OpLOCKB},
	}
	for _, in := range forms {
		s := in.String()
		if s == "" {
			t.Errorf("%+v: empty disassembly", in)
		}
		m := Mnemonic(in)
		if m == "" || m[0] == 'o' && m[1] == 'p' && m[2] == '?' {
			t.Errorf("%+v: bad mnemonic %q", in, m)
		}
		out := Decode(Encode(in))
		if out != in {
			t.Errorf("round trip %v: got %+v want %+v", s, out, in)
		}
	}
}

func TestUndefinedFormsRenderGracefully(t *testing.T) {
	bad := Inst{Op: 0x3F}
	if bad.String() == "" || Mnemonic(bad) == "" {
		t.Error("undefined opcode should still render")
	}
	badFn := Inst{Op: OpSpecial, Funct: 0x3E}
	if Mnemonic(badFn) == "" {
		t.Error("undefined funct should still render")
	}
	if ClassOf(bad) != ClassALU {
		t.Error("unknown opcode should default to ALU class")
	}
}

func TestFormatOf(t *testing.T) {
	if FormatOf(OpSpecial) != FormatR || FormatOf(OpJ) != FormatJ ||
		FormatOf(OpJAL) != FormatJ || FormatOf(OpLW) != FormatI {
		t.Error("format classification wrong")
	}
}
