package journal

import (
	"fmt"
	"strings"

	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/uniproc"
)

// JFS layers the WAL under memfs: every mutating operation appends a
// record, makes it durable, and only then applies the in-place update to
// the volatile node tree. The tree itself never survives a crash — it is
// exactly replay(log), rebuilt by MountFS from NVM contents alone.
//
// Mutations are validated BEFORE they are logged (the same checks memfs
// itself performs), so the log never holds a record whose replay would
// fail: a committed record is an operation that did succeed. A single
// journal mutex serializes validate→append→apply against concurrent
// mutators; reads go straight to memfs and its per-node lock coupling.
type JFS struct {
	fs  *memfs.FS
	log *Log
	mu  *cthreads.Mutex
}

// MountFS mounts (or creates) a journaled filesystem over the arena:
// scan the log, discard any torn tail, and replay the valid records into
// a fresh tree. An empty arena mounts as an empty filesystem.
func MountFS(e *uniproc.Env, pkg *cthreads.Pkg, arena []uniproc.Word, opt Options) (*JFS, error) {
	l, recs, err := Mount(e, arena, opt)
	if err != nil {
		return nil, err
	}
	j := &JFS{fs: memfs.New(pkg), log: l, mu: pkg.NewMutex()}
	for _, rec := range recs {
		if err := j.apply(e, rec.Kind, rec.Path, rec.Data); err != nil {
			return nil, fmt.Errorf("journal: replay of %s #%d %s: %w", rec.Kind, rec.Seq, rec.Path, err)
		}
	}
	return j, nil
}

// FS returns the underlying volatile filesystem for read-side access
// (ReadFile, ReadAt, Stat, ReadDir — anything that doesn't mutate).
func (j *JFS) FS() *memfs.FS { return j.fs }

// Log returns the underlying WAL (for inspection and stats).
func (j *JFS) Log() *Log { return j.log }

// apply performs rec's in-place update on the volatile tree.
func (j *JFS) apply(e *uniproc.Env, kind Kind, path string, data []byte) error {
	switch kind {
	case OpMkdir:
		return j.fs.Mkdir(e, path)
	case OpCreate:
		return j.fs.Create(e, path)
	case OpWriteFile:
		return j.fs.WriteFile(e, path, data)
	case OpAppend:
		return j.fs.Append(e, path, data)
	case OpRemove:
		return j.fs.Remove(e, path)
	}
	return fmt.Errorf("journal: unknown record kind %d", kind)
}

// mutate is the write-ahead path: validate, commit the record, apply.
func (j *JFS) mutate(e *uniproc.Env, kind Kind, path string, data []byte) error {
	j.mu.Lock(e)
	defer j.mu.Unlock(e)
	if err := j.precheck(e, kind, path); err != nil {
		return err
	}
	if _, err := j.log.Append(e, kind, path, data); err != nil {
		return err
	}
	if err := j.apply(e, kind, path, data); err != nil {
		// The record is durable but the apply failed: the volatile tree
		// and the log disagree, which the precheck exists to rule out.
		panic(fmt.Sprintf("journal: committed record failed to apply: %s %s: %v", kind, path, err))
	}
	return nil
}

// precheck mirrors memfs's own validation for kind at path, so an
// operation is only logged if its apply must succeed. It runs under the
// journal mutex, and nothing else mutates the tree outside that mutex,
// so the answer cannot go stale between precheck and apply.
func (j *JFS) precheck(e *uniproc.Env, kind Kind, path string) error {
	switch kind {
	case OpMkdir, OpCreate:
		if parent := parentPath(path); parent == "" {
			return memfs.ErrBadPath
		} else if isDir, _, err := j.fs.Stat(e, parent); err != nil {
			return err
		} else if !isDir {
			return fmt.Errorf("%w: %s", memfs.ErrNotDir, path)
		}
		if _, _, err := j.fs.Stat(e, path); err == nil {
			return fmt.Errorf("%w: %s", memfs.ErrExists, path)
		}
		return checkPath(path)
	case OpWriteFile, OpAppend:
		isDir, _, err := j.fs.Stat(e, path)
		if err != nil {
			return err
		}
		if isDir {
			return fmt.Errorf("%w: %s", memfs.ErrIsDir, path)
		}
		return nil
	case OpRemove:
		isDir, _, err := j.fs.Stat(e, path)
		if err != nil {
			return err
		}
		if isDir {
			if names, err := j.fs.ReadDir(e, path); err != nil {
				return err
			} else if len(names) > 0 {
				return fmt.Errorf("%w: %s", memfs.ErrDirNotEmpty, path)
			}
		}
		return nil
	}
	return fmt.Errorf("journal: unknown record kind %d", kind)
}

// parentPath returns the parent of a well-formed absolute path, "" if
// path has none (root or malformed).
func parentPath(path string) string {
	if len(path) < 2 || path[0] != '/' {
		return ""
	}
	i := strings.LastIndexByte(path, '/')
	if i == 0 {
		return "/"
	}
	return path[:i]
}

// checkPath rejects the path shapes memfs.split rejects, for the
// components Stat on the parent cannot see.
func checkPath(path string) error {
	if path == "" || path[0] != '/' || strings.HasSuffix(path, "/") {
		return memfs.ErrBadPath
	}
	for _, p := range strings.Split(path[1:], "/") {
		if p == "" || p == "." || p == ".." {
			return memfs.ErrBadPath
		}
	}
	return nil
}

// Mkdir journals and creates a directory.
func (j *JFS) Mkdir(e *uniproc.Env, path string) error {
	return j.mutate(e, OpMkdir, path, nil)
}

// Create journals and creates an empty file.
func (j *JFS) Create(e *uniproc.Env, path string) error {
	return j.mutate(e, OpCreate, path, nil)
}

// WriteFile journals and replaces a file's contents.
func (j *JFS) WriteFile(e *uniproc.Env, path string, data []byte) error {
	return j.mutate(e, OpWriteFile, path, data)
}

// Append journals and appends to a file.
func (j *JFS) Append(e *uniproc.Env, path string, data []byte) error {
	return j.mutate(e, OpAppend, path, data)
}

// Remove journals and deletes a file or empty directory.
func (j *JFS) Remove(e *uniproc.Env, path string) error {
	return j.mutate(e, OpRemove, path, nil)
}

// ReadFile reads through to the volatile tree.
func (j *JFS) ReadFile(e *uniproc.Env, path string) ([]byte, error) {
	return j.fs.ReadFile(e, path)
}

// ReadAt reads through to the volatile tree.
func (j *JFS) ReadAt(e *uniproc.Env, path string, off int, buf []byte) (int, error) {
	return j.fs.ReadAt(e, path, off, buf)
}

// Stat reads through to the volatile tree.
func (j *JFS) Stat(e *uniproc.Env, path string) (bool, int, error) {
	return j.fs.Stat(e, path)
}

// ReadDir reads through to the volatile tree.
func (j *JFS) ReadDir(e *uniproc.Env, path string) ([]string, error) {
	return j.fs.ReadDir(e, path)
}
