package journal

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/memfs"
	"repro/internal/obs"
	"repro/internal/uniproc"
)

const arenaWords = 4096

// script is the op sequence the crash tests drive; each op mutates and
// each leaves the tree in a distinct state, so prefix identification is
// unambiguous.
type op struct {
	kind Kind
	path string
	data string
}

var script = []op{
	{OpMkdir, "/d", ""},
	{OpCreate, "/d/a", ""},
	{OpWriteFile, "/d/a", "alpha"},
	{OpCreate, "/d/b", ""},
	{OpAppend, "/d/b", "beta-1"},
	{OpAppend, "/d/b", "beta-2"},
	{OpWriteFile, "/d/a", "alpha-rewritten"},
	{OpRemove, "/d/a", ""},
	{OpMkdir, "/d/sub", ""},
	{OpCreate, "/d/sub/c", ""},
	{OpWriteFile, "/d/sub/c", "gamma"},
}

func doOp(e *uniproc.Env, j *JFS, o op) error {
	switch o.kind {
	case OpMkdir:
		return j.Mkdir(e, o.path)
	case OpCreate:
		return j.Create(e, o.path)
	case OpWriteFile:
		return j.WriteFile(e, o.path, []byte(o.data))
	case OpAppend:
		return j.Append(e, o.path, []byte(o.data))
	case OpRemove:
		return j.Remove(e, o.path)
	}
	panic("unknown op")
}

// dump flattens the tree to a canonical string for state comparison.
func dump(e *uniproc.Env, j *JFS) string {
	var sb strings.Builder
	var walk func(dir string)
	walk = func(dir string) {
		names, err := j.ReadDir(e, dir)
		if err != nil {
			panic(err)
		}
		sort.Strings(names)
		for _, name := range names {
			p := dir + "/" + name
			if dir == "/" {
				p = "/" + name
			}
			isDir, _, err := j.Stat(e, p)
			if err != nil {
				panic(err)
			}
			if isDir {
				fmt.Fprintf(&sb, "%s/\n", p)
				walk(p)
			} else {
				data, _ := j.ReadFile(e, p)
				fmt.Fprintf(&sb, "%s=%q\n", p, data)
			}
		}
	}
	walk("/")
	return sb.String()
}

// prefixStates returns dump() after each prefix of script (index p =
// state after the first p ops), built on a fault-free processor.
func prefixStates(t *testing.T) []string {
	t.Helper()
	states := make([]string, len(script)+1)
	arena := make([]uniproc.Word, arenaWords)
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		states[0] = dump(e, j)
		for i, o := range script {
			if err := doOp(e, j, o); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			states[i+1] = dump(e, j)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return states
}

// mountAndDump remounts the arena on a fresh fault-free processor and
// returns the rebuilt tree's dump.
func mountAndDump(t *testing.T, arena []uniproc.Word, opt Options) string {
	t.Helper()
	var state string
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, opt)
		if err != nil {
			t.Errorf("remount: %v", err)
			return
		}
		state = dump(e, j)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return state
}

// The log round-trips through a clean remount: the rebuilt tree is
// identical, and the log is positioned to keep appending.
func TestMountRebuildsTree(t *testing.T) {
	arena := make([]uniproc.Word, arenaWords)
	reg := obs.NewRegistry()
	var before string
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{Metrics: reg})
		if err != nil {
			t.Error(err)
			return
		}
		for _, o := range script {
			if err := doOp(e, j, o); err != nil {
				t.Error(err)
				return
			}
		}
		before = dump(e, j)
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("journal_records_written"); got != uint64(len(script)) {
		t.Errorf("records written = %d, want %d", got, len(script))
	}

	p2 := uniproc.New(uniproc.Config{})
	p2.EnablePersistence()
	reg2 := obs.NewRegistry()
	p2.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{Metrics: reg2})
		if err != nil {
			t.Error(err)
			return
		}
		if got := dump(e, j); got != before {
			t.Errorf("remounted tree:\n%s\nwant:\n%s", got, before)
		}
		// The remounted log keeps appending where the old one stopped.
		if err := j.Create(e, "/d/post-remount"); err != nil {
			t.Error(err)
		}
	})
	if err := p2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg2.CounterValue("journal_records_replayed"); got != uint64(len(script)) {
		t.Errorf("records replayed = %d, want %d", got, len(script))
	}
}

// Crash at EVERY persist boundary, clean and torn: the remounted tree
// must equal some prefix of the script — at least every operation that
// returned, never a partial operation, never reordered.
func TestCrashAtEveryPersistBoundaryRecoversPrefix(t *testing.T) {
	states := prefixStates(t)

	// Reference run to size the ordinal space.
	ref := uniproc.New(uniproc.Config{})
	ref.EnablePersistence()
	refArena := make([]uniproc.Word, arenaWords)
	ref.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), refArena, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		for _, o := range script {
			doOp(e, j, o)
		}
	})
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	total := ref.PersistOps()
	if total == 0 {
		t.Fatal("no persist ops in reference run")
	}

	for _, torn := range []bool{false, true} {
		for c := uint64(1); c <= total; c++ {
			arena := make([]uniproc.Word, arenaWords)
			returned := 0
			p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
				Point:  chaos.PointPersist,
				N:      c,
				Action: chaos.Action{CrashVolatile: true, Torn: torn},
			}})
			p.EnablePersistence()
			p.Go("main", func(e *uniproc.Env) {
				j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{})
				if err != nil {
					t.Error(err)
					return
				}
				for _, o := range script {
					if err := doOp(e, j, o); err != nil {
						t.Errorf("crash %d: op error %v", c, err)
						return
					}
					returned++
				}
			})
			if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
				t.Fatalf("crash %d (torn=%v): Run = %v, want ErrMachineCrash", c, torn, err)
			}
			got := mountAndDump(t, arena, Options{})
			match := -1
			for i, s := range states {
				if got == s {
					match = i
					break
				}
			}
			if match < 0 {
				t.Fatalf("crash %d (torn=%v): recovered state matches no script prefix:\n%s", c, torn, got)
			}
			if match < returned {
				t.Fatalf("crash %d (torn=%v): %d ops returned but recovery rebuilt only %d — a committed op was lost",
					c, torn, returned, match)
			}
		}
	}
}

// The planted missing-fence bug is observable: an operation that
// returned is lost by a clean crash at a later boundary, exactly the
// violation the model checker must catch.
func TestSkipFenceLosesCommittedOp(t *testing.T) {
	states := prefixStates(t)
	lost := false
	for c := uint64(1); c < 64 && !lost; c++ {
		arena := make([]uniproc.Word, arenaWords)
		returned := 0
		p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
			Point:  chaos.PointPersist,
			N:      c,
			Action: chaos.Action{CrashVolatile: true},
		}})
		p.EnablePersistence()
		p.Go("main", func(e *uniproc.Env) {
			j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{SkipFence: true})
			if err != nil {
				t.Error(err)
				return
			}
			for _, o := range script {
				if err := doOp(e, j, o); err != nil {
					return
				}
				returned++
			}
		})
		if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			break // ran to completion: no boundary left to crash at
		}
		got := mountAndDump(t, arena, Options{})
		match := -1
		for i, s := range states {
			if got == s {
				match = i
				break
			}
		}
		if match < 0 || match < returned {
			lost = true
		}
	}
	if !lost {
		t.Fatal("SkipFence never lost a committed op — the planted bug is invisible")
	}
}

// A torn crash mid-append leaves a partial record; Mount detects it via
// the checksum, zeroes the tail durably, counts the discard, and the log
// accepts new appends over the reclaimed space.
func TestTornTailDetectedAndZeroed(t *testing.T) {
	arena := make([]uniproc.Word, arenaWords)
	// Write two records; crash torn during the second record's flushes.
	// Ordinals: record 1 = flush x N, fence; pick a flush ordinal well
	// inside record 2's flush run.
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		l, _, err := Mount(e, arena, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := l.Append(e, OpCreate, "/first", nil); err != nil {
			t.Error(err)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	opsRec1 := p.PersistOps()

	tornSeen := false
	for c := opsRec1 + 1; c <= opsRec1+8; c++ {
		arena := make([]uniproc.Word, arenaWords)
		p := uniproc.New(uniproc.Config{Faults: chaos.OneShot{
			Point:  chaos.PointPersist,
			N:      c,
			Action: chaos.Action{CrashVolatile: true, Torn: true},
		}})
		p.EnablePersistence()
		p.Go("main", func(e *uniproc.Env) {
			l, _, err := Mount(e, arena, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			l.Append(e, OpCreate, "/first", nil)
			l.Append(e, OpWriteFile, "/first", bytes.Repeat([]byte("x"), 40))
			t.Errorf("crash %d did not fire", c)
		})
		if err := p.Run(); !errors.Is(err, uniproc.ErrMachineCrash) {
			t.Fatalf("crash %d: Run = %v, want ErrMachineCrash", c, err)
		}

		reg := obs.NewRegistry()
		p2 := uniproc.New(uniproc.Config{})
		p2.EnablePersistence()
		p2.Go("main", func(e *uniproc.Env) {
			l, recs, err := Mount(e, arena, Options{Metrics: reg})
			if err != nil {
				t.Error(err)
				return
			}
			if len(recs) != 1 || recs[0].Kind != OpCreate || recs[0].Path != "/first" {
				t.Errorf("crash %d: replayed %+v, want only the fenced record", c, recs)
			}
			// The reclaimed space accepts a fresh record with the right seq.
			seq, err := l.Append(e, OpCreate, "/second", nil)
			if err != nil || seq != 2 {
				t.Errorf("crash %d: append after torn recovery = seq %d, %v", c, seq, err)
			}
		})
		if err := p2.Run(); err != nil {
			t.Fatal(err)
		}
		if reg.CounterValue("journal_torn_words_discarded") > 0 {
			tornSeen = true
		}
	}
	if !tornSeen {
		t.Error("no torn crash in the sweep left a partial record to discard")
	}
}

// A full log refuses the append before anything is logged or applied.
func TestLogFullRefusesCleanly(t *testing.T) {
	arena := make([]uniproc.Word, 16) // room for barely one small record
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		if err := j.Mkdir(e, "/d"); err != nil {
			t.Errorf("first mkdir: %v", err)
		}
		err = j.Create(e, "/d/a-name-too-long-to-fit-in-the-arena")
		if !errors.Is(err, ErrFull) {
			t.Errorf("overfull append = %v, want ErrFull", err)
		}
		if _, _, err := j.Stat(e, "/d/a-name-too-long-to-fit-in-the-arena"); err == nil {
			t.Error("refused op was applied anyway")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

// Validation failures surface the memfs error and log nothing.
func TestInvalidOpsNotLogged(t *testing.T) {
	arena := make([]uniproc.Word, arenaWords)
	p := uniproc.New(uniproc.Config{})
	p.EnablePersistence()
	p.Go("main", func(e *uniproc.Env) {
		j, err := MountFS(e, cthreads.New(core.NewRAS()), arena, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		cases := []struct {
			err  error
			want error
		}{
			{j.Mkdir(e, "/missing/d"), memfs.ErrNotFound},
			{j.WriteFile(e, "/nope", []byte("x")), memfs.ErrNotFound},
			{j.Remove(e, "/nope"), memfs.ErrNotFound},
			{j.Mkdir(e, "bad"), memfs.ErrBadPath},
			{j.Create(e, "/a/../b"), memfs.ErrBadPath},
		}
		for i, c := range cases {
			if !errors.Is(c.err, c.want) {
				t.Errorf("case %d: err = %v, want %v", i, c.err, c.want)
			}
		}
		if err := j.Mkdir(e, "/d"); err != nil {
			t.Fatal(err)
		}
		if err := j.Mkdir(e, "/d"); !errors.Is(err, memfs.ErrExists) {
			t.Errorf("double mkdir = %v, want ErrExists", err)
		}
		if err := j.Remove(e, "/d"); err != nil {
			t.Fatal(err)
		}
		if j.Log().Seq() != 2 {
			t.Errorf("seq = %d after 2 valid ops, want 2", j.Log().Seq())
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}
