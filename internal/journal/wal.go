// Package journal is a crash-consistent write-ahead log on the NVRAM
// persistence model (PR 6): checksummed, sequence-numbered records are
// flushed and fenced BEFORE the in-place update they describe, so the
// durable log always runs ahead of the volatile state it shadows and a
// mount can rebuild that state from NVM contents alone.
//
// The write-ahead discipline per appended record:
//
//	store the record's words into the log tail   (volatile)
//	flush each word                              (initiate write-back)
//	fence                                        (commit point)
//	apply the in-place update                    (caller, volatile)
//
// A crash before the fence loses the record cleanly — unfenced words
// revert to the NVM zeros, and the operation never happened. A TORN crash
// (chaos.Action.Torn) persists a flush-order prefix of the record's
// words; the checksum is the last word flushed, so a torn record can
// never validate, and Mount detects it, discards it, and zeroes the tail
// (zeroing is itself flushed and fenced before the space is reused).
// Records are glued by strict sequence continuity: record n+1 is only
// accepted directly after record n, so a stale record surviving past a
// zeroed gap can never be replayed out of order.
package journal

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/uniproc"
)

// Record kinds. The zero kind is invalid so a zeroed arena never decodes.
type Kind uint8

const (
	OpMkdir Kind = iota + 1
	OpCreate
	OpWriteFile
	OpAppend
	OpRemove
	// OpEffect is an application-defined exactly-once effect record: the
	// path names the client, the data carries its request sequence
	// number. The resilient server (internal/uxserver) logs one before
	// applying each in-place effect, and its replay deduplicates by
	// per-client applied sequence — the protocol that makes client
	// retries across a machine crash idempotent.
	OpEffect
	numKinds
)

func (k Kind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpCreate:
		return "create"
	case OpWriteFile:
		return "writefile"
	case OpAppend:
		return "append"
	case OpRemove:
		return "remove"
	case OpEffect:
		return "effect"
	}
	return "?"
}

// Record is one logged operation.
type Record struct {
	Seq  uint32
	Kind Kind
	Path string
	Data []byte
}

// Wire format, in 32-bit words:
//
//	w0           magic<<24 | kind<<16 | nwords     (nwords = payload words)
//	w1           seq
//	w2..         payload: pathLen, path bytes packed LE, dataLen, data bytes
//	w2+nwords    checksum over w0..w1+nwords       (flushed last)
const (
	magic      = 0xA5
	headWords  = 2 // header + seq
	maxPayload = 0xFFFF
)

// Errors.
var (
	ErrFull     = errors.New("journal: log full")
	ErrTooLarge = errors.New("journal: record too large")
	ErrCorrupt  = errors.New("journal: corrupt record")
)

// Options configures a log.
type Options struct {
	// SkipFence is a deliberately planted protocol bug for the model
	// checker to catch: Append initiates the write-backs but omits the
	// persist barrier, so the log reports an operation committed while its
	// record is still in the volatile tier. A clean crash before the next
	// unrelated fence silently loses a completed operation; a torn crash
	// can additionally leave a partial record. Never set outside
	// verification.
	SkipFence bool
	// Metrics, when non-nil, receives the journal's counters:
	// journal_records_written, journal_records_replayed,
	// journal_torn_words_discarded.
	Metrics *obs.Registry
}

// Log is a WAL over a caller-provided NVM arena. The arena words are the
// durable tier (they must live on a processor with persistence enabled
// for the crash semantics to mean anything); head and seq are volatile
// and rebuilt by Mount.
type Log struct {
	arena []uniproc.Word
	head  int    // next free word
	seq   uint32 // last durable sequence number
	opt   Options

	written, replayed, torn *obs.Counter
}

// Mount scans the arena — NVM contents only — validating records by
// magic, checksum, and strict sequence continuity. The first invalid
// word ends the valid prefix: everything after it is a torn tail from an
// append the crash interrupted, which Mount zeroes (flushed and fenced)
// before the space is reused. It returns the mounted log, positioned to
// append, and the replayed records in order.
func Mount(e *uniproc.Env, arena []uniproc.Word, opt Options) (*Log, []Record, error) {
	l := &Log{arena: arena, opt: opt}
	if reg := opt.Metrics; reg != nil {
		l.written = reg.Counter("journal_records_written", "records appended and fenced")
		l.replayed = reg.Counter("journal_records_replayed", "valid records decoded at mount")
		l.torn = reg.Counter("journal_torn_words_discarded", "torn-tail words zeroed at mount")
	}
	var recs []Record
	for {
		rec, n, ok := l.decodeAt(e, l.head)
		if !ok {
			break
		}
		if rec.Seq != l.seq+1 {
			break // stale or replayed-out-of-order record: not ours
		}
		recs = append(recs, rec)
		l.seq = rec.Seq
		l.head += n
		if l.replayed != nil {
			l.replayed.Inc()
		}
	}
	// Zero the torn tail. Everything past the valid prefix is debris from
	// at most one interrupted append (plus the zeros the arena started
	// with); the zeroing must itself be durable before the space is
	// reused, or a second crash could resurrect half-overwritten debris.
	if n := l.zeroTail(e); n > 0 && l.torn != nil {
		l.torn.Add(uint64(n))
	}
	return l, recs, nil
}

// zeroTail zeroes every nonzero word from head to the end of the arena,
// returning how many it zeroed. The flush/fence runs only when something
// was actually zeroed.
func (l *Log) zeroTail(e *uniproc.Env) int {
	n := 0
	for i := l.head; i < len(l.arena); i++ {
		e.ChargeALU(1)
		if e.Load(&l.arena[i]) == 0 {
			continue
		}
		e.Store(&l.arena[i], 0)
		e.Flush(&l.arena[i])
		n++
	}
	if n > 0 {
		e.Fence()
	}
	return n
}

// Append encodes rec (Seq is assigned by the log), makes it durable, and
// returns the assigned sequence number. The caller applies the in-place
// update only after Append returns: write-ahead means the log commits
// first.
func (l *Log) Append(e *uniproc.Env, kind Kind, path string, data []byte) (uint32, error) {
	payload := 2 + wordsFor(len(path)) + wordsFor(len(data))
	if payload > maxPayload {
		return 0, fmt.Errorf("%w: %d payload words", ErrTooLarge, payload)
	}
	total := headWords + payload + 1
	if l.head+total > len(l.arena) {
		return 0, fmt.Errorf("%w: %d words free, record needs %d", ErrFull, len(l.arena)-l.head, total)
	}
	seq := l.seq + 1
	w := l.head
	put := func(v uint32) {
		e.Store(&l.arena[w], uniproc.Word(v))
		w++
	}
	put(magic<<24 | uint32(kind)<<16 | uint32(payload))
	put(seq)
	put(uint32(len(path)))
	putBytes(e, l.arena, &w, []byte(path))
	put(uint32(len(data)))
	putBytes(e, l.arena, &w, data)
	e.ChargeALU(total)
	put(uint32(cksum(l.arena[l.head : l.head+total-1])))
	// The checksum is stored, and therefore flushed, last: a torn crash
	// persists a flush-order prefix of these words, so a record with a
	// valid checksum is a whole record.
	for i := l.head; i < l.head+total; i++ {
		e.Flush(&l.arena[i])
	}
	if !l.opt.SkipFence {
		e.Fence()
	}
	l.head += total
	l.seq = seq
	if l.written != nil {
		l.written.Inc()
	}
	return seq, nil
}

// Seq returns the sequence number of the last appended or replayed record.
func (l *Log) Seq() uint32 { return l.seq }

// Free returns how many arena words remain.
func (l *Log) Free() int { return len(l.arena) - l.head }

// decodeAt validates and decodes the record starting at word i.
func (l *Log) decodeAt(e *uniproc.Env, i int) (Record, int, bool) {
	if i >= len(l.arena) {
		return Record{}, 0, false
	}
	h := uint32(e.Load(&l.arena[i]))
	kind := Kind(h >> 16 & 0xFF)
	payload := int(h & 0xFFFF)
	if h>>24 != magic || kind == 0 || kind >= numKinds || payload < 2 {
		return Record{}, 0, false
	}
	total := headWords + payload + 1
	if i+total > len(l.arena) {
		return Record{}, 0, false
	}
	e.ChargeALU(total)
	for j := i; j < i+total; j++ {
		e.Load(&l.arena[j]) // the replay read, charged like any load
	}
	if uint32(l.arena[i+total-1]) != uint32(cksum(l.arena[i:i+total-1])) {
		return Record{}, 0, false
	}
	rec := Record{Seq: uint32(l.arena[i+1]), Kind: kind}
	w := i + headWords
	pathLen := int(l.arena[w])
	w++
	if w+wordsFor(pathLen) >= i+total-1 {
		return Record{}, 0, false // path would overrun the dataLen word
	}
	rec.Path = string(getBytes(l.arena, &w, pathLen))
	dataLen := int(l.arena[w])
	w++
	if payload != 2+wordsFor(pathLen)+wordsFor(dataLen) {
		return Record{}, 0, false
	}
	rec.Data = getBytes(l.arena, &w, dataLen)
	return rec, total, true
}

// wordsFor returns the words needed to pack n bytes.
func wordsFor(n int) int { return (n + 3) / 4 }

// putBytes packs b little-endian into words at *w, zero-padding the last.
func putBytes(e *uniproc.Env, a []uniproc.Word, w *int, b []byte) {
	for i := 0; i < len(b); i += 4 {
		var v uint32
		for j := 0; j < 4 && i+j < len(b); j++ {
			v |= uint32(b[i+j]) << (8 * j)
		}
		e.Store(&a[*w], uniproc.Word(v))
		*w++
	}
}

// getBytes unpacks n bytes from words at *w.
func getBytes(a []uniproc.Word, w *int, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte(uint32(a[*w+i/4]) >> (8 * (i % 4)))
	}
	*w += wordsFor(n)
	return out
}

// cksum folds the words with a multiplicative mix. A zeroed region hashes
// to a nonzero value, so blank arena never validates against a zero
// checksum word.
func cksum(ws []uniproc.Word) uniproc.Word {
	h := uint32(0x9E3779B9)
	for _, w := range ws {
		h = (h ^ uint32(w)) * 0x85EBCA6B
		h ^= h >> 13
	}
	return uniproc.Word(h)
}
