// Package lamport implements software reservation for mutual exclusion
// using Lamport's fast mutual exclusion algorithm, in the two forms the
// paper evaluates (§2.2, §5.1):
//
//   - DirectLock — "protocol (a)": each lock is a full Lamport structure
//     (an owner word x, a reservation word y, and a boolean per thread).
//     This is the most direct implementation of the paper's Figure 1, and
//     it pays the O(n × locks) storage cost the paper complains about; it
//     also recomputes the calling thread's identity (and the address of
//     its "busy" bit) on both entry and exit.
//
//   - Meta — "protocol (b)": a single "meta-atomic object" — one global
//     Lamport lock — guards all regular atomic objects. The paper's
//     Figure 2 bundles a Test-And-Set inside the Lamport entry/exit; a
//     regular lock then costs one bit, but all atomic operations
//     serialize through the meta object, and the thread identity is
//     computed only on entry.
//
// All waiting is done by yielding the processor, the only sensible await
// on a uniprocessor (§2.2).
package lamport

import (
	"fmt"

	"repro/internal/uniproc"
)

// Word aliases the simulated memory word.
type Word = uniproc.Word

// selfCycles models the cost of computing the calling thread's unique
// identifier and the address of its busy bit (cthread_self on the
// DECstation): the cost that makes protocol (a) slower than protocol (b)
// despite fewer memory accesses (§5.1). A dedicated per-thread hardware
// register "would reverse this disparity".
const selfCycles = 7

// DirectLock is protocol (a): a per-lock Lamport fast mutual exclusion
// structure for up to n threads. Thread IDs are the uniproc thread IDs and
// must be < n.
type DirectLock struct {
	n int
	x Word   // reservation: last thread to register intent
	y Word   // ownership: holder + 1, or 0 when free
	b []Word // per-thread busy flags, indexed by thread ID + 1
}

// NewDirectLock creates a lock usable by threads with IDs 0..n-1.
func NewDirectLock(n int) *DirectLock {
	return &DirectLock{n: n, b: make([]Word, n+1)}
}

// Name implements core.Locker.
func (l *DirectLock) Name() string { return "lamport-a" }

// id returns the 1-based Lamport identifier for the calling thread,
// charging the identity-computation cost.
func (l *DirectLock) id(e *uniproc.Env) int {
	e.ChargeALU(selfCycles)
	i := e.Self().ID + 1
	if i > l.n {
		panic(fmt.Sprintf("lamport: thread ID %d exceeds lock capacity %d", i-1, l.n))
	}
	return i
}

// Acquire implements core.Locker with the paper's Figure 1 (lines 1-18).
func (l *DirectLock) Acquire(e *uniproc.Env) {
	i := l.id(e)
	l.enter(e, i)
}

// enter runs the Figure 1 entry protocol for 1-based identifier i.
func (l *DirectLock) enter(e *uniproc.Env, i int) {
	w := Word(i)
	bi := &l.b[i]
	for {
		e.Store(bi, 1) // b[i] := true
		e.Store(&l.x, w)
		if e.Load(&l.y) != 0 { // contention
			e.Store(bi, 0)
			for e.Load(&l.y) != 0 {
				e.Yield() // await (y = 0)
			}
			continue // goto start
		}
		e.Store(&l.y, w)
		if e.Load(&l.x) != w { // collision
			e.Store(bi, 0)
			for j := 1; j <= l.n; j++ {
				for e.Load(&l.b[j]) != 0 {
					e.Yield() // await (b[j] = false)
				}
			}
			if e.Load(&l.y) != w {
				for e.Load(&l.y) != 0 {
					e.Yield() // await (y = 0)
				}
				continue // goto start
			}
		}
		return // critical section
	}
}

// Release implements core.Locker with Figure 1 lines 21-22. Protocol (a)
// recomputes the thread identity on exit.
func (l *DirectLock) Release(e *uniproc.Env) {
	i := l.id(e)
	l.exit(e, i)
}

// exit runs the Figure 1 exit protocol.
func (l *DirectLock) exit(e *uniproc.Env, i int) {
	e.Store(&l.y, 0)
	e.Store(&l.b[i], 0)
}

// Meta is protocol (b): one Lamport meta-lock guarding all regular atomic
// objects. It implements core.Mechanism, so any number of one-word
// Test-And-Set locks can share it.
type Meta struct {
	inner *DirectLock
}

// NewMeta creates the meta-atomic object for up to n threads.
func NewMeta(n int) *Meta {
	return &Meta{inner: NewDirectLock(n)}
}

// Name implements core.Mechanism.
func (m *Meta) Name() string { return "lamport-b" }

// TestAndSet implements core.Mechanism with the paper's Figure 2: the
// reservation protocol brackets a plain read-modify-write of the user's
// word. The thread identity is computed once, on entry.
func (m *Meta) TestAndSet(e *uniproc.Env, w *Word) Word {
	i := m.inner.id(e)
	m.inner.enter(e, i)
	old := e.Load(w)
	e.ChargeALU(1)
	e.Store(w, 1)
	m.inner.exit(e, i)
	return old
}

// Clear implements core.Mechanism (Figure 2's AtomicClear: a plain store).
func (m *Meta) Clear(e *uniproc.Env, w *Word) {
	e.Store(w, 0)
}

// FetchAndAdd implements core.Mechanism under the meta lock.
func (m *Meta) FetchAndAdd(e *uniproc.Env, w *Word, delta Word) Word {
	i := m.inner.id(e)
	m.inner.enter(e, i)
	old := e.Load(w)
	e.ChargeALU(1)
	e.Store(w, old+delta)
	m.inner.exit(e, i)
	return old
}
