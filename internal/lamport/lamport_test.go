package lamport

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/uniproc"
)

// Interface conformance.
var (
	_ core.Locker    = (*DirectLock)(nil)
	_ core.Mechanism = (*Meta)(nil)
)

// directWorkload runs n threads incrementing a counter inside a DirectLock
// critical section, also asserting mutual exclusion with an occupancy flag.
func directWorkload(q, seed uint64, n, iters int) (Word, bool, error) {
	p := uniproc.New(uniproc.Config{Quantum: q, JitterSeed: seed})
	l := NewDirectLock(n)
	var counter Word
	violated := false
	inCS := false
	for i := 0; i < n; i++ {
		p.Go("worker", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				l.Acquire(e)
				if inCS {
					violated = true
				}
				inCS = true
				v := e.Load(&counter)
				e.ChargeALU(3)
				e.Store(&counter, v+1)
				inCS = false
				l.Release(e)
				e.ChargeALU(2)
			}
		})
	}
	err := p.Run()
	return counter, violated, err
}

func TestDirectLockMutualExclusion(t *testing.T) {
	const n, iters = 4, 150
	for _, q := range []uint64{17, 53, 211, 997, 50000} {
		got, violated, err := directWorkload(q, 0, n, iters)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if violated {
			t.Errorf("q=%d: two threads in the critical section", q)
		}
		if got != n*iters {
			t.Errorf("q=%d: counter = %d, want %d", q, got, n*iters)
		}
	}
}

// Property: mutual exclusion holds for arbitrary quantum and jitter.
func TestQuickDirectLock(t *testing.T) {
	f := func(q16 uint16, seed uint64) bool {
		q := uint64(q16)%600 + 11
		got, violated, err := directWorkload(q, seed, 3, 60)
		return err == nil && !violated && got == 180
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMetaMechanism(t *testing.T) {
	const n, iters = 4, 150
	for _, q := range []uint64{19, 61, 223, 50000} {
		p := uniproc.New(uniproc.Config{Quantum: q})
		m := NewMeta(n)
		lock := core.NewTASLock(m)
		var counter Word
		for i := 0; i < n; i++ {
			p.Go("worker", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					lock.Acquire(e)
					v := e.Load(&counter)
					e.ChargeALU(1)
					e.Store(&counter, v+1)
					lock.Release(e)
				}
			})
		}
		if err := p.Run(); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if counter != n*iters {
			t.Errorf("q=%d: counter = %d, want %d", q, counter, n*iters)
		}
	}
}

func TestMetaSerializesUnrelatedLocks(t *testing.T) {
	// Two unrelated TAS locks sharing the meta object: both must stay
	// correct even when used concurrently (the bundling serializes them).
	p := uniproc.New(uniproc.Config{Quantum: 73})
	m := NewMeta(4)
	lockA := core.NewTASLock(m)
	lockB := core.NewTASLock(m)
	var ca, cb Word
	const iters = 100
	for i := 0; i < 2; i++ {
		p.Go("a", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				lockA.Acquire(e)
				v := e.Load(&ca)
				e.Store(&ca, v+1)
				lockA.Release(e)
			}
		})
		p.Go("b", func(e *uniproc.Env) {
			for it := 0; it < iters; it++ {
				lockB.Acquire(e)
				v := e.Load(&cb)
				e.Store(&cb, v+1)
				lockB.Release(e)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if ca != 2*iters || cb != 2*iters {
		t.Errorf("counters = %d,%d want %d", ca, cb, 2*iters)
	}
}

func TestMetaFetchAndAdd(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 41})
	m := NewMeta(3)
	var w Word
	const n, iters = 3, 80
	for i := 0; i < n; i++ {
		p.Go("adder", func(e *uniproc.Env) {
			for j := 0; j < iters; j++ {
				m.FetchAndAdd(e, &w, 2)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if w != n*iters*2 {
		t.Errorf("w = %d, want %d", w, n*iters*2)
	}
}

func TestMetaClear(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	m := NewMeta(1)
	var w Word = 1
	p.Go("main", func(e *uniproc.Env) { m.Clear(e, &w) })
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Error("clear did not clear")
	}
}

func TestDirectLockCapacityPanics(t *testing.T) {
	p := uniproc.New(uniproc.Config{})
	l := NewDirectLock(1)
	p.Go("a", func(e *uniproc.Env) {
		e.Fork("b", func(e *uniproc.Env) {
			l.Acquire(e) // thread ID 1 -> Lamport id 2 > capacity 1
		})
	})
	if err := p.Run(); err == nil {
		t.Error("expected capacity panic")
	}
}

// Protocol (a) must cost more cycles than protocol (b) on the DECstation
// profile because of the double identity computation (§5.1, Table 1:
// 1.51 vs 1.16 us).
func TestProtocolAMoreExpensiveThanB(t *testing.T) {
	run := func(useMeta bool) uint64 {
		p := uniproc.New(uniproc.Config{Quantum: 1 << 40})
		var counter Word
		var lock core.Locker
		if useMeta {
			lock = core.NewTASLock(NewMeta(2))
		} else {
			lock = NewDirectLock(2)
		}
		p.Go("main", func(e *uniproc.Env) {
			for i := 0; i < 1000; i++ {
				lock.Acquire(e)
				v := e.Load(&counter)
				e.ChargeALU(1)
				e.Store(&counter, v+1)
				lock.Release(e)
			}
		})
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Clock()
	}
	a, b := run(false), run(true)
	if a <= b {
		t.Errorf("protocol a (%d cycles) not slower than protocol b (%d)", a, b)
	}
}

func TestNames(t *testing.T) {
	if NewDirectLock(1).Name() != "lamport-a" {
		t.Error("direct lock name")
	}
	if NewMeta(1).Name() != "lamport-b" {
		t.Error("meta name")
	}
}
