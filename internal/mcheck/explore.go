package mcheck

import (
	"fmt"
	"sort"
)

// Explorer drives one model through a bounded slice of its schedule
// space.
type Explorer struct {
	Model Model
	Opt   Options

	// MaxDecisions bounds how many forced decisions a schedule may carry
	// (default 2). The space grows as horizon^MaxDecisions; the bound is
	// the context-bounding argument for why small values already cover
	// the interesting interleavings.
	MaxDecisions int
	// Horizon caps the largest decision ordinal (0: the natural end of
	// each run).
	Horizon uint64
	// MaxSchedules is a safety cap on executed schedules (0: none).
	MaxSchedules int
}

// Report is the outcome of an exploration.
type Report struct {
	ModelName string
	Params    map[string]string
	Mode      string // "exhaustive" or "random"
	Seed      uint64 // random mode only
	// Bounds actually used.
	MaxDecisions int
	Horizon      uint64
	// Schedules executed, distinct normalized states seen, and prefixes
	// pruned as already-covered.
	Schedules int
	States    int
	Pruned    int
	// Truncated is set when MaxSchedules cut the walk short: the space
	// was NOT covered to the stated bound.
	Truncated bool
	// Counterexample is nil when every schedule satisfied the invariants.
	Counterexample *Counterexample
}

// Counterexample is a failing schedule, minimized.
type Counterexample struct {
	Schedule   *Schedule
	Violations []Violation
	// FoundLen is the decision count before shrinking.
	FoundLen int
}

// Passed reports whether the exploration covered its bounded space
// without a violation.
func (r *Report) Passed() bool { return r.Counterexample == nil && !r.Truncated }

func (r *Report) String() string {
	s := fmt.Sprintf("%s[%s] %s k<=%d horizon=%d: %d schedules, %d states, %d pruned",
		r.ModelName, paramString(r.Params), r.Mode, r.MaxDecisions, r.Horizon, r.Schedules, r.States, r.Pruned)
	if r.Truncated {
		s += " (TRUNCATED)"
	}
	if r.Counterexample != nil {
		s += fmt.Sprintf(" — VIOLATION %v (minimized to %d decisions from %d)",
			r.Counterexample.Violations[0], len(r.Counterexample.Schedule.Decisions), r.Counterexample.FoundLen)
	}
	return s
}

func paramString(p map[string]string) string {
	return (&Schedule{Params: p}).ParamString()
}

func (e *Explorer) defaults() {
	if e.MaxDecisions <= 0 {
		e.MaxDecisions = 2
	}
}

// newReport seeds a report with the exploration's bounds.
func (e *Explorer) newReport(mode string) *Report {
	return &Report{
		ModelName:    e.Model.Name(),
		Params:       e.Model.Params(),
		Mode:         mode,
		MaxDecisions: e.MaxDecisions,
		Horizon:      e.Horizon,
	}
}

// found minimizes a failing schedule into the report's counterexample.
func (e *Explorer) found(rep *Report, ds []Decision, vio []Violation) {
	sched := &Schedule{
		Model:     e.Model.Name(),
		Params:    e.Model.Params(),
		Decisions: append([]Decision(nil), ds...),
	}
	shrunk, svio := Shrink(e.Model, sched, e.Opt)
	if len(svio) == 0 {
		svio = vio
	}
	rep.Counterexample = &Counterexample{Schedule: shrunk, Violations: svio, FoundLen: len(ds)}
}

// Exhaustive walks every schedule of up to MaxDecisions forced decisions
// of the model's primary action, each placed at any event ordinal up to
// the horizon, depth-first. On pausable models each prefix pauses right
// after its last decision and is pruned if its normalized state hash has
// been seen with at least as much remaining decision budget — two
// prefixes parking the substrate in the same state have the same
// futures, so the larger remaining budget subsumes the smaller.
//
// The walk stops at the first violation, which is then shrunk. A nil
// counterexample in the report means the bounded space is clean.
func (e *Explorer) Exhaustive() (*Report, error) {
	e.defaults()
	rep := e.newReport("exhaustive")
	type seenInfo struct{ remaining int }
	seen := map[[32]byte]seenInfo{}
	// stack of schedule prefixes; each entry's decisions are sorted.
	stack := [][]Decision{nil}
	for len(stack) > 0 {
		ds := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.MaxSchedules > 0 && rep.Schedules >= e.MaxSchedules {
			rep.Truncated = true
			break
		}
		rep.Schedules++
		in, err := e.Model.New(ds, e.Opt)
		if err != nil {
			return nil, err
		}
		if len(ds) > 0 && e.Model.Pausable() {
			in.RunTo(ds[len(ds)-1].At)
			if vio := in.Violations(); len(vio) > 0 {
				rep.States = len(seen)
				e.found(rep, ds, vio)
				return rep, nil
			}
			if h, ok := in.StateHash(); ok {
				remaining := e.MaxDecisions - len(ds)
				if info, dup := seen[h]; dup && info.remaining >= remaining {
					rep.Pruned++
					continue
				}
				seen[h] = seenInfo{remaining: remaining}
			}
		}
		in.RunToEnd()
		if vio := in.Violations(); len(vio) > 0 {
			rep.States = len(seen)
			e.found(rep, ds, vio)
			return rep, nil
		}
		if len(ds) >= e.MaxDecisions {
			continue
		}
		var base uint64
		if len(ds) > 0 {
			base = ds[len(ds)-1].At
		}
		hi := in.Cursor()
		if e.Horizon > 0 && e.Horizon < hi {
			hi = e.Horizon
		}
		// Push descending so the DFS pops ordinals in ascending order.
		for at := hi; at > base; at-- {
			ext := make([]Decision, len(ds)+1)
			copy(ext, ds)
			ext[len(ds)] = Decision{At: at, Act: e.Model.Primary()}
			stack = append(stack, ext)
		}
	}
	rep.States = len(seen)
	return rep, nil
}

// Random samples the schedule space: `schedules` runs, each carrying 1..
// MaxDecisions decisions at seeded-random ordinals. Every sample is a
// pure function of (seed, index), so a failure replays from the seed
// alone — and is still shrunk and serialized like any counterexample.
// Actions beyond the model's primary can be mixed in via acts (nil: the
// primary only).
func (e *Explorer) Random(seed uint64, schedules int, acts []Action) (*Report, error) {
	e.defaults()
	rep := e.newReport("random")
	rep.Seed = seed
	if len(acts) == 0 {
		acts = []Action{e.Model.Primary()}
	}
	// Probe the undisturbed run for its natural length (and check it).
	probe, err := e.Model.New(nil, e.Opt)
	if err != nil {
		return nil, err
	}
	probe.RunToEnd()
	rep.Schedules++
	if vio := probe.Violations(); len(vio) > 0 {
		e.found(rep, nil, vio)
		return rep, nil
	}
	span := probe.Cursor()
	if e.Horizon > 0 && e.Horizon < span {
		span = e.Horizon
	}
	if span == 0 {
		span = 1
	}
	for i := 0; i < schedules; i++ {
		r := newRand(seed, uint64(i))
		n := 1 + int(r.next()%uint64(e.MaxDecisions))
		ords := map[uint64]bool{}
		var ds []Decision
		for len(ds) < n {
			at := r.next()%span + 1
			if ords[at] {
				continue
			}
			ords[at] = true
			ds = append(ds, Decision{At: at, Act: acts[r.next()%uint64(len(acts))]})
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].At < ds[b].At })
		rep.Schedules++
		vio, err := RunOnce(e.Model, ds, e.Opt)
		if err != nil {
			return nil, err
		}
		if len(vio) > 0 {
			e.found(rep, ds, vio)
			return rep, nil
		}
	}
	return rep, nil
}
