package mcheck

import (
	"strings"
	"testing"
)

func build(t *testing.T, name string, over map[string]string) Model {
	t.Helper()
	m, err := BuildModel(name, over)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reproLine is what a failing test prints: the copy-paste command that
// replays the exact exploration (satellite: one-line repro on failure).
func reproLine(rep *Report) string {
	cmd := "go run ./cmd/rascheck -model " + rep.ModelName
	if ps := paramString(rep.Params); ps != "" {
		cmd += " -params " + ps
	}
	cmd += " -mode " + rep.Mode
	if rep.Mode == "random" {
		cmd += " -seed " + hex(rep.Seed) + " -schedules 64"
	}
	return cmd
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var b [16]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v&15]
		v >>= 4
	}
	return "0x" + string(b[i:])
}

// The paper's Figure-3 sequence (registered TAS) survives a preemption at
// EVERY instruction boundary, alone and in pairs: the bounded exhaustive
// walk over 2 workers must find no violation. This is the acceptance
// criterion "rascheck exhaustively verifies mutual exclusion for the
// Figure-3 counter RAS (2 threads, preemption at every instruction)".
func TestExhaustiveFigure3Registered(t *testing.T) {
	e := &Explorer{Model: build(t, "counter", map[string]string{"mech": "registered"}), MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	if rep.Schedules < 100 {
		t.Errorf("only %d schedules explored — bound too tight to mean anything", rep.Schedules)
	}
	t.Logf("%v", rep)
}

// Same walk for the Figure-5 designated sequence.
func TestExhaustiveFigure5Designated(t *testing.T) {
	e := &Explorer{Model: build(t, "counter", map[string]string{"mech": "designated"}), MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The unprotected control (plain TAS, no recovery) must be caught: there
// is an interleaving of two forced preemptions that breaches mutual
// exclusion, and the checker must find and shrink it.
func TestExhaustiveCatchesUnprotected(t *testing.T) {
	m := build(t, "counter", map[string]string{"mech": "none"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the unprotected TAS: %v", rep)
	}
	if len(cex.Schedule.Decisions) == 0 || len(cex.Schedule.Decisions) > 2 {
		t.Errorf("counterexample has %d decisions, want 1..2", len(cex.Schedule.Decisions))
	}
	// The minimized schedule must still fail when replayed cold.
	vio, err := RunOnce(m, cex.Schedule.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("minimized counterexample does not replay: %v", cex.Schedule.Decisions)
	}
	t.Logf("%v", rep)
}

// The deliberately broken two-store sequence: the verifier rejects it,
// the harness installs it anyway, and the checker must catch it with a
// counterexample of at most 6 steps (it shrinks to a single preemption
// between the two stores), which must replay from its .sched
// serialization. This is the second acceptance criterion.
func TestBrokenTwoStoreCaught(t *testing.T) {
	m := build(t, "broken2store", nil)
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the two-store sequence: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n > 6 {
		t.Errorf("counterexample has %d decisions, want <= 6", n)
	}
	// Round-trip through the .sched serialization and replay.
	path := t.TempDir() + "/broken.sched"
	if err := cex.Schedule.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := BuildSchedule(back)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := RunOnce(rm, back.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("deserialized counterexample does not replay (repro: go run ./cmd/rascheck -replay %s)", path)
	}
	if !strings.Contains(vio[0].Kind, "counter") {
		t.Errorf("unexpected violation kind %q", vio[0].Kind)
	}
	t.Logf("%v", rep)
}

// The recoverable owner+epoch lock survives a kill at EVERY instruction
// boundary: dead-owner repair, audited by watchpoints, holds across the
// whole single-kill schedule space.
func TestExhaustiveRecoverableKills(t *testing.T) {
	e := &Explorer{Model: build(t, "recoverable", nil), MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// Random mode: seeded sampling must find the broken two-store violation
// (any sample that preempts between the stores fails), shrink it, and be
// exactly reproducible from the seed.
func TestRandomFindsAndReplays(t *testing.T) {
	m := build(t, "broken2store", nil)
	run := func() *Report {
		e := &Explorer{Model: m, MaxDecisions: 3}
		rep, err := e.Random(0xDECAF, 200, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Counterexample == nil {
		t.Fatalf("random exploration missed the two-store sequence: %v", a)
	}
	if b.Counterexample == nil {
		t.Fatal("second identical exploration disagrees")
	}
	if got, want := a.Counterexample.Schedule.ParamString(), b.Counterexample.Schedule.ParamString(); got != want {
		t.Errorf("replayed params differ: %q vs %q", got, want)
	}
	da, db := a.Counterexample.Schedule.Decisions, b.Counterexample.Schedule.Decisions
	if len(da) != len(db) {
		t.Fatalf("same seed, different counterexamples: %v vs %v", da, db)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed, different counterexamples: %v vs %v", da, db)
		}
	}
	t.Logf("%v", a)
}

// Pruning must fire: two different prefixes frequently park the kernel in
// the same normalized state, and the walk gets cheaper for it.
func TestPruningFires(t *testing.T) {
	e := &Explorer{Model: build(t, "counter", map[string]string{"mech": "registered"}), MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned == 0 {
		t.Errorf("no prefixes pruned in %d schedules — state hashing is not collapsing anything", rep.Schedules)
	}
	if rep.States == 0 {
		t.Error("no states recorded")
	}
}

// The MaxSchedules safety cap truncates the walk and says so.
func TestTruncation(t *testing.T) {
	e := &Explorer{Model: build(t, "counter", nil), MaxDecisions: 2, MaxSchedules: 5}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Passed() {
		t.Errorf("cap of 5 did not truncate: %v", rep)
	}
}
