package mcheck

import (
	"crypto/sha256"

	"repro/internal/vmach"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// State hashing for DFS pruning. Two schedule prefixes that park the
// substrate in the same state have identical futures, so one subtree
// suffices — but "same state" must mean behaviorally same, and the
// canonical checkpoint encodings (PR 2/PR 4) include accounting that
// differs between behaviorally identical states: cycle counters, stat
// tallies, the absolute timer deadline. normalize* zeroes exactly the
// fields that cannot influence any future transition under the model
// checker's run conditions — an effectively infinite quantum (no timer
// preemption), no watchdog, no page evictions, a cycle budget far above
// any bounded run — and the hash is sha256 of the normalized encoding.
// Everything behavioral (registers, PCs, memory words, run queue order,
// wait queues, registration ranges, ll/sc reservations, write buffers)
// passes through untouched.

func normalizeKernel(s *kernel.Snapshot) {
	s.SliceAt = 0            // absolute timer deadline: cycles + quantum
	s.Steps = 0              // the decision cursor itself
	s.Stats = kernel.Stats{} // pure accounting
	for i := range s.Threads {
		t := &s.Threads[i]
		t.Suspensions = 0 // accounting
		t.Restarts = 0    // accounting
		// Watchdog bookkeeping: dead state without a watchdog installed.
		t.SeqPC = 0
		t.SeqRestarts = 0
		t.Extended = false
		t.BoostSlice = false
	}
	if s.Machine != nil {
		s.Machine.Stats = vmach.Stats{}
		if s.Machine.Mem != nil {
			s.Machine.Mem.PageFaults = 0
		}
	}
}

// hashKernel is the canonical state hash of a paused kernel.
func hashKernel(k *kernel.Kernel) [32]byte {
	s := k.Capture()
	normalizeKernel(s)
	return sha256.Sum256(s.Encode())
}

// hashSMP hashes a paused SMP system plus the model checker's own
// scheduler state (which CPU holds the interleaving and how far into its
// turn it is — behavioral state the snapshot doesn't carry).
func hashSMP(s *smp.System, cur int, turn uint64) [32]byte {
	snap := s.Capture()
	for _, ks := range snap.Kernels {
		normalizeKernel(ks)
	}
	snap.Mem.PageFaults = 0
	// The coherence directory only modulates cycle costs, never values
	// or control flow, and cycles are themselves normalized away.
	snap.Lines = nil
	enc := snap.Encode()
	extra := []byte{
		byte(cur), byte(cur >> 8),
		byte(turn), byte(turn >> 8), byte(turn >> 16), byte(turn >> 24),
		byte(turn >> 32), byte(turn >> 40), byte(turn >> 48), byte(turn >> 56),
	}
	return sha256.Sum256(append(enc, extra...))
}
