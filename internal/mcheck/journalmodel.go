package mcheck

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/guest"
	"repro/internal/journal"
	"repro/internal/uniproc"
	"repro/internal/vmach"
	"repro/internal/vmach/kernel"
)

// The journaling model family: the crash-consistent structures this
// layer adds — the guest WAL transaction (vmach), the memfs journal
// (uniproc), and the persistent stack/queue (uniproc) — each crashed
// exhaustively at every flush/fence boundary, clean and torn, including
// crashes that land inside recovery itself (K=2). The ordinal space
// everywhere is retired persist operations, accumulated across reboots,
// exactly like the persist model.

// ---------------------------------------------------------------------
// vmach: guest.JournalProgram under crashes at every persist boundary.

// journalInstance is the persistInstance pattern for the guest journal:
// a pausable vmach run where a crash is a transition — discard the
// volatile tier (torn or clean, per the decision's action), audit the
// surviving NVM image for recoverable consistency, and reboot the same
// binary over it without reloading.
type journalInstance struct {
	prog *asm.Program
	mem  *vmach.Memory
	k    *kernel.Kernel
	opt  Options
	vio  *violations

	ds   []Decision
	next int

	opsBase uint64
	boots   int

	jlog, applied, va, vb uint32
	target                uint32

	done   bool
	ended  bool
	runErr error
}

func journalModel(p map[string]string) (Model, error) {
	target, err := paramInt(p, "target")
	if err != nil {
		return nil, err
	}
	var src string
	switch p["mode"] {
	case "redo", "undo":
		src = guest.JournalProgram(p["mode"], target)
	case "nofence":
		src = guest.NoFenceJournalProgram(target)
	default:
		return nil, fmt.Errorf("mcheck: journal: unknown mode %q", p["mode"])
	}
	primary := ActCrashVolatile
	if p["torn"] == "1" {
		primary = ActCrashTorn
	} else if p["torn"] != "0" {
		return nil, fmt.Errorf("mcheck: journal: torn must be 0 or 1, got %q", p["torn"])
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("mcheck: journal: %v", err)
	}
	m := &vmachModel{name: "journal", params: p, primary: primary, prog: prog}
	m.build = func(m *vmachModel, ds []Decision, opt Options) (Instance, error) {
		for _, d := range ds {
			if d.Act != ActCrashVolatile && d.Act != ActCrashTorn {
				return nil, fmt.Errorf("mcheck: journal: only crash decisions apply (got %s)", d.Act)
			}
		}
		mem := vmach.NewMemory()
		mem.EnablePersistence()
		in := &journalInstance{
			prog: m.prog, mem: mem, opt: opt, vio: &violations{},
			ds:      ds,
			jlog:    m.prog.MustSymbol("jlog"),
			applied: m.prog.MustSymbol("applied"),
			va:      m.prog.MustSymbol("va"),
			vb:      m.prog.MustSymbol("vb"),
			target:  uint32(target),
		}
		in.boot()
		return in, nil
	}
	return m, nil
}

// boot starts a kernel over the shared (surviving) memory. Only the
// first boot loads the image: recovery must read what the crash left.
func (in *journalInstance) boot() {
	k := kernel.New(kernel.Config{
		Strategy:  &kernel.Designated{},
		CheckAt:   kernel.CheckAtResume,
		Quantum:   modelQuantum,
		MaxCycles: modelBudget,
		Memory:    in.mem,
	})
	if in.opt.Tracer != nil {
		k.Tracer = in.opt.Tracer
	}
	in.k = k
	if in.boots == 0 {
		k.Load(in.prog)
	}
	k.Spawn(in.prog.MustSymbol("main"), guest.StackTop(0))
}

// cursor counts persist operations retired across all boots.
func (in *journalInstance) cursor() uint64 {
	return in.opsBase + in.k.M.Stats.Flushes + in.k.M.Stats.Fences
}

func (in *journalInstance) step() {
	fin, err := in.k.StepOne()
	if in.next < len(in.ds) && in.cursor() >= in.ds[in.next].At {
		in.crash()
		return
	}
	if fin {
		in.done = true
		in.runErr = err
	}
}

// crash discards the volatile tier — torn write-backs when the decision
// says so, the tear derived from the decision ordinal so a .sched
// replays the exact same split — audits the NVM image left behind, and
// reboots.
func (in *journalInstance) crash() {
	d := in.ds[in.next]
	in.next++
	in.opsBase += in.k.M.Stats.Flushes + in.k.M.Stats.Fences
	if d.Act == ActCrashTorn {
		in.mem.DiscardUnflushedTorn(d.At)
	} else {
		in.mem.DiscardUnflushed()
	}
	in.checkNVM(fmt.Sprintf("crash at persist op %d", d.At))
	in.boots++
	in.boot()
}

// checkNVM simulates the guest's own recovery decision over the NVM
// image and demands the recovered state is consistent: va == vb, within
// the target. This is the journal's core invariant — every reachable
// NVM image is one a reboot repairs.
func (in *journalInstance) checkNVM(where string) {
	seq := uint32(in.mem.NVPeek(in.jlog))
	xa := uint32(in.mem.NVPeek(in.jlog + 4))
	xb := uint32(in.mem.NVPeek(in.jlog + 8))
	ck := uint32(in.mem.NVPeek(in.jlog + 12))
	ap := uint32(in.mem.NVPeek(in.applied))
	a := uint32(in.mem.NVPeek(in.va))
	b := uint32(in.mem.NVPeek(in.vb))
	if guest.JournalCksum(seq, xa, xb) == ck && seq == ap+1 {
		// A committed in-flight record: recovery re-stores its values
		// (redo: news roll forward; undo: olds roll back).
		a, b = xa, xb
	}
	if a != b {
		in.vio.add("journal-consistency",
			"%s: recovered state va=%d vb=%d — the words diverged and no durable record repairs them", where, a, b)
	}
	if a > in.target {
		in.vio.add("journal-consistency", "%s: recovered va=%d exceeds target %d", where, a, in.target)
	}
}

func (in *journalInstance) RunTo(at uint64) bool {
	for !in.done && in.cursor() < at {
		in.step()
	}
	return in.done
}

func (in *journalInstance) RunToEnd() {
	for !in.done {
		in.step()
	}
	if in.ended {
		return
	}
	in.ended = true
	switch err := in.runErr; {
	case err == nil:
	case errors.Is(err, kernel.ErrDeadlock):
		in.vio.add("deadlock", "%v", err)
	case errors.Is(err, kernel.ErrLivelock):
		in.vio.add("restart-livelock", "%v", err)
	case errors.Is(err, kernel.ErrBudget):
		in.vio.add("budget", "%v", err)
	default:
		in.vio.add("abort", "%v", err)
	}
	a, b := uint32(in.mem.Peek(in.va)), uint32(in.mem.Peek(in.vb))
	if a != in.target || b != in.target {
		in.vio.add("journal-consistency", "final state va=%d vb=%d after boot %d, want both %d",
			a, b, in.boots+1, in.target)
	}
	in.checkNVM("final NVM image")
}

func (in *journalInstance) Cursor() uint64          { return in.cursor() }
func (in *journalInstance) Violations() []Violation { return in.vio.list }

// StateHash extends the canonical kernel hash exactly as the persist
// model does: the cursor, the decision index, and the boot count are
// behavioral state the normalized kernel image doesn't carry.
func (in *journalInstance) StateHash() ([32]byte, bool) {
	h := hashKernel(in.k)
	var extra [16]byte
	binary.LittleEndian.PutUint64(extra[:8], in.cursor())
	binary.LittleEndian.PutUint64(extra[8:], uint64(in.next)|uint64(in.boots)<<32)
	return sha256.Sum256(append(h[:], extra[:]...)), true
}

// ---------------------------------------------------------------------
// uniproc: the memfs journal and the persistent structures. Replay-only
// models (the uniproc runtime runs whole schedules), with the crash
// decisions rendered as a chaos injector at PointPersist. A decision
// ordinal is global across reboots: each boot's injector sees the
// decisions shifted down by the persist ops earlier boots retired.

// shiftDecisions makes ds boot-relative: decisions at or before base
// already fired in an earlier boot; later ones shift down by base.
func shiftDecisions(ds []Decision, base uint64) []Decision {
	var out []Decision
	for _, d := range ds {
		if d.At > base {
			out = append(out, Decision{At: d.At - base, Act: d.Act})
		}
	}
	return out
}

// jfsScript is the memfs-journal workload: every operation kind the
// journal logs, with a remove so replay must handle deletion too.
var jfsScript = []journal.Record{
	{Kind: journal.OpMkdir, Path: "/d"},
	{Kind: journal.OpCreate, Path: "/d/a"},
	{Kind: journal.OpWriteFile, Path: "/d/a", Data: []byte("alpha")},
	{Kind: journal.OpAppend, Path: "/d/a", Data: []byte("-beta")},
	{Kind: journal.OpCreate, Path: "/d/b"},
	{Kind: journal.OpRemove, Path: "/d/b"},
}

const jfsArenaWords = 1024

// memfsJournalModel crashes the JFS script workload at every persist
// boundary. The invariant is the write-ahead contract: after any crash,
// the remounted tree equals a PREFIX of the script — all-or-nothing per
// operation, at least every operation that returned, never reordered.
// variant=nofence mounts with the planted Options.SkipFence bug, which
// this model must catch as journal-loss.
func memfsJournalModel(p map[string]string) (Model, error) {
	var jopt journal.Options
	switch p["variant"] {
	case "fenced":
	case "nofence":
		jopt.SkipFence = true
	default:
		return nil, fmt.Errorf("mcheck: memfs-journal: unknown variant %q", p["variant"])
	}
	primary := ActCrashVolatile
	if p["torn"] == "1" {
		primary = ActCrashTorn
	} else if p["torn"] != "0" {
		return nil, fmt.Errorf("mcheck: memfs-journal: torn must be 0 or 1, got %q", p["torn"])
	}
	// The reference states are fault-free and shared by every instance.
	states, err := jfsPrefixStates()
	if err != nil {
		return nil, fmt.Errorf("mcheck: memfs-journal: %v", err)
	}
	m := &uniModel{name: "memfs-journal", params: p, primary: primary}
	m.run = func(ds []Decision, opt Options, vio *violations) uint64 {
		arena := make([]uniproc.Word, jfsArenaWords)
		var cum uint64
		returned := 0
		first := true
		for boot := 0; boot < len(ds)+2; boot++ {
			proc := uniproc.New(uniproc.Config{
				Quantum:   modelQuantum,
				MaxCycles: modelBudget,
				Faults:    newInjector(chaos.PointPersist, shiftDecisions(ds, cum)),
			})
			proc.Tracer = opt.Tracer
			proc.EnablePersistence()
			var mountErr error
			var state string
			proc.Go("main", func(e *uniproc.Env) {
				j, err := journal.MountFS(e, cthreads.New(core.NewRAS()), arena, jopt)
				if err != nil {
					mountErr = err
					return
				}
				if first {
					for _, r := range jfsScript {
						if err := jfsApply(e, j, r); err != nil {
							mountErr = fmt.Errorf("op %d: %w", returned, err)
							return
						}
						returned++
					}
				}
				state = jfsDump(e, j)
			})
			err := proc.Run()
			cum += proc.PersistOps()
			if errors.Is(err, uniproc.ErrMachineCrash) {
				first = false
				continue // reboot over the surviving arena
			}
			classifyUniErr(err, vio)
			if mountErr != nil {
				vio.add("recovery", "boot %d: %v", boot+1, mountErr)
				return cum
			}
			// A boot that ran to completion: on the first boot the state
			// is the full script; on a reboot, whatever replay rebuilt.
			// Distinct prefixes can share a tree (an op and its inverse
			// cancel), so the check is against the two admissible states
			// directly, not a search for a matching prefix: every
			// returned op must be present, plus at most the one op in
			// flight at the crash.
			okA := state == states[returned]
			okB := returned+1 < len(states) && state == states[returned+1]
			if !okA && !okB {
				vio.add("journal-loss",
					"remounted tree is not the state after the %d returned ops (or %d):\n%s",
					returned, returned+1, state)
			}
			return cum
		}
		vio.add("stuck", "crash decisions kept firing after %d boots", len(ds)+2)
		return cum
	}
	return m, nil
}

// jfsApply performs one scripted operation through the journal.
func jfsApply(e *uniproc.Env, j *journal.JFS, r journal.Record) error {
	switch r.Kind {
	case journal.OpMkdir:
		return j.Mkdir(e, r.Path)
	case journal.OpCreate:
		return j.Create(e, r.Path)
	case journal.OpWriteFile:
		return j.WriteFile(e, r.Path, r.Data)
	case journal.OpAppend:
		return j.Append(e, r.Path, r.Data)
	case journal.OpRemove:
		return j.Remove(e, r.Path)
	}
	return fmt.Errorf("mcheck: unknown journal op %d", r.Kind)
}

// jfsDump flattens the tree to a canonical string for state comparison.
func jfsDump(e *uniproc.Env, j *journal.JFS) string {
	var sb strings.Builder
	var walk func(dir string)
	walk = func(dir string) {
		names, err := j.ReadDir(e, dir)
		if err != nil {
			panic(err)
		}
		sort.Strings(names)
		for _, name := range names {
			p := dir + "/" + name
			if dir == "/" {
				p = "/" + name
			}
			isDir, _, err := j.Stat(e, p)
			if err != nil {
				panic(err)
			}
			if isDir {
				fmt.Fprintf(&sb, "%s/\n", p)
				walk(p)
			} else {
				data, _ := j.ReadFile(e, p)
				fmt.Fprintf(&sb, "%s=%q\n", p, data)
			}
		}
	}
	walk("/")
	return sb.String()
}

// jfsPrefixStates runs each script prefix on a fault-free processor and
// returns its canonical dump (index p = state after the first p ops).
func jfsPrefixStates() ([]string, error) {
	states := make([]string, len(jfsScript)+1)
	arena := make([]uniproc.Word, jfsArenaWords)
	var runErr error
	proc := uniproc.New(uniproc.Config{})
	proc.EnablePersistence()
	proc.Go("main", func(e *uniproc.Env) {
		j, err := journal.MountFS(e, cthreads.New(core.NewRAS()), arena, journal.Options{})
		if err != nil {
			runErr = err
			return
		}
		states[0] = jfsDump(e, j)
		for i, r := range jfsScript {
			if err := jfsApply(e, j, r); err != nil {
				runErr = fmt.Errorf("op %d: %w", i, err)
				return
			}
			states[i+1] = jfsDump(e, j)
		}
	})
	if err := proc.Run(); err != nil {
		return nil, err
	}
	return states, runErr
}

// ---------------------------------------------------------------------
// pstruct: core.PersistentStack / core.PersistentQueue crashed at every
// persist boundary. The invariant is transactionality: the recovered
// structure equals the state after exactly `returned` operations, or
// returned+1 (the one in-flight operation, when its commit point was
// crossed) — never a torn intermediate, never a lost committed op.

// pstructScript: positive = push/enqueue the value, -1 = pop/dequeue.
var pstructScript = []int{10, 20, -1, 30}

const pstructCap = 4

func pstructModel(p map[string]string) (Model, error) {
	mode, err := core.ParseLogMode(p["mode"])
	if err != nil {
		return nil, fmt.Errorf("mcheck: pstruct: %v", err)
	}
	kind := p["struct"]
	if kind != "stack" && kind != "queue" {
		return nil, fmt.Errorf("mcheck: pstruct: unknown struct %q", p["struct"])
	}
	primary := ActCrashVolatile
	if p["torn"] == "1" {
		primary = ActCrashTorn
	} else if p["torn"] != "0" {
		return nil, fmt.Errorf("mcheck: pstruct: torn must be 0 or 1, got %q", p["torn"])
	}
	states, err := pstructPrefixStates(kind, mode)
	if err != nil {
		return nil, fmt.Errorf("mcheck: pstruct: %v", err)
	}
	m := &uniModel{name: "pstruct", params: p, primary: primary}
	m.run = func(ds []Decision, opt Options, vio *violations) uint64 {
		arena := make([]uniproc.Word, pstructArenaWords(kind))
		var cum uint64
		returned := 0
		first := true
		for boot := 0; boot < len(ds)+2; boot++ {
			proc := uniproc.New(uniproc.Config{
				Quantum:   modelQuantum,
				MaxCycles: modelBudget,
				Faults:    newInjector(chaos.PointPersist, shiftDecisions(ds, cum)),
			})
			proc.Tracer = opt.Tracer
			proc.EnablePersistence()
			var state []uniproc.Word
			var opErr error
			proc.Go("main", func(e *uniproc.Env) {
				// Recover runs first on every boot — a crash inside a
				// previous boot's recovery re-runs it here, idempotently.
				ops := pstructScript
				if !first {
					ops = nil
				}
				state, opErr = pstructRunOps(e, arena, kind, mode, ops, func() { returned++ })
			})
			err := proc.Run()
			cum += proc.PersistOps()
			if errors.Is(err, uniproc.ErrMachineCrash) {
				first = false
				continue
			}
			classifyUniErr(err, vio)
			if opErr != nil {
				vio.add("abort", "boot %d: %v", boot+1, opErr)
				return cum
			}
			okA := wordsEqual(state, states[returned])
			okB := returned+1 < len(states) && wordsEqual(state, states[returned+1])
			if !okA && !okB {
				vio.add("pstruct-atomicity",
					"recovered %s state %v with %d returned ops: not the state after %d ops (%v) or %d (%v)",
					kind, state, returned, returned, states[returned], returned+1, stateOrNil(states, returned+1))
			}
			return cum
		}
		vio.add("stuck", "crash decisions kept firing after %d boots", len(ds)+2)
		return cum
	}
	return m, nil
}

func pstructArenaWords(kind string) int {
	if kind == "stack" {
		return core.StackArenaWords(pstructCap)
	}
	return core.QueueArenaWords(pstructCap)
}

// pstructRunOps recovers the structure on arena, applies ops (positive
// = push/enqueue, -1 = pop/dequeue, calling retired after each), and
// returns the observable state. Sequence and log words are excluded —
// the redo discipline lets the applied-sequence write-back lag one
// fence, so only the logical contents are comparable across crashes.
func pstructRunOps(e *uniproc.Env, arena []uniproc.Word, kind string, mode core.LogMode, ops []int, retired func()) ([]uniproc.Word, error) {
	if kind == "stack" {
		s := core.NewPersistentStack(arena, mode)
		s.Recover(e)
		for _, op := range ops {
			if op < 0 {
				if _, ok := s.Pop(e); !ok {
					return nil, errors.New("pop on empty stack")
				}
			} else if err := s.Push(e, uniproc.Word(op)); err != nil {
				return nil, err
			}
			retired()
		}
		return pstructStackState(e, arena), nil
	}
	q := core.NewPersistentQueue(arena, mode)
	q.Recover(e)
	for _, op := range ops {
		if op < 0 {
			if _, ok := q.Dequeue(e); !ok {
				return nil, errors.New("dequeue on empty queue")
			}
		} else if err := q.Enqueue(e, uniproc.Word(op)); err != nil {
			return nil, err
		}
		retired()
	}
	return pstructQueueState(e, arena), nil
}

// pstructStackState reads the stack's observable state without mutating
// it: [depth, values bottom-first...]. The depth word sits just below
// the value area, which starts at StackArenaWords(0).
func pstructStackState(e *uniproc.Env, arena []uniproc.Word) []uniproc.Word {
	top := e.Load(&arena[core.StackArenaWords(0)-1])
	state := []uniproc.Word{top}
	for i := 0; i < int(top); i++ {
		state = append(state, e.Load(&arena[core.StackArenaWords(0)+i]))
	}
	return state
}

// pstructQueueState reads the queue's observable state without mutating
// it: [length, values oldest-first...]. head/tail sit at the two words
// before the ring, which starts at QueueArenaWords(0).
func pstructQueueState(e *uniproc.Env, arena []uniproc.Word) []uniproc.Word {
	ring := core.QueueArenaWords(0)
	capacity := len(arena) - ring
	head := e.Load(&arena[ring-2])
	tail := e.Load(&arena[ring-1])
	state := []uniproc.Word{tail - head}
	for i := head; i != tail; i++ {
		state = append(state, e.Load(&arena[ring+int(uint32(i)%uint32(capacity))]))
	}
	return state
}

// pstructPrefixStates computes the observable state after each prefix
// of the script on a fault-free processor.
func pstructPrefixStates(kind string, mode core.LogMode) ([][]uniproc.Word, error) {
	states := make([][]uniproc.Word, len(pstructScript)+1)
	var runErr error
	for n := 0; n <= len(pstructScript); n++ {
		n := n
		arena := make([]uniproc.Word, pstructArenaWords(kind))
		proc := uniproc.New(uniproc.Config{})
		proc.EnablePersistence()
		proc.Go("main", func(e *uniproc.Env) {
			st, err := pstructRunOps(e, arena, kind, mode, pstructScript[:n], func() {})
			if err != nil {
				runErr = err
				return
			}
			states[n] = st
		})
		if err := proc.Run(); err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
	}
	return states, nil
}

func wordsEqual(a, b []uniproc.Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func stateOrNil(states [][]uniproc.Word, i int) []uniproc.Word {
	if i < len(states) {
		return states[i]
	}
	return nil
}
