package mcheck

import (
	"strings"
	"testing"
)

// The guest WAL survives a clean crash at EVERY persist boundary: each
// NVM image the redo protocol can leave behind is crashed into, audited,
// rebooted from, and must end with va == vb == target.
func TestExhaustiveJournalCrashAtEveryBoundary(t *testing.T) {
	for _, mode := range []string{"redo", "undo"} {
		e := &Explorer{Model: build(t, "journal", map[string]string{"mode": mode}), MaxDecisions: 1}
		rep, err := e.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("mode=%s: %v\nrepro: %s", mode, rep, reproLine(rep))
		}
		// target=2 runs two transactions of ~6 persist ops each, plus the
		// final boot's recovery probe; a much smaller horizon means the
		// cursor is not counting persist ops.
		if rep.Schedules < 10 {
			t.Errorf("mode=%s: only %d schedules — the persist-op horizon is too short", mode, rep.Schedules)
		}
		t.Logf("mode=%s: %v", mode, rep)
	}
}

// The same sweep with torn write-backs: a crash now persists only a
// prefix of each in-flight line, so the log record can be spliced from
// two transactions — the checksum must reject every splice, and the
// two data words must never be split without a durable record.
func TestExhaustiveJournalTornCrashes(t *testing.T) {
	for _, mode := range []string{"redo", "undo"} {
		over := map[string]string{"mode": mode, "torn": "1"}
		e := &Explorer{Model: build(t, "journal", over), MaxDecisions: 1}
		rep, err := e.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("mode=%s torn: %v\nrepro: %s", mode, rep, reproLine(rep))
		}
	}
}

// K=2 lands the second crash inside journal recovery itself. Recovery is
// constant stores (the record's values), so re-running it after a crash
// at any of its own persist boundaries must be idempotent.
func TestExhaustiveJournalCrashDuringRecovery(t *testing.T) {
	e := &Explorer{Model: build(t, "journal", nil), MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The planted missing-fence journal: the log record never reaches NVM,
// so a torn crash that persists va's write-back but not vb's leaves the
// words split with nothing to repair them from. The checker must catch
// it, shrink it to a single torn-crash decision, and serialize a .sched
// that replays — including the crash-torn action, whose tear is derived
// from the decision ordinal and therefore survives the round trip.
func TestJournalNofenceCaughtAndShrunk(t *testing.T) {
	over := map[string]string{"mode": "nofence", "torn": "1"}
	m := build(t, "journal", over)
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the missing-fence journal: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n != 1 {
		t.Errorf("counterexample has %d decisions, want 1 (a single well-placed torn crash)", n)
	}
	if cex.Schedule.Decisions[0].Act != ActCrashTorn {
		t.Errorf("counterexample action = %v, want crash-torn", cex.Schedule.Decisions[0].Act)
	}
	found := false
	for _, v := range cex.Violations {
		if v.Kind == "journal-consistency" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include journal-consistency", cex.Violations)
	}

	path := t.TempDir() + "/nofence.sched"
	if err := cex.Schedule.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Decisions[0].Act != ActCrashTorn {
		t.Fatalf("crash-torn did not survive .sched serialization: %+v", back.Decisions)
	}
	rm, err := BuildSchedule(back)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := RunOnce(rm, back.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("deserialized counterexample does not replay (repro: go run ./cmd/rascheck -replay %s)", path)
	}
	if !strings.Contains(vio[0].Kind, "journal") {
		t.Errorf("replayed violation kind %q, want journal-consistency", vio[0].Kind)
	}
	t.Logf("%v", rep)
}

// The well-fenced journal under the same torn-crash bounds the planted
// bug fails: the only difference is the log record's flush+fence.
func TestWellFencedJournalPassesWhereNofenceFails(t *testing.T) {
	over := map[string]string{"mode": "redo", "torn": "1"}
	e := &Explorer{Model: build(t, "journal", over), MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
}

// The journaled memfs: a crash at every persist boundary — clean and
// torn — remounts to exactly the state of the returned operations (plus
// at most the one in flight).
func TestExhaustiveMemfsJournal(t *testing.T) {
	for _, torn := range []string{"0", "1"} {
		e := &Explorer{Model: build(t, "memfs-journal", map[string]string{"torn": torn}), MaxDecisions: 1}
		rep, err := e.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("torn=%s: %v\nrepro: %s", torn, rep, reproLine(rep))
		}
		if rep.Schedules < 20 {
			t.Errorf("torn=%s: only %d schedules — the persist-op horizon is too short", torn, rep.Schedules)
		}
		t.Logf("torn=%s: %v", torn, rep)
	}
}

// The SkipFence journal option: a completed operation's record is still
// in the volatile tier when the crash hits, and the remount is missing
// an operation that returned.
func TestMemfsJournalSkipFenceCaught(t *testing.T) {
	m := build(t, "memfs-journal", map[string]string{"variant": "nofence"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the SkipFence journal: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n != 1 {
		t.Errorf("counterexample has %d decisions, want 1", n)
	}
	found := false
	for _, v := range cex.Violations {
		if v.Kind == "journal-loss" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include journal-loss", cex.Violations)
	}
	t.Logf("%v", rep)
}

// Every persistent-structure flavor — stack and queue, undo and redo,
// clean and torn crashes — recovers to the state after exactly the
// returned operations (or the one in flight) at every persist boundary.
func TestExhaustivePstructAllFlavors(t *testing.T) {
	for _, kind := range []string{"stack", "queue"} {
		for _, mode := range []string{"undo", "redo"} {
			for _, torn := range []string{"0", "1"} {
				over := map[string]string{"struct": kind, "mode": mode, "torn": torn}
				e := &Explorer{Model: build(t, "pstruct", over), MaxDecisions: 1}
				rep, err := e.Exhaustive()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Passed() {
					t.Fatalf("%s/%s torn=%s: %v\nrepro: %s", kind, mode, torn, rep, reproLine(rep))
				}
			}
		}
	}
}

// The suite's CI budget guard. The canned suite is the single definition
// of what the checker proves, so its shape is pinned: an entry added or
// dropped must show up as a deliberate diff here. And every persist-
// family entry must cover its schedule space exhaustively — a Truncated
// report means the walk silently stopped proving anything.
func TestSuiteBudgetGuard(t *testing.T) {
	ents := Suite()
	if len(ents) != 42 {
		t.Errorf("suite has %d entries, want 42 — update this pin with the suite change that caused it", len(ents))
	}
	persistFamily := map[string]bool{
		"persist": true, "journal": true, "memfs-journal": true, "pstruct": true,
		"resilience": true,
	}
	n := 0
	for _, ent := range ents {
		if !persistFamily[ent.Model] {
			continue
		}
		n++
		if ent.Mode != "exhaustive" {
			t.Errorf("%s %v: persist-family suite entries must be exhaustive, got %q", ent.Model, ent.Over, ent.Mode)
			continue
		}
		res := RunEntry(ent, Options{})
		if res.Err != nil {
			t.Errorf("%s %v: %v", ent.Model, ent.Over, res.Err)
			continue
		}
		if res.Report.Truncated {
			t.Errorf("%s %v: exhaustive walk truncated — the stated budget no longer covers the space", ent.Model, ent.Over)
		}
		if !res.OK {
			t.Errorf("%s %v: outcome does not match expectation %q: %v", ent.Model, ent.Over, ent.Expect, res.Report)
		}
	}
	if n < 15 {
		t.Errorf("only %d persist-family entries in the suite, want >= 15", n)
	}
}
