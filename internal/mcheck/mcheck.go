// Package mcheck is a schedule-space model checker for the repository's
// deterministic substrates: the ISA-level kernel (internal/vmach), the
// multi-CPU system (internal/vmach/smp), and the primitive-op virtual
// uniprocessor (internal/uniproc).
//
// The paper's correctness claim — a restartable atomic sequence "is
// eventually executed without interleaving" (§3) — was so far tested by
// seeded chaos sweeps, which sample the schedule space. This package
// covers it: a schedule is a short list of forced scheduling decisions
// (preempt this instruction, kill this thread, switch CPUs here), each
// pinned to a deterministic event ordinal, and the checker enumerates
// schedules either exhaustively (bounded DFS with state-hash pruning over
// the canonical checkpoint encoding) or randomly (seeded, replayable).
// Invariant checkers — mutual exclusion via memory watchpoints, lost
// updates, deadlock, restart-livelock, recoverable-mutex repair — watch
// every run; a failing schedule is shrunk to a minimal counterexample and
// serialized as a .sched file that rasvm -replay-sched and rascheck
// -replay re-execute deterministically.
package mcheck

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// Action is one kind of forced scheduling decision.
type Action int

const (
	// ActPreempt forces an involuntary preemption at the decision's
	// ordinal — the vmach/uniproc interleaving primitive.
	ActPreempt Action = iota
	// ActKill kills the currently running thread at the ordinal.
	ActKill
	// ActCrash halts the whole machine at the ordinal.
	ActCrash
	// ActSwitch hands the interleaving to the next CPU at the ordinal —
	// the smp primitive (meaningless on single-CPU substrates).
	ActSwitch
	// ActCrashVolatile crashes the machine with volatile-memory semantics
	// at the ordinal: unfenced lines revert to NVM and the system reboots.
	// On the persist model the ordinal space is persist operations
	// (flushes + fences) retired, so ordinals enumerate exactly the
	// crash points between persist operations.
	ActCrashVolatile
	// ActCrashTorn is ActCrashVolatile with torn write-backs
	// (chaos.Action.Torn): lines with an initiated-but-unfenced
	// write-back persist only a deterministic prefix of their words.
	// The torn split is derived from the decision ordinal, so a .sched
	// replays the exact same tear.
	ActCrashTorn
)

func (a Action) String() string {
	switch a {
	case ActPreempt:
		return "preempt"
	case ActKill:
		return "kill"
	case ActCrash:
		return "crash"
	case ActSwitch:
		return "switch"
	case ActCrashVolatile:
		return "crash-volatile"
	case ActCrashTorn:
		return "crash-torn"
	}
	return "?"
}

// ParseAction inverts Action.String.
func ParseAction(s string) (Action, error) {
	switch s {
	case "preempt":
		return ActPreempt, nil
	case "kill":
		return ActKill, nil
	case "crash":
		return ActCrash, nil
	case "switch":
		return ActSwitch, nil
	case "crash-volatile":
		return ActCrashVolatile, nil
	case "crash-torn":
		return ActCrashTorn, nil
	}
	return 0, fmt.Errorf("mcheck: unknown action %q", s)
}

// Decision pins one action to a deterministic event ordinal. Ordinals
// count the substrate's preemption points: retired instructions on vmach
// (kernel.Steps), scheduler steps across all CPUs on smp, memory
// operations on uniproc. Ordinal 1 is the first point; a decision fires
// when the count reaches At.
type Decision struct {
	At  uint64
	Act Action
}

// Schedule is a complete, self-describing experiment: which model to
// build, with which parameters, and the decisions to force. Decisions are
// kept sorted by ordinal, at most one per ordinal.
type Schedule struct {
	Model     string
	Params    map[string]string
	Decisions []Decision
	Note      string
}

// Clone deep-copies the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Model: s.Model, Note: s.Note, Params: map[string]string{}}
	for k, v := range s.Params {
		c.Params[k] = v
	}
	c.Decisions = append([]Decision(nil), s.Decisions...)
	return c
}

// Injector renders the preempt/kill/crash decisions as a chaos injector
// at the given instrumentation point — the bridge that makes every
// counterexample a chaos plan: what the checker found, the chaos kernel
// re-executes.
func (s *Schedule) Injector(point chaos.Point) chaos.Injector {
	return newInjector(point, s.Decisions)
}

// injector is the schedule-driven chaos.Injector: a fixed map from event
// ordinal to action at one instrumentation point. It also serves as the
// always-installed null injector (an empty map) that keeps the substrate
// counting ordinals.
type injector struct {
	point chaos.Point
	acts  map[uint64]chaos.Action
}

func newInjector(point chaos.Point, ds []Decision) *injector {
	in := &injector{point: point, acts: map[uint64]chaos.Action{}}
	for _, d := range ds {
		a := in.acts[d.At]
		switch d.Act {
		case ActPreempt:
			a.Preempt = true
		case ActKill:
			a.Kill = true
		case ActCrash:
			a.Crash = true
		case ActCrashVolatile:
			a.CrashVolatile = true
		case ActCrashTorn:
			a.CrashVolatile = true
			a.Torn = true
		}
		in.acts[d.At] = a
	}
	return in
}

func (in *injector) At(p chaos.Point, n uint64) chaos.Action {
	if p != in.point {
		return chaos.Action{}
	}
	return in.acts[n]
}

// Violation is one invariant breach, recorded where it happened.
type Violation struct {
	// Kind names the checker: mutual-exclusion, lost-update,
	// counter-exact, deadlock, restart-livelock, budget, lock-discipline,
	// rme, stuck, crash.
	Kind string
	Msg  string
}

func (v Violation) String() string { return v.Kind + ": " + v.Msg }

// violations accumulates breaches with a cap (a broken run can breach on
// every store; the first few carry all the signal).
type violations struct {
	list []Violation
}

func (v *violations) add(kind, format string, args ...any) {
	if len(v.list) < 16 {
		v.list = append(v.list, Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
}

// Options is harness wiring threaded into every instance a model builds.
type Options struct {
	// Tracer, when non-nil, receives the substrate's event stream —
	// replaying a counterexample with an obs.Bus attached yields the
	// Chrome trace of the failing interleaving.
	Tracer obs.Sink
}

// Instance is one run of a model under one schedule.
type Instance interface {
	// RunTo advances until the decision ordinal `at` has fired (cursor
	// == at) or the run ended, whichever is first. Only meaningful on
	// pausable models.
	RunTo(at uint64) (done bool)
	// RunToEnd drives the run to completion and applies the model's
	// end-state invariants (exactly once).
	RunToEnd()
	// Cursor is the current event ordinal.
	Cursor() uint64
	// StateHash returns the canonical hash of the paused state for DFS
	// pruning; ok is false when the model cannot hash (not pausable).
	StateHash() (h [32]byte, ok bool)
	// Violations reports every invariant breach recorded so far.
	Violations() []Violation
}

// Model builds instances for one (substrate, workload) pair.
type Model interface {
	// Name is the registry key ("counter", "smp-counter", ...).
	Name() string
	// Params are the resolved parameters, defaults filled in.
	Params() map[string]string
	// Primary is the action the explorers place at enumerated ordinals.
	Primary() Action
	// Pausable reports whether instances support mid-run pause and
	// hashing (false for uniproc, whose runtime runs whole schedules).
	Pausable() bool
	// New builds an instance that will force the given decisions.
	New(ds []Decision, opt Options) (Instance, error)
}

// RunOnce builds an instance for ds, runs it to completion, and reports
// its violations — the primitive the shrinker, the replayers, and the
// random explorer share.
func RunOnce(m Model, ds []Decision, opt Options) ([]Violation, error) {
	in, err := m.New(ds, opt)
	if err != nil {
		return nil, err
	}
	in.RunToEnd()
	return in.Violations(), nil
}
