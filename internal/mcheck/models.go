package mcheck

import (
	"fmt"
	"sort"
	"strconv"
)

// The model registry. A model name plus a parameter map fully determines
// a checkable system, which is what lets a .sched file rebuild the exact
// run that failed.

type modelEntry struct {
	defaults map[string]string
	build    func(p map[string]string) (Model, error)
	doc      string
}

var registry = map[string]modelEntry{
	"counter": {
		defaults: map[string]string{"mech": "registered", "workers": "2", "iters": "1"},
		build:    counterModel,
		doc:      "vmach lock/counter workload; mech=registered|designated|none",
	},
	"broken2store": {
		defaults: map[string]string{"workers": "2", "iters": "1"},
		build:    broken2storeModel,
		doc:      "vmach two-store RAS installed past the verifier; the checker must catch it",
	},
	"recoverable": {
		defaults: map[string]string{"workers": "2", "iters": "1", "strategy": "registration"},
		build:    recoverableModel,
		doc:      "vmach owner+epoch recoverable lock under forced kills",
	},
	"persist": {
		defaults: map[string]string{"workers": "1", "iters": "2", "variant": "flushed"},
		build:    persistModel,
		doc:      "NVRAM-persistent recoverable lock, crash at every persist boundary; variant=flushed|underflush",
	},
	"smp-counter": {
		defaults: map[string]string{"lock": "hybrid", "cpus": "2", "iters": "1"},
		build:    smpCounterModel,
		doc:      "smp contended counter; lock=hybrid|spinlock|llsc|ras-only",
	},
	"uni-counter": {
		defaults: map[string]string{"sync": "ras", "workers": "2", "iters": "1"},
		build:    uniCounterModel,
		doc:      "uniproc counter; sync=ras|none",
	},
	"uni-rme": {
		defaults: map[string]string{"workers": "2", "iters": "2"},
		build:    uniRMEModel,
		doc:      "uniproc core.RecoverableMutex under forced kills",
	},
	"journal": {
		defaults: map[string]string{"mode": "redo", "target": "2", "torn": "0"},
		build:    journalModel,
		doc:      "vmach guest WAL transaction, crash at every persist boundary; mode=redo|undo|nofence, torn=0|1",
	},
	"memfs-journal": {
		defaults: map[string]string{"variant": "fenced", "torn": "0"},
		build:    memfsJournalModel,
		doc:      "uniproc journaled memfs script; remount after any crash must be a script prefix; variant=fenced|nofence",
	},
	"pstruct": {
		defaults: map[string]string{"struct": "stack", "mode": "redo", "torn": "0"},
		build:    pstructModel,
		doc:      "uniproc persistent stack/queue transactionality under crashes; struct=stack|queue, mode=undo|redo",
	},
	"percpu-queue": {
		defaults: map[string]string{"drain": "safe", "producers": "2", "iters": "2", "cpus": "1"},
		build:    percpuQueueModel,
		doc:      "uniproc percpu.Queue MPSC traffic accounting; drain=safe|unsafe (unsafe is the planted non-atomic drain)",
	},
	"percpu-freelist": {
		defaults: map[string]string{"variant": "ras", "workers": "2", "iters": "1", "nodes": "2"},
		build:    percpuFreeListModel,
		doc:      "vmach guest intrusive free list; variant=ras|bare (bare double-allocates under preemption)",
	},
	"percpu-server": {
		defaults: map[string]string{"variant": "percpu", "cpus": "1", "clients": "1", "iters": "2"},
		build:    percpuServerModelBuild,
		doc:      "smp guest request plane, exact served accounting; variant=percpu|mutex|racy (racy consumes unpublished slots)",
	},
	"qlock-queue": {
		defaults: map[string]string{"variant": "mcs", "cpus": "2", "iters": "1"},
		build:    qlockQueueModelBuild,
		doc:      "smp queue lock FIFO+exactness under forced switches; variant=mcs|rmcs",
	},
	"qlock-rec": {
		defaults: map[string]string{"variant": "rmcs", "cpus": "2", "iters": "1"},
		build:    qlockRecModelBuild,
		doc:      "smp queue lock under forced kills with rendezvoused overlap; variant=rmcs|mcs|rmcs-unspliced (mcs wedges, unspliced is the planted repair bug)",
	},
	"resilience": {
		defaults: map[string]string{"variant": "dedup", "kind": "volatile", "clients": "1", "iters": "2"},
		build:    resilienceModel,
		doc:      "supervised crash-restart campaign over the exactly-once server; ordinals are global persist ops across boots; variant=dedup|nodedup (nodedup is the planted replay double-apply), kind=volatile|torn",
	},
}

// Models lists the registered model names, sorted, with one-line docs.
func Models() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelDoc returns the one-line description of a model.
func ModelDoc(name string) string { return registry[name].doc }

// ModelDefaults returns a model's default parameters as a k=v,k=v string.
func ModelDefaults(name string) string {
	return (&Schedule{Params: registry[name].defaults}).ParamString()
}

// BuildModel resolves a model name and parameter overrides into a Model.
// Unknown names and unknown parameter keys are errors: a .sched file that
// drifts from the registry must fail loudly, not silently check something
// else.
func BuildModel(name string, over map[string]string) (Model, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mcheck: unknown model %q (have %v)", name, Models())
	}
	p := map[string]string{}
	for k, v := range e.defaults {
		p[k] = v
	}
	for k, v := range over {
		if _, ok := e.defaults[k]; !ok {
			return nil, fmt.Errorf("mcheck: model %s has no parameter %q", name, k)
		}
		p[k] = v
	}
	return e.build(p)
}

// BuildSchedule rebuilds the model a parsed schedule names.
func BuildSchedule(s *Schedule) (Model, error) {
	return BuildModel(s.Model, s.Params)
}

func paramInt(p map[string]string, key string) (int, error) {
	n, err := strconv.Atoi(p[key])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("mcheck: parameter %s=%q must be a positive integer", key, p[key])
	}
	return n, nil
}

func workerIters(p map[string]string) (workers, iters int, err error) {
	if workers, err = paramInt(p, "workers"); err != nil {
		return
	}
	iters, err = paramInt(p, "iters")
	return
}
