package mcheck

import "testing"

// The per-CPU data-plane models (PR 8). `make server` runs exactly these
// (go test -run 'Percpu'): the safe structures verified exhaustively at a
// stated bound, each planted defect caught, minimized, and replayed cold.

// The runtime-layer MPSC queue: any two forced preemptions at memop
// boundaries, drains overlapping pending pushes — traffic accounting
// stays exact because the detach is one restartable commit.
func TestPercpuQueueExhaustiveSafe(t *testing.T) {
	m := build(t, "percpu-queue", map[string]string{"drain": "safe"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The planted DrainUnsafe bug: one preemption between the consumer's
// head read and its head clear, with a producer push in the window,
// discards the pushed request. The checker must find it, shrink it, and
// the minimized schedule must replay.
func TestPercpuQueueCatchesUnsafeDrain(t *testing.T) {
	m := build(t, "percpu-queue", map[string]string{"drain": "unsafe"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the non-atomic drain: %v", rep)
	}
	if got := cex.Violations[0].Kind; got != "lost-update" {
		t.Errorf("violation kind = %q, want lost-update", got)
	}
	vio, err := RunOnce(m, cex.Schedule.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("minimized counterexample does not replay: %v", cex.Schedule.Decisions)
	}
	t.Logf("%v", rep)
}

// The registered guest free list survives any two forced preemptions: an
// interrupted pop restarts from its head load, so ownership stays unique
// and every node returns to the list.
func TestPercpuFreeListExhaustiveRAS(t *testing.T) {
	m := build(t, "percpu-freelist", map[string]string{"variant": "ras"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The bare variant runs the same instructions unregistered: a preemption
// between the head load and the commit resumes with a stale node and two
// workers stamp the same block — caught by the owner-word watchpoint at
// one decision.
func TestPercpuFreeListCatchesBarePop(t *testing.T) {
	m := build(t, "percpu-freelist", map[string]string{"variant": "bare"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the unregistered pop: %v", rep)
	}
	if got := cex.Violations[0].Kind; got != "double-alloc" {
		t.Errorf("violation kind = %q, want double-alloc", got)
	}
	if n := len(cex.Schedule.Decisions); n > 1 {
		t.Errorf("counterexample has %d decisions, want <= 1", n)
	}
	vio, err := RunOnce(m, cex.Schedule.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("minimized counterexample does not replay: %v", cex.Schedule.Decisions)
	}
	t.Logf("%v", rep)
}

// The per-CPU request ring under a forced preemption at every scheduler
// step: the worker treats an unpublished slot as end-of-batch, so served
// accounting stays exact no matter where the producer is interrupted.
func TestPercpuServerExhaustiveSafe(t *testing.T) {
	m := build(t, "percpu-server", map[string]string{"variant": "percpu"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The mutex baseline at 2 CPUs stays exact too — slower is not wronger.
func TestPercpuServerExhaustiveMutex(t *testing.T) {
	m := build(t, "percpu-server",
		map[string]string{"variant": "mutex", "cpus": "2", "iters": "1"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The planted racy drain (ISSUE 8's acceptance defect): the worker
// trusts the reserved tail, so a client preempted between its slot
// reservation and its payload store has the request consumed as empty.
// The checker must catch it within one forced preemption, shrink it, and
// the .sched-shaped schedule must replay cold.
func TestPercpuServerCatchesRacyDrain(t *testing.T) {
	m := build(t, "percpu-server", map[string]string{"variant": "racy"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the racy drain: %v", rep)
	}
	if got := cex.Violations[0].Kind; got != "served-exact" {
		t.Errorf("violation kind = %q, want served-exact", got)
	}
	if n := len(cex.Schedule.Decisions); n != 1 {
		t.Errorf("counterexample has %d decisions, want 1", n)
	}
	vio, err := RunOnce(m, cex.Schedule.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("minimized counterexample does not replay: %v", cex.Schedule.Decisions)
	}
	// Round-trip through the .sched serialization: what rascheck writes to
	// mcheck-out/ must rebuild the same failing run.
	text := cex.Schedule.Format()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("counterexample does not serialize: %v\n%s", err, text)
	}
	m2, err := BuildSchedule(parsed)
	if err != nil {
		t.Fatal(err)
	}
	vio2, err := RunOnce(m2, parsed.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio2) == 0 {
		t.Fatalf("re-parsed .sched does not replay the violation:\n%s", text)
	}
	t.Logf("%v", rep)
}

// The three percpu suite entries with planted defects plus the four safe
// ones: the canned suite's view of this family must agree with the
// dedicated tests above (the suite is what `make check` and CI run).
func TestPercpuSuiteEntries(t *testing.T) {
	n := 0
	for _, ent := range Suite() {
		switch ent.Model {
		case "percpu-queue", "percpu-freelist", "percpu-server":
		default:
			continue
		}
		n++
		res := RunEntry(ent, Options{})
		if res.Err != nil {
			t.Errorf("%s %v: %v", ent.Model, ent.Over, res.Err)
			continue
		}
		if !res.OK {
			t.Errorf("%s %v: outcome does not match expectation %q: %v",
				ent.Model, ent.Over, ent.Expect, res.Report)
		}
		if res.Report.Truncated {
			t.Errorf("%s %v: exhaustive walk truncated", ent.Model, ent.Over)
		}
	}
	if n != 7 {
		t.Errorf("suite carries %d percpu entries, want 7", n)
	}
}
