package mcheck

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/percpu"
	"repro/internal/uniproc"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// The per-CPU data-plane models (PR 8): the three structures the percpu
// library and its guest twin rest on, each with its planted defect.
//
//   - percpu-queue: the runtime-layer MPSC queue. drain=safe detaches the
//     ready list in one restartable commit; drain=unsafe is the planted
//     non-atomic drain (Queue.DrainUnsafe), which discards any push that
//     lands between its head read and its head clear.
//   - percpu-freelist: the guest intrusive free list. variant=ras
//     registers the pop and push-commit sequences; variant=bare runs them
//     unregistered, so a preemption between the head load and the commit
//     resumes with a stale node and two threads own the same block.
//   - percpu-server: the guest request plane on SMP. variant=percpu is
//     the per-CPU ring design, variant=mutex the global-lock baseline,
//     and variant=racy the planted drain bug — the worker trusts the
//     reserved tail instead of the per-slot publication word, consuming a
//     slot whose producer was preempted before publishing.

// percpuQueueModel checks percpu.Queue on the virtual uniprocessor:
// producers enqueue on their home shard, one consumer drains every shard
// in batches, and the drained traffic must equal the enqueued traffic
// exactly. Producers yield between requests so the consumer's drain
// naturally overlaps pending pushes — which is precisely the window the
// unsafe drain loses.
func percpuQueueModel(p map[string]string) (Model, error) {
	drain := p["drain"]
	if drain != "safe" && drain != "unsafe" {
		return nil, fmt.Errorf("mcheck: percpu-queue: unknown drain %q", drain)
	}
	producers, err := paramInt(p, "producers")
	if err != nil {
		return nil, err
	}
	iters, err := paramInt(p, "iters")
	if err != nil {
		return nil, err
	}
	cpus, err := paramInt(p, "cpus")
	if err != nil {
		return nil, err
	}
	m := &uniModel{name: "percpu-queue", params: p, primary: ActPreempt}
	m.run = func(ds []Decision, opt Options, vio *violations) uint64 {
		proc := uniproc.New(uniproc.Config{
			Quantum:   1 << 40,
			MaxCycles: modelBudget,
			Faults:    newInjector(chaos.PointMemOp, ds),
		})
		proc.Tracer = opt.Tracer
		dom := percpu.NewDomain(cpus)
		// Pool sized so backpressure never blocks a producer even if the
		// unsafe drain leaks nodes: a stuck run would hide the lost update
		// behind a deadlock report.
		q := percpu.NewQueue(dom, producers*iters+1)
		retired := 0
		var gotSum uint64
		for w := 0; w < producers; w++ {
			proc.Go("producer", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					q.Enqueue(e, 1)
					e.Yield() // think time: lets drains overlap pushes
				}
				retired++
			})
		}
		proc.Go("consumer", func(e *uniproc.Env) {
			for {
				got := 0
				for cpu := 0; cpu < cpus; cpu++ {
					var batch []percpu.Word
					if drain == "unsafe" {
						batch = q.DrainUnsafe(e, cpu)
					} else {
						batch = q.Drain(e, cpu)
					}
					got += len(batch)
					for _, v := range batch {
						gotSum += uint64(v)
					}
				}
				if got == 0 && retired == producers {
					return
				}
				if got == 0 {
					e.Yield()
				}
			}
		})
		classifyUniErr(proc.Run(), vio)
		want := uint64(producers * iters)
		st := q.Stats()
		if !hasAct(ds, ActKill) {
			if st.Drained != st.Enqueued || gotSum != want {
				vio.add("lost-update", "drained %d of %d enqueued requests (payload sum %d, want %d)",
					st.Drained, st.Enqueued, gotSum, want)
			}
			for _, th := range proc.Threads() {
				if !th.Done() {
					vio.add("stuck", "thread %v never finished", th)
				}
			}
		}
		return proc.MemOps()
	}
	return m, nil
}

// percpuFreeListModel checks guest.FreeListProgram on the vmach kernel:
// workers pop a node, stamp their owner tag (the watchpoint: the old tag
// must be zero, or two threads own the block), hold it across a
// reschedule, and push it back. variant=ras registers the pop and
// push-commit sequences so an interrupted pop restarts from its head
// load; variant=bare leaves them unregistered — the double allocation
// the checker must catch.
func percpuFreeListModel(p map[string]string) (Model, error) {
	variant := p["variant"]
	if variant != "ras" && variant != "bare" {
		return nil, fmt.Errorf("mcheck: percpu-freelist: unknown variant %q", variant)
	}
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	nodes, err := paramInt(p, "nodes")
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(guest.FreeListProgram(nodes))
	if err != nil {
		return nil, fmt.Errorf("mcheck: percpu-freelist: %v", err)
	}
	m := &vmachModel{name: "percpu-freelist", params: p, primary: ActPreempt, prog: prog}
	m.build = func(m *vmachModel, ds []Decision, opt Options) (Instance, error) {
		var strat kernel.Strategy
		if variant == "ras" {
			strat = kernel.NewMultiRegistration()
		}
		k := newVmachKernel(strat, ds, opt)
		k.Load(m.prog)
		if variant == "ras" {
			for _, r := range guest.FreeListSequenceRanges(m.prog) {
				if err := k.RegisterSequence(0, r[0], r[1]); err != nil {
					return nil, fmt.Errorf("mcheck: percpu-freelist: %v", err)
				}
			}
		}
		for w := 0; w < workers; w++ {
			k.Spawn(m.prog.MustSymbol("worker"), guest.StackTop(w),
				isa.Word(iters), isa.Word(w+1))
		}
		vio := &violations{}
		// One watchpoint per node's owner word: a stamp over a live tag is
		// a double allocation.
		for i := 0; i < nodes; i++ {
			addr := m.prog.MustSymbol(guest.FreeListNodeLabel(i)) + 4
			node := i
			k.M.Mem.Watch(addr, func(old, new isa.Word) {
				if old != 0 && new != 0 {
					vio.add("double-alloc", "node %d stamped by owner %d while owner %d still holds it",
						node, new, old)
				}
			})
		}
		in := &vmachInstance{k: k, vio: vio, expectCrash: hasAct(ds, ActCrash)}
		kills := hasAct(ds, ActKill)
		head := m.prog.MustSymbol("fhead")
		in.finish = func() {
			if kills {
				return // a killed holder legitimately leaks its node
			}
			// Every node must be back on the list, reachable exactly once.
			count := 0
			for at := k.M.Mem.Peek(head); at != 0 && count <= nodes; at = k.M.Mem.Peek(uint32(at)) {
				count++
			}
			if count != nodes {
				vio.add("free-list", "%d of %d nodes reachable from fhead after all workers exited",
					count, nodes)
			}
		}
		return in, nil
	}
	return m, nil
}

// percpuServerModel checks guest.ServerProgram on the SMP system. The
// decision ordinal space is scheduler steps; an ActPreempt decision is
// rendered into every CPU's kernel injector (firing at that CPU's own
// step ordinal), and an ActSwitch decision rotates the cross-CPU
// interleaving as in smp-counter. The end-state invariant is exact
// request accounting: served must equal cpus*clients*iters.
type percpuServerModel struct {
	params  map[string]string
	variant guest.ServerVariant
	cpus    int
	clients int
	iters   int
	prog    *asm.Program
}

func percpuServerModelBuild(p map[string]string) (Model, error) {
	var variant guest.ServerVariant
	switch p["variant"] {
	case "percpu":
		variant = guest.ServerPerCPU
	case "mutex":
		variant = guest.ServerMutex
	case "racy":
		variant = guest.ServerRacyDrain
	default:
		return nil, fmt.Errorf("mcheck: percpu-server: unknown variant %q", p["variant"])
	}
	cpus, err := paramInt(p, "cpus")
	if err != nil {
		return nil, err
	}
	clients, err := paramInt(p, "clients")
	if err != nil {
		return nil, err
	}
	iters, err := paramInt(p, "iters")
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(guest.ServerProgram(variant, cpus))
	if err != nil {
		return nil, fmt.Errorf("mcheck: percpu-server: %v", err)
	}
	return &percpuServerModel{params: p, variant: variant,
		cpus: cpus, clients: clients, iters: iters, prog: prog}, nil
}

func (m *percpuServerModel) Name() string              { return "percpu-server" }
func (m *percpuServerModel) Params() map[string]string { return m.params }
func (m *percpuServerModel) Primary() Action           { return ActPreempt }
func (m *percpuServerModel) Pausable() bool            { return true }

func (m *percpuServerModel) New(ds []Decision, opt Options) (Instance, error) {
	inj := newInjector(chaos.PointStep, ds)
	sys := smp.New(smp.Config{
		CPUs:        m.cpus,
		Quantum:     modelQuantum,
		MaxCycles:   smpBudget,
		NewStrategy: kernel.MultiRegistrationStrategy,
		Faults:      func(int) chaos.Injector { return inj },
	})
	if opt.Tracer != nil {
		sys.AttachTracer(opt.Tracer)
	}
	sys.Load(m.prog)
	if m.variant != guest.ServerMutex {
		for _, k := range sys.CPUs {
			for _, r := range guest.ServerSequenceRanges(m.prog) {
				if err := k.RegisterSequence(0, r[0], r[1]); err != nil {
					return nil, fmt.Errorf("mcheck: percpu-server: %v", err)
				}
			}
		}
	}
	workerArg := m.clients
	if m.variant == guest.ServerMutex {
		workerArg = m.clients * m.cpus
	}
	worker, client := m.prog.MustSymbol("worker"), m.prog.MustSymbol("client")
	for cpu := 0; cpu < m.cpus; cpu++ {
		sys.Spawn(cpu, worker, guest.StackTop(smp.GlobalID(cpu, 0)), isa.Word(workerArg))
		for c := 0; c < m.clients; c++ {
			sys.Spawn(cpu, client, guest.StackTop(smp.GlobalID(cpu, c+1)), isa.Word(m.iters))
		}
	}
	return &percpuServerInstance{
		m: m, sys: sys, vio: &violations{}, ds: ds,
		want: uint64(m.cpus * m.clients * m.iters),
	}, nil
}

type percpuServerInstance struct {
	m     *percpuServerModel
	sys   *smp.System
	vio   *violations
	ds    []Decision // sorted by At; next is ds[di]
	di    int
	cur   int    // CPU holding the interleaving
	steps uint64 // global step ordinal: total StepCPU calls
	turn  uint64 // steps since the interleaving last moved

	want  uint64
	done  bool
	ended bool
}

func (in *percpuServerInstance) rotate() {
	n := len(in.sys.CPUs)
	for j := 1; j <= n; j++ {
		c := (in.cur + j) % n
		if !in.sys.Done(c) {
			in.cur = c
			break
		}
	}
	in.turn = 0
}

func (in *percpuServerInstance) step() {
	if in.sys.AllDone() {
		in.done = true
		return
	}
	if in.sys.Done(in.cur) || in.turn >= smpTurn {
		in.rotate()
	}
	in.sys.StepCPU(in.cur)
	in.steps++
	in.turn++
	for in.di < len(in.ds) && in.ds[in.di].At == in.steps {
		if in.ds[in.di].Act == ActSwitch {
			in.rotate()
		}
		in.di++
	}
	if in.sys.AllDone() {
		in.done = true
	}
}

func (in *percpuServerInstance) RunTo(at uint64) bool {
	for !in.done && in.steps < at {
		in.step()
	}
	return in.done
}

func (in *percpuServerInstance) RunToEnd() {
	for !in.done {
		in.step()
	}
	if in.ended {
		return
	}
	in.ended = true
	for c := range in.sys.CPUs {
		err := in.sys.CPUVerdict(c)
		switch {
		case err == nil:
		case errors.Is(err, kernel.ErrDeadlock):
			in.vio.add("deadlock", "cpu%d: %v", c, err)
		case errors.Is(err, kernel.ErrLivelock):
			in.vio.add("restart-livelock", "cpu%d: %v", c, err)
		case errors.Is(err, kernel.ErrBudget):
			in.vio.add("budget", "cpu%d: %v", c, err)
		default:
			in.vio.add("abort", "cpu%d: %v", c, err)
		}
	}
	served, _ := guest.ServerCounts(in.sys.Mem, in.m.prog, in.m.variant, in.m.cpus)
	if !hasAct(in.ds, ActKill) && served != in.want {
		in.vio.add("served-exact", "served %d of %d submitted requests", served, in.want)
	}
}

func (in *percpuServerInstance) Cursor() uint64          { return in.steps }
func (in *percpuServerInstance) Violations() []Violation { return in.vio.list }
func (in *percpuServerInstance) StateHash() ([32]byte, bool) {
	return hashSMP(in.sys, in.cur, in.turn), true
}
