package mcheck

import (
	"strings"
	"testing"
)

// The tentpole acceptance check: the well-flushed persistent counter
// survives a volatile crash at EVERY persist-operation boundary — each
// state the protocol can leave in NVM is crashed into, rebooted from, and
// must recover to the exact final counter with the lock free. K=1 is the
// full "crash at every flush boundary" sweep.
func TestExhaustivePersistCrashAtEveryBoundary(t *testing.T) {
	e := &Explorer{Model: build(t, "persist", nil), MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	// workers=1 iters=2 retires 3 persist points x (flush+fence) x 2
	// iterations = 12 boundaries; anything much smaller means the cursor
	// is not counting persist ops.
	if rep.Schedules < 12 {
		t.Errorf("only %d schedules — the persist-op horizon is too short to mean anything", rep.Schedules)
	}
	t.Logf("%v", rep)
}

// K=2 lands the second crash inside recovery itself: a reboot's repair
// sequence is made of the same persist operations, so its boundaries are
// ordinals too, and crash-during-recovery must also recover.
func TestExhaustivePersistCrashDuringRecovery(t *testing.T) {
	e := &Explorer{Model: build(t, "persist", nil), MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The deliberately under-flushed variant (P2/P3 persist points removed):
// increments pile up in the volatile tier, a late crash loses more than
// the one-increment bound, and the checker must catch it, shrink it to a
// single crash decision, and serialize a .sched that replays.
func TestUnderflushedCaughtAndShrunk(t *testing.T) {
	over := map[string]string{"workers": "1", "iters": "3", "variant": "underflush"}
	m := build(t, "persist", over)
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the under-flushed variant: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n != 1 {
		t.Errorf("counterexample has %d decisions, want 1 (a single well-placed crash)", n)
	}
	if cex.Schedule.Decisions[0].Act != ActCrashVolatile {
		t.Errorf("counterexample action = %v, want crash-volatile", cex.Schedule.Decisions[0].Act)
	}
	found := false
	for _, v := range cex.Violations {
		if v.Kind == "persist-loss" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include persist-loss", cex.Violations)
	}

	// Round-trip through .sched and replay cold: the counterexample is a
	// file anyone can re-execute.
	path := t.TempDir() + "/underflush.sched"
	if err := cex.Schedule.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Decisions[0].Act != ActCrashVolatile {
		t.Fatalf("crash-volatile did not survive .sched serialization: %+v", back.Decisions)
	}
	rm, err := BuildSchedule(back)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := RunOnce(rm, back.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("deserialized counterexample does not replay (repro: go run ./cmd/rascheck -replay %s)", path)
	}
	if !strings.Contains(vio[0].Kind, "persist") {
		t.Errorf("replayed violation kind %q, want persist-loss", vio[0].Kind)
	}
	t.Logf("%v", rep)
}

// The well-flushed protocol under the same bounds as the planted bug: the
// only difference between pass and catch is the missing persist points.
func TestWellFlushedPassesWhereUnderflushedFails(t *testing.T) {
	over := map[string]string{"workers": "1", "iters": "3"}
	e := &Explorer{Model: build(t, "persist", over), MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
}
