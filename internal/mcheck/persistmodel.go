package mcheck

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/vmach"
	"repro/internal/vmach/kernel"
)

// The persist model: guest.PersistentCounterProgram on a memory with the
// two-tier NVRAM persistence model enabled, checked against whole-machine
// crashes that discard every unfenced line (chaos.Action.CrashVolatile
// semantics) followed by a reboot of the same binary over the surviving
// NVM contents.
//
// The decision ordinal space is NOT retired instructions but retired
// persist operations — flushes plus fences, accumulated across reboots —
// so an exhaustive K=1 walk is literally "crash at every flush boundary":
// every state the protocol can leave in NVM is crashed into and must
// recover. With K=2 the second crash can land inside recovery itself.
//
// Unlike the other vmach models the crash is not rendered as a chaos
// injector: the instance itself discards the volatile tier, checks the
// bounded-durability-loss invariant, and boots a fresh kernel over the
// shared memory — a crash here is a transition the run continues through,
// not a terminal event.
type persistInstance struct {
	prog *asm.Program
	mem  *vmach.Memory
	k    *kernel.Kernel
	opt  Options
	vio  *violations

	ds   []Decision
	next int // next decision to fire

	// opsBase is the persist-op count retired by previous boots; the
	// cursor is opsBase plus the current kernel's flush+fence tally.
	opsBase uint64
	boots   int

	counterAddr, lockAddr uint32
	// cStart is the surviving counter at the start of the current boot;
	// the final counter must be exactly cStart + want.
	cStart isa.Word
	want   isa.Word

	done   bool
	ended  bool
	runErr error
}

func persistModel(p map[string]string) (Model, error) {
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	var src string
	switch p["variant"] {
	case "flushed":
		src = guest.PersistentCounterProgram(workers, iters)
	case "underflush":
		src = guest.UnderflushedCounterProgram(workers, iters)
	default:
		return nil, fmt.Errorf("mcheck: persist: unknown variant %q", p["variant"])
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("mcheck: persist: %v", err)
	}
	m := &vmachModel{name: "persist", params: p, primary: ActCrashVolatile, prog: prog}
	m.build = func(m *vmachModel, ds []Decision, opt Options) (Instance, error) {
		for _, d := range ds {
			if d.Act != ActCrashVolatile {
				return nil, fmt.Errorf("mcheck: persist: only crash-volatile decisions apply (got %s)", d.Act)
			}
		}
		mem := vmach.NewMemory()
		mem.EnablePersistence()
		in := &persistInstance{
			prog: m.prog, mem: mem, opt: opt, vio: &violations{},
			ds:          ds,
			counterAddr: m.prog.MustSymbol("counter"),
			lockAddr:    m.prog.MustSymbol("lock"),
			want:        isa.Word(workers * iters),
		}
		in.installWatchers()
		in.boot()
		return in, nil
	}
	return m, nil
}

// boot starts a kernel over the shared (surviving) memory. Only the first
// boot loads the program image: on a reboot the image is already durable
// in NVM, and reloading would reset the very data words recovery reads.
func (in *persistInstance) boot() {
	k := kernel.New(kernel.Config{
		Strategy:  &kernel.Designated{},
		CheckAt:   kernel.CheckAtResume,
		Quantum:   modelQuantum,
		MaxCycles: modelBudget,
		Memory:    in.mem,
	})
	if in.opt.Tracer != nil {
		k.Tracer = in.opt.Tracer
	}
	in.k = k
	if in.boots == 0 {
		k.Load(in.prog)
	}
	k.Spawn(in.prog.MustSymbol("main"), guest.StackTop(0))
	in.cStart = in.mem.Peek(in.counterAddr)
}

// cursor counts persist operations retired across all boots.
func (in *persistInstance) cursor() uint64 {
	return in.opsBase + in.k.M.Stats.Flushes + in.k.M.Stats.Fences
}

func (in *persistInstance) step() {
	fin, err := in.k.StepOne()
	// A persist op just retired the next decision's ordinal: crash here.
	// Each instruction advances the cursor by at most one, so at most one
	// decision can fire per step.
	if in.next < len(in.ds) && in.cursor() >= in.ds[in.next].At {
		in.crash()
		return
	}
	if fin {
		in.done = true
		in.runErr = err
	}
}

// crash is the CrashVolatile transition: check the bounded-durability-loss
// invariant at this persist boundary, discard the volatile tier, reboot.
func (in *persistInstance) crash() {
	in.next++
	vol := int64(in.mem.Peek(in.counterAddr))
	nvm := int64(in.mem.NVPeek(in.counterAddr))
	if vol-nvm > 1 {
		in.vio.add("persist-loss",
			"crash at persist op %d: counter is %d volatile but %d in NVM — %d increments lost, bound is 1",
			in.cursor(), vol, nvm, vol-nvm)
	}
	in.opsBase += in.k.M.Stats.Flushes + in.k.M.Stats.Fences
	in.mem.DiscardUnflushed()
	in.boots++
	in.boot()
}

func (in *persistInstance) RunTo(at uint64) bool {
	for !in.done && in.cursor() < at {
		in.step()
	}
	return in.done
}

func (in *persistInstance) RunToEnd() {
	for !in.done {
		in.step()
	}
	if in.ended {
		return
	}
	in.ended = true
	switch err := in.runErr; {
	case err == nil:
	case errors.Is(err, kernel.ErrDeadlock):
		in.vio.add("deadlock", "%v", err)
	case errors.Is(err, kernel.ErrLivelock):
		in.vio.add("restart-livelock", "%v", err)
	case errors.Is(err, kernel.ErrBudget):
		in.vio.add("budget", "%v", err)
	default:
		in.vio.add("abort", "%v", err)
	}
	got := in.mem.Peek(in.counterAddr)
	if want := in.cStart + in.want; got != want {
		in.vio.add("counter-exact", "counter = %d after boot %d, want %d (%d survived + %d new)",
			got, in.boots+1, want, in.cStart, in.want)
	}
	if owner := in.mem.Peek(in.lockAddr) & 0xFFFF; owner != 0 {
		in.vio.add("lock-discipline", "lock still owned by %d after the final boot completed", owner)
	}
}

func (in *persistInstance) Cursor() uint64          { return in.cursor() }
func (in *persistInstance) Violations() []Violation { return in.vio.list }

// StateHash extends the canonical kernel hash with the model's own
// behavioral state: normalizeKernel zeroes machine stats — which is
// exactly where the persist-op cursor lives — and two runs paused in
// identical kernel states still differ if their remaining crash schedules
// start at different ordinals or boot counts.
func (in *persistInstance) StateHash() ([32]byte, bool) {
	h := hashKernel(in.k)
	var extra [16]byte
	binary.LittleEndian.PutUint64(extra[:8], in.cursor())
	binary.LittleEndian.PutUint64(extra[8:], uint64(in.next)|uint64(in.boots)<<32)
	return sha256.Sum256(append(h[:], extra[:]...)), true
}

// installWatchers installs the recoverable-mutex watchpoints once, on the
// shared memory, so they survive reboots. They read the *current* kernel
// through the instance, and extend the watchRME rules with the one
// transition crash recovery adds: main (thread 0, alone) releasing a dead
// owner's lock with the epoch bumped, before any worker exists.
func (in *persistInstance) installWatchers() {
	cur := func() int {
		if t := in.k.Current(); t != nil {
			return t.ID
		}
		return -1
	}
	dead := func(tid int) bool {
		if tid < 0 || tid >= len(in.k.Threads()) {
			return true
		}
		switch in.k.Threads()[tid].State {
		case kernel.StateDone, kernel.StateFaulted, kernel.StateKilled:
			return true
		}
		return false
	}
	in.mem.Watch(in.lockAddr, func(old, new isa.Word) {
		me := cur()
		oldOwner, newOwner := int(old&0xFFFF), int(new&0xFFFF)
		oldEpoch, newEpoch := old>>16, new>>16
		switch {
		case oldOwner == 0 && newOwner != 0:
			if newOwner != me+1 || newEpoch != oldEpoch {
				in.vio.add("rme", "bad acquire %#x->%#x by t%d", old, new, me)
			}
		case oldOwner != 0 && newOwner == 0:
			switch {
			case oldOwner == me+1 && newEpoch == oldEpoch:
				// Release by the owner.
			case me == 0 && newEpoch == oldEpoch+1 && dead(oldOwner-1):
				// Boot-time repair of a crashed boot's owner.
			default:
				in.vio.add("rme", "bad release/repair %#x->%#x by t%d", old, new, me)
			}
		case oldOwner != 0 && newOwner != 0:
			if newOwner != me+1 || newEpoch != oldEpoch+1 {
				in.vio.add("rme", "bad steal %#x->%#x by t%d", old, new, me)
			}
			if !dead(oldOwner - 1) {
				in.vio.add("mutual-exclusion", "t%d stole the lock from live t%d", me, oldOwner-1)
			}
		}
	})
	in.mem.Watch(in.counterAddr, func(old, new isa.Word) {
		lock := in.mem.Peek(in.lockAddr)
		if me := cur(); int(lock&0xFFFF) != me+1 || new != old+1 {
			in.vio.add("mutual-exclusion", "t%d incremented %d->%d with lock %#x", me, old, new, lock)
		}
	})
}
