package mcheck

import "testing"

// The MCS queue lock at 2 CPUs: bounded-exhaustive over every pair of
// forced CPU switches. Exactness comes from the counter watchpoint and
// final count; FIFO comes from comparing the critical-section grant
// order against the tail-swap admission order recorded by the qtail
// watchpoint — they must match on every schedule.
func TestQlockExhaustiveMCS(t *testing.T) {
	m := build(t, "qlock-queue", map[string]string{"variant": "mcs"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The recoverable variant under the same switch walk: the repair
// machinery must not disturb FIFO or exactness when nothing dies.
func TestQlockExhaustiveRMCSSwitches(t *testing.T) {
	m := build(t, "qlock-queue", map[string]string{"variant": "rmcs"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// Recoverable MCS at 2 CPUs with rendezvoused queue overlap, a forced
// kill at every scheduler-step ordinal: every schedule must stay
// exact, keep all survivors live, and never wedge.
func TestQlockExhaustiveRMCSKill(t *testing.T) {
	m := build(t, "qlock-rec", map[string]string{"variant": "rmcs"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The three-party queue (holder, middle waiter, tail waiter) under a
// kill at every ordinal: dead-waiter splicing and release-side scans
// must repair every schedule.
func TestQlockExhaustiveRMCSKill3(t *testing.T) {
	m := build(t, "qlock-rec", map[string]string{"variant": "rmcs", "cpus": "3"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The non-recoverable MCS baseline must wedge under some single kill —
// that wedge is the reason the recoverable variant exists, so the
// checker finding it is a positive result the suite pins.
func TestQlockKillWedgesPlainMCS(t *testing.T) {
	m := build(t, "qlock-rec", map[string]string{"variant": "mcs"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counterexample == nil {
		t.Fatalf("no kill wedges the plain MCS queue? %v", rep)
	}
	t.Logf("%v", rep)
}

// The planted repair bug: the unspliced variant never publishes the
// pred->next repair and its release waits for the link naively. The
// checker must catch it within one kill, shrink the schedule to at
// most 2 decisions, and the serialized .sched must replay the exact
// violation cold.
func TestQlockCatchesUnspliced(t *testing.T) {
	m := build(t, "qlock-rec", map[string]string{"variant": "rmcs-unspliced"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the unspliced-successor bug: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n > 2 {
		t.Errorf("counterexample has %d decisions, want <= 2", n)
	}
	// Round-trip through the .sched serialization and replay cold.
	path := t.TempDir() + "/unspliced.sched"
	if err := cex.Schedule.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildSchedule(back)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := RunOnce(m2, back.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("replayed .sched does not reproduce: %v", back.Decisions)
	}
	t.Logf("%v\nsched:\n%s", rep, cex.Schedule.Format())
}
