package mcheck

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/qlock"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// The qlock models check internal/qlock's queue locks the same way the
// smp model checks the paper's hybrid lock — whole-CPU interleaving
// with forced decisions at scheduler-step ordinals — but with a much
// smaller fairness quantum: queue locks hand off through memory, so a
// waiter parked on the interleaving for thousands of steps only burns
// horizon. The short quantum keeps whole contended runs inside an
// exhaustively walkable ordinal space.
const qlockTurn = 48

// qlockBudget bounds each CPU's cycles. Wedged queues (the MCS
// baseline under kills, the planted unspliced variant) surface as this
// budget tripping, which the end-state check reports as a violation.
const qlockBudget = uint64(2_000_000)

func qlockVariant(p map[string]string) (qlock.Variant, error) {
	switch p["variant"] {
	case "mcs":
		return qlock.MCS, nil
	case "rmcs":
		return qlock.RMCS, nil
	case "rmcs-unspliced":
		return qlock.RMCSUnspliced, nil
	}
	return 0, fmt.Errorf("mcheck: unknown qlock variant %q", p["variant"])
}

// qlockQueueModel checks MCS-family FIFO and exactness under forced
// CPU switches (no kills): the critical sections must be granted in
// exactly the order the tail swaps admitted the waiters.
type qlockQueueModel struct {
	params map[string]string
	cfg    qlock.Config
	prog   *asm.Program
}

func qlockQueueModelBuild(p map[string]string) (Model, error) {
	v, err := qlockVariant(p)
	if err != nil {
		return nil, err
	}
	cpus, err := paramInt(p, "cpus")
	if err != nil {
		return nil, err
	}
	iters, err := paramInt(p, "iters")
	if err != nil {
		return nil, err
	}
	cfg := qlock.Config{
		Variant:   v,
		CPUs:      cpus,
		Iters:     iters,
		Audit:     true,
		Quantum:   modelQuantum,
		MaxCycles: qlockBudget,
	}
	return &qlockQueueModel{params: p, cfg: cfg, prog: qlock.Assembled(cfg)}, nil
}

func (m *qlockQueueModel) Name() string              { return "qlock-queue" }
func (m *qlockQueueModel) Params() map[string]string { return m.params }
func (m *qlockQueueModel) Primary() Action           { return ActSwitch }
func (m *qlockQueueModel) Pausable() bool            { return true }

func (m *qlockQueueModel) New(ds []Decision, opt Options) (Instance, error) {
	r, err := qlock.NewWith(m.cfg, m.prog)
	if err != nil {
		return nil, err
	}
	if opt.Tracer != nil {
		r.Sys.AttachTracer(opt.Tracer)
	}
	in := &qlockInstance{run: r, vio: &violations{}, ds: ds, turnMax: qlockTurn, fifo: true}
	in.watchCounter()
	// The qtail watchpoint records the true admission order: with no
	// kills and no TryAcquire the only non-zero stores to the tail are
	// the enqueue swaps, one per passage.
	r.Sys.Mem.Watch(r.Prog.Qtail, func(old, new isa.Word) {
		if new != 0 {
			in.enq = append(in.enq, in.nodeOwner(uint32(new)))
		}
	})
	return in, nil
}

// qlockRecModel checks the recoverable variants under forced kills.
// Rendezvous roles guarantee real queue overlap on every schedule, so
// a kill at any ordinal lands on a non-trivial queue. Recoverable MCS
// must keep exactness and liveness; the plain MCS baseline and the
// planted unspliced variant must wedge (budget violation) within one
// kill, which is what the suite's expect=violation entries pin.
type qlockRecModel struct {
	params map[string]string
	cfg    qlock.Config
	prog   *asm.Program
}

func qlockRecModelBuild(p map[string]string) (Model, error) {
	v, err := qlockVariant(p)
	if err != nil {
		return nil, err
	}
	cpus, err := paramInt(p, "cpus")
	if err != nil {
		return nil, err
	}
	iters, err := paramInt(p, "iters")
	if err != nil {
		return nil, err
	}
	var workers []qlock.WorkerOpt
	switch cpus {
	case 2:
		workers = []qlock.WorkerOpt{qlock.HoldFor(1), qlock.WaitHeld(0)}
	case 3:
		// A holds until W has enqueued; D queues behind A; W queues
		// behind D — the three-party shape whose middle waiter dying
		// exercises splicing and successor scans.
		workers = []qlock.WorkerOpt{qlock.HoldFor(2), qlock.WaitHeld(0), qlock.WaitEnq(1)}
	default:
		return nil, fmt.Errorf("mcheck: qlock-rec wants cpus=2|3, got %d", cpus)
	}
	cfg := qlock.Config{
		Variant:   v,
		CPUs:      cpus,
		Iters:     iters,
		Workers:   workers,
		Quantum:   modelQuantum,
		MaxCycles: qlockBudget,
	}
	return &qlockRecModel{params: p, cfg: cfg, prog: qlock.Assembled(cfg)}, nil
}

func (m *qlockRecModel) Name() string              { return "qlock-rec" }
func (m *qlockRecModel) Params() map[string]string { return m.params }
func (m *qlockRecModel) Primary() Action           { return ActKill }
func (m *qlockRecModel) Pausable() bool            { return true }

func (m *qlockRecModel) New(ds []Decision, opt Options) (Instance, error) {
	r, err := qlock.NewWith(m.cfg, m.prog)
	if err != nil {
		return nil, err
	}
	if opt.Tracer != nil {
		r.Sys.AttachTracer(opt.Tracer)
	}
	in := &qlockInstance{run: r, vio: &violations{}, ds: ds, turnMax: qlockTurn}
	in.watchCounter()
	return in, nil
}

// qlockInstance drives one qlock system under a decision list, in the
// smp-counter style: the ordinal space is scheduler steps across all
// CPUs, ActSwitch rotates the interleaving, ActKill kills the thread
// on the CPU holding it.
type qlockInstance struct {
	run     *qlock.Run
	vio     *violations
	ds      []Decision
	di      int
	cur     int
	steps   uint64
	turn    uint64
	turnMax uint64

	fifo  bool  // check grant order == admission order (kill-free models)
	enq   []int // global tids in tail-swap order
	kills int   // kills actually applied
	done  bool
	ended bool
}

func (in *qlockInstance) watchCounter() {
	in.run.Sys.Mem.Watch(in.run.Prog.Counter, func(old, new isa.Word) {
		if new != old+1 {
			in.vio.add("lost-update", "counter store %d->%d is not an increment", old, new)
		}
	})
}

// nodeOwner maps a qnode address back to its worker's global tid.
func (in *qlockInstance) nodeOwner(addr uint32) int {
	cpu := int(addr-in.run.Prog.Qnodes) / 64
	return smp.GlobalID(cpu, 0)
}

func (in *qlockInstance) rotate() {
	sys := in.run.Sys
	n := len(sys.CPUs)
	for j := 1; j <= n; j++ {
		c := (in.cur + j) % n
		if !sys.Done(c) {
			in.cur = c
			break
		}
	}
	in.turn = 0
}

func (in *qlockInstance) step() {
	sys := in.run.Sys
	if sys.AllDone() {
		in.done = true
		return
	}
	if sys.Done(in.cur) || in.turn >= in.turnMax {
		in.rotate()
	}
	sys.StepCPU(in.cur)
	in.steps++
	in.turn++
	for in.di < len(in.ds) && in.ds[in.di].At == in.steps {
		switch in.ds[in.di].Act {
		case ActSwitch:
			in.rotate()
		case ActKill:
			if err := sys.KillThread(in.cur, 0); err == nil {
				in.kills++
			}
		}
		in.di++
	}
	if sys.AllDone() {
		in.done = true
	}
}

func (in *qlockInstance) RunTo(at uint64) bool {
	for !in.done && in.steps < at {
		in.step()
	}
	return in.done
}

func (in *qlockInstance) RunToEnd() {
	for !in.done {
		in.step()
	}
	if in.ended {
		return
	}
	in.ended = true
	sys := in.run.Sys
	for c := range sys.CPUs {
		err := sys.CPUVerdict(c)
		switch {
		case err == nil:
		case errors.Is(err, kernel.ErrDeadlock):
			in.vio.add("deadlock", "cpu%d: %v", c, err)
		case errors.Is(err, kernel.ErrLivelock):
			in.vio.add("restart-livelock", "cpu%d: %v", c, err)
		case errors.Is(err, kernel.ErrBudget):
			in.vio.add("budget", "cpu%d: %v", c, err)
		default:
			in.vio.add("abort", "cpu%d: %v", c, err)
		}
	}
	res, err := in.run.Collect()
	if err != nil {
		// One benign shape: a worker killed inside its critical
		// section after the counter increment but before its own
		// completion count leaves the counter exactly one ahead.
		if res == nil || res.Counter != res.Passages+1 || in.kills == 0 {
			in.vio.add("mutual-exclusion", "%v", err)
			return
		}
	}
	iters := uint64(in.run.Cfg.Iters)
	for c := range sys.CPUs {
		ts := sys.CPUs[c].Threads()
		exited := len(ts) > 0 && ts[0].State == kernel.StateDone
		if exited && res.Mine[c] != iters {
			in.vio.add("lost-passage", "surviving worker %d completed %d of %d passages", c, res.Mine[c], iters)
		}
	}
	if in.kills == 0 && res.Counter != uint64(in.run.Cfg.CPUs)*iters {
		in.vio.add("counter-exact", "counter = %d, want %d", res.Counter, uint64(in.run.Cfg.CPUs)*iters)
	}
	if in.fifo {
		if len(res.CSOrder) != len(in.enq) {
			in.vio.add("fifo", "%d grants vs %d admissions", len(res.CSOrder), len(in.enq))
			return
		}
		for i := range in.enq {
			if res.CSOrder[i] != in.enq[i] {
				in.vio.add("fifo", "grant %d went to tid %d, admission order says tid %d",
					i, res.CSOrder[i], in.enq[i])
				return
			}
		}
	}
}

func (in *qlockInstance) Cursor() uint64          { return in.steps }
func (in *qlockInstance) Violations() []Violation { return in.vio.list }
func (in *qlockInstance) StateHash() ([32]byte, bool) {
	return hashSMP(in.run.Sys, in.cur, in.turn), true
}
