package mcheck

// A minimal splitmix64 generator: deterministic, seedable, dependency-
// free. Schedule i of a random exploration derives its own stream from
// (seed, i), so any single sample replays without regenerating the ones
// before it.

type randState struct{ s uint64 }

func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRand builds the stream for sample i of a seed.
func newRand(seed, i uint64) *randState {
	return &randState{s: splitmix64(seed+0x9e3779b97f4a7c15) ^ splitmix64(i+0x6a09e667f3bcc909)}
}

func (r *randState) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return splitmix64(r.s)
}
