package mcheck

import (
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/resilience"
)

// The supervisor-in-the-loop model: the whole crash-restart stack —
// resilience.Supervise over the uniproc exactly-once server world — as
// one checkable system. The decision ordinal space is GLOBAL persist
// operations across every machine life of the campaign: each boot's
// injector is offset by the persist ops already consumed
// (chaos.Offset), so ordinal N uniquely names "the Nth flush/fence the
// campaign ever performs", wherever that falls — mid-workload, inside
// recovery, or inside a later life's recovery of an earlier crash. With
// K=2 the exhaustive walk therefore covers crash-during-recovery and
// the crash-loop demotion path, and a violating schedule is replayable
// as a one-line .sched like every other model.

// offsetWorld wraps the server world, accumulating each life's persist
// ops so the next life's injector can be offset into the global space.
type offsetWorld struct {
	w    *resilience.ServerWorld
	base uint64
}

func (o *offsetWorld) Boot(boot int, inj chaos.Injector, degraded bool) resilience.Report {
	rep := o.w.Boot(boot, inj, degraded)
	o.base += rep.PersistOps
	return rep
}

func (o *offsetWorld) Check() error { return o.w.Check() }

// resilienceModel builds the model. variant=dedup is the shipped
// exactly-once server; variant=nodedup is the planted missing-dedup
// replay whose double-apply needs at least one crash to manifest (the
// empty schedule passes, so the shrinker's counterexample is a single
// decision). kind picks the crash flavor the explorer enumerates.
func resilienceModel(p map[string]string) (Model, error) {
	clients, err := paramInt(p, "clients")
	if err != nil {
		return nil, err
	}
	iters, err := paramInt(p, "iters")
	if err != nil {
		return nil, err
	}
	variant := p["variant"]
	if variant != "dedup" && variant != "nodedup" {
		return nil, fmt.Errorf("mcheck: resilience: unknown variant %q", variant)
	}
	prim := ActCrashVolatile
	switch p["kind"] {
	case "volatile":
	case "torn":
		prim = ActCrashTorn
	default:
		return nil, fmt.Errorf("mcheck: resilience: unknown kind %q", p["kind"])
	}
	m := &uniModel{name: "resilience", params: p, primary: prim}
	m.run = func(ds []Decision, opt Options, vio *violations) uint64 {
		ow := &offsetWorld{w: resilience.NewServerWorld(resilience.ServerWorldConfig{
			Clients: clients,
			Iters:   iters,
			Shards:  1,
			NoDedup: variant == "nodedup",
		})}
		inner := newInjector(chaos.PointPersist, ds)
		out, err := resilience.Supervise(ow, resilience.Config{
			Boots: func(boot int) chaos.Injector {
				// ow.base at call time = persist ops before this life.
				return chaos.Offset(inner, ow.base)
			},
			MaxBoots: 8, CrashLoopK: 2, RepromoteAfter: 1, JitterSeed: 1,
		})
		switch {
		case errors.Is(err, resilience.ErrRestartBudget):
			vio.add("stuck", "%v", err)
		case err != nil:
			// Per-boot audits and the final exactly-once accounting both
			// surface here (acked-but-lost, counter drift, double-apply).
			vio.add("exactly-once", "%v", err)
		case !out.Completed:
			vio.add("stuck", "campaign ended without completing: %v", out)
		}
		return ow.base
	}
	return m, nil
}
