package mcheck

import (
	"strings"
	"testing"
)

// The shipped exactly-once server survives a crash at EVERY global
// persist ordinal of the supervised campaign — volatile rewind and torn
// write-back alike. One decision is one machine crash anywhere in any
// life, including inside a later life's recovery.
func TestExhaustiveResilienceCrashAnywhere(t *testing.T) {
	for _, kind := range []string{"volatile", "torn"} {
		e := &Explorer{Model: build(t, "resilience", map[string]string{"kind": kind}), MaxDecisions: 1}
		rep, err := e.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("kind=%s: %v\nrepro: %s", kind, rep, reproLine(rep))
		}
		// Two exactly-once applies are ~6 persist ops plus recovery's
		// replay fences; far fewer schedules means the cross-boot ordinal
		// offset is not accumulating.
		if rep.Schedules < 10 {
			t.Errorf("kind=%s: only %d schedules — the global persist-op horizon is too short", kind, rep.Schedules)
		}
		t.Logf("kind=%s: %v", kind, rep)
	}
}

// K=2 lands the second crash inside the recovery (or the degraded
// aftermath) of the first — the crash-loop/demotion path is inside the
// covered space because the supervisor itself runs under the model.
func TestExhaustiveResilienceCrashDuringRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("K=2 walk is a few hundred campaigns")
	}
	e := &Explorer{Model: build(t, "resilience", nil), MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The planted missing-dedup server: recovery replays every surviving WAL
// record as a fresh increment, so any crash after the first durable
// effect double-applies it on the next boot. The empty schedule passes
// (no crash, no replay), so the checker must catch it, shrink it to ONE
// decision, and the serialized .sched must replay to the same violation.
func TestResilienceNoDedupCaughtAndShrunk(t *testing.T) {
	m := build(t, "resilience", map[string]string{"variant": "nodedup"})
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the missing-dedup replay: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n > 1 {
		t.Errorf("counterexample has %d decisions, want <= 1 (a single well-placed crash)", n)
	}
	found := false
	for _, v := range cex.Violations {
		if v.Kind == "exactly-once" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include exactly-once", cex.Violations)
	}

	path := t.TempDir() + "/nodedup.sched"
	if err := cex.Schedule.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := BuildSchedule(back)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := RunOnce(rm, back.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("deserialized counterexample does not replay (repro: go run ./cmd/rascheck -replay %s)", path)
	}
	if !strings.Contains(vio[0].Kind, "exactly-once") {
		t.Errorf("replayed violation kind %q, want exactly-once", vio[0].Kind)
	}
	t.Logf("%v", rep)
}

// The registry rejects parameters that would silently check a different
// system than a .sched file claims.
func TestResilienceModelParamValidation(t *testing.T) {
	for _, over := range []map[string]string{
		{"variant": "mystery"},
		{"kind": "emp"},
		{"clients": "0"},
		{"iters": "x"},
	} {
		if _, err := BuildModel("resilience", over); err == nil {
			t.Errorf("BuildModel(resilience, %v): want error, got nil", over)
		}
	}
}
