package mcheck

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The .sched file format: a self-describing, line-oriented serialization
// of a Schedule. It exists so a counterexample survives its process — a
// CI failure uploads the file, and `rascheck -replay` or `rasvm
// -replay-sched` re-executes the exact interleaving anywhere.
//
//	# comment
//	model counter
//	param mech none
//	param workers 2
//	decision preempt 37
//	note found by rascheck -model counter -mode exhaustive
//
// Keys sort deterministically, so Format is canonical: equal schedules
// serialize byte-identically.

// Format renders the schedule canonically.
func (s *Schedule) Format() []byte {
	var b strings.Builder
	b.WriteString("# mcheck schedule\n")
	fmt.Fprintf(&b, "model %s\n", s.Model)
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "param %s %s\n", k, s.Params[k])
	}
	for _, d := range s.Decisions {
		fmt.Fprintf(&b, "decision %s %d\n", d.Act, d.At)
	}
	if s.Note != "" {
		fmt.Fprintf(&b, "note %s\n", s.Note)
	}
	return []byte(b.String())
}

// Parse reads a .sched serialization back into a Schedule.
func Parse(data []byte) (*Schedule, error) {
	s := &Schedule{Params: map[string]string{}}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "model":
			s.Model = rest
		case "param":
			k, v, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("mcheck: line %d: param needs a key and a value", ln+1)
			}
			s.Params[k] = v
		case "decision":
			as, ns, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("mcheck: line %d: decision needs an action and an ordinal", ln+1)
			}
			act, err := ParseAction(as)
			if err != nil {
				return nil, fmt.Errorf("mcheck: line %d: %v", ln+1, err)
			}
			at, err := strconv.ParseUint(ns, 10, 64)
			if err != nil || at == 0 {
				return nil, fmt.Errorf("mcheck: line %d: bad ordinal %q", ln+1, ns)
			}
			s.Decisions = append(s.Decisions, Decision{At: at, Act: act})
		case "note":
			s.Note = rest
		default:
			return nil, fmt.Errorf("mcheck: line %d: unknown directive %q", ln+1, key)
		}
	}
	if s.Model == "" {
		return nil, fmt.Errorf("mcheck: schedule has no model line")
	}
	sort.SliceStable(s.Decisions, func(i, j int) bool { return s.Decisions[i].At < s.Decisions[j].At })
	return s, nil
}

// ReadFile parses the .sched file at path.
func ReadFile(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// WriteFile serializes the schedule to path.
func (s *Schedule) WriteFile(path string) error {
	return os.WriteFile(path, s.Format(), 0o644)
}

// ParamString renders the params as the rascheck -params flag value.
func (s *Schedule) ParamString() string {
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+s.Params[k])
	}
	return strings.Join(parts, ",")
}
