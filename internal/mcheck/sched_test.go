package mcheck

import (
	"strings"
	"testing"
)

func TestSchedRoundTrip(t *testing.T) {
	s := &Schedule{
		Model:  "counter",
		Params: map[string]string{"mech": "none", "workers": "2", "iters": "1"},
		Decisions: []Decision{
			{At: 17, Act: ActPreempt},
			{At: 42, Act: ActKill},
			{At: 99, Act: ActSwitch},
		},
		Note: "minimized from 3 decisions",
	}
	back, err := Parse(s.Format())
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != s.Model {
		t.Errorf("model %q != %q", back.Model, s.Model)
	}
	if len(back.Params) != len(s.Params) {
		t.Errorf("params %v != %v", back.Params, s.Params)
	}
	for k, v := range s.Params {
		if back.Params[k] != v {
			t.Errorf("param %s: %q != %q", k, back.Params[k], v)
		}
	}
	if len(back.Decisions) != len(s.Decisions) {
		t.Fatalf("decisions %v != %v", back.Decisions, s.Decisions)
	}
	for i := range s.Decisions {
		if back.Decisions[i] != s.Decisions[i] {
			t.Errorf("decision %d: %v != %v", i, back.Decisions[i], s.Decisions[i])
		}
	}
	if back.Note != s.Note {
		t.Errorf("note %q != %q", back.Note, s.Note)
	}
}

func TestSchedParseSortsDecisions(t *testing.T) {
	in := "model counter\ndecision preempt 9\ndecision preempt 3\n"
	s, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Decisions[0].At != 3 || s.Decisions[1].At != 9 {
		t.Errorf("not sorted: %v", s.Decisions)
	}
}

func TestSchedParseErrors(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"no-model", "decision preempt 5\n"},
		{"bad-action", "model counter\ndecision explode 5\n"},
		{"zero-ordinal", "model counter\ndecision preempt 0\n"},
		{"bad-ordinal", "model counter\ndecision preempt x\n"},
		{"garbage-line", "model counter\nwibble\n"},
		{"bad-param", "model counter\nparam onlykey\n"},
	} {
		if _, err := Parse([]byte(tc.in)); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.in)
		}
	}
}

func TestSchedFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/x.sched"
	s := &Schedule{Model: "broken2store", Decisions: []Decision{{At: 5, Act: ActPreempt}}}
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != "broken2store" || len(back.Decisions) != 1 || back.Decisions[0].At != 5 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestActionStrings(t *testing.T) {
	for _, a := range []Action{ActPreempt, ActKill, ActCrash, ActSwitch} {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAction("nope"); err == nil {
		t.Error("ParseAction accepted garbage")
	}
}

func TestParamString(t *testing.T) {
	s := &Schedule{Params: map[string]string{"b": "2", "a": "1"}}
	if got := s.ParamString(); got != "a=1,b=2" {
		t.Errorf("ParamString = %q, want sorted a=1,b=2", got)
	}
	if got := (&Schedule{}).ParamString(); got != "" {
		t.Errorf("empty ParamString = %q", got)
	}
}

func TestFormatIsCommentFriendly(t *testing.T) {
	s := &Schedule{Model: "counter", Decisions: []Decision{{At: 1, Act: ActPreempt}}}
	text := string(s.Format())
	if !strings.HasPrefix(text, "# mcheck schedule") {
		t.Errorf("missing header comment: %q", text)
	}
	// Comments and blank lines must survive a round trip.
	withNoise := "# hand-edited\n\n" + text + "\n# trailing\n"
	if _, err := Parse([]byte(withNoise)); err != nil {
		t.Errorf("comments/blank lines rejected: %v", err)
	}
}
