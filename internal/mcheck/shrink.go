package mcheck

// The shrinker. A counterexample straight out of the explorer carries
// whatever prefix the walk happened to be on; what a human wants is the
// minimal interleaving that still breaks the invariant. Two greedy
// passes, both preserving "still fails" at every step, reach a local
// minimum that is in practice the canonical counterexample:
//
//  1. delta pass — drop decisions one at a time, restarting after every
//     success, until no single removal still fails;
//  2. lowering pass — move each surviving decision to the earliest
//     ordinal (respecting the sort order) at which the schedule still
//     fails, so the counterexample points at the first vulnerable
//     instruction rather than an arbitrary later one.
//
// Determinism of the substrates makes each probe exact: a candidate
// either fails or it does not, no flakiness budget needed.

// shrinkProbes caps the total candidate runs so a pathological schedule
// cannot stall the checker; runs are cheap, the cap is generous.
const shrinkProbes = 4000

// Shrink minimizes a failing schedule. It returns the minimized schedule
// and the violations of its final failing run. The input schedule is not
// modified.
func Shrink(m Model, s *Schedule, opt Options) (*Schedule, []Violation) {
	probes := 0
	var lastVio []Violation
	fails := func(ds []Decision) bool {
		if probes >= shrinkProbes {
			return false
		}
		probes++
		vio, err := RunOnce(m, ds, opt)
		if err != nil {
			return false
		}
		if len(vio) > 0 {
			lastVio = vio
			return true
		}
		return false
	}

	out := s.Clone()
	ds := out.Decisions

	// Delta pass: greedy removal to fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(ds); i++ {
			cand := make([]Decision, 0, len(ds)-1)
			cand = append(cand, ds[:i]...)
			cand = append(cand, ds[i+1:]...)
			if fails(cand) {
				ds = cand
				changed = true
				i--
			}
		}
	}

	// Lowering pass: slide each ordinal down to its earliest failing
	// position, keeping the list strictly increasing.
	for i := range ds {
		lo := uint64(1)
		if i > 0 {
			lo = ds[i-1].At + 1
		}
		for at := lo; at < ds[i].At; at++ {
			cand := append([]Decision(nil), ds...)
			cand[i].At = at
			if fails(cand) {
				ds = cand
				break
			}
		}
	}

	out.Decisions = ds
	return out, lastVio
}
