package mcheck

import "testing"

// The paper's hybrid lock (RAS fast path + spinlock cohort) at 2 CPUs:
// bounded-exhaustive over every pair of forced CPU switches. This is the
// acceptance criterion "exhaustively verifies ... guest.SMPCounterProgram's
// hybrid lock at 2 CPUs at a stated bound" — the bound being K<=2 forced
// switches on top of smpTurn round-robin.
func TestSMPExhaustiveHybrid(t *testing.T) {
	m := build(t, "smp-counter", map[string]string{"lock": "hybrid"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// ll/sc also survives arbitrary switch pairs: an intervening write on the
// other CPU fails the sc and the loop retries.
func TestSMPExhaustiveLLSC(t *testing.T) {
	m := build(t, "smp-counter", map[string]string{"lock": "llsc"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The uniprocessor-only RAS gives no cross-CPU atomicity: a forced switch
// between its load and store on true SMP loses an update. The checker
// must find that interleaving within K<=2 switches — the paper's §6 point
// that restartable sequences do not generalize to multiprocessors without
// a hardware primitive underneath.
func TestSMPExhaustiveCatchesRASOnly(t *testing.T) {
	m := build(t, "smp-counter", map[string]string{"lock": "ras-only"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the SMP-unsafe RAS: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n > 2 {
		t.Errorf("counterexample has %d decisions, want <= 2", n)
	}
	// Replay the minimized switch schedule cold.
	vio, err := RunOnce(m, cex.Schedule.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("minimized counterexample does not replay: %v", cex.Schedule.Decisions)
	}
	t.Logf("%v", rep)
}

// Random mode over the smp switch space reproduces from its seed.
func TestSMPRandomDeterministic(t *testing.T) {
	m := build(t, "smp-counter", map[string]string{"lock": "ras-only"})
	run := func() *Report {
		e := &Explorer{Model: m, MaxDecisions: 2}
		rep, err := e.Random(7, 100, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Counterexample == nil || b.Counterexample == nil {
		t.Skip("seed 7 did not hit the window; exhaustive coverage is tested above")
	}
	da, db := a.Counterexample.Schedule.Decisions, b.Counterexample.Schedule.Decisions
	if len(da) != len(db) {
		t.Fatalf("same seed, different counterexamples: %v vs %v", da, db)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed, different counterexamples: %v vs %v", da, db)
		}
	}
}
