package mcheck

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/vmach/kernel"
	"repro/internal/vmach/smp"
)

// The smp model interleaves whole CPUs: the decision ordinal space counts
// scheduler steps across all CPUs, and an ActSwitch decision hands the
// interleaving to the next unfinished CPU at that ordinal. Between
// decisions the current CPU keeps stepping, up to a fixed fairness
// quantum (smpTurn steps) after which the interleaving rotates on its
// own — without that floor, a schedule that parks the interleaving on a
// CPU spinning for a lock another CPU holds would starve the holder and
// report a fake livelock. The schedule space explored is therefore
// "round-robin at smpTurn granularity plus up to K forced switches at
// arbitrary step ordinals" — a context-bound in the Qadeer–Rehof sense,
// with K the bound.
const smpTurn = 4096

// smpBudget bounds each CPU's cycles; spin-waits burn cycles fast, so
// this is higher than the single-CPU budget.
const smpBudget = uint64(50_000_000)

type smpModel struct {
	params map[string]string
	lock   guest.SMPLock
	cpus   int
	iters  int
	prog   *asm.Program
}

func smpCounterModel(p map[string]string) (Model, error) {
	var lock guest.SMPLock
	switch p["lock"] {
	case "hybrid":
		lock = guest.SMPHybrid
	case "spinlock":
		lock = guest.SMPSpin
	case "llsc":
		lock = guest.SMPLLSC
	case "ras-only":
		lock = guest.SMPRASOnly
	default:
		return nil, fmt.Errorf("mcheck: smp-counter: unknown lock %q", p["lock"])
	}
	cpus, err := paramInt(p, "cpus")
	if err != nil {
		return nil, err
	}
	iters, err := paramInt(p, "iters")
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(guest.SMPCounterProgram(lock, cpus))
	if err != nil {
		return nil, fmt.Errorf("mcheck: smp-counter: %v", err)
	}
	return &smpModel{params: p, lock: lock, cpus: cpus, iters: iters, prog: prog}, nil
}

func (m *smpModel) Name() string              { return "smp-counter" }
func (m *smpModel) Params() map[string]string { return m.params }
func (m *smpModel) Primary() Action           { return ActSwitch }
func (m *smpModel) Pausable() bool            { return true }

func (m *smpModel) New(ds []Decision, opt Options) (Instance, error) {
	sys := smp.New(smp.Config{
		CPUs:      m.cpus,
		Quantum:   modelQuantum,
		MaxCycles: smpBudget,
	})
	if opt.Tracer != nil {
		sys.AttachTracer(opt.Tracer)
	}
	sys.Load(m.prog)
	for c := 0; c < m.cpus; c++ {
		_, gid := sys.Spawn(c, m.prog.MustSymbol("worker"), guest.StackTop(smp.GlobalID(c, 0)), isa.Word(m.iters))
		_ = gid
	}
	vio := &violations{}
	counterAddr := m.prog.MustSymbol("counter")
	// On shared memory the counter watchpoint IS the mutual-exclusion
	// checker: each critical section is lw/addi/sw, so two overlapping
	// passages surface as a store that is not old+1.
	sys.Mem.Watch(counterAddr, func(old, new isa.Word) {
		if new != old+1 {
			vio.add("lost-update", "counter store %d->%d is not an increment", old, new)
		}
	})
	in := &smpInstance{
		sys: sys, vio: vio, ds: ds,
		want:        isa.Word(m.cpus * m.iters),
		counterAddr: counterAddr,
	}
	return in, nil
}

type smpInstance struct {
	sys   *smp.System
	vio   *violations
	ds    []Decision // sorted by At; next is ds[di]
	di    int
	cur   int    // CPU holding the interleaving
	steps uint64 // global step ordinal: total StepCPU calls
	turn  uint64 // steps since the interleaving last moved

	want        isa.Word
	counterAddr uint32
	done        bool
	ended       bool
}

// rotate hands the interleaving to the next unfinished CPU.
func (in *smpInstance) rotate() {
	n := len(in.sys.CPUs)
	for j := 1; j <= n; j++ {
		c := (in.cur + j) % n
		if !in.sys.Done(c) {
			in.cur = c
			break
		}
	}
	in.turn = 0
}

func (in *smpInstance) step() {
	if in.sys.AllDone() {
		in.done = true
		return
	}
	if in.sys.Done(in.cur) || in.turn >= smpTurn {
		in.rotate()
	}
	in.sys.StepCPU(in.cur)
	in.steps++
	in.turn++
	for in.di < len(in.ds) && in.ds[in.di].At == in.steps {
		if in.ds[in.di].Act == ActSwitch {
			in.rotate()
		}
		in.di++
	}
	if in.sys.AllDone() {
		in.done = true
	}
}

func (in *smpInstance) RunTo(at uint64) bool {
	for !in.done && in.steps < at {
		in.step()
	}
	return in.done
}

func (in *smpInstance) RunToEnd() {
	for !in.done {
		in.step()
	}
	if in.ended {
		return
	}
	in.ended = true
	for c := range in.sys.CPUs {
		err := in.sys.CPUVerdict(c)
		switch {
		case err == nil:
		case errors.Is(err, kernel.ErrDeadlock):
			in.vio.add("deadlock", "cpu%d: %v", c, err)
		case errors.Is(err, kernel.ErrLivelock):
			in.vio.add("restart-livelock", "cpu%d: %v", c, err)
		case errors.Is(err, kernel.ErrBudget):
			in.vio.add("budget", "cpu%d: %v", c, err)
		default:
			in.vio.add("abort", "cpu%d: %v", c, err)
		}
	}
	if got := in.sys.Mem.Peek(in.counterAddr); got != in.want {
		in.vio.add("counter-exact", "counter = %d, want %d", got, in.want)
	}
}

func (in *smpInstance) Cursor() uint64          { return in.steps }
func (in *smpInstance) Violations() []Violation { return in.vio.list }
func (in *smpInstance) StateHash() ([32]byte, bool) {
	return hashSMP(in.sys, in.cur, in.turn), true
}
