package mcheck

import "fmt"

// The canned verification suite: the checks this layer exists to run,
// with their bounds and their expected outcomes. `rascheck -suite` and
// the acceptance test both execute exactly this list, so "what the model
// checker proves" has one definition.
//
// ExpectViolation entries are deliberate defects (the unprotected TAS,
// the uniprocessor-only RAS on SMP, the two-store sequence): the suite
// FAILS if the checker does NOT catch them, and records the minimized
// counterexample when it does.

// SuiteEntry is one canned check.
type SuiteEntry struct {
	Model  string
	Over   map[string]string // param overrides
	Mode   string            // "exhaustive" or "random"
	K      int               // MaxDecisions
	Seed   uint64            // random mode
	Count  int               // random mode: schedules
	Expect string            // "pass" or "violation"
	Why    string            // one line: what this check proves
}

// SuiteResult is the outcome of one entry.
type SuiteResult struct {
	Entry  SuiteEntry
	Report *Report
	Err    error
	// OK: the outcome matched the expectation.
	OK bool
}

// Suite returns the canned entries. Bounds are chosen so the whole list
// runs in well under a minute.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{
			Model: "counter", Over: map[string]string{"mech": "registered"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "Figure-3 registered RAS: preemption pairs at every instruction",
		},
		{
			Model: "counter", Over: map[string]string{"mech": "designated"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "Figure-5 designated sequence: same walk, recognition not registration",
		},
		{
			Model: "counter", Over: map[string]string{"mech": "none"},
			Mode: "exhaustive", K: 2, Expect: "violation",
			Why: "unprotected TAS control: the checker must catch it",
		},
		{
			Model: "broken2store", Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "two committing stores: restart re-applies the first store",
		},
		{
			Model: "recoverable", Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "owner+epoch lock under a kill at every instruction",
		},
		{
			Model: "smp-counter", Over: map[string]string{"lock": "hybrid"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "paper's hybrid RAS+spinlock at 2 CPUs, K<=2 forced switches",
		},
		{
			Model: "smp-counter", Over: map[string]string{"lock": "llsc"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "ll/sc loop at 2 CPUs: intervening writes fail the sc",
		},
		{
			Model: "smp-counter", Over: map[string]string{"lock": "ras-only"},
			Mode: "exhaustive", K: 2, Expect: "violation",
			Why: "uniprocessor RAS on SMP: no cross-CPU atomicity (paper section 6)",
		},
		{
			Model: "uni-counter", Over: map[string]string{"sync": "ras"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "runtime-layer restartable sequence at every memop boundary",
		},
		{
			Model: "uni-counter", Over: map[string]string{"sync": "none"},
			Mode: "exhaustive", K: 2, Expect: "violation",
			Why: "bare load/store control at the runtime layer",
		},
		{
			Model: "uni-rme", Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "recoverable mutex: a kill at every memop is repaired",
		},
		{
			Model: "persist", Over: map[string]string{"workers": "1", "iters": "2"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "persistent lock+counter: a volatile crash at every flush boundary recovers",
		},
		{
			Model: "persist", Over: map[string]string{"workers": "1", "iters": "3", "variant": "underflush"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "under-flushed variant: a late crash loses more than one increment",
		},
		{
			Model: "journal", Over: map[string]string{"mode": "redo"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "redo-logged guest WAL: a clean crash at every flush/fence boundary recovers",
		},
		{
			Model: "journal", Over: map[string]string{"mode": "redo", "torn": "1"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "redo WAL under torn write-backs: partial lines never validate, recovery still exact",
		},
		{
			Model: "journal", Over: map[string]string{"mode": "undo", "torn": "1"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "undo WAL under torn write-backs: in-flight transactions roll back cleanly",
		},
		{
			Model: "journal", Over: map[string]string{"mode": "redo"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "redo WAL, two crashes: the second lands inside recovery, which must be idempotent",
		},
		{
			Model: "journal", Over: map[string]string{"mode": "nofence", "torn": "1"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "missing-fence WAL: a torn crash splits va/vb with no durable record to repair them",
		},
		{
			Model: "memfs-journal", Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "journaled memfs: a crash at every persist boundary remounts to a script prefix",
		},
		{
			Model: "memfs-journal", Over: map[string]string{"torn": "1"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "journaled memfs under torn write-backs: mount zeroes the torn tail, prefix survives",
		},
		{
			Model: "memfs-journal", Over: map[string]string{"variant": "nofence"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "SkipFence journal: a crash after commit loses a completed operation",
		},
		{
			Model: "pstruct", Over: map[string]string{"struct": "stack", "mode": "undo"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "undo-logged stack: every crash rolls back or completes, never tears",
		},
		{
			Model: "pstruct", Over: map[string]string{"struct": "stack", "mode": "redo", "torn": "1"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "redo-logged stack under torn write-backs",
		},
		{
			Model: "pstruct", Over: map[string]string{"struct": "queue", "mode": "redo"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "redo-logged queue: monotone head/tail recover exactly",
		},
		{
			Model: "pstruct", Over: map[string]string{"struct": "queue", "mode": "undo", "torn": "1"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "undo-logged queue under torn write-backs",
		},
		{
			Model: "pstruct", Over: map[string]string{"struct": "stack", "mode": "redo"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "redo-logged stack, two crashes: the second can land inside Recover",
		},
		{
			Model: "percpu-queue", Over: map[string]string{"drain": "safe"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "per-CPU MPSC queue: restartable batched drain under any two forced preemptions",
		},
		{
			Model: "percpu-queue", Over: map[string]string{"drain": "unsafe"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "planted non-atomic drain: a push between head read and head clear is discarded",
		},
		{
			Model: "percpu-freelist", Over: map[string]string{"variant": "ras"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "registered free-list pop/push: an interrupted pop restarts, ownership stays unique",
		},
		{
			Model: "percpu-freelist", Over: map[string]string{"variant": "bare"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "unregistered pop: a preemption before the commit double-allocates a node",
		},
		{
			Model: "percpu-server", Over: map[string]string{"variant": "percpu"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "per-CPU request ring: the worker waits for slot publication, accounting stays exact",
		},
		{
			Model: "percpu-server", Over: map[string]string{"variant": "racy"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "planted racy drain: a producer preempted before publishing has its slot consumed empty",
		},
		{
			Model: "percpu-server", Over: map[string]string{"variant": "mutex", "cpus": "2", "iters": "1"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "global-lock baseline at 2 CPUs: slower, but exact under forced preemptions",
		},
		{
			Model: "qlock-queue", Over: map[string]string{"variant": "mcs"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "MCS queue lock at 2 CPUs: FIFO handoff and exactness under forced switches",
		},
		{
			Model: "qlock-rec", Over: map[string]string{"variant": "rmcs"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "recoverable MCS: a kill at every scheduler step of a contended queue is repaired",
		},
		{
			Model: "qlock-rec", Over: map[string]string{"variant": "rmcs", "cpus": "3"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "three-party queue: a dead middle waiter is spliced past on every schedule",
		},
		{
			Model: "qlock-rec", Over: map[string]string{"variant": "mcs"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "plain MCS under a kill wedges the queue — why the recoverable variant exists",
		},
		{
			Model: "qlock-rec", Over: map[string]string{"variant": "rmcs-unspliced"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "planted unspliced-successor repair bug: the checker must catch and shrink it",
		},
		{
			Model: "resilience", Over: map[string]string{"variant": "dedup", "kind": "volatile"},
			Mode: "exhaustive", K: 2, Expect: "pass",
			Why: "supervised campaign: two volatile crashes at any global persist ordinals (incl. inside recovery) stay exactly-once",
		},
		{
			Model: "resilience", Over: map[string]string{"variant": "dedup", "kind": "torn"},
			Mode: "exhaustive", K: 1, Expect: "pass",
			Why: "supervised campaign under torn write-backs: applied/counter splits self-heal on replay",
		},
		{
			Model: "resilience", Over: map[string]string{"variant": "nodedup", "kind": "volatile"},
			Mode: "exhaustive", K: 1, Expect: "violation",
			Why: "planted missing-dedup replay: one crash double-applies; shrinks to a single decision",
		},
		{
			Model: "broken2store", Mode: "random", K: 3, Seed: 0xC0FFEE, Count: 200,
			Expect: "violation",
			Why:    "randomized mode finds and shrinks the same defect from a seed",
		},
	}
}

// RunEntry executes one suite entry.
func RunEntry(ent SuiteEntry, opt Options) SuiteResult {
	res := SuiteResult{Entry: ent}
	m, err := BuildModel(ent.Model, ent.Over)
	if err != nil {
		res.Err = err
		return res
	}
	e := &Explorer{Model: m, Opt: opt, MaxDecisions: ent.K}
	switch ent.Mode {
	case "exhaustive":
		res.Report, res.Err = e.Exhaustive()
	case "random":
		res.Report, res.Err = e.Random(ent.Seed, ent.Count, nil)
	default:
		res.Err = fmt.Errorf("mcheck: suite entry with unknown mode %q", ent.Mode)
	}
	if res.Err != nil {
		return res
	}
	switch ent.Expect {
	case "pass":
		res.OK = res.Report.Passed()
	case "violation":
		res.OK = res.Report.Counterexample != nil
	}
	return res
}

// ReproCommand is the one-line command that re-runs an entry exactly.
func (r SuiteResult) ReproCommand() string {
	ent := r.Entry
	cmd := "rascheck -model " + ent.Model
	if len(ent.Over) > 0 {
		cmd += " -params " + paramString(ent.Over)
	}
	cmd += fmt.Sprintf(" -mode %s -max-decisions %d", ent.Mode, ent.K)
	if ent.Mode == "random" {
		cmd += fmt.Sprintf(" -seed %#x -schedules %d", ent.Seed, ent.Count)
	}
	return cmd
}
