package mcheck

import "testing"

// The runtime-layer restartable sequence survives a preemption at every
// memory-operation boundary, alone and in pairs.
func TestUniExhaustiveRAS(t *testing.T) {
	m := build(t, "uni-counter", map[string]string{"sync": "ras"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}

// The bare load/store loses an update under a single well-placed
// preemption; the shrinker brings it down to one decision.
func TestUniExhaustiveCatchesUnsynced(t *testing.T) {
	m := build(t, "uni-counter", map[string]string{"sync": "none"})
	e := &Explorer{Model: m, MaxDecisions: 2}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatalf("checker missed the unsynchronized counter: %v", rep)
	}
	if n := len(cex.Schedule.Decisions); n > 2 {
		t.Errorf("counterexample has %d decisions, want <= 2", n)
	}
	vio, err := RunOnce(m, cex.Schedule.Decisions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) == 0 {
		t.Fatalf("minimized counterexample does not replay: %v", cex.Schedule.Decisions)
	}
	t.Logf("%v", rep)
}

// core.RecoverableMutex under a kill at every memory-operation boundary:
// the RMEChecker audit and the shadow count must both hold — dead-owner
// repair keeps the survivors correct and running.
func TestUniExhaustiveRMEKills(t *testing.T) {
	m := build(t, "uni-rme", nil)
	e := &Explorer{Model: m, MaxDecisions: 1}
	rep, err := e.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("%v\nrepro: %s", rep, reproLine(rep))
	}
	t.Logf("%v", rep)
}
