package mcheck

import (
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/uniproc"
)

// uniproc-backed models. The runtime layer runs whole schedules — its
// scheduler cannot pause between green-thread steps from outside — so
// these models are replay-only: no mid-run pause, no state hashing, and
// the exhaustive explorer enumerates the (small) decision spaces without
// pruning. The ordinal space is PointMemOp: guest Load/Store operations.

type uniModel struct {
	name    string
	params  map[string]string
	primary Action
	run     func(ds []Decision, opt Options, vio *violations) (cursor uint64)
}

func (m *uniModel) Name() string              { return m.name }
func (m *uniModel) Params() map[string]string { return m.params }
func (m *uniModel) Primary() Action           { return m.primary }
func (m *uniModel) Pausable() bool            { return false }
func (m *uniModel) New(ds []Decision, opt Options) (Instance, error) {
	return &uniInstance{m: m, ds: ds, opt: opt, vio: &violations{}}, nil
}

type uniInstance struct {
	m      *uniModel
	ds     []Decision
	opt    Options
	vio    *violations
	done   bool
	cursor uint64
}

func (in *uniInstance) RunTo(at uint64) bool { in.RunToEnd(); return true }
func (in *uniInstance) RunToEnd() {
	if in.done {
		return
	}
	in.done = true
	in.cursor = in.m.run(in.ds, in.opt, in.vio)
}
func (in *uniInstance) Cursor() uint64              { return in.cursor }
func (in *uniInstance) Violations() []Violation     { return in.vio.list }
func (in *uniInstance) StateHash() ([32]byte, bool) { return [32]byte{}, false }

// classifyUniErr folds the processor's terminal error into the taxonomy.
func classifyUniErr(err error, vio *violations) {
	switch {
	case err == nil:
	case errors.Is(err, uniproc.ErrDeadlock):
		vio.add("deadlock", "%v", err)
	case errors.Is(err, uniproc.ErrLivelock):
		vio.add("restart-livelock", "%v", err)
	case errors.Is(err, uniproc.ErrBudget):
		vio.add("budget", "%v", err)
	default:
		vio.add("abort", "%v", err)
	}
}

// uniCounterModel is the runtime-layer counter: workers increment a
// shared word either inside a restartable sequence (sync=ras, always
// exact) or bare (sync=none, loses updates under a preemption between
// the load and the store — the violation the checker must find).
func uniCounterModel(p map[string]string) (Model, error) {
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	sync := p["sync"]
	if sync != "ras" && sync != "none" {
		return nil, fmt.Errorf("mcheck: uni-counter: unknown sync %q", sync)
	}
	m := &uniModel{name: "uni-counter", params: p, primary: ActPreempt}
	m.run = func(ds []Decision, opt Options, vio *violations) uint64 {
		proc := uniproc.New(uniproc.Config{
			Quantum:   1 << 40,
			MaxCycles: modelBudget,
			Faults:    newInjector(chaos.PointMemOp, ds),
		})
		proc.Tracer = opt.Tracer
		var counter core.Word
		for w := 0; w < workers; w++ {
			proc.Go("worker", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					if sync == "ras" {
						e.Restartable(func() {
							v := e.Load(&counter)
							e.Commit(&counter, v+1)
						})
					} else {
						v := e.Load(&counter)
						e.ChargeALU(1)
						e.Store(&counter, v+1)
					}
				}
			})
		}
		classifyUniErr(proc.Run(), vio)
		want := core.Word(workers * iters)
		kills := hasAct(ds, ActKill)
		switch {
		case !kills && counter != want:
			vio.add("counter-exact", "counter = %d, want %d", counter, want)
		case kills && counter > want:
			vio.add("counter-exact", "counter = %d exceeds %d with kills", counter, want)
		}
		return proc.MemOps()
	}
	return m, nil
}

// uniRMEModel is core.RecoverableMutex under forced kills — the
// recoverable-mutual-exclusion model: a kill inside the critical section
// must be repaired (dead-owner steal with an epoch bump), never breach
// mutual exclusion, and never wedge the survivors. The RMEChecker audits
// every transition; the Go-side shadow count pins the counter exactly.
func uniRMEModel(p map[string]string) (Model, error) {
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	m := &uniModel{name: "uni-rme", params: p, primary: ActKill}
	m.run = func(ds []Decision, opt Options, vio *violations) uint64 {
		proc := uniproc.New(uniproc.Config{
			Quantum:   2000,
			MaxCycles: modelBudget,
			Faults:    newInjector(chaos.PointMemOp, ds),
		})
		proc.Tracer = opt.Tracer
		mtx := core.NewRecoverableMutex()
		mtx.Checker = core.NewRMEChecker()
		var counter core.Word
		var shadow uint64
		for w := 0; w < workers; w++ {
			proc.Go("worker", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					mtx.Acquire(e)
					v := e.Load(&counter)
					e.ChargeALU(1)
					shadow++
					e.Store(&counter, v+1)
					mtx.Release(e)
				}
			})
		}
		classifyUniErr(proc.Run(), vio)
		for _, s := range mtx.Checker.Violations() {
			vio.add("rme", "%s", s)
		}
		if uint64(counter) != shadow {
			vio.add("mutual-exclusion", "counter = %d, shadow = %d", counter, shadow)
		}
		for _, th := range proc.Threads() {
			if !th.Done() {
				vio.add("stuck", "thread %v never finished", th)
			}
		}
		return proc.MemOps()
	}
	return m, nil
}
