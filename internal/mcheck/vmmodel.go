package mcheck

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/vmach/kernel"
)

// vmach-backed models. Every instance is a fresh kernel over the model's
// pre-assembled program, with the schedule rendered as a chaos injector
// at PointStep, the timer effectively disabled (the schedule is the only
// scheduler), and a generous cycle budget as a safety net. The decision
// ordinal space is kernel.Steps(): retired user instructions.

// modelQuantum pushes the timer past any bounded run, so the only
// preemptions are the schedule's. modelBudget is the runaway net.
const (
	modelQuantum = uint64(1) << 40
	modelBudget  = uint64(20_000_000)
)

type vmachModel struct {
	name    string
	params  map[string]string
	primary Action
	prog    *asm.Program
	build   func(m *vmachModel, ds []Decision, opt Options) (Instance, error)
}

func (m *vmachModel) Name() string              { return m.name }
func (m *vmachModel) Params() map[string]string { return m.params }
func (m *vmachModel) Primary() Action           { return m.primary }
func (m *vmachModel) Pausable() bool            { return true }
func (m *vmachModel) New(ds []Decision, opt Options) (Instance, error) {
	return m.build(m, ds, opt)
}

type vmachInstance struct {
	k      *kernel.Kernel
	vio    *violations
	done   bool
	ended  bool
	runErr error
	// expectCrash marks schedules that contain a crash decision, whose
	// ErrMachineCrash outcome is the point, not a violation.
	expectCrash bool
	// finish applies the model's end-state invariants.
	finish func()
}

func (in *vmachInstance) step() {
	fin, err := in.k.StepOne()
	if fin {
		in.done = true
		in.runErr = err
	}
}

func (in *vmachInstance) RunTo(at uint64) bool {
	for !in.done && in.k.Steps() < at {
		in.step()
	}
	return in.done
}

func (in *vmachInstance) RunToEnd() {
	for !in.done {
		in.step()
	}
	if in.ended {
		return
	}
	in.ended = true
	in.classify()
	if in.finish != nil {
		in.finish()
	}
}

// classify folds the kernel's terminal error into the violation taxonomy.
func (in *vmachInstance) classify() {
	err := in.runErr
	switch {
	case err == nil:
	case errors.Is(err, kernel.ErrDeadlock):
		in.vio.add("deadlock", "%v", err)
	case errors.Is(err, kernel.ErrLivelock):
		in.vio.add("restart-livelock", "%v", err)
	case errors.Is(err, kernel.ErrBudget):
		in.vio.add("budget", "%v", err)
	case errors.Is(err, kernel.ErrMachineCrash):
		if !in.expectCrash {
			in.vio.add("crash", "%v", err)
		}
	default:
		in.vio.add("abort", "%v", err)
	}
}

func (in *vmachInstance) Cursor() uint64          { return in.k.Steps() }
func (in *vmachInstance) Violations() []Violation { return in.vio.list }
func (in *vmachInstance) StateHash() ([32]byte, bool) {
	return hashKernel(in.k), true
}

func hasAct(ds []Decision, a Action) bool {
	for _, d := range ds {
		if d.Act == a {
			return true
		}
	}
	return false
}

// newVmachKernel builds the standard model-checking kernel: schedule
// injector installed (always, so step ordinals count), timer parked.
func newVmachKernel(strat kernel.Strategy, ds []Decision, opt Options) *kernel.Kernel {
	k := kernel.New(kernel.Config{
		Strategy:  strat,
		Quantum:   modelQuantum,
		MaxCycles: modelBudget,
		Faults:    newInjector(chaos.PointStep, ds),
	})
	if opt.Tracer != nil {
		k.Tracer = opt.Tracer
	}
	return k
}

// watchMutexCounter installs the mutual-exclusion and lost-update
// checkers on a lock/counter workload: ownership is tracked at the lock
// word, and judged at the counter — the critical section's effect — so a
// losing test-and-set harmlessly re-storing 1 does not false-positive.
func watchMutexCounter(k *kernel.Kernel, lockAddr, counterAddr uint32, v *violations) {
	holder := -1
	cur := func() int {
		if t := k.Current(); t != nil {
			return t.ID
		}
		return -1
	}
	k.M.Mem.Watch(lockAddr, func(old, new isa.Word) {
		me := cur()
		switch {
		case old == 0 && new != 0:
			holder = me
		case old != 0 && new == 0:
			if me != holder {
				v.add("lock-discipline", "t%d released the lock held by t%d", me, holder)
			}
			holder = -1
		}
	})
	k.M.Mem.Watch(counterAddr, func(old, new isa.Word) {
		me := cur()
		if me != holder {
			v.add("mutual-exclusion", "t%d stored counter %d->%d while t%d holds the lock", me, old, new, holder)
		}
		if new != old+1 {
			v.add("lost-update", "counter store %d->%d is not an increment", old, new)
		}
	})
}

// strategyByName builds a fresh recovery strategy per instance.
func strategyByName(s string) (kernel.Strategy, error) {
	switch s {
	case "none":
		return nil, nil
	case "registration":
		return &kernel.Registration{}, nil
	case "designated":
		return &kernel.Designated{}, nil
	case "multi":
		return kernel.NewMultiRegistration(), nil
	}
	return nil, fmt.Errorf("mcheck: unknown strategy %q", s)
}

// counterModel checks guest.MutexCounterProgram — the paper's Figure-3
// (registered) and Figure-5 (designated) sequences, plus the unprotected
// control (mech=none) the checker must catch.
func counterModel(p map[string]string) (Model, error) {
	mech, err := counterMech(p["mech"])
	if err != nil {
		return nil, err
	}
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(guest.MutexCounterProgram(mech, workers, iters))
	if err != nil {
		return nil, fmt.Errorf("mcheck: counter: %v", err)
	}
	m := &vmachModel{name: "counter", params: p, primary: ActPreempt, prog: prog}
	m.build = func(m *vmachModel, ds []Decision, opt Options) (Instance, error) {
		strat, err := strategyByName(counterStrategy(mech))
		if err != nil {
			return nil, err
		}
		k := newVmachKernel(strat, ds, opt)
		k.Load(m.prog)
		k.Spawn(m.prog.MustSymbol("main"), guest.StackTop(0))
		vio := &violations{}
		watchMutexCounter(k, m.prog.MustSymbol("lock"), m.prog.MustSymbol("counter"), vio)
		in := &vmachInstance{k: k, vio: vio, expectCrash: hasAct(ds, ActCrash)}
		want := isa.Word(workers * iters)
		kills := hasAct(ds, ActKill)
		in.finish = func() {
			got := k.M.Mem.Peek(m.prog.MustSymbol("counter"))
			switch {
			case !kills && got != want:
				vio.add("counter-exact", "counter = %d, want %d", got, want)
			case kills && got > want:
				vio.add("counter-exact", "counter = %d exceeds %d with kills", got, want)
			}
		}
		return in, nil
	}
	return m, nil
}

func counterMech(s string) (guest.Mechanism, error) {
	switch s {
	case "none":
		return guest.MechNone, nil
	case "registered":
		return guest.MechRegistered, nil
	case "designated":
		return guest.MechDesignated, nil
	}
	return 0, fmt.Errorf("mcheck: counter: unknown mech %q", s)
}

func counterStrategy(m guest.Mechanism) string {
	switch m {
	case guest.MechRegistered:
		return "registration"
	case guest.MechDesignated:
		return "designated"
	}
	return "none"
}

// broken2storeModel is the deliberately malformed two-store sequence.
// kernel.VerifySequence rejects it at registration time, so the harness
// installs the range through the MultiRegistration backdoor — bypassing
// the static check on purpose to prove the dynamic checker catches what
// slips through.
func broken2storeModel(p map[string]string) (Model, error) {
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(guest.BrokenTwoStoreProgram())
	if err != nil {
		return nil, fmt.Errorf("mcheck: broken2store: %v", err)
	}
	m := &vmachModel{name: "broken2store", params: p, primary: ActPreempt, prog: prog}
	m.build = func(m *vmachModel, ds []Decision, opt Options) (Instance, error) {
		strat := kernel.NewMultiRegistration()
		k := newVmachKernel(strat, ds, opt)
		k.Load(m.prog)
		lo, hi := m.prog.MustSymbol("bad_seq"), m.prog.MustSymbol("bad_end")
		if err := k.VerifySequence(lo, hi-lo); err == nil {
			return nil, fmt.Errorf("mcheck: broken2store: verifier accepted the malformed range")
		}
		strat.AddRange(lo, hi-lo)
		for w := 0; w < workers; w++ {
			k.Spawn(m.prog.MustSymbol("worker"), guest.StackTop(w), isa.Word(iters))
		}
		vio := &violations{}
		in := &vmachInstance{k: k, vio: vio, expectCrash: hasAct(ds, ActCrash)}
		want := isa.Word(workers * iters)
		kills := hasAct(ds, ActKill)
		in.finish = func() {
			got := k.M.Mem.Peek(m.prog.MustSymbol("counter"))
			if got != want && !kills {
				vio.add("counter-exact", "counter = %d, want %d (restart re-applied a committed store)", got, want)
			}
		}
		return in, nil
	}
	return m, nil
}

// recoverableModel checks guest.RecoverableCounterProgram — the
// owner+epoch recoverable lock — under forced kills: the RME dead-owner-
// repair invariants (increments only under the lock, steals only from
// the dead, epoch bumps exactly once per steal) as memory watchpoints.
func recoverableModel(p map[string]string) (Model, error) {
	workers, iters, err := workerIters(p)
	if err != nil {
		return nil, err
	}
	if _, err := strategyByName(p["strategy"]); err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(guest.RecoverableCounterProgram(workers, iters))
	if err != nil {
		return nil, fmt.Errorf("mcheck: recoverable: %v", err)
	}
	m := &vmachModel{name: "recoverable", params: p, primary: ActKill, prog: prog}
	m.build = func(m *vmachModel, ds []Decision, opt Options) (Instance, error) {
		strat, _ := strategyByName(m.params["strategy"])
		k := newVmachKernel(strat, ds, opt)
		k.Load(m.prog)
		k.Spawn(m.prog.MustSymbol("main"), guest.StackTop(0))
		vio := &violations{}
		increments := watchRME(k, m.prog.MustSymbol("lock"), m.prog.MustSymbol("counter"), vio)
		in := &vmachInstance{k: k, vio: vio, expectCrash: hasAct(ds, ActCrash)}
		want := isa.Word(workers * iters)
		kills := hasAct(ds, ActKill)
		in.finish = func() {
			got := k.M.Mem.Peek(m.prog.MustSymbol("counter"))
			if got != isa.Word(*increments) {
				vio.add("rme", "counter = %d but %d watched increments", got, *increments)
			}
			if !kills && got != want {
				vio.add("counter-exact", "counter = %d, want %d", got, want)
			}
			if kills && got > want {
				vio.add("counter-exact", "counter = %d exceeds %d", got, want)
			}
		}
		return in, nil
	}
	return m, nil
}

// watchRME installs the recoverable-mutex watchpoints on the owner+epoch
// lock word (low 16 bits: owner thread ID + 1; high bits: steal epoch)
// and the counter. It returns the watched increment count.
func watchRME(k *kernel.Kernel, lockAddr, counterAddr uint32, v *violations) *uint64 {
	increments := new(uint64)
	cur := func() int {
		if t := k.Current(); t != nil {
			return t.ID
		}
		return -1
	}
	dead := func(tid int) bool {
		if tid < 0 || tid >= len(k.Threads()) {
			return true
		}
		switch k.Threads()[tid].State {
		case kernel.StateDone, kernel.StateFaulted, kernel.StateKilled:
			return true
		}
		return false
	}
	k.M.Mem.Watch(lockAddr, func(old, new isa.Word) {
		me := cur()
		oldOwner, newOwner := int(old&0xFFFF), int(new&0xFFFF)
		oldEpoch, newEpoch := old>>16, new>>16
		switch {
		case oldOwner == 0 && newOwner != 0:
			if newOwner != me+1 || newEpoch != oldEpoch {
				v.add("rme", "bad acquire %#x->%#x by t%d", old, new, me)
			}
		case oldOwner != 0 && newOwner == 0:
			if oldOwner != me+1 || newEpoch != oldEpoch {
				v.add("rme", "bad release %#x->%#x by t%d", old, new, me)
			}
		case oldOwner != 0 && newOwner != 0:
			if newOwner != me+1 || newEpoch != oldEpoch+1 {
				v.add("rme", "bad steal %#x->%#x by t%d", old, new, me)
			}
			if !dead(oldOwner - 1) {
				v.add("mutual-exclusion", "t%d stole the lock from live t%d", me, oldOwner-1)
			}
		}
	})
	k.M.Mem.Watch(counterAddr, func(old, new isa.Word) {
		*increments++
		lock := k.M.Mem.Peek(lockAddr)
		if me := cur(); int(lock&0xFFFF) != me+1 || new != old+1 {
			v.add("mutual-exclusion", "t%d incremented %d->%d with lock %#x", me, old, new, lock)
		}
	})
	return increments
}
