// Package memfs is an in-memory hierarchical filesystem running on the
// virtual uniprocessor: the stand-in for the Andrew File System in the
// afs-bench workload (§5.3) and the file substrate for the other
// applications.
//
// Every node carries its own relinquishing mutex from the configured
// thread package, and path walks use lock coupling, so filesystem-intensive
// workloads generate the large volume of low-level atomic operations whose
// cost Table 3 measures. Data transfer charges cycles per block to model
// copying.
package memfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cthreads"
	"repro/internal/uniproc"
)

// BlockSize is the unit of charged data transfer.
const BlockSize = 512

// blockCycles is the ALU work charged per block copied.
const blockCycles = 120

// Errors.
var (
	ErrNotFound    = errors.New("memfs: not found")
	ErrExists      = errors.New("memfs: already exists")
	ErrNotDir      = errors.New("memfs: not a directory")
	ErrIsDir       = errors.New("memfs: is a directory")
	ErrDirNotEmpty = errors.New("memfs: directory not empty")
	ErrBadPath     = errors.New("memfs: bad path")
	ErrBadOffset   = errors.New("memfs: negative offset")
)

// Stats counts filesystem operations.
type Stats struct {
	Lookups  uint64
	Reads    uint64
	Writes   uint64
	Creates  uint64
	Removes  uint64
	BytesIn  uint64 // written
	BytesOut uint64 // read
}

// FS is the filesystem.
type FS struct {
	pkg   *cthreads.Pkg
	root  *node
	Stats Stats
}

type node struct {
	name     string
	mu       *cthreads.Mutex
	isDir    bool
	children map[string]*node
	data     []byte
}

// New creates an empty filesystem whose locks come from pkg.
func New(pkg *cthreads.Pkg) *FS {
	return &FS{
		pkg: pkg,
		root: &node{
			name:     "/",
			mu:       pkg.NewMutex(),
			isDir:    true,
			children: make(map[string]*node),
		},
	}
}

// split validates and splits a path into components.
func split(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrBadPath
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, ErrBadPath
		}
	}
	return parts, nil
}

// walk descends to the parent directory of the final component using lock
// coupling, returning the parent node *locked* and the final name. The
// caller must Unlock the returned node.
func (fs *FS) walk(e *uniproc.Env, path string) (*node, string, error) {
	parts, err := split(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrBadPath // root has no parent
	}
	fs.Stats.Lookups++
	cur := fs.root
	cur.mu.Lock(e)
	for _, comp := range parts[:len(parts)-1] {
		e.ChargeALU(20) // directory-entry scan
		next, ok := cur.children[comp]
		if !ok {
			cur.mu.Unlock(e)
			return nil, "", fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		if !next.isDir {
			cur.mu.Unlock(e)
			return nil, "", fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next.mu.Lock(e)
		cur.mu.Unlock(e)
		cur = next
	}
	e.ChargeALU(20)
	return cur, parts[len(parts)-1], nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(e *uniproc.Env, path string) error {
	parent, name, err := fs.walk(e, path)
	if err != nil {
		return err
	}
	defer parent.mu.Unlock(e)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	fs.Stats.Creates++
	parent.children[name] = &node{
		name:     name,
		mu:       fs.pkg.NewMutex(),
		isDir:    true,
		children: make(map[string]*node),
	}
	e.ChargeALU(40)
	return nil
}

// Create creates an empty file, failing if path exists.
func (fs *FS) Create(e *uniproc.Env, path string) error {
	parent, name, err := fs.walk(e, path)
	if err != nil {
		return err
	}
	defer parent.mu.Unlock(e)
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	fs.Stats.Creates++
	parent.children[name] = &node{name: name, mu: fs.pkg.NewMutex()}
	e.ChargeALU(40)
	return nil
}

// lookup returns the locked node at path (file or dir). Caller unlocks.
func (fs *FS) lookup(e *uniproc.Env, path string) (*node, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		fs.root.mu.Lock(e)
		return fs.root, nil
	}
	parent, name, err := fs.walk(e, path)
	if err != nil {
		return nil, err
	}
	n, ok := parent.children[name]
	if !ok {
		parent.mu.Unlock(e)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	n.mu.Lock(e)
	parent.mu.Unlock(e)
	return n, nil
}

// WriteFile replaces the contents of an existing file.
func (fs *FS) WriteFile(e *uniproc.Env, path string, data []byte) error {
	n, err := fs.lookup(e, path)
	if err != nil {
		return err
	}
	defer n.mu.Unlock(e)
	if n.isDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	fs.Stats.Writes++
	fs.Stats.BytesIn += uint64(len(data))
	n.data = append(n.data[:0], data...)
	e.ChargeALU(blockCycles * (1 + len(data)/BlockSize))
	return nil
}

// Append appends data to an existing file.
func (fs *FS) Append(e *uniproc.Env, path string, data []byte) error {
	n, err := fs.lookup(e, path)
	if err != nil {
		return err
	}
	defer n.mu.Unlock(e)
	if n.isDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	fs.Stats.Writes++
	fs.Stats.BytesIn += uint64(len(data))
	n.data = append(n.data, data...)
	e.ChargeALU(blockCycles * (1 + len(data)/BlockSize))
	return nil
}

// ReadFile returns a copy of the file's contents.
func (fs *FS) ReadFile(e *uniproc.Env, path string) ([]byte, error) {
	n, err := fs.lookup(e, path)
	if err != nil {
		return nil, err
	}
	defer n.mu.Unlock(e)
	if n.isDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	fs.Stats.Reads++
	fs.Stats.BytesOut += uint64(len(n.data))
	out := append([]byte(nil), n.data...)
	e.ChargeALU(blockCycles * (1 + len(out)/BlockSize))
	return out, nil
}

// ReadAt reads up to len(buf) bytes at offset off, returning the count;
// n == 0 at or past end of file. A negative offset is an error, not a
// panic: the bound below only guards the far end of the file.
func (fs *FS) ReadAt(e *uniproc.Env, path string, off int, buf []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadOffset, off)
	}
	n, err := fs.lookup(e, path)
	if err != nil {
		return 0, err
	}
	defer n.mu.Unlock(e)
	if n.isDir {
		return 0, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	fs.Stats.Reads++
	if off >= len(n.data) {
		return 0, nil
	}
	c := copy(buf, n.data[off:])
	fs.Stats.BytesOut += uint64(c)
	e.ChargeALU(blockCycles * (1 + c/BlockSize))
	return c, nil
}

// Stat reports existence, directory-ness and size.
func (fs *FS) Stat(e *uniproc.Env, path string) (isDir bool, size int, err error) {
	n, err := fs.lookup(e, path)
	if err != nil {
		return false, 0, err
	}
	defer n.mu.Unlock(e)
	fs.Stats.Lookups++
	e.ChargeALU(10)
	return n.isDir, len(n.data), nil
}

// ReadDir lists a directory's entries in sorted order.
func (fs *FS) ReadDir(e *uniproc.Env, path string) ([]string, error) {
	n, err := fs.lookup(e, path)
	if err != nil {
		return nil, err
	}
	defer n.mu.Unlock(e)
	if !n.isDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	fs.Stats.Lookups++
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	e.ChargeALU(10 * (1 + len(names)))
	return names, nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(e *uniproc.Env, path string) error {
	parent, name, err := fs.walk(e, path)
	if err != nil {
		return err
	}
	defer parent.mu.Unlock(e)
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if n.isDir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrDirNotEmpty, path)
	}
	fs.Stats.Removes++
	delete(parent.children, name)
	e.ChargeALU(30)
	return nil
}
