package memfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/uniproc"
)

// run executes fn as a single thread on a fresh processor and fs.
func run(t *testing.T, fn func(e *uniproc.Env, fs *FS)) *FS {
	t.Helper()
	p := uniproc.New(uniproc.Config{})
	fs := New(cthreads.New(core.NewRAS()))
	p.Go("main", func(e *uniproc.Env) { fn(e, fs) })
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateWriteRead(t *testing.T) {
	fs := run(t, func(e *uniproc.Env, fs *FS) {
		if err := fs.Create(e, "/a.txt"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(e, "/a.txt", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(e, "/a.txt")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "hello" {
			t.Errorf("read %q", got)
		}
	})
	if fs.Stats.Creates != 1 || fs.Stats.Writes != 1 || fs.Stats.Reads != 1 {
		t.Errorf("stats = %+v", fs.Stats)
	}
}

func TestMkdirNesting(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
			if err := fs.Mkdir(e, d); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Create(e, "/a/b/c/f"); err != nil {
			t.Fatal(err)
		}
		isDir, _, err := fs.Stat(e, "/a/b")
		if err != nil || !isDir {
			t.Errorf("stat /a/b: %v %v", isDir, err)
		}
		isDir, size, err := fs.Stat(e, "/a/b/c/f")
		if err != nil || isDir || size != 0 {
			t.Errorf("stat file: %v %d %v", isDir, size, err)
		}
	})
}

func TestAppend(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		fs.Create(e, "/log")
		fs.Append(e, "/log", []byte("one"))
		fs.Append(e, "/log", []byte("two"))
		got, _ := fs.ReadFile(e, "/log")
		if string(got) != "onetwo" {
			t.Errorf("got %q", got)
		}
	})
}

func TestReadAt(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		fs.Create(e, "/f")
		fs.WriteFile(e, "/f", []byte("0123456789"))
		buf := make([]byte, 4)
		n, err := fs.ReadAt(e, "/f", 3, buf)
		if err != nil || n != 4 || string(buf) != "3456" {
			t.Errorf("ReadAt = %d %q %v", n, buf, err)
		}
		n, err = fs.ReadAt(e, "/f", 8, buf)
		if err != nil || n != 2 || string(buf[:n]) != "89" {
			t.Errorf("tail ReadAt = %d %q %v", n, buf[:n], err)
		}
		n, err = fs.ReadAt(e, "/f", 100, buf)
		if err != nil || n != 0 {
			t.Errorf("eof ReadAt = %d %v", n, err)
		}
	})
}

// Regression: a negative offset used to slice n.data out of range and
// panic — only the far end of the file was guarded.
func TestReadAtNegativeOffset(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		fs.Create(e, "/f")
		fs.WriteFile(e, "/f", []byte("0123456789"))
		buf := make([]byte, 4)
		n, err := fs.ReadAt(e, "/f", -1, buf)
		if !errors.Is(err, ErrBadOffset) || n != 0 {
			t.Errorf("ReadAt(off=-1) = %d, %v; want 0, ErrBadOffset", n, err)
		}
		n, err = fs.ReadAt(e, "/f", -1<<40, buf)
		if !errors.Is(err, ErrBadOffset) || n != 0 {
			t.Errorf("ReadAt(off=-2^40) = %d, %v; want 0, ErrBadOffset", n, err)
		}
	})
}

func TestReadDirSorted(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		fs.Mkdir(e, "/d")
		for _, f := range []string{"zeta", "alpha", "mid"} {
			fs.Create(e, "/d/"+f)
		}
		names, err := fs.ReadDir(e, "/d")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"alpha", "mid", "zeta"}
		if len(names) != 3 {
			t.Fatalf("names = %v", names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("names = %v, want %v", names, want)
			}
		}
	})
}

func TestRemove(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		fs.Mkdir(e, "/d")
		fs.Create(e, "/d/f")
		if err := fs.Remove(e, "/d"); !errors.Is(err, ErrDirNotEmpty) {
			t.Errorf("remove non-empty dir: %v", err)
		}
		if err := fs.Remove(e, "/d/f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove(e, "/d"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Stat(e, "/d"); !errors.Is(err, ErrNotFound) {
			t.Errorf("stat after remove: %v", err)
		}
	})
}

func TestErrors(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		if _, err := fs.ReadFile(e, "/nope"); !errors.Is(err, ErrNotFound) {
			t.Errorf("read missing: %v", err)
		}
		if err := fs.Create(e, "bad"); !errors.Is(err, ErrBadPath) {
			t.Errorf("relative path: %v", err)
		}
		if err := fs.Create(e, "/a/../b"); !errors.Is(err, ErrBadPath) {
			t.Errorf("dotdot path: %v", err)
		}
		fs.Create(e, "/f")
		if err := fs.Create(e, "/f"); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate create: %v", err)
		}
		if err := fs.Create(e, "/f/x"); !errors.Is(err, ErrNotDir) {
			t.Errorf("file as dir: %v", err)
		}
		if _, err := fs.ReadFile(e, "/"); !errors.Is(err, ErrIsDir) {
			t.Errorf("read dir: %v", err)
		}
		if err := fs.WriteFile(e, "/", nil); !errors.Is(err, ErrIsDir) {
			t.Errorf("write dir: %v", err)
		}
		if _, err := fs.ReadDir(e, "/f"); !errors.Is(err, ErrNotDir) {
			t.Errorf("readdir file: %v", err)
		}
		if _, err := fs.ReadFile(e, "/missingdir/f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing dir: %v", err)
		}
	})
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	const n, iters = 4, 40
	p := uniproc.New(uniproc.Config{Quantum: 311, JitterSeed: 9})
	fs := New(cthreads.New(core.NewRAS()))
	paths := []string{"/f0", "/f1", "/f2", "/f3"}
	p.Go("setup", func(e *uniproc.Env) {
		for _, path := range paths {
			fs.Create(e, path)
		}
		for i := 0; i < n; i++ {
			path := paths[i]
			e.Fork("writer", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					fs.Append(e, path, []byte{byte('a' + it%26)})
				}
			})
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	pp := uniproc.New(uniproc.Config{})
	pp.Go("verify", func(e *uniproc.Env) {
		for _, path := range paths {
			got, err := fs.ReadFile(e, path)
			if err != nil || len(got) != iters {
				t.Errorf("%s: len %d err %v", path, len(got), err)
			}
		}
	})
	if err := pp.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendSameFile(t *testing.T) {
	const n, iters = 4, 50
	p := uniproc.New(uniproc.Config{Quantum: 199, JitterSeed: 5})
	fs := New(cthreads.New(core.NewRAS()))
	p.Go("setup", func(e *uniproc.Env) {
		fs.Create(e, "/shared")
		for i := 0; i < n; i++ {
			e.Fork("appender", func(e *uniproc.Env) {
				for it := 0; it < iters; it++ {
					fs.Append(e, "/shared", []byte{'x'})
				}
			})
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats.BytesIn; got != n*iters {
		t.Errorf("BytesIn = %d, want %d", got, n*iters)
	}
}

// Property: write-then-read round trips arbitrary contents.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		ok := true
		run(t, func(e *uniproc.Env, fs *FS) {
			fs.Create(e, "/f")
			if err := fs.WriteFile(e, "/f", data); err != nil {
				ok = false
				return
			}
			got, err := fs.ReadFile(e, "/f")
			ok = err == nil && bytes.Equal(got, data)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWriteFileIsolatesCallerBuffer(t *testing.T) {
	run(t, func(e *uniproc.Env, fs *FS) {
		buf := []byte("abc")
		fs.Create(e, "/f")
		fs.WriteFile(e, "/f", buf)
		buf[0] = 'X'
		got, _ := fs.ReadFile(e, "/f")
		if string(got) != "abc" {
			t.Errorf("aliased buffer: %q", got)
		}
		got[0] = 'Y'
		again, _ := fs.ReadFile(e, "/f")
		if string(again) != "abc" {
			t.Errorf("read aliased store: %q", again)
		}
	})
}
