package obs

// Bus is the event bus: a bounded ring (the always-on tail for post-mortem
// rendering) plus any number of attached sinks (metrics, captures).
// A Bus satisfies both substrates' Tracer interfaces,
// so `k.Tracer = bus` / `proc.Tracer = bus` is the entire adapter.
type Bus struct {
	ring  *Ring
	sinks []Sink
}

// NewBus creates a bus whose ring retains the last capacity events
// (capacity <= 0 selects 4096).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Bus{ring: NewRing(capacity)}
}

// Attach subscribes a sink to every future event. Nil sinks are ignored.
func (b *Bus) Attach(s Sink) {
	if s != nil {
		b.sinks = append(b.sinks, s)
	}
}

// Event implements Sink: the ring retains the event, then every attached
// sink sees it, in attachment order.
func (b *Bus) Event(ev Event) {
	b.ring.Event(ev)
	for _, s := range b.sinks {
		s.Event(ev)
	}
}

// Ring exposes the bus's retained tail.
func (b *Bus) Ring() *Ring { return b.ring }

// Events returns the ring's retained events in chronological order.
func (b *Bus) Events() []Event { return b.ring.Events() }

// Total reports how many events the bus has published in all.
func (b *Bus) Total() uint64 { return b.ring.Total() }

// String renders the retained tail, one event per line.
func (b *Bus) String() string { return b.ring.String() }

// Rebase adapts a sink for multi-run harnesses. Every substrate run starts
// its virtual clock at cycle 0 and its thread IDs at 0; publishing several
// runs into one sink verbatim would interleave timestamps backwards and
// collapse unrelated threads onto one track. Rebase shifts each run onto a
// single monotone timeline: Advance() (called between runs) moves the
// cycle origin past everything seen so far and renumbers the next run's
// threads into a fresh ID range.
type Rebase struct {
	sink       Sink
	offset     uint64 // added to every cycle
	maxCycle   uint64 // highest rebased cycle seen
	threadBase int    // added to every thread ID
	maxThread  int    // highest rebased thread ID seen
}

// NewRebase wraps sink; the first run publishes unshifted.
func NewRebase(sink Sink) *Rebase { return &Rebase{sink: sink} }

// Advance starts a new run: subsequent events land after every event
// already published, on fresh thread tracks.
func (r *Rebase) Advance() {
	r.offset = r.maxCycle
	r.threadBase = r.maxThread + 1
}

// Event implements Sink.
func (r *Rebase) Event(ev Event) {
	ev.Cycle += r.offset
	ev.Thread += r.threadBase
	if ev.Cycle > r.maxCycle {
		r.maxCycle = ev.Cycle
	}
	if ev.Thread > r.maxThread {
		r.maxThread = ev.Thread
	}
	// Thread-ID arguments (fork/unblock/repair targets) live in the same
	// ID space as Thread and must be renumbered with it. They also extend
	// the run's occupied ID range: a forked thread that never emits an
	// event of its own (killed before dispatch, or scheduled on a CPU
	// whose stream is stitched separately) would otherwise leave maxThread
	// low and let the next run's base collide with its ID.
	switch ev.Type {
	case KindFork, KindUnblock, KindRepair:
		ev.Arg += uint64(r.threadBase)
		if int(ev.Arg) > r.maxThread {
			r.maxThread = int(ev.Arg)
		}
	}
	r.sink.Event(ev)
}
