package obs

import "testing"

func TestBusFanOut(t *testing.T) {
	bus := NewBus(2)
	c1, c2 := &Capture{}, &Capture{}
	bus.Attach(c1)
	bus.Attach(c2)
	bus.Attach(nil) // ignored
	for i := 0; i < 5; i++ {
		bus.Event(ev(i))
	}
	if c1.Len() != 5 || c2.Len() != 5 {
		t.Errorf("sinks saw %d/%d events, want 5/5", c1.Len(), c2.Len())
	}
	// The bus ring is bounded independently of the sinks.
	if got := len(bus.Events()); got != 2 {
		t.Errorf("bus ring retained %d, want 2", got)
	}
	if bus.Total() != 5 {
		t.Errorf("bus total = %d, want 5", bus.Total())
	}
}

func TestBusDefaultCapacity(t *testing.T) {
	bus := NewBus(0)
	for i := 0; i < 5000; i++ {
		bus.Event(ev(i))
	}
	if got := len(bus.Events()); got != 4096 {
		t.Errorf("default ring retained %d, want 4096", got)
	}
}

func TestRebaseMonotoneAcrossRuns(t *testing.T) {
	c := &Capture{}
	r := NewRebase(c)

	// Run 1: two threads, cycles 0..300.
	r.Event(Event{Cycle: 0, Type: KindDispatch, Thread: 0})
	r.Event(Event{Cycle: 300, Type: KindExit, Thread: 1})
	r.Advance()
	// Run 2: fresh clock and thread IDs starting at zero again.
	r.Event(Event{Cycle: 0, Type: KindDispatch, Thread: 0})
	r.Event(Event{Cycle: 50, Type: KindFork, Thread: 0, Arg: 1})
	r.Event(Event{Cycle: 120, Type: KindExit, Thread: 1})

	evs := c.Events()
	if len(evs) != 5 {
		t.Fatalf("captured %d events, want 5", len(evs))
	}
	var prev uint64
	for i, e := range evs {
		if e.Cycle < prev {
			t.Fatalf("event %d: cycle %d < %d not monotone", i, e.Cycle, prev)
		}
		prev = e.Cycle
	}
	// Run 2 threads renumbered past run 1's max (1), so 0->2, 1->3.
	if evs[2].Thread != 2 || evs[4].Thread != 3 {
		t.Errorf("run 2 threads = %d,%d, want 2,3", evs[2].Thread, evs[4].Thread)
	}
	// Fork's Arg is a thread ID and must be remapped into the same range.
	if evs[3].Type != KindFork || evs[3].Arg != 3 {
		t.Errorf("fork arg = %d, want remapped 3", evs[3].Arg)
	}
	// Run 2 cycles shifted past run 1's horizon (300).
	if evs[2].Cycle != 300 || evs[4].Cycle != 420 {
		t.Errorf("run 2 cycles = %d,%d, want 300,420", evs[2].Cycle, evs[4].Cycle)
	}
}

// Regression: a forked thread that never emits an event of its own (killed
// before dispatch, or emitting only on another CPU's stream) must still
// reserve its ID. The renumbering base once ignored fork Args, so the next
// run's threads collided with the silent child's track.
func TestRebaseSilentForkChildDoesNotCollide(t *testing.T) {
	c := &Capture{}
	r := NewRebase(c)

	// Run 1: thread 0 forks thread 5, which never emits anything.
	r.Event(Event{Cycle: 0, Type: KindDispatch, Thread: 0})
	r.Event(Event{Cycle: 10, Type: KindFork, Thread: 0, Arg: 5})
	r.Advance()
	// Run 2: its thread 0 must land past the silent child's ID 5.
	r.Event(Event{Cycle: 0, Type: KindDispatch, Thread: 0})

	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("captured %d events, want 3", len(evs))
	}
	if evs[2].Thread != 6 {
		t.Errorf("run 2 thread renumbered to %d, want 6 (past the forked 5)", evs[2].Thread)
	}

	seen := map[int]bool{evs[0].Thread: true, int(evs[1].Arg): true}
	if seen[evs[2].Thread] {
		t.Errorf("thread ID %d collides with run 1's range", evs[2].Thread)
	}
}

func TestRebasedStreamExportsValidChrome(t *testing.T) {
	// The whole point of Rebase: two runs through one capture still render
	// into a structurally valid Chrome trace.
	c := &Capture{}
	r := NewRebase(c)
	for run := 0; run < 3; run++ {
		r.Event(Event{Cycle: 0, Type: KindDispatch, Thread: 0})
		r.Event(Event{Cycle: 10, Type: KindInject, Thread: 0, Arg: 1})
		r.Event(Event{Cycle: 90, Type: KindExit, Thread: 0})
		r.Advance()
	}
	doc := ChromeTraceDoc(c.Events())
	chaos, err := ValidateChrome(doc)
	if err != nil {
		t.Fatalf("rebased trace invalid: %v", err)
	}
	if chaos != 3 {
		t.Errorf("chaos instants = %d, want 3", chaos)
	}
}
