package obs

import (
	"encoding/json"
	"fmt"
)

// ChaosTID is the synthetic track carrying chaos-injection instant events
// in exported Chrome traces, far above any real thread ID.
const ChaosTID = 1000000

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// array format Perfetto and chrome://tracing load). Virtual cycles map
// 1:1 onto the format's microsecond timestamps.
type ChromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    uint64                 `json:"ts"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// ChromeDoc is the JSON-object container variant of the format.
type ChromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// suspends reports whether an event ends its thread's running slice.
func suspends(k Kind) bool {
	switch k {
	case KindPreempt, KindYield, KindBlock, KindExit, KindFault, KindKill, KindCrash:
		return true
	}
	return false
}

// track identifies one exported Chrome track: a (process, thread) pair.
// The exporter maps each source CPU to a Chrome process, so an SMP stream
// renders as one track group per CPU; uniprocessor streams all land in
// process 0 exactly as before.
type track struct{ pid, tid int }

// ChromeTraceDoc converts a chronological event stream into a Chrome
// trace document: one process group per CPU, one track per thread whose
// "running" slices are bounded by dispatch and suspension events, instant
// events for everything else on the owning thread's track, and every
// chaos injection mirrored as an instant on the dedicated ChaosTID track
// of the injecting CPU's group.
func ChromeTraceDoc(events []Event) *ChromeDoc {
	doc := &ChromeDoc{DisplayTimeUnit: "ns", TraceEvents: []ChromeEvent{}}
	open := map[track]bool{}    // track -> has an open "running" slice
	named := map[track]bool{}   // track -> thread_name metadata emitted
	procNamed := map[int]bool{} // pid -> process_name metadata emitted
	var last uint64

	name := func(tr track) {
		if tr.pid != 0 && !procNamed[tr.pid] {
			procNamed[tr.pid] = true
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "process_name", Phase: "M", PID: tr.pid,
				Args: map[string]interface{}{"name": fmt.Sprintf("cpu%d", tr.pid)},
			})
		}
		if named[tr] {
			return
		}
		named[tr] = true
		label := fmt.Sprintf("t%d", tr.tid)
		if tr.tid == ChaosTID {
			label = "chaos"
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "thread_name", Phase: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]interface{}{"name": label},
		})
	}

	for _, ev := range events {
		if ev.Cycle > last {
			last = ev.Cycle
		}
		tr := track{pid: ev.CPU, tid: ev.Thread}
		name(tr)
		switch {
		case ev.Type == KindDispatch:
			if open[tr] { // defensive: never emit unbalanced B
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "running", Phase: "E", TS: ev.Cycle, PID: tr.pid, TID: tr.tid,
				})
			}
			open[tr] = true
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "running", Phase: "B", TS: ev.Cycle, PID: tr.pid, TID: tr.tid,
			})
		case suspends(ev.Type):
			args := map[string]interface{}{"arg": ev.Arg}
			if ev.PC != 0 {
				args["pc"] = fmt.Sprintf("%#08x", ev.PC)
			}
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: ev.Type.String(), Phase: "i", TS: ev.Cycle, PID: tr.pid,
				TID: tr.tid, Scope: "t", Args: args,
			})
			if open[tr] {
				open[tr] = false
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "running", Phase: "E", TS: ev.Cycle, PID: tr.pid, TID: tr.tid,
				})
			}
		default:
			args := map[string]interface{}{"arg": ev.Arg}
			if ev.PC != 0 {
				args["pc"] = fmt.Sprintf("%#08x", ev.PC)
			}
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: ev.Type.String(), Phase: "i", TS: ev.Cycle, PID: tr.pid,
				TID: tr.tid, Scope: "t", Args: args,
			})
		}
		if ev.Type == KindInject {
			name(track{pid: ev.CPU, tid: ChaosTID})
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "inject", Phase: "i", TS: ev.Cycle, PID: ev.CPU, TID: ChaosTID,
				Scope: "t",
				Args: map[string]interface{}{
					"action": fmt.Sprintf("%#x", ev.Arg),
					"thread": ev.Thread,
				},
			})
		}
	}
	// Close slices still open when the stream ends (run cut short by a
	// crash or the event horizon), keeping every track's B/E balanced.
	for tr, isOpen := range open {
		if isOpen {
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "running", Phase: "E", TS: last, PID: tr.pid, TID: tr.tid,
			})
		}
	}
	return doc
}

// ChromeTrace renders the event stream as Chrome trace-event JSON.
func ChromeTrace(events []Event) ([]byte, error) {
	return json.MarshalIndent(ChromeTraceDoc(events), "", " ")
}

// DecodeChromeTrace parses Chrome trace-event JSON produced by ChromeTrace
// (or any tool emitting the object container format).
func DecodeChromeTrace(data []byte) (*ChromeDoc, error) {
	var doc ChromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	return &doc, nil
}

// ValidateChrome checks the structural invariants the exporter promises:
// timestamps are monotone non-decreasing per track (metadata events have
// no timestamp and are exempt), and every "B" slice open is matched by an
// "E" close on the same track. It returns the number of instant events on
// the chaos track, so callers can assert injections survived the round
// trip.
func ValidateChrome(doc *ChromeDoc) (chaosInstants int, err error) {
	lastTS := map[track]uint64{}
	depth := map[track]int{}
	for i, ev := range doc.TraceEvents {
		tr := track{pid: ev.PID, tid: ev.TID}
		switch ev.Phase {
		case "M":
			continue
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				return 0, fmt.Errorf("event %d: slice end without begin on pid %d tid %d", i, ev.PID, ev.TID)
			}
		case "i", "I":
			if ev.TID == ChaosTID {
				chaosInstants++
			}
		default:
			return 0, fmt.Errorf("event %d: unknown phase %q", i, ev.Phase)
		}
		if prev, ok := lastTS[tr]; ok && ev.TS < prev {
			return 0, fmt.Errorf("event %d: timestamp %d < %d goes backwards on pid %d tid %d",
				i, ev.TS, prev, ev.PID, ev.TID)
		}
		lastTS[tr] = ev.TS
	}
	for tr, d := range depth {
		if d != 0 {
			return 0, fmt.Errorf("pid %d tid %d: %d unclosed slice(s)", tr.pid, tr.tid, d)
		}
	}
	return chaosInstants, nil
}
