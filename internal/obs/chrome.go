package obs

import (
	"encoding/json"
	"fmt"
)

// ChaosTID is the synthetic track carrying chaos-injection instant events
// in exported Chrome traces, far above any real thread ID.
const ChaosTID = 1000000

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// array format Perfetto and chrome://tracing load). Virtual cycles map
// 1:1 onto the format's microsecond timestamps.
type ChromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    uint64                 `json:"ts"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// ChromeDoc is the JSON-object container variant of the format.
type ChromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// suspends reports whether an event ends its thread's running slice.
func suspends(k Kind) bool {
	switch k {
	case KindPreempt, KindYield, KindBlock, KindExit, KindFault, KindKill, KindCrash:
		return true
	}
	return false
}

// ChromeTraceDoc converts a chronological event stream into a Chrome
// trace document: one track per thread whose "running" slices are bounded
// by dispatch and suspension events, instant events for everything else
// on the owning thread's track, and every chaos injection mirrored as an
// instant on the dedicated ChaosTID track.
func ChromeTraceDoc(events []Event) *ChromeDoc {
	doc := &ChromeDoc{DisplayTimeUnit: "ns", TraceEvents: []ChromeEvent{}}
	open := map[int]bool{}  // tid -> has an open "running" slice
	named := map[int]bool{} // tid -> thread_name metadata emitted
	var last uint64

	name := func(tid int) {
		if named[tid] {
			return
		}
		named[tid] = true
		label := fmt.Sprintf("t%d", tid)
		if tid == ChaosTID {
			label = "chaos"
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: tid,
			Args: map[string]interface{}{"name": label},
		})
	}

	for _, ev := range events {
		if ev.Cycle > last {
			last = ev.Cycle
		}
		name(ev.Thread)
		switch {
		case ev.Type == KindDispatch:
			if open[ev.Thread] { // defensive: never emit unbalanced B
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "running", Phase: "E", TS: ev.Cycle, PID: 0, TID: ev.Thread,
				})
			}
			open[ev.Thread] = true
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "running", Phase: "B", TS: ev.Cycle, PID: 0, TID: ev.Thread,
			})
		case suspends(ev.Type):
			args := map[string]interface{}{"arg": ev.Arg}
			if ev.PC != 0 {
				args["pc"] = fmt.Sprintf("%#08x", ev.PC)
			}
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: ev.Type.String(), Phase: "i", TS: ev.Cycle, PID: 0,
				TID: ev.Thread, Scope: "t", Args: args,
			})
			if open[ev.Thread] {
				open[ev.Thread] = false
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "running", Phase: "E", TS: ev.Cycle, PID: 0, TID: ev.Thread,
				})
			}
		default:
			args := map[string]interface{}{"arg": ev.Arg}
			if ev.PC != 0 {
				args["pc"] = fmt.Sprintf("%#08x", ev.PC)
			}
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: ev.Type.String(), Phase: "i", TS: ev.Cycle, PID: 0,
				TID: ev.Thread, Scope: "t", Args: args,
			})
		}
		if ev.Type == KindInject {
			name(ChaosTID)
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "inject", Phase: "i", TS: ev.Cycle, PID: 0, TID: ChaosTID,
				Scope: "t",
				Args: map[string]interface{}{
					"action": fmt.Sprintf("%#x", ev.Arg),
					"thread": ev.Thread,
				},
			})
		}
	}
	// Close slices still open when the stream ends (run cut short by a
	// crash or the event horizon), keeping every track's B/E balanced.
	for tid, isOpen := range open {
		if isOpen {
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: "running", Phase: "E", TS: last, PID: 0, TID: tid,
			})
		}
	}
	return doc
}

// ChromeTrace renders the event stream as Chrome trace-event JSON.
func ChromeTrace(events []Event) ([]byte, error) {
	return json.MarshalIndent(ChromeTraceDoc(events), "", " ")
}

// DecodeChromeTrace parses Chrome trace-event JSON produced by ChromeTrace
// (or any tool emitting the object container format).
func DecodeChromeTrace(data []byte) (*ChromeDoc, error) {
	var doc ChromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	return &doc, nil
}

// ValidateChrome checks the structural invariants the exporter promises:
// timestamps are monotone non-decreasing per track (metadata events have
// no timestamp and are exempt), and every "B" slice open is matched by an
// "E" close on the same track. It returns the number of instant events on
// the chaos track, so callers can assert injections survived the round
// trip.
func ValidateChrome(doc *ChromeDoc) (chaosInstants int, err error) {
	lastTS := map[int]uint64{}
	depth := map[int]int{}
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			continue
		case "B":
			depth[ev.TID]++
		case "E":
			depth[ev.TID]--
			if depth[ev.TID] < 0 {
				return 0, fmt.Errorf("event %d: slice end without begin on tid %d", i, ev.TID)
			}
		case "i", "I":
			if ev.TID == ChaosTID {
				chaosInstants++
			}
		default:
			return 0, fmt.Errorf("event %d: unknown phase %q", i, ev.Phase)
		}
		if prev, ok := lastTS[ev.TID]; ok && ev.TS < prev {
			return 0, fmt.Errorf("event %d: timestamp %d < %d goes backwards on tid %d",
				i, ev.TS, prev, ev.TID)
		}
		lastTS[ev.TID] = ev.TS
	}
	for tid, d := range depth {
		if d != 0 {
			return 0, fmt.Errorf("tid %d: %d unclosed slice(s)", tid, d)
		}
	}
	return chaosInstants, nil
}
