package obs

import (
	"strings"
	"testing"
)

// stream is a plausible two-thread schedule with one chaos injection.
func chromeStream() []Event {
	return []Event{
		{Cycle: 0, Type: KindDispatch, Thread: 0},
		{Cycle: 40, Type: KindSyscall, Thread: 0, PC: 0x1000, Arg: 2},
		{Cycle: 100, Type: KindPreempt, Thread: 0},
		{Cycle: 100, Type: KindDispatch, Thread: 1},
		{Cycle: 150, Type: KindInject, Thread: 1, Arg: 0x4},
		{Cycle: 180, Type: KindRestart, Thread: 1, PC: 0x2000},
		{Cycle: 200, Type: KindYield, Thread: 1},
		{Cycle: 200, Type: KindDispatch, Thread: 0},
		{Cycle: 260, Type: KindExit, Thread: 0},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	data, err := ChromeTrace(chromeStream())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := ValidateChrome(doc)
	if err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
	if chaos != 1 {
		t.Errorf("chaos instants = %d, want 1", chaos)
	}

	// The injection must be mirrored onto the dedicated chaos track with
	// its own thread_name metadata.
	var chaosNamed, sawInject bool
	for _, ev := range doc.TraceEvents {
		if ev.TID != ChaosTID {
			continue
		}
		switch ev.Phase {
		case "M":
			chaosNamed = true
			if ev.Args["name"] != "chaos" {
				t.Errorf("chaos track named %v", ev.Args["name"])
			}
		case "i":
			sawInject = true
			if ev.TS != 150 {
				t.Errorf("inject instant at ts %d, want 150", ev.TS)
			}
		}
	}
	if !chaosNamed || !sawInject {
		t.Errorf("chaos track incomplete: named=%v inject=%v", chaosNamed, sawInject)
	}
}

func TestChromeTraceSliceShape(t *testing.T) {
	doc := ChromeTraceDoc(chromeStream())
	// Count running slices per thread: t0 runs twice, t1 once.
	begins := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "B" && ev.Name == "running" {
			begins[ev.TID]++
		}
	}
	if begins[0] != 2 || begins[1] != 1 {
		t.Errorf("running slices per thread = %v, want t0:2 t1:1", begins)
	}
	if !strings.Contains(string(mustChrome(t, chromeStream())), `"displayTimeUnit"`) {
		t.Error("container missing displayTimeUnit")
	}
}

func TestChromeTraceClosesDanglingSlices(t *testing.T) {
	// A dispatch with no matching suspension: the exporter must close the
	// slice at the last cycle so ValidateChrome's balance check passes.
	doc := ChromeTraceDoc([]Event{
		{Cycle: 0, Type: KindDispatch, Thread: 0},
		{Cycle: 90, Type: KindSyscall, Thread: 0},
	})
	if _, err := ValidateChrome(doc); err != nil {
		t.Fatalf("dangling slice not closed: %v", err)
	}
}

func TestChromeTraceDoubleDispatch(t *testing.T) {
	// Back-to-back dispatches of the same thread (restart paths do this)
	// must not produce nested unbalanced B events.
	doc := ChromeTraceDoc([]Event{
		{Cycle: 0, Type: KindDispatch, Thread: 0},
		{Cycle: 50, Type: KindDispatch, Thread: 0},
		{Cycle: 80, Type: KindExit, Thread: 0},
	})
	if _, err := ValidateChrome(doc); err != nil {
		t.Fatalf("double dispatch broke slice balance: %v", err)
	}
}

func TestValidateChromeRejectsBackwardsTimestamps(t *testing.T) {
	doc := &ChromeDoc{TraceEvents: []ChromeEvent{
		{Name: "a", Phase: "i", TS: 100, TID: 0, Scope: "t"},
		{Name: "b", Phase: "i", TS: 50, TID: 0, Scope: "t"},
	}}
	if _, err := ValidateChrome(doc); err == nil {
		t.Fatal("backwards timestamps on one track not rejected")
	}
	// Different tracks may interleave freely.
	doc2 := &ChromeDoc{TraceEvents: []ChromeEvent{
		{Name: "a", Phase: "i", TS: 100, TID: 0, Scope: "t"},
		{Name: "b", Phase: "i", TS: 50, TID: 1, Scope: "t"},
	}}
	if _, err := ValidateChrome(doc2); err != nil {
		t.Fatalf("cross-track interleaving wrongly rejected: %v", err)
	}
}

func TestValidateChromeRejectsUnbalancedSlices(t *testing.T) {
	if _, err := ValidateChrome(&ChromeDoc{TraceEvents: []ChromeEvent{
		{Name: "running", Phase: "E", TS: 10, TID: 0},
	}}); err == nil {
		t.Error("E without B not rejected")
	}
	if _, err := ValidateChrome(&ChromeDoc{TraceEvents: []ChromeEvent{
		{Name: "running", Phase: "B", TS: 10, TID: 0},
	}}); err == nil {
		t.Error("unclosed B not rejected")
	}
	if _, err := ValidateChrome(&ChromeDoc{TraceEvents: []ChromeEvent{
		{Name: "x", Phase: "Z", TS: 10, TID: 0},
	}}); err == nil {
		t.Error("unknown phase not rejected")
	}
}

func mustChrome(t *testing.T, evs []Event) []byte {
	t.Helper()
	data, err := ChromeTrace(evs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
