package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// MemOp classifies a memory operation on the uniprocessor runtime, whose
// guests are Go functions: there is no guest PC to attribute cycles to, so
// attribution is per Go callsite instead.
type MemOp int

const (
	MemLoad   MemOp = iota // Env.Load
	MemStore               // Env.Store
	MemCommit              // Env.Commit (the RAS/atomic commit point)
)

func (op MemOp) String() string {
	switch op {
	case MemLoad:
		return "load"
	case MemStore:
		return "store"
	case MemCommit:
		return "commit"
	}
	return "?"
}

// MemProfiler attributes uniprocessor memory-op counts and cycle charges
// to the Go call stacks that issued them. Stacks are captured as raw PCs
// on the hot path (interned by PC-string key, no symbolization) and
// resolved only when a report is rendered.
type MemProfiler struct {
	sites map[string]*memSite
	ops   [3]uint64
	total uint64 // cycles across all ops
}

type memSite struct {
	pcs    []uintptr
	ops    [3]uint64
	cycles uint64
}

// NewMemProfiler creates an empty profiler.
func NewMemProfiler() *MemProfiler {
	return &MemProfiler{sites: make(map[string]*memSite)}
}

// Note records one memory op costing the given cycles, attributed to the
// caller's caller (i.e. whoever invoked the Env method that calls Note).
func (m *MemProfiler) Note(op MemOp, cycles uint64) {
	m.NoteSkip(op, cycles, 3) // runtime.Callers, NoteSkip, Note, Env method -> its caller
}

// NoteSkip is Note with an explicit runtime.Callers skip count, for hooks
// at other depths.
func (m *MemProfiler) NoteSkip(op MemOp, cycles uint64, skip int) {
	var pcs [16]uintptr
	n := runtime.Callers(skip, pcs[:])
	key := string(pcKey(pcs[:n]))
	site := m.sites[key]
	if site == nil {
		site = &memSite{pcs: append([]uintptr{}, pcs[:n]...)}
		m.sites[key] = site
	}
	site.ops[op]++
	site.cycles += cycles
	m.ops[op]++
	m.total += cycles
}

func pcKey(pcs []uintptr) []byte {
	b := make([]byte, 0, len(pcs)*8)
	for _, pc := range pcs {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(pc>>s))
		}
	}
	return b
}

// OpCount returns how many operations of the given kind were noted.
func (m *MemProfiler) OpCount(op MemOp) uint64 { return m.ops[op] }

// Cycles returns the total cycles noted across all ops.
func (m *MemProfiler) Cycles() uint64 { return m.total }

// frames resolves a site's PCs to symbolic frames, innermost first,
// dropping runtime plumbing and the uniproc substrate's own internals so
// reports show guest code.
func frames(pcs []uintptr) []string {
	out := []string{}
	fr := runtime.CallersFrames(pcs)
	for {
		f, more := fr.Next()
		name := f.Function
		if name != "" &&
			!strings.HasPrefix(name, "runtime.") &&
			!strings.Contains(name, "internal/uniproc.") {
			out = append(out, strings.TrimPrefix(name, "repro/"))
		}
		if !more {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, "[unknown]")
	}
	return out
}

// Folded renders the profile in folded-stack format, cycles as the weight:
// "outer;inner cycles" per distinct callsite stack, sorted.
func (m *MemProfiler) Folded() string {
	agg := make(map[string]uint64)
	for _, site := range m.sites {
		fs := frames(site.pcs)
		// folded format wants root first
		rev := make([]string, len(fs))
		for i, f := range fs {
			rev[len(fs)-1-i] = f
		}
		agg[strings.Join(rev, ";")] += site.cycles
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, agg[k])
	}
	return b.String()
}

// Report renders a top-N table of callsites by cycles, with per-op counts.
func (m *MemProfiler) Report(top int) string {
	type row struct {
		leaf   string
		ops    [3]uint64
		cycles uint64
	}
	agg := make(map[string]*row)
	for _, site := range m.sites {
		leaf := frames(site.pcs)[0]
		r := agg[leaf]
		if r == nil {
			r = &row{leaf: leaf}
			agg[leaf] = r
		}
		for i := range site.ops {
			r.ops[i] += site.ops[i]
		}
		r.cycles += site.cycles
	}
	rows := make([]*row, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].leaf < rows[j].leaf
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %10s %10s  %s\n", "cycles", "loads", "stores", "commits", "callsite")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %10d %10d %10d  %s\n",
			r.cycles, r.ops[MemLoad], r.ops[MemStore], r.ops[MemCommit], r.leaf)
	}
	return b.String()
}
