package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotone event count.
type Counter struct {
	name, help string
	v          uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the gauge by delta (possibly negative).
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a fixed-bucket histogram of uint64 observations. Bounds are
// inclusive upper bucket edges; one implicit overflow bucket catches the
// rest.
type Histogram struct {
	name, help string
	bounds     []uint64
	counts     []uint64 // len(bounds)+1
	count, sum uint64
}

// NewHistogram returns a standalone (unregistered, unnamed) histogram
// with the given inclusive upper bucket edges — for callers that want a
// local latency distribution without a Registry.
func NewHistogram(bounds []uint64) *Histogram {
	return &Histogram{
		bounds: append([]uint64{}, bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveN records n observations of value v in one call — for
// reconstructing a distribution from pre-bucketed counts, such as a
// guest-side histogram peeled out of simulated memory.
func (h *Histogram) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	h.count += n
	h.sum += v * n
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i] += n
			return
		}
	}
	h.counts[len(h.bounds)] += n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the mean observation, or 0 before the first.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile observation for
// 0 ≤ q ≤ 1: the smallest bucket edge at which the cumulative count
// reaches ⌈q·count⌉. When the quantile falls in the overflow bucket the
// result saturates at the largest configured edge (the histogram cannot
// bound it more tightly). Returns 0 before the first observation.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var run uint64
	for i, c := range h.counts {
		run += c
		if run >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// P50 returns the median's bucket edge.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile bucket edge.
func (h *Histogram) P95() uint64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile bucket edge.
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// Buckets returns (upper-bound, cumulative-count) pairs, the overflow
// bucket last with bound ^uint64(0).
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	bounds := append(append([]uint64{}, h.bounds...), ^uint64(0))
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return bounds, cum
}

// ExpBuckets returns n exponentially spaced bounds starting at first and
// doubling — the usual shape for cycle costs.
func ExpBuckets(first uint64, n int) []uint64 {
	if first == 0 {
		first = 1
	}
	out := make([]uint64, 0, n)
	for b := first; len(out) < n; b *= 2 {
		out = append(out, b)
	}
	return out
}

// Registry holds named metrics. Lookups are get-or-create, so independent
// subsystems can share one registry without coordination. The simulated
// world is single-threaded by construction, so no locking is needed.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket bounds (ignored if it already exists).
func (r *Registry) Histogram(name, help string, bounds []uint64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, help: help,
		bounds: append([]uint64{}, bounds...),
		counts: make([]uint64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

// CounterValue returns the named counter's value (0 if absent) — the
// assertion hook tests use to compare against substrate Stats.
func (r *Registry) CounterValue(name string) uint64 {
	if c, ok := r.counters[name]; ok {
		return c.v
	}
	return 0
}

// Dump renders every metric as plain text, sorted by name: one
// `name value  # help` line per counter and gauge, and a block per
// histogram with count, sum, mean and cumulative buckets.
func (r *Registry) Dump() string {
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := r.counters[n]
		fmt.Fprintf(&b, "%-34s %12d  # %s\n", n, c.v, c.help)
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := r.gauges[n]
		fmt.Fprintf(&b, "%-34s %12d  # %s\n", n, g.v, g.help)
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		fmt.Fprintf(&b, "%s: count=%d sum=%d mean=%.1f  # %s\n", n, h.count, h.sum, h.Mean(), h.help)
		bounds, cum := h.Buckets()
		for i, bd := range bounds {
			if cum[i] == 0 && i > 0 && cum[i] == cum[i-1] {
				continue // skip empty leading detail; cumulative shape is preserved
			}
			if bd == ^uint64(0) {
				fmt.Fprintf(&b, "  le=+inf %12d\n", cum[i])
			} else {
				fmt.Fprintf(&b, "  le=%-6d %12d\n", bd, cum[i])
			}
		}
	}
	return b.String()
}
