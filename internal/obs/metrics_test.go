package obs

import (
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x")
	c2 := r.Counter("x_total", "ignored")
	if c1 != c2 {
		t.Error("counter not shared by name")
	}
	c1.Inc()
	c1.Add(4)
	if r.CounterValue("x_total") != 5 {
		t.Errorf("counter = %d, want 5", r.CounterValue("x_total"))
	}
	if r.CounterValue("absent_total") != 0 {
		t.Error("absent counter should read 0")
	}
	g := r.Gauge("g", "g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []uint64{10, 100})
	for _, v := range []uint64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5556 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || bounds[2] != ^uint64(0) {
		t.Fatalf("bounds = %v", bounds)
	}
	// <=10: 2, <=100: 3 cumulative, overflow: 5 cumulative.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 5 {
		t.Errorf("cumulative = %v", cum)
	}
	if h.Mean() != 5556.0/5 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 10)) // edges 1..512
	// 100 observations: 50 at ≤4, 45 at ≤64, 5 at ≤512.
	for i := 0; i < 50; i++ {
		h.Observe(3)
	}
	for i := 0; i < 45; i++ {
		h.Observe(60)
	}
	for i := 0; i < 5; i++ {
		h.Observe(400)
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0, 4}, {0.5, 4}, {0.51, 64}, {0.95, 64}, {0.96, 512}, {0.99, 512}, {1, 512},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.P50() != 4 || h.P95() != 64 || h.P99() != 512 {
		t.Errorf("P50/P95/P99 = %d/%d/%d", h.P50(), h.P95(), h.P99())
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]uint64{10})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	h.Observe(1000) // overflow bucket
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("overflow quantile = %d, want saturation at 10", got)
	}
	if got := h.Quantile(-1); got != 10 {
		t.Errorf("clamped q<0 = %d", got)
	}
	empty := NewHistogram(nil)
	empty.Observe(7)
	if empty.Quantile(0.5) != 0 {
		t.Error("no-bucket histogram quantile not 0")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(16, 4)
	want := []uint64{16, 32, 64, 128}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if got := ExpBuckets(0, 2); got[0] != 1 {
		t.Errorf("zero first bound = %v", got)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Inc()
	r.Histogram("lat", "latency", []uint64{8}).Observe(3)
	d := r.Dump()
	if !strings.Contains(d, "a_total") || !strings.Contains(d, "b_total") || !strings.Contains(d, "lat:") {
		t.Fatalf("dump missing entries:\n%s", d)
	}
	if strings.Index(d, "a_total") > strings.Index(d, "b_total") {
		t.Error("dump not sorted by name")
	}
}

func TestPaperMetricsDerivesFromEvents(t *testing.T) {
	pm := NewPaperMetrics(nil)
	events := []Event{
		{Type: KindRestart},
		{Type: KindRestart},
		{Type: KindPreempt, Arg: 0},
		{Type: KindPreempt, Arg: 1}, // spurious
		{Type: KindEmulTrap},
		{Type: KindRepair, Arg: 3},
		{Type: KindDemote},
		{Type: KindPromote},
		{Type: KindWatchdog, Arg: 32},
		{Type: KindKill},
		{Type: KindCrash},
		{Type: KindInject, Arg: 9},
		{Type: KindSyscall},
		{Type: KindPageFault},
		{Type: KindDispatch},
	}
	for _, e := range events {
		pm.Event(e)
	}
	checks := []struct {
		c    *Counter
		want uint64
	}{
		{pm.Restarts, 2}, {pm.Preemptions, 1}, {pm.Spurious, 1},
		{pm.EmulTraps, 1}, {pm.Repairs, 1}, {pm.Demotions, 1},
		{pm.Promotions, 1}, {pm.Watchdogs, 1}, {pm.Kills, 1},
		{pm.Crashes, 1}, {pm.Injections, 1}, {pm.Syscalls, 1},
		{pm.PageFaults, 1}, {pm.Dispatches, 1},
	}
	for _, ck := range checks {
		if ck.c.Value() != ck.want {
			t.Errorf("%s = %d, want %d", ck.c.Name(), ck.c.Value(), ck.want)
		}
	}
	pm.Passage.Observe(40)
	if !strings.Contains(pm.Dump(), "rme_passage_cycles: count=1") {
		t.Error("passage histogram missing from dump")
	}
}
