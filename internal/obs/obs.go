// Package obs is the unified observability core shared by both of the
// repository's substrates: the ISA-level simulated kernel
// (internal/vmach/kernel) and the primitive-op-level virtual uniprocessor
// (internal/uniproc).
//
// The paper's central empirical claims (§5.3, Tables 1-4) are counting
// claims — restarts are rare, suspensions inside sequences are rare, RAS
// wins because the common case pays no trap — and the recoverable-mutual-
// exclusion literature (Chan & Woelfel, PAPERS.md) frames lock quality as
// *passage cost*. Both demand first-class measurement. This package
// provides it in four layers:
//
//   - an event bus: a bounded drop-oldest ring buffer with a common event
//     schema (virtual-cycle timestamp, thread, kind, args) that both
//     substrates publish into through their existing Tracer hooks;
//   - a metrics registry: counters, gauges and fixed-bucket histograms,
//     pre-wired (see PaperMetrics) with the paper's headline counters and
//     an RMR-style passage-cost histogram for core.RecoverableMutex;
//   - cycle-attributed profilers: per-PC/per-symbol flat+cumulative cycle
//     histograms for the ISA machine (CycleProfiler, fed by the kernel's
//     retired-instruction hook) and per-callsite memory-op profiles for
//     the uniprocessor runtime (MemProfiler), both with folded-stack
//     (flamegraph-ready) text output;
//   - exporters: Chrome trace-event JSON (Perfetto-loadable; one track per
//     thread plus an instant-event track for chaos injections) and a
//     plain-text metrics dump.
//
// obs depends only on the standard library, so every substrate (and core,
// bench, and the CLIs) can import it without cycles.
package obs

import "fmt"

// Kind classifies an event. The set is the union of both substrates'
// former private trace enums; kinds one substrate never emits are simply
// absent from its streams. The order Dispatch..Exit deliberately matches
// the uniprocessor runtime's original numbering so that range-style
// iteration over the runtime kinds keeps working.
type Kind int

const (
	KindDispatch      Kind = iota // a thread was given the processor
	KindPreempt                   // involuntary suspension (Arg 1 = spurious)
	KindRestart                   // a RAS rollback was applied (Arg = rolled-back-from PC)
	KindYield                     // voluntary relinquish
	KindBlock                     // thread blocked on a wait queue
	KindUnblock                   // thread readied another (Arg = woken thread ID)
	KindTrap                      // kernel trap entry (uniproc runtime)
	KindFork                      // thread created (Arg = new thread ID)
	KindExit                      // thread finished (Arg = exit code)
	KindSyscall                   // syscall dispatched (Arg = syscall number)
	KindPageFault                 // page was faulted in (Arg = address)
	KindFault                     // unrecoverable thread fault (Arg = address)
	KindInject                    // a chaos fault was applied (Arg = action bits)
	KindWatchdog                  // restart-livelock watchdog fired (Arg = restart count)
	KindDemote                    // adaptive mechanism demoted to emulation
	KindPromote                   // demoted mechanism re-promoted to the fast path
	KindKill                      // thread killed by fault injection or KillThread
	KindCrash                     // injected whole-machine crash ended the run
	KindRepair                    // orphaned lock repaired (Arg = dead owner's ID)
	KindEmulTrap                  // kernel-emulated atomic operation
	KindCrashDegraded             // CrashVolatile on a non-persistent memory fell back to Crash
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindPreempt:
		return "preempt"
	case KindRestart:
		return "restart"
	case KindYield:
		return "yield"
	case KindBlock:
		return "block"
	case KindUnblock:
		return "unblock"
	case KindTrap:
		return "trap"
	case KindFork:
		return "fork"
	case KindExit:
		return "exit"
	case KindSyscall:
		return "syscall"
	case KindPageFault:
		return "pagefault"
	case KindFault:
		return "fault"
	case KindInject:
		return "inject"
	case KindWatchdog:
		return "watchdog"
	case KindDemote:
		return "demote"
	case KindPromote:
		return "promote"
	case KindKill:
		return "kill"
	case KindCrash:
		return "crash"
	case KindRepair:
		return "repair"
	case KindEmulTrap:
		return "emultrap"
	case KindCrashDegraded:
		return "crash-degraded"
	}
	return "?"
}

// Event is one observation, in the schema both substrates share. Cycle is
// virtual time; PC is meaningful only on the ISA substrate (zero on the
// runtime layer, which has no program counter). CPU identifies which CPU
// of an SMP complex emitted the event; uniprocessor substrates leave it 0.
type Event struct {
	Cycle  uint64
	Type   Kind
	Thread int
	CPU    int
	PC     uint32
	Arg    uint64
}

// String renders the event on one line.
func (ev Event) String() string {
	s := fmt.Sprintf("[%10d] t%-2d %-9s", ev.Cycle, ev.Thread, ev.Type)
	if ev.CPU != 0 {
		s = fmt.Sprintf("[%10d] cpu%d t%-2d %-9s", ev.Cycle, ev.CPU, ev.Thread, ev.Type)
	}
	if ev.PC != 0 {
		s += fmt.Sprintf(" pc=%#08x", ev.PC)
	}
	switch ev.Type {
	case KindRestart:
		if ev.Arg != 0 {
			s += fmt.Sprintf(" rolled back from %#08x", uint32(ev.Arg))
		}
	case KindSyscall:
		s += fmt.Sprintf(" num=%d", ev.Arg)
	case KindExit:
		s += fmt.Sprintf(" code=%d", ev.Arg)
	case KindUnblock, KindFork:
		s += fmt.Sprintf(" -> t%d", ev.Arg)
	case KindInject:
		s += fmt.Sprintf(" action=%#x", ev.Arg)
	case KindWatchdog:
		s += fmt.Sprintf(" restarts=%d", ev.Arg)
	case KindRepair:
		s += fmt.Sprintf(" dead=t%d", ev.Arg)
	}
	return s
}

// Sink receives published events. Both substrates' Tracer interfaces are
// aliases of Sink, so a Ring, a Bus, a Capture, or a PaperMetrics can be
// installed directly as either substrate's tracer.
type Sink interface {
	Event(Event)
}
