package obs

// PaperMetrics wires a Registry to the paper's headline counters and the
// RME passage-cost histogram, deriving every value from the event stream
// (not copied from substrate stats — the acceptance test for the bus is
// that the two agree exactly). Install it as (or attach it to) a tracer.
type PaperMetrics struct {
	Reg *Registry

	Restarts    *Counter // KindRestart: RAS rollbacks applied
	Preemptions *Counter // KindPreempt with Arg==0: real end-of-quantum preemptions
	Spurious    *Counter // KindPreempt with Arg!=0: injected spurious suspensions
	EmulTraps   *Counter // KindEmulTrap: kernel-emulated atomic ops
	Repairs     *Counter // KindRepair: orphaned-lock repairs
	Demotions   *Counter // KindDemote
	Promotions  *Counter // KindPromote
	Watchdogs   *Counter // KindWatchdog
	Kills       *Counter // KindKill
	Crashes     *Counter // KindCrash
	Injections  *Counter // KindInject
	Syscalls    *Counter // KindSyscall
	PageFaults  *Counter // KindPageFault
	Dispatches  *Counter // KindDispatch

	// Passage is the RMR-style passage-cost histogram for
	// core.RecoverableMutex: virtual cycles from acquire-start to
	// release-end. The mutex observes into it directly (passage cost is a
	// span, not an event).
	Passage *Histogram
}

// NewPaperMetrics pre-wires reg (a fresh registry if nil).
func NewPaperMetrics(reg *Registry) *PaperMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &PaperMetrics{
		Reg:         reg,
		Restarts:    reg.Counter("restarts_total", "RAS rollbacks applied on suspension inside a sequence"),
		Preemptions: reg.Counter("preemptions_total", "involuntary end-of-quantum suspensions"),
		Spurious:    reg.Counter("spurious_suspensions_total", "chaos-injected spurious suspensions"),
		EmulTraps:   reg.Counter("emul_traps_total", "kernel-emulated atomic operations (trap path)"),
		Repairs:     reg.Counter("rme_repairs_total", "orphaned recoverable-mutex repairs"),
		Demotions:   reg.Counter("demotions_total", "adaptive RAS->emulation demotions"),
		Promotions:  reg.Counter("promotions_total", "emulation->RAS re-promotions"),
		Watchdogs:   reg.Counter("watchdog_fires_total", "restart-livelock watchdog fires"),
		Kills:       reg.Counter("kills_total", "threads killed mid-run"),
		Crashes:     reg.Counter("crashes_total", "injected whole-machine crashes"),
		Injections:  reg.Counter("injections_total", "chaos faults applied"),
		Syscalls:    reg.Counter("syscalls_total", "syscalls dispatched"),
		PageFaults:  reg.Counter("page_faults_total", "pages faulted in"),
		Dispatches:  reg.Counter("dispatches_total", "thread dispatches"),
		Passage: reg.Histogram("rme_passage_cycles",
			"recoverable-mutex passage cost: cycles from acquire start to release end",
			ExpBuckets(16, 16)),
	}
}

// Event implements Sink, deriving counters from the stream.
func (pm *PaperMetrics) Event(ev Event) {
	switch ev.Type {
	case KindRestart:
		pm.Restarts.Inc()
	case KindPreempt:
		if ev.Arg == 0 {
			pm.Preemptions.Inc()
		} else {
			pm.Spurious.Inc()
		}
	case KindEmulTrap:
		pm.EmulTraps.Inc()
	case KindRepair:
		pm.Repairs.Inc()
	case KindDemote:
		pm.Demotions.Inc()
	case KindPromote:
		pm.Promotions.Inc()
	case KindWatchdog:
		pm.Watchdogs.Inc()
	case KindKill:
		pm.Kills.Inc()
	case KindCrash:
		pm.Crashes.Inc()
	case KindInject:
		pm.Injections.Inc()
	case KindSyscall:
		pm.Syscalls.Inc()
	case KindPageFault:
		pm.PageFaults.Inc()
	case KindDispatch:
		pm.Dispatches.Inc()
	}
}

// Dump renders the backing registry as plain text.
func (pm *PaperMetrics) Dump() string { return pm.Reg.Dump() }
