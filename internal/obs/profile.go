package obs

import (
	"fmt"
	"sort"
	"strings"
)

// SampleKind tells the profiler how an instruction moved the control stack.
// The decode happens in the kernel (which already owns the ISA decoder);
// the profiler only maintains shadow stacks from the resulting kinds.
type SampleKind int

const (
	SampleOp     SampleKind = iota // ordinary instruction
	SampleCall                     // a call: after this instruction the thread is in a new frame
	SampleReturn                   // a return: after this instruction the current frame is gone
)

// Symbol is one entry of the guest program's symbol table: a name and the
// address of its first instruction.
type Symbol struct {
	Name string
	Addr uint32
}

// CycleProfiler attributes retired-instruction cycles to program counters
// and symbols on the ISA substrate. The kernel calls Sample once per
// retired guest instruction and NoteKernel once per kernel-time charge;
// the profiler keeps per-PC flat counts, per-symbol flat and cumulative
// counts, and per-thread shadow call stacks for folded (flamegraph-ready)
// output.
//
// Flat cycles belong to the symbol whose code was executing; cumulative
// cycles belong to every symbol on the thread's call stack at that moment.
// Kernel time is attributed to the pseudo-symbol "[kernel]".
type CycleProfiler struct {
	syms []Symbol // sorted by Addr

	pcFlat  map[uint32]uint64
	flat    map[string]uint64
	cum     map[string]uint64
	folded  map[string]uint64
	stacks  map[int][]string
	samples uint64
	cycles  uint64
	kernel  uint64
}

// NewCycleProfiler creates an empty profiler; call SetSymbols before
// sampling to get symbolic attribution (raw addresses otherwise).
func NewCycleProfiler() *CycleProfiler {
	return &CycleProfiler{
		pcFlat: make(map[uint32]uint64),
		flat:   make(map[string]uint64),
		cum:    make(map[string]uint64),
		folded: make(map[string]uint64),
		stacks: make(map[int][]string),
	}
}

// SetSymbols installs the guest symbol table (any order; copied and sorted).
func (p *CycleProfiler) SetSymbols(syms []Symbol) {
	p.syms = append([]Symbol{}, syms...)
	sort.Slice(p.syms, func(i, j int) bool { return p.syms[i].Addr < p.syms[j].Addr })
}

// Resolve maps a PC to the name of the symbol containing it, or a raw
// address string when the table has no covering entry.
func (p *CycleProfiler) Resolve(pc uint32) string {
	i := sort.Search(len(p.syms), func(i int) bool { return p.syms[i].Addr > pc })
	if i == 0 {
		return fmt.Sprintf("0x%08x", pc)
	}
	return p.syms[i-1].Name
}

// Sample records one retired instruction: thread tid executed the
// instruction at pc for the given cycles; kind says whether it was a call
// or return, and nextPC is where control lands afterwards (the callee
// entry for calls; ignored otherwise).
func (p *CycleProfiler) Sample(tid int, pc uint32, cycles uint64, kind SampleKind, nextPC uint32) {
	p.samples++
	p.cycles += cycles
	p.pcFlat[pc] += cycles

	stack := p.stacks[tid]
	cur := p.Resolve(pc)
	if len(stack) == 0 {
		stack = append(stack, cur)
	} else if stack[len(stack)-1] != cur {
		// Control moved between symbols without a tracked call/return
		// (tail jump, rollback, or sampling started mid-call): relabel the
		// top frame rather than invent a frame that was never pushed.
		stack[len(stack)-1] = cur
	}

	// Attribute this instruction's cycles to the stack as it stood while
	// the instruction executed.
	p.flat[cur] += cycles
	seen := make(map[string]bool, len(stack))
	for _, f := range stack {
		if !seen[f] { // recursion: count a symbol's cum once per sample
			p.cum[f] += cycles
			seen[f] = true
		}
	}
	p.folded[strings.Join(stack, ";")] += cycles

	switch kind {
	case SampleCall:
		if len(stack) < 256 { // bound runaway recursion in broken guests
			stack = append(stack, p.Resolve(nextPC))
		}
	case SampleReturn:
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
	}
	p.stacks[tid] = stack
}

// NoteKernel attributes cycles of kernel time (dispatch, trap handling,
// emulation) to the "[kernel]" pseudo-symbol.
func (p *CycleProfiler) NoteKernel(cycles uint64) {
	p.kernel += cycles
	p.cycles += cycles
	p.flat["[kernel]"] += cycles
	p.cum["[kernel]"] += cycles
	p.folded["[kernel]"] += cycles
}

// Samples returns the number of retired instructions sampled.
func (p *CycleProfiler) Samples() uint64 { return p.samples }

// Cycles returns the total cycles attributed (guest + kernel).
func (p *CycleProfiler) Cycles() uint64 { return p.cycles }

// FlatCycles returns the flat cycles attributed to a symbol name.
func (p *CycleProfiler) FlatCycles(sym string) uint64 { return p.flat[sym] }

// CumCycles returns the cumulative cycles attributed to a symbol name.
func (p *CycleProfiler) CumCycles(sym string) uint64 { return p.cum[sym] }

// Folded renders the profile in folded-stack format — one
// "frameA;frameB cycles" line per distinct stack, sorted — ready for
// flamegraph.pl or speedscope.
func (p *CycleProfiler) Folded() string {
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, p.folded[k])
	}
	return b.String()
}

// Report renders a top-N table of symbols by flat cycles, with cumulative
// cycles and percentages.
func (p *CycleProfiler) Report(top int) string {
	type row struct {
		sym       string
		flat, cum uint64
	}
	rows := make([]row, 0, len(p.flat))
	for s, f := range p.flat {
		rows = append(rows, row{s, f, p.cum[s]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].flat != rows[j].flat {
			return rows[i].flat > rows[j].flat
		}
		return rows[i].sym < rows[j].sym
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %6s %12s  %s\n", "flat(cyc)", "flat%", "cum(cyc)", "symbol")
	for _, r := range rows {
		pct := 0.0
		if p.cycles > 0 {
			pct = 100 * float64(r.flat) / float64(p.cycles)
		}
		fmt.Fprintf(&b, "%12d %5.1f%% %12d  %s\n", r.flat, pct, r.cum, r.sym)
	}
	return b.String()
}
