package obs

import (
	"strings"
	"testing"
)

func newSymProfiler() *CycleProfiler {
	p := NewCycleProfiler()
	p.SetSymbols([]Symbol{
		{Name: "main", Addr: 0x100},
		{Name: "acquire", Addr: 0x200},
		{Name: "release", Addr: 0x300},
	})
	return p
}

func TestCycleProfilerResolve(t *testing.T) {
	p := newSymProfiler()
	cases := []struct {
		pc   uint32
		want string
	}{
		{0x100, "main"}, {0x1fc, "main"}, {0x200, "acquire"},
		{0x2ff, "acquire"}, {0x300, "release"}, {0x9000, "release"},
		{0x50, "0x00000050"}, // below the first symbol: raw address
	}
	for _, c := range cases {
		if got := p.Resolve(c.pc); got != c.want {
			t.Errorf("Resolve(%#x) = %q, want %q", c.pc, got, c.want)
		}
	}
}

func TestCycleProfilerShadowStack(t *testing.T) {
	p := newSymProfiler()
	// main runs 2 ops, calls acquire (3 ops), returns, runs 1 more op.
	p.Sample(0, 0x100, 1, SampleOp, 0x104)
	p.Sample(0, 0x104, 1, SampleCall, 0x200) // jal acquire
	p.Sample(0, 0x200, 2, SampleOp, 0x204)
	p.Sample(0, 0x204, 1, SampleOp, 0x208)
	p.Sample(0, 0x208, 1, SampleReturn, 0x108) // jr ra
	p.Sample(0, 0x108, 1, SampleOp, 0x10c)

	if p.Samples() != 6 || p.Cycles() != 7 {
		t.Errorf("samples=%d cycles=%d, want 6/7", p.Samples(), p.Cycles())
	}
	// Flat: main gets its own 3 ops (2+1+1 cycles at 0x100,0x104,0x108),
	// acquire its 3 (2+1+1).
	if p.FlatCycles("main") != 3 || p.FlatCycles("acquire") != 4 {
		t.Errorf("flat main=%d acquire=%d, want 3/4", p.FlatCycles("main"), p.FlatCycles("acquire"))
	}
	// Cumulative: main is on the stack for all 7 cycles; acquire for its 4.
	if p.CumCycles("main") != 7 || p.CumCycles("acquire") != 4 {
		t.Errorf("cum main=%d acquire=%d, want 7/4", p.CumCycles("main"), p.CumCycles("acquire"))
	}
	folded := p.Folded()
	if !strings.Contains(folded, "main;acquire 4") {
		t.Errorf("folded missing call-stack attribution:\n%s", folded)
	}
	if !strings.Contains(folded, "main 3") {
		t.Errorf("folded missing main-only stack:\n%s", folded)
	}
}

func TestCycleProfilerRelabelsUntrackedTransfer(t *testing.T) {
	p := newSymProfiler()
	// A rollback/tail-jump moves from acquire to release with no call or
	// return: the top frame is relabeled, not stacked.
	p.Sample(0, 0x200, 1, SampleOp, 0x204)
	p.Sample(0, 0x300, 1, SampleOp, 0x304)
	folded := p.Folded()
	if strings.Contains(folded, ";") {
		t.Errorf("untracked transfer grew the stack:\n%s", folded)
	}
	if p.FlatCycles("acquire") != 1 || p.FlatCycles("release") != 1 {
		t.Error("flat attribution wrong after relabel")
	}
}

func TestCycleProfilerKernelAttribution(t *testing.T) {
	p := newSymProfiler()
	p.Sample(0, 0x100, 5, SampleOp, 0x104)
	p.NoteKernel(20)
	if p.FlatCycles("[kernel]") != 20 || p.Cycles() != 25 {
		t.Errorf("kernel flat=%d total=%d, want 20/25", p.FlatCycles("[kernel]"), p.Cycles())
	}
	rep := p.Report(10)
	if !strings.Contains(rep, "[kernel]") || !strings.Contains(rep, "main") {
		t.Errorf("report missing symbols:\n%s", rep)
	}
	// [kernel] has 20 of 25 cycles = 80%.
	if !strings.Contains(rep, "80.0%") {
		t.Errorf("report percentage wrong:\n%s", rep)
	}
}

func TestCycleProfilerRecursionCountsCumOnce(t *testing.T) {
	p := newSymProfiler()
	// acquire calls itself: its cum must count each sample's cycles once.
	p.Sample(0, 0x200, 1, SampleCall, 0x200)
	p.Sample(0, 0x204, 2, SampleOp, 0x208)
	if p.CumCycles("acquire") != 3 {
		t.Errorf("recursive cum = %d, want 3", p.CumCycles("acquire"))
	}
	if !strings.Contains(p.Folded(), "acquire;acquire 2") {
		t.Errorf("recursive folded stack missing:\n%s", p.Folded())
	}
}

// memProbeLoad exists to give the MemProfiler a recognizable callsite.
func memProbeLoad(m *MemProfiler) { m.NoteSkip(MemLoad, 7, 2) }

func TestMemProfilerCountsAndFrames(t *testing.T) {
	m := NewMemProfiler()
	for i := 0; i < 3; i++ {
		memProbeLoad(m)
	}
	m.NoteSkip(MemStore, 5, 2)
	m.NoteSkip(MemCommit, 9, 2)

	if m.OpCount(MemLoad) != 3 || m.OpCount(MemStore) != 1 || m.OpCount(MemCommit) != 1 {
		t.Errorf("op counts = %d/%d/%d", m.OpCount(MemLoad), m.OpCount(MemStore), m.OpCount(MemCommit))
	}
	if m.Cycles() != 3*7+5+9 {
		t.Errorf("cycles = %d, want 35", m.Cycles())
	}
	folded := m.Folded()
	if !strings.Contains(folded, "memProbeLoad") {
		t.Errorf("folded missing probe callsite:\n%s", folded)
	}
	// The repro/ module prefix is trimmed from frames.
	if strings.Contains(folded, "repro/internal/obs") {
		t.Errorf("module prefix not trimmed:\n%s", folded)
	}
	rep := m.Report(5)
	if !strings.Contains(rep, "callsite") {
		t.Errorf("report header missing:\n%s", rep)
	}
}

func TestMemOpString(t *testing.T) {
	if MemLoad.String() != "load" || MemStore.String() != "store" ||
		MemCommit.String() != "commit" || MemOp(9).String() != "?" {
		t.Error("MemOp.String mismatch")
	}
}
