package obs

import "strings"

// Ring is the bounded event buffer at the heart of the bus: a fixed-size
// drop-oldest ring. Publishing never allocates after the buffer fills and
// never blocks; when capacity is exceeded the oldest event is overwritten
// and Dropped is incremented, so Total() == len(Events()) + Dropped()
// always holds exactly.
type Ring struct {
	buf     []Event
	next    int
	total   uint64
	dropped uint64
}

// NewRing creates a ring retaining the last n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Event implements Sink.
func (r *Ring) Event(ev Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
	r.dropped++
}

// Total reports how many events were published in all, retained or not.
func (r *Ring) Total() uint64 { return r.total }

// Dropped reports how many events were overwritten by newer ones.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Drain returns the retained events in chronological order and empties the
// ring. Total and Dropped keep accumulating across drains.
func (r *Ring) Drain() []Event {
	out := r.Events()
	r.buf = r.buf[:0]
	r.next = 0
	return out
}

// String renders the retained events, one per line.
func (r *Ring) String() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Capture is an unbounded Sink retaining every event, for trace export
// where the whole run must survive (the ring is for steady-state tails).
type Capture struct {
	evs []Event
}

// Event implements Sink.
func (c *Capture) Event(ev Event) { c.evs = append(c.evs, ev) }

// Events returns everything captured, in publish order.
func (c *Capture) Events() []Event { return c.evs }

// Len returns the number of captured events.
func (c *Capture) Len() int { return len(c.evs) }
