package obs

import "testing"

func ev(i int) Event { return Event{Cycle: uint64(i), Type: KindDispatch, Thread: i} }

func TestRingOverflowDropsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Event(ev(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The survivors must be the newest four, oldest-first.
	for i, e := range evs {
		if want := uint64(6 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestRingDroppedCounterExact(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 3; i++ {
		r.Event(ev(i))
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d before overflow, want 0", r.Dropped())
	}
	for i := 3; i < 11; i++ {
		r.Event(ev(i))
	}
	if r.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", r.Dropped())
	}
	if r.Total() != 11 {
		t.Errorf("total = %d, want 11", r.Total())
	}
	// The documented invariant: Total == retained + Dropped, exactly.
	if got := uint64(len(r.Events())) + r.Dropped(); got != r.Total() {
		t.Errorf("retained+dropped = %d, total = %d", got, r.Total())
	}
}

func TestRingFullDrainRefillPreservesOrdering(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ { // fill past capacity
		r.Event(ev(i))
	}
	drained := r.Drain()
	if len(drained) != 4 {
		t.Fatalf("drained %d, want 4", len(drained))
	}
	for i, e := range drained {
		if want := uint64(3 + i); e.Cycle != want {
			t.Errorf("drained[%d].Cycle = %d, want %d", i, e.Cycle, want)
		}
	}
	if len(r.Events()) != 0 {
		t.Fatalf("ring not empty after drain")
	}
	// Refill past capacity again: ordering must hold with the same buffer.
	for i := 100; i < 106; i++ {
		r.Event(ev(i))
	}
	refilled := r.Events()
	if len(refilled) != 4 {
		t.Fatalf("refilled %d, want 4", len(refilled))
	}
	for i, e := range refilled {
		if want := uint64(102 + i); e.Cycle != want {
			t.Errorf("refilled[%d].Cycle = %d, want %d", i, e.Cycle, want)
		}
	}
	// Totals accumulate across the drain: 7 + 6 published, 3 + 2 dropped.
	if r.Total() != 13 {
		t.Errorf("total = %d, want 13", r.Total())
	}
	if r.Dropped() != 5 {
		t.Errorf("dropped = %d, want 5", r.Dropped())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Event(ev(1))
	r.Event(ev(2))
	evs := r.Events()
	if len(evs) != 1 || evs[0].Cycle != 2 {
		t.Errorf("zero-capacity ring retained %v", evs)
	}
}

func TestCaptureUnbounded(t *testing.T) {
	c := &Capture{}
	for i := 0; i < 10000; i++ {
		c.Event(ev(i))
	}
	if c.Len() != 10000 {
		t.Fatalf("captured %d, want 10000", c.Len())
	}
	if c.Events()[9999].Cycle != 9999 {
		t.Error("capture order broken")
	}
}
