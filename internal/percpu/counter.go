package percpu

import (
	"repro/internal/rseq"
	"repro/internal/uniproc"
)

// Counter is a sharded counter: each thread increments its home CPU's
// slot with a restartable sequence — no interlocked instruction, no
// shared cache line — and Sum reconciles the slots on read (the librseq
// per-CPU counter, Snippet 1's first example).
type Counter struct {
	d *Domain
	c *rseq.PerCPUCounter
}

// NewCounter returns a counter sharded across the domain.
func NewCounter(d *Domain) *Counter {
	return &Counter{d: d, c: rseq.MakePerCPUCounter(d.CPUs())}
}

// Inc increments the calling thread's home slot.
func (c *Counter) Inc(e *uniproc.Env) {
	c.c.IncOn(e, c.d.Home(e))
}

// Add adds delta to the calling thread's home slot.
func (c *Counter) Add(e *uniproc.Env, delta Word) {
	c.c.AddOn(e, c.d.Home(e), delta)
}

// Sum totals every slot. The result is a consistent snapshot only once
// the writers have quiesced; mid-run it is the usual statistical read a
// sharded counter gives.
func (c *Counter) Sum(e *uniproc.Env) Word {
	return c.c.Sum(e)
}
