package percpu

import (
	"repro/internal/rseq"
	"repro/internal/uniproc"
)

// FreeList is a per-CPU size-class free-list allocator — Snippet 1's
// malloc fast path. Every size class keeps one intrusive free list per
// CPU plus a global reserve: Alloc pops from the home CPU's list with a
// single restartable sequence (no interlocked instruction, no shared
// line), refills a batch from the global reserve when the local list is
// dry, and steals from a sibling CPU as the last resort. Free pushes
// back onto the home CPU's list.
//
// Blocks are fixed handles over one backing arena; Span resolves a
// handle to its arena offset and size, so the allocator can be used for
// real payloads while the benchmark's interest is the path costs.
type FreeList struct {
	d       *Domain
	classes []int  // block size (words) per class
	local   []Word // per-CPU list heads, indexed [cpu*len(classes)+class]
	global  []Word // global reserve heads, one per class
	next    []Word // intrusive links, indexed by block handle
	offset  []int  // arena word offset per block handle
	class   []int  // size class per block handle
	arena   []Word

	stats FreeListStats
}

// FreeListStats splits allocations by the path that served them; the
// fast-path fraction is the allocator's whole argument.
type FreeListStats struct {
	FastAllocs uint64 // served from the home CPU's list
	Refills    uint64 // home list dry: batch moved from the global reserve
	Steals     uint64 // global reserve dry too: block taken from a sibling
	Failures   uint64 // every list empty
	Frees      uint64
}

// RefillBatch is how many blocks a refill moves from the global reserve
// to the home list: one slow path amortized over the next several
// allocations, as in librseq's malloc.
const RefillBatch = 8

// NewFreeList builds an allocator with the given size classes (in
// words) and perClass blocks of each class per CPU. All blocks start on
// the global reserve, so the first allocations on each CPU exercise the
// refill path and the rest stay local.
func NewFreeList(d *Domain, classes []int, perClass int) *FreeList {
	if len(classes) == 0 {
		classes = []int{4, 16, 64}
	}
	if perClass < 1 {
		perClass = 1
	}
	f := &FreeList{
		d:       d,
		classes: append([]int(nil), classes...),
		local:   make([]Word, d.CPUs()*len(classes)),
		global:  make([]Word, len(classes)),
	}
	words := 0
	for class, size := range f.classes {
		for i := 0; i < perClass*d.CPUs(); i++ {
			handle := len(f.offset)
			f.offset = append(f.offset, words)
			f.class = append(f.class, class)
			f.next = append(f.next, f.global[class])
			f.global[class] = Word(handle + 1)
			words += size
		}
	}
	f.arena = make([]Word, words)
	return f
}

// Stats returns a copy of the path counters.
func (f *FreeList) Stats() FreeListStats { return f.stats }

// Classes returns the configured class sizes.
func (f *FreeList) Classes() []int { return append([]int(nil), f.classes...) }

// SizeClass returns the smallest class index whose blocks hold size
// words, or -1 when the request exceeds every class.
func (f *FreeList) SizeClass(size int) int {
	for class, s := range f.classes {
		if size <= s {
			return class
		}
	}
	return -1
}

// Span resolves a handle to its arena span.
func (f *FreeList) Span(h int) []Word {
	return f.arena[f.offset[h] : f.offset[h]+f.classes[f.class[h]]]
}

// Alloc allocates a block of at least size words, reporting the handle
// and whether a block was available anywhere.
func (f *FreeList) Alloc(e *uniproc.Env, size int) (int, bool) {
	class := f.SizeClass(size)
	if class < 0 {
		f.stats.Failures++
		return 0, false
	}
	cpu := f.d.Home(e)
	head := &f.local[cpu*len(f.classes)+class]
	// Fast path: one restartable pop on this CPU's own list.
	if h, ok := rseq.ListPop(e, head, f.next); ok {
		f.stats.FastAllocs++
		return h, true
	}
	// Slow path 1: refill a batch from the global reserve — one slow
	// path buys the next RefillBatch-1 fast allocations. The first block
	// popped is returned directly; the rest land on the home list.
	if first, ok := rseq.ListPop(e, &f.global[class], f.next); ok {
		f.stats.Refills++
		for moved := 1; moved < RefillBatch; moved++ {
			h2, ok := rseq.ListPop(e, &f.global[class], f.next)
			if !ok {
				break
			}
			rseq.ListPush(e, head, f.next, h2)
		}
		return first, true
	}
	// Slow path 2: steal one block from a sibling CPU's list.
	for i := 1; i < f.d.CPUs(); i++ {
		victim := (cpu + i) % f.d.CPUs()
		if h, ok := rseq.ListPop(e, &f.local[victim*len(f.classes)+class], f.next); ok {
			f.stats.Steals++
			return h, true
		}
	}
	f.stats.Failures++
	return 0, false
}

// Free returns a block to the calling thread's home list.
func (f *FreeList) Free(e *uniproc.Env, h int) {
	cpu := f.d.Home(e)
	rseq.ListPush(e, &f.local[cpu*len(f.classes)+f.class[h]], f.next, h)
	f.stats.Frees++
}
