// Package percpu is a per-CPU data-plane library built on the restartable
// sequence primitives in internal/rseq — the production shape Snippet 1's
// librseq header spells out: sharded counters, size-class free lists and
// MPSC request queues whose fast paths execute no interlocked instruction
// and touch no shared line.
//
// On the virtual uniprocessor every restartable sequence is globally
// atomic (there is one CPU), so a Domain's "CPUs" are logical shards: the
// correctness argument is the rseq one, and the sharding removes the
// contention dimension — no thread ever spins on another shard's head
// word in the common case. The literal multi-CPU story, with real per-CPU
// lines and RMR counts, is the guest-asm twin of this package
// (guest.ServerProgram and friends on internal/vmach/smp); the two share
// the same structure so the bench tables can compare them like for like.
package percpu

import (
	"repro/internal/rseq"
	"repro/internal/uniproc"
)

// Word aliases the simulated memory word.
type Word = rseq.Word

// Domain is a set of logical CPUs (shards) and the thread→home-CPU
// placement. Threads are assigned round-robin on first use, mirroring how
// an OS spreads runnable threads across a machine; Pin overrides the
// placement for harnesses that want a fixed layout.
type Domain struct {
	cpus int
	home map[int]int // thread ID → home CPU
	next int
}

// NewDomain returns a domain of the given width; widths below one clamp
// to the uniprocessor degenerate case.
func NewDomain(cpus int) *Domain {
	if cpus < 1 {
		cpus = 1
	}
	return &Domain{cpus: cpus, home: make(map[int]int)}
}

// CPUs reports the domain width.
func (d *Domain) CPUs() int { return d.cpus }

// Home returns the calling thread's home CPU, assigning one round-robin
// on first call. The lookup is scheduler metadata, not simulated memory:
// it charges a cycle of private computation and cannot be preempted
// mid-update (the simulated threads are cooperative between memops).
func (d *Domain) Home(e *uniproc.Env) int {
	id := e.Self().ID
	if cpu, ok := d.home[id]; ok {
		return cpu
	}
	e.ChargeALU(1)
	cpu := d.next % d.cpus
	d.next++
	d.home[id] = cpu
	return cpu
}

// Pin places the calling thread on a fixed home CPU.
func (d *Domain) Pin(e *uniproc.Env, cpu int) {
	if cpu < 0 || cpu >= d.cpus {
		cpu = 0
	}
	d.home[e.Self().ID] = cpu
}
