package percpu

import (
	"testing"

	"repro/internal/uniproc"
)

func TestDomainHomeStableAndRoundRobin(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(3)
	homes := make(map[int]int)
	for i := 0; i < 6; i++ {
		i := i
		p.Go("t", func(e *uniproc.Env) {
			h1 := d.Home(e)
			e.Yield()
			h2 := d.Home(e)
			if h1 != h2 {
				t.Errorf("thread %d: home moved %d -> %d", i, h1, h2)
			}
			homes[h1]++
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 3; cpu++ {
		if homes[cpu] != 2 {
			t.Errorf("cpu %d got %d threads, want 2 (round-robin)", cpu, homes[cpu])
		}
	}
}

func TestDomainPin(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(4)
	p.Go("t", func(e *uniproc.Env) {
		d.Pin(e, 2)
		if h := d.Home(e); h != 2 {
			t.Errorf("home = %d after Pin(2)", h)
		}
		d.Pin(e, -1) // out of range clamps to 0
		if h := d.Home(e); h != 0 {
			t.Errorf("home = %d after Pin(-1)", h)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterShardedSum(t *testing.T) {
	const threads, iters = 6, 200
	p := uniproc.New(uniproc.Config{Quantum: 61, JitterSeed: 9})
	d := NewDomain(3)
	c := NewCounter(d)
	for i := 0; i < threads; i++ {
		p.Go("inc", func(e *uniproc.Env) {
			for j := 0; j < iters; j++ {
				c.Inc(e)
			}
			c.Add(e, 1)
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	pp := uniproc.New(uniproc.Config{})
	pp.Go("check", func(e *uniproc.Env) {
		want := Word(threads * (iters + 1))
		if got := c.Sum(e); got != want {
			t.Errorf("sum = %d, want %d", got, want)
		}
	})
	if err := pp.Run(); err != nil {
		t.Fatal(err)
	}
}

// The MPSC queue must deliver every request exactly once, in arrival
// order per producer, under contention and small quanta.
func TestQueueExactDeliveryUnderContention(t *testing.T) {
	const cpus, producersPerCPU, perProducer = 2, 3, 40
	p := uniproc.New(uniproc.Config{Quantum: 73, JitterSeed: 5})
	d := NewDomain(cpus)
	q := NewQueue(d, 4) // tiny pool: exercises backpressure
	total := cpus * producersPerCPU * perProducer
	seen := make(map[Word]int)
	producersDone := 0
	for cpu := 0; cpu < cpus; cpu++ {
		cpu := cpu
		for w := 0; w < producersPerCPU; w++ {
			w := w
			p.Go("producer", func(e *uniproc.Env) {
				d.Pin(e, cpu)
				for i := 0; i < perProducer; i++ {
					// Tag: cpu|producer|seq, unique per request.
					q.Enqueue(e, Word(cpu*1_000_000+w*10_000+i))
				}
				producersDone++
			})
		}
	}
	for cpu := 0; cpu < cpus; cpu++ {
		cpu := cpu
		p.Go("consumer", func(e *uniproc.Env) {
			d.Pin(e, cpu)
			lastSeq := make(map[Word]int) // producer tag → last sequence
			for {
				batch := q.Drain(e, cpu)
				if len(batch) == 0 {
					if producersDone == cpus*producersPerCPU && len(seen) == total {
						return
					}
					e.Yield()
					continue
				}
				for _, v := range batch {
					seen[v]++
					prod, seq := v/10_000, int(v%10_000)
					if last, ok := lastSeq[prod]; ok && seq <= last {
						t.Errorf("producer %d out of order: %d after %d", prod, seq, last)
					}
					lastSeq[prod] = seq
				}
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct requests, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("request %d delivered %d times", v, n)
		}
	}
	st := q.Stats()
	if st.Enqueued != uint64(total) || st.Drained != uint64(total) {
		t.Errorf("stats: enqueued %d drained %d, want %d", st.Enqueued, st.Drained, total)
	}
	if st.Batches == 0 || st.Drained/st.Batches < 1 {
		t.Errorf("batches = %d", st.Batches)
	}
}

// A consumer whose own queue is empty can steal a whole batch from a
// loaded sibling; nothing is lost or duplicated.
func TestQueueSteal(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(2)
	q := NewQueue(d, 8)
	p.Go("producer", func(e *uniproc.Env) {
		d.Pin(e, 0)
		for i := 0; i < 5; i++ {
			q.Enqueue(e, Word(100+i))
		}
		// CPU 1's consumer finds its own queue empty and steals CPU 0's.
		if got := q.Drain(e, 1); got != nil {
			t.Errorf("cpu1 drain = %v, want empty", got)
		}
		batch := q.Steal(e, 0)
		if len(batch) != 5 {
			t.Fatalf("stole %d, want 5", len(batch))
		}
		for i, v := range batch {
			if v != Word(100+i) {
				t.Errorf("batch[%d] = %d (arrival order broken)", i, v)
			}
		}
		if q.Stats().Steals != 1 {
			t.Errorf("steals = %d", q.Stats().Steals)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

// The free pool is per-CPU: filling CPU 0's pool must block only CPU 0's
// producers, and recycling un-blocks them.
func TestQueueBackpressureIsPerCPU(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(2)
	q := NewQueue(d, 2)
	p.Go("t", func(e *uniproc.Env) {
		d.Pin(e, 0)
		if !q.TryEnqueue(e, 1) || !q.TryEnqueue(e, 2) {
			t.Fatal("pool smaller than configured")
		}
		if q.TryEnqueue(e, 3) {
			t.Error("enqueue succeeded past cpu0's pool")
		}
		d.Pin(e, 1)
		if !q.TryEnqueue(e, 4) {
			t.Error("cpu1's pool affected by cpu0's backlog")
		}
		d.Pin(e, 0)
		if got := q.Drain(e, 0); len(got) != 2 {
			t.Fatalf("drain = %v", got)
		}
		if !q.TryEnqueue(e, 5) {
			t.Error("recycle did not free the pool")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

// DrainUnsafe is the planted bug kept for the model checker: quiet (no
// concurrent pushes) it matches Drain exactly, which is what makes it
// dangerous — only a push racing the walk is lost, and only a schedule
// search finds that window. The mcheck percpu-queue model (variant=racy)
// is the test that catches the race itself; this one pins the quiet-path
// contract and the bounded walk.
func TestDrainUnsafeQuietMatchesDrain(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(1)
	q := NewQueue(d, 8)
	p.Go("t", func(e *uniproc.Env) {
		d.Pin(e, 0)
		for i := 0; i < 5; i++ {
			q.Enqueue(e, Word(10+i))
		}
		got := q.DrainUnsafe(e, 0)
		if len(got) != 5 {
			t.Fatalf("unsafe drain = %v", got)
		}
		for i, v := range got {
			if v != Word(10+i) {
				t.Errorf("got[%d] = %d (arrival order broken)", i, v)
			}
		}
		// Nodes were recycled: the pool is full again.
		for i := 0; i < 8; i++ {
			if !q.TryEnqueue(e, Word(i)) {
				t.Fatalf("pool short after unsafe drain: %d/8", i)
			}
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListFastPathAndRefill(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(2)
	f := NewFreeList(d, []int{4, 16}, 16)
	p.Go("t", func(e *uniproc.Env) {
		d.Pin(e, 0)
		// First allocation refills a batch; the following ones are fast.
		h, ok := f.Alloc(e, 3)
		if !ok {
			t.Fatal("alloc failed")
		}
		if len(f.Span(h)) != 4 {
			t.Errorf("span = %d words, want 4", len(f.Span(h)))
		}
		for i := 0; i < RefillBatch-1; i++ {
			if _, ok := f.Alloc(e, 4); !ok {
				t.Fatal("alloc failed")
			}
		}
		st := f.Stats()
		if st.Refills != 1 {
			t.Errorf("refills = %d, want 1", st.Refills)
		}
		if st.FastAllocs != RefillBatch-1 {
			t.Errorf("fast allocs = %d, want %d", st.FastAllocs, RefillBatch-1)
		}
		// Free/alloc pairs stay fast forever after.
		f.Free(e, h)
		if _, ok := f.Alloc(e, 4); !ok {
			t.Fatal("alloc after free failed")
		}
		if f.Stats().Refills != 1 {
			t.Errorf("refills = %d after free/alloc, want 1", f.Stats().Refills)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListStealAndExhaustion(t *testing.T) {
	p := uniproc.New(uniproc.Config{Quantum: 1 << 20})
	d := NewDomain(2)
	f := NewFreeList(d, []int{8}, 2) // 4 blocks total
	p.Go("t", func(e *uniproc.Env) {
		d.Pin(e, 0)
		var held []int
		for i := 0; i < 4; i++ {
			h, ok := f.Alloc(e, 8)
			if !ok {
				t.Fatalf("alloc %d failed", i)
			}
			held = append(held, h)
		}
		if _, ok := f.Alloc(e, 8); ok {
			t.Error("alloc succeeded with every block held")
		}
		if f.Stats().Failures != 1 {
			t.Errorf("failures = %d", f.Stats().Failures)
		}
		if _, ok := f.Alloc(e, 999); ok {
			t.Error("alloc succeeded for an impossible size")
		}
		// Park the blocks on cpu1's list, then steal them back from cpu0.
		d.Pin(e, 1)
		for _, h := range held {
			f.Free(e, h)
		}
		d.Pin(e, 0)
		if _, ok := f.Alloc(e, 8); !ok {
			t.Fatal("steal path failed")
		}
		if f.Stats().Steals == 0 {
			t.Error("no steal recorded")
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

// Exactly-once allocation under contention: concurrent alloc/free loops
// across shards never hand the same block to two holders.
func TestFreeListNoDoubleAllocation(t *testing.T) {
	const threads, iters = 4, 120
	p := uniproc.New(uniproc.Config{Quantum: 67, JitterSeed: 13})
	d := NewDomain(2)
	f := NewFreeList(d, []int{4}, 3)
	owner := make(map[int]int)
	for i := 0; i < threads; i++ {
		tid := i + 1
		p.Go("worker", func(e *uniproc.Env) {
			for j := 0; j < iters; j++ {
				h, ok := f.Alloc(e, 4)
				if !ok {
					e.Yield()
					continue
				}
				if prev, held := owner[h]; held {
					t.Errorf("block %d allocated to %d while held by %d", h, tid, prev)
				}
				owner[h] = tid
				e.Yield() // hold across a reschedule
				delete(owner, h)
				f.Free(e, h)
			}
		})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}
