package percpu

import (
	"repro/internal/rseq"
	"repro/internal/uniproc"
)

// Queue is a set of per-CPU MPSC request queues: any thread may enqueue
// (on its home CPU's queue, barrier-free), one consumer per CPU drains in
// batches, and an idle consumer may steal a whole batch from another
// CPU's queue as the slow path.
//
// Each CPU owns a fixed pool of request nodes. Enqueue pops a node from
// the home CPU's free list, fills the payload, and pushes it onto the
// ready list — three restartable sequences, no interlocked instruction.
// Drain detaches the entire ready list in one restartable commit (the
// librseq list-splice), reverses it to arrival order, reads the
// payloads, and recycles the nodes. The free list doubles as
// backpressure: a producer whose CPU has no free node waits for the
// consumer to recycle.
type Queue struct {
	d     *Domain
	cap   int    // nodes per CPU
	ready []Word // per-CPU ready-list heads
	free  []Word // per-CPU free-list heads
	next  []Word // intrusive links, indexed by node
	val   []Word // payloads, indexed by node

	// Stats are plain counters (the simulated threads are cooperative
	// between memops, so no synchronization is needed to maintain them).
	stats QueueStats
}

// QueueStats counts queue traffic. Batches counts non-empty drains, so
// Drained/Batches is the mean batch size — the number the batched-drain
// design is buying.
type QueueStats struct {
	Enqueued   uint64
	Drained    uint64
	Batches    uint64
	Steals     uint64 // non-empty batches taken from another CPU
	FullWaits  uint64 // enqueue found the free list empty and yielded
	EmptyPolls uint64 // drain found the ready list empty
}

// NewQueue returns a queue domain with perCPU request nodes per CPU.
func NewQueue(d *Domain, perCPU int) *Queue {
	if perCPU < 1 {
		perCPU = 1
	}
	n := d.CPUs() * perCPU
	q := &Queue{
		d:     d,
		cap:   perCPU,
		ready: make([]Word, d.CPUs()),
		free:  make([]Word, d.CPUs()),
		next:  make([]Word, n),
		val:   make([]Word, n),
	}
	// Seed every CPU's free list with its own node range. No Env runs
	// yet, so the links are built directly.
	for cpu := 0; cpu < d.CPUs(); cpu++ {
		for i := 0; i < perCPU; i++ {
			node := cpu*perCPU + i
			q.next[node] = q.free[cpu]
			q.free[cpu] = Word(node + 1)
		}
	}
	return q
}

// Stats returns a copy of the traffic counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// TryEnqueue enqueues v on the calling thread's home queue, reporting
// false when that CPU's node pool is exhausted (queue full).
func (q *Queue) TryEnqueue(e *uniproc.Env, v Word) bool {
	cpu := q.d.Home(e)
	node, ok := rseq.ListPop(e, &q.free[cpu], q.next)
	if !ok {
		return false
	}
	// The node is private between the pop and the ready push: the payload
	// store needs no protection.
	e.Store(&q.val[node], v)
	rseq.ListPush(e, &q.ready[cpu], q.next, node)
	q.stats.Enqueued++
	return true
}

// Enqueue enqueues v on the home queue, yielding while the pool is full
// — backpressure, not loss.
func (q *Queue) Enqueue(e *uniproc.Env, v Word) {
	for !q.TryEnqueue(e, v) {
		q.stats.FullWaits++
		e.Yield()
	}
}

// Drain detaches the calling consumer's whole ready batch for the given
// CPU, returning payloads in arrival order and recycling the nodes. An
// empty return means the queue was empty at the detach.
func (q *Queue) Drain(e *uniproc.Env, cpu int) []Word {
	return q.drainHead(e, cpu, false)
}

// Steal drains another CPU's queue — the work-stealing slow path an idle
// consumer runs. The detach is a single restartable commit, so a steal
// is as safe as a local drain; it is only slower (and, on real hardware,
// a remote reference — which is why it is the slow path).
func (q *Queue) Steal(e *uniproc.Env, victim int) []Word {
	return q.drainHead(e, victim, true)
}

func (q *Queue) drainHead(e *uniproc.Env, cpu int, steal bool) []Word {
	nodes := rseq.ListPopAll(e, &q.ready[cpu], q.next)
	if len(nodes) == 0 {
		q.stats.EmptyPolls++
		return nil
	}
	q.stats.Batches++
	if steal {
		q.stats.Steals++
	}
	// ListPopAll returns LIFO (push) order; reverse for arrival order.
	out := make([]Word, len(nodes))
	for i, node := range nodes {
		out[len(nodes)-1-i] = e.Load(&q.val[node])
		// Recycle to the node's owning CPU so per-CPU capacity holds.
		rseq.ListPush(e, &q.free[node/q.cap], q.next, node)
	}
	q.stats.Drained += uint64(len(out))
	return out
}

// DrainUnsafe is a deliberately broken drain kept as a model-checking
// target (the planted bug, like guest.BrokenTwoStoreProgram): instead of
// detaching the ready list in one restartable commit it reads the head,
// walks the chain non-atomically, and then clears the head with a plain
// store. A producer that pushes between the read and the clear has its
// request silently discarded — the lost-update the mcheck percpu-queue
// model catches and shrinks. Do not use it for real work.
func (q *Queue) DrainUnsafe(e *uniproc.Env, cpu int) []Word {
	h := e.Load(&q.ready[cpu])
	if h == 0 {
		q.stats.EmptyPolls++
		return nil
	}
	var out []Word
	// Bound the walk: concurrent recycling can splice the chain under
	// us, and an adversarial schedule could otherwise loop it.
	for steps := 0; h != 0 && steps < len(q.next); steps++ {
		node := int(h - 1)
		out = append(out, e.Load(&q.val[node]))
		h = e.Load(&q.next[node])
		rseq.ListPush(e, &q.free[node/q.cap], q.next, node)
	}
	e.Store(&q.ready[cpu], 0) // drops any push since the head read
	q.stats.Batches++
	q.stats.Drained += uint64(len(out))
	// Reverse in place for arrival order, matching Drain.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
