package qlock

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/vmach/smp"
)

// killAt builds a Faults hook that kills the running thread on one
// CPU at its k-th retired instruction.
func killAt(cpu int, k uint64) func(int) chaos.Injector {
	return func(c int) chaos.Injector {
		if c != cpu {
			return nil
		}
		return chaos.OneShot{Point: chaos.PointStep, N: k, Action: chaos.Action{Kill: true}}
	}
}

// cleanSteps runs cfg without faults and returns each CPU's retired
// step count — the sweep horizon for kill ordinals. The kernel only
// maintains its fault-point ordinal counter while an injector is
// attached, so the clean run carries a never-firing OneShot (ordinals
// are 1-based; N=0 matches nothing).
func cleanSteps(t *testing.T, cfg Config) []uint64 {
	t.Helper()
	cfg.Faults = func(int) chaos.Injector {
		return chaos.OneShot{Point: chaos.PointStep}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Sys.Run(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if _, err := r.Collect(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	steps := make([]uint64, cfg.CPUs)
	for i, k := range r.Sys.CPUs {
		steps[i] = k.Steps()
	}
	return steps
}

// tolerateDeadInCS accepts the one benign counter/passages mismatch a
// single kill can cause: dying inside the critical section after the
// shared counter increment but before the per-thread completion
// increment charges the counter one passage the dead worker never
// recorded. Exactly +1 with a kill injected is legitimate; anything
// else is a real mutual exclusion violation.
func tolerateDeadInCS(res *Result, err error) error {
	if err == nil || (res != nil && res.Counter == res.Passages+1) {
		return nil
	}
	return err
}

// sweepKills kills each CPU's thread at every retired-instruction
// ordinal up to its clean-run horizon (capped), checking after every
// schedule that mutual exclusion held (counter == completions) and
// every surviving worker completed all its passages. It returns the
// aggregated repair counters across the sweep.
func sweepKills(t *testing.T, base Config, cap uint64) (repairs, splices, fallbacks, scans uint64) {
	t.Helper()
	steps := cleanSteps(t, base)
	for cpu := 0; cpu < base.CPUs; cpu++ {
		horizon := steps[cpu]
		if horizon > cap {
			horizon = cap
		}
		for k := uint64(1); k <= horizon; k++ {
			cfg := base
			cfg.Faults = killAt(cpu, k)
			r, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Sys.Run(); err != nil {
				t.Fatalf("kill cpu%d@%d: run: %v", cpu, k, err)
			}
			res, err := r.Collect()
			if err := tolerateDeadInCS(res, err); err != nil {
				t.Fatalf("kill cpu%d@%d: %v", cpu, k, err)
			}
			for w := 0; w < base.CPUs; w++ {
				if workerExited(r.Sys, w) && res.Mine[w] != uint64(base.Iters) {
					t.Fatalf("kill cpu%d@%d: surviving worker %d completed %d of %d passages",
						cpu, k, w, res.Mine[w], base.Iters)
				}
			}
			repairs += res.Repairs
			splices += res.Splices
			fallbacks += res.Fallback
			scans += res.Scans
		}
	}
	return
}

// TestKillSweepRMCS kills the recoverable MCS lock at every
// instruction of a contended two-CPU run: worker 0 holds its CS until
// worker 1 has enqueued behind it, so every schedule has a real queue
// to repair. The sweep must keep exactness everywhere and must
// exercise all the repair machinery: dead-owner steals (kill the
// holder), dead-waiter splices (kill a linked waiter), the
// mid-swap fallback (kill between the tail swap and the prev
// publication), and the release-side successor scan.
func TestKillSweepRMCS(t *testing.T) {
	base := Config{
		Variant:   RMCS,
		CPUs:      2,
		Iters:     2,
		MaxCycles: 3_000_000,
		Workers:   []WorkerOpt{HoldFor(1), WaitHeld(0)},
	}
	repairs, splices, fallbacks, scans := sweepKills(t, base, 1200)
	if repairs == 0 {
		t.Errorf("sweep never exercised a dead-owner steal (kill the tail holder mid-passage)")
	}
	if splices == 0 {
		t.Errorf("sweep never exercised a dead-waiter splice")
	}
	if fallbacks == 0 {
		t.Errorf("sweep never exercised the mid-swap fallback (kill between xchg and prev publication)")
	}
	if scans == 0 {
		t.Errorf("sweep never exercised the release successor scan (kill before the next pointer is published)")
	}
}

// TestKillWaiterUnpublished is the three-party edge: A holds, D
// queues behind A, W queues behind D — then D dies at every ordinal
// of its life. When D dies before publishing A->next (or even before
// recording its own prev), A's release must find W by scanning and W
// must splice or fall back. Exactness and survivor completion hold at
// every kill point.
func TestKillWaiterUnpublished(t *testing.T) {
	base := Config{
		Variant:   RMCS,
		CPUs:      3,
		Iters:     1,
		MaxCycles: 3_000_000,
		Workers:   []WorkerOpt{HoldFor(2), WaitHeld(0), WaitEnq(1)},
	}
	steps := cleanSteps(t, base)
	var splices, fallbacks, scans uint64
	for k := uint64(1); k <= steps[1]; k++ {
		cfg := base
		cfg.Faults = killAt(1, k)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Sys.Run(); err != nil {
			t.Fatalf("kill D@%d: run: %v", k, err)
		}
		res, err := r.Collect()
		if err := tolerateDeadInCS(res, err); err != nil {
			t.Fatalf("kill D@%d: %v", k, err)
		}
		for w := 0; w < base.CPUs; w++ {
			if workerExited(r.Sys, w) && res.Mine[w] != 1 {
				t.Fatalf("kill D@%d: surviving worker %d did not complete its passage", k, w)
			}
		}
		splices += res.Splices
		fallbacks += res.Fallback
		scans += res.Scans
	}
	if splices == 0 {
		t.Errorf("sweep never spliced past the dead middle waiter")
	}
	if fallbacks+scans == 0 {
		t.Errorf("sweep never hit the unpublished-successor window (fallback or scan)")
	}
}

// TestCrashRestoreMidHandoff checkpoints a contended recoverable-MCS
// run at many points — including mid-handoff — encodes, decodes and
// restores the snapshot into a fresh system, runs that to completion,
// and requires exactness every time.
func TestCrashRestoreMidHandoff(t *testing.T) {
	base := Config{
		Variant:   RMCS,
		CPUs:      2,
		Iters:     2,
		MaxCycles: 3_000_000,
		Workers:   []WorkerOpt{HoldFor(1), WaitHeld(0)},
	}
	// Walk the run round by round; checkpoint every few rounds.
	r, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	var rounds uint64
	for !r.Sys.StepRound() {
		rounds++
	}
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	for at := uint64(5); at < rounds; at += 7 {
		r2, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < at; i++ {
			if r2.Sys.StepRound() {
				break
			}
		}
		enc := r2.Sys.Capture().Encode()
		snap, err := smp.DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("checkpoint@%d: decode: %v", at, err)
		}
		sys2, err := smp.Restore(smp.Config{MaxCycles: base.MaxCycles}, snap)
		if err != nil {
			t.Fatalf("checkpoint@%d: restore: %v", at, err)
		}
		if err := sys2.Run(); err != nil {
			t.Fatalf("checkpoint@%d: resumed run: %v", at, err)
		}
		res, err := CollectFrom(base, sys2, r2.Prog)
		if err != nil {
			t.Fatalf("checkpoint@%d: %v", at, err)
		}
		if want := uint64(base.CPUs * base.Iters); res.Counter != want {
			t.Fatalf("checkpoint@%d: counter %d, want %d", at, res.Counter, want)
		}
	}
}

// TestKillSweepMCSExclusion: even the non-recoverable MCS lock must
// never violate mutual exclusion under kills — a kill may wedge the
// queue (that is what RMCS exists to fix), but the counter must
// always equal the completed passages. Wedged runs end in a budget
// error, which is tolerated here; corrupt counts are not.
func TestKillSweepMCSExclusion(t *testing.T) {
	base := Config{
		Variant:   MCS,
		CPUs:      2,
		Iters:     2,
		MaxCycles: 400_000,
		Workers:   []WorkerOpt{HoldFor(1), WaitHeld(0)},
	}
	steps := cleanSteps(t, base)
	for cpu := 0; cpu < base.CPUs; cpu++ {
		for k := uint64(1); k <= steps[cpu]; k++ {
			cfg := base
			cfg.Faults = killAt(cpu, k)
			r, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			runErr := r.Sys.Run() // wedges are expected; violations are not
			res, err := r.Collect()
			if err := tolerateDeadInCS(res, err); err != nil && runErr == nil {
				t.Fatalf("mcs kill cpu%d@%d: %v", cpu, k, err)
			}
			if res != nil && res.Counter > uint64(base.CPUs*base.Iters) {
				t.Fatalf("mcs kill cpu%d@%d: counter %d exceeds total passages", cpu, k, res.Counter)
			}
		}
	}
}
