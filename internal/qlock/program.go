// Package qlock is the queue-lock subsystem: a classic MCS queue lock
// and a recoverable MCS variant (owner+epoch word, dead-thread queue
// splicing, abortable TryAcquire) in guest assembly on the SMP vmach,
// plus the harness that measures remote-memory-reference complexity
// per lock passage against the spinlock / ll-sc / hybrid baselines.
//
// The protocol splits responsibilities the way the RME literature
// does: the MCS queue (qtail, per-thread qnodes) provides FIFO order
// and local spinning — O(1) remote references per passage on a
// cache-coherent machine — while the recoverable variant's qowner
// word (epoch<<16 | gtid+1) is the single authority on mutual
// exclusion. Every critical-section entry observes qowner naming
// itself, established by exactly one of: a CAS from a free owner
// field, a CAS stealing from a dead owner (epoch bump — a repair), or
// the releaser's targeted store after a state handshake. Kills are
// repaired from both sides: a waiter whose predecessor died splices
// itself to the predecessor's predecessor (prev/next repair, the
// pmwcas RecoverMutex idiom), and a releaser whose successor never
// linked scans the qnode array for the orphan and resolves through
// it. The repair guarantees assume at most one concurrent death
// (K<=1, the model-checked envelope); mutual exclusion itself holds
// under any number of kills because it rests on qowner alone.
package qlock

import (
	"fmt"
	"strings"
)

// Variant selects the lock implementation in Program.
type Variant int

const (
	// Spin is the test-and-set spinlock baseline: every attempt is a
	// bus-locked write to the shared word, so its RMR count per
	// passage grows with the number of spinning CPUs.
	Spin Variant = iota
	// LLSC is a load-linked/store-conditional mutex on the shared
	// word — fewer wasted invalidations than tas, same growth shape.
	LLSC
	// Hybrid is the paper's §7 RAS+spinlock: per-CPU claim word
	// arbitrated by a restartable sequence, global word biased to a
	// CPU with a bounded batch.
	Hybrid
	// MCS is the classic queue lock: tail swap with xchg, local spin
	// on the qnode's own cache line, targeted handoff. O(1) RMRs per
	// passage in CC mode.
	MCS
	// RMCS is the recoverable MCS variant: qowner owner+epoch word,
	// liveness-oracle checks, dead-thread queue splicing, abortable
	// TryAcquire.
	RMCS
	// RMCSUnspliced is the planted bug: the waiter-side repair omits
	// re-linking the predecessor chain (pp->next is never written)
	// and the release path waits for its next pointer naively instead
	// of scanning. One kill at the wrong moment wedges the queue —
	// the mcheck model catches and shrinks it.
	RMCSUnspliced
)

func (v Variant) String() string {
	switch v {
	case Spin:
		return "spinlock"
	case LLSC:
		return "llsc"
	case Hybrid:
		return "hybrid"
	case MCS:
		return "mcs"
	case RMCS:
		return "rmcs"
	case RMCSUnspliced:
		return "rmcs-unspliced"
	}
	return "unknown"
}

// Variants lists the sound lock variants in sweep order.
func Variants() []Variant { return []Variant{Spin, LLSC, Hybrid, MCS, RMCS} }

// Qnode field offsets, one 64-byte coherence line per thread. The
// harness pokes GID1, Peer and LatBase before spawning; everything
// else is guest-written.
const (
	QNext     = 0  // successor qnode address, 0 none
	QPrev     = 4  // predecessor qnode address; Sentinel before the swap lands
	QLocked   = 8  // 1 while waiting for a targeted handoff
	QState    = 12 // see QIdle..QGranted
	QGID1     = 16 // global thread id + 1 (0 = never initialized: dead)
	QMine     = 20 // passages completed by this thread
	QRepairs  = 24 // dead-owner steals performed
	QSplices  = 28 // dead/aborted nodes spliced past
	QFallback = 32 // falls back to direct qowner competition
	QAborts   = 36 // TryAcquire aborts
	QPeer     = 40 // rendezvous peer qnode address (harness-poked)
	QScans    = 44 // release-side successor scans
	QLatBase  = 48 // latency bucket array base (harness-poked)
	QProg     = 52 // 0 start, 1 enqueued, 2 in CS, 3 released
)

// QState values.
const (
	QIdle     = 0 // not in the queue (or retired from it)
	QEnqueued = 1
	QAborted  = 2 // departed via TryAcquire; skip and retire on contact
	QGranted  = 3 // releaser committed a handoff; the node must take it
)

// Sentinel is the qnode prev value between init and the tail swap: a
// node whose prev still reads Sentinel died mid-enqueue, and its
// successor cannot splice — it falls back to the owner word.
const Sentinel = 1

// Worker flag bits (a2). The upper 16 bits hold the TryAcquire spin
// bound; 0 means block until acquired.
const (
	FlagAudit       = 1 << 0 // keep the enqueue/CS order logs
	FlagWaitHeld    = 1 << 1 // before acquiring, wait for peer prog >= 2 (or death)
	FlagHoldForPeer = 1 << 2 // in the CS, wait for peer prog >= 1 (or death)
	FlagWaitEnq     = 1 << 3 // before acquiring, wait for peer prog >= 1 (or death)
	FlagHoldAbort   = 1 << 4 // in the CS, wait for the peer to abort or finish (or die)
)

// LatBuckets is the per-thread latency histogram size: bucket b
// counts passages whose cycle count has floor(log2) == b.
const LatBuckets = 32

// Program builds the qlock workload for one variant: `cpus` workers
// (exactly one per CPU — the spin loops never yield), each entered at
// symbol "worker" with a0 = iterations, a1 = its qnode address, a2 =
// flags. Every passage is { SysTime; acquire; counter++; audit;
// SysTime; bucket } and the final counter must equal the passages
// completed. logWords sizes the audit order logs (entries, one word
// each); pass at least cpus*iters when FlagAudit is set.
func Program(v Variant, cpus, logWords int) string {
	if cpus < 1 {
		cpus = 1
	}
	if logWords < 16 {
		logWords = 16
	}
	logWords = (logWords + 15) &^ 15 // keep the data regions line-aligned

	var b strings.Builder
	b.WriteString("\t.text\nworker:                         # a0 = iterations, a1 = qnode, a2 = flags\n")
	b.WriteString(`	move s0, a0
	move s1, a1
	move s3, a2
	la   s2, counter
	lw   s6, 16(s1)         # my global tid + 1 (harness-poked)
	lw   s7, 48(s1)         # my latency bucket base (harness-poked)
`)
	switch v {
	case Spin, LLSC:
		b.WriteString("\tla   s4, slock\n")
	case Hybrid:
		b.WriteString(`	la   s4, slock
	li   v0, 11             # SysCPU: claim words are one line apart
	syscall
	sll  t0, v0, 6
	la   s5, claim
	add  s5, s5, t0
	addi t9, v0, 1          # the gowner bias tag
	li   t7, 8              # bias bound: passages per batch
`)
	case MCS, RMCS, RMCSUnspliced:
		b.WriteString("\tla   s4, qtail\n\tla   s5, qowner\n")
	}

	// Rendezvous waits, once per worker: the mcheck models use these
	// to force queue overlap on every schedule without relying on
	// forced switch decisions. Each wait escapes if the peer dies.
	b.WriteString(`	andi t0, s3, 2          # FlagWaitHeld: peer must reach its CS first
	beq  t0, zero, rdvb
	lw   t5, 40(s1)
rdva:
	lw   t0, 52(t5)
	sltiu t1, t0, 2
	beq  t1, zero, rdvb     # peer prog >= 2
	lw   a0, 16(t5)
	addi a0, a0, -1
	li   v0, 12             # SysThreadAliveG
	syscall
	bne  v0, zero, rdva
rdvb:
	andi t0, s3, 8          # FlagWaitEnq: peer must enqueue first
	beq  t0, zero, wloop
	lw   t5, 40(s1)
rdvc:
	lw   t0, 52(t5)
	bne  t0, zero, wloop    # peer prog >= 1
	lw   a0, 16(t5)
	addi a0, a0, -1
	li   v0, 12
	syscall
	bne  v0, zero, rdvc
wloop:
	li   v0, 6              # SysTime: passage start
	syscall
	move t8, v0
`)

	writeAcquire(&b, v, cpus)

	// The critical section. counter and the order log are only ever
	// touched while holding the lock, so plain loads and stores
	// suffice — any torn interleaving here is a mutual exclusion bug
	// the harness watchpoint reports.
	b.WriteString(`cs:
	lw   t1, 0(s2)          # counter++
	addi t1, t1, 1
	sw   t1, 0(s2)
	andi t0, s3, 1          # FlagAudit: log my turn
	beq  t0, zero, csna
	la   t2, turnidx
	lw   t1, 0(t2)
	la   t3, turns
	sll  t4, t1, 2
	add  t3, t3, t4
	sw   s6, 0(t3)
	addi t1, t1, 1
	sw   t1, 0(t2)
csna:
	lw   t1, 20(s1)         # mine++
	addi t1, t1, 1
	sw   t1, 20(s1)
	andi t0, s3, 4          # FlagHoldForPeer: stretch the CS until the
	beq  t0, zero, csnh     # peer has enqueued behind us (or died)
	lw   t5, 40(s1)
csh1:
	lw   t0, 52(t5)
	bne  t0, zero, csnh
	lw   a0, 16(t5)
	addi a0, a0, -1
	li   v0, 12
	syscall
	bne  v0, zero, csh1
csnh:
	andi t0, s3, 16         # FlagHoldAbort: stretch the CS until the peer
	beq  t0, zero, csni     # gives up (TryAcquire abort), finishes or dies
	lw   t5, 40(s1)
csi1:
	lw   t0, 36(t5)         # peer aborts != 0
	bne  t0, zero, csni
	lw   t0, 52(t5)         # peer prog >= 3 (completed a passage)
	sltiu t1, t0, 3
	beq  t1, zero, csni
	lw   a0, 16(t5)
	addi a0, a0, -1
	li   v0, 12
	syscall
	bne  v0, zero, csi1
csni:
`)

	writeRelease(&b, v, cpus)

	// Passage latency: floor(log2(cycles)) into my own bucket line.
	b.WriteString(`pdone:
	li   v0, 6              # SysTime: passage end
	syscall
	sub  t0, v0, t8
	move t1, zero
pb1:
	srl  t0, t0, 1
	beq  t0, zero, pb2
	addi t1, t1, 1
	b    pb1
pb2:
	sll  t2, t1, 2
	add  t2, t2, s7
	lw   t3, 0(t2)
	addi t3, t3, 1
	sw   t3, 0(t2)
pnext:
	addi s0, s0, -1
	bne  s0, zero, wloop
`)
	if v == Hybrid {
		// Exit epilogue: surrender any bias this CPU still holds, so
		// a finished CPU can never strand the global word.
		b.WriteString(`hfin:
	lw   v0, 0(s5)
	ori  t0, zero, 1
	bne  v0, zero, hfbz
	landmark
	sw   t0, 0(s5)
	b    hfw
hfbz:
	li   v0, 1
	syscall
	b    hfin
hfw:
	lw   t1, 4(s4)
	bne  t1, t9, hfr
	sw   zero, 4(s5)
	sw   zero, 4(s4)
	sw   zero, 0(s4)
hfr:
	sw   zero, 0(s5)
`)
	}
	b.WriteString("\tli   v0, 0              # SysExit\n\tmove a0, zero\n\tsyscall\n")

	// Data: every contended word gets a coherence line of its own, so
	// the RMRs a run counts come from the protocol, not false
	// sharing. slock and gowner share a line deliberately (they are
	// written together at cross-CPU transfers); each qnode is one
	// line; latency buckets are two private lines per thread.
	fmt.Fprintf(&b, `
	.data
qtail:   .word 0
	.space 60
qowner:  .word 0
	.space 60
slock:   .word 0
gowner:  .word 0
	.space 56
counter: .word 0
	.space 60
enqseq:  .word 0
	.space 60
turnidx: .word 0
	.space 60
turns:   .space %d
enqlog:  .space %d
claim:   .space %d
lats:    .space %d
qnodes:  .space %d
`, 4*logWords, 4*logWords, 64*cpus, 4*LatBuckets*cpus, 64*cpus)
	return b.String()
}

// writeAcquire emits the acquire path; it falls through into "cs"
// with the lock held, or branches to "pnext" on a TryAcquire abort.
func writeAcquire(b *strings.Builder, v Variant, cpus int) {
	switch v {
	case Spin:
		b.WriteString(`	li   t1, 1
	sw   t1, 52(s1)         # prog = 1 (arriving)
sacq:
	tas  t0, 0(s4)          # every attempt is a bus-locked remote write
	beq  t0, zero, sgot
	b    sacq
sgot:
	li   t1, 2
	sw   t1, 52(s1)         # prog = 2 (in CS)
`)
	case LLSC:
		b.WriteString(`	li   t1, 1
	sw   t1, 52(s1)
lacq:
	ll   t0, 0(s4)
	bne  t0, zero, lacq
	li   t1, 1
	sc   t1, 0(s4)          # any intervening write or switch fails it
	beq  t1, zero, lacq
	li   t1, 2
	sw   t1, 52(s1)
`)
	case Hybrid:
		b.WriteString(`	li   t1, 1
	sw   t1, 52(s1)
hacq:
	lw   v0, 0(s5)          # intra-CPU arbitration: the designated RAS
	ori  t0, zero, 1        # test-and-set on this CPU's claim word
	bne  v0, zero, hbusy
	landmark
	sw   t0, 0(s5)
	b    hwon
hbusy:
	li   v0, 1              # SysYield while a sibling holds the claim
	syscall
	b    hacq
hwon:
	lw   t1, 4(s4)          # global word already biased to this CPU?
	beq  t1, t9, hgot       # yes: no interlocked op, no remote line
gacq:
	lw   t0, 0(s4)          # test-and-test-and-set on the shared word
	bne  t0, zero, gacq
	tas  t0, 0(s4)
	bne  t0, zero, gacq
	sw   t9, 4(s4)          # bias it here
hgot:
	li   t1, 2
	sw   t1, 52(s1)
`)
	case MCS:
		b.WriteString(`macq:
	sw   zero, 0(s1)        # next = 0
	li   t0, 1
	sw   t0, 8(s1)          # locked = 1
	sw   t0, 12(s1)         # state = enqueued
	sw   t0, 52(s1)         # prog = 1
`)
		writeEnqAudit(b)
		b.WriteString(`	move t5, s1
	xchg t5, 0(s4)          # t5 = predecessor; qtail = my node
	sw   t5, 4(s1)          # prev = predecessor (diagnostic for MCS)
	beq  t5, zero, mgot     # empty queue: the lock is mine
	sw   s1, 0(t5)          # pred->next = my node
mspin:
	lw   t1, 8(s1)          # local spin: my own cache line
	bne  t1, zero, mspin
mgot:
	li   t1, 2
	sw   t1, 52(s1)
`)
	case RMCS, RMCSUnspliced:
		writeRMCSAcquire(b, v == RMCSUnspliced)
	}
}

// writeEnqAudit emits the FlagAudit enqueue-order log: an atomic
// fetch-and-add ticket, then the thread id into that slot. A thread
// killed between the two leaves a zero hole the audit skips.
func writeEnqAudit(b *strings.Builder) {
	b.WriteString(`	andi t0, s3, 1
	beq  t0, zero, qnoe
	la   t2, enqseq
	faa  t1, 0(t2)          # t1 = my ticket; the slot is atomically mine
	la   t3, enqlog
	sll  t4, t1, 2
	add  t3, t3, t4
	sw   s6, 0(t3)
qnoe:
`)
}

func writeRMCSAcquire(b *strings.Builder, planted bool) {
	b.WriteString(`racq:
	srl  t9, s3, 16         # TryAcquire spin bound (0 = block)
	bne  t9, zero, rbs
	lui  t9, 0x7FFF         # effectively unbounded within the cycle budget
rbs:
	sw   zero, 0(s1)        # next = 0
	li   t0, 1
	sw   t0, 4(s1)          # prev = Sentinel until the swap lands
	sw   t0, 8(s1)          # locked = 1
	sw   t0, 12(s1)         # state = enqueued
	sw   t0, 52(s1)         # prog = 1
`)
	writeEnqAudit(b)
	b.WriteString(`	move t5, s1
	xchg t5, 0(s4)          # t5 = predecessor; qtail = my node
	sw   t5, 4(s1)          # prev = predecessor (0 = I head the queue)
	beq  t5, zero, rclaim
	sw   s1, 0(t5)          # pred->next = me: the O(1) handoff path; a
rspin:                      # stale landing on a recycled node is erased
                            # by that node's next enqueue init
	li   t6, 16             # fast polls between the expensive checks
rsp1:
	lw   t1, 8(s1)          # local spin on my own line
	beq  t1, zero, rgrant
	addi t6, t6, -1
	bne  t6, zero, rsp1
	addi t9, t9, -1         # TryAcquire budget
	beq  t9, zero, rabw
	lw   t1, 0(s5)          # did a dying releaser hand to me already?
	andi t2, t1, 0xFFFF
	beq  t2, s6, rgot
	lw   t1, 12(t5)         # predecessor aborted or retired?
	li   t2, 2
	beq  t1, t2, rsplice
	beq  t1, zero, rsplice
	lw   a0, 16(t5)         # predecessor still alive?
	addi a0, a0, -1
	li   v0, 12             # SysThreadAliveG
	syscall
	bne  v0, zero, rspin
rsplice:                    # predecessor dead/aborted/retired: repair.
	lw   t1, 8(s1)          # but first: was I handed the lock during the
	beq  t1, zero, rgrant   # window (pred released-to-me then retired)?
	lw   t1, 0(s5)
	andi t2, t1, 0xFFFF
	beq  t2, s6, rgot
	lw   t7, 4(t5)          # pp = pred->prev
	li   t2, 1
	beq  t7, t2, rfall      # pp == Sentinel: pred died mid-swap; fall back
	bne  t7, s1, rspl2      # pp == my own node: a stale backlink from a past
	sw   zero, 12(t5)       # passage of mine — retire the dead node and fall
	b    rfall              # back rather than splice into a self-loop
rspl2:
	sw   t7, 4(s1)          # my.prev = pp  (the snippet-2 prev repair)
	sw   zero, 12(t5)       # retire the dead node
	lw   t1, 28(s1)         # splices++
	addi t1, t1, 1
	sw   t1, 28(s1)
	beq  t7, zero, rclaim   # pp == 0: I head the queue now
`)
	if planted {
		b.WriteString(`	move t5, t7             # BUG: pp->next is never re-linked, so the
	b    rspin              # predecessor's release waits for it forever
`)
	} else {
		b.WriteString(`	sw   s1, 0(t7)          # pp->next = my node (the next repair)
	move t5, t7
	b    rspin
`)
	}
	b.WriteString(`rgrant:
	lw   t1, 0(s5)          # locked==0 must mean qowner names me; a stale
	andi t2, t1, 0xFFFF     # store from a previous passage's releaser is
	bne  t2, s6, rspin      # a spurious wake — keep spinning
	b    rgot
rfall:
	lw   t1, 32(s1)         # fallbacks++
	addi t1, t1, 1
	sw   t1, 32(s1)
rclaim:                     # compete on the owner word directly
	addi t9, t9, -1         # TryAcquire budget
	beq  t9, zero, rabc
	lw   t1, 0(s5)
	andi t2, t1, 0xFFFF
	beq  t2, zero, rctry    # free: CAS it to me
	beq  t2, s6, rgot       # a handoff raced my claim: it is mine
	addi a0, t2, -1
	li   v0, 12             # owner alive?
	syscall
	bne  v0, zero, rclaim   # yes: it will hand off or clear
	lw   t1, 0(s5)          # dead owner: steal with an epoch bump
	srl  t3, t1, 16
	addi t3, t3, 1
	sll  t3, t3, 16
	or   t3, t3, s6
	ll   t2, 0(s5)
	bne  t2, t1, rclaim     # the word moved: re-decide
	move t4, t3
	sc   t4, 0(s5)
	beq  t4, zero, rclaim
	lw   t1, 24(s1)         # repairs++
	addi t1, t1, 1
	sw   t1, 24(s1)
	b    rgot
rctry:
	srl  t3, t1, 16
	sll  t3, t3, 16
	or   t3, t3, s6         # same epoch, owner = me
	ll   t2, 0(s5)
	bne  t2, t1, rclaim
	move t4, t3
	sc   t4, 0(s5)
	beq  t4, zero, rclaim
	b    rgot
rabw:                       # TryAcquire timeout while queued behind t5
	lw   t3, 4(s1)
	li   t2, 1
	bne  t3, t2, raw1
	move t3, zero
raw1:
	ll   t1, 0(s4)          # self-dequeue only works from the tail
	bne  t1, s1, rawno
	move t2, t3
	sc   t2, 0(s4)          # qtail = my prev
	beq  t2, zero, rabw
	b    rabcas
rawno:
	lui  t9, 0x7FFF         # a successor exists: abort impossible, block
	b    rspin
rabc:                       # TryAcquire timeout while competing for qowner
	lw   t3, 4(s1)
	li   t2, 1
	bne  t3, t2, rac1
	move t3, zero
rac1:
	ll   t1, 0(s4)
	bne  t1, s1, racno
	move t2, t3
	sc   t2, 0(s4)
	beq  t2, zero, rabc
	b    rabcas
racno:
	lui  t9, 0x7FFF
	b    rclaim
rabcas:                     # dequeued; commit the abort unless granted
	li   t1, 1
	ll   t4, 12(s1)
	bne  t4, t1, rabg       # state != enqueued: a handoff beat me
	li   t2, 2
	sc   t2, 12(s1)         # state = aborted
	beq  t2, zero, rabcas
	lw   t1, 36(s1)         # aborts++
	addi t1, t1, 1
	sw   t1, 36(s1)
	b    pnext              # skip the CS; the passage did not happen
rabg:
	lui  t9, 0x7FFF         # granted mid-abort: the lock is coming; take it
	b    rclaim
rgot:
	li   t1, 2
	sw   t1, 52(s1)         # prog = 2 (in CS)
`)
}

// writeRelease emits the release path, falling through into "pdone".
func writeRelease(b *strings.Builder, v Variant, cpus int) {
	switch v {
	case Spin, LLSC:
		b.WriteString("\tsw   zero, 0(s4)        # release: a single atomic word store\n\tli   t1, 3\n\tsw   t1, 52(s1)\n")
	case Hybrid:
		b.WriteString(`	lw   t1, 4(s5)          # bump the batch counter
	addi t1, t1, 1
	beq  t1, t7, hunb       # batch exhausted: re-arbitrate globally
	sw   t1, 4(s5)
	b    hrel
hunb:
	sw   zero, 4(s5)        # reset the batch...
	sw   zero, 4(s4)        # ...clear the owning CPU...
	sw   zero, 0(s4)        # ...and release the shared word
hrel:
	sw   zero, 0(s5)        # hand off: release the claim only
	li   t1, 3
	sw   t1, 52(s1)
`)
	case MCS:
		b.WriteString(`	lw   t5, 0(s1)          # published successor?
	bne  t5, zero, mhand
mrelc:
	ll   t1, 0(s4)
	bne  t1, s1, mwtn       # tail moved: a successor is arriving
	move t2, zero
	sc   t2, 0(s4)          # qtail = 0: queue emptied
	bne  t2, zero, mrdone
	b    mrelc
mwtn:
	lw   t5, 0(s1)          # it will publish next in a bounded number
	beq  t5, zero, mwtn     # of its instructions (no kills in MCS)
mhand:
	sw   zero, 8(t5)        # targeted handoff: succ->locked = 0
mrdone:
	sw   zero, 12(s1)       # retire my node
	li   t1, 3
	sw   t1, 52(s1)
`)
	case RMCS, RMCSUnspliced:
		writeRMCSRelease(b, v == RMCSUnspliced, cpus)
	}
}

func writeRMCSRelease(b *strings.Builder, planted bool, cpus int) {
	b.WriteString(`	li   t9, 64             # successor-scan pass budget
	lw   t5, 0(s1)          # published successor?
	bne  t5, zero, rres
rrelc:
	ll   t1, 0(s4)
	bne  t1, s1, rstuck     # tail moved: someone is (or was) behind me
	move t2, zero
	sc   t2, 0(s4)          # qtail = 0: queue emptied
	beq  t2, zero, rrelc
	lw   t1, 0(s5)          # clear the owner field, keep the epoch
	srl  t1, t1, 16
	sll  t1, t1, 16
	sw   t1, 0(s5)
	b    rretire
rstuck:
	lw   t1, 44(s1)         # scans++
	addi t1, t1, 1
	sw   t1, 44(s1)
	lw   t5, 0(s1)          # it may have linked meanwhile
	bne  t5, zero, rres
`)
	if planted {
		b.WriteString(`rwnaiv:
	lw   t5, 0(s1)          # BUG: wait for the link naively; a successor
	beq  t5, zero, rwnaiv   # that died (or spliced) never publishes it
	b    rres
`)
	} else {
		fmt.Fprintf(b, `	la   t6, qnodes         # scan for my successor: a queued node whose
	li   t7, %d
rsc1:
	beq  t6, s1, rsc2       # (skip my own node)
	lw   t1, 12(t6)
	li   t2, 1
	bne  t1, t2, rsc2       # only enqueued nodes count
	lw   t1, 4(t6)
	beq  t1, s1, rsfnd      # prev is me: my successor
	bne  t1, t2, rsc2       # prev != Sentinel: linked elsewhere
	lw   a0, 16(t6)         # orphan: enqueued, prev unset — mine iff its
	addi a0, a0, -1         # enqueuer died mid-swap (unique at K<=1)
	li   v0, 12
	syscall
	beq  v0, zero, rsfnd
rsc2:
	addi t6, t6, 64
	addi t7, t7, -1
	bne  t7, zero, rsc1
	addi t9, t9, -1         # nothing yet: retry the empty-queue exit, but
	bne  t9, zero, rrelc    # only so many times — a waiter that fell back
	lw   t1, 0(s5)          # to the owner word may never identify itself,
	srl  t1, t1, 16         # so relinquish: clear the owner, keep the
	sll  t1, t1, 16         # epoch, and let the fallback path claim it
	sw   t1, 0(s5)
	b    rretire
rsfnd:
	move t5, t6
`, cpus)
	}
	fmt.Fprintf(b, `rres:                       # resolve the candidate chain at t5
	lw   t1, 12(t5)
	li   t2, 1
	bne  t1, t2, rskip      # not enqueued (retired/aborted): splice past
	lw   a0, 16(t5)
	addi a0, a0, -1
	li   v0, 12             # candidate alive?
	syscall
	bne  v0, zero, rlive
rskip:
	sw   zero, 12(t5)       # retire it
	lw   t1, 28(s1)         # splices++
	addi t1, t1, 1
	sw   t1, 28(s1)
rchain:
	lw   t6, 0(t5)          # follow its published next...
	bne  t6, zero, rcadv
	la   t6, qnodes         # ...or scan for the node that named it prev
	li   t7, %d
rch1:
	beq  t6, s1, rch2       # (never chain back into my own node)
	lw   t1, 12(t6)
	li   t2, 1
	bne  t1, t2, rch2
	lw   t1, 4(t6)
	beq  t1, t5, rcadv2
rch2:
	addi t6, t6, 64
	addi t7, t7, -1
	bne  t7, zero, rch1
	ll   t1, 0(s4)          # nothing follows the chain end: where is the tail?
	beq  t1, t5, rcemp      # at the dead chain end: empty the queue from it
	bne  t1, s1, rstuck     # elsewhere: the world moved, rescan
	sw   zero, 0(s1)        # back at my own node (successors all aborted):
	b    rrelc              # forget the stale link and exit empty
rcemp:
	move t2, zero
	sc   t2, 0(s4)
	beq  t2, zero, rchain
	lw   t1, 0(s5)
	srl  t1, t1, 16
	sll  t1, t1, 16
	sw   t1, 0(s5)
	b    rretire
rcadv2:
	move t5, t6
	b    rres
rcadv:
	move t5, t6
	b    rres
rlive:
	li   t1, 1              # handshake: state enqueued -> granted, so an
	ll   t2, 12(t5)         # aborting successor cannot depart after we
	bne  t2, t1, rskip      # commit to it
	li   t3, 3
	sc   t3, 12(t5)
	beq  t3, zero, rlive
	lw   t3, 16(t5)         # publish ownership: owner = succ, same epoch
	lw   t1, 0(s5)
	srl  t2, t1, 16
	sll  t2, t2, 16
	or   t2, t2, t3
	sw   t2, 0(s5)          # plain store: only the live owner writes here
	sw   zero, 8(t5)        # wake the local spin
rretire:
	sw   zero, 4(s1)        # zero prev first: a successor that walks my
	sw   zero, 12(s1)       # retired node must fall into owner competition,
	li   t1, 3              # not follow a stale backlink
	sw   t1, 52(s1)         # prog = 3
`, cpus)
}
